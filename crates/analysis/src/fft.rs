//! Iterative radix-2 complex FFT, written from scratch.
//!
//! Sizes must be powers of two; [`next_pow2_len`] plus zero-padding covers
//! everything else. The 3D transform applies the 1D kernel along each axis.
//! Accuracy is the usual O(ε·log n) of Cooley–Tukey with precomputed
//! twiddles, ample for power-spectrum work.

/// A complex number (f64 re/im).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Construct from parts.
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Squared magnitude `re² + im²`.
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    #[inline]
    fn mul(self, o: Complex) -> Complex {
        Complex::new(self.re * o.re - self.im * o.im, self.re * o.im + self.im * o.re)
    }

    #[inline]
    fn add(self, o: Complex) -> Complex {
        Complex::new(self.re + o.re, self.im + o.im)
    }

    #[inline]
    fn sub(self, o: Complex) -> Complex {
        Complex::new(self.re - o.re, self.im - o.im)
    }
}

/// Smallest power of two ≥ `n`.
pub fn next_pow2_len(n: usize) -> usize {
    n.next_power_of_two()
}

/// In-place forward FFT (no normalization).
///
/// # Panics
/// Panics if `data.len()` is not a power of two.
pub fn fft_in_place(data: &mut [Complex]) {
    fft_dir(data, false);
}

/// In-place inverse FFT (normalized by 1/n).
///
/// # Panics
/// Panics if `data.len()` is not a power of two.
pub fn ifft_in_place(data: &mut [Complex]) {
    fft_dir(data, true);
    let n = data.len() as f64;
    for c in data.iter_mut() {
        c.re /= n;
        c.im /= n;
    }
}

fn fft_dir(data: &mut [Complex], inverse: bool) {
    let n = data.len();
    assert!(n.is_power_of_two(), "fft length {n} must be a power of two");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i.reverse_bits() >> (usize::BITS - bits)) & (n - 1);
        if i < j {
            data.swap(i, j);
        }
    }
    // Butterflies with per-stage twiddle recurrence.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::new(ang.cos(), ang.sin());
        for start in (0..n).step_by(len) {
            let mut w = Complex::new(1.0, 0.0);
            for k in 0..len / 2 {
                let a = data[start + k];
                let b = data[start + k + len / 2].mul(w);
                data[start + k] = a.add(b);
                data[start + k + len / 2] = a.sub(b);
                w = w.mul(wlen);
            }
        }
        len <<= 1;
    }
}

/// Forward FFT of a real signal, zero-padded to the next power of two.
pub fn fft_real(signal: &[f64]) -> Vec<Complex> {
    let n = next_pow2_len(signal.len().max(1));
    let mut buf = vec![Complex::default(); n];
    for (i, &v) in signal.iter().enumerate() {
        buf[i].re = v;
    }
    fft_in_place(&mut buf);
    buf
}

/// In-place 3D FFT over a row-major `(n0, n1, n2)` cube; every extent must
/// be a power of two.
pub fn fft3_in_place(data: &mut [Complex], dims: [usize; 3]) {
    let [n0, n1, n2] = dims;
    assert_eq!(data.len(), n0 * n1 * n2, "buffer/dims mismatch");
    assert!(
        n0.is_power_of_two() && n1.is_power_of_two() && n2.is_power_of_two(),
        "fft3 dims must be powers of two"
    );
    // Axis 2 (contiguous rows).
    let mut row = vec![Complex::default(); n2];
    for base in (0..data.len()).step_by(n2) {
        row.copy_from_slice(&data[base..base + n2]);
        fft_in_place(&mut row);
        data[base..base + n2].copy_from_slice(&row);
    }
    // Axis 1.
    let mut col = vec![Complex::default(); n1];
    for i0 in 0..n0 {
        for i2 in 0..n2 {
            for i1 in 0..n1 {
                col[i1] = data[(i0 * n1 + i1) * n2 + i2];
            }
            fft_in_place(&mut col);
            for i1 in 0..n1 {
                data[(i0 * n1 + i1) * n2 + i2] = col[i1];
            }
        }
    }
    // Axis 0.
    let mut pil = vec![Complex::default(); n0];
    for i1 in 0..n1 {
        for i2 in 0..n2 {
            for i0 in 0..n0 {
                pil[i0] = data[(i0 * n1 + i1) * n2 + i2];
            }
            fft_in_place(&mut pil);
            for i0 in 0..n0 {
                data[(i0 * n1 + i1) * n2 + i2] = pil[i0];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn impulse_transforms_to_flat() {
        let mut d = vec![Complex::default(); 8];
        d[0].re = 1.0;
        fft_in_place(&mut d);
        for c in &d {
            assert!((c.re - 1.0).abs() < 1e-12 && c.im.abs() < 1e-12);
        }
    }

    #[test]
    fn single_tone_peaks_at_its_bin() {
        let n = 64;
        let k = 5;
        let sig: Vec<f64> =
            (0..n).map(|i| (2.0 * std::f64::consts::PI * k as f64 * i as f64 / n as f64).cos()).collect();
        let spec = fft_real(&sig);
        let mags: Vec<f64> = spec.iter().map(|c| c.norm_sq().sqrt()).collect();
        let peak = mags.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).unwrap().0;
        assert!(peak == k || peak == n - k, "peak at {peak}");
        assert!((mags[k] - n as f64 / 2.0).abs() < 1e-9);
    }

    #[test]
    fn roundtrip_inverse() {
        let n = 128;
        let mut d: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
            .collect();
        let orig = d.clone();
        fft_in_place(&mut d);
        ifft_in_place(&mut d);
        for (a, b) in d.iter().zip(&orig) {
            assert!((a.re - b.re).abs() < 1e-10 && (a.im - b.im).abs() < 1e-10);
        }
    }

    #[test]
    fn parseval_energy_conserved() {
        let sig: Vec<f64> = (0..256).map(|i| (i as f64 * 0.71).sin() * 2.0).collect();
        let spec = fft_real(&sig);
        let time_energy: f64 = sig.iter().map(|v| v * v).sum();
        let freq_energy: f64 = spec.iter().map(|c| c.norm_sq()).sum::<f64>() / 256.0;
        assert!((time_energy - freq_energy).abs() < 1e-8 * time_energy.max(1.0));
    }

    #[test]
    fn linearity() {
        let a: Vec<f64> = (0..32).map(|i| (i as f64).sin()).collect();
        let b: Vec<f64> = (0..32).map(|i| (i as f64 * 2.0).cos()).collect();
        let sum: Vec<f64> = a.iter().zip(&b).map(|(x, y)| 3.0 * x + y).collect();
        let fa = fft_real(&a);
        let fb = fft_real(&b);
        let fsum = fft_real(&sum);
        for i in 0..32 {
            assert!((fsum[i].re - (3.0 * fa[i].re + fb[i].re)).abs() < 1e-9);
            assert!((fsum[i].im - (3.0 * fa[i].im + fb[i].im)).abs() < 1e-9);
        }
    }

    #[test]
    fn fft3_impulse_flat() {
        let dims = [4, 4, 4];
        let mut d = vec![Complex::default(); 64];
        d[0].re = 1.0;
        fft3_in_place(&mut d, dims);
        for c in &d {
            assert!((c.re - 1.0).abs() < 1e-12 && c.im.abs() < 1e-12);
        }
    }

    #[test]
    fn fft3_separable_tone() {
        // A plane wave along axis 2 peaks at (0, 0, k).
        let dims = [4, 4, 16];
        let k = 3usize;
        let mut d = vec![Complex::default(); 4 * 4 * 16];
        for i0 in 0..4 {
            for i1 in 0..4 {
                for i2 in 0..16 {
                    d[(i0 * 4 + i1) * 16 + i2].re =
                        (2.0 * std::f64::consts::PI * k as f64 * i2 as f64 / 16.0).cos();
                }
            }
        }
        fft3_in_place(&mut d, dims);
        let mag_at = |i0: usize, i1: usize, i2: usize| d[(i0 * 4 + i1) * 16 + i2].norm_sq().sqrt();
        assert!(mag_at(0, 0, k) > 100.0);
        assert!(mag_at(1, 2, 5) < 1e-9);
    }

    #[test]
    #[should_panic]
    fn non_pow2_rejected() {
        let mut d = vec![Complex::default(); 12];
        fft_in_place(&mut d);
    }
}
