//! Halo counting — the cosmology-specific post-hoc analysis of the
//! paper's §III-D4 (after Jin et al., HPDC'20 \[23\]).
//!
//! A "halo" here is a connected component (6-connectivity in 3D) of cells
//! whose density exceeds a threshold, a standard simplification of
//! friends-of-friends halo finding on gridded density fields. Compression
//! error perturbs cells near the threshold, which can split, merge, create
//! or destroy components; [`flip_fraction_model`] propagates an error
//! distribution through the threshold test exactly the way the paper's
//! guideline prescribes (inject the estimated error distribution into the
//! analysis computation).

use rq_grid::{NdArray, Scalar};

/// Result of a halo count.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HaloCount {
    /// Number of connected components above threshold.
    pub halos: usize,
    /// Number of cells above threshold.
    pub cells: usize,
}

/// Count connected components of cells with `value > threshold`
/// (6-connectivity in 3D, 2·ndim-connectivity generally). Components
/// smaller than `min_cells` are ignored (noise suppression, as halo
/// finders do).
pub fn halo_count<T: Scalar>(field: &NdArray<T>, threshold: f64, min_cells: usize) -> HaloCount {
    let shape = field.shape();
    let nd = shape.ndim();
    let n = shape.len();
    let above: Vec<bool> = field.as_slice().iter().map(|v| v.to_f64() > threshold).collect();
    let mut visited = vec![false; n];
    let strides = shape.strides();

    let mut halos = 0usize;
    let mut cells = 0usize;
    let mut stack: Vec<usize> = Vec::new();
    for start in 0..n {
        if !above[start] || visited[start] {
            continue;
        }
        // Flood fill one component.
        let mut size = 0usize;
        visited[start] = true;
        stack.push(start);
        while let Some(lin) = stack.pop() {
            size += 1;
            let idx = shape.unoffset(lin);
            for a in 0..nd {
                // Backward neighbor.
                if idx[a] > 0 {
                    let nb = lin - strides[a];
                    if above[nb] && !visited[nb] {
                        visited[nb] = true;
                        stack.push(nb);
                    }
                }
                // Forward neighbor.
                if idx[a] + 1 < shape.dim(a) {
                    let nb = lin + strides[a];
                    if above[nb] && !visited[nb] {
                        visited[nb] = true;
                        stack.push(nb);
                    }
                }
            }
        }
        if size >= min_cells {
            halos += 1;
            cells += size;
        }
    }
    HaloCount { halos, cells }
}

/// Model of the fraction of cells whose threshold test flips under an
/// error distribution with standard deviation `sigma` (uniform on
/// `[-√3σ, √3σ]`, matching the paper's Eq. 10 parameterization):
/// a cell at distance `δ` from the threshold flips with probability
/// `max(0, 1/2 − δ/(2√3σ))`; summing over the sampled near-threshold
/// density histogram gives the expected flip fraction.
///
/// `densities` is a (sample of) the field's values; the return value is
/// the expected fraction of *all* cells that flip side.
pub fn flip_fraction_model(densities: &[f64], threshold: f64, sigma: f64) -> f64 {
    if densities.is_empty() || sigma <= 0.0 {
        return 0.0;
    }
    let half_width = (3.0f64).sqrt() * sigma; // uniform error support
    let mut flips = 0.0;
    for &d in densities {
        let delta = (d - threshold).abs();
        if delta < half_width {
            flips += 0.5 * (1.0 - delta / half_width);
        }
    }
    flips / densities.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rq_grid::Shape;

    /// A field with `k` well-separated spherical blobs.
    fn blobs(k: usize) -> NdArray<f64> {
        let shape = Shape::d3(32, 32, 32);
        let centers: Vec<[f64; 3]> = (0..k)
            .map(|i| {
                let t = i as f64 / k as f64 * std::f64::consts::TAU;
                [16.0 + 10.0 * t.cos(), 16.0 + 10.0 * t.sin(), 16.0]
            })
            .collect();
        NdArray::from_fn(shape, |ix| {
            let p = [ix[0] as f64, ix[1] as f64, ix[2] as f64];
            centers
                .iter()
                .map(|c| {
                    let r2: f64 = (0..3).map(|a| (p[a] - c[a]).powi(2)).sum();
                    (-r2 / 4.0).exp()
                })
                .sum::<f64>()
        })
    }

    #[test]
    fn counts_separated_blobs() {
        for k in [1usize, 3, 5] {
            let f = blobs(k);
            let c = halo_count(&f, 0.5, 1);
            assert_eq!(c.halos, k, "k = {k}");
            assert!(c.cells > 0);
        }
    }

    #[test]
    fn threshold_above_max_gives_zero() {
        let f = blobs(3);
        assert_eq!(halo_count(&f, 10.0, 1).halos, 0);
    }

    #[test]
    fn min_cells_filters_specks() {
        // One big blob plus a single hot cell.
        let mut f = blobs(1);
        let idx = [2usize, 2, 2];
        f.set(&idx, 5.0);
        assert_eq!(halo_count(&f, 0.5, 1).halos, 2);
        assert_eq!(halo_count(&f, 0.5, 4).halos, 1);
    }

    #[test]
    fn connectivity_merges_touching_blobs() {
        // Two overlapping gaussians = one component at a low threshold.
        let shape = Shape::d3(16, 16, 16);
        let f = NdArray::from_fn(shape, |ix| {
            let p = [ix[0] as f64, ix[1] as f64, ix[2] as f64];
            let g = |c: [f64; 3]| {
                let r2: f64 = (0..3).map(|a| (p[a] - c[a]).powi(2)).sum();
                (-r2 / 8.0).exp()
            };
            g([7.0, 4.0, 8.0]) + g([7.0, 12.0, 8.0])
        });
        assert_eq!(halo_count(&f, 0.1, 1).halos, 1);
        // Higher threshold separates the two cores.
        assert_eq!(halo_count(&f, 0.8, 1).halos, 2);
    }

    #[test]
    fn flip_model_basics() {
        // Cells far from the threshold never flip.
        let far = vec![10.0; 100];
        assert_eq!(flip_fraction_model(&far, 0.0, 0.1), 0.0);
        // Cells exactly at the threshold flip half the time.
        let at = vec![0.0; 100];
        let f = flip_fraction_model(&at, 0.0, 0.1);
        assert!((f - 0.5).abs() < 1e-12);
        // More error, more flips.
        let mixed: Vec<f64> = (0..1000).map(|i| i as f64 / 1000.0).collect();
        let lo = flip_fraction_model(&mixed, 0.5, 0.01);
        let hi = flip_fraction_model(&mixed, 0.5, 0.1);
        assert!(hi > lo);
    }

    #[test]
    fn flip_model_tracks_measured_flips() {
        // Inject uniform noise and compare measured flip fraction with the
        // model on a smooth density ramp.
        let n = 200_000;
        let densities: Vec<f64> = (0..n).map(|i| i as f64 / n as f64).collect();
        let threshold = 0.5;
        let e = 0.02;
        let sigma = e / (3.0f64).sqrt();
        let mut s = 11u64;
        let mut measured = 0usize;
        for &d in &densities {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            let u = (s >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0;
            let noisy = d + u * e;
            if (d > threshold) != (noisy > threshold) {
                measured += 1;
            }
        }
        let measured_frac = measured as f64 / n as f64;
        let model = flip_fraction_model(&densities, threshold, sigma);
        assert!(
            (measured_frac - model).abs() < 0.1 * model.max(1e-9),
            "measured {measured_frac} model {model}"
        );
    }

    #[test]
    fn count_is_exact_on_1d_runs() {
        let f = NdArray::from_vec(
            Shape::d1(10),
            vec![0.0, 1.0, 1.0, 0.0, 1.0, 0.0, 0.0, 1.0, 1.0, 1.0],
        );
        let c = halo_count(&f, 0.5, 1);
        assert_eq!(c.halos, 3);
        assert_eq!(c.cells, 6);
    }
}
