//! Post-hoc analysis kernels (paper §III-D).
//!
//! The paper models the impact of compression error on three analyses:
//! PSNR, SSIM, and FFT-based power spectra. This crate provides the
//! *measured* side of each — the ground truth the analytical model is
//! validated against — built entirely from scratch:
//!
//! * [`metrics`] — MSE, PSNR, NRMSE, maximum pointwise error,
//! * [`ssim`] — global and windowed structural similarity,
//! * [`fft`] — iterative radix-2 complex FFT (1D and along-axis N-D),
//! * [`spectrum`] — radially binned power spectra and the spectrum-ratio
//!   quality metric used for the Nyx-style FFT analysis (Fig. 8),
//! * [`halo`] — threshold-component halo counting and the flip-fraction
//!   error-propagation model (the §III-D4 cosmology analysis).

pub mod fft;
pub mod halo;
pub mod metrics;
pub mod spectrum;
pub mod ssim;

pub use fft::Complex;
pub use halo::{flip_fraction_model, halo_count, HaloCount};
pub use metrics::{max_abs_error, mse, nrmse, psnr};
pub use spectrum::{power_spectrum_1d, power_spectrum_3d, spectrum_ratio};
pub use ssim::{global_ssim, windowed_ssim};
