//! Pointwise distortion metrics.

use rq_grid::{NdArray, Scalar};

/// Mean squared error between two equal-shape fields.
///
/// # Panics
/// Panics if the shapes differ.
pub fn mse<T: Scalar>(a: &NdArray<T>, b: &NdArray<T>) -> f64 {
    assert_eq!(a.shape(), b.shape(), "mse needs equal shapes");
    let n = a.len() as f64;
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(&x, &y)| {
            let d = x.to_f64() - y.to_f64();
            d * d
        })
        .sum::<f64>()
        / n
}

/// Peak signal-to-noise ratio in dB (paper Eq. 14):
/// `10·log10(range² / MSE)` with `range = max(a) − min(a)`.
///
/// Returns `f64::INFINITY` for identical fields.
pub fn psnr<T: Scalar>(a: &NdArray<T>, b: &NdArray<T>) -> f64 {
    let range = a.value_range();
    let m = mse(a, b);
    if m == 0.0 {
        return f64::INFINITY;
    }
    10.0 * (range * range / m).log10()
}

/// Root-mean-square error normalized by the value range of `a`.
pub fn nrmse<T: Scalar>(a: &NdArray<T>, b: &NdArray<T>) -> f64 {
    let range = a.value_range();
    if range == 0.0 {
        return 0.0;
    }
    mse(a, b).sqrt() / range
}

/// Maximum pointwise absolute error — the quantity an error-bounded
/// compressor guarantees.
pub fn max_abs_error<T: Scalar>(a: &NdArray<T>, b: &NdArray<T>) -> f64 {
    assert_eq!(a.shape(), b.shape(), "max_abs_error needs equal shapes");
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(&x, &y)| (x.to_f64() - y.to_f64()).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rq_grid::Shape;

    fn ramp() -> NdArray<f64> {
        NdArray::from_fn(Shape::d1(100), |ix| ix[0] as f64)
    }

    #[test]
    fn identical_fields() {
        let a = ramp();
        assert_eq!(mse(&a, &a), 0.0);
        assert_eq!(psnr(&a, &a), f64::INFINITY);
        assert_eq!(max_abs_error(&a, &a), 0.0);
        assert_eq!(nrmse(&a, &a), 0.0);
    }

    #[test]
    fn constant_offset() {
        let a = ramp();
        let b = NdArray::from_fn(Shape::d1(100), |ix| ix[0] as f64 + 0.5);
        assert!((mse(&a, &b) - 0.25).abs() < 1e-12);
        assert!((max_abs_error(&a, &b) - 0.5).abs() < 1e-12);
        // range = 99, psnr = 10 log10(99²/0.25)
        let expect = 10.0 * (99.0f64 * 99.0 / 0.25).log10();
        assert!((psnr(&a, &b) - expect).abs() < 1e-9);
    }

    #[test]
    fn psnr_uniform_noise_matches_theory() {
        // Uniform(-e, e) noise has variance e²/3 (paper Eq. 10): check the
        // measured PSNR lands on 20log10(range) - 10log10(e²/3).
        let e = 0.01;
        let n = 200_000;
        let mut state = 42u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let a = NdArray::from_fn(Shape::d1(n), |ix| (ix[0] % 1000) as f64 / 1000.0);
        let b = NdArray::from_fn(Shape::d1(n), |ix| {
            a.as_slice()[ix[0]] + (next() * 2.0 - 1.0) * e
        });
        let range = a.value_range();
        let theory = 20.0 * range.log10() - 10.0 * (e * e / 3.0).log10();
        assert!((psnr(&a, &b) - theory).abs() < 0.2, "psnr {} theory {theory}", psnr(&a, &b));
    }

    #[test]
    #[should_panic]
    fn shape_mismatch_panics() {
        let a = ramp();
        let b = NdArray::<f64>::zeros(Shape::d1(50));
        let _ = mse(&a, &b);
    }
}
