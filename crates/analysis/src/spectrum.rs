//! Power spectra and the spectrum-ratio quality metric (paper §III-D4,
//! Fig. 8).
//!
//! The Nyx-style FFT analysis compares the power spectrum of reconstructed
//! data against the original: quality is the per-wavenumber ratio
//! `P'(k) / P(k)`, ideally 1 for all `k`. Compression noise adds an
//! (approximately flat) noise floor `σ_E²` to the spectrum, which is
//! exactly what the paper's error-distribution model predicts.

use crate::fft::{fft3_in_place, fft_real, Complex};
use rq_grid::{NdArray, Scalar};

/// One radial spectrum bin.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SpectrumBin {
    /// Representative wavenumber (bin center, in grid units).
    pub k: f64,
    /// Mean power in the bin, normalized per element.
    pub power: f64,
    /// Number of Fourier modes averaged.
    pub modes: usize,
}

/// 1D power spectrum: `|F(k)|² / n` for `k = 0..n/2`.
pub fn power_spectrum_1d<T: Scalar>(field: &NdArray<T>) -> Vec<SpectrumBin> {
    let sig: Vec<f64> = field.as_slice().iter().map(|v| v.to_f64()).collect();
    let spec = fft_real(&sig);
    let n = spec.len();
    (0..n / 2)
        .map(|k| SpectrumBin { k: k as f64, power: spec[k].norm_sq() / n as f64, modes: 1 })
        .collect()
}

/// Radially binned 3D power spectrum.
///
/// Every dimension extent must be a power of two (use a pow-2 generator or
/// crop first). Modes are binned by `|k| = sqrt(k0² + k1² + k2²)` with unit
/// bin width, wavenumbers folded to the symmetric range.
///
/// # Panics
/// Panics if the field is not 3-dimensional with power-of-two extents.
pub fn power_spectrum_3d<T: Scalar>(field: &NdArray<T>) -> Vec<SpectrumBin> {
    let shape = field.shape();
    assert_eq!(shape.ndim(), 3, "power_spectrum_3d needs a 3D field");
    let dims = [shape.dim(0), shape.dim(1), shape.dim(2)];
    let mut buf: Vec<Complex> =
        field.as_slice().iter().map(|v| Complex::new(v.to_f64(), 0.0)).collect();
    fft3_in_place(&mut buf, dims);

    let n_total = (dims[0] * dims[1] * dims[2]) as f64;
    let kmax = ((dims[0] / 2).pow(2) + (dims[1] / 2).pow(2) + (dims[2] / 2).pow(2)) as f64;
    let nbins = kmax.sqrt().ceil() as usize + 1;
    let mut power = vec![0f64; nbins];
    let mut modes = vec![0usize; nbins];

    let fold = |i: usize, n: usize| -> f64 {
        let k = if i <= n / 2 { i as isize } else { i as isize - n as isize };
        k as f64
    };
    for i0 in 0..dims[0] {
        let k0 = fold(i0, dims[0]);
        for i1 in 0..dims[1] {
            let k1 = fold(i1, dims[1]);
            for i2 in 0..dims[2] {
                let k2 = fold(i2, dims[2]);
                let kr = (k0 * k0 + k1 * k1 + k2 * k2).sqrt();
                let bin = kr.round() as usize;
                if bin < nbins {
                    power[bin] += buf[(i0 * dims[1] + i1) * dims[2] + i2].norm_sq() / n_total;
                    modes[bin] += 1;
                }
            }
        }
    }
    (0..nbins)
        .filter(|&b| modes[b] > 0)
        .map(|b| SpectrumBin { k: b as f64, power: power[b] / modes[b] as f64, modes: modes[b] })
        .collect()
}

/// Per-bin spectrum ratio `P_distorted(k) / P_reference(k)` — the Fig. 8
/// quality curve. Bins with (near-)zero reference power are skipped.
pub fn spectrum_ratio<T: Scalar>(
    reference: &NdArray<T>,
    distorted: &NdArray<T>,
) -> Vec<(f64, f64)> {
    assert_eq!(reference.shape(), distorted.shape(), "spectrum_ratio needs equal shapes");
    let (pr, pd) = if reference.shape().ndim() == 3 {
        (power_spectrum_3d(reference), power_spectrum_3d(distorted))
    } else {
        (power_spectrum_1d(reference), power_spectrum_1d(distorted))
    };
    pr.iter()
        .zip(&pd)
        .filter(|(r, _)| r.power > 1e-300)
        .map(|(r, d)| (r.k, d.power / r.power))
        .collect()
}

/// Scalar FFT-quality summary: maximum relative spectrum deviation
/// `max_k |P'(k)/P(k) − 1|` over bins up to `k_frac` of the Nyquist limit.
///
/// The cosmology acceptance criterion in the paper's references is of the
/// form "spectrum ratio within 1 % up to some k"; this is that statistic.
pub fn spectrum_max_deviation<T: Scalar>(
    reference: &NdArray<T>,
    distorted: &NdArray<T>,
    k_frac: f64,
) -> f64 {
    let ratios = spectrum_ratio(reference, distorted);
    if ratios.is_empty() {
        return 0.0;
    }
    let k_max = ratios.last().unwrap().0 * k_frac;
    ratios
        .iter()
        .filter(|&&(k, _)| k > 0.0 && k <= k_max)
        .map(|&(_, r)| (r - 1.0).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rq_grid::Shape;

    fn white_noise_1d(n: usize, amp: f64, seed: u64) -> NdArray<f64> {
        let mut s = seed;
        NdArray::from_fn(Shape::d1(n), |_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            ((s >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0) * amp
        })
    }

    #[test]
    fn tone_spectrum_peaks_correctly() {
        let n = 256;
        let k = 17;
        let a = NdArray::from_fn(Shape::d1(n), |ix| {
            (2.0 * std::f64::consts::PI * k as f64 * ix[0] as f64 / n as f64).sin()
        });
        let spec = power_spectrum_1d(&a);
        let peak = spec.iter().max_by(|x, y| x.power.total_cmp(&y.power)).unwrap();
        assert_eq!(peak.k, k as f64);
    }

    #[test]
    fn identical_fields_ratio_one() {
        let a = white_noise_1d(512, 1.0, 3);
        for (_, r) in spectrum_ratio(&a, &a) {
            assert!((r - 1.0).abs() < 1e-12);
        }
        assert_eq!(spectrum_max_deviation(&a, &a, 1.0), 0.0);
    }

    #[test]
    fn white_noise_spectrum_is_flat() {
        let a = white_noise_1d(1 << 14, 1.0, 11);
        let spec = power_spectrum_1d(&a);
        // Uniform(-1,1) has variance 1/3; the mean spectral power per mode
        // should approach it.
        let mean: f64 =
            spec.iter().skip(1).map(|b| b.power).sum::<f64>() / (spec.len() - 1) as f64;
        assert!((mean - 1.0 / 3.0).abs() < 0.05, "mean power {mean}");
    }

    #[test]
    fn additive_noise_raises_high_k_ratio() {
        // A red (smooth) signal plus white noise: the ratio deviates most at
        // high k where the signal has least power — the Fig. 8 shape.
        let n = 1 << 12;
        let sig = NdArray::from_fn(Shape::d1(n), |ix| {
            let t = ix[0] as f64 / n as f64;
            (2.0 * std::f64::consts::PI * 3.0 * t).sin() * 10.0
                + (2.0 * std::f64::consts::PI * 7.0 * t).cos() * 5.0
        });
        let noise = white_noise_1d(n, 0.05, 5);
        let noisy = NdArray::from_fn(Shape::d1(n), |ix| {
            sig.get(&ix[..1]) + noise.get(&ix[..1])
        });
        let low = spectrum_max_deviation(&sig, &noisy, 0.01);
        let high = spectrum_max_deviation(&sig, &noisy, 1.0);
        assert!(high > low);
    }

    #[test]
    fn spectrum_3d_white_noise_flat() {
        let mut s = 77u64;
        let a = NdArray::from_fn(Shape::d3(16, 16, 16), |_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
        });
        let spec = power_spectrum_3d(&a);
        let total_modes: usize = spec.iter().map(|b| b.modes).sum();
        assert_eq!(total_modes, 16 * 16 * 16);
        let mean: f64 = spec.iter().skip(1).map(|b| b.power).sum::<f64>() / (spec.len() - 1) as f64;
        assert!((mean - 1.0 / 3.0).abs() < 0.12, "mean 3d power {mean}");
    }

    #[test]
    fn parseval_3d() {
        // Total spectral power equals the field's mean square value.
        let mut s = 13u64;
        let a = NdArray::from_fn(Shape::d3(8, 8, 8), |_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        });
        let spec = power_spectrum_3d(&a);
        let total: f64 = spec.iter().map(|b| b.power * b.modes as f64).sum();
        let msq: f64 =
            a.as_slice().iter().map(|v| v * v).sum::<f64>();
        assert!((total - msq).abs() < 1e-6 * msq, "total {total} msq {msq}");
    }
}
