//! Structural similarity (SSIM).
//!
//! Two flavours:
//! * [`global_ssim`] — the single-window SSIM of the paper's Eq. 16, the
//!   quantity its analytical model (Eq. 15) predicts;
//! * [`windowed_ssim`] — the conventional mean-of-local-windows SSIM,
//!   provided because domain tools usually report this one.
//!
//! Constants follow the standard parameterization: `C_mean = (0.01·L)²`
//! (paired with the luminance/mean term; the paper's `C4`) and
//! `C_var = (0.03·L)²` (paired with the contrast/structure term; the
//! paper's `C3`), with `L` the value range of the reference field.

use rq_grid::stats::{covariance, Moments};
use rq_grid::{NdArray, Scalar, MAX_DIMS};

/// SSIM constants derived from the reference field's value range.
#[derive(Clone, Copy, Debug)]
pub struct SsimConstants {
    /// Stabilizer for the mean (luminance) term — the paper's C4.
    pub c_mean: f64,
    /// Stabilizer for the variance (contrast) term — the paper's C3.
    pub c_var: f64,
}

impl SsimConstants {
    /// Standard constants for a field with value range `l`.
    pub fn for_range(l: f64) -> Self {
        let l = if l > 0.0 { l } else { 1.0 };
        SsimConstants { c_mean: (0.01 * l).powi(2), c_var: (0.03 * l).powi(2) }
    }
}

fn ssim_from_stats(
    mu_a: f64,
    mu_b: f64,
    var_a: f64,
    var_b: f64,
    cov: f64,
    c: SsimConstants,
) -> f64 {
    let lum = (2.0 * mu_a * mu_b + c.c_mean) / (mu_a * mu_a + mu_b * mu_b + c.c_mean);
    let con = (2.0 * cov + c.c_var) / (var_a + var_b + c.c_var);
    lum * con
}

/// Single-window SSIM over the whole field (paper Eq. 16).
///
/// # Panics
/// Panics if the shapes differ.
pub fn global_ssim<T: Scalar>(reference: &NdArray<T>, distorted: &NdArray<T>) -> f64 {
    assert_eq!(reference.shape(), distorted.shape(), "ssim needs equal shapes");
    let c = SsimConstants::for_range(reference.value_range());
    let ma = Moments::from_slice(reference.as_slice());
    let mb = Moments::from_slice(distorted.as_slice());
    let cov = covariance(reference.as_slice(), distorted.as_slice());
    ssim_from_stats(ma.mean, mb.mean, ma.variance(), mb.variance(), cov, c)
}

/// Mean SSIM over non-overlapping hyper-cubic windows of side `window`.
///
/// Windows are clipped at the boundary; every element participates in
/// exactly one window. Typical window side: 8.
///
/// # Panics
/// Panics if the shapes differ or `window == 0`.
pub fn windowed_ssim<T: Scalar>(
    reference: &NdArray<T>,
    distorted: &NdArray<T>,
    window: usize,
) -> f64 {
    assert_eq!(reference.shape(), distorted.shape(), "ssim needs equal shapes");
    assert!(window > 0, "window must be positive");
    let shape = reference.shape();
    let c = SsimConstants::for_range(reference.value_range());
    let strides = shape.strides();
    let nd = shape.ndim();

    let mut total = 0.0;
    let mut count = 0usize;
    for block in rq_grid::BlockIter::new(shape, window) {
        let mut ma = Moments::new();
        let mut mb = Moments::new();
        // First pass: means/variances; gather linear indices for covariance.
        let mut cov_acc = 0.0;
        let mut vals = Vec::with_capacity(block.len());
        let mut local = [0usize; MAX_DIMS];
        loop {
            let mut lin = 0usize;
            for a in 0..nd {
                lin += (block.origin[a] + local[a]) * strides[a];
            }
            let x = reference.as_slice()[lin].to_f64();
            let y = distorted.as_slice()[lin].to_f64();
            ma.push(x);
            mb.push(y);
            vals.push((x, y));
            let mut axis = nd;
            let mut done = false;
            loop {
                if axis == 0 {
                    done = true;
                    break;
                }
                axis -= 1;
                local[axis] += 1;
                if local[axis] < block.size[axis] {
                    break;
                }
                local[axis] = 0;
            }
            if done {
                break;
            }
        }
        for &(x, y) in &vals {
            cov_acc += (x - ma.mean) * (y - mb.mean);
        }
        let cov = cov_acc / vals.len() as f64;
        total += ssim_from_stats(ma.mean, mb.mean, ma.variance(), mb.variance(), cov, c);
        count += 1;
    }
    total / count as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rq_grid::Shape;

    fn field(shape: Shape) -> NdArray<f64> {
        NdArray::from_fn(shape, |ix| {
            (ix[0] as f64 * 0.17).sin() * 4.0 + ix.get(1).map_or(0.0, |&j| j as f64 * 0.02)
        })
    }

    #[test]
    fn identical_is_one() {
        let a = field(Shape::d2(32, 32));
        assert!((global_ssim(&a, &a) - 1.0).abs() < 1e-12);
        assert!((windowed_ssim(&a, &a, 8) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn more_noise_lower_ssim() {
        let a = field(Shape::d2(64, 64));
        let noisy = |amp: f64| {
            let mut s = 7u64;
            NdArray::from_fn(a.shape(), |ix| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                let u = (s >> 11) as f64 / (1u64 << 53) as f64;
                a.get(&ix[..2]) + (u * 2.0 - 1.0) * amp
            })
        };
        let small = global_ssim(&a, &noisy(0.01));
        let large = global_ssim(&a, &noisy(0.5));
        assert!(small > large, "small-noise {small} vs large-noise {large}");
        assert!(small > 0.99);
        assert!((0.0..=1.0 + 1e-12).contains(&large));
    }

    #[test]
    fn global_matches_paper_model_on_pure_noise() {
        // For zero-mean additive noise E with small amplitude the paper's
        // Eq. 15 predicts SSIM ≈ (2σ_D² + C3) / (2σ_D² + C3 + σ_E²).
        let a = field(Shape::d1(100_000));
        let e = 0.05;
        let mut s = 99u64;
        let b = NdArray::from_fn(a.shape(), |ix| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            let u = (s >> 11) as f64 / (1u64 << 53) as f64;
            a.get(&ix[..1]) + (u * 2.0 - 1.0) * e
        });
        let measured = global_ssim(&a, &b);
        let var_d = Moments::from_slice(a.as_slice()).variance();
        let c3 = SsimConstants::for_range(a.value_range()).c_var;
        let var_e = e * e / 3.0;
        let model = (2.0 * var_d + c3) / (2.0 * var_d + c3 + var_e);
        assert!(
            (measured - model).abs() < 2e-4,
            "measured {measured} model {model}"
        );
    }

    #[test]
    fn windowed_decreases_with_noise() {
        let a = field(Shape::d2(64, 64));
        let noisy = |amp: f64| {
            let mut s = 21u64;
            NdArray::from_fn(a.shape(), |ix| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                let u = (s >> 11) as f64 / (1u64 << 53) as f64;
                a.get(&ix[..2]) + (u * 2.0 - 1.0) * amp
            })
        };
        let small = windowed_ssim(&a, &noisy(0.01), 8);
        let large = windowed_ssim(&a, &noisy(0.5), 8);
        assert!(small > large, "small {small} large {large}");
        assert!(small <= 1.0 + 1e-12);
    }

    #[test]
    fn windowed_detects_local_structure_loss() {
        // Flattening one window to its mean destroys local structure; the
        // damaged window's contribution must drop the windowed mean below
        // the all-windows-perfect value of 1.
        let a = field(Shape::d2(64, 64));
        let mut b = a.clone();
        let mean: f64 = (0..8)
            .flat_map(|i| (0..8).map(move |j| (i, j)))
            .map(|(i, j)| a.get(&[i, j]))
            .sum::<f64>()
            / 64.0;
        for i in 0..8 {
            for j in 0..8 {
                b.set(&[i, j], mean);
            }
        }
        let w = windowed_ssim(&a, &b, 8);
        assert!(w < 0.999, "windowed {w}");
    }

    #[test]
    fn constant_fields() {
        let a = NdArray::<f64>::from_fn(Shape::d1(50), |_| 2.0);
        assert!((global_ssim(&a, &a) - 1.0).abs() < 1e-12);
    }
}
