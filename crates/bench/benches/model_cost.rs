//! Micro-benchmarks for the ratio-quality model itself: the build
//! (sampling) cost vs the per-estimate cost, and the trial-and-error
//! alternative for context. This is the Fig. 9 asymmetry in microbenchmark
//! form.
//!
//! A plain `main` with wall-clock timing rather than a criterion harness
//! (the offline build cannot fetch criterion).
//!
//! ```sh
//! cargo bench -p rq-bench --bench model_cost
//! ```

use rq_compress::{compress, CompressorConfig};
use rq_core::RqModel;
use rq_grid::{NdArray, Shape};
use rq_predict::PredictorKind;
use rq_quant::ErrorBoundMode;
use std::time::Instant;

fn bench_field() -> NdArray<f32> {
    let mut state = 0x0defu64;
    NdArray::from_fn(Shape::d3(48, 48, 48), |ix| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let noise = (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
        ((ix[0] as f64 * 0.09).cos() * 3.0 + noise * 0.2) as f32
    })
}

/// Mean wall-clock seconds over `reps` runs (after one warm-up).
fn time_mean(reps: usize, mut f: impl FnMut()) -> f64 {
    f();
    let t0 = Instant::now();
    for _ in 0..reps {
        f();
    }
    t0.elapsed().as_secs_f64() / reps as f64
}

fn main() {
    let field = bench_field();
    let field_mb = (field.len() * 4) as f64 / (1024.0 * 1024.0);

    println!("== model build (1% sampling pass, {:.1} MiB field) ==", field_mb);
    for kind in [PredictorKind::Lorenzo, PredictorKind::Interpolation, PredictorKind::Regression] {
        let t = time_mean(10, || {
            let _ = RqModel::build(&field, kind, 0.01, 1);
        });
        println!("{:<16} {:>9.3} ms  ({:>7.1} MiB/s)", kind.name(), t * 1e3, field_mb / t);
    }

    println!("\n== per-estimate cost (model already built) ==");
    let model = RqModel::build(&field, PredictorKind::Lorenzo, 0.01, 1);
    let t = time_mean(10_000, || {
        let _ = model.estimate(1e-3);
    });
    println!("estimate(eb)          {:>9.2} µs", t * 1e6);
    let t = time_mean(1_000, || {
        let _ = model.error_bound_for_bit_rate(2.0);
    });
    println!("invert bit-rate       {:>9.2} µs", t * 1e6);
    let t = time_mean(1_000, || {
        let _ = model.error_bound_for_psnr(60.0);
    });
    println!("invert PSNR           {:>9.2} µs", t * 1e6);

    println!("\n== trial-and-error alternative ==");
    let cfg = CompressorConfig::new(PredictorKind::Lorenzo, ErrorBoundMode::Abs(1e-3));
    let t = time_mean(5, || {
        let _ = compress(&field, &cfg).unwrap();
    });
    println!("one real compression  {:>9.3} ms  — ×(trials) per tuning step", t * 1e3);
}
