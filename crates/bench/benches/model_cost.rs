//! Criterion micro-benchmarks for the ratio-quality model itself: the
//! build (sampling) cost vs the per-estimate cost, and the trial-and-error
//! alternative for context. This is the Fig. 9 asymmetry in microbenchmark
//! form.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rq_compress::{compress, CompressorConfig};
use rq_core::RqModel;
use rq_grid::{NdArray, Shape};
use rq_predict::PredictorKind;
use rq_quant::ErrorBoundMode;

fn bench_field() -> NdArray<f32> {
    let mut state = 0x0defu64;
    NdArray::from_fn(Shape::d3(48, 48, 48), |ix| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let noise = (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
        ((ix[0] as f64 * 0.09).cos() * 3.0 + noise * 0.2) as f32
    })
}

fn model_build(c: &mut Criterion) {
    let field = bench_field();
    let mut g = c.benchmark_group("model_build");
    g.throughput(Throughput::Bytes((field.len() * 4) as u64));
    g.sample_size(10);
    for kind in [PredictorKind::Lorenzo, PredictorKind::Interpolation, PredictorKind::Regression]
    {
        g.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, &kind| {
            b.iter(|| RqModel::build(&field, kind, 0.01, 1))
        });
    }
    g.finish();
}

fn model_estimate(c: &mut Criterion) {
    let field = bench_field();
    let model = RqModel::build(&field, PredictorKind::Lorenzo, 0.01, 1);
    let mut g = c.benchmark_group("model_estimate");
    g.bench_function("single_eb", |b| b.iter(|| model.estimate(1e-3)));
    g.bench_function("invert_bit_rate", |b| b.iter(|| model.error_bound_for_bit_rate(2.0)));
    g.bench_function("invert_psnr", |b| b.iter(|| model.error_bound_for_psnr(60.0)));
    g.finish();
}

fn trial_and_error_alternative(c: &mut Criterion) {
    let field = bench_field();
    let cfg = CompressorConfig::new(PredictorKind::Lorenzo, ErrorBoundMode::Abs(1e-3));
    let mut g = c.benchmark_group("tae_single_trial");
    g.throughput(Throughput::Bytes((field.len() * 4) as u64));
    g.sample_size(10);
    g.bench_function("one_compression", |b| b.iter(|| compress(&field, &cfg).unwrap()));
    g.finish();
}

criterion_group!(benches, model_build, model_estimate, trial_and_error_alternative);
criterion_main!(benches);
