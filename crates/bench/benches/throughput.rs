//! Criterion micro-benchmarks: compressor throughput per predictor plus
//! the entropy-coding substrate — backing the paper's "low computational
//! overhead" claims with wall-clock numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rq_compress::{compress, decompress, CompressorConfig};
use rq_encoding::HuffmanCodec;
use rq_grid::{NdArray, Shape};
use rq_predict::PredictorKind;
use rq_quant::ErrorBoundMode;

fn bench_field() -> NdArray<f32> {
    let mut state = 0xBE7Cu64;
    NdArray::from_fn(Shape::d3(48, 48, 48), |ix| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let noise = (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
        ((ix[0] as f64 * 0.1).sin() * 4.0 + noise * 0.1) as f32
    })
}

fn compressor_throughput(c: &mut Criterion) {
    let field = bench_field();
    let bytes = (field.len() * 4) as u64;
    let mut g = c.benchmark_group("compress");
    g.throughput(Throughput::Bytes(bytes));
    g.sample_size(10);
    for kind in PredictorKind::all() {
        let cfg = CompressorConfig::new(kind, ErrorBoundMode::Abs(1e-3));
        g.bench_with_input(BenchmarkId::from_parameter(kind.name()), &cfg, |b, cfg| {
            b.iter(|| compress(&field, cfg).unwrap())
        });
    }
    g.finish();

    let mut g = c.benchmark_group("decompress");
    g.throughput(Throughput::Bytes(bytes));
    g.sample_size(10);
    for kind in PredictorKind::all() {
        let cfg = CompressorConfig::new(kind, ErrorBoundMode::Abs(1e-3));
        let out = compress(&field, &cfg).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(kind.name()), &out.bytes, |b, bytes| {
            b.iter(|| decompress::<f32>(bytes).unwrap())
        });
    }
    g.finish();
}

fn huffman_throughput(c: &mut Criterion) {
    // Zero-dominated symbol stream like real quantization codes.
    let symbols: Vec<u32> = (0..1_000_000u32)
        .map(|i| {
            let h = (i as u64).wrapping_mul(0x9E3779B97F4A7C15) >> 56;
            match h {
                0..=200 => 100,
                201..=228 => 99,
                229..=250 => 101,
                _ => (h % 32) as u32 + 84,
            }
        })
        .collect();
    let mut counts = vec![0u64; 200];
    for &s in &symbols {
        counts[s as usize] += 1;
    }
    let codec = HuffmanCodec::from_counts(&counts).unwrap();
    let encoded = codec.encode(&symbols).unwrap();

    let mut g = c.benchmark_group("huffman");
    g.throughput(Throughput::Elements(symbols.len() as u64));
    g.sample_size(10);
    g.bench_function("encode_1M", |b| b.iter(|| codec.encode(&symbols).unwrap()));
    g.bench_function("decode_1M", |b| {
        b.iter(|| codec.decode(&encoded, symbols.len()).unwrap())
    });
    g.finish();
}

criterion_group!(benches, compressor_throughput, huffman_throughput);
criterion_main!(benches);
