//! Compressor and codec throughput, including the chunk-parallel scaling
//! table (1/2/4/8 threads) that backs the parallel pipeline's speedup
//! claim.
//!
//! A plain `main` with wall-clock timing rather than a criterion harness:
//! the offline build cannot fetch criterion, and throughput trends at
//! these workload sizes are far coarser than criterion's precision.
//!
//! ```sh
//! cargo bench -p rq-bench --bench throughput              # full (256³ field)
//! RQM_QUICK=1 cargo bench -p rq-bench --bench throughput  # small, for CI
//! ```

use rq_compress::{compress, decompress, decompress_with_threads, CompressorConfig};
use rq_encoding::HuffmanCodec;
use rq_grid::{NdArray, Shape};
use rq_predict::PredictorKind;
use rq_quant::ErrorBoundMode;
use std::time::Instant;

fn bench_field(side: usize) -> NdArray<f32> {
    let mut state = 0xBE7Cu64;
    NdArray::from_fn(Shape::d3(side, side, side), |ix| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let noise = (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
        ((ix[0] as f64 * 0.1).sin() * 4.0 + noise * 0.1) as f32
    })
}

/// Best-of-`reps` wall-clock seconds for `f`.
fn time_best(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn mb_per_s(bytes: usize, secs: f64) -> f64 {
    bytes as f64 / secs / (1024.0 * 1024.0)
}

fn serial_throughput(field: &NdArray<f32>, reps: usize) {
    let bytes = field.len() * 4;
    println!("\n== serial pipeline ({} MiB field) ==", bytes >> 20);
    println!("{:<16} {:>12} {:>12}", "predictor", "comp MiB/s", "decomp MiB/s");
    for kind in PredictorKind::all() {
        let cfg = CompressorConfig::new(kind, ErrorBoundMode::Abs(1e-3));
        let t_comp = time_best(reps, || {
            let _ = compress(field, &cfg).unwrap();
        });
        let out = compress(field, &cfg).unwrap();
        let t_dec = time_best(reps, || {
            let _ = decompress::<f32>(&out.bytes).unwrap();
        });
        println!(
            "{:<16} {:>12.1} {:>12.1}",
            kind.name(),
            mb_per_s(bytes, t_comp),
            mb_per_s(bytes, t_dec)
        );
    }
}

fn parallel_scaling(field: &NdArray<f32>, reps: usize) {
    let bytes = field.len() * 4;
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!(
        "\n== chunk-parallel scaling ({} MiB field, interpolation, abs 1e-3, {} core(s)) ==",
        bytes >> 20,
        cores
    );
    if cores < 4 {
        println!(
            "   note: only {cores} core(s) available — thread counts above that time-slice \
             one core, so speedups are bounded near 1.0x here"
        );
    }
    println!(
        "{:>8} {:>12} {:>12} {:>10} {:>12} {:>10}",
        "threads", "comp MiB/s", "comp spdup", "chunks", "dec MiB/s", "dec spdup"
    );
    let base = CompressorConfig::new(PredictorKind::Interpolation, ErrorBoundMode::Abs(1e-3));
    let mut comp_t1 = 0.0;
    let mut dec_t1 = 0.0;
    for threads in [1usize, 2, 4, 8] {
        let cfg = base.auto_chunked().with_threads(threads);
        let t_comp = time_best(reps, || {
            let _ = compress(field, &cfg).unwrap();
        });
        let (out, rep) = rq_compress::compress_with_report(field, &cfg).unwrap();
        let t_dec = time_best(reps, || {
            let _ = decompress_with_threads::<f32>(&out.bytes, threads).unwrap();
        });
        if threads == 1 {
            comp_t1 = t_comp;
            dec_t1 = t_dec;
        }
        println!(
            "{:>8} {:>12.1} {:>11.2}x {:>10} {:>12.1} {:>9.2}x",
            threads,
            mb_per_s(bytes, t_comp),
            comp_t1 / t_comp,
            rep.n_chunks,
            mb_per_s(bytes, t_dec),
            dec_t1 / t_dec
        );
    }
}

fn huffman_throughput() {
    // Zero-dominated symbol stream like real quantization codes.
    let symbols: Vec<u32> = (0..1_000_000u32)
        .map(|i| {
            let h = (i as u64).wrapping_mul(0x9E3779B97F4A7C15) >> 56;
            match h {
                0..=200 => 100,
                201..=228 => 99,
                229..=250 => 101,
                _ => (h % 32) as u32 + 84,
            }
        })
        .collect();
    let mut counts = vec![0u64; 200];
    for &s in &symbols {
        counts[s as usize] += 1;
    }
    let codec = HuffmanCodec::from_counts(&counts).unwrap();
    let encoded = codec.encode(&symbols).unwrap();

    println!("\n== huffman (1M symbols) ==");
    let t_enc = time_best(5, || {
        let _ = codec.encode(&symbols).unwrap();
    });
    let t_dec = time_best(5, || {
        let _ = codec.decode(&encoded, symbols.len()).unwrap();
    });
    println!("encode {:>8.1} Msym/s", 1.0 / t_enc);
    println!("decode {:>8.1} Msym/s", 1.0 / t_dec);
}

fn main() {
    let quick = rq_bench::quick();
    let side = if quick { 64 } else { 256 };
    let reps = if quick { 2 } else { 3 };
    let field = bench_field(side);
    serial_throughput(&field, reps);
    parallel_scaling(&field, reps);
    huffman_throughput();
}
