//! Ablation: ratio-driven per-chunk codec selection (`--codec auto`) vs
//! the three fixed backends, on datagen stand-ins plus a deliberately
//! mixed smooth/turbulent field. Self-asserting; records the sweep to
//! `BENCH_ablation.json`.
//!
//! For each field × error bound the table reports the container bit-rate
//! of fixed-SZ, fixed-ZFP, fixed-ROLZ and the three-way adaptive
//! scheduler, the measured PSNR of the adaptive reconstruction, and how
//! the scheduler split the chunks. Gates (asserted, in quick mode too,
//! so CI enforces them per run):
//!
//! - every adaptive reconstruction honors the bound element-wise;
//! - per row, adaptive tracks `min(sz, zfp, rolz)` to within the
//!   per-chunk index overhead (5%);
//! - on the mixed-field corpus, summed across the bound grid, adaptive
//!   strictly ≤ *each* fixed choice — per-chunk selection must pay for
//!   its trailer.
//!
//! ```sh
//! cargo run --release -p rq-bench --bin ablation_auto_codec [-- --quick]
//! ```

use std::io::Write;

use rq_analysis::psnr;
use rq_bench::{eb_grid, f, jf, Table};
use rq_compress::{
    compress, compress_with_report, decompress, ChunkCodecKind, CodecChoice, CompressorConfig,
};
use rq_grid::{NdArray, Shape};
use rq_predict::PredictorKind;
use rq_quant::ErrorBoundMode;

/// Smooth wave on the first half of axis 0, high-amplitude hash noise on
/// the second half — the workload per-chunk selection exists for.
fn mixed_field(quick: bool) -> NdArray<f32> {
    let d0 = if quick { 32 } else { 64 };
    rq_datagen::fields::mixed_smooth_turbulent(Shape::d3(d0, 48, 48), d0 / 2, 40.0)
}

struct Row {
    eb_rel: f64,
    eb: f64,
    sz_bits: f64,
    zfp_bits: f64,
    rolz_bits: f64,
    auto_bits: f64,
    auto_psnr: f64,
    n_sz: usize,
    n_zfp: usize,
    n_rolz: usize,
}

fn main() {
    let quick = rq_bench::quick() || std::env::args().any(|a| a == "--quick");
    println!("# Ablation — adaptive per-chunk codec selection vs fixed sz / zfp / rolz\n");
    let fields = [
        ("Mixed smooth/turbulent (3D)", mixed_field(quick)),
        ("Hurricane-like U (3D)", rq_datagen::fields::hurricane_u()),
        ("CESM-like TS (2D)", rq_datagen::fields::cesm_ts()),
    ];
    let chunk_rows = 8;
    let points = if quick { 3 } else { 5 };
    let mut per_field: Vec<(&str, Vec<usize>, Vec<Row>)> = Vec::new();

    for (name, field) in &fields {
        println!("## {name} {:?}, {chunk_rows}-row chunks", field.shape());
        let range = field.value_range();
        let mut t = Table::new(&[
            "eb/range",
            "sz bits",
            "zfp bits",
            "rolz bits",
            "auto bits",
            "auto PSNR",
            "chunks sz/zfp/rolz",
        ]);
        let mut rows = Vec::new();
        for eb in eb_grid(range, 1e-6, 1e-3, points) {
            let base = CompressorConfig::new(PredictorKind::Lorenzo, ErrorBoundMode::Abs(eb))
                .chunked(chunk_rows);
            let sz = compress(field, &base).expect("sz");
            let zfp = compress(field, &base.with_codec(CodecChoice::Zfp)).expect("zfp");
            let rolz = compress(field, &base.with_codec(CodecChoice::Rolz)).expect("rolz");
            let (auto, rep) =
                compress_with_report(field, &base.with_codec(CodecChoice::Auto)).expect("auto");
            let back = decompress::<f32>(&auto.bytes).expect("auto decompress");
            // Gate: the adaptive reconstruction honors the bound
            // element-wise — a scheduler bug may not show up in bit-rates.
            for (i, (&a, &b)) in field.as_slice().iter().zip(back.as_slice()).enumerate() {
                assert!(
                    ((a - b).abs() as f64) <= eb * (1.0 + 1e-6),
                    "{name} eb={eb:.3e}: element {i} |{a} - {b}| > {eb}"
                );
            }
            let count =
                |k: ChunkCodecKind| rep.chunk_codecs.iter().filter(|&&c| c == k).count();
            let row = Row {
                eb_rel: eb / range,
                eb,
                sz_bits: sz.bit_rate(),
                zfp_bits: zfp.bit_rate(),
                rolz_bits: rolz.bit_rate(),
                auto_bits: auto.bit_rate(),
                auto_psnr: psnr(field, &back),
                n_sz: count(ChunkCodecKind::Sz),
                n_zfp: count(ChunkCodecKind::Zfp),
                n_rolz: count(ChunkCodecKind::Rolz),
            };
            // Gate: adaptive tracks the best fixed choice per row. The
            // slack covers the v2.4 trailer plus probe-estimate misses
            // on individual chunks.
            let best = row.sz_bits.min(row.zfp_bits).min(row.rolz_bits);
            assert!(
                row.auto_bits <= best * 1.05,
                "{name} eb={eb:.3e}: auto {:.3} bits/val vs best fixed {best:.3}",
                row.auto_bits
            );
            t.row(&[
                format!("{:.1e}", row.eb_rel),
                f(row.sz_bits, 3),
                f(row.zfp_bits, 3),
                f(row.rolz_bits, 3),
                f(row.auto_bits, 3),
                f(row.auto_psnr, 1),
                format!("{}/{}/{}", row.n_sz, row.n_zfp, row.n_rolz),
            ]);
            rows.push(row);
        }
        t.print();
        println!();
        per_field.push((name, field.shape().dims().to_vec(), rows));
    }

    // Corpus gate: on the mixed field, summed across the bound grid, the
    // three-way adaptive scheduler beats (≤) every fixed backend — the
    // point of the ablation. Bit-rates share one denominator (the raw
    // field), so summing rates compares total compressed bytes.
    let mixed = &per_field[0].2;
    let total = |pick: fn(&Row) -> f64| mixed.iter().map(pick).sum::<f64>();
    let (sz_t, zfp_t, rolz_t, auto_t) = (
        total(|r| r.sz_bits),
        total(|r| r.zfp_bits),
        total(|r| r.rolz_bits),
        total(|r| r.auto_bits),
    );
    for (fixed_name, fixed_t) in [("sz", sz_t), ("zfp", zfp_t), ("rolz", rolz_t)] {
        assert!(
            auto_t <= fixed_t,
            "mixed corpus: auto {auto_t:.3} total bits/val exceeds fixed {fixed_name} {fixed_t:.3}"
        );
    }
    // And the split is genuinely three-way somewhere in the mixed sweep:
    // each backend wins at least one chunk at some bound.
    let used = |pick: fn(&Row) -> usize| mixed.iter().map(pick).sum::<usize>() > 0;
    assert!(
        used(|r| r.n_sz) && used(|r| r.n_zfp) && used(|r| r.n_rolz),
        "mixed corpus never exercised all three backends: {:?}",
        mixed.iter().map(|r| (r.n_sz, r.n_zfp, r.n_rolz)).collect::<Vec<_>>()
    );

    // Hand-rolled JSON (the workspace has no serde): the ablation sweep
    // and the corpus-gate outcome across PRs.
    let mut j = String::new();
    j.push_str("{\n  \"bench\": \"ablation_auto_codec\",\n");
    j.push_str(&format!("  \"quick\": {quick},\n"));
    j.push_str(&format!("  \"chunk_rows\": {chunk_rows},\n"));
    j.push_str(&format!(
        "  \"mixed_total_bits\": {{\"sz\": {}, \"zfp\": {}, \"rolz\": {}, \"auto\": {}}},\n",
        jf(sz_t, 3),
        jf(zfp_t, 3),
        jf(rolz_t, 3),
        jf(auto_t, 3)
    ));
    j.push_str("  \"auto_beats_all_fixed_on_mixed\": true,\n");
    j.push_str("  \"fields\": [\n");
    for (fi, (name, dims, rows)) in per_field.iter().enumerate() {
        j.push_str(&format!("    {{\"name\": {name:?}, \"shape\": {dims:?}, \"rows\": [\n"));
        for (i, r) in rows.iter().enumerate() {
            j.push_str(&format!(
                "      {{\"eb_rel\": {}, \"eb\": {}, \"sz_bits\": {}, \"zfp_bits\": {}, \
                 \"rolz_bits\": {}, \"auto_bits\": {}, \"auto_psnr_db\": {}, \
                 \"n_sz\": {}, \"n_zfp\": {}, \"n_rolz\": {}}}{}\n",
                jf(r.eb_rel, 9),
                rq_compress::json_f64(r.eb),
                jf(r.sz_bits, 3),
                jf(r.zfp_bits, 3),
                jf(r.rolz_bits, 3),
                jf(r.auto_bits, 3),
                jf(r.auto_psnr, 1),
                r.n_sz,
                r.n_zfp,
                r.n_rolz,
                if i + 1 < rows.len() { "," } else { "" }
            ));
        }
        j.push_str(&format!(
            "    ]}}{}\n",
            if fi + 1 < per_field.len() { "," } else { "" }
        ));
    }
    j.push_str("  ]\n}\n");
    let mut out = std::fs::File::create("BENCH_ablation.json").unwrap();
    out.write_all(j.as_bytes()).unwrap();
    println!("wrote BENCH_ablation.json ({} fields)\n", per_field.len());

    println!(
        "Reading: \"auto bits\" tracks min(sz, zfp, rolz) per chunk; on the mixed field\n\
         the split column shows smooth slabs going to sz and turbulent slabs to the\n\
         transform codec (zfp) or the reduced-offset LZ (rolz), whichever the probe\n\
         estimates cheaper — and the summed adaptive rate beats every fixed backend."
    );
}
