//! Ablation: ratio-driven per-chunk codec selection (`--codec auto`) vs
//! the two fixed backends, on datagen stand-ins plus a deliberately mixed
//! smooth/turbulent field.
//!
//! For each field × error bound the table reports the container bit-rate
//! of fixed-SZ, fixed-ZFP and the adaptive scheduler, the measured PSNR
//! of the adaptive reconstruction, and how the scheduler split the chunks.
//! The adaptive row should track `min(sz, zfp)` to within the per-chunk
//! index overhead — per-chunk selection can also beat *both* fixed
//! choices outright when the field mixes regimes along axis 0.
//!
//! ```sh
//! cargo run --release -p rq-bench --bin ablation_auto_codec
//! ```

use rq_analysis::psnr;
use rq_bench::{eb_grid, f, Table};
use rq_compress::{
    compress, compress_with_report, decompress, ChunkCodecKind, CodecChoice, CompressorConfig,
};
use rq_grid::{NdArray, Shape};
use rq_predict::PredictorKind;
use rq_quant::ErrorBoundMode;

/// Smooth wave on the first half of axis 0, high-amplitude hash noise on
/// the second half — the workload per-chunk selection exists for.
fn mixed_field() -> NdArray<f32> {
    let d0 = if rq_bench::quick() { 32 } else { 64 };
    rq_datagen::fields::mixed_smooth_turbulent(Shape::d3(d0, 48, 48), d0 / 2, 40.0)
}

fn main() {
    println!("# Ablation — adaptive per-chunk codec selection vs fixed sz / fixed zfp\n");
    let fields = [
        ("Mixed smooth/turbulent (3D)", mixed_field()),
        ("Hurricane-like U (3D)", rq_datagen::fields::hurricane_u()),
        ("CESM-like TS (2D)", rq_datagen::fields::cesm_ts()),
    ];
    let chunk_rows = 8;
    for (name, field) in &fields {
        println!("## {name} {:?}, {chunk_rows}-row chunks", field.shape());
        let range = field.value_range();
        let mut t = Table::new(&[
            "eb/range",
            "sz bits",
            "zfp bits",
            "auto bits",
            "auto PSNR",
            "chunks sz/zfp",
        ]);
        for eb in eb_grid(range, 1e-6, 1e-3, if rq_bench::quick() { 3 } else { 5 }) {
            let base = CompressorConfig::new(PredictorKind::Lorenzo, ErrorBoundMode::Abs(eb))
                .chunked(chunk_rows);
            let sz = compress(field, &base).expect("sz");
            let zfp =
                compress(field, &base.with_codec(CodecChoice::Zfp)).expect("zfp");
            let (auto, rep) =
                compress_with_report(field, &base.with_codec(CodecChoice::Auto)).expect("auto");
            let back = decompress::<f32>(&auto.bytes).expect("auto decompress");
            let n_zfp = rep
                .chunk_codecs
                .iter()
                .filter(|&&c| c == ChunkCodecKind::Zfp)
                .count();
            t.row(&[
                format!("{:.1e}", eb / range),
                f(sz.bit_rate(), 3),
                f(zfp.bit_rate(), 3),
                f(auto.bit_rate(), 3),
                f(psnr(field, &back), 1),
                format!("{}/{}", rep.n_chunks - n_zfp, n_zfp),
            ]);
        }
        t.print();
        println!();
    }
    println!(
        "Reading: \"auto bits\" should track min(sz, zfp) per chunk; on the mixed field\n\
         the split column shows smooth slabs going to sz and turbulent slabs to zfp."
    );
}
