//! Ablation of the model's correction layer (DESIGN.md §5): what each
//! ingredient — the reconstruction-feedback κ, the quality cascade gain,
//! the sparsity split, and the sampling rate — contributes to estimation
//! accuracy.
//!
//! ```sh
//! cargo run --release -p rq-bench --bin ablation_model_corrections
//! ```

use rq_analysis::psnr;
use rq_bench::{eb_grid, eq20_error, pct, Table};
use rq_compress::{compress, decompress, CompressorConfig};
use rq_core::{sample_errors, RqModel};
use rq_grid::NdArray;
use rq_grid::stats::Moments;
use rq_predict::PredictorKind;
use rq_quant::ErrorBoundMode;

/// Measured (bit-rate, psnr) ground truth across the grid.
fn ground_truth(
    field: &NdArray<f32>,
    kind: PredictorKind,
    ebs: &[f64],
) -> Vec<(f64, f64)> {
    ebs.iter()
        .map(|&eb| {
            let cfg = CompressorConfig::new(kind, ErrorBoundMode::Abs(eb));
            let out = compress(field, &cfg).expect("compress");
            let back = decompress::<f32>(&out.bytes).expect("decompress");
            (out.bit_rate(), psnr(field, &back))
        })
        .collect()
}

fn eval_variant(
    field: &NdArray<f32>,
    kind: PredictorKind,
    ebs: &[f64],
    truth: &[(f64, f64)],
    mutate: impl Fn(&mut rq_core::ErrorSample),
    rate: f64,
) -> (f64, f64) {
    let mut sample = sample_errors(field, kind, rate, 5);
    mutate(&mut sample);
    let model = RqModel::from_sample(
        sample,
        32,
        field.value_range(),
        Moments::from_slice(field.as_slice()).variance(),
    );
    let mut rate_pairs = Vec::new();
    let mut psnr_pairs = Vec::new();
    for (&eb, &(m_bits, m_psnr)) in ebs.iter().zip(truth) {
        let est = model.estimate(eb);
        rate_pairs.push((m_bits, est.bit_rate));
        psnr_pairs.push((m_psnr, est.psnr));
    }
    (eq20_error(&rate_pairs), eq20_error(&psnr_pairs))
}

fn main() {
    println!("# Ablation — model correction layer\n");
    let field = rq_datagen::fields::rtm_snapshot(300);
    let range = field.value_range();
    let ebs = eb_grid(range, 1e-5, 1e-2, if rq_bench::quick() { 4 } else { 6 });

    for kind in [PredictorKind::Lorenzo, PredictorKind::Interpolation] {
        println!("## predictor: {} (RTM-like snapshot)", kind.name());
        let truth = ground_truth(&field, kind, &ebs);
        let mut t = Table::new(&["variant", "bit-rate err (Eq.20)", "PSNR err (Eq.20)"]);
        type SampleTweak = Box<dyn Fn(&mut rq_core::ErrorSample)>;
        let cases: Vec<(&str, SampleTweak)> = vec![
            ("full model (1% sample)", Box::new(|_s: &mut rq_core::ErrorSample| {})),
            ("no feedback κ", Box::new(|s: &mut rq_core::ErrorSample| s.feedback_kappa = 0.0)),
            ("no quality cascade", Box::new(|s: &mut rq_core::ErrorSample| {
                s.quality_kappa = 0.0
            })),
            ("no sparsity split", Box::new(|s: &mut rq_core::ErrorSample| {
                // Fold the sparse mass back as plain zero errors.
                let extra =
                    (s.sparse_fraction / (1.0 - s.sparse_fraction).max(1e-9) * s.len() as f64)
                        as usize;
                s.errors.extend(std::iter::repeat_n(0.0, extra));
                s.weights.extend(std::iter::repeat_n(1.0, extra));
                s.sparse_fraction = 0.0;
            })),
        ];
        for (name, mutate) in cases {
            let (rate_err, psnr_err) = eval_variant(&field, kind, &ebs, &truth, mutate, 0.01);
            t.row(&[name.into(), pct(rate_err), pct(psnr_err)]);
        }
        // Sampling-rate sensitivity.
        for rate in [0.001, 0.1] {
            let (rate_err, psnr_err) =
                eval_variant(&field, kind, &ebs, &truth, |_| {}, rate);
            t.row(&[format!("full model ({}% sample)", rate * 100.0), pct(rate_err), pct(psnr_err)]);
        }
        t.print();
        println!();
    }
    println!(
        "Reading: each removed correction should *increase* the relevant error\n\
         column — feedback κ matters for Lorenzo bit-rates, the quality cascade\n\
         for interpolation PSNR, the sparsity split for wavefield bit-rates."
    );
}
