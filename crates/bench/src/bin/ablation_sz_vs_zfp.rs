//! Ablation/extension: SZ-style (prediction-based) vs ZFP-style
//! (transform-based) rate-distortion, the comparison behind the paper's
//! reference \[11\] (automatic online selection between SZ and ZFP) and its
//! stated future work (extending the model to transform-based codecs).
//!
//! ```sh
//! cargo run --release -p rq-bench --bin ablation_sz_vs_zfp
//! ```

use rq_analysis::psnr;
use rq_bench::{eb_grid, f, Table};
use rq_compress::{compress, decompress, CompressorConfig};
use rq_predict::PredictorKind;
use rq_quant::ErrorBoundMode;
use rq_zfp::{zfp_compress, zfp_decompress};

fn main() {
    println!("# Ablation — prediction-based (SZ-style) vs transform-based (ZFP-style)\n");
    let fields = [
        ("Hurricane-like U (3D)", rq_datagen::fields::hurricane_u()),
        ("CESM-like TS (2D)", rq_datagen::fields::cesm_ts()),
        ("RTM-like snapshot (3D)", rq_datagen::fields::rtm_snapshot(300)),
    ];
    for (name, field) in &fields {
        println!("## {name} {:?}", field.shape());
        let range = field.value_range();
        let mut t = Table::new(&[
            "eb/range",
            "SZ bits",
            "SZ PSNR",
            "ZFP bits",
            "ZFP PSNR",
            "winner@rate",
        ]);
        for eb in eb_grid(range, 1e-5, 1e-2, if rq_bench::quick() { 4 } else { 6 }) {
            let cfg =
                CompressorConfig::new(PredictorKind::Interpolation, ErrorBoundMode::Abs(eb));
            let sz = compress(field, &cfg).expect("sz compress");
            let sz_back = decompress::<f32>(&sz.bytes).expect("sz decompress");
            let zf = zfp_compress(field, eb).expect("zfp compress");
            let zf_back = zfp_decompress::<f32>(&zf).expect("zfp decompress");
            let sz_bits = sz.bit_rate();
            let zf_bits = zf.len() as f64 * 8.0 / field.len() as f64;
            let (sp, zp) = (psnr(field, &sz_back), psnr(field, &zf_back));
            // Same bound: compare bits (quality is comparable by construction).
            let winner = if sz_bits <= zf_bits { "SZ" } else { "ZFP" };
            t.row(&[
                format!("{:.1e}", eb / range),
                f(sz_bits, 3),
                f(sp, 1),
                f(zf_bits, 3),
                f(zp, 1),
                winner.into(),
            ]);
        }
        t.print();
        println!();
    }
    println!(
        "Expected shape (literature, e.g. Tao et al. TPDS'19): the prediction-based\n\
         compressor wins on most structured scientific fields at equal bounds, the\n\
         transform-based codec narrows the gap (or wins) on smooth low-rate data —\n\
         which is exactly why the paper's model-driven *selection* is valuable."
    );
}
