//! Per-stage codec kernel throughput: the table-driven / word-at-a-time
//! fast paths against the frozen scalar reference kernels, recorded to
//! `BENCH_codec_kernels.json`.
//!
//! Every stage the per-core rework touched is timed in isolation —
//! Huffman encode/decode, zero-RLE, LZSS, quantization, the Lorenzo
//! prediction traversal — plus the whole chunk pipeline end to end, each
//! on both kernel paths ([`KernelPath::Fast`] vs
//! [`KernelPath::Reference`]). Both paths produce byte-identical output
//! (held by `tests/kernel_differential.rs`); this bench records what the
//! identity costs, and **asserts** the speedups that justified the
//! rework:
//!
//! - whole-pipeline decode ≥ 3× the recorded ~85 MB/s pre-rework record
//!   (`BENCH_decode.json` seed history, same box) — full runs only, the
//!   quick field is too small to amortize per-chunk setup — plus ≥ 2×
//!   the live reference path, which is machine-stable;
//! - per-stage ratio gates where the kernel rework actually landed:
//!   Huffman decode ≥ 2×, Huffman encode ≥ 1.3×, LZSS ≥ 2.5×/3×,
//!   zero-RLE compress ≥ 1.5×, Lorenzo traversal ≥ 3×;
//! - a whole-pipeline encode floor of ≥ 1.2× the reference path.
//!
//! The encode floor is deliberately not the 2× the decode side carries.
//! Whole-pipeline encode is bound by a serial dependency chain the
//! container format freezes: each point's `(value − prediction) / 2eb`
//! divide, ties-away round, and reconstruction feed the *next* point's
//! Lorenzo prediction — about 60 cycles per point, ~22 ms for the
//! 1M-point bench field before the entropy stages run at all — so no
//! entropy-kernel speedup can push the end-to-end ratio much past ~1.2×.
//! The decode side has no such chain on its integer half (symbol decode
//! is independent of reconstruction, which is why fusing them per symbol
//! works), which is where the 3× target is actually achievable and met.
//!
//! ```sh
//! cargo run --release -p rq-bench --bin codec_kernels            # full
//! RQM_QUICK=1 cargo run --release -p rq-bench --bin codec_kernels # CI
//! ```

use rq_bench::{f, jf, Table};
use rq_compress::kernels::{decode_chunk, encode_chunk, traverse_lorenzo, KernelPath};
use rq_compress::LosslessStage;
use rq_encoding::huffman::HuffmanCodec;
use rq_encoding::reference::{
    lzss_compress_ref, lzss_decompress_bounded_ref, rle_compress_ref, rle_decompress_bounded_ref,
};
use rq_encoding::{lzss, rle};
use rq_grid::Shape;
use rq_predict::PredictorKind;
use rq_quant::LinearQuantizer;
use std::io::Write;
use std::time::Instant;

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Best-of-N wall time for `work`, in seconds. `work` must return a value
/// that depends on the computation so nothing is optimized away.
fn time_best<R>(iters: usize, mut work: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..iters {
        let t0 = Instant::now();
        let r = work();
        best = best.min(t0.elapsed().as_secs_f64());
        out = Some(r);
    }
    (best, out.unwrap())
}

/// One stage's measurement: fast and reference MB/s over the same
/// `bytes` of work.
struct Stage {
    name: &'static str,
    fast_mbps: f64,
    ref_mbps: f64,
}

impl Stage {
    fn speedup(&self) -> f64 {
        self.fast_mbps / self.ref_mbps
    }
}

/// Quantization-shaped symbol stream: zero-code dominated, alphabet 2r+1.
fn symbol_stream(n: usize, radius: u32) -> Vec<u32> {
    let centre = radius;
    let mut st = 0x9E37_79B9_7F4A_7C15u64;
    (0..n)
        .map(|_| {
            let r = xorshift(&mut st);
            match r % 100 {
                0..=69 => centre,
                70..=79 => centre - 1,
                80..=89 => centre + 1,
                90..=93 => centre - 2,
                94..=97 => centre + 2,
                _ => ((r / 100) % (2 * radius as u64 + 1)) as u32,
            }
        })
        .collect()
}

/// Huffman-payload-shaped bytes: long zero runs with literal islands.
fn rle_input(n: usize) -> Vec<u8> {
    let mut st = 0x1357_9BDF_2468_ACE0u64;
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let r = xorshift(&mut st);
        out.extend(std::iter::repeat_n(0u8, 16 + (r % 200) as usize));
        for _ in 0..(r >> 32) % 12 {
            out.push(xorshift(&mut st) as u8);
        }
    }
    out.truncate(n);
    out
}

/// Dictionary-friendly bytes: repeated phrases with noise between.
fn lzss_input(n: usize) -> Vec<u8> {
    let mut st = 0x0F1E_2D3C_4B5A_6978u64;
    let phrases: [&[u8]; 3] = [
        b"pressure gradient over the western boundary layer ",
        b"0123456789abcdef",
        b"the quick brown fox jumps over the lazy dog ",
    ];
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let r = xorshift(&mut st);
        out.extend_from_slice(phrases[(r % 3) as usize]);
        if r.is_multiple_of(5) {
            out.push(xorshift(&mut st) as u8);
        }
    }
    out.truncate(n);
    out
}

/// The synthetic field the whole-pipeline stages compress: smooth waves
/// plus avalanche noise, the same recipe as the decode_scaling bench.
fn field(shape: Shape) -> Vec<f32> {
    let mut out = Vec::with_capacity(shape.len());
    for (lin, ix) in shape.indices().enumerate() {
        let mut v = 0.0f64;
        for (a, &c) in ix.iter().enumerate() {
            v += ((c as f64) * 0.11 * (a + 1) as f64).sin() * (6.0 / (a + 1) as f64);
        }
        let mut h = lin as u64 + 1;
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51afd7ed558ccd);
        h ^= h >> 33;
        v += ((h >> 40) as f64 / (1u64 << 24) as f64 - 0.5) * 0.02;
        out.push(v as f32);
    }
    out
}

fn mbps(bytes: usize, secs: f64) -> f64 {
    bytes as f64 / 1e6 / secs
}

/// Serial whole-pipeline decode throughput the seed's `BENCH_decode.json`
/// recorded on this box before the kernel rework — the anchor for the
/// ROADMAP's ≥ 3× decode target.
const BASELINE_DECODE_MBPS: f64 = 85.0;

fn main() {
    let quick = rq_bench::quick();
    let iters = if quick { 3 } else { 7 };
    let scale = if quick { 1 } else { 4 };
    let mut stages: Vec<Stage> = Vec::new();

    // --- Huffman ---------------------------------------------------------
    let radius = 1u32 << 15;
    let symbols = symbol_stream(400_000 * scale, radius);
    let sym_bytes = symbols.len() * 4;
    let mut hist = vec![0u64; 2 * radius as usize + 1];
    for &s in &symbols {
        hist[s as usize] += 1;
    }
    let codec = HuffmanCodec::from_counts(&hist).unwrap();
    let (t_fast, payload) = time_best(iters, || codec.encode(&symbols).unwrap());
    let (t_ref, payload_ref) = time_best(iters, || codec.encode_reference(&symbols).unwrap());
    assert_eq!(payload, payload_ref, "huffman encode paths diverged");
    stages.push(Stage {
        name: "huffman_encode",
        fast_mbps: mbps(sym_bytes, t_fast),
        ref_mbps: mbps(sym_bytes, t_ref),
    });
    let (t_fast, out) = time_best(iters, || codec.decode(&payload, symbols.len()).unwrap());
    let (t_ref, out_ref) =
        time_best(iters, || codec.decode_reference(&payload, symbols.len()).unwrap());
    assert_eq!(out, out_ref, "huffman decode paths diverged");
    assert_eq!(out, symbols);
    stages.push(Stage {
        name: "huffman_decode",
        fast_mbps: mbps(sym_bytes, t_fast),
        ref_mbps: mbps(sym_bytes, t_ref),
    });

    // --- zero-RLE --------------------------------------------------------
    let raw = rle_input(2_000_000 * scale);
    let (t_fast, c) = time_best(iters, || rle::rle_compress(&raw, 0));
    let (t_ref, c_ref) = time_best(iters, || rle_compress_ref(&raw, 0));
    assert_eq!(c, c_ref, "rle compress paths diverged");
    stages.push(Stage {
        name: "rle_compress",
        fast_mbps: mbps(raw.len(), t_fast),
        ref_mbps: mbps(raw.len(), t_ref),
    });
    let (t_fast, d) =
        time_best(iters, || rle::rle_decompress_bounded(&c, 0, raw.len()).unwrap());
    let (t_ref, d_ref) =
        time_best(iters, || rle_decompress_bounded_ref(&c, 0, raw.len()).unwrap());
    assert_eq!(d, d_ref);
    assert_eq!(d, raw);
    stages.push(Stage {
        name: "rle_decompress",
        fast_mbps: mbps(raw.len(), t_fast),
        ref_mbps: mbps(raw.len(), t_ref),
    });

    // --- LZSS ------------------------------------------------------------
    let raw = lzss_input(1_000_000 * scale);
    let (t_fast, c) = time_best(iters, || lzss::lzss_compress(&raw));
    let (t_ref, c_ref) = time_best(iters, || lzss_compress_ref(&raw));
    assert_eq!(c, c_ref, "lzss compress paths diverged");
    stages.push(Stage {
        name: "lzss_compress",
        fast_mbps: mbps(raw.len(), t_fast),
        ref_mbps: mbps(raw.len(), t_ref),
    });
    let (t_fast, d) =
        time_best(iters, || lzss::lzss_decompress_bounded(&c, raw.len()).unwrap());
    let (t_ref, d_ref) =
        time_best(iters, || lzss_decompress_bounded_ref(&c, raw.len()).unwrap());
    assert_eq!(d, d_ref);
    assert_eq!(d, raw);
    stages.push(Stage {
        name: "lzss_decompress",
        fast_mbps: mbps(raw.len(), t_fast),
        ref_mbps: mbps(raw.len(), t_ref),
    });

    // --- quantization ----------------------------------------------------
    // No reference twin (the rework only cached the bin width, proven
    // rounding-identical in rq-quant); recorded fast-only for the
    // trajectory, speedup pinned at 1.
    let q = LinearQuantizer::new(1e-3, radius);
    let mut st = 0xABCDu64;
    let errs: Vec<f64> = (0..1_000_000 * scale)
        .map(|_| (xorshift(&mut st) >> 11) as f64 / (1u64 << 53) as f64 * 0.01 - 0.005)
        .collect();
    let err_bytes = errs.len() * 8;
    let (t_q, acc) = time_best(iters, || {
        let mut acc = 0i64;
        for &e in &errs {
            if let Some(code) = q.quantize(e) {
                acc += code as i64;
                acc += q.reconstruct(code).to_bits() as i64 & 0xFF;
            }
        }
        acc
    });
    assert_ne!(acc, i64::MIN); // keep the result observable
    let q_mbps = mbps(err_bytes, t_q);
    stages.push(Stage { name: "quantize", fast_mbps: q_mbps, ref_mbps: q_mbps });

    // --- Lorenzo traversal ----------------------------------------------
    let tshape = if quick { Shape::d3(48, 64, 64) } else { Shape::d3(96, 128, 128) };
    let tbytes = tshape.len() * 8;
    let visit = |lin: usize, pred: f64| {
        // A cheap deterministic nudge so the feedback chain is live.
        Ok(pred + ((lin & 0xFF) as f64 - 128.0) * 1e-6)
    };
    let (t_fast, rf) = time_best(iters, || {
        traverse_lorenzo(tshape, 1, KernelPath::Fast, visit).unwrap()
    });
    let (t_ref, rr) = time_best(iters, || {
        traverse_lorenzo(tshape, 1, KernelPath::Reference, visit).unwrap()
    });
    assert_eq!(rf, rr, "lorenzo traversal paths diverged");
    stages.push(Stage {
        name: "predict_lorenzo",
        fast_mbps: mbps(tbytes, t_fast),
        ref_mbps: mbps(tbytes, t_ref),
    });

    // --- whole pipeline --------------------------------------------------
    let shape = if quick { Shape::d3(32, 64, 64) } else { Shape::d3(64, 128, 128) };
    let data = field(shape);
    let raw_bytes = shape.len() * std::mem::size_of::<f32>();
    let eb = 1e-3;
    let run_encode = |path| {
        encode_chunk(&data, shape, PredictorKind::Lorenzo, eb, radius, LosslessStage::RleLzss, path)
            .unwrap()
    };
    let (t_fast, blob) = time_best(iters, || run_encode(KernelPath::Fast));
    let (t_ref, blob_ref) = time_best(iters, || run_encode(KernelPath::Reference));
    assert_eq!(blob, blob_ref, "pipeline encode paths diverged");
    let enc = Stage {
        name: "pipeline_encode",
        fast_mbps: mbps(raw_bytes, t_fast),
        ref_mbps: mbps(raw_bytes, t_ref),
    };
    let mut out = vec![0f32; shape.len()];
    let run_decode = |path, out: &mut Vec<f32>| {
        decode_chunk(&blob, shape, PredictorKind::Lorenzo, eb, radius, path, out).unwrap();
        out[0].to_bits()
    };
    let (t_fast, _) = time_best(iters, || run_decode(KernelPath::Fast, &mut out));
    let fast_out = out.clone();
    let (t_ref, _) = time_best(iters, || run_decode(KernelPath::Reference, &mut out));
    assert_eq!(
        fast_out.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        out.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        "pipeline decode paths diverged"
    );
    let dec = Stage {
        name: "pipeline_decode",
        fast_mbps: mbps(raw_bytes, t_fast),
        ref_mbps: mbps(raw_bytes, t_ref),
    };
    stages.push(enc);
    stages.push(dec);

    // --- report ----------------------------------------------------------
    println!(
        "# Codec kernel throughput — fast vs reference, serial, {} iters (best-of)",
        iters
    );
    println!();
    let mut t = Table::new(&["stage", "fast(MB/s)", "reference(MB/s)", "speedup"]);
    for s in &stages {
        t.row(&[s.name.into(), f(s.fast_mbps, 1), f(s.ref_mbps, 1), f(s.speedup(), 2)]);
    }
    t.print();

    // The speedup gates that justified the kernel rework (see the module
    // docs for why encode carries a floor, not the decode-side 3×).
    // Ratio gates use the live reference path: both paths run on the same
    // core in the same process, so the ratio is stable across machines
    // while absolute throughput is not. Full-mode thresholds sit ~20-30%
    // under the measured speedups to absorb timer noise on a busy box;
    // quick mode (CI smoke: small working sets that flatter the
    // reference's cache behaviour, best-of-3, varying hardware) keeps
    // looser floors that still catch a real regression.
    let gates: [(&str, f64); 8] = if quick {
        [
            ("pipeline_decode", 1.8),
            ("pipeline_encode", 1.15),
            ("huffman_decode", 1.4),
            ("huffman_encode", 1.3),
            ("lzss_compress", 2.5),
            ("lzss_decompress", 3.0),
            ("rle_compress", 1.5),
            ("predict_lorenzo", 3.0),
        ]
    } else {
        [
            ("pipeline_decode", 2.0),
            ("pipeline_encode", 1.2),
            ("huffman_decode", 2.0),
            ("huffman_encode", 1.3),
            ("lzss_compress", 2.5),
            ("lzss_decompress", 3.0),
            ("rle_compress", 1.5),
            ("predict_lorenzo", 3.0),
        ]
    };
    for (name, min) in gates {
        let s = stages.iter().find(|s| s.name == name).unwrap();
        assert!(
            s.speedup() >= min,
            "{name}: fast path is {:.2}x the reference (gate {min}x) — \
             the kernel rework has regressed",
            s.speedup()
        );
    }
    // The headline ROADMAP target: ≥ 3× the ~85 MB/s serial decode the
    // seed's BENCH_decode.json recorded on this box. Absolute, so full
    // runs only — quick mode's small field under-amortizes setup and CI
    // hardware varies — and it assumes an otherwise-idle core, the same
    // condition the 85 MB/s baseline was recorded under (best-of-N cannot
    // rescue a run that shares its only core with another workload).
    let dec = stages.iter().find(|s| s.name == "pipeline_decode").unwrap();
    let decode_vs_baseline = dec.fast_mbps / BASELINE_DECODE_MBPS;
    if !quick {
        assert!(
            decode_vs_baseline >= 3.0,
            "pipeline_decode: {:.1} MB/s is {:.2}x the recorded {BASELINE_DECODE_MBPS} MB/s \
             baseline (target 3x)",
            dec.fast_mbps,
            decode_vs_baseline
        );
    }

    // Hand-rolled JSON (the workspace has no serde).
    let mut j = String::new();
    j.push_str("{\n  \"bench\": \"codec_kernels\",\n");
    j.push_str(&format!("  \"quick\": {quick},\n"));
    j.push_str(&format!("  \"iters\": {iters},\n"));
    j.push_str(&format!("  \"pipeline_field\": {:?},\n", shape.dims()));
    j.push_str(&format!("  \"baseline_decode_mbps\": {BASELINE_DECODE_MBPS},\n"));
    j.push_str(&format!("  \"decode_vs_baseline\": {},\n", jf(decode_vs_baseline, 2)));
    j.push_str("  \"decode_baseline_gate\": 3.0,\n");
    j.push_str("  \"ratio_gates\": {");
    for (i, (name, min)) in gates.iter().enumerate() {
        j.push_str(&format!("\"{name}\": {min}{}", if i + 1 < gates.len() { ", " } else { "" }));
    }
    j.push_str("},\n");
    j.push_str("  \"stages\": [\n");
    for (i, s) in stages.iter().enumerate() {
        j.push_str(&format!(
            "    {{\"stage\": \"{}\", \"fast_mbps\": {}, \"reference_mbps\": {}, \
             \"speedup\": {}}}{}\n",
            s.name,
            jf(s.fast_mbps, 1),
            jf(s.ref_mbps, 1),
            jf(s.speedup(), 2),
            if i + 1 < stages.len() { "," } else { "" }
        ));
    }
    j.push_str("  ]\n}\n");
    let mut f = std::fs::File::create("BENCH_codec_kernels.json").unwrap();
    f.write_all(j.as_bytes()).unwrap();
    println!("\nwrote BENCH_codec_kernels.json ({} stages)", stages.len());
}
