//! Parallel streaming decode scaling: wall time and peak RSS at
//! 1/2/4/8 decode threads, recorded to `BENCH_decode.json`.
//!
//! A synthetic wavefield archive is staged to disk through the streaming
//! writer, then decoded four ways through
//! `ArchiveReader::open_path(..).with_threads(n).decompress_rows(...)` —
//! the streaming engine that serves chunk extents zero-copy off a
//! memory-mapped source (pooled seek+read elsewhere), overlaps fetch
//! with decode, and fans decode work out behind a bounded read-ahead
//! window. For contrast the in-memory path (`decompress_with_threads`,
//! whole archive + whole field resident) runs at the same thread counts.
//!
//! Both modes are timed over the same work: open/read the source, decode
//! every row, and checksum the output *inside* the timed region. Every
//! decode must hash byte-identical to the single-threaded decode —
//! thread count is an implementation detail, never a result change.
//! Wall time, peak RSS (`VmHWM`) and the speedup versus one thread land
//! in `BENCH_decode.json` in the current directory (committed at the
//! repository root so the perf trajectory is tracked across PRs; CI
//! uploads each run's file as an artifact).
//!
//! ```sh
//! cargo run --release -p rq-bench --bin decode_scaling
//! ```
//!
//! Expected shape of the result on a multi-core machine: wall time drops
//! roughly linearly until the sequential blob reads or the core count
//! saturate (≥ 2× at 4 threads), while streaming peak RSS stays at the
//! read-ahead window regardless of archive size. On a single-core
//! machine the requested thread counts clamp to one worker (both
//! `with_threads` and `decompress_with_threads` never oversubscribe
//! `available_parallelism`), so the speedup sits at ~1× by construction
//! — the JSON records both the requested and the effective count.
//! Either way the bench **asserts** three contracts:
//!
//! - multi-threaded decode never drops below 0.97× the serial wall time,
//!   in either mode (oversubscription used to cost ~7% on one CPU);
//! - single-threaded *streaming* decode stays within 5% of the
//!   single-threaded in-memory wall time (the zero-copy/overlapped read
//!   path closed a measured 13% gap; this keeps it closed) — relaxed to
//!   25% under `RQM_QUICK=1`, where the field is too small for the
//!   overlap to amortise timer jitter;
//! - streaming peak-RSS growth stays below the raw field size
//!   (window-bounded memory; full-size resettable-HWM runs only).

use rq_bench::{f, mib, peak_rss_bytes, reset_peak_rss, Table};
use rq_compress::{decompress_with_threads, ArchiveReader, ArchiveWriter, CompressorConfig};
use rq_grid::{NdArray, Shape, MAX_DIMS};
use rq_predict::PredictorKind;
use rq_quant::ErrorBoundMode;
use std::io::Write;
use std::time::Instant;

/// FNV-1a folded over whole `f32` bit patterns (one xor+multiply per
/// element, not per byte): compares decoded outputs without holding
/// them in memory, and is cheap enough to sit inside the timed region
/// of *both* modes so the wall-time comparison covers identical work.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf29ce484222325)
    }

    fn update(&mut self, vals: &[f32]) {
        for &v in vals {
            self.0 ^= v.to_bits() as u64;
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }
}

/// One measured decode run. `rss_delta` is the peak-RSS growth over the
/// run's post-reset floor — the run's own footprint, insulated from heap
/// ratchet left behind by earlier runs.
struct Run {
    threads: usize,
    /// Worker threads actually used: `ArchiveReader::with_threads`
    /// clamps to `available_parallelism`, so on a small machine this is
    /// lower than `threads` — the JSON records both so a reader can
    /// tell "no speedup" from "no parallelism requested".
    eff_threads: usize,
    mode: &'static str,
    wall_ms: f64,
    peak_rss: u64,
    rss_delta: u64,
    hash: u64,
}

fn main() {
    let quick = rq_bench::quick();
    // The synthetic wavefield: smooth multi-frequency waves plus a dash
    // of hash noise so the entropy stage has real work per chunk.
    let shape = if quick { Shape::d3(96, 64, 64) } else { Shape::d3(512, 160, 160) };
    let chunk_rows = 8;
    let eb = 1e-3;
    let cpus = std::thread::available_parallelism().map(|t| t.get()).unwrap_or(1);

    let dir = std::env::temp_dir().join("rqm_decode_scaling");
    std::fs::create_dir_all(&dir).unwrap();
    let archive_path = dir.join("wavefield.rqc");
    {
        let mut lin = 0u64;
        let field = NdArray::<f32>::from_fn(shape, |ix| {
            let mut v = 0.0f64;
            for (a, &c) in ix.iter().enumerate() {
                v += ((c as f64) * 0.11 * (a + 1) as f64).sin() * (6.0 / (a + 1) as f64);
            }
            lin += 1;
            let mut h = lin;
            h ^= h >> 33;
            h = h.wrapping_mul(0xff51afd7ed558ccd);
            h ^= h >> 33;
            v += ((h >> 40) as f64 / (1u64 << 24) as f64 - 0.5) * 0.02;
            v as f32
        });
        let cfg = CompressorConfig::new(PredictorKind::Lorenzo, ErrorBoundMode::Abs(eb))
            .chunked(chunk_rows)
            .with_threads(cpus);
        let sink = std::io::BufWriter::new(std::fs::File::create(&archive_path).unwrap());
        let mut w = ArchiveWriter::<f32, _>::create(sink, shape, &cfg).unwrap();
        // Feed a few chunks per slab so the write side stays bounded too.
        let row_elems: usize = shape.dims()[1..].iter().product();
        let batch = chunk_rows * 4;
        let mut row = 0usize;
        while row < shape.dim(0) {
            let rows = batch.min(shape.dim(0) - row);
            let mut dims = [0usize; MAX_DIMS];
            dims[..shape.ndim()].copy_from_slice(shape.dims());
            dims[0] = rows;
            let slab = NdArray::<f32>::from_vec(
                Shape::new(&dims[..shape.ndim()]),
                field.as_slice()[row * row_elems..(row + rows) * row_elems].to_vec(),
            );
            w.write_slab(&slab).unwrap();
            row += rows;
        }
        w.finalize().unwrap();
    }
    let archive_bytes = std::fs::metadata(&archive_path).unwrap().len();
    let raw_bytes = (shape.len() * 4) as u64;
    let resettable = reset_peak_rss();

    println!(
        "# Parallel streaming decode scaling — field {:?} ({:.0} MiB raw, {:.1} MiB archive), \
         {chunk_rows}-row chunks, {cpus} CPU(s)",
        shape.dims(),
        mib(raw_bytes),
        mib(archive_bytes),
    );
    if !resettable {
        println!("(VmHWM reset unavailable: peak-RSS readings are monotone upper bounds)");
    }
    println!();

    // All streaming runs happen before any in-memory run: a freed
    // whole-field buffer can leave the heap ratcheted up, and the
    // streaming footprint should be measured on a clean floor.
    // Each configuration is timed `iters` times and scored on its best
    // wall time: clock-speed drift over a minute-long bench (thermal
    // throttle, noisy-neighbour scheduling) is larger than the 3%
    // regression margin, and min-of-N is the standard way to strip it.
    let iters = 3;
    let mut runs: Vec<Run> = Vec::new();
    let mut mapped = false;
    for threads in [1usize, 2, 4, 8] {
        reset_peak_rss();
        let floor = peak_rss_bytes().unwrap_or(0);
        let mut wall_ms = f64::INFINITY;
        let mut eff_threads = 1;
        let mut run_hash = 0u64;
        for _ in 0..iters {
            let t0 = Instant::now();
            let mut reader =
                ArchiveReader::open_path(&archive_path).unwrap().with_threads(threads);
            let mut hash = Fnv::new();
            reader
                .decompress_rows::<f32>(|slab| {
                    hash.update(slab);
                    Ok(())
                })
                .unwrap();
            wall_ms = wall_ms.min(t0.elapsed().as_secs_f64() * 1e3);
            eff_threads = reader.threads();
            mapped = reader.is_mapped();
            run_hash = hash.0;
            // A full decode is chunk-aligned end to end: every chunk
            // must decode straight into its delivery slab.
            assert_eq!(
                reader.stats().reorder_copies,
                0,
                "full streaming decode at {threads} threads took a scratch-copy path"
            );
        }
        let peak = peak_rss_bytes().unwrap_or(0);
        runs.push(Run {
            threads,
            eff_threads,
            mode: "streaming",
            wall_ms,
            peak_rss: peak,
            rss_delta: peak.saturating_sub(floor),
            hash: run_hash,
        });
    }
    for threads in [1usize, 2, 4, 8] {
        // --- in-memory decode: whole archive + whole field resident ---
        reset_peak_rss();
        let floor = peak_rss_bytes().unwrap_or(0);
        let mut wall_ms = f64::INFINITY;
        let mut run_hash = 0u64;
        for _ in 0..iters {
            let t0 = Instant::now();
            let bytes = std::fs::read(&archive_path).unwrap();
            let field: NdArray<f32> = decompress_with_threads(&bytes, threads).unwrap();
            let mut hash = Fnv::new();
            hash.update(field.as_slice());
            wall_ms = wall_ms.min(t0.elapsed().as_secs_f64() * 1e3);
            run_hash = hash.0;
        }
        let peak = peak_rss_bytes().unwrap_or(0);
        runs.push(Run {
            threads,
            // `decompress_with_threads` clamps to available cores, same
            // as the streaming reader's pool.
            eff_threads: threads.min(cpus),
            mode: "in-memory",
            wall_ms,
            peak_rss: peak,
            rss_delta: peak.saturating_sub(floor),
            hash: run_hash,
        });
    }

    // Thread count must never change the decoded bytes, in either mode.
    let reference = runs[0].hash;
    for r in &runs {
        assert_eq!(
            r.hash, reference,
            "{} decode at {} threads diverged from the serial result",
            r.mode, r.threads
        );
    }

    let serial_ms =
        runs.iter().find(|r| r.mode == "streaming" && r.threads == 1).unwrap().wall_ms;
    let mem_serial_ms =
        runs.iter().find(|r| r.mode == "in-memory" && r.threads == 1).unwrap().wall_ms;
    // Speedups are against the run's own mode at one thread.
    let base = |r: &Run| if r.mode == "streaming" { serial_ms } else { mem_serial_ms };
    let mut t = Table::new(&[
        "threads", "effective", "mode", "wall(ms)", "speedup", "peakRSS(MiB)", "ΔRSS(MiB)",
    ]);
    for r in &runs {
        t.row(&[
            r.threads.to_string(),
            r.eff_threads.to_string(),
            r.mode.into(),
            f(r.wall_ms, 1),
            f(base(r) / r.wall_ms, 2),
            f(mib(r.peak_rss), 1),
            f(mib(r.rss_delta), 1),
        ]);
    }
    t.print();

    // Regression gate: asking for more threads must never make the
    // decode slower than serial, in either mode. With the worker pools
    // clamped to `available_parallelism`, a 1-CPU host runs the same
    // serial path at every requested count, and a multi-core host only
    // adds workers it can schedule — so anything below ~1× is a real
    // regression (lock contention, reorder pressure), not
    // oversubscription noise. 0.97 leaves 3% for timer jitter.
    for r in runs.iter().filter(|r| r.threads > 1) {
        let speedup = base(r) / r.wall_ms;
        assert!(
            speedup >= 0.97,
            "{} decode at {} requested threads ({} effective) ran at {speedup:.3}x \
             the serial wall time — multi-threaded decode regressed below serial",
            r.mode,
            r.threads,
            r.eff_threads,
        );
    }

    // The headline gate for the zero-copy/overlapped read path: serial
    // streaming decode must stay within 5% of serial in-memory decode.
    // Before the pooled+mapped+prefetch rework it sat 13% behind
    // (fresh allocation and a blocking seek+read per chunk, plus a
    // decode-to-scratch copy per delivery). Quick mode decodes a field
    // small enough that constant costs (archive open, page-fault warmup)
    // dominate, so the bar loosens to 25% there.
    let stream_vs_mem = serial_ms / mem_serial_ms;
    let gap_limit = if quick { 1.25 } else { 1.05 };
    assert!(
        stream_vs_mem <= gap_limit,
        "serial streaming decode took {stream_vs_mem:.3}x the serial in-memory wall time \
         (limit {gap_limit}x): the zero-copy overlapped read path has regressed"
    );

    // Bounded-RSS check: each streaming run's own footprint (peak growth
    // over its post-reset floor) must track the read-ahead window, not
    // the archive/field size — the whole field never becomes resident.
    // Only meaningful when the HWM counter resets and the field dwarfs
    // the process baseline (full-size run).
    let stream_delta = runs
        .iter()
        .filter(|r| r.mode == "streaming")
        .map(|r| r.rss_delta)
        .max()
        .unwrap_or(0);
    // Tri-state for the JSON: true/false only when the check actually
    // ran; null means "not measured" (quick mode or non-resettable HWM),
    // so an unmeasured CI run can't read as a failed contract.
    let rss_bounded = if resettable && !quick {
        if stream_delta < raw_bytes { "true" } else { "false" }
    } else {
        "null"
    };
    if resettable && !quick {
        assert!(
            stream_delta < raw_bytes,
            "streaming decode grew RSS by {:.1} MiB, as much as the raw field ({:.1} MiB): \
             the read-ahead window is not bounding memory",
            mib(stream_delta),
            mib(raw_bytes)
        );
    }

    // Hand-rolled JSON (the workspace has no serde): the decode perf
    // trajectory across PRs.
    let mut j = String::new();
    j.push_str("{\n  \"bench\": \"decode_scaling\",\n");
    j.push_str(&format!("  \"field\": {:?},\n", shape.dims()));
    j.push_str(&format!("  \"raw_bytes\": {raw_bytes},\n"));
    j.push_str(&format!("  \"archive_bytes\": {archive_bytes},\n"));
    j.push_str(&format!("  \"chunk_rows\": {chunk_rows},\n"));
    j.push_str(&format!("  \"cpus\": {cpus},\n"));
    j.push_str(&format!("  \"quick\": {quick},\n"));
    j.push_str(&format!("  \"iters\": {iters},\n"));
    j.push_str(&format!("  \"rss_resettable\": {resettable},\n"));
    j.push_str(&format!("  \"mapped_source\": {mapped},\n"));
    j.push_str(&format!("  \"streaming_over_inmemory_1t\": {},\n", rq_bench::jf(stream_vs_mem, 3)));
    j.push_str(&format!("  \"streaming_rss_bounded\": {rss_bounded},\n"));
    j.push_str("  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        j.push_str(&format!(
            "    {{\"threads\": {}, \"effective_threads\": {}, \"mode\": \"{}\", \
             \"wall_ms\": {}, \
             \"speedup_vs_serial\": {}, \"peak_rss_bytes\": {}, \"rss_delta_bytes\": {}}}{}\n",
            r.threads,
            r.eff_threads,
            r.mode,
            rq_bench::jf(r.wall_ms, 3),
            rq_bench::jf(base(r) / r.wall_ms, 3),
            r.peak_rss,
            r.rss_delta,
            if i + 1 < runs.len() { "," } else { "" }
        ));
    }
    j.push_str("  ]\n}\n");
    let mut out = std::fs::File::create("BENCH_decode.json").unwrap();
    out.write_all(j.as_bytes()).unwrap();
    println!("\nwrote BENCH_decode.json ({} runs)", runs.len());

    let four = runs.iter().find(|r| r.mode == "streaming" && r.threads == 4).unwrap();
    let speedup4 = serial_ms / four.wall_ms;
    if cpus >= 4 && speedup4 < 2.0 {
        println!(
            "WARN: 4-thread streaming speedup {speedup4:.2}× < 2× on a {cpus}-CPU machine"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
