//! Fig. 10: rate-distortion curves per predictor on an RTM-like snapshot —
//! estimated curves vs measured points, the predictor crossover bit-rate,
//! and the optimization-overhead comparison against per-bound sampling.
//!
//! ```sh
//! cargo run --release -p rq-bench --bin fig10_predictor_selection
//! ```

use rq_analysis::psnr;
use rq_bench::{eb_grid, f, Table};
use rq_compress::{compress, decompress, CompressorConfig};
use rq_core::usecases::PredictorSelector;
use rq_predict::PredictorKind;
use rq_quant::ErrorBoundMode;
use std::time::Instant;

fn main() {
    let field = rq_datagen::fields::rtm_snapshot(300);
    let range = field.value_range();
    println!("# Fig. 10 — predictor selection via estimated rate-distortion curves");
    println!("field: RTM-like snapshot {:?}\n", field.shape());

    let candidates =
        [PredictorKind::Lorenzo, PredictorKind::Interpolation, PredictorKind::Regression];
    let t0 = Instant::now();
    let selector = PredictorSelector::build(&field, &candidates, 0.01, 3);
    let build_time = t0.elapsed();

    let ebs = eb_grid(range, 1e-6, 1e-2, if rq_bench::quick() { 5 } else { 8 });
    let mut t =
        Table::new(&["predictor", "eb/range", "est bits", "est PSNR", "meas bits", "meas PSNR"]);
    for kind in candidates {
        let model = selector.models().iter().find(|m| m.predictor() == kind).unwrap();
        for &eb in &ebs {
            let est = model.estimate(eb);
            let cfg = CompressorConfig::new(kind, ErrorBoundMode::Abs(eb));
            let out = compress(&field, &cfg).expect("compress");
            let back = decompress::<f32>(&out.bytes).expect("decompress");
            t.row(&[
                kind.name().into(),
                format!("{:.1e}", eb / range),
                f(est.bit_rate, 3),
                f(est.psnr, 1),
                f(out.bit_rate(), 3),
                f(psnr(&field, &back), 1),
            ]);
        }
    }
    t.print();

    // Crossover scan (the paper finds Lorenzo→interpolation at ≈1.89 bits).
    let grid: Vec<f64> = (2..=48).map(|i| i as f64 * 0.25).collect();
    println!("\nestimated best-predictor transitions:");
    for (b, winner) in selector.crossovers(&grid) {
        println!("  from {b:>5.2} bits/value → {}", winner.name());
    }

    // Overhead vs the trial-per-bound baseline (sample compression at every
    // candidate bound, as existing selectors do).
    let t0 = Instant::now();
    for kind in candidates {
        for &eb in &ebs {
            // Baseline pre-compresses a structured sample (~5%) per bound.
            let block = field.extract_block(&[0, 0, 0], &[22, 64, 64]);
            let cfg = CompressorConfig::new(kind, ErrorBoundMode::Abs(eb));
            let _ = compress(&block, &cfg).expect("compress");
        }
    }
    let baseline = t0.elapsed();
    println!(
        "\noptimization overhead: model {:.1} ms vs per-bound sampling {:.1} ms ({:.1}x)",
        build_time.as_secs_f64() * 1e3,
        baseline.as_secs_f64() * 1e3,
        baseline.as_secs_f64() / build_time.as_secs_f64()
    );
    println!("(paper: 21.8x, overhead reduced from 109.97% to 5.04% of compression time)");
}
