//! Fig. 11: memory-limit control — measured space consumption relative to
//! the assigned budget for 15 groups with random timesteps and random
//! target ratios, aiming at 80 % utilization.
//!
//! ```sh
//! cargo run --release -p rq-bench --bin fig11_memory_budget
//! ```

use rand::{Rng, SeedableRng};
use rq_bench::{f, Table};
use rq_compress::CompressorConfig;
use rq_core::usecases::compress_with_budget;
use rq_core::RqModel;
use rq_datagen::RtmSimulator;
use rq_predict::PredictorKind;
use rq_quant::ErrorBoundMode;

fn main() {
    println!("# Fig. 11 — measured/assigned space ratio, 15 random groups\n");
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xF1611);
    let mut sim = RtmSimulator::new([48, 48, 48]);
    // Pre-generate a pool of snapshots (simulator steps forward only).
    let steps: Vec<usize> = (1..=10).map(|i| i * 50).collect();
    let pool: Vec<_> = steps.iter().map(|&s| sim.snapshot_at(s)).collect();

    let groups = if rq_bench::quick() { 6 } else { 15 };
    let mut t = Table::new(&["group", "step", "target ratio", "utilization", "rounds", "fits"]);
    let mut fits = 0usize;
    let mut over_estimate = 0usize;
    for g in 0..groups {
        let pick = rng.gen_range(0..pool.len());
        let snap = &pool[pick];
        let target_ratio: f64 = rng.gen_range(8.0..48.0);
        let budget = (snap.len() as f64 * 4.0 / target_ratio) as usize;
        let model = RqModel::build(snap, PredictorKind::Interpolation, 0.01, g as u64);
        let cfg = CompressorConfig::new(PredictorKind::Interpolation, ErrorBoundMode::Abs(1.0));
        let (_, outcome) = compress_with_budget(snap, &model, cfg, budget, 0.2, true)
            .expect("budgeted compression");
        fits += outcome.fits as usize;
        over_estimate += (outcome.utilization > 0.8) as usize;
        t.row(&[
            (g + 1).to_string(),
            steps[pick].to_string(),
            f(target_ratio, 1),
            format!("{:.1}%", outcome.utilization * 100.0),
            outcome.rounds.len().to_string(),
            outcome.fits.to_string(),
        ]);
    }
    t.print();
    println!(
        "\n{fits}/{groups} groups within the assigned space; {over_estimate} exceeded the\n\
         80% estimate but stayed inside the budget — the paper's Fig. 11 pattern\n\
         (some groups land above 80% yet none overflow; ~5% would need round 2)."
    );
}
