//! Fig. 12: fine-grained per-timestep error-bound optimization for the RTM
//! stacked-image analysis — tuned bounds per timestep, plus the headline
//! "extra ratio at equal quality / extra quality at equal ratio" numbers.
//!
//! ```sh
//! cargo run --release -p rq-bench --bin fig12_insitu
//! ```

use rq_bench::{f, Table};
use rq_compress::{compress, decompress, CompressorConfig};
use rq_core::usecases::{optimize_partitions, uniform_eb_for_target};
use rq_core::RqModel;
use rq_datagen::RtmSimulator;
use rq_grid::NdArray;
use rq_predict::PredictorKind;
use rq_quant::ErrorBoundMode;

/// Measured aggregate (stacked-image) PSNR and mean bit-rate for a
/// per-partition bound assignment.
fn measure(snapshots: &[NdArray<f32>], ebs: &[f64], range: f64) -> (f64, f64) {
    let mut bytes = 0usize;
    let mut sq = 0.0f64;
    let mut n = 0usize;
    for (snap, &eb) in snapshots.iter().zip(ebs) {
        let cfg = CompressorConfig::new(PredictorKind::Interpolation, ErrorBoundMode::Abs(eb));
        let out = compress(snap, &cfg).expect("compress");
        let back = decompress::<f32>(&out.bytes).expect("decompress");
        bytes += out.bytes.len();
        for (&a, &b) in snap.as_slice().iter().zip(back.as_slice()) {
            sq += ((a - b) as f64).powi(2);
        }
        n += snap.len();
    }
    let psnr = 20.0 * range.log10() - 10.0 * (sq / n as f64).log10();
    (bytes as f64 * 8.0 / n as f64, psnr)
}

fn main() {
    println!("# Fig. 12 — per-timestep error-bound optimization (RTM stacked image)\n");
    let mut sim = RtmSimulator::new([48, 48, 48]);
    let n_steps = if rq_bench::quick() { 5 } else { 10 };
    let steps: Vec<usize> = (1..=n_steps).map(|i| i * 45).collect();
    let snapshots: Vec<_> = steps.iter().map(|&s| sim.snapshot_at(s)).collect();
    let range = snapshots.iter().map(|s| s.value_range()).fold(0.0f64, f64::max);

    let models: Vec<RqModel> = snapshots
        .iter()
        .enumerate()
        .map(|(i, s)| RqModel::build(s, PredictorKind::Interpolation, 0.01, 12 + i as u64))
        .collect();
    let sizes: Vec<usize> = snapshots.iter().map(|s| s.len()).collect();

    let target = 66.0;
    let plan = optimize_partitions(&models, &sizes, range, target, 48).expect("reachable floor");
    let (uni_eb, _) = uniform_eb_for_target(&models, &sizes, range, target);

    let mut t = Table::new(&["timestep", "tuned eb", "uniform eb", "tuned/uniform"]);
    for (i, &s) in steps.iter().enumerate() {
        t.row(&[
            s.to_string(),
            format!("{:.3e}", plan.ebs[i]),
            format!("{uni_eb:.3e}"),
            f(plan.ebs[i] / uni_eb, 2),
        ]);
    }
    t.print();

    // Measure both assignments for real. Model estimation error means the
    // two land at different delivered PSNRs, so trace the uniform
    // rate-quality curve and interpolate its bits at the tuned PSNR for an
    // equal-quality comparison.
    let (tuned_bits, tuned_psnr) = measure(&snapshots, &plan.ebs, range);
    let (uni_bits, uni_psnr) = measure(&snapshots, &vec![uni_eb; snapshots.len()], range);
    println!("\nmeasured   tuned: {tuned_bits:.3} bits/value, aggregate PSNR {tuned_psnr:.2} dB");
    println!("measured uniform: {uni_bits:.3} bits/value, aggregate PSNR {uni_psnr:.2} dB");

    let mut curve: Vec<(f64, f64)> = [0.25, 0.5, 1.0, 2.0, 4.0]
        .iter()
        .map(|&scale| {
            let (bits, q) = measure(&snapshots, &vec![uni_eb * scale; snapshots.len()], range);
            (q, bits)
        })
        .collect();
    curve.sort_by(|a, b| a.0.total_cmp(&b.0));
    let uni_bits_at_tuned_q = {
        let mut v = curve.last().unwrap().1;
        for w in curve.windows(2) {
            if tuned_psnr >= w[0].0 && tuned_psnr <= w[1].0 {
                let t = (tuned_psnr - w[0].0) / (w[1].0 - w[0].0).max(1e-12);
                v = w[0].1 + t * (w[1].1 - w[0].1);
                break;
            }
        }
        if tuned_psnr < curve[0].0 {
            v = curve[0].1;
        }
        v
    };
    println!(
        "uniform bits at the tuned quality ({tuned_psnr:.2} dB): {uni_bits_at_tuned_q:.3}"
    );
    println!(
        "\nequal-quality ratio gain: {:+.1}% (paper: +13% extra compression ratio,\n\
         or +31% extra quality at equal ratio, vs one bound for all timesteps)",
        (uni_bits_at_tuned_q / tuned_bits - 1.0) * 100.0
    );
    println!(
        "\nNote: once sparsity is modelled, quiescent snapshots cost ≈0 bits under\n\
         any bound, which flattens the exploitable heterogeneity of a clean\n\
         wavefield series. Scenario 2 adds per-timestep sensor noise (growing\n\
         with acquisition time, as in field data), restoring the paper's regime.\n"
    );

    // ---- Scenario 2: snapshots with heterogeneous instrument noise ----
    println!("## Scenario 2 — snapshots with per-timestep sensor noise\n");
    let mut state = 0xF12_5EEDu64;
    let noisy: Vec<NdArray<f32>> = snapshots
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let amp = 1e-4 * 3f64.powi(i as i32 % 4); // 1e-4 .. 2.7e-3
            let shape = s.shape();
            let data: Vec<f32> = s
                .as_slice()
                .iter()
                .map(|&v| {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    let u = (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
                    v + (u * amp) as f32
                })
                .collect();
            NdArray::from_vec(shape, data)
        })
        .collect();
    let range2 = noisy.iter().map(|s| s.value_range()).fold(0.0f64, f64::max);
    let models2: Vec<RqModel> = noisy
        .iter()
        .enumerate()
        .map(|(i, s)| RqModel::build(s, PredictorKind::Interpolation, 0.01, 300 + i as u64))
        .collect();
    let sizes2: Vec<usize> = noisy.iter().map(|s| s.len()).collect();
    let target2 = 66.0;
    let plan2 = optimize_partitions(&models2, &sizes2, range2, target2, 48).expect("reachable floor");
    let (uni_eb2, _) = uniform_eb_for_target(&models2, &sizes2, range2, target2);
    let (tuned_bits2, tuned_psnr2) = measure(&noisy, &plan2.ebs, range2);
    let (uni_bits2, uni_psnr2) = measure(&noisy, &vec![uni_eb2; noisy.len()], range2);
    println!("tuned ebs: {:?}", plan2.ebs.iter().map(|e| format!("{e:.2e}")).collect::<Vec<_>>());
    println!("uniform eb: {uni_eb2:.2e}");
    println!("measured   tuned: {tuned_bits2:.3} bits/value, PSNR {tuned_psnr2:.2} dB");
    println!("measured uniform: {uni_bits2:.3} bits/value, PSNR {uni_psnr2:.2} dB");
    let mut curve2: Vec<(f64, f64)> = [0.25, 0.5, 1.0, 2.0, 4.0]
        .iter()
        .map(|&scale| {
            let (bits, q) = measure(&noisy, &vec![uni_eb2 * scale; noisy.len()], range2);
            (q, bits)
        })
        .collect();
    curve2.sort_by(|a, b| a.0.total_cmp(&b.0));
    let uni_at_q = {
        let mut v = curve2.last().unwrap().1;
        for w in curve2.windows(2) {
            if tuned_psnr2 >= w[0].0 && tuned_psnr2 <= w[1].0 {
                let t = (tuned_psnr2 - w[0].0) / (w[1].0 - w[0].0).max(1e-12);
                v = w[0].1 + t * (w[1].1 - w[0].1);
                break;
            }
        }
        if tuned_psnr2 < curve2[0].0 {
            v = curve2[0].1;
        }
        v
    };
    println!("uniform bits at the tuned quality ({tuned_psnr2:.2} dB): {uni_at_q:.3}");
    println!(
        "equal-quality ratio gain: {:+.1}%\n\n\
         See EXPERIMENTS.md for the honest deviation discussion: with synthetic\n\
         wavefields and sparsity-aware modelling, the per-timestep gain over a\n\
         uniform bound is smaller than the paper's +13% (the uniform baseline is\n\
         already sparsity-adaptive); the mechanism — one-shot per-partition bounds\n\
         meeting an aggregate quality floor — is reproduced.",
        (uni_at_q / tuned_bits2 - 1.0) * 100.0
    );
}
