//! Fig. 13: bit-rate and PSNR across simulation snapshots at a 56 dB
//! quality floor — the traditional offline one-bound-for-all approach vs
//! the model-driven in-situ per-snapshot bounds.
//!
//! ```sh
//! cargo run --release -p rq-bench --bin fig13_snapshot_control
//! ```

use rq_analysis::psnr;
use rq_bench::{f, Table};
use rq_compress::{compress, decompress, CompressorConfig};
use rq_core::RqModel;
use rq_datagen::RtmSimulator;
use rq_grid::NdArray;
use rq_predict::PredictorKind;
use rq_quant::ErrorBoundMode;

fn rate_psnr(snap: &NdArray<f32>, eb: f64) -> (f64, f64) {
    let cfg = CompressorConfig::new(PredictorKind::Interpolation, ErrorBoundMode::Abs(eb));
    let out = compress(snap, &cfg).expect("compress");
    let back = decompress::<f32>(&out.bytes).expect("decompress");
    (out.bit_rate(), psnr(snap, &back))
}

fn main() {
    let target = 56.0;
    println!("# Fig. 13 — snapshot quality control at target PSNR {target} dB\n");
    let mut sim = RtmSimulator::new([48, 48, 48]);
    let n = if rq_bench::quick() { 5 } else { 9 };
    let steps: Vec<usize> = (1..=n).map(|i| i * 50).collect();
    let snapshots: Vec<_> = steps.iter().map(|&s| sim.snapshot_at(s)).collect();

    // Traditional: offline trial-and-error over 5 candidate bounds; pick
    // the single bound whose *worst-snapshot* PSNR still meets the target
    // (Liebig's barrel).
    let scale = snapshots.iter().map(|s| s.value_range()).fold(0.0f64, f64::max);
    let candidates: Vec<f64> = (0..5).map(|i| scale * 1e-5 * 10f64.powi(i) / 3.0).collect();
    let mut traditional_eb = candidates[0];
    for &eb in candidates.iter().rev() {
        let worst = snapshots
            .iter()
            .map(|s| rate_psnr(s, eb).1)
            .fold(f64::INFINITY, f64::min);
        if worst >= target {
            traditional_eb = eb;
            break;
        }
    }

    let mut t = Table::new(&[
        "step",
        "trad bits",
        "trad PSNR",
        "model eb",
        "model bits",
        "model PSNR",
    ]);
    let mut trad_bits_total = 0.0;
    let mut model_bits_total = 0.0;
    let mut model_ok = true;
    for (i, snap) in snapshots.iter().enumerate() {
        let (tb, tp) = rate_psnr(snap, traditional_eb);
        let model = RqModel::build(snap, PredictorKind::Interpolation, 0.01, 90 + i as u64);
        // Aim slightly above the floor so estimation error cannot dip
        // below, and clamp to a sane fraction of the snapshot's range (the
        // quality model extrapolates poorly for near-empty early snapshots
        // where the bound would otherwise exceed the data range).
        let eb = model.error_bound_for_psnr(target + 2.0).min(snap.value_range() * 0.01);
        let (mb, mp) = rate_psnr(snap, eb);
        trad_bits_total += tb;
        model_bits_total += mb;
        model_ok &= mp >= target - 1.0;
        t.row(&[
            steps[i].to_string(),
            f(tb, 3),
            f(tp, 1),
            format!("{eb:.2e}"),
            f(mb, 3),
            f(mp, 1),
        ]);
    }
    t.print();
    println!(
        "\ntraditional bound {traditional_eb:.2e}: mean {:.3} bits/value;\n\
         model in-situ: mean {:.3} bits/value ({:.1}% of traditional), floor met: {}",
        trad_bits_total / snapshots.len() as f64,
        model_bits_total / snapshots.len() as f64,
        model_bits_total / trad_bits_total * 100.0,
        model_ok
    );
    println!(
        "\nExpected shape (paper Fig. 13): the traditional bound overshoots the PSNR\n\
         target on most snapshots; the model keeps PSNR just above the floor with a\n\
         consistently lower bit-rate."
    );
}
