//! Fig. 14: overall snapshot-dumping time with the parallel HDF5-like
//! writer — traditional (fixed offline bound), in-situ trial-and-error,
//! and the model-driven approach, with the Op/Comp/IO breakdown.
//!
//! ```sh
//! cargo run --release -p rq-bench --bin fig14_dump_time
//! ```

use rq_analysis::psnr;
use rq_bench::{f, Table};
use rq_compress::{compress, decompress, CompressorConfig};
use rq_core::RqModel;
use rq_datagen::RtmSimulator;
use rq_grid::NdArray;
use rq_h5lite::{Filter, IoModel, ParallelDump};
use rq_predict::PredictorKind;
use rq_quant::ErrorBoundMode;
use std::time::{Duration, Instant};

const TARGET_PSNR: f64 = 56.0;

fn cfg(eb: f64) -> CompressorConfig {
    CompressorConfig::new(PredictorKind::Interpolation, ErrorBoundMode::Abs(eb))
}

/// In-situ trial-and-error: compress the snapshot at each candidate bound,
/// measure quality, keep the largest bound meeting the target.
fn tae_pick(snap: &NdArray<f32>, candidates: &[f64]) -> (f64, Duration) {
    let t0 = Instant::now();
    let mut best = candidates[0];
    for &eb in candidates.iter().rev() {
        let out = compress(snap, &cfg(eb)).expect("compress");
        let back = decompress::<f32>(&out.bytes).expect("decompress");
        if psnr(snap, &back) >= TARGET_PSNR {
            best = eb;
            break;
        }
    }
    (best, t0.elapsed())
}

/// Add acquisition (sensor) noise so the snapshots carry the information
/// density of field data rather than a noiseless solver output — without
/// it every method compresses >100x and I/O stops mattering.
fn with_sensor_noise(snap: &NdArray<f32>, seed: u64) -> NdArray<f32> {
    let amp = snap.value_range() * 3e-4;
    let mut state = seed | 1;
    let data: Vec<f32> = snap
        .as_slice()
        .iter()
        .map(|&v| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let u = (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
            v + (u * amp) as f32
        })
        .collect();
    NdArray::from_vec(snap.shape(), data)
}

fn main() {
    println!("# Fig. 14 — parallel dump time: traditional vs TAE vs model\n");
    let ranks = 8;
    // Slower shared file system than the generic paper_like model: Fig. 14
    // probes the I/O-bound regime (the paper's raw dump took 29.4 s).
    let io = IoModel { aggregate_bandwidth: 2.0e6, per_rank_latency: std::time::Duration::from_millis(1) };
    let dumper = ParallelDump::new(ranks, io);
    let mut sim = RtmSimulator::new([64, 64, 64]);
    let n = if rq_bench::quick() { 3 } else { 6 };
    let snapshots: Vec<_> =
        (1..=n).map(|i| with_sensor_noise(&sim.snapshot_at(i * 60), i as u64)).collect();
    let scale = snapshots.iter().map(|s| s.value_range()).fold(0.0f64, f64::max);
    let candidates: Vec<f64> = (0..5).map(|i| scale * 1e-5 * 10f64.powi(i) / 3.0).collect();

    // Traditional: one offline bound for all snapshots (offline cost not
    // charged to the runs, exactly as in the paper).
    let mut traditional_eb = candidates[0];
    for &eb in candidates.iter().rev() {
        let ok = snapshots.iter().all(|s| {
            let out = compress(s, &cfg(eb)).expect("compress");
            let back = decompress::<f32>(&out.bytes).expect("decompress");
            psnr(s, &back) >= TARGET_PSNR
        });
        if ok {
            traditional_eb = eb;
            break;
        }
    }

    let raw_io = io.write_time(64 * 64 * 64 * 4, ranks);
    println!("uncompressed baseline I/O per snapshot: {:.1} ms\n", raw_io.as_secs_f64() * 1e3);

    let mut t = Table::new(&[
        "snap", "method", "Op(ms)", "Comp(ms)", "IO(ms)", "total(ms)", "ratio",
    ]);
    let mut totals: [Duration; 3] = [Duration::ZERO; 3];
    let mut maxes: [Duration; 3] = [Duration::ZERO; 3];
    for (i, snap) in snapshots.iter().enumerate() {
        let portions = dumper.split_snapshot(snap);
        let mut run = |label: &str, idx: usize, eb: f64, opt: Duration| {
            let (_, mut report) =
                dumper.dump(&portions, Filter::Lossy(cfg(eb)), 8).expect("dump");
            report.opt_time = opt;
            totals[idx] += report.total();
            maxes[idx] = maxes[idx].max(report.total());
            t.row(&[
                (i + 1).to_string(),
                label.into(),
                f(report.opt_time.as_secs_f64() * 1e3, 1),
                f(report.comp_time.as_secs_f64() * 1e3, 1),
                f(report.io_time.as_secs_f64() * 1e3, 1),
                f(report.total().as_secs_f64() * 1e3, 1),
                f(report.ratio(), 1),
            ]);
        };

        run("Tr", 0, traditional_eb, Duration::ZERO);

        let (tae_eb, tae_time) = tae_pick(snap, &candidates);
        run("TAE", 1, tae_eb, tae_time);

        let t0 = Instant::now();
        let model = RqModel::build(snap, PredictorKind::Interpolation, 0.01, 140 + i as u64);
        let model_eb =
            model.error_bound_for_psnr(TARGET_PSNR + 1.0).min(snap.value_range() * 0.01);
        let opt = t0.elapsed();
        run("Model", 2, model_eb, opt);
    }
    t.print();

    println!("\ntotals across {n} snapshots:");
    for (label, idx) in [("traditional", 0), ("in-situ TAE", 1), ("model", 2)] {
        println!(
            "  {label:>12}: {:.1} ms (max per-snapshot {:.1} ms)",
            totals[idx].as_secs_f64() * 1e3,
            maxes[idx].as_secs_f64() * 1e3
        );
    }
    println!(
        "\nspeedup: {:.1}x vs traditional, {:.1}x vs TAE (paper: up to 3.4x and 2.2x\n\
         on 128 ranks)",
        totals[0].as_secs_f64() / totals[2].as_secs_f64(),
        totals[1].as_secs_f64() / totals[2].as_secs_f64()
    );
    println!(
        "\nShape notes: per-snapshot the I/O times order Model <= TAE <= Traditional\n\
         (higher achieved ratios), and the model eliminates nearly all of TAE's\n\
         optimization time — the paper's two mechanisms. At this laptop scale the\n\
         dump is compute-bound, so the *total*-time gain vs the zero-op-cost\n\
         traditional baseline is smaller than on the paper's I/O-bound testbed;\n\
         see EXPERIMENTS.md for the discussion."
    );
}
