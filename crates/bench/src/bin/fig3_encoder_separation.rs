//! Fig. 3: compression ratio contributed by the Huffman encoder vs the
//! optional lossless encoder on quantization codes.
//!
//! The paper's observation: the lossless stage only contributes once
//! Huffman reaches its ~1 bit/symbol limit (zero-dominated codes).
//!
//! ```sh
//! cargo run --release -p rq-bench --bin fig3_encoder_separation
//! ```

use rq_bench::{eb_grid, f, Table};
use rq_compress::{compress_with_report, CompressorConfig};
use rq_predict::PredictorKind;
use rq_quant::ErrorBoundMode;

fn main() {
    let field = rq_datagen::fields::hurricane_u();
    let range = field.value_range();
    println!("# Fig. 3 — Huffman vs optional lossless on quantization codes");
    println!("field: Hurricane-like U {:?}\n", field.shape());

    let mut t = Table::new(&[
        "eb/range",
        "huff bits/sym",
        "huff ratio",
        "lossless extra ratio",
        "overall ratio",
        "p0",
    ]);
    for eb in eb_grid(range, 1e-6, 1e-1, if rq_bench::quick() { 5 } else { 10 }) {
        let cfg = CompressorConfig::new(PredictorKind::Lorenzo, ErrorBoundMode::Abs(eb));
        let (_, rep) = compress_with_report(&field, &cfg).expect("compress");
        let huff_bits_per_sym = rep.huffman_bytes as f64 * 8.0
            / (rep.n_quantized + rep.n_unpredictable).max(1) as f64;
        let huff_ratio = 32.0 / rep.huffman_bit_rate();
        let extra = rep.huffman_bytes as f64 / rep.encoded_bytes.max(1) as f64;
        t.row(&[
            format!("{:.1e}", eb / range),
            f(huff_bits_per_sym, 3),
            f(huff_ratio, 2),
            f(extra, 2),
            f(rep.overall_ratio(), 2),
            f(rep.p0(), 4),
        ]);
    }
    t.print();
    println!(
        "\nExpected shape (paper Fig. 3): the lossless stage contributes ≈1× until\n\
         the Huffman bits/symbol saturate near 1 (p0 → 1), then dominates."
    );
}
