//! Fig. 4: error between sampled and exhaustive prediction-error standard
//! deviation as a function of sampling rate, for all three predictors
//! (with max/min bars over repeated seeds).
//!
//! ```sh
//! cargo run --release -p rq-bench --bin fig4_sampling_error
//! ```

use rq_bench::{full_error_std, pct, Table};
use rq_core::sample_errors;
use rq_predict::PredictorKind;

fn main() {
    let field = rq_datagen::fields::hurricane_tc();
    println!("# Fig. 4 — sampling error vs sampling rate");
    println!("field: Hurricane-like TC {:?}\n", field.shape());

    let rates: &[f64] = &[1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1];
    let seeds: u64 = if rq_bench::quick() { 3 } else { 8 };
    let kinds =
        [PredictorKind::Lorenzo, PredictorKind::Interpolation, PredictorKind::Regression];

    let mut t = Table::new(&["predictor", "rate", "mean err", "min err", "max err"]);
    for kind in kinds {
        let reference = full_error_std(&field, kind);
        for &rate in rates {
            let mut errs = Vec::new();
            for seed in 0..seeds {
                let sd = sample_errors(&field, kind, rate, seed).weighted_std();
                errs.push((sd - reference).abs() / reference);
            }
            let mean = errs.iter().sum::<f64>() / errs.len() as f64;
            let max = errs.iter().cloned().fold(0.0, f64::max);
            let min = errs.iter().cloned().fold(f64::INFINITY, f64::min);
            t.row(&[
                kind.name().to_string(),
                format!("{rate:.0e}"),
                pct(mean),
                pct(min),
                pct(max),
            ]);
        }
    }
    t.print();
    println!(
        "\nExpected shape (paper Fig. 4): error falls with rate; at the paper's 1%\n\
         operating point all predictors sample within a fraction of a percent."
    );
}
