//! Fig. 5: estimated vs measured bit-rate across error bounds, for
//! Huffman-only and Huffman+lossless encoder setups.
//!
//! ```sh
//! cargo run --release -p rq-bench --bin fig5_bitrate_accuracy
//! ```

use rq_bench::{eb_grid, eq20_error, f, pct, Table};
use rq_compress::{compress_with_report, CompressorConfig};
use rq_core::RqModel;
use rq_predict::PredictorKind;
use rq_quant::ErrorBoundMode;

fn main() {
    let field = rq_datagen::fields::nyx_velocity_z();
    let range = field.value_range();
    println!("# Fig. 5 — bit-rate estimation vs measurement");
    println!("field: Nyx-like velocity-z {:?}\n", field.shape());

    let model = RqModel::build(&field, PredictorKind::Lorenzo, 0.01, 42);
    let mut t = Table::new(&[
        "eb/range",
        "meas huff",
        "est huff",
        "meas overall",
        "est overall",
    ]);
    let mut huff_pairs = Vec::new();
    let mut overall_pairs = Vec::new();
    for eb in eb_grid(range, 1e-5, 3e-2, if rq_bench::quick() { 5 } else { 9 }) {
        let est = model.estimate(eb);
        let cfg = CompressorConfig::new(PredictorKind::Lorenzo, ErrorBoundMode::Abs(eb));
        let (out, rep) = compress_with_report(&field, &cfg).expect("compress");
        huff_pairs.push((rep.huffman_bit_rate(), est.bit_rate_huffman));
        overall_pairs.push((out.bit_rate(), est.bit_rate));
        t.row(&[
            format!("{:.1e}", eb / range),
            f(rep.huffman_bit_rate(), 3),
            f(est.bit_rate_huffman, 3),
            f(out.bit_rate(), 3),
            f(est.bit_rate, 3),
        ]);
    }
    t.print();
    println!("\nEq. 20 error — Huffman-only: {}", pct(eq20_error(&huff_pairs)));
    println!("Eq. 20 error — overall:      {}", pct(eq20_error(&overall_pairs)));
    println!(
        "\nPaper reference: 94.8% average Huffman accuracy, 93.5% overall (Table II);\n\
         the estimated curve should hug the measurements and flatten near 1 bit."
    );
}
