//! Fig. 6: PSNR estimation accuracy — uniform (Eq. 10) vs refined (Eq. 11)
//! error distributions, on a Nyx-like dark-matter field with both the
//! interpolation and Lorenzo predictors.
//!
//! ```sh
//! cargo run --release -p rq-bench --bin fig6_psnr_model
//! ```

use rq_analysis::psnr;
use rq_bench::{eb_grid, f, Table};
use rq_compress::{compress, decompress, CompressorConfig};
use rq_core::RqModel;
use rq_predict::PredictorKind;
use rq_quant::ErrorBoundMode;

fn main() {
    let field = rq_datagen::fields::nyx_dark_matter();
    let range = field.value_range();
    println!("# Fig. 6 — PSNR estimation: uniform vs refined error distribution");
    println!("field: Nyx-like dark-matter {:?}\n", field.shape());

    for kind in [PredictorKind::Interpolation, PredictorKind::Lorenzo] {
        println!("## predictor: {}", kind.name());
        let model = RqModel::build(&field, kind, 0.01, 17);
        let mut t = Table::new(&[
            "eb/range",
            "measured PSNR",
            "est (refined)",
            "est (uniform)",
            "p0",
        ]);
        for eb in eb_grid(range, 1e-5, 1e-1, if rq_bench::quick() { 5 } else { 8 }) {
            let est = model.estimate(eb);
            let cfg = CompressorConfig::new(kind, ErrorBoundMode::Abs(eb));
            let out = compress(&field, &cfg).expect("compress");
            let back = decompress::<f32>(&out.bytes).expect("decompress");
            t.row(&[
                format!("{:.1e}", eb / range),
                f(psnr(&field, &back), 2),
                f(est.psnr, 2),
                f(est.psnr_uniform, 2),
                f(est.p0, 4),
            ]);
        }
        t.print();
        println!();
    }
    println!(
        "Expected shape (paper Fig. 6): both estimates agree at low bounds; once\n\
         p0 → 1 the refined (Eq. 11) curve follows the measurements while the\n\
         uniform (Eq. 10) curve keeps falling. Paper: 97.3% average PSNR accuracy."
    );
}
