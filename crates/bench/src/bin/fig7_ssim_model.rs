//! Fig. 7: SSIM estimation accuracy (plotted as 1−SSIM, log scale in the
//! paper) on a CESM-like 2D field and an RTM-like 3D snapshot.
//!
//! ```sh
//! cargo run --release -p rq-bench --bin fig7_ssim_model
//! ```

use rq_analysis::global_ssim;
use rq_bench::{eb_grid, Table};
use rq_compress::{compress, decompress, CompressorConfig};
use rq_core::RqModel;
use rq_grid::NdArray;
use rq_predict::PredictorKind;
use rq_quant::ErrorBoundMode;

fn run(label: &str, field: &NdArray<f32>) {
    let range = field.value_range();
    println!("## {label} {:?}", field.shape());
    let model = RqModel::build(field, PredictorKind::Interpolation, 0.01, 7);
    let mut t = Table::new(&["eb/range", "1-SSIM measured", "1-SSIM est", "est SSIM"]);
    for eb in eb_grid(range, 1e-5, 3e-2, if rq_bench::quick() { 5 } else { 8 }) {
        let est = model.estimate(eb);
        let cfg = CompressorConfig::new(PredictorKind::Interpolation, ErrorBoundMode::Abs(eb));
        let out = compress(field, &cfg).expect("compress");
        let back = decompress::<f32>(&out.bytes).expect("decompress");
        let measured = global_ssim(field, &back);
        t.row(&[
            format!("{:.1e}", eb / range),
            format!("{:.3e}", 1.0 - measured),
            format!("{:.3e}", 1.0 - est.ssim),
            format!("{:.6}", est.ssim),
        ]);
    }
    t.print();
    println!();
}

fn main() {
    println!("# Fig. 7 — SSIM estimation accuracy\n");
    run("CESM-like TS (2D)", &rq_datagen::fields::cesm_ts());
    run("RTM-like snapshot (3D)", &rq_datagen::fields::rtm_snapshot(300));
    println!(
        "Expected shape (paper Fig. 7): estimates track 1−SSIM over orders of\n\
         magnitude, degrading slightly at the very-low and very-high ends\n\
         (the paper's Eq. 17–19 approximations). Paper: 94.4% average accuracy."
    );
}
