//! Fig. 8: FFT power-spectrum quality degradation — model (uniform vs
//! refined error distribution) against measurement, on a Nyx-like
//! temperature field at a high absolute bound (the paper uses ABS 500).
//!
//! ```sh
//! cargo run --release -p rq-bench --bin fig8_fft_model
//! ```

use rq_analysis::spectrum::power_spectrum_3d;
use rq_analysis::spectrum_ratio;
use rq_bench::{f, Table};
use rq_compress::{compress, decompress, CompressorConfig};
use rq_core::quality::spectrum_ratio_model;
use rq_core::RqModel;
use rq_predict::PredictorKind;
use rq_quant::ErrorBoundMode;

fn main() {
    let field = rq_datagen::fields::nyx_temperature();
    println!("# Fig. 8 — FFT power-spectrum quality degradation");
    println!("field: Nyx-like temperature {:?}", field.shape());

    // The paper evaluates ABS 500 on Nyx temperature (range ~10^4-10^5);
    // scale equivalently to our synthetic range.
    let eb = field.value_range() * 0.012;
    println!("error bound: {eb:.1} (≈1.2% of range, the paper's ABS 500 regime)\n");

    let model = RqModel::build(&field, PredictorKind::Interpolation, 0.01, 5);
    let est = model.estimate(eb);

    let cfg = CompressorConfig::new(PredictorKind::Interpolation, ErrorBoundMode::Abs(eb));
    let out = compress(&field, &cfg).expect("compress");
    let back = decompress::<f32>(&out.bytes).expect("decompress");

    let reference: Vec<(f64, f64)> =
        power_spectrum_3d(&field).iter().map(|b| (b.k, b.power)).collect();
    let measured = spectrum_ratio(&field, &back);
    let model_refined = spectrum_ratio_model(&reference, est.sigma2);
    let model_uniform = spectrum_ratio_model(&reference, est.sigma2_uniform);

    let mut t = Table::new(&["k", "P'(k)/P(k) measured", "model refined", "model uniform"]);
    let step = (measured.len() / 14).max(1);
    for i in (0..measured.len()).step_by(step) {
        t.row(&[
            f(measured[i].0, 0),
            f(measured[i].1, 4),
            f(model_refined[i].1, 4),
            f(model_uniform[i].1, 4),
        ]);
    }
    t.print();

    let score = |m: &[(f64, f64)]| -> f64 {
        measured
            .iter()
            .zip(m)
            .map(|(a, b)| (a.1 - b.1).abs())
            .sum::<f64>()
            / measured.len() as f64
    };
    println!("\nmean |Δratio| — refined: {:.4}, uniform: {:.4}", score(&model_refined), score(&model_uniform));
    println!(
        "\nExpected shape (paper Fig. 8): compression noise lifts the ratio at high k;\n\
         the refined error distribution tracks the lift more closely than uniform."
    );
}
