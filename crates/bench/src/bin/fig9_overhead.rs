//! Fig. 9: optimization-overhead comparison — the analytical model vs the
//! trial-and-error (TAE) approach, averaged over three RTM-like snapshots,
//! with 7 candidate error bounds and 2 candidate predictors (the paper's
//! setup).
//!
//! ```sh
//! cargo run --release -p rq-bench --bin fig9_overhead
//! ```

use rq_bench::{eb_grid, f, Table};
use rq_compress::{compress, CompressorConfig, LosslessStage};
use rq_core::RqModel;
use rq_datagen::RtmSimulator;
use rq_predict::PredictorKind;
use rq_quant::ErrorBoundMode;
use std::time::{Duration, Instant};

fn main() {
    println!("# Fig. 9 — modeling vs trial-and-error optimization overhead\n");
    let mut sim = RtmSimulator::new([64, 64, 64]);
    let snapshots: Vec<_> = [150usize, 300, 450].iter().map(|&s| sim.snapshot_at(s)).collect();
    let predictors = [PredictorKind::Lorenzo, PredictorKind::Interpolation];

    let mut t = Table::new(&[
        "snapshot",
        "TAE pred+huff (ms)",
        "TAE lossless (ms)",
        "TAE total (ms)",
        "model sample (ms)",
        "model estimate (ms)",
        "model total (ms)",
        "speedup",
        "ref compress (ms)",
    ]);
    let mut total_tae = Duration::ZERO;
    let mut total_model = Duration::ZERO;
    for (i, snap) in snapshots.iter().enumerate() {
        let ebs = eb_grid(snap.value_range(), 1e-6, 1e-2, 7);

        // Trial-and-error: one full-pipeline compression per
        // (predictor, eb) candidate. The Huffman-only timing of the same
        // candidate isolates the lossless stage's share.
        let mut tae_huff = Duration::ZERO;
        let mut tae_total = Duration::ZERO;
        for &kind in &predictors {
            for &eb in &ebs {
                let cfg_h =
                    CompressorConfig::new(kind, ErrorBoundMode::Abs(eb)).huffman_only();
                let t0 = Instant::now();
                let _ = compress(snap, &cfg_h).expect("compress");
                tae_huff += t0.elapsed();
                let mut cfg_l = CompressorConfig::new(kind, ErrorBoundMode::Abs(eb));
                cfg_l.lossless = LosslessStage::RleLzss;
                let t0 = Instant::now();
                let _ = compress(snap, &cfg_l).expect("compress");
                tae_total += t0.elapsed();
            }
        }
        let tae_lossless = tae_total.saturating_sub(tae_huff);

        // Model: one sampling pass per predictor, then 7 estimates each.
        let mut sample_time = Duration::ZERO;
        let mut est_time = Duration::ZERO;
        for &kind in &predictors {
            let t0 = Instant::now();
            let model = RqModel::build(snap, kind, 0.01, 7);
            sample_time += t0.elapsed();
            let t0 = Instant::now();
            for &eb in &ebs {
                let _ = model.estimate(eb);
            }
            est_time += t0.elapsed();
        }
        let model_total = sample_time + est_time;

        // Reference: one real compression at a mid bound (the paper
        // expresses overheads relative to the compression time).
        let cfg = CompressorConfig::new(PredictorKind::Interpolation, ErrorBoundMode::Abs(ebs[3]));
        let t0 = Instant::now();
        let _ = compress(snap, &cfg).expect("compress");
        let ref_time = t0.elapsed();

        total_tae += tae_total;
        total_model += model_total;
        t.row(&[
            format!("step-{}", (i + 1) * 150),
            f(tae_huff.as_secs_f64() * 1e3, 1),
            f(tae_lossless.as_secs_f64() * 1e3, 1),
            f(tae_total.as_secs_f64() * 1e3, 1),
            f(sample_time.as_secs_f64() * 1e3, 1),
            f(est_time.as_secs_f64() * 1e3, 1),
            f(model_total.as_secs_f64() * 1e3, 1),
            format!("{:.1}x", tae_total.as_secs_f64() / model_total.as_secs_f64()),
            f(ref_time.as_secs_f64() * 1e3, 1),
        ]);
    }
    t.print();
    println!(
        "\noverall speedup: {:.1}x (paper: 18.7x on average with 7 candidate bounds\n\
         and 2 predictors; exact factor depends on hardware and sizes, the shape —\n\
         model cost ≈ one sampling pass, TAE cost ≈ candidates × compression — holds)",
        total_tae.as_secs_f64() / total_model.as_secs_f64()
    );
}
