//! Regenerate the golden entropy-layer fixtures under `tests/data/`.
//!
//! These pin the *bit-level* Huffman / lossless formats: each fixture is a
//! codebook + payload encoded by the coder at the time the fixture was
//! committed. The compat tests in `tests/kernel_differential.rs` decode
//! them and also re-encode the frozen symbol streams, asserting the bytes
//! still match — so any accidental bitstream change (not just a failed
//! round-trip) is caught against bytes in git.
//!
//! The symbol-stream formulas are frozen here and duplicated in the compat
//! test; never change either side. Run only if a fixture for a **new**
//! stream shape is being introduced:
//!
//! ```sh
//! cargo run -p rq-bench --bin make_golden_entropy -- <out-dir>
//! ```

use rq_encoding::huffman::HuffmanCodec;
use rq_encoding::lossless::lossless_compress;
use rq_encoding::varint::put_uvarint;

/// Splitmix-free xorshift64: the only RNG the fixtures use, frozen.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Skewed stream: zero-code-dominated like real quantization output
/// (alphabet 1024, centre 512).
fn skewed_symbols() -> Vec<u32> {
    let mut st = 0x9E37_79B9_7F4A_7C15u64;
    (0..6000)
        .map(|_| {
            let r = xorshift(&mut st);
            match r % 100 {
                0..=69 => 512,
                70..=79 => 511,
                80..=89 => 513,
                90..=93 => 510,
                94..=97 => 514,
                _ => ((r / 100) % 1024) as u32,
            }
        })
        .collect()
}

/// Uniform stream: 300-symbol alphabet, near-flat histogram (codes 8–9
/// bits, exercising table-resident decode with mixed lengths).
fn uniform_symbols() -> Vec<u32> {
    let mut st = 0x0123_4567_89AB_CDEFu64;
    (0..4096).map(|_| (xorshift(&mut st) % 300) as u32).collect()
}

/// Adversarial-depth stream: Fibonacci-weighted histogram over 16 symbols
/// produces a maximally lopsided tree (deepest codes well past any
/// direct-lookup table width), in a deterministically shuffled order.
fn deep_symbols() -> Vec<u32> {
    let mut counts = [0u64; 16];
    let (mut a, mut b) = (1u64, 1u64);
    for c in counts.iter_mut() {
        *c = a;
        let next = a + b;
        a = b;
        b = next;
    }
    let mut stream = Vec::new();
    for (s, &c) in counts.iter().enumerate() {
        stream.extend(std::iter::repeat_n(s as u32, c as usize));
    }
    // Frozen Fisher-Yates so the payload is not trivial runs.
    let mut st = 0xDEAD_BEEF_CAFE_F00Du64;
    for i in (1..stream.len()).rev() {
        let j = (xorshift(&mut st) % (i as u64 + 1)) as usize;
        stream.swap(i, j);
    }
    stream
}

/// Degenerate stream: single-symbol alphabet (1-bit codes, all-zero
/// payload bytes).
fn single_symbols() -> Vec<u32> {
    vec![3u32; 500]
}

/// The lossless fixture's raw input: long zero runs (RLE-dominant) mixed
/// with repeated text (LZSS-dominant) and escape bytes.
fn lossless_raw() -> Vec<u8> {
    let mut raw = Vec::new();
    let mut st = 0x1357_9BDF_2468_ACE0u64;
    for block in 0..40 {
        raw.extend(std::iter::repeat_n(0u8, 64 + block * 7));
        raw.extend_from_slice(b"the quick brown fox jumps over the lazy dog");
        raw.push(0xF7); // the RLE escape byte, literal
        for _ in 0..8 {
            raw.push((xorshift(&mut st) % 251) as u8);
        }
    }
    raw
}

/// Fixture layout: `uvarint n_symbols | uvarint len(codebook) | codebook |
/// uvarint len(payload) | payload`.
fn encode_fixture(symbols: &[u32], alphabet: usize) -> Vec<u8> {
    let mut hist = vec![0u64; alphabet];
    for &s in symbols {
        hist[s as usize] += 1;
    }
    let codec = HuffmanCodec::from_counts(&hist).expect("histogram");
    let book = codec.serialize_codebook();
    let payload = codec.encode(symbols).expect("encode");
    let mut out = Vec::new();
    put_uvarint(&mut out, symbols.len() as u64);
    put_uvarint(&mut out, book.len() as u64);
    out.extend_from_slice(&book);
    put_uvarint(&mut out, payload.len() as u64);
    out.extend_from_slice(&payload);
    out
}

fn main() {
    let dir = std::env::args().nth(1).unwrap_or_else(|| "tests/data".into());
    for (name, symbols, alphabet) in [
        ("skewed", skewed_symbols(), 1024),
        ("uniform", uniform_symbols(), 300),
        ("deep", deep_symbols(), 16),
        ("single", single_symbols(), 8),
    ] {
        let bytes = encode_fixture(&symbols, alphabet);
        let path = format!("{dir}/golden_huffman_{name}.bin");
        std::fs::write(&path, &bytes).expect("write fixture");
        println!("wrote {path}: {} symbols, {} bytes", symbols.len(), bytes.len());
    }

    let raw = lossless_raw();
    let comp = lossless_compress(&raw);
    let mut out = Vec::new();
    put_uvarint(&mut out, raw.len() as u64);
    out.extend_from_slice(&comp);
    let path = format!("{dir}/golden_lossless_rlelzss.bin");
    std::fs::write(&path, &out).expect("write fixture");
    println!("wrote {path}: {} raw bytes, {} bytes", raw.len(), out.len());
}
