//! Regenerate the golden container fixtures under `tests/data/`.
//!
//! Fixtures are *committed* archives that backward-compat tests re-read;
//! run this only when introducing a **new** container generation, never to
//! "refresh" an existing fixture (that would defeat the test). The field
//! formulas here must match the expectations in
//! `tests/pipeline_roundtrip.rs` exactly.
//!
//! ```sh
//! cargo run -p rq-bench --bin make_golden_fixtures -- <out-dir>
//! ```

use rq_catalog::CatalogWriter;
use rq_compress::{
    chunk_table, compress_with_report, ArchiveWriter, ChunkCodecKind, CodecChoice,
    CompressorConfig,
};
use rq_grid::{NdArray, Shape};
use rq_predict::PredictorKind;
use rq_quant::ErrorBoundMode;

/// The v2.1 fixture field: smooth rows then hash-noise rows, so the auto
/// scheduler bakes *both* codec tags into the archive.
///
/// Deliberately NOT `rq_datagen::fields::mixed_smooth_turbulent`: the
/// committed fixture's bytes encode *this* formula, so it is frozen here
/// (and duplicated in the compat test) where shared generators may evolve.
fn v21_field() -> NdArray<f32> {
    NdArray::from_fn(Shape::d3(12, 12, 12), |ix| {
        if ix[0] < 4 {
            ((ix[0] as f64 * 0.5).sin() * 2.0 + ix[1] as f64 * 0.1 + ix[2] as f64 * 0.01) as f32
        } else {
            let mut h = (ix[0] * 4099 + ix[1] * 89 + ix[2]) as u64;
            h ^= h >> 33;
            h = h.wrapping_mul(0xff51afd7ed558ccd);
            h ^= h >> 33;
            h = h.wrapping_mul(0xc4ceb9fe1a85ec53);
            h ^= h >> 33;
            ((h >> 40) as f64 / (1u64 << 24) as f64 - 0.5) as f32 * 30.0
        }
    })
}

/// The v2.3 fixture field: smooth rows then hash-noise rows (a distinct
/// frozen formula — the committed fixture's bytes encode it verbatim, so
/// it is duplicated in the compat test and must never change).
fn v23_field() -> NdArray<f32> {
    NdArray::from_fn(Shape::d3(16, 10, 10), |ix| {
        if ix[0] < 8 {
            ((ix[0] as f64 * 0.4).sin() * 1.5 + ix[1] as f64 * 0.08 + ix[2] as f64 * 0.02) as f32
        } else {
            let mut h = (ix[0] * 5501 + ix[1] * 101 + ix[2]) as u64;
            h ^= h >> 33;
            h = h.wrapping_mul(0xff51afd7ed558ccd);
            h ^= h >> 33;
            h = h.wrapping_mul(0xc4ceb9fe1a85ec53);
            h ^= h >> 33;
            ((h >> 40) as f64 / (1u64 << 24) as f64 - 0.5) as f32 * 25.0
        }
    })
}

/// Per-chunk bounds of the v2.3 fixture (4-row chunks of the 16-row
/// field): heterogeneous on purpose, loose on the smooth half, tight on
/// the noisy half, so the fixture pins both the per-chunk quantization
/// and the mixed codec tags.
const V23_PLAN: [f64; 4] = [2e-3, 1e-4, 5e-4, 5e-5];

/// The catalog-v1 fixture's f32 dataset: a smooth field drifting slowly
/// with the step index, so delta segments are genuinely smaller than
/// keyframes (frozen here and duplicated in the compat test — the
/// committed bytes encode *this* formula; never change it).
fn cat1_wave_step(t: usize) -> NdArray<f32> {
    NdArray::from_fn(Shape::d3(8, 10, 10), |ix| {
        ((ix[0] as f64 * 0.3 + t as f64 * 0.05).sin() * 1.5
            + ix[1] as f64 * 0.08
            + ix[2] as f64 * 0.013
            + t as f64 * 0.02) as f32
    })
}

/// The catalog-v1 fixture's f64 dataset (frozen, see [`cat1_wave_step`]).
fn cat1_energy_step(t: usize) -> NdArray<f64> {
    NdArray::from_fn(Shape::d2(12, 9), |ix| {
        (ix[0] as f64 * 0.22 + t as f64 * 0.11).cos() * 0.8 + ix[1] as f64 * 0.05
    })
}

/// The v2.4 fixture field: smooth rows then hash-noise rows (another
/// distinct frozen formula, duplicated in the compat test — the committed
/// bytes encode it verbatim; never change it).
fn v24_field() -> NdArray<f32> {
    NdArray::from_fn(Shape::d3(16, 10, 10), |ix| {
        if ix[0] < 8 {
            ((ix[0] as f64 * 0.35).cos() * 1.2 + ix[1] as f64 * 0.06 + ix[2] as f64 * 0.015)
                as f32
        } else {
            let mut h = (ix[0] * 6007 + ix[1] * 113 + ix[2]) as u64;
            h ^= h >> 33;
            h = h.wrapping_mul(0xff51afd7ed558ccd);
            h ^= h >> 33;
            h = h.wrapping_mul(0xc4ceb9fe1a85ec53);
            h ^= h >> 33;
            ((h >> 40) as f64 / (1u64 << 24) as f64 - 0.5) as f32 * 28.0
        }
    })
}

/// Per-chunk bounds of the v2.4 fixture (4-row chunks of the 16-row
/// field): loose on the smooth half, tight on the noisy half, so the
/// three-way scheduler bakes a genuine sz/rolz codec split into the
/// archive.
const V24_PLAN: [f64; 4] = [1e-3, 5e-5, 2e-4, 1e-4];

/// Write a fixture unless it already exists. Committed fixtures are
/// frozen: the writer paths behind the old generations have moved on
/// (the adaptive policies now emit v2.4), so regenerating an existing
/// file would produce different bytes and defeat the compat test.
fn write_frozen(path: &str, bytes: &[u8]) -> bool {
    if std::path::Path::new(path).exists() {
        println!("{path}: exists, left frozen");
        return false;
    }
    std::fs::write(path, bytes).expect("write fixture");
    true
}

fn main() {
    let dir = std::env::args().nth(1).unwrap_or_else(|| "tests/data".into());

    // v2.1 — HISTORICAL: the adaptive policy this section used now emits
    // v2.4 containers, so the committed bytes can no longer be
    // reproduced; the section runs only if the fixture is missing and the
    // asserts then fail loudly rather than writing a wrong-generation
    // file.
    let path = format!("{dir}/golden_v21.rqc");
    if !std::path::Path::new(&path).exists() {
        let field = v21_field();
        let cfg = CompressorConfig::new(PredictorKind::Lorenzo, ErrorBoundMode::Abs(1e-4))
            .chunked(4)
            .with_codec(CodecChoice::Auto)
            .with_threads(1);
        let (out, rep) = compress_with_report(&field, &cfg).expect("compress fixture");
        assert_eq!(
            rq_compress::peek_header(&out.bytes).unwrap().version,
            3,
            "the v2.1 fixture cannot be regenerated: the adaptive policy moved to v2.4"
        );
        write_frozen(&path, &out.bytes);
        println!("wrote {path}: {} bytes, chunks {:?}", out.bytes.len(), rep.chunk_codecs);
    } else {
        println!("{path}: exists, left frozen");
    }

    // v2.3 — HISTORICAL (same caveat as v2.1): heterogeneous per-chunk
    // bounds through the planned streaming writer.
    let path = format!("{dir}/golden_v23.rqc");
    if !std::path::Path::new(&path).exists() {
        let field = v23_field();
        let cfg = CompressorConfig::new(PredictorKind::Lorenzo, ErrorBoundMode::Abs(1.0))
            .chunked(4)
            .with_codec(CodecChoice::Auto)
            .with_threads(1);
        let mut w = ArchiveWriter::<f32, Vec<u8>>::create_planned(
            Vec::new(),
            field.shape(),
            &cfg,
            V23_PLAN.to_vec(),
        )
        .expect("planned session");
        w.write_slab(&field).expect("write fixture field");
        let bytes = w.finalize().expect("finalize fixture").sink;
        assert_eq!(
            rq_compress::peek_header(&bytes).unwrap().version,
            5,
            "the v2.3 fixture cannot be regenerated: the adaptive policy moved to v2.4"
        );
        write_frozen(&path, &bytes);
    } else {
        println!("{path}: exists, left frozen");
    }

    // v2.4: the three-way adaptive generation — per-chunk bounds in the
    // trailer plus the rolz codec tag; the plan forces a real sz/rolz
    // split.
    let path = format!("{dir}/golden_v24.rqc");
    if !std::path::Path::new(&path).exists() {
        let field = v24_field();
        let cfg = CompressorConfig::new(PredictorKind::Lorenzo, ErrorBoundMode::Abs(1.0))
            .chunked(4)
            .with_codec(CodecChoice::Auto)
            .with_threads(1);
        let mut w = ArchiveWriter::<f32, Vec<u8>>::create_planned(
            Vec::new(),
            field.shape(),
            &cfg,
            V24_PLAN.to_vec(),
        )
        .expect("planned session");
        w.write_slab(&field).expect("write fixture field");
        let bytes = w.finalize().expect("finalize fixture").sink;
        assert_eq!(rq_compress::peek_header(&bytes).unwrap().version, 6);
        let codecs: Vec<ChunkCodecKind> =
            chunk_table(&bytes).unwrap().entries.iter().map(|e| e.codec).collect();
        assert!(
            codecs.contains(&ChunkCodecKind::Sz) && codecs.contains(&ChunkCodecKind::Rolz),
            "v2.4 fixture must mix sz and rolz chunks, got {codecs:?}"
        );
        write_frozen(&path, &bytes);
        println!(
            "wrote {path}: {} bytes, chunks {codecs:?}, plan {V24_PLAN:?}",
            bytes.len()
        );
    } else {
        println!("{path}: exists, left frozen");
    }

    // Catalog v1: two datasets (f32 + f64), delta chains with distinct
    // keyframe cadences, chunked segments — every layout feature of the
    // RQCAT generation in one committed file.
    let path = format!("{dir}/golden_cat1.rqc");
    if !std::path::Path::new(&path).exists() {
        let mut w = CatalogWriter::create(Vec::new()).expect("catalog preamble");
        let wave: Vec<NdArray<f32>> = (0..5).map(cat1_wave_step).collect();
        let wave_cfg = CompressorConfig::new(PredictorKind::Lorenzo, ErrorBoundMode::Abs(1e-3))
            .chunked(4)
            .with_threads(1);
        w.write_dataset("wave", &wave_cfg, 2, &wave).expect("wave dataset");
        let energy: Vec<NdArray<f64>> = (0..3).map(cat1_energy_step).collect();
        let energy_cfg =
            CompressorConfig::new(PredictorKind::Lorenzo, ErrorBoundMode::Abs(1e-6))
                .with_threads(1);
        w.write_dataset("energy", &energy_cfg, 3, &energy).expect("energy dataset");
        let fin = w.finalize().expect("finalize catalog");
        write_frozen(&path, &fin.sink);
        println!(
            "wrote {path}: {} bytes, {} datasets / {} steps",
            fin.sink.len(),
            fin.index.datasets.len(),
            fin.index.total_steps()
        );
    } else {
        println!("{path}: exists, left frozen");
    }
}
