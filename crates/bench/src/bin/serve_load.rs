//! `rqm serve` load benchmark: request latency and aggregate
//! throughput at 1/8/64/256 simulated clients, recorded to
//! `BENCH_serve.json`.
//!
//! A synthetic wavefield archive is served from memory over loopback
//! TCP. Each simulated client runs on its own thread with its own
//! connection and fires chunk-aligned `READ_ROWS` requests whose chunk
//! choice follows a **zipfian** distribution (s = 1.2) — a few hot
//! chunks soak up most requests, the tail stays cold, which is exactly
//! the workload the decoded-chunk LRU exists for. Per-request wall
//! times aggregate into p50/p99 latency; payload bytes over wall time
//! give MB/s.
//!
//! Two contracts are **asserted**, not just recorded:
//!
//! - **Warm ≥ 3× cold**: the same zipfian workload runs once against a
//!   cache-disabled server (every request decodes) and once against a
//!   pre-warmed cached server (the hot set is resident); the warm
//!   aggregate throughput must be at least 3× the cold one.
//! - **Single flight**: a barrier aligns clients on one cold chunk;
//!   the server must report exactly one decode for it.
//!
//! ```sh
//! cargo run --release -p rq-bench --bin serve_load [-- --quick]
//! ```

use rq_bench::{f, Table};
use rq_compress::{ArchiveWriter, CompressorConfig};
use rq_grid::{NdArray, Shape};
use rq_predict::PredictorKind;
use rq_quant::ErrorBoundMode;
use rq_serve::{Client, ServeConfig, Server};
use std::io::Write;
use std::sync::{Arc, Barrier};
use std::time::Instant;

/// Deterministic xorshift64* stream.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Zipfian chunk sampler: CDF over `n` ranks with exponent `s`.
struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    fn new(n: usize, s: f64) -> Zipf {
        let mut cdf: Vec<f64> = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        for v in cdf.iter_mut() {
            *v /= acc;
        }
        Zipf { cdf }
    }

    fn sample(&self, rng: &mut Rng) -> usize {
        let u = rng.unit();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// One client-count level of the sweep.
struct Level {
    clients: usize,
    requests: u64,
    wall_s: f64,
    payload_bytes: u64,
    p50_us: f64,
    p99_us: f64,
    hit_pct: f64,
}

fn percentile(sorted: &[u64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[rank] as f64
}

/// Run `clients` threads × `per_client` zipfian chunk-aligned
/// `READ_ROWS` requests against `server`; returns (wall, payload
/// bytes, sorted per-request latencies in µs).
fn drive(
    server: &Server,
    clients: usize,
    per_client: usize,
    zipf: &Arc<Zipf>,
    chunk_rows: usize,
    rows: usize,
) -> (f64, u64, Vec<u64>) {
    let barrier = Arc::new(Barrier::new(clients + 1));
    let addr = server.local_addr();
    let handles: Vec<_> = (0..clients)
        .map(|id| {
            let barrier = Arc::clone(&barrier);
            let zipf = Arc::clone(zipf);
            std::thread::spawn(move || {
                let mut rng = Rng(0xC11E27 ^ ((id as u64) << 20) | 1);
                let mut c = Client::connect(addr).unwrap();
                let mut lat = Vec::with_capacity(per_client);
                let mut bytes = 0u64;
                barrier.wait();
                for _ in 0..per_client {
                    let chunk = zipf.sample(&mut rng);
                    let a = chunk * chunk_rows;
                    let b = (a + chunk_rows).min(rows);
                    let t0 = Instant::now();
                    let slab = c.read_rows::<f32>(a..b).unwrap();
                    lat.push(t0.elapsed().as_micros() as u64);
                    bytes += (slab.as_slice().len() * 4) as u64;
                }
                (lat, bytes)
            })
        })
        .collect();
    barrier.wait();
    let t0 = Instant::now();
    let mut lat = Vec::new();
    let mut payload = 0u64;
    for h in handles {
        let (l, b) = h.join().unwrap();
        lat.extend(l);
        payload += b;
    }
    let wall = t0.elapsed().as_secs_f64();
    lat.sort_unstable();
    (wall, payload, lat)
}

fn main() {
    let quick = rq_bench::quick() || std::env::args().any(|a| a == "--quick");
    // The served field: chunk-parallel v2.2 archive of a smooth-ish
    // wavefield. Sized so a full level finishes in seconds.
    let shape = if quick { Shape::d3(64, 32, 32) } else { Shape::d3(192, 64, 64) };
    let chunk_rows = 4;
    let n_chunks = shape.dim(0).div_ceil(chunk_rows);
    let cpus = std::thread::available_parallelism().map(|t| t.get()).unwrap_or(1);

    let field = NdArray::<f32>::from_fn(shape, |ix| {
        let mut v = 0.0f64;
        for (a, &c) in ix.iter().enumerate() {
            v += ((c as f64) * 0.13 * (a + 1) as f64).sin() * (4.0 / (a + 1) as f64);
        }
        v as f32
    });
    let cfg = CompressorConfig::new(PredictorKind::Lorenzo, ErrorBoundMode::Abs(1e-3))
        .chunked(chunk_rows);
    let archive = {
        let mut w = ArchiveWriter::<f32, Vec<u8>>::create(Vec::new(), shape, &cfg).unwrap();
        w.write_slab(&field).unwrap();
        w.finalize().unwrap().sink
    };
    let chunk_bytes = (chunk_rows * shape.dims()[1..].iter().product::<usize>() * 4) as u64;
    let zipf = Arc::new(Zipf::new(n_chunks, 1.2));
    let rows = shape.dim(0);

    println!(
        "# rqm serve load — field {:?} ({} chunks of {chunk_rows} rows, {} B decoded each), \
         zipf(1.2) chunk mix, {cpus} CPU(s)",
        shape.dims(),
        n_chunks,
        chunk_bytes,
    );
    println!();

    // ---- latency/throughput sweep over client counts (warm cache) ----
    // Total request volume is held roughly constant so each level runs
    // in comparable wall time; per-client counts shrink as fan-out
    // grows.
    let total_requests: usize = if quick { 512 } else { 4096 };
    let client_levels = [1usize, 8, 64, 256];
    let mut levels: Vec<Level> = Vec::new();
    for &clients in &client_levels {
        let per_client = (total_requests / clients).max(4);
        // Fresh server per level so hit rates are comparable; warm the
        // cache with one pass over every chunk first — this sweep
        // measures serving, the cold path is measured separately below.
        let server = Server::bind_bytes(
            "127.0.0.1:0",
            archive.clone(),
            ServeConfig { cache_bytes: u64::MAX, ..ServeConfig::default() },
        )
        .unwrap();
        {
            let mut c = Client::connect(server.local_addr()).unwrap();
            for idx in 0..n_chunks {
                c.read_chunk::<f32>(idx).unwrap();
            }
        }
        let warm_base = server.stats();
        let (wall_s, payload_bytes, lat) =
            drive(&server, clients, per_client, &zipf, chunk_rows, rows);
        let s = server.stats();
        let hits = s.cache.hits - warm_base.cache.hits;
        let lookups = hits + (s.cache.misses - warm_base.cache.misses);
        levels.push(Level {
            clients,
            requests: lat.len() as u64,
            wall_s,
            payload_bytes,
            p50_us: percentile(&lat, 0.50),
            p99_us: percentile(&lat, 0.99),
            hit_pct: if lookups == 0 { 100.0 } else { 100.0 * hits as f64 / lookups as f64 },
        });
        server.shutdown();
    }

    let mut t = Table::new(&["clients", "requests", "p50(µs)", "p99(µs)", "MB/s", "hit%"]);
    for l in &levels {
        t.row(&[
            l.clients.to_string(),
            l.requests.to_string(),
            f(l.p50_us, 0),
            f(l.p99_us, 0),
            f(l.payload_bytes as f64 / 1e6 / l.wall_s, 1),
            f(l.hit_pct, 1),
        ]);
    }
    t.print();
    println!();

    // ---- cold vs warm on the same zipfian workload ----
    // Cold: cache disabled, every request pays fetch+decode. Warm: hot
    // set resident. The cache must buy at least 3x aggregate
    // throughput, or it is not earning its memory.
    let cw_clients = if quick { 8 } else { 16 };
    let cw_per_client = if quick { 16 } else { 64 };
    let cold_server = Server::bind_bytes(
        "127.0.0.1:0",
        archive.clone(),
        ServeConfig { cache_bytes: 0, ..ServeConfig::default() },
    )
    .unwrap();
    let (cold_wall, cold_bytes, _) =
        drive(&cold_server, cw_clients, cw_per_client, &zipf, chunk_rows, rows);
    cold_server.shutdown();

    let warm_server = Server::bind_bytes(
        "127.0.0.1:0",
        archive.clone(),
        ServeConfig { cache_bytes: u64::MAX, ..ServeConfig::default() },
    )
    .unwrap();
    {
        let mut c = Client::connect(warm_server.local_addr()).unwrap();
        for idx in 0..n_chunks {
            c.read_chunk::<f32>(idx).unwrap();
        }
    }
    let (warm_wall, warm_bytes, _) =
        drive(&warm_server, cw_clients, cw_per_client, &zipf, chunk_rows, rows);
    warm_server.shutdown();

    let cold_mbs = cold_bytes as f64 / 1e6 / cold_wall;
    let warm_mbs = warm_bytes as f64 / 1e6 / warm_wall;
    let warm_over_cold = warm_mbs / cold_mbs;
    println!(
        "cold (no cache): {cold_mbs:.1} MB/s   warm (hot set resident): {warm_mbs:.1} MB/s   \
         ratio {warm_over_cold:.1}x"
    );
    assert!(
        warm_over_cold >= 3.0,
        "warm aggregate throughput ({warm_mbs:.1} MB/s) is only {warm_over_cold:.2}x cold \
         ({cold_mbs:.1} MB/s); the decoded-chunk cache must buy >= 3x on a zipfian hot-chunk mix"
    );

    // ---- single-flight decode-count assertion ----
    // A barrier aligns clients on one cold chunk; the server must
    // report exactly one decode for it.
    let sf_clients = 8;
    let sf_server =
        Server::bind_bytes("127.0.0.1:0", archive.clone(), ServeConfig::default()).unwrap();
    {
        let barrier = Arc::new(Barrier::new(sf_clients));
        let addr = sf_server.local_addr();
        let handles: Vec<_> = (0..sf_clients)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    let mut c = Client::connect(addr).unwrap();
                    barrier.wait();
                    c.read_chunk::<f32>(0).unwrap();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
    let sf = sf_server.stats();
    assert_eq!(
        sf.chunks_decoded, 1,
        "{sf_clients} barrier-aligned clients on one cold chunk must cost exactly 1 decode, \
         saw {}",
        sf.chunks_decoded
    );
    sf_server.shutdown();
    println!(
        "single-flight: {sf_clients} aligned clients on a cold chunk -> {} decode(s)",
        sf.chunks_decoded
    );

    // Hand-rolled JSON (the workspace has no serde): the serving perf
    // trajectory across PRs.
    let mut j = String::new();
    j.push_str("{\n  \"bench\": \"serve_load\",\n");
    j.push_str(&format!("  \"field\": {:?},\n", shape.dims()));
    j.push_str(&format!("  \"chunk_rows\": {chunk_rows},\n"));
    j.push_str(&format!("  \"n_chunks\": {n_chunks},\n"));
    j.push_str(&format!("  \"decoded_chunk_bytes\": {chunk_bytes},\n"));
    j.push_str("  \"zipf_s\": 1.2,\n");
    j.push_str(&format!("  \"cpus\": {cpus},\n"));
    j.push_str(&format!("  \"quick\": {quick},\n"));
    j.push_str(&format!(
        "  \"cold_mb_per_s\": {},\n  \"warm_mb_per_s\": {},\n  \"warm_over_cold\": {},\n",
        rq_bench::jf(cold_mbs, 2),
        rq_bench::jf(warm_mbs, 2),
        rq_bench::jf(warm_over_cold, 2),
    ));
    j.push_str(&format!(
        "  \"single_flight\": {{\"clients\": {sf_clients}, \"decodes\": {}}},\n",
        sf.chunks_decoded
    ));
    j.push_str("  \"levels\": [\n");
    for (i, l) in levels.iter().enumerate() {
        j.push_str(&format!(
            "    {{\"clients\": {}, \"requests\": {}, \"p50_us\": {}, \"p99_us\": {}, \
             \"mb_per_s\": {}, \"cache_hit_pct\": {}}}{}\n",
            l.clients,
            l.requests,
            rq_bench::jf(l.p50_us, 1),
            rq_bench::jf(l.p99_us, 1),
            rq_bench::jf(l.payload_bytes as f64 / 1e6 / l.wall_s, 2),
            rq_bench::jf(l.hit_pct, 1),
            if i + 1 < levels.len() { "," } else { "" }
        ));
    }
    j.push_str("  ]\n}\n");
    let mut out = std::fs::File::create("BENCH_serve.json").unwrap();
    out.write_all(j.as_bytes()).unwrap();
    println!("\nwrote BENCH_serve.json ({} client levels)", levels.len());
}
