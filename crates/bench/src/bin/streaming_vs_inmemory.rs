//! Streaming vs in-memory compression **and decompression**: wall time
//! and peak RSS at 1/2/4/8 worker threads.
//!
//! The streaming sessions' contract is that peak memory scales with
//! `O(slab × threads)` (write side) / `O(read-ahead window)` (read
//! side), not `O(field + archive)`. This bench measures it directly: a
//! raw `f32` field is staged to disk, compressed twice per thread count
//! — once through the buffer-in/buffer-out one-shot API and once through
//! `ArchiveWriter` fed file slabs — then decompressed twice per thread
//! count — once through the in-memory `decompress_with_threads` (whole
//! archive + whole field resident) and once through the parallel
//! streaming `ArchiveReader::decompress_to_writer` — recording wall time
//! and the process peak-RSS high-water mark (`VmHWM` from
//! `/proc/self/status`, reset via `/proc/self/clear_refs` between runs
//! where the kernel allows it).
//!
//! At full size (no `RQM_QUICK`) with a resettable HWM counter, the
//! bench **asserts** that streaming decode peak RSS stays below the raw
//! field size — the bounded-read-ahead contract, checked, not eyeballed.
//!
//! ```sh
//! cargo run --release -p rq-bench --bin streaming_vs_inmemory
//! ```
//!
//! Expected shape of the result: in-memory peak RSS grows with the field
//! (~field + archive + decode scratch), streaming peak RSS stays near the
//! slab batch / read-ahead window regardless of field size, at equal
//! output bytes.

use rq_bench::{f, mib, peak_rss_bytes, reset_peak_rss, Table};
use rq_compress::{
    compress, decompress_with_threads, ArchiveReader, ArchiveWriter, CompressorConfig,
};
use rq_grid::{NdArray, Shape, MAX_DIMS};
use rq_predict::PredictorKind;
use rq_quant::ErrorBoundMode;
use std::io::{Read, Write};
use std::time::Instant;

fn main() {
    let quick = rq_bench::quick();
    let shape = if quick { Shape::d3(96, 64, 64) } else { Shape::d3(256, 128, 128) };
    let chunk_rows = 8;
    let eb = 1e-3;

    // Stage the input as a raw file so both paths do real file I/O.
    let dir = std::env::temp_dir().join("rqm_stream_bench");
    std::fs::create_dir_all(&dir).unwrap();
    let raw_path = dir.join("field.f32");
    let field = NdArray::<f32>::from_fn(shape, |ix| {
        let mut v = 0.0f64;
        for (a, &c) in ix.iter().enumerate() {
            v += ((c as f64) * 0.07 * (a + 1) as f64).sin() * (4.0 / (a + 1) as f64);
        }
        v as f32
    });
    {
        let mut out = std::io::BufWriter::new(std::fs::File::create(&raw_path).unwrap());
        for &v in field.as_slice() {
            out.write_all(&v.to_le_bytes()).unwrap();
        }
    }
    let raw_bytes = (field.len() * 4) as u64;
    drop(field); // the in-memory path re-reads the file, like the CLI
    let row_elems: usize = shape.dims()[1..].iter().product();

    let resettable = reset_peak_rss();
    println!(
        "# Streaming vs in-memory compression — field {:?} ({:.0} MiB raw), {}-row chunks",
        shape.dims(),
        mib(raw_bytes),
        chunk_rows
    );
    if !resettable {
        println!("(VmHWM reset unavailable: peak-RSS readings are monotone upper bounds)");
    }
    println!();

    let mut t = Table::new(&[
        "threads",
        "mode",
        "wall(ms)",
        "out bytes",
        "peakRSS(MiB)",
    ]);
    for threads in [1usize, 2, 4, 8] {
        let cfg = CompressorConfig::new(PredictorKind::Lorenzo, ErrorBoundMode::Abs(eb))
            .chunked(chunk_rows)
            .with_threads(threads);

        // --- streaming first (lower footprint), fresh HWM window ---
        reset_peak_rss();
        let rss0 = peak_rss_bytes().unwrap_or(0);
        let t0 = Instant::now();
        let out_path = dir.join(format!("stream_{threads}.rqc"));
        let sink = std::io::BufWriter::new(std::fs::File::create(&out_path).unwrap());
        let mut writer = ArchiveWriter::<f32, _>::create(sink, shape, &cfg).unwrap();
        let batch_rows = chunk_rows * threads;
        let mut src = std::io::BufReader::new(std::fs::File::open(&raw_path).unwrap());
        let mut row = 0usize;
        let mut buf = vec![0u8; batch_rows * row_elems * 4];
        while row < shape.dim(0) {
            let rows = batch_rows.min(shape.dim(0) - row);
            let take = &mut buf[..rows * row_elems * 4];
            src.read_exact(take).unwrap();
            let values: Vec<f32> = take
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
                .collect();
            let mut dims = [0usize; MAX_DIMS];
            dims[..shape.ndim()].copy_from_slice(shape.dims());
            dims[0] = rows;
            writer
                .write_slab(&NdArray::from_vec(Shape::new(&dims[..shape.ndim()]), values))
                .unwrap();
            row += rows;
        }
        let finished = writer.finalize().unwrap();
        let stream_wall = t0.elapsed();
        let stream_rss = peak_rss_bytes().unwrap_or(0).max(rss0);
        let stream_bytes = finished.bytes_written;
        t.row(&[
            threads.to_string(),
            "streaming".into(),
            f(stream_wall.as_secs_f64() * 1e3, 1),
            stream_bytes.to_string(),
            f(mib(stream_rss), 1),
        ]);

        // --- in-memory one-shot ---
        reset_peak_rss();
        let rss0 = peak_rss_bytes().unwrap_or(0);
        let t0 = Instant::now();
        let bytes = std::fs::read(&raw_path).unwrap();
        let values: Vec<f32> = bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        drop(bytes);
        let input = NdArray::from_vec(shape, values);
        let out = compress(&input, &cfg).unwrap();
        std::fs::write(dir.join(format!("inmem_{threads}.rqc")), &out.bytes).unwrap();
        let inmem_wall = t0.elapsed();
        let inmem_rss = peak_rss_bytes().unwrap_or(0).max(rss0);
        t.row(&[
            threads.to_string(),
            "in-memory".into(),
            f(inmem_wall.as_secs_f64() * 1e3, 1),
            out.bytes.len().to_string(),
            f(mib(inmem_rss), 1),
        ]);
        drop(input);
        drop(out);
    }
    t.print();
    println!(
        "\nReading: \"streaming\" holds {chunk_rows}×threads rows of input plus per-worker\n\
         state; \"in-memory\" holds the whole field plus the whole archive. Output bytes\n\
         differ only by index placement (v2.2 trailer vs v2 inline index).\n"
    );

    // ------------------------------------------------------------------
    // Decompression: streaming parallel reader vs in-memory decode.
    // ------------------------------------------------------------------
    let archive_path = dir.join("stream_1.rqc");
    let archive_bytes = std::fs::metadata(&archive_path).unwrap().len();
    println!(
        "# Streaming vs in-memory decompression — same field, {:.1} MiB archive",
        mib(archive_bytes)
    );
    println!();
    // Peak-RSS readings here are deltas over each run's post-reset floor
    // (freed whole-field buffers can leave the heap ratcheted up, and
    // VmHWM resets only down to *current* RSS, never below); streaming
    // decodes run before in-memory ones for a clean floor.
    let mut t = Table::new(&["threads", "mode", "wall(ms)", "values", "ΔRSS(MiB)"]);
    let mut stream_decode_delta = 0u64;
    for threads in [1usize, 2, 4, 8] {
        // --- streaming parallel decode: rows flow to a sink, field
        //     never resident, window-bounded read-ahead ---
        reset_peak_rss();
        let floor = peak_rss_bytes().unwrap_or(0);
        let t0 = Instant::now();
        let mut reader =
            ArchiveReader::open_path(&archive_path).unwrap().with_threads(threads);
        let values =
            reader.decompress_to_writer::<f32, _>(&mut std::io::sink()).unwrap();
        let wall = t0.elapsed();
        let delta = peak_rss_bytes().unwrap_or(0).saturating_sub(floor);
        stream_decode_delta = stream_decode_delta.max(delta);
        assert_eq!(values, shape.len() as u64);
        t.row(&[
            threads.to_string(),
            "streaming".into(),
            f(wall.as_secs_f64() * 1e3, 1),
            values.to_string(),
            f(mib(delta), 1),
        ]);
    }
    for threads in [1usize, 2, 4, 8] {
        // --- in-memory decode: whole archive + whole field resident ---
        reset_peak_rss();
        let floor = peak_rss_bytes().unwrap_or(0);
        let t0 = Instant::now();
        let bytes = std::fs::read(&archive_path).unwrap();
        let field: NdArray<f32> = decompress_with_threads(&bytes, threads).unwrap();
        let wall = t0.elapsed();
        let delta = peak_rss_bytes().unwrap_or(0).saturating_sub(floor);
        t.row(&[
            threads.to_string(),
            "in-memory".into(),
            f(wall.as_secs_f64() * 1e3, 1),
            field.len().to_string(),
            f(mib(delta), 1),
        ]);
    }
    t.print();
    println!(
        "\nReading: streaming decode holds a read-ahead window of chunks (blob + slab),\n\
         in-memory holds the whole archive plus the whole decoded field."
    );

    // The bounded-RSS contract of `rqm decompress --threads`: each
    // streaming run's own RSS growth must track the window, not the
    // field/archive size. Only checkable when the HWM counter resets and
    // the field dwarfs the process baseline (full-size run).
    if resettable && !quick {
        assert!(
            stream_decode_delta < raw_bytes,
            "streaming decode grew RSS by {:.1} MiB — not bounded by the read-ahead window \
             (raw field {:.1} MiB)",
            mib(stream_decode_delta),
            mib(raw_bytes)
        );
        println!(
            "\nbounded-RSS assertion passed: streaming decode grew \
             {:.1} MiB < raw field {:.1} MiB",
            mib(stream_decode_delta),
            mib(raw_bytes)
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
