//! Table II: per-field model accuracy — sampling error, Huffman bit-rate
//! error, lossless-stage error, overall (Huffman+LL) error, PSNR error and
//! SSIM error, each via the paper's Eq. 20 statistic over an error-bound
//! sweep.
//!
//! ```sh
//! cargo run --release -p rq-bench --bin table2_accuracy
//! ```

use rq_analysis::{global_ssim, psnr};
use rq_bench::{eb_grid, eq20_error, pct, quick, Table};
use rq_compress::{compress_with_report, decompress, CompressorConfig};
use rq_core::{sample_errors, RqModel};
use rq_datagen::all_datasets;
use rq_grid::NdArray;
use rq_predict::PredictorKind;
use rq_quant::ErrorBoundMode;

struct RowAcc {
    sample_err: f64,
    huff: Vec<(f64, f64)>,
    lossless: Vec<(f64, f64)>,
    overall: Vec<(f64, f64)>,
    psnr_pairs: Vec<(f64, f64)>,
    ssim_pairs: Vec<(f64, f64)>,
}

fn eval_field(field: &NdArray<f32>, kind: PredictorKind) -> RowAcc {
    let range = field.value_range();
    // Sampling error: |sampled std − full std| / range (paper §V-B1).
    let full = sample_errors(field, kind, 1.0, 0).weighted_std();
    let sampled = sample_errors(field, kind, 0.01, 1).weighted_std();
    let sample_err = (sampled - full).abs() / range.max(f64::MIN_POSITIVE);

    let model = RqModel::build(field, kind, 0.01, 2);
    let points = if quick() { 4 } else { 6 };
    let mut acc = RowAcc {
        sample_err,
        huff: Vec::new(),
        lossless: Vec::new(),
        overall: Vec::new(),
        psnr_pairs: Vec::new(),
        ssim_pairs: Vec::new(),
    };
    for eb in eb_grid(range, 1e-5, 1e-2, points) {
        let est = model.estimate(eb);
        let cfg = CompressorConfig::new(kind, ErrorBoundMode::Abs(eb));
        let (out, rep) = compress_with_report(field, &cfg).expect("compress");
        acc.huff.push((rep.huffman_bit_rate(), est.bit_rate_huffman));
        // Lossless column: the extra ratio delivered by the optional stage.
        let meas_extra = rep.huffman_bytes as f64 / rep.encoded_bytes.max(1) as f64;
        let est_extra = (est.bit_rate_huffman / est.bit_rate).max(1.0);
        acc.lossless.push((meas_extra, est_extra));
        acc.overall.push((out.bit_rate(), est.bit_rate));
        let back = decompress::<f32>(&out.bytes).expect("decompress");
        acc.psnr_pairs.push((psnr(field, &back), est.psnr));
        if field.shape().ndim() >= 2 {
            acc.ssim_pairs.push((global_ssim(field, &back), est.ssim));
        }
    }
    acc
}

fn main() {
    println!("# Table II — per-field model accuracy (Eq. 20 error rates)\n");
    let mut t = Table::new(&[
        "Field",
        "Dim",
        "Sample Err",
        "Huff Err",
        "Lossless Err",
        "Huff+LL Err",
        "PSNR Err",
        "SSIM Err",
    ]);
    let mut totals: Vec<f64> = vec![0.0; 6];
    let mut counts: Vec<usize> = vec![0; 6];
    for ds in all_datasets() {
        for fs in &ds.fields {
            let field = fs.generate();
            let kind = if field.shape().ndim() == 1 {
                PredictorKind::Lorenzo
            } else {
                PredictorKind::Interpolation
            };
            let acc = eval_field(&field, kind);
            let dims: Vec<String> =
                field.shape().dims().iter().map(|d| d.to_string()).collect();
            let cols = [
                acc.sample_err,
                eq20_error(&acc.huff),
                eq20_error(&acc.lossless),
                eq20_error(&acc.overall),
                eq20_error(&acc.psnr_pairs),
                if acc.ssim_pairs.is_empty() {
                    f64::NAN
                } else {
                    eq20_error(&acc.ssim_pairs)
                },
            ];
            for (i, &c) in cols.iter().enumerate() {
                if c.is_finite() {
                    totals[i] += c;
                    counts[i] += 1;
                }
            }
            t.row(&[
                fs.label(),
                dims.join("x"),
                pct(cols[0]),
                pct(cols[1]),
                pct(cols[2]),
                pct(cols[3]),
                pct(cols[4]),
                if cols[5].is_finite() { pct(cols[5]) } else { "-".into() },
            ]);
        }
    }
    let avg: Vec<String> = totals
        .iter()
        .zip(&counts)
        .map(|(&s, &c)| if c > 0 { pct(s / c as f64) } else { "-".into() })
        .collect();
    t.row(&[
        "Average".into(),
        "-".into(),
        avg[0].clone(),
        avg[1].clone(),
        avg[2].clone(),
        avg[3].clone(),
        avg[4].clone(),
        avg[5].clone(),
    ]);
    t.print();
    println!(
        "\nPaper reference averages: sample 0.12%, Huffman 5.16%, lossless 6.21%,\n\
         Huffman+LL 6.53%, PSNR 2.72%, SSIM 5.59% (Table II)."
    );
}
