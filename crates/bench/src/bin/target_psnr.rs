//! Quality-targeted compression ablation: planned per-chunk bounds
//! (container v2.3, the `rqm compress --target-psnr` pipeline) versus
//! single-global-bound baselines at the same measured PSNR floor, on a
//! mixed RTM field (early quiet snapshots, late dense ones, stacked along
//! axis 0).
//!
//! What the model-driven pipeline is for — and what this bench gates:
//!
//! * **No trial-and-error.** The floor is met in at most **2**
//!   compression passes (one planned shot from the sampled models plus at
//!   most one measured-feedback round). The oracle baseline below needs
//!   ~18 full compress+decompress trials to locate its bound.
//! * **The floor holds.** Measured PSNR ≥ T − 0.5 dB.
//! * **The feedback round pays.** The corrected second round never
//!   produces a larger archive than the margin-only first shot.
//! * **Near-oracle size.** The planned archive stays within a small
//!   factor of the *oracle* single bound (the smallest global-bound
//!   archive meeting the floor, found by exhaustive measured bisection).
//!
//! Honest reproduction note: on this repository's synthetic wavefields
//! the paper's §IV-C claim of *beating* the best single bound via
//! fine-grained per-partition bounds does not materialize in measured
//! terms — `fig12_insitu` documents the same (its measured equal-quality
//! gain is negative while the model-space gain is positive). The
//! measured rate-distortion slopes of noise-like chunks are equal at a
//! common bound, which makes the uniform assignment near-optimal; the
//! paper's gains rely on per-partition knees that the Lorenzo feedback
//! of this codebase largely erases. What survives reproduction — and
//! what this bench asserts — is the headline §IV-A workflow: state a
//! quality target, get a floor-respecting archive in one or two shots.
//!
//! ```sh
//! cargo run --release -p rq-bench --bin target_psnr
//! ```

use rq_analysis::psnr;
use rq_bench::{f, Table};
use rq_compress::{
    chunk_table, decompress, resolved_chunk_rows, ArchiveWriter, CodecChoice, CompressorConfig,
};
use rq_core::usecases::{
    optimize_partitions, optimize_partitions_corrected, uniform_eb_for_target, PlanCorrection,
};
use rq_core::RqModel;
use rq_datagen::RtmSimulator;
use rq_grid::{NdArray, Shape};
use rq_predict::PredictorKind;
use rq_quant::ErrorBoundMode;

/// Planning safety margin (dB) — the CLI's Lorenzo-family value.
const PLAN_MARGIN_DB: f64 = 1.5;

/// Acceptance slack below the floor.
const FLOOR_SLACK_DB: f64 = 0.5;

/// Feedback round aims this far above the floor.
const AIM_GUARD_DB: f64 = 0.3;

/// Size ceiling relative to the 18-trial oracle single bound (a
/// regression tripwire on the planner's efficiency, with headroom for the
/// guard band above the floor that the oracle does not pay).
const ORACLE_SIZE_FACTOR: f64 = 1.25;

fn main() {
    println!("# Quality-targeted compression — planned per-chunk bounds vs single-bound baselines\n");
    let (side, steps): (usize, Vec<usize>) = if rq_bench::quick() {
        (24, vec![12, 30, 60, 90, 150, 240])
    } else {
        (32, vec![12, 30, 60, 90, 120, 150, 200, 240])
    };
    let mut sim = RtmSimulator::new([side, side, side]);
    let mut data = Vec::new();
    for &s in &steps {
        data.extend_from_slice(sim.snapshot_at(s).as_slice());
    }
    let n_chunks = steps.len();
    let field = NdArray::from_vec(Shape::d3(n_chunks * side, side, side), data);
    let target = 60.0;
    let floor = target - FLOOR_SLACK_DB;
    println!(
        "field: {:?} ({} RTM snapshots of {side}³, steps {steps:?})\nPSNR target {target} dB, floor {floor} dB\n",
        field.shape(),
        n_chunks
    );

    let cfg = CompressorConfig::new(PredictorKind::Lorenzo, ErrorBoundMode::Abs(1.0))
        .chunked(side)
        .with_codec(CodecChoice::Auto);
    assert_eq!(resolved_chunk_rows(&cfg, field.shape()), side);
    let row_elems = side * side;

    // The streaming pre-pass: deterministic per-chunk models.
    let mut models = Vec::new();
    let mut sizes = Vec::new();
    for c in 0..n_chunks {
        let lo = c * side * row_elems;
        let slab = &field.as_slice()[lo..lo + side * row_elems];
        models.push(RqModel::build_strided(slab, Shape::d3(side, side, side), cfg.predictor, 4096));
        sizes.push(slab.len());
    }
    let range = field.value_range();

    // One planned compression pass: archive bytes, measured PSNR, and the
    // per-chunk measured/modeled correction factors.
    let mut passes = 0usize;
    let mut planned_pass = |ebs: &[f64]| -> (Vec<u8>, f64, PlanCorrection) {
        passes += 1;
        let mut w = ArchiveWriter::<f32, Vec<u8>>::create_planned(
            Vec::new(),
            field.shape(),
            &cfg,
            ebs.to_vec(),
        )
        .unwrap();
        w.write_slab(&field).unwrap();
        let bytes = w.finalize().unwrap().sink;
        let back = decompress::<f32>(&bytes).unwrap();
        let table = chunk_table(&bytes).unwrap();
        let mut measured_sigma2 = Vec::new();
        let mut measured_bits = Vec::new();
        for entry in &table.entries {
            let lo = entry.start_row * row_elems;
            let hi = (entry.start_row + entry.rows) * row_elems;
            let sq: f64 = field.as_slice()[lo..hi]
                .iter()
                .zip(&back.as_slice()[lo..hi])
                .map(|(&a, &b)| ((a - b) as f64).powi(2))
                .sum();
            measured_sigma2.push(sq / (hi - lo) as f64);
            measured_bits.push(entry.len as f64 * 8.0 / (hi - lo) as f64);
        }
        let corr = PlanCorrection::from_measured(&models, ebs, &measured_sigma2, &measured_bits);
        (bytes, psnr(&field, &back), corr)
    };

    // Round 1: margin-only plan. Round 2: measured-feedback correction
    // (shared `PlanCorrection::from_measured`) aiming just above the
    // floor — the `rqm compress --target-psnr` workflow, with the bench's
    // guard band stated against the acceptance floor T − 0.5 rather than
    // the CLI's own floor T.
    let plan1 = optimize_partitions(&models, &sizes, range, target + PLAN_MARGIN_DB, 32)
        .expect("floor reachable");
    let (bytes1, psnr1, corr) = planned_pass(&plan1.ebs);
    println!("round 1 (margin-only plan): {} B, measured {psnr1:.2} dB", bytes1.len());
    // Outside the [floor, floor + 2·guard] band, one corrected round
    // re-aims just above the floor: tightening rescues a missed floor,
    // loosening hands back overshot quality.
    let (bytes2, psnr2) = if psnr1 < floor || psnr1 > floor + 2.0 * AIM_GUARD_DB {
        let plan2 = optimize_partitions_corrected(
            &models,
            &sizes,
            range,
            floor + AIM_GUARD_DB,
            32,
            Some(&corr),
        )
        .expect("floor reachable");
        let (b2, p2, _) = planned_pass(&plan2.ebs);
        println!("round 2 (measured feedback):  {} B, measured {p2:.2} dB", b2.len());
        if p2 >= floor && (psnr1 < floor || b2.len() <= bytes1.len()) {
            (b2, p2)
        } else {
            println!("round 2 did not improve on round 1; keeping round 1");
            (bytes1.clone(), psnr1)
        }
    } else {
        (bytes1.clone(), psnr1)
    };

    let mut t = Table::new(&["chunk (step)", "planned eb", "codec", "bytes"]);
    for (i, e) in chunk_table(&bytes2).unwrap().entries.iter().enumerate() {
        t.row(&[
            format!("{i} ({})", steps[i]),
            format!("{:.3e}", e.eb),
            e.codec.name().to_string(),
            e.len.to_string(),
        ]);
    }
    t.print();
    println!(
        "\nplanned (v2.3): {} B, measured {psnr2:.2} dB, {passes} compression pass(es)",
        bytes2.len()
    );

    // Baseline A: the model-driven single bound (what `rqm estimate` +
    // `--abs` gives a careful user in one shot).
    let global = |eb: f64| -> (usize, f64) {
        let out =
            rq_compress::compress(&field, &cfg.with_bound(ErrorBoundMode::Abs(eb))).unwrap();
        let back = decompress::<f32>(&out.bytes).unwrap();
        (out.bytes.len(), psnr(&field, &back))
    };
    let (uni_eb, _) = uniform_eb_for_target(&models, &sizes, range, target + PLAN_MARGIN_DB);
    let (uni_bytes, uni_psnr) = global(uni_eb);
    println!(
        "model-driven single bound (1 trial): eb {uni_eb:.3e}, {uni_bytes} B, {uni_psnr:.2} dB{}",
        if uni_psnr < floor { "  ← misses the floor" } else { "" }
    );

    // Baseline B: the oracle single bound — exhaustive measured bisection
    // to the smallest archive meeting the floor (the trial-and-error loop
    // the model replaces).
    let mut oracle_trials = 0usize;
    let (mut lo_eb, mut hi_eb) = (range * 1e-8, range * 0.3);
    for _ in 0..18 {
        oracle_trials += 1;
        let mid = ((lo_eb.ln() + hi_eb.ln()) * 0.5).exp();
        if global(mid).1 >= floor {
            lo_eb = mid;
        } else {
            hi_eb = mid;
        }
    }
    let (oracle_bytes, oracle_psnr) = global(lo_eb);
    println!(
        "oracle single bound ({oracle_trials} trials): eb {lo_eb:.3e}, {oracle_bytes} B, {oracle_psnr:.2} dB"
    );
    println!(
        "\nplanned / oracle size: {} ({:+.1}%), using {passes} passes instead of {oracle_trials} trials",
        f(bytes2.len() as f64 / oracle_bytes as f64, 3),
        (bytes2.len() as f64 / oracle_bytes as f64 - 1.0) * 100.0
    );

    // The CI gates (see the module docs for what each one means).
    assert!(
        psnr2 >= floor,
        "planned archive misses the floor: {psnr2:.2} dB < {floor:.2} dB"
    );
    assert!(passes <= 2, "quality-targeted mode took {passes} compression passes");
    // The loosening direction must never grow the archive; the tightening
    // direction (round 1 below the floor) necessarily does.
    assert!(
        psnr1 < floor || bytes2.len() <= bytes1.len(),
        "feedback round grew the archive: {} B > {} B",
        bytes2.len(),
        bytes1.len()
    );
    assert!(oracle_psnr >= floor, "oracle bisection failed to meet the floor");
    assert!(
        (bytes2.len() as f64) <= oracle_bytes as f64 * ORACLE_SIZE_FACTOR,
        "planned archive ({} B) exceeds {ORACLE_SIZE_FACTOR}x the oracle single bound ({} B)",
        bytes2.len(),
        oracle_bytes
    );
    println!("\nOK: floor met in ≤ 2 passes, size within {ORACLE_SIZE_FACTOR}x of the {oracle_trials}-trial oracle.");
}
