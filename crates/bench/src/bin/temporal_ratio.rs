//! Temporal-delta catalog benchmark: compression-ratio win of residual
//! coding over independent per-step archives, and the random-access cost
//! of the delta chain, recorded to `BENCH_catalog.json`.
//!
//! A seeded RTM wavefield sequence (the slowly-evolving workload the
//! catalog exists for) is packed twice under the **same absolute bound**
//! — once with `keyframe_every = 1` (every step a self-contained
//! archive: the independent baseline) and once with temporal-delta
//! residual coding — and the two reconstructions' measured PSNR is
//! reported next to the byte counts, so the ratio comparison is at
//! matched quality, not matched knobs.
//!
//! Two contracts are **asserted**, not just recorded:
//!
//! - **Delta ≥ 1.3× independent**: the temporal-delta catalog must be at
//!   least 1.3× smaller than the independent-step catalog on the RTM
//!   sequence, or the predictor is not earning its place.
//! - **Bounds hold**: every step of both catalogs stays within the
//!   absolute bound element-wise.
//!
//! The cadence sweep then measures time-to-random-step at
//! `keyframe_every` ∈ {1, 4, 16}: a delta chain makes random reads pay
//! for up to `K - 1` extra residual decodes, and the sweep records that
//! price next to the bytes each cadence saves.
//!
//! ```sh
//! cargo run --release -p rq-bench --bin temporal_ratio [-- --quick]
//! ```

use rq_bench::{f, Table};
use rq_catalog::{CatalogReader, CatalogWriter};
use rq_compress::CompressorConfig;
use rq_grid::NdArray;
use rq_predict::PredictorKind;
use rq_quant::ErrorBoundMode;
use std::io::Write;
use std::time::Instant;

/// Deterministic xorshift64* stream for the random-step picks.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Pack `steps` into an in-memory catalog at the given keyframe cadence.
fn pack(steps: &[NdArray<f32>], cfg: &CompressorConfig, keyframe_every: usize) -> Vec<u8> {
    let mut w = CatalogWriter::create(Vec::new()).unwrap();
    w.write_dataset("wave", cfg, keyframe_every, steps).unwrap();
    w.finalize().unwrap().sink
}

/// Measured range-based PSNR of a catalog's reconstruction against the
/// original steps, plus the worst element-wise error.
fn measure(bytes: &[u8], steps: &[NdArray<f32>]) -> (f64, f64) {
    let mut r = CatalogReader::open(std::io::Cursor::new(bytes)).unwrap();
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    let mut sq = 0.0f64;
    let mut worst = 0.0f64;
    let mut n = 0usize;
    for (t, truth) in steps.iter().enumerate() {
        let recon = r.read_step::<f32>("wave", t).unwrap();
        for (&a, &b) in truth.as_slice().iter().zip(recon.as_slice()) {
            let (a, b) = (a as f64, b as f64);
            lo = lo.min(a);
            hi = hi.max(a);
            sq += (a - b) * (a - b);
            worst = worst.max((a - b).abs());
        }
        n += truth.len();
    }
    let mse = sq / n as f64;
    let psnr =
        if mse > 0.0 { 20.0 * (hi - lo).log10() - 10.0 * mse.log10() } else { f64::INFINITY };
    (psnr, worst)
}

/// Mean wall time (µs) of `n_reads` pseudo-random `read_step` calls.
fn random_step_us(bytes: &[u8], n_steps: usize, n_reads: usize, seed: u64) -> f64 {
    let mut r = CatalogReader::open(std::io::Cursor::new(bytes)).unwrap();
    let mut rng = Rng(seed | 1);
    let picks: Vec<usize> = (0..n_reads).map(|_| rng.below(n_steps)).collect();
    let t0 = Instant::now();
    for &t in &picks {
        std::hint::black_box(r.read_step::<f32>("wave", t).unwrap());
    }
    t0.elapsed().as_secs_f64() * 1e6 / n_reads as f64
}

fn main() {
    let quick = rq_bench::quick() || std::env::args().any(|a| a == "--quick");
    let (dims, n_steps, n_reads) =
        if quick { ([16usize, 16, 16], 16usize, 24usize) } else { ([32, 32, 32], 32, 64) };
    let eb = 1e-4f64;
    let steps = rq_datagen::rtm_steps(0xBEC4, n_steps, dims);
    let raw_bytes = n_steps * steps[0].len() * 4;
    let cfg = CompressorConfig::new(PredictorKind::Lorenzo, ErrorBoundMode::Abs(eb));

    println!(
        "# temporal-delta catalog — RTM {dims:?} × {n_steps} steps, abs bound {eb:.0e}, \
         raw {raw_bytes} B"
    );
    println!();

    // ---- delta vs independent at the same bound ----
    let independent = pack(&steps, &cfg, 1);
    let delta = pack(&steps, &cfg, 4);
    let (ind_psnr, ind_worst) = measure(&independent, &steps);
    let (del_psnr, del_worst) = measure(&delta, &steps);
    assert!(
        ind_worst <= eb && del_worst <= eb,
        "bound violated: independent worst {ind_worst:.3e}, delta worst {del_worst:.3e} > {eb:.0e}"
    );
    let win = independent.len() as f64 / delta.len() as f64;
    println!(
        "independent (K=1): {} B, {ind_psnr:.1} dB    temporal-delta (K=4): {} B, \
         {del_psnr:.1} dB    delta win {win:.2}x",
        independent.len(),
        delta.len(),
    );
    assert!(
        win >= 1.3,
        "temporal-delta catalog ({} B) is only {win:.2}x smaller than independent steps \
         ({} B); residual coding must buy >= 1.3x on the RTM sequence",
        delta.len(),
        independent.len()
    );
    println!();

    // ---- cadence sweep: bytes saved vs random-access price ----
    let cadences = [1usize, 4, 16];
    let mut rows: Vec<(usize, usize, f64, f64)> = Vec::new();
    for &k in &cadences {
        let bytes = pack(&steps, &cfg, k);
        let (psnr, worst) = measure(&bytes, &steps);
        assert!(worst <= eb, "cadence {k}: worst error {worst:.3e} > {eb:.0e}");
        let us = random_step_us(&bytes, n_steps, n_reads, 0x5EED ^ k as u64);
        rows.push((k, bytes.len(), psnr, us));
    }
    let mut t = Table::new(&["keyframe_every", "bytes", "ratio", "PSNR(dB)", "rand step(µs)"]);
    for &(k, b, psnr, us) in &rows {
        t.row(&[
            k.to_string(),
            b.to_string(),
            f(raw_bytes as f64 / b as f64, 2),
            f(psnr, 1),
            f(us, 0),
        ]);
    }
    t.print();

    // Hand-rolled JSON (the workspace has no serde): the temporal
    // compression trajectory across PRs.
    let mut j = String::new();
    j.push_str("{\n  \"bench\": \"temporal_ratio\",\n");
    j.push_str(&format!("  \"field\": {dims:?},\n"));
    j.push_str(&format!("  \"n_steps\": {n_steps},\n"));
    j.push_str(&format!("  \"abs_bound\": {},\n", rq_compress::json_f64(eb)));
    j.push_str(&format!("  \"raw_bytes\": {raw_bytes},\n"));
    j.push_str(&format!("  \"quick\": {quick},\n"));
    j.push_str(&format!(
        "  \"independent_bytes\": {}, \"independent_psnr_db\": {},\n",
        independent.len(),
        rq_bench::jf(ind_psnr, 2),
    ));
    j.push_str(&format!(
        "  \"delta_bytes\": {}, \"delta_psnr_db\": {},\n",
        delta.len(),
        rq_bench::jf(del_psnr, 2),
    ));
    j.push_str(&format!("  \"delta_win\": {},\n", rq_bench::jf(win, 3)));
    j.push_str("  \"cadences\": [\n");
    for (i, &(k, b, psnr, us)) in rows.iter().enumerate() {
        j.push_str(&format!(
            "    {{\"keyframe_every\": {k}, \"bytes\": {b}, \"ratio\": {}, \
             \"psnr_db\": {}, \"random_step_us\": {}}}{}\n",
            rq_bench::jf(raw_bytes as f64 / b as f64, 3),
            rq_bench::jf(psnr, 2),
            rq_bench::jf(us, 1),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    j.push_str("  ]\n}\n");
    let mut out = std::fs::File::create("BENCH_catalog.json").unwrap();
    out.write_all(j.as_bytes()).unwrap();
    println!("\nwrote BENCH_catalog.json ({} cadences)", rows.len());
}
