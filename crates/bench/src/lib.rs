//! Shared helpers for the figure/table regeneration binaries.
//!
//! Every table and figure of the paper's evaluation (§V) has a binary in
//! `src/bin/`; see EXPERIMENTS.md at the repository root for the index and
//! recorded outputs. Set `RQM_QUICK=1` to shrink workloads (useful in CI
//! or debug builds).

use rq_grid::{NdArray, Scalar};

/// Whether quick mode is enabled (`RQM_QUICK=1`).
pub fn quick() -> bool {
    std::env::var("RQM_QUICK").map(|v| v == "1").unwrap_or(false)
}

/// Format a float for the hand-rolled `BENCH_*.json` reports: fixed
/// `decimals` when finite, and [`rq_compress::json_f64`]'s `null` when
/// not (a PSNR of a lossless reconstruction is `inf`, which is not JSON).
pub fn jf(v: f64, decimals: usize) -> String {
    if v.is_finite() {
        format!("{v:.decimals$}")
    } else {
        rq_compress::json_f64(v)
    }
}

/// The paper's accuracy/error statistic (Eq. 20):
/// `E = 1 − (1 + STD(R/R' − 1))⁻¹` over measured `R` and estimated `R'`.
/// Returned as the *error rate* in `[0, 1)`; accuracy = 1 − error.
pub fn eq20_error(pairs: &[(f64, f64)]) -> f64 {
    if pairs.is_empty() {
        return 0.0;
    }
    let ratios: Vec<f64> = pairs
        .iter()
        .filter(|&&(_, e)| e.abs() > 1e-300)
        .map(|&(m, e)| m / e - 1.0)
        .collect();
    if ratios.is_empty() {
        return 1.0;
    }
    let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
    let var = ratios.iter().map(|r| (r - mean).powi(2)).sum::<f64>() / ratios.len() as f64;
    1.0 - 1.0 / (1.0 + var.sqrt())
}

/// Log-spaced error-bound grid covering relative bounds
/// `lo_rel..hi_rel` of `range`.
pub fn eb_grid(range: f64, lo_rel: f64, hi_rel: f64, points: usize) -> Vec<f64> {
    assert!(points >= 2 && hi_rel > lo_rel);
    (0..points)
        .map(|i| {
            let t = i as f64 / (points - 1) as f64;
            range * (lo_rel.ln() + t * (hi_rel.ln() - lo_rel.ln())).exp()
        })
        .collect()
}

/// Exhaustive prediction-error standard deviation (sampling rate 1.0) —
/// the Fig. 4 reference value.
pub fn full_error_std<T: Scalar>(
    field: &NdArray<T>,
    kind: rq_predict::PredictorKind,
) -> f64 {
    rq_core::sample_errors(field, kind, 1.0, 0).weighted_std()
}

/// Minimal fixed-width table printer for benchmark outputs.
pub struct Table {
    headers: Vec<String>,
    widths: Vec<usize>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            widths: headers.iter().map(|h| h.len()).collect(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        for (w, c) in self.widths.iter_mut().zip(cells) {
            *w = (*w).max(c.len());
        }
        self.rows.push(cells.to_vec());
    }

    /// Render to stdout.
    pub fn print(&self) {
        let line = |cells: &[String]| {
            let parts: Vec<String> = cells
                .iter()
                .zip(&self.widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect();
            println!("| {} |", parts.join(" | "));
        };
        line(&self.headers);
        let sep: Vec<String> = self.widths.iter().map(|w| "-".repeat(*w)).collect();
        println!("|-{}-|", sep.join("-|-"));
        for r in &self.rows {
            line(r);
        }
    }
}

/// Peak resident set size (`VmHWM`) in bytes, if the platform exposes
/// it. Shared by the memory-footprint benches (`streaming_vs_inmemory`,
/// `decode_scaling`).
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// Reset the peak-RSS counter (writing "5" to `/proc/self/clear_refs`
/// clears the HWM counters). Returns whether the reset took, so monotone
/// readings can be flagged.
pub fn reset_peak_rss() -> bool {
    use std::io::Write;
    std::fs::OpenOptions::new()
        .write(true)
        .open("/proc/self/clear_refs")
        .and_then(|mut f| f.write_all(b"5"))
        .is_ok()
}

/// Bytes as MiB.
pub fn mib(bytes: u64) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

/// Convenience: format a `f64` with the given precision.
pub fn f(v: f64, prec: usize) -> String {
    format!("{v:.prec$}")
}

/// Convenience: format a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.2}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq20_zero_for_perfect_estimates() {
        let pairs = vec![(1.0, 1.0), (2.0, 2.0), (5.0, 5.0)];
        assert!(eq20_error(&pairs) < 1e-12);
    }

    #[test]
    fn eq20_zero_for_consistent_bias() {
        // Eq. 20 measures *spread* of the ratio, not bias — as in the paper.
        let pairs = vec![(1.1, 1.0), (2.2, 2.0), (5.5, 5.0)];
        assert!(eq20_error(&pairs) < 1e-12);
    }

    #[test]
    fn eq20_grows_with_scatter() {
        let tight = vec![(1.0, 1.02), (1.0, 0.98)];
        let loose = vec![(1.0, 1.5), (1.0, 0.6)];
        assert!(eq20_error(&loose) > eq20_error(&tight));
    }

    #[test]
    fn grid_is_log_spaced() {
        let g = eb_grid(100.0, 1e-4, 1e-2, 3);
        assert_eq!(g.len(), 3);
        assert!((g[0] - 1e-2).abs() < 1e-9);
        assert!((g[1] - 1e-1).abs() < 1e-6);
        assert!((g[2] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn table_renders_without_panic() {
        let mut t = Table::new(&["a", "long header"]);
        t.row(&["1".into(), "2".into()]);
        t.print();
    }
}
