//! Concurrent, chunk-addressable view of one catalog dataset.

use crate::delta::add_residual;
use crate::error::CatalogError;
use crate::format::DatasetEntry;
use crate::reader::CatalogReader;
use crate::subrange::SubRange;
use rq_compress::{ChunkEntry, ChunkSource, ConcurrentReader, DecompressError, Header};
use rq_grid::{Scalar, Shape};
use std::fs::File;
use std::path::Path;
use std::sync::Arc;

/// A whole dataset exposed as one flattened, time-major [`ChunkSource`]:
/// global chunk `step × chunks_per_step + c` is spatial chunk `c` of the
/// *reconstructed* step `step`.
///
/// Every step gets its own [`ConcurrentReader`] over a [`SubRange`] of a
/// freshly opened file handle, so concurrent readers of different steps
/// never contend on a cursor. [`ChunkSource::fetch_chunk`] is
/// self-contained: it decodes the nearest keyframe's chunk and applies
/// the delta chain (at most `keyframe_every - 1` residual decodes),
/// which makes the source safe to wrap in
/// [`rq_serve`](../rq_serve/index.html)-style decoded-chunk caches — a
/// cache hit on `(step, c)` never needs another cache entry to exist.
///
/// Reconstruction uses the same element-wise rule as
/// [`CatalogReader::read_step`], so both paths produce byte-identical
/// values.
pub struct DatasetReader<T: Scalar> {
    entry: DatasetEntry,
    /// Synthesized header: the per-step header with axis 0 stretched to
    /// `n_steps × step_rows` (the flattened time-major extent).
    header: Header,
    /// Flattened chunk table: start rows in flattened coordinates, byte
    /// offsets catalog-absolute.
    entries: Vec<ChunkEntry>,
    chunk_rows: usize,
    chunks_per_step: usize,
    step_rows: usize,
    /// Nearest keyframe at or before each step.
    keyframes: Vec<usize>,
    steps: Vec<ConcurrentReader<SubRange<File>>>,
    _scalar: std::marker::PhantomData<fn() -> T>,
}

impl<T: Scalar> DatasetReader<T> {
    /// Open dataset `name` of the catalog at `path`.
    pub fn open_path(path: impl AsRef<Path>, name: &str) -> Result<Self, CatalogError> {
        let path = path.as_ref();
        let cat = CatalogReader::open_path(path)?;
        let entry = cat.dataset(name)?.clone();
        drop(cat);
        if entry.scalar_tag != T::TAG {
            return Err(CatalogError::ScalarMismatch {
                expected: entry.scalar_tag,
                found: T::TAG,
            });
        }

        let mut steps = Vec::with_capacity(entry.steps.len());
        for s in &entry.steps {
            let sub = SubRange::new(File::open(path)?, s.offset, s.len)?;
            steps.push(ConcurrentReader::open(sub)?);
        }

        let step_rows = entry.shape.dim(0);
        let first = &steps[0];
        if first.header().scalar_tag != T::TAG {
            return Err(CatalogError::Corrupt("segment scalar tag differs from the index"));
        }
        if first.header().shape.dims() != entry.shape.dims() {
            return Err(CatalogError::Corrupt("segment shape differs from the index"));
        }
        let chunk_rows = first.chunk_rows();
        let chunks_per_step = first.n_chunks();
        for r in &steps {
            if r.n_chunks() != chunks_per_step
                || r.header().shape.dims() != entry.shape.dims()
                || r.entries()
                    .iter()
                    .zip(first.entries())
                    .any(|(a, b)| a.start_row != b.start_row || a.rows != b.rows)
            {
                return Err(CatalogError::Corrupt("step chunk partitions differ"));
            }
        }

        let mut dims = [1usize; rq_grid::MAX_DIMS];
        dims[..entry.shape.ndim()].copy_from_slice(entry.shape.dims());
        dims[0] = step_rows
            .checked_mul(entry.steps.len())
            .ok_or(CatalogError::Corrupt("flattened extent overflows"))?;
        let mut header = first.header().clone();
        header.shape = Shape::new(&dims[..entry.shape.ndim()]);

        let mut entries = Vec::with_capacity(chunks_per_step * entry.steps.len());
        for (t, (r, s)) in steps.iter().zip(&entry.steps).enumerate() {
            for e in r.entries() {
                entries.push(ChunkEntry {
                    start_row: t * step_rows + e.start_row,
                    offset: s.offset as usize + e.offset,
                    ..*e
                });
            }
        }

        let mut keyframes = Vec::with_capacity(entry.steps.len());
        let mut last_kf = 0;
        for (t, s) in entry.steps.iter().enumerate() {
            if s.keyframe {
                last_kf = t;
            }
            keyframes.push(last_kf);
        }

        Ok(DatasetReader {
            entry,
            header,
            entries,
            chunk_rows,
            chunks_per_step,
            step_rows,
            keyframes,
            steps,
            _scalar: std::marker::PhantomData,
        })
    }

    /// The catalog index entry this reader serves.
    pub fn entry(&self) -> &DatasetEntry {
        &self.entry
    }

    /// Time steps in the dataset.
    pub fn n_steps(&self) -> usize {
        self.steps.len()
    }

    /// Axis-0 rows of one step.
    pub fn step_rows(&self) -> usize {
        self.step_rows
    }

    /// Spatial chunks per step.
    pub fn chunks_per_step(&self) -> usize {
        self.chunks_per_step
    }

    /// The per-step field shape.
    pub fn step_shape(&self) -> Shape {
        self.entry.shape
    }

    /// Decode counters aggregated across every step's reader.
    pub fn stats(&self) -> rq_compress::ReadStats {
        let mut agg = rq_compress::ReadStats::default();
        for r in &self.steps {
            let s = r.stats();
            agg.chunks_total += s.chunks_total;
            agg.chunks_decoded += s.chunks_decoded;
            agg.blob_bytes_read += s.blob_bytes_read;
            agg.reorder_copies += s.reorder_copies;
        }
        agg
    }
}

impl<T: Scalar> ChunkSource<T> for DatasetReader<T> {
    fn header(&self) -> &Header {
        &self.header
    }

    fn chunk_rows(&self) -> usize {
        self.chunk_rows
    }

    fn entries(&self) -> &[ChunkEntry] {
        &self.entries
    }

    fn fetch_chunk(&self, idx: usize) -> Result<Arc<[T]>, DecompressError> {
        if idx >= self.entries.len() {
            return Err(DecompressError::ChunkOutOfRange {
                requested: idx,
                available: self.entries.len(),
            });
        }
        let step = idx / self.chunks_per_step;
        let c = idx % self.chunks_per_step;
        let kf = self.keyframes[step];
        let (_, key, _) = self.steps[kf].read_chunk::<T>(c)?;
        let mut cur = key.into_vec();
        for t in kf + 1..=step {
            let (_, resid, _) = self.steps[t].read_chunk::<T>(c)?;
            cur = add_residual(&cur, resid.as_slice());
        }
        Ok(cur.into())
    }
}
