//! The keyframe/delta arithmetic every code path shares.
//!
//! Reconstruction of a delta step is `T(recon_prev + residual)`,
//! element-wise in `f64`. The writer's encoder mirror, the sequential
//! [`CatalogReader`](crate::CatalogReader) and the concurrent
//! [`DatasetReader`](crate::DatasetReader) (which backs `rq-serve`) all
//! call the same two functions below, so a step decodes to byte-identical
//! values no matter which path produced it.

use rq_grid::Scalar;

/// Residual `x - prev`, element-wise in `f64`, rounded back to `T`.
pub(crate) fn residual<T: Scalar>(x: &[T], prev: &[T]) -> Vec<T> {
    debug_assert_eq!(x.len(), prev.len());
    x.iter().zip(prev).map(|(x, p)| T::from_f64(x.to_f64() - p.to_f64())).collect()
}

/// Reconstruction `prev + resid`, element-wise in `f64`, rounded back to
/// `T`.
pub(crate) fn add_residual<T: Scalar>(prev: &[T], resid: &[T]) -> Vec<T> {
    debug_assert_eq!(prev.len(), resid.len());
    prev.iter().zip(resid).map(|(p, r)| T::from_f64(p.to_f64() + r.to_f64())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn residual_then_add_is_identity_for_f64() {
        let prev = vec![1.0f64, -2.5, 1e300, 0.0];
        let x = vec![1.5f64, -2.0, 1e300, -4.0];
        let r = residual(&x, &prev);
        assert_eq!(add_residual(&prev, &r), x);
    }

    #[test]
    fn f32_roundtrip_error_is_sub_ulp() {
        let prev: Vec<f32> = (0..100).map(|i| (i as f32 * 0.37).sin() * 20.0).collect();
        let x: Vec<f32> = prev.iter().map(|v| v + 0.01).collect();
        let r = residual(&x, &prev);
        for (a, b) in add_residual(&prev, &r).iter().zip(&x) {
            assert!((a - b).abs() <= b.abs() * 1e-6 + 1e-6);
        }
    }
}
