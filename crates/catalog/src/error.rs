//! Typed failures of the catalog layer.

use rq_compress::{CompressError, DecompressError};

/// Everything that can go wrong writing or reading an `RQCAT` container.
///
/// Malformed input is always surfaced as a typed error — the parser never
/// panics, whatever the bytes (see `tests/fuzz_container.rs`).
#[derive(Debug)]
pub enum CatalogError {
    /// The bytes are not an `RQCAT` container or its structure is damaged.
    Corrupt(&'static str),
    /// The container declares a catalog generation this build cannot read.
    UnsupportedVersion(u8),
    /// A writer-side argument or configuration is invalid.
    InvalidConfig(&'static str),
    /// No dataset of that name in the catalog.
    DatasetNotFound(String),
    /// A step index at or past the dataset's step count.
    StepOutOfRange {
        /// Requested step.
        step: usize,
        /// Steps in the dataset.
        n_steps: usize,
    },
    /// The requested scalar type differs from the stored dataset's.
    ScalarMismatch {
        /// Scalar tag recorded in the catalog index.
        expected: u8,
        /// Scalar tag of the requested type.
        found: u8,
    },
    /// An embedded archive segment failed to encode.
    Compress(CompressError),
    /// An embedded archive segment failed to decode.
    Decompress(DecompressError),
    /// The underlying stream failed.
    Io(std::io::Error),
}

impl std::fmt::Display for CatalogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CatalogError::Corrupt(what) => write!(f, "corrupt catalog: {what}"),
            CatalogError::UnsupportedVersion(v) => {
                write!(f, "unsupported catalog version {v}")
            }
            CatalogError::InvalidConfig(what) => write!(f, "invalid catalog config: {what}"),
            CatalogError::DatasetNotFound(name) => {
                write!(f, "no dataset named {name:?} in the catalog")
            }
            CatalogError::StepOutOfRange { step, n_steps } => {
                write!(f, "step {step} out of range (dataset has {n_steps} steps)")
            }
            CatalogError::ScalarMismatch { expected, found } => {
                write!(f, "scalar tag mismatch: dataset stores {expected:#x}, requested {found:#x}")
            }
            CatalogError::Compress(e) => write!(f, "segment encode failed: {e}"),
            CatalogError::Decompress(e) => write!(f, "segment decode failed: {e}"),
            CatalogError::Io(e) => write!(f, "catalog stream failed: {e}"),
        }
    }
}

impl std::error::Error for CatalogError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CatalogError::Compress(e) => Some(e),
            CatalogError::Decompress(e) => Some(e),
            CatalogError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CompressError> for CatalogError {
    fn from(e: CompressError) -> Self {
        CatalogError::Compress(e)
    }
}

impl From<DecompressError> for CatalogError {
    fn from(e: DecompressError) -> Self {
        CatalogError::Decompress(e)
    }
}

impl From<std::io::Error> for CatalogError {
    fn from(e: std::io::Error) -> Self {
        CatalogError::Io(e)
    }
}
