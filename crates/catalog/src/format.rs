//! The `RQCAT` container layout: index model and trailer codec.
//!
//! ```text
//! +--------+---------+----------------------------+----------------+
//! | RQCAT  | version | segment … segment          | trailer        |
//! | 5 B    | u8 (=1) | complete RQMC archives     | body ‖ suffix  |
//! +--------+---------+----------------------------+----------------+
//! ```
//!
//! Segments are byte-for-byte ordinary single-field archives (any RQMC
//! generation), appended back to back in write order. The trailer body is
//! the catalog index; the 12-byte suffix is `u64 LE body_len` + `RQCX`,
//! so a reader finds the index from the end of the file without touching
//! the segments.
//!
//! Trailer body (all integers LEB128 varints, floats `f64` LE):
//!
//! ```text
//! n_datasets
//! per dataset:
//!   name_len, name (UTF-8)
//!   scalar_tag  u8   (0x04 = f32, 0x08 = f64)
//!   ndim        u8, then ndim × dim
//!   keyframe_every
//!   n_steps
//!   per step:
//!     flags     u8   (bit 0 = keyframe; rest reserved, must be 0)
//!     offset         (absolute byte offset of the segment)
//!     len            (segment byte length)
//!     codec     u8   (0 = SZ only, 1 = ZFP only, 2 = mixed)
//!     eb        f64  (the user's absolute bound for this step)
//! ```

use crate::error::CatalogError;
use rq_encoding::varint::{get_uvarint, put_uvarint};
use rq_grid::{Shape, MAX_DIMS};

/// Leading magic of a catalog container.
pub const CATALOG_MAGIC: &[u8; 5] = b"RQCAT";

/// Catalog generation written by this build.
pub const CATALOG_VERSION: u8 = 1;

/// Magic closing the trailer suffix.
pub const TRAILER_MAGIC: &[u8; 4] = b"RQCX";

/// Bytes of the trailer suffix: `u64 LE body_len` + [`TRAILER_MAGIC`].
pub const TRAILER_SUFFIX_LEN: usize = 12;

/// Bytes of the file preamble: [`CATALOG_MAGIC`] + version byte.
pub const PREAMBLE_LEN: usize = 6;

/// Whether `prefix` starts like a catalog container (any version).
///
/// Needs at least [`PREAMBLE_LEN`] bytes to say yes; used by the CLI and
/// the serve daemon to sniff file kinds.
pub fn is_catalog_magic(prefix: &[u8]) -> bool {
    prefix.len() >= PREAMBLE_LEN && &prefix[..5] == CATALOG_MAGIC
}

/// Coarse per-step codec summary stored in the index (the authoritative
/// per-chunk tags live inside the segment itself).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CodecSummary {
    /// Every chunk took the SZ prediction path.
    Sz,
    /// Every chunk took the ZFP transform path.
    Zfp,
    /// Both codecs appear in the segment.
    Mixed,
}

impl CodecSummary {
    /// Byte tag stored in the trailer.
    pub fn tag(self) -> u8 {
        match self {
            CodecSummary::Sz => 0,
            CodecSummary::Zfp => 1,
            CodecSummary::Mixed => 2,
        }
    }

    /// Decode a trailer tag.
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(CodecSummary::Sz),
            1 => Some(CodecSummary::Zfp),
            2 => Some(CodecSummary::Mixed),
            _ => None,
        }
    }

    /// Human-readable name (`sz` / `zfp` / `mixed`).
    pub fn name(self) -> &'static str {
        match self {
            CodecSummary::Sz => "sz",
            CodecSummary::Zfp => "zfp",
            CodecSummary::Mixed => "mixed",
        }
    }
}

/// One time step of a dataset: where its segment lives and how it was
/// coded.
#[derive(Clone, Copy, Debug)]
pub struct StepEntry {
    /// Keyframe (self-contained) vs delta (residual against the
    /// reconstructed previous step).
    pub keyframe: bool,
    /// Absolute byte offset of the embedded archive segment.
    pub offset: u64,
    /// Segment length in bytes.
    pub len: u64,
    /// Coarse codec summary of the segment's chunks.
    pub codec: CodecSummary,
    /// The user's absolute error bound for this step (delta segments are
    /// internally coded slightly tighter; this records the guarantee).
    pub eb: f64,
}

/// One named dataset: a sequence of equally-shaped time steps.
#[derive(Clone, Debug)]
pub struct DatasetEntry {
    /// Unique dataset name.
    pub name: String,
    /// Scalar tag of every step (0x04 = f32, 0x08 = f64).
    pub scalar_tag: u8,
    /// Per-step field shape.
    pub shape: Shape,
    /// Keyframe cadence the writer used (1 = every step self-contained).
    pub keyframe_every: usize,
    /// The steps, in time order.
    pub steps: Vec<StepEntry>,
}

impl DatasetEntry {
    /// Number of time steps.
    pub fn n_steps(&self) -> usize {
        self.steps.len()
    }

    /// Index of the nearest keyframe at or before `step`.
    ///
    /// Parse-time validation guarantees step 0 is a keyframe, so this
    /// only returns `None` for out-of-range steps.
    pub fn keyframe_before(&self, step: usize) -> Option<usize> {
        self.steps.get(..=step)?.iter().rposition(|s| s.keyframe)
    }
}

/// The parsed catalog index: every dataset with its step table.
#[derive(Clone, Debug, Default)]
pub struct CatalogIndex {
    /// Datasets in write order.
    pub datasets: Vec<DatasetEntry>,
}

impl CatalogIndex {
    /// Position of the dataset named `name`.
    pub fn find(&self, name: &str) -> Option<usize> {
        self.datasets.iter().position(|d| d.name == name)
    }

    /// Total steps across all datasets.
    pub fn total_steps(&self) -> usize {
        self.datasets.iter().map(|d| d.steps.len()).sum()
    }
}

/// Serialize the trailer body (without the 12-byte suffix).
pub fn encode_trailer(index: &CatalogIndex) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 * index.datasets.len() + 24 * index.total_steps());
    put_uvarint(&mut out, index.datasets.len() as u64);
    for d in &index.datasets {
        put_uvarint(&mut out, d.name.len() as u64);
        out.extend_from_slice(d.name.as_bytes());
        out.push(d.scalar_tag);
        out.push(d.shape.ndim() as u8);
        for &dim in d.shape.dims() {
            put_uvarint(&mut out, dim as u64);
        }
        put_uvarint(&mut out, d.keyframe_every as u64);
        put_uvarint(&mut out, d.steps.len() as u64);
        for s in &d.steps {
            out.push(s.keyframe as u8);
            put_uvarint(&mut out, s.offset);
            put_uvarint(&mut out, s.len);
            out.push(s.codec.tag());
            out.extend_from_slice(&s.eb.to_le_bytes());
        }
    }
    out
}

/// Names too long to be plausible (sanity cap against corrupt varints).
const MAX_NAME_LEN: u64 = 4096;

fn varint(body: &[u8], pos: &mut usize, what: &'static str) -> Result<u64, CatalogError> {
    get_uvarint(body, pos).ok_or(CatalogError::Corrupt(what))
}

fn byte(body: &[u8], pos: &mut usize, what: &'static str) -> Result<u8, CatalogError> {
    let b = *body.get(*pos).ok_or(CatalogError::Corrupt(what))?;
    *pos += 1;
    Ok(b)
}

/// Parse and validate a trailer body.
///
/// `data_end` is the absolute offset where the segment region ends (the
/// trailer's own start); every step's `[offset, offset + len)` must fall
/// inside `[PREAMBLE_LEN, data_end)`. Violations surface as
/// [`CatalogError::Corrupt`] — never a panic, never wrapping arithmetic.
pub fn parse_trailer(body: &[u8], data_end: u64) -> Result<CatalogIndex, CatalogError> {
    let mut pos = 0usize;
    let n_datasets = varint(body, &mut pos, "truncated dataset count")?;
    let mut datasets = Vec::new();
    for _ in 0..n_datasets {
        let name_len = varint(body, &mut pos, "truncated dataset name length")?;
        if name_len == 0 || name_len > MAX_NAME_LEN {
            return Err(CatalogError::Corrupt("dataset name length out of range"));
        }
        let name_end = pos
            .checked_add(name_len as usize)
            .filter(|&e| e <= body.len())
            .ok_or(CatalogError::Corrupt("dataset name runs past the trailer"))?;
        let name = std::str::from_utf8(&body[pos..name_end])
            .map_err(|_| CatalogError::Corrupt("dataset name is not UTF-8"))?
            .to_string();
        pos = name_end;
        if datasets.iter().any(|d: &DatasetEntry| d.name == name) {
            return Err(CatalogError::Corrupt("duplicate dataset name"));
        }

        let scalar_tag = byte(body, &mut pos, "truncated scalar tag")?;
        if scalar_tag != 0x04 && scalar_tag != 0x08 {
            return Err(CatalogError::Corrupt("unknown scalar tag"));
        }

        let ndim = byte(body, &mut pos, "truncated rank")? as usize;
        if ndim == 0 || ndim > MAX_DIMS {
            return Err(CatalogError::Corrupt("rank out of range"));
        }
        let mut dims = [0usize; MAX_DIMS];
        let mut elems = 1usize;
        for d in dims.iter_mut().take(ndim) {
            let dim = varint(body, &mut pos, "truncated dimension")?;
            if dim == 0 || dim > usize::MAX as u64 {
                return Err(CatalogError::Corrupt("dimension out of range"));
            }
            *d = dim as usize;
            elems = elems
                .checked_mul(*d)
                .ok_or(CatalogError::Corrupt("shape element count overflows"))?;
        }
        let shape = Shape::new(&dims[..ndim]);

        let keyframe_every = varint(body, &mut pos, "truncated keyframe cadence")?;
        if keyframe_every == 0 || keyframe_every > usize::MAX as u64 {
            return Err(CatalogError::Corrupt("keyframe cadence out of range"));
        }

        let n_steps = varint(body, &mut pos, "truncated step count")?;
        if n_steps == 0 {
            return Err(CatalogError::Corrupt("dataset has zero steps"));
        }
        let mut steps = Vec::new();
        for t in 0..n_steps {
            let flags = byte(body, &mut pos, "truncated step flags")?;
            if flags & !1 != 0 {
                return Err(CatalogError::Corrupt("reserved step flag bits set"));
            }
            let keyframe = flags & 1 != 0;
            if t == 0 && !keyframe {
                return Err(CatalogError::Corrupt(
                    "first step is a delta with no keyframe to stand on",
                ));
            }
            let offset = varint(body, &mut pos, "truncated step offset")?;
            let len = varint(body, &mut pos, "truncated step length")?;
            if len == 0 {
                return Err(CatalogError::Corrupt("zero-length step segment"));
            }
            let end = offset
                .checked_add(len)
                .ok_or(CatalogError::Corrupt("step segment range overflows"))?;
            if offset < PREAMBLE_LEN as u64 || end > data_end {
                return Err(CatalogError::Corrupt("step segment outside the data region"));
            }
            let codec = CodecSummary::from_tag(byte(body, &mut pos, "truncated codec summary")?)
                .ok_or(CatalogError::Corrupt("unknown codec summary tag"))?;
            let eb_end = pos
                .checked_add(8)
                .filter(|&e| e <= body.len())
                .ok_or(CatalogError::Corrupt("truncated step error bound"))?;
            let eb = f64::from_le_bytes(body[pos..eb_end].try_into().unwrap());
            pos = eb_end;
            if !(eb.is_finite() && eb > 0.0) {
                return Err(CatalogError::Corrupt("step error bound not finite positive"));
            }
            steps.push(StepEntry { keyframe, offset, len, codec, eb });
        }

        datasets.push(DatasetEntry {
            name,
            scalar_tag,
            shape,
            keyframe_every: keyframe_every as usize,
            steps,
        });
    }
    if pos != body.len() {
        return Err(CatalogError::Corrupt("trailing bytes after the catalog index"));
    }
    Ok(CatalogIndex { datasets })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_index() -> CatalogIndex {
        CatalogIndex {
            datasets: vec![
                DatasetEntry {
                    name: "pressure".into(),
                    scalar_tag: 0x04,
                    shape: Shape::d3(8, 16, 16),
                    keyframe_every: 4,
                    steps: vec![
                        StepEntry {
                            keyframe: true,
                            offset: 6,
                            len: 100,
                            codec: CodecSummary::Sz,
                            eb: 1e-3,
                        },
                        StepEntry {
                            keyframe: false,
                            offset: 106,
                            len: 60,
                            codec: CodecSummary::Mixed,
                            eb: 1e-3,
                        },
                    ],
                },
                DatasetEntry {
                    name: "vx".into(),
                    scalar_tag: 0x08,
                    shape: Shape::d1(1000),
                    keyframe_every: 1,
                    steps: vec![StepEntry {
                        keyframe: true,
                        offset: 166,
                        len: 500,
                        codec: CodecSummary::Zfp,
                        eb: 0.5,
                    }],
                },
            ],
        }
    }

    #[test]
    fn trailer_roundtrips() {
        let index = sample_index();
        let body = encode_trailer(&index);
        let back = parse_trailer(&body, 666).unwrap();
        assert_eq!(back.datasets.len(), 2);
        let d = &back.datasets[0];
        assert_eq!(d.name, "pressure");
        assert_eq!(d.scalar_tag, 0x04);
        assert_eq!(d.shape.dims(), &[8, 16, 16]);
        assert_eq!(d.keyframe_every, 4);
        assert_eq!(d.steps.len(), 2);
        assert!(d.steps[0].keyframe && !d.steps[1].keyframe);
        assert_eq!(d.steps[1].offset, 106);
        assert_eq!(d.steps[1].codec, CodecSummary::Mixed);
        assert_eq!(back.datasets[1].steps[0].eb, 0.5);
    }

    #[test]
    fn segment_past_data_end_is_corrupt() {
        let body = encode_trailer(&sample_index());
        // data_end cuts into the second dataset's segment.
        let err = parse_trailer(&body, 400).unwrap_err();
        assert!(matches!(err, CatalogError::Corrupt(_)), "{err}");
    }

    #[test]
    fn first_step_must_be_keyframe() {
        let mut index = sample_index();
        index.datasets[0].steps[0].keyframe = false;
        let body = encode_trailer(&index);
        let err = parse_trailer(&body, 666).unwrap_err();
        assert!(matches!(err, CatalogError::Corrupt(_)), "{err}");
    }

    #[test]
    fn keyframe_before_walks_back() {
        let index = sample_index();
        let d = &index.datasets[0];
        assert_eq!(d.keyframe_before(0), Some(0));
        assert_eq!(d.keyframe_before(1), Some(0));
        assert_eq!(d.keyframe_before(2), None);
    }

    #[test]
    fn truncations_are_typed_errors() {
        let body = encode_trailer(&sample_index());
        for cut in 0..body.len() {
            match parse_trailer(&body[..cut], 666) {
                Err(CatalogError::Corrupt(_)) => {}
                Ok(_) => panic!("truncation at {cut} parsed"),
                Err(e) => panic!("unexpected error at {cut}: {e}"),
            }
        }
    }
}
