//! Temporal multi-field archive catalogs (`RQCAT` containers).
//!
//! A simulation is not one field: it is N named fields, each a sequence
//! of time steps, and consecutive steps are *far* more alike than the
//! spatial stencils inside one step can express. This crate adds both
//! missing axes to the archive layer:
//!
//! * **Catalog container** — one `RQCAT` file packs every
//!   `(dataset, step)` as an embedded, byte-for-byte ordinary
//!   single-field archive, behind a trailer index (see [`mod@format`]).
//!   [`CatalogWriter`] streams segments out as they are encoded;
//!   [`CatalogReader`] parses only the index on open and can hand any
//!   segment back as a plain `ArchiveReader` over a [`SubRange`].
//! * **Time-delta coding** — step `t` stores residuals against the
//!   *reconstructed* step `t-1`
//!   ([`rq_predict::PredictorKind::TemporalDelta`]), with a keyframe
//!   every `K` steps, so random access costs at most one keyframe plus
//!   `K-1` residual decodes and the per-step absolute error bound holds
//!   without accumulation (the writer mirrors the decoder; delta
//!   segments carry a small bound headroom, [`DELTA_EB_HEADROOM`]).
//!
//! [`DatasetReader`] flattens a dataset into one time-major
//! [`rq_compress::ChunkSource`] for concurrent serving — the layout
//! behind `rq-serve`'s `LIST_DATASETS` / `READ_STEP_ROWS` opcodes.

mod dataset;
mod delta;
mod error;
pub mod format;
mod reader;
mod subrange;
mod writer;

pub use dataset::DatasetReader;
pub use error::CatalogError;
pub use format::{
    is_catalog_magic, CatalogIndex, CodecSummary, DatasetEntry, StepEntry, CATALOG_MAGIC,
    CATALOG_VERSION,
};
pub use reader::CatalogReader;
pub use subrange::SubRange;
pub use writer::{CatalogWriter, DatasetWriter, FinishedCatalog, DELTA_EB_HEADROOM};

#[cfg(test)]
mod tests {
    use super::*;
    use rq_compress::{assemble_rows, ChunkSource, CompressorConfig};
    use rq_grid::{NdArray, Shape};
    use rq_predict::PredictorKind;
    use rq_quant::ErrorBoundMode;
    use std::io::Cursor;

    fn wavy_steps(n: usize, shape: Shape, drift: f32) -> Vec<NdArray<f32>> {
        (0..n)
            .map(|t| {
                NdArray::from_fn(shape, |ix| {
                    let x = ix[0] as f32 * 0.21 + t as f32 * drift;
                    let y = ix.get(1).copied().unwrap_or(0) as f32 * 0.13;
                    (x + y).sin() * 3.0 + x.cos()
                })
            })
            .collect()
    }

    fn cfg(eb: f64) -> CompressorConfig {
        CompressorConfig::new(PredictorKind::Lorenzo, ErrorBoundMode::Abs(eb)).chunked(7)
    }

    #[test]
    fn roundtrip_two_datasets_within_bound() {
        let steps = wavy_steps(6, Shape::d2(20, 24), 0.05);
        let steps64: Vec<NdArray<f64>> = steps
            .iter()
            .map(|s| {
                NdArray::from_vec(
                    s.shape(),
                    s.as_slice().iter().map(|&v| v as f64).collect(),
                )
            })
            .collect();

        let mut w = CatalogWriter::create(Vec::new()).unwrap();
        w.write_dataset("a", &cfg(1e-3), 3, &steps).unwrap();
        w.write_dataset("b", &cfg(1e-4), 1, &steps64).unwrap();
        let fin = w.finalize().unwrap();
        assert_eq!(fin.bytes_written as usize, fin.sink.len());

        let mut r = CatalogReader::open(Cursor::new(fin.sink)).unwrap();
        assert_eq!(r.datasets().len(), 2);
        for t in 0..6 {
            let dec = r.read_step::<f32>("a", t).unwrap();
            for (a, b) in dec.as_slice().iter().zip(steps[t].as_slice()) {
                assert!((a - b).abs() <= 1e-3, "step {t}: {a} vs {b}");
            }
            let dec = r.read_step::<f64>("b", t).unwrap();
            for (a, b) in dec.as_slice().iter().zip(steps64[t].as_slice()) {
                assert!((a - b).abs() <= 1e-4, "step {t}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn keyframe_flags_follow_the_cadence() {
        let steps = wavy_steps(7, Shape::d1(200), 0.1);
        let mut w = CatalogWriter::create(Vec::new()).unwrap();
        w.write_dataset("x", &cfg(1e-3), 3, &steps).unwrap();
        let fin = w.finalize().unwrap();
        let flags: Vec<bool> =
            fin.index.datasets[0].steps.iter().map(|s| s.keyframe).collect();
        assert_eq!(flags, [true, false, false, true, false, false, true]);
    }

    #[test]
    fn typed_errors_for_lookups() {
        let steps = wavy_steps(2, Shape::d1(64), 0.1);
        let mut w = CatalogWriter::create(Vec::new()).unwrap();
        w.write_dataset("x", &cfg(1e-3), 2, &steps).unwrap();
        let bytes = w.finalize().unwrap().sink;
        let mut r = CatalogReader::open(Cursor::new(bytes)).unwrap();
        assert!(matches!(
            r.read_step::<f32>("y", 0),
            Err(CatalogError::DatasetNotFound(_))
        ));
        assert!(matches!(
            r.read_step::<f32>("x", 2),
            Err(CatalogError::StepOutOfRange { step: 2, n_steps: 2 })
        ));
        assert!(matches!(
            r.read_step::<f64>("x", 0),
            Err(CatalogError::ScalarMismatch { expected: 0x04, found: 0x08 })
        ));
    }

    #[test]
    fn writer_rejects_bad_configs() {
        let steps = wavy_steps(2, Shape::d1(64), 0.1);
        let mut w = CatalogWriter::create(Vec::new()).unwrap();
        assert!(matches!(
            w.write_dataset("x", &cfg(1e-3), 0, &steps),
            Err(CatalogError::InvalidConfig(_))
        ));
        let rel = CompressorConfig::new(
            PredictorKind::Lorenzo,
            ErrorBoundMode::ValueRangeRelative(1e-3),
        );
        assert!(matches!(
            w.write_dataset("x", &rel, 1, &steps),
            Err(CatalogError::InvalidConfig(_))
        ));
        w.write_dataset("x", &cfg(1e-3), 1, &steps).unwrap();
        assert!(matches!(
            w.write_dataset("x", &cfg(1e-3), 1, &steps),
            Err(CatalogError::InvalidConfig(_))
        ));
    }

    #[test]
    fn open_step_exposes_a_plain_archive() {
        let steps = wavy_steps(4, Shape::d2(16, 16), 0.05);
        let mut w = CatalogWriter::create(Vec::new()).unwrap();
        w.write_dataset("x", &cfg(1e-3), 2, &steps).unwrap();
        let bytes = w.finalize().unwrap().sink;
        let mut r = CatalogReader::open(Cursor::new(bytes)).unwrap();
        // Keyframe step: the segment decodes to the field directly.
        let mut ar = r.open_step("x", 2).unwrap();
        assert_eq!(ar.header().shape.dims(), &[16, 16]);
        let dec = ar.read_all::<f32>().unwrap();
        for (a, b) in dec.as_slice().iter().zip(steps[2].as_slice()) {
            assert!((a - b).abs() <= 1e-3);
        }
        // Delta step: a residual stream under the TemporalDelta tag.
        let ar = r.open_step("x", 3).unwrap();
        assert_eq!(ar.header().predictor, PredictorKind::TemporalDelta);
    }

    #[test]
    fn dataset_reader_matches_sequential_decode() {
        let dir = std::env::temp_dir().join(format!("rqcat-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ds.rqc");
        let steps = wavy_steps(5, Shape::d2(20, 12), 0.07);
        let mut w = CatalogWriter::create(std::fs::File::create(&path).unwrap()).unwrap();
        w.write_dataset("x", &cfg(1e-3), 2, &steps).unwrap();
        w.finalize().unwrap();

        let ds = DatasetReader::<f32>::open_path(&path, "x").unwrap();
        assert_eq!(ds.n_steps(), 5);
        assert_eq!(ds.step_rows(), 20);
        let mut cat = CatalogReader::open_path(&path).unwrap();
        for t in 0..5 {
            let want = cat.read_step::<f32>("x", t).unwrap();
            let rows = t * ds.step_rows()..(t + 1) * ds.step_rows();
            let got = assemble_rows(&ds, rows).unwrap();
            assert_eq!(got.as_slice(), want.as_slice(), "step {t} differs");
        }
        // Single chunks decode too (the serve path).
        let arc = ds.fetch_chunk(ds.chunks_per_step() * 4).unwrap();
        assert_eq!(&arc[..], &cat.read_step::<f32>("x", 4).unwrap().as_slice()[..arc.len()]);
        std::fs::remove_file(&path).ok();
    }
}
