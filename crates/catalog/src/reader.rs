//! Sequential catalog reader.

use crate::delta::add_residual;
use crate::error::CatalogError;
use crate::format::{
    parse_trailer, CatalogIndex, DatasetEntry, CATALOG_MAGIC, CATALOG_VERSION, PREAMBLE_LEN,
    TRAILER_MAGIC, TRAILER_SUFFIX_LEN,
};
use crate::subrange::SubRange;
use rq_compress::{decompress, ArchiveReader};
use rq_grid::{NdArray, Scalar};
use std::fs::File;
use std::io::{Read, Seek, SeekFrom};

/// Lazy-index reader over any `Read + Seek` source.
///
/// Opening parses only the trailer index; segment bytes are touched when
/// a step is actually read. Any `(dataset, step)` segment can be opened
/// as a perfectly ordinary single-field archive via
/// [`CatalogReader::open_step`] — a catalog is archives all the way down.
pub struct CatalogReader<R: Read + Seek> {
    src: R,
    index: CatalogIndex,
}

impl CatalogReader<File> {
    /// Open a catalog file.
    pub fn open_path(path: impl AsRef<std::path::Path>) -> Result<Self, CatalogError> {
        Self::open(File::open(path)?)
    }
}

impl<R: Read + Seek> CatalogReader<R> {
    /// Validate the preamble, locate and parse the trailer index.
    pub fn open(mut src: R) -> Result<Self, CatalogError> {
        let file_len = src.seek(SeekFrom::End(0))?;
        if file_len < (PREAMBLE_LEN + TRAILER_SUFFIX_LEN) as u64 {
            return Err(CatalogError::Corrupt("file too short for a catalog"));
        }

        src.seek(SeekFrom::Start(0))?;
        let mut preamble = [0u8; PREAMBLE_LEN];
        src.read_exact(&mut preamble)?;
        if &preamble[..5] != CATALOG_MAGIC {
            return Err(CatalogError::Corrupt("bad catalog magic"));
        }
        if preamble[5] != CATALOG_VERSION {
            return Err(CatalogError::UnsupportedVersion(preamble[5]));
        }

        src.seek(SeekFrom::Start(file_len - TRAILER_SUFFIX_LEN as u64))?;
        let mut suffix = [0u8; TRAILER_SUFFIX_LEN];
        src.read_exact(&mut suffix)?;
        if &suffix[8..] != TRAILER_MAGIC {
            return Err(CatalogError::Corrupt("bad trailer magic"));
        }
        let body_len = u64::from_le_bytes(suffix[..8].try_into().unwrap());
        let max_body = file_len - (PREAMBLE_LEN + TRAILER_SUFFIX_LEN) as u64;
        if body_len > max_body {
            return Err(CatalogError::Corrupt("trailer length exceeds the file"));
        }
        let data_end = file_len - TRAILER_SUFFIX_LEN as u64 - body_len;

        src.seek(SeekFrom::Start(data_end))?;
        let mut body = vec![0u8; body_len as usize];
        src.read_exact(&mut body)?;
        let index = parse_trailer(&body, data_end)?;
        Ok(CatalogReader { src, index })
    }

    /// The parsed catalog index.
    pub fn index(&self) -> &CatalogIndex {
        &self.index
    }

    /// Datasets in write order.
    pub fn datasets(&self) -> &[DatasetEntry] {
        &self.index.datasets
    }

    /// Look up a dataset by name.
    pub fn dataset(&self, name: &str) -> Result<&DatasetEntry, CatalogError> {
        let i = self
            .index
            .find(name)
            .ok_or_else(|| CatalogError::DatasetNotFound(name.to_string()))?;
        Ok(&self.index.datasets[i])
    }

    fn step_entry(
        &self,
        name: &str,
        step: usize,
    ) -> Result<crate::format::StepEntry, CatalogError> {
        let d = self.dataset(name)?;
        d.steps
            .get(step)
            .copied()
            .ok_or(CatalogError::StepOutOfRange { step, n_steps: d.steps.len() })
    }

    /// Raw bytes of one step's embedded archive segment.
    pub fn read_segment(&mut self, name: &str, step: usize) -> Result<Vec<u8>, CatalogError> {
        let s = self.step_entry(name, step)?;
        self.src.seek(SeekFrom::Start(s.offset))?;
        let mut bytes = vec![0u8; s.len as usize];
        self.src.read_exact(&mut bytes)?;
        Ok(bytes)
    }

    /// Open one step's segment as a normal single-field archive.
    ///
    /// For delta steps the archive holds the *residual* stream, not the
    /// field; use [`CatalogReader::read_step`] for reconstructed values.
    pub fn open_step(
        &mut self,
        name: &str,
        step: usize,
    ) -> Result<ArchiveReader<SubRange<&mut R>>, CatalogError> {
        let s = self.step_entry(name, step)?;
        let sub = SubRange::new(&mut self.src, s.offset, s.len)?;
        Ok(ArchiveReader::open(sub)?)
    }

    /// Decode the reconstructed field of `(dataset, step)`.
    ///
    /// Walks back to the nearest keyframe and applies the delta chain —
    /// at most one keyframe plus `keyframe_every - 1` residual decodes.
    pub fn read_step<T: Scalar>(
        &mut self,
        name: &str,
        step: usize,
    ) -> Result<NdArray<T>, CatalogError> {
        let d = self.dataset(name)?;
        if step >= d.steps.len() {
            return Err(CatalogError::StepOutOfRange { step, n_steps: d.steps.len() });
        }
        if d.scalar_tag != T::TAG {
            return Err(CatalogError::ScalarMismatch { expected: d.scalar_tag, found: T::TAG });
        }
        let shape = d.shape;
        let kf = d
            .keyframe_before(step)
            .ok_or(CatalogError::Corrupt("no keyframe at or before the step"))?;

        let bytes = self.read_segment(name, kf)?;
        let mut recon = decompress::<T>(&bytes)?.into_vec();
        if recon.len() != shape.len() {
            return Err(CatalogError::Corrupt("segment shape differs from the index"));
        }
        for t in kf + 1..=step {
            let bytes = self.read_segment(name, t)?;
            let resid = decompress::<T>(&bytes)?;
            if resid.len() != shape.len() {
                return Err(CatalogError::Corrupt("segment shape differs from the index"));
            }
            recon = add_residual(&recon, resid.as_slice());
        }
        Ok(NdArray::from_vec(shape, recon))
    }
}
