//! A `Read + Seek` window over a byte range of another stream.

use std::io::{self, Read, Seek, SeekFrom};

/// Presents bytes `[start, start + len)` of an inner stream as a
/// standalone `Read + Seek` source whose position 0 is `start`.
///
/// This is how an embedded archive segment of a catalog becomes "a normal
/// archive" for [`rq_compress::ArchiveReader`] /
/// [`rq_compress::ConcurrentReader`]: the segment's window is carved out
/// and the archive reader never learns it lives inside a bigger file.
///
/// All reads and seeks must go through the window (the constructor seeks
/// the inner stream to `start`); sharing the inner stream concurrently
/// through other handles is fine, sharing the *same* handle is not.
pub struct SubRange<S> {
    inner: S,
    start: u64,
    len: u64,
    /// Window-relative cursor; inner cursor is `start + pos`.
    pos: u64,
}

impl<S: Seek> SubRange<S> {
    /// Open a window of `len` bytes at absolute offset `start`.
    pub fn new(mut inner: S, start: u64, len: u64) -> io::Result<Self> {
        inner.seek(SeekFrom::Start(start))?;
        Ok(SubRange { inner, start, len, pos: 0 })
    }

    /// Window length in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Consume the window, returning the inner stream.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: Read + Seek> Read for SubRange<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let remain = self.len.saturating_sub(self.pos);
        if remain == 0 || buf.is_empty() {
            return Ok(0);
        }
        let n = (buf.len() as u64).min(remain) as usize;
        let got = self.inner.read(&mut buf[..n])?;
        self.pos += got as u64;
        Ok(got)
    }
}

impl<S: Seek> Seek for SubRange<S> {
    fn seek(&mut self, pos: SeekFrom) -> io::Result<u64> {
        let target = match pos {
            SeekFrom::Start(p) => p as i128,
            SeekFrom::End(off) => self.len as i128 + off as i128,
            SeekFrom::Current(off) => self.pos as i128 + off as i128,
        };
        if target < 0 || target > u64::MAX as i128 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "seek before start of sub-range",
            ));
        }
        // Seeking past the end is legal (like a file); reads there hit EOF.
        let target = target as u64;
        self.inner.seek(SeekFrom::Start(self.start + target))?;
        self.pos = target;
        Ok(target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn reads_are_clamped_to_the_window() {
        let data: Vec<u8> = (0u8..100).collect();
        let mut sr = SubRange::new(Cursor::new(data), 10, 20).unwrap();
        let mut buf = [0u8; 64];
        let n = sr.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], &(10u8..30).collect::<Vec<_>>()[..]);
        assert_eq!(sr.read(&mut buf).unwrap(), 0);
    }

    #[test]
    fn seek_is_window_relative() {
        let data: Vec<u8> = (0u8..100).collect();
        let mut sr = SubRange::new(Cursor::new(data), 10, 20).unwrap();
        assert_eq!(sr.seek(SeekFrom::End(-4)).unwrap(), 16);
        let mut buf = [0u8; 8];
        let n = sr.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], &[26, 27, 28, 29]);
        assert!(sr.seek(SeekFrom::Current(-100)).is_err());
    }
}
