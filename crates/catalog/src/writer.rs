//! Streaming catalog writer.

use crate::delta::{add_residual, residual};
use crate::error::CatalogError;
use crate::format::{
    encode_trailer, CatalogIndex, CodecSummary, DatasetEntry, StepEntry, CATALOG_MAGIC,
    CATALOG_VERSION, TRAILER_MAGIC,
};
use rq_compress::{
    decompress, resolved_chunk_rows, ArchiveWriter, ChunkCodecKind, CompressorConfig,
};
use rq_grid::{NdArray, Scalar, Shape};
use rq_predict::PredictorKind;
use rq_quant::ErrorBoundMode;
use std::io::Write;

/// Delta segments are coded under `eb × HEADROOM` so the two extra
/// `f64 → T` roundings of residual coding (residual formation and
/// reconstruction) cannot push a step past the user's bound.
pub const DELTA_EB_HEADROOM: f64 = 0.999;

/// Incremental `RQCAT` writer over any [`Write`] sink.
///
/// The magic is written on [`CatalogWriter::create`]; each dataset's
/// segments are appended as they are encoded (one compressed segment in
/// memory at a time — the catalog itself is never buffered); the index
/// trailer lands on [`CatalogWriter::finalize`].
///
/// ```
/// use rq_catalog::{CatalogReader, CatalogWriter};
/// use rq_compress::CompressorConfig;
/// use rq_grid::{NdArray, Shape};
/// use rq_predict::PredictorKind;
/// use rq_quant::ErrorBoundMode;
///
/// let steps: Vec<NdArray<f32>> = (0..4)
///     .map(|t| {
///         NdArray::from_fn(Shape::d2(16, 16), |ix| {
///             ((ix[0] + ix[1]) as f32 * 0.2 + t as f32 * 0.05).sin()
///         })
///     })
///     .collect();
/// let cfg = CompressorConfig::new(PredictorKind::Lorenzo, ErrorBoundMode::Abs(1e-3));
/// let mut w = CatalogWriter::create(Vec::new()).unwrap();
/// w.write_dataset("wave", &cfg, 2, &steps).unwrap();
/// let bytes = w.finalize().unwrap().sink;
///
/// let mut r = CatalogReader::open(std::io::Cursor::new(bytes)).unwrap();
/// let step2 = r.read_step::<f32>("wave", 2).unwrap();
/// for (a, b) in step2.as_slice().iter().zip(steps[2].as_slice()) {
///     assert!((a - b).abs() <= 1e-3);
/// }
/// ```
pub struct CatalogWriter<W: Write> {
    sink: W,
    /// Absolute offset of the next byte to be written.
    pos: u64,
    index: CatalogIndex,
}

/// The result of [`CatalogWriter::finalize`].
pub struct FinishedCatalog<W> {
    /// The sink, flushed, positioned after the trailer.
    pub sink: W,
    /// The index that was written.
    pub index: CatalogIndex,
    /// Total catalog bytes (preamble + segments + trailer).
    pub bytes_written: u64,
}

impl<W: Write> CatalogWriter<W> {
    /// Start a catalog: writes the 6-byte preamble immediately.
    pub fn create(mut sink: W) -> Result<Self, CatalogError> {
        sink.write_all(CATALOG_MAGIC)?;
        sink.write_all(&[CATALOG_VERSION])?;
        Ok(CatalogWriter { sink, pos: 6, index: CatalogIndex::default() })
    }

    /// Begin a dataset of `shape`-shaped steps, compressed under `cfg`
    /// with a keyframe every `keyframe_every` steps (1 = every step
    /// self-contained).
    ///
    /// `cfg.bound` must be [`ErrorBoundMode::Abs`]: relative bounds would
    /// resolve differently per step (and residual fields have a different
    /// value range than the data), silently changing the guarantee.
    /// Keyframes use `cfg.predictor` as given, except
    /// [`PredictorKind::TemporalDelta`], which only makes sense for
    /// residual streams and is normalized to Lorenzo.
    pub fn begin_dataset<T: Scalar>(
        &mut self,
        name: &str,
        cfg: &CompressorConfig,
        keyframe_every: usize,
        shape: Shape,
    ) -> Result<DatasetWriter<'_, W, T>, CatalogError> {
        if name.is_empty() {
            return Err(CatalogError::InvalidConfig("dataset name must not be empty"));
        }
        if name.len() > 4096 {
            return Err(CatalogError::InvalidConfig("dataset name longer than 4096 bytes"));
        }
        if self.index.find(name).is_some() {
            return Err(CatalogError::InvalidConfig("duplicate dataset name"));
        }
        if keyframe_every == 0 {
            return Err(CatalogError::InvalidConfig("keyframe cadence must be at least 1"));
        }
        let eb = match cfg.bound {
            ErrorBoundMode::Abs(eb) if eb.is_finite() && eb > 0.0 => eb,
            ErrorBoundMode::Abs(_) => {
                return Err(CatalogError::InvalidConfig(
                    "absolute bound must be finite and positive",
                ))
            }
            _ => {
                return Err(CatalogError::InvalidConfig(
                    "catalog datasets require an absolute error bound",
                ))
            }
        };

        // Pin the chunk partition once: every step of the dataset uses the
        // same axis-0 slabs, so chunk c of step t aligns with chunk c of
        // step t-1 and the delta recursion works chunk-by-chunk.
        let chunk_rows = resolved_chunk_rows(cfg, shape);
        let mut key_cfg = cfg.chunked(chunk_rows);
        if key_cfg.predictor == PredictorKind::TemporalDelta {
            key_cfg.predictor = PredictorKind::Lorenzo;
        }
        let mut delta_cfg =
            key_cfg.with_bound(ErrorBoundMode::Abs(eb * DELTA_EB_HEADROOM));
        delta_cfg.predictor = PredictorKind::TemporalDelta;

        Ok(DatasetWriter {
            cat: self,
            entry: DatasetEntry {
                name: name.to_string(),
                scalar_tag: T::TAG,
                shape,
                keyframe_every,
                steps: Vec::new(),
            },
            key_cfg,
            delta_cfg,
            user_eb: eb,
            recon: Vec::new(),
            t: 0,
        })
    }

    /// Convenience: write a whole dataset from an in-memory step slice.
    pub fn write_dataset<T: Scalar>(
        &mut self,
        name: &str,
        cfg: &CompressorConfig,
        keyframe_every: usize,
        steps: &[NdArray<T>],
    ) -> Result<(), CatalogError> {
        let first = steps
            .first()
            .ok_or(CatalogError::InvalidConfig("dataset needs at least one step"))?;
        let mut dw = self.begin_dataset::<T>(name, cfg, keyframe_every, first.shape())?;
        for step in steps {
            dw.write_step(step)?;
        }
        dw.finish()
    }

    /// Datasets finished so far.
    pub fn datasets(&self) -> &[DatasetEntry] {
        &self.index.datasets
    }

    /// Bytes written so far (preamble + finished segments).
    pub fn bytes_written(&self) -> u64 {
        self.pos
    }

    /// Write the index trailer and flush.
    pub fn finalize(mut self) -> Result<FinishedCatalog<W>, CatalogError> {
        let body = encode_trailer(&self.index);
        self.sink.write_all(&body)?;
        self.sink.write_all(&(body.len() as u64).to_le_bytes())?;
        self.sink.write_all(TRAILER_MAGIC)?;
        self.sink.flush()?;
        Ok(FinishedCatalog {
            sink: self.sink,
            index: self.index,
            bytes_written: self.pos + body.len() as u64 + 12,
        })
    }
}

/// In-progress dataset of a [`CatalogWriter`]: feed steps in time order,
/// then [`DatasetWriter::finish`].
///
/// Dropping without `finish` leaves already-written segments as dead
/// bytes in the file (they are simply absent from the index) — harmless,
/// but wasted space.
pub struct DatasetWriter<'a, W: Write, T: Scalar> {
    cat: &'a mut CatalogWriter<W>,
    entry: DatasetEntry,
    key_cfg: CompressorConfig,
    delta_cfg: CompressorConfig,
    user_eb: f64,
    /// Decoder-mirror reconstruction of the last step: exactly what any
    /// reader will hold after decoding it, so residuals are formed
    /// against the receiver's state, not the encoder's lossless input.
    recon: Vec<T>,
    t: usize,
}

impl<W: Write, T: Scalar> DatasetWriter<'_, W, T> {
    /// Encode and append one time step.
    pub fn write_step(&mut self, field: &NdArray<T>) -> Result<(), CatalogError> {
        if field.shape().dims() != self.entry.shape.dims() {
            return Err(CatalogError::InvalidConfig(
                "time step shape differs from the dataset shape",
            ));
        }
        let is_key = self.t.is_multiple_of(self.entry.keyframe_every);

        // Encode to memory first: the sink is write-only, but the mirror
        // below must decode exactly the bytes that go out.
        let (cfg, to_encode);
        if is_key {
            cfg = &self.key_cfg;
            to_encode = None;
        } else {
            cfg = &self.delta_cfg;
            to_encode = Some(NdArray::from_vec(
                self.entry.shape,
                residual(field.as_slice(), &self.recon),
            ));
        }
        let mut w = ArchiveWriter::<T, _>::create(Vec::new(), self.entry.shape, cfg)?;
        w.write_slab(to_encode.as_ref().unwrap_or(field))?;
        let fin = w.finalize()?;
        let bytes = fin.sink;

        // Decoder mirror: advance the reconstruction the way a reader
        // will, from the compressed bytes.
        let decoded = decompress::<T>(&bytes)?;
        self.recon = if is_key {
            decoded.into_vec()
        } else {
            add_residual(&self.recon, decoded.as_slice())
        };

        self.cat.sink.write_all(&bytes)?;
        self.entry.steps.push(StepEntry {
            keyframe: is_key,
            offset: self.cat.pos,
            len: bytes.len() as u64,
            codec: summarize_codecs(&fin.report.chunk_codecs),
            eb: self.user_eb,
        });
        self.cat.pos += bytes.len() as u64;
        self.t += 1;
        Ok(())
    }

    /// The reconstruction of the last written step (what a reader will
    /// decode) — handy for measuring actual per-step error.
    pub fn last_recon(&self) -> &[T] {
        &self.recon
    }

    /// Steps written so far.
    pub fn n_steps(&self) -> usize {
        self.t
    }

    /// Commit the dataset to the catalog index.
    pub fn finish(self) -> Result<(), CatalogError> {
        if self.t == 0 {
            return Err(CatalogError::InvalidConfig("dataset needs at least one step"));
        }
        self.cat.index.datasets.push(self.entry);
        Ok(())
    }
}

fn summarize_codecs(codecs: &[ChunkCodecKind]) -> CodecSummary {
    let any_sz = codecs.contains(&ChunkCodecKind::Sz);
    let any_zfp = codecs.contains(&ChunkCodecKind::Zfp);
    match (any_sz, any_zfp) {
        (true, true) => CodecSummary::Mixed,
        (false, true) => CodecSummary::Zfp,
        _ => CodecSummary::Sz,
    }
}
