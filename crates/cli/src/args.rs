//! Minimal hand-rolled argument parsing (no external dependency).

use rq_grid::Shape;
use rq_predict::PredictorKind;

/// A parsed `--key value` option set plus positional arguments.
#[derive(Debug, Default)]
pub struct Args {
    /// Positional arguments in order.
    pub positional: Vec<String>,
    /// `--key value` pairs (last occurrence wins).
    pairs: Vec<(String, String)>,
    /// Bare `--flag` switches.
    flags: Vec<String>,
}

impl Args {
    /// Parse from an iterator of raw arguments (program name excluded).
    pub fn parse(raw: impl IntoIterator<Item = String>) -> Result<Args, String> {
        let mut out = Args::default();
        let mut it = raw.into_iter().peekable();
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                if key.is_empty() {
                    return Err("empty option name".into());
                }
                // `--key=value` or `--key value` or bare flag.
                if let Some((k, v)) = key.split_once('=') {
                    out.pairs.push((k.to_string(), v.to_string()));
                } else if it.peek().is_some_and(|n| !n.starts_with("--")) {
                    out.pairs.push((key.to_string(), it.next().unwrap()));
                } else {
                    out.flags.push(key.to_string());
                }
            } else {
                out.positional.push(a);
            }
        }
        Ok(out)
    }

    /// Look up an option value.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.pairs.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// Whether a bare flag was passed.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }

    /// Required option with a descriptive error.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key).ok_or_else(|| format!("missing required option --{key}"))
    }

    /// Parse a `--shape 64x64x64` option.
    pub fn shape(&self) -> Result<Shape, String> {
        let raw = self.require("shape")?;
        parse_shape(raw)
    }

    /// Parse `--predictor lorenzo|lorenzo2|interpolation|regression|
    /// temporal-delta` (default interpolation). `temporal-delta` marks
    /// residual streams inside `rqm pack` catalogs; on a single field it
    /// traverses like order-1 Lorenzo.
    pub fn predictor(&self) -> Result<PredictorKind, String> {
        match self.get("predictor").unwrap_or("interpolation") {
            "lorenzo" => Ok(PredictorKind::Lorenzo),
            "lorenzo2" => Ok(PredictorKind::Lorenzo2),
            "interpolation" | "interp" => Ok(PredictorKind::Interpolation),
            "regression" => Ok(PredictorKind::Regression),
            "temporal-delta" | "temporal" => Ok(PredictorKind::TemporalDelta),
            other => Err(format!("unknown predictor '{other}'")),
        }
    }

    /// Parse a float option.
    pub fn float(&self, key: &str) -> Result<Option<f64>, String> {
        self.get(key)
            .map(|v| v.parse::<f64>().map_err(|_| format!("--{key}: '{v}' is not a number")))
            .transpose()
    }

    /// Parse an unsigned integer option.
    pub fn unsigned(&self, key: &str) -> Result<Option<usize>, String> {
        self.get(key)
            .map(|v| {
                v.parse::<usize>()
                    .map_err(|_| format!("--{key}: '{v}' is not a non-negative integer"))
            })
            .transpose()
    }
}

/// Parse `"64x64x64"` into a [`Shape`].
pub fn parse_shape(raw: &str) -> Result<Shape, String> {
    let dims: Result<Vec<usize>, _> = raw.split('x').map(|p| p.parse::<usize>()).collect();
    let dims = dims.map_err(|_| format!("bad shape '{raw}' (want e.g. 64x64x64)"))?;
    if dims.is_empty() || dims.len() > rq_grid::MAX_DIMS || dims.contains(&0) {
        return Err(format!("bad shape '{raw}': need 1-4 positive extents"));
    }
    Ok(Shape::new(&dims))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(v: &[&str]) -> Args {
        Args::parse(v.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn positional_and_options_mix() {
        let a = parse(&["compress", "in.raw", "--shape", "4x5", "out.rqc", "--abs", "1e-3"]);
        assert_eq!(a.positional, vec!["compress", "in.raw", "out.rqc"]);
        assert_eq!(a.get("shape"), Some("4x5"));
        assert_eq!(a.float("abs").unwrap(), Some(1e-3));
    }

    #[test]
    fn equals_form_and_flags() {
        let a = parse(&["x", "--abs=0.5", "--huffman-only"]);
        assert_eq!(a.get("abs"), Some("0.5"));
        assert!(a.flag("huffman-only"));
        assert!(!a.flag("other"));
    }

    #[test]
    fn last_occurrence_wins() {
        let a = parse(&["--abs", "1", "--abs", "2"]);
        assert_eq!(a.get("abs"), Some("2"));
    }

    #[test]
    fn shape_parsing() {
        assert_eq!(parse_shape("64").unwrap().dims(), &[64]);
        assert_eq!(parse_shape("4x5x6").unwrap().dims(), &[4, 5, 6]);
        assert!(parse_shape("4x0").is_err());
        assert!(parse_shape("4xx5").is_err());
        assert!(parse_shape("1x2x3x4x5").is_err());
    }

    #[test]
    fn predictor_parsing() {
        let a = parse(&["--predictor", "lorenzo"]);
        assert_eq!(a.predictor().unwrap(), PredictorKind::Lorenzo);
        let d = parse(&[]);
        assert_eq!(d.predictor().unwrap(), PredictorKind::Interpolation);
        let bad = parse(&["--predictor", "dct"]);
        assert!(bad.predictor().is_err());
    }

    #[test]
    fn missing_required() {
        let a = parse(&[]);
        assert!(a.require("shape").is_err());
        assert!(a.shape().is_err());
    }

    #[test]
    fn bad_float_is_error() {
        let a = parse(&["--abs", "xyz"]);
        assert!(a.float("abs").is_err());
    }
}
