//! Raw little-endian f32 file I/O, whole-file and streaming.

use rq_grid::{NdArray, Shape};
use std::io::Read;

/// Read a raw little-endian `f32` file into a field of the given shape.
pub fn read_raw_f32(path: &str, shape: Shape) -> Result<NdArray<f32>, String> {
    let bytes = read_bytes(path)?;
    let expect = shape.len() * 4;
    if bytes.len() != expect {
        return Err(format!(
            "{path}: {} bytes but shape {:?} needs {expect}",
            bytes.len(),
            shape.dims()
        ));
    }
    let values: Vec<f32> = bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
        .collect();
    Ok(NdArray::from_vec(shape, values))
}

/// Write a field as raw little-endian `f32`.
pub fn write_raw_f32(path: &str, field: &NdArray<f32>) -> Result<(), String> {
    let mut out = Vec::with_capacity(field.len() * 4);
    for &v in field.as_slice() {
        out.extend_from_slice(&v.to_le_bytes());
    }
    write_bytes(path, &out)
}

/// Read a whole file.
pub fn read_bytes(path: &str) -> Result<Vec<u8>, String> {
    std::fs::read(path).map_err(|e| format!("{path}: {e}"))
}

/// Open a raw `f32` input for streaming and check its size against the
/// declared shape. Returns the open file.
pub fn open_raw_f32(path: &str, shape: Shape) -> Result<std::fs::File, String> {
    let f = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
    let len = f.metadata().map_err(|e| format!("{path}: {e}"))?.len();
    let expect = shape.len() as u64 * 4;
    if len != expect {
        return Err(format!(
            "{path}: {len} bytes but shape {:?} needs {expect}",
            shape.dims()
        ));
    }
    Ok(f)
}

/// Read the next `shape.len()` little-endian `f32` values from a stream
/// as one axis-0 slab.
pub fn read_f32_slab(r: &mut impl Read, shape: Shape) -> Result<NdArray<f32>, String> {
    let mut bytes = vec![0u8; shape.len() * 4];
    r.read_exact(&mut bytes).map_err(|e| format!("short read: {e}"))?;
    let values: Vec<f32> = bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
        .collect();
    Ok(NdArray::from_vec(shape, values))
}

/// Write a whole file.
pub fn write_bytes(path: &str, bytes: &[u8]) -> Result<(), String> {
    std::fs::write(path, bytes).map_err(|e| format!("{path}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_roundtrip() {
        let dir = std::env::temp_dir().join("rqm_io_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("t.f32");
        let f = NdArray::<f32>::from_fn(Shape::d1(10), |ix| ix[0] as f32 * 1.5);
        write_raw_f32(p.to_str().unwrap(), &f).unwrap();
        let g = read_raw_f32(p.to_str().unwrap(), Shape::d1(10)).unwrap();
        assert_eq!(f.as_slice(), g.as_slice());
    }

    #[test]
    fn size_mismatch_is_error() {
        let dir = std::env::temp_dir().join("rqm_io_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("s.f32");
        write_bytes(p.to_str().unwrap(), &[0u8; 12]).unwrap();
        assert!(read_raw_f32(p.to_str().unwrap(), Shape::d1(10)).is_err());
    }

    #[test]
    fn missing_file_is_error() {
        assert!(read_bytes("/definitely/not/here").is_err());
    }
}
