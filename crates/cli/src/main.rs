//! `rqm` — command-line front end for the compressor and the model.
//!
//! ```text
//! rqm compress   <in.f32> <out.rqc> --shape 64x64x64 --abs 1e-3
//!                [--predictor interpolation|lorenzo|lorenzo2|regression]
//!                [--rel 1e-3] [--huffman-only] [--codec sz|zfp|auto]
//!                [--threads N] [--chunk-size ROWS]
//! rqm decompress <in.rqc> <out.f32> [--threads N]
//! rqm estimate   <in.f32> --shape 64x64x64 [--abs 1e-3] [--rate 0.01]
//!                [--predictor …]           # model-only, no compression
//! rqm info       <in.rqc>
//! ```
//!
//! `--threads`/`--chunk-size` switch to the chunk-parallel pipeline
//! (container format v2): the field is split into axis-0 slabs of
//! `--chunk-size` rows (default: auto-sized to the thread count), chunks
//! are compressed concurrently, and `decompress` decodes them concurrently
//! too. Plain `compress` without either flag keeps the serial v1 format.
//!
//! `--codec` selects the per-chunk backend: `sz` (default, the prediction
//! path), `zfp` (the transform path) or `auto`, which evaluates a sampled
//! ratio estimate per chunk and picks the cheaper codec. Non-`sz` codecs
//! write container v2.1, whose chunk index tags every chunk with the
//! codec that produced it (shown by `rqm info`), and imply auto-chunking
//! unless `--chunk-size` is given.
//!
//! Raw inputs are little-endian `f32` streams in row-major order.

mod args;
mod io;

use args::Args;
use rq_compress::{
    compress_with_report, container::peek_header, decompress, ChunkCodecKind, CodecChoice,
    CompressorConfig,
};
use rq_core::RqModel;
use rq_grid::NdArray;
use rq_quant::ErrorBoundMode;
use std::process::ExitCode;

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    match run(raw) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("rqm: {e}");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage:
  rqm compress   <in.f32> <out.rqc> --shape NxNxN --abs EB [--rel R]
                 [--predictor interpolation|lorenzo|lorenzo2|regression]
                 [--huffman-only] [--codec sz|zfp|auto]
                 [--threads N] [--chunk-size ROWS]
  rqm decompress <in.rqc> <out.f32> [--threads N]
  rqm estimate   <in.f32> --shape NxNxN [--abs EB] [--rate 0.01] [--predictor P]
  rqm info       <in.rqc>";

fn run(raw: Vec<String>) -> Result<(), String> {
    let args = Args::parse(raw)?;
    let cmd = args.positional.first().map(String::as_str).unwrap_or("");
    match cmd {
        "compress" => cmd_compress(&args),
        "decompress" => cmd_decompress(&args),
        "estimate" => cmd_estimate(&args),
        "info" => cmd_info(&args),
        "" => Err("no command given".into()),
        other => Err(format!("unknown command '{other}'")),
    }
}

fn bound_from(args: &Args) -> Result<ErrorBoundMode, String> {
    match (args.float("abs")?, args.float("rel")?) {
        (Some(eb), None) => Ok(ErrorBoundMode::Abs(eb)),
        (None, Some(r)) => Ok(ErrorBoundMode::ValueRangeRelative(r)),
        (Some(_), Some(_)) => Err("--abs and --rel are mutually exclusive".into()),
        (None, None) => Err("need an error bound: --abs EB or --rel R".into()),
    }
}

fn cmd_compress(args: &Args) -> Result<(), String> {
    let [_, input, output] = positional::<3>(args)?;
    let shape = args.shape()?;
    let field = io::read_raw_f32(&input, shape)?;
    let bound = bound_from(args)?;

    let codec = match args.get("codec").unwrap_or("sz") {
        "sz" => CodecChoice::Sz,
        "zfp" => CodecChoice::Zfp,
        "auto" => CodecChoice::Auto,
        other => return Err(format!("unknown codec '{other}' (sz|zfp|auto)")),
    };
    let mut cfg = CompressorConfig::new(args.predictor()?, bound).with_codec(codec);
    if args.flag("huffman-only") {
        cfg = cfg.huffman_only();
    }
    let threads = args.unsigned("threads")?;
    let chunk_rows = args.unsigned("chunk-size")?;
    if threads.is_some() || chunk_rows.is_some() {
        cfg = match chunk_rows {
            Some(0) => return Err("--chunk-size must be positive".into()),
            Some(rows) => cfg.chunked(rows),
            None => cfg.auto_chunked(),
        };
        cfg = cfg.with_threads(threads.unwrap_or(0));
    } else if codec != CodecChoice::Sz {
        // The adaptive codecs decide per chunk; give them chunks to
        // decide over even when no explicit chunking was requested. A
        // fixed chunk-count target (not thread-derived auto sizing) keeps
        // the output bytes machine-independent.
        cfg = cfg.chunked(rq_grid::auto_chunk_rows(shape, 16, 1 << 15));
    }
    let (out, rep) =
        compress_with_report(&field, &cfg).map_err(|e| format!("compression failed: {e}"))?;
    let n_zfp =
        rep.chunk_codecs.iter().filter(|&&c| c == ChunkCodecKind::Zfp).count();
    let codec_note = match codec {
        CodecChoice::Sz => String::new(),
        CodecChoice::Zfp => "codec zfp, ".into(),
        CodecChoice::Auto => {
            format!("codec auto ({} sz / {n_zfp} zfp), ", rep.n_chunks - n_zfp)
        }
    };
    // Predictor/p0 describe the prediction path; omit them when every
    // chunk went through the transform codec and they never ran.
    let predictor_note = if n_zfp < rep.n_chunks {
        format!("predictor {}, p0 {:.3}, ", cfg.predictor.name(), rep.p0())
    } else {
        String::new()
    };
    let summary = format!(
        "{codec_note}{predictor_note}ratio {:.2}, {:.3} bits/value{}",
        out.ratio(),
        out.bit_rate(),
        if rep.n_chunks > 1 {
            format!(", {} chunks × {} threads", rep.n_chunks, cfg.resolved_threads())
        } else {
            String::new()
        }
    );
    io::write_bytes(&output, &out.bytes)?;
    println!("{input} -> {output}: {} -> {} bytes ({summary})", field.len() * 4, out.bytes.len());
    Ok(())
}

fn cmd_decompress(args: &Args) -> Result<(), String> {
    let [_, input, output] = positional::<3>(args)?;
    let bytes = io::read_bytes(&input)?;
    let field: NdArray<f32> = if bytes.starts_with(b"RQZF") {
        rq_zfp::zfp_decompress(&bytes).map_err(|e| format!("zfp decompression failed: {e}"))?
    } else if let Some(threads) = args.unsigned("threads")? {
        rq_compress::decompress_with_threads(&bytes, threads)
            .map_err(|e| format!("decompression failed: {e}"))?
    } else {
        decompress(&bytes).map_err(|e| format!("decompression failed: {e}"))?
    };
    io::write_raw_f32(&output, &field)?;
    println!(
        "{input} -> {output}: {:?}, {} values",
        field.shape(),
        field.len()
    );
    Ok(())
}

fn cmd_estimate(args: &Args) -> Result<(), String> {
    let [_, input] = positional::<2>(args)?;
    let shape = args.shape()?;
    let field = io::read_raw_f32(&input, shape)?;
    let rate = args.float("rate")?.unwrap_or(0.01);
    let predictor = args.predictor()?;
    let model = RqModel::build(&field, predictor, rate, 42);
    println!(
        "model: {} predictor, {} samples in {:?}",
        predictor.name(),
        model.sample().len(),
        model.build_time()
    );
    let range = field.value_range();
    let ebs: Vec<f64> = match args.float("abs")? {
        Some(eb) => vec![eb],
        None => (0..6).map(|i| range * 1e-6 * 10f64.powi(i)).collect(),
    };
    println!(
        "{:>12} {:>10} {:>8} {:>9} {:>9} {:>9}",
        "error bound", "bits/val", "ratio", "PSNR(dB)", "SSIM", "p0"
    );
    for eb in ebs {
        let est = model.estimate(eb);
        println!(
            "{eb:>12.3e} {:>10.3} {:>8.2} {:>9.2} {:>9.5} {:>9.4}",
            est.bit_rate, est.ratio, est.psnr, est.ssim, est.p0
        );
    }
    Ok(())
}

fn cmd_info(args: &Args) -> Result<(), String> {
    let [_, input] = positional::<2>(args)?;
    let bytes = io::read_bytes(&input)?;
    if bytes.starts_with(b"RQZF") {
        println!("{input}: RQZF transform-codec stream, {} bytes", bytes.len());
        return Ok(());
    }
    let h = peek_header(&bytes).map_err(|e| format!("not a compressed container: {e}"))?;
    println!("{input}: RQMC container v{}, {} bytes", h.version, bytes.len());
    println!("  shape:      {:?}", h.shape);
    println!("  scalar:     {}", if h.scalar_tag == 0x04 { "f32" } else { "f64" });
    println!("  predictor:  {}", h.predictor.name());
    println!("  abs bound:  {:.6e}", h.abs_eb);
    println!("  radius:     {}", h.radius);
    println!("  lossless:   {:?}", h.lossless);
    println!("  log xform:  {}", h.log_transform);
    let table =
        rq_compress::chunk_table(&bytes).map_err(|e| format!("bad chunk index: {e}"))?;
    let scalar_bytes = if h.scalar_tag == 0x04 { 4 } else { 8 };
    if h.version >= 2 {
        println!("  chunks:     {} × {} rows", table.entries.len(), table.chunk_rows);
        let row_elems: usize = h.shape.dims()[1..].iter().product::<usize>().max(1);
        for e in &table.entries {
            // Per-chunk ratio from the chunk index: slab raw size over the
            // blob's compressed size.
            let chunk_ratio = (e.rows * row_elems * scalar_bytes) as f64 / e.len.max(1) as f64;
            println!(
                "    rows {:>6}..{:<6} {:>10} bytes at {:<10} {:>5} ratio {:>8.2}",
                e.start_row,
                e.start_row + e.rows,
                e.len,
                e.offset,
                e.codec.name(),
                chunk_ratio,
            );
        }
    }
    let ratio = (h.shape.len() * scalar_bytes) as f64 / bytes.len() as f64;
    println!("  ratio:      {ratio:.2}");
    Ok(())
}

/// Exactly `N` positional arguments (including the command) or an error.
fn positional<const N: usize>(args: &Args) -> Result<[String; N], String> {
    if args.positional.len() != N {
        return Err(format!(
            "expected {} positional arguments, got {}",
            N - 1,
            args.positional.len() - 1
        ));
    }
    Ok(std::array::from_fn(|i| args.positional[i].clone()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rq_grid::Shape;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("rqm_cli_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn run_args(v: &[&str]) -> Result<(), String> {
        run(v.iter().map(|s| s.to_string()).collect())
    }

    fn write_field(path: &std::path::Path) -> NdArray<f32> {
        let f = NdArray::<f32>::from_fn(Shape::d2(20, 30), |ix| {
            ((ix[0] as f32) * 0.3).sin() + ix[1] as f32 * 0.05
        });
        io::write_raw_f32(path.to_str().unwrap(), &f).unwrap();
        f
    }

    #[test]
    fn compress_decompress_cycle() {
        let raw = tmp("a.f32");
        let rqc = tmp("a.rqc");
        let back = tmp("a.out.f32");
        let f = write_field(&raw);
        run_args(&[
            "compress",
            raw.to_str().unwrap(),
            rqc.to_str().unwrap(),
            "--shape",
            "20x30",
            "--abs",
            "1e-3",
        ])
        .unwrap();
        run_args(&["decompress", rqc.to_str().unwrap(), back.to_str().unwrap()]).unwrap();
        let g = io::read_raw_f32(back.to_str().unwrap(), Shape::d2(20, 30)).unwrap();
        for (&a, &b) in f.as_slice().iter().zip(g.as_slice()) {
            assert!((a - b).abs() <= 1e-3 * 1.001);
        }
    }

    #[test]
    fn parallel_compress_decompress_cycle() {
        let raw = tmp("p.f32");
        let rqc = tmp("p.rqc");
        let back = tmp("p.out.f32");
        let f = write_field(&raw);
        run_args(&[
            "compress",
            raw.to_str().unwrap(),
            rqc.to_str().unwrap(),
            "--shape",
            "20x30",
            "--abs",
            "1e-3",
            "--threads",
            "2",
            "--chunk-size",
            "6",
        ])
        .unwrap();
        let h = peek_header(&io::read_bytes(rqc.to_str().unwrap()).unwrap()).unwrap();
        assert_eq!(h.version, 2);
        run_args(&["info", rqc.to_str().unwrap()]).unwrap();
        run_args(&[
            "decompress",
            rqc.to_str().unwrap(),
            back.to_str().unwrap(),
            "--threads",
            "2",
        ])
        .unwrap();
        let g = io::read_raw_f32(back.to_str().unwrap(), Shape::d2(20, 30)).unwrap();
        for (&a, &b) in f.as_slice().iter().zip(g.as_slice()) {
            assert!((a - b).abs() <= 1e-3 * 1.001);
        }
        assert!(
            run_args(&[
                "compress",
                raw.to_str().unwrap(),
                rqc.to_str().unwrap(),
                "--shape",
                "20x30",
                "--abs",
                "1e-3",
                "--chunk-size",
                "0",
            ])
            .is_err(),
            "zero chunk size must be rejected"
        );
    }

    #[test]
    fn zfp_codec_cycle() {
        let raw = tmp("z.f32");
        let rqz = tmp("z.rqz");
        let back = tmp("z.out.f32");
        let f = write_field(&raw);
        run_args(&[
            "compress",
            raw.to_str().unwrap(),
            rqz.to_str().unwrap(),
            "--shape",
            "20x30",
            "--abs",
            "1e-2",
            "--codec",
            "zfp",
        ])
        .unwrap();
        run_args(&["decompress", rqz.to_str().unwrap(), back.to_str().unwrap()]).unwrap();
        let g = io::read_raw_f32(back.to_str().unwrap(), Shape::d2(20, 30)).unwrap();
        for (&a, &b) in f.as_slice().iter().zip(g.as_slice()) {
            assert!((a - b).abs() <= 1e-2 * 1.001);
        }
    }

    #[test]
    fn auto_codec_cycle() {
        let raw = tmp("ac.f32");
        let rqc = tmp("ac.rqc");
        let back = tmp("ac.out.f32");
        let f = write_field(&raw);
        run_args(&[
            "compress",
            raw.to_str().unwrap(),
            rqc.to_str().unwrap(),
            "--shape",
            "20x30",
            "--abs",
            "1e-3",
            "--codec",
            "auto",
            "--chunk-size",
            "5",
        ])
        .unwrap();
        let bytes = io::read_bytes(rqc.to_str().unwrap()).unwrap();
        assert_eq!(peek_header(&bytes).unwrap().version, 3, "auto codec writes v2.1");
        run_args(&["info", rqc.to_str().unwrap()]).unwrap();
        run_args(&["decompress", rqc.to_str().unwrap(), back.to_str().unwrap()]).unwrap();
        let g = io::read_raw_f32(back.to_str().unwrap(), Shape::d2(20, 30)).unwrap();
        for (&a, &b) in f.as_slice().iter().zip(g.as_slice()) {
            assert!((a - b).abs() <= 1e-3 * 1.001);
        }
        assert!(
            run_args(&[
                "compress",
                raw.to_str().unwrap(),
                rqc.to_str().unwrap(),
                "--shape",
                "20x30",
                "--abs",
                "1e-3",
                "--codec",
                "dct",
            ])
            .is_err(),
            "unknown codec must be rejected"
        );
    }

    #[test]
    fn estimate_and_info_run() {
        let raw = tmp("e.f32");
        let rqc = tmp("e.rqc");
        write_field(&raw);
        run_args(&["estimate", raw.to_str().unwrap(), "--shape", "20x30"]).unwrap();
        run_args(&[
            "compress",
            raw.to_str().unwrap(),
            rqc.to_str().unwrap(),
            "--shape",
            "20x30",
            "--abs",
            "1e-3",
            "--predictor",
            "lorenzo",
        ])
        .unwrap();
        run_args(&["info", rqc.to_str().unwrap()]).unwrap();
    }

    #[test]
    fn error_cases() {
        assert!(run_args(&[]).is_err());
        assert!(run_args(&["frobnicate"]).is_err());
        assert!(run_args(&["compress", "a", "b", "--shape", "4x4"]).is_err(), "no bound");
        assert!(
            run_args(&["compress", "a", "b", "--shape", "4x4", "--abs", "1", "--rel", "1"])
                .is_err(),
            "conflicting bounds"
        );
        assert!(run_args(&["decompress", "/nonexistent/x", "/tmp/y"]).is_err());
    }
}
