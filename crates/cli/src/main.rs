//! `rqm` — command-line front end for the compressor and the model.
//!
//! ```text
//! rqm compress   <in.f32> <out.rqc> --shape 64x64x64 --abs 1e-3
//!                [--predictor interpolation|lorenzo|lorenzo2|regression]
//!                [--rel 1e-3] [--target-psnr DB] [--target-size BYTES]
//!                [--huffman-only] [--codec sz|zfp|rolz|auto]
//!                [--threads N] [--chunk-size ROWS]
//! rqm decompress <in.rqc> <out.f32> [--threads N]
//! rqm estimate   <in.f32> --shape 64x64x64 [--abs 1e-3] [--rate 0.01]
//!                [--predictor …]           # model-only, no compression
//! rqm info       <in.rqc> [--json]
//! rqm pack       <out.rqc> --steps N --shape D0xD1xD2 --abs EB
//!                [--datasets a,b,c] [--keyframe-every K] [--seed S]
//!                [--predictor P] [--chunk-size ROWS]
//!                [--input raw.f32 [--dataset NAME]]
//! rqm unpack     <in.rqc> <outdir> [--dataset NAME] [--step T]
//! rqm catalog    <in.rqc> [--json]
//! rqm serve      <in.rqc> --addr HOST:PORT [--cache-bytes N] [--threads N]
//!                [--metrics-every SECS]
//! rqm read       --addr HOST:PORT [--rows A..B | --chunk I] [--out FILE]
//!                [--stats] [--list] [--dataset NAME [--step T]]
//! ```
//!
//! **Quality-targeted compression** (`--target-psnr` / `--target-size`,
//! mutually exclusive with `--abs`/`--rel`): instead of a hand-picked
//! error bound, the user states the goal — a PSNR floor in dB or a size
//! ceiling in bytes — and the ratio-quality model picks **per-chunk**
//! error bounds. A streaming pre-pass samples prediction errors per
//! axis-0 chunk (deterministic strided sampling, no RNG), fits one
//! `RqModel` per chunk, and runs the §IV-C water-filling planner (PSNR
//! floor) or the §IV-B budget optimizer (size ceiling). The planned
//! bounds go through the same streaming session and are recorded in
//! container **v2.3** (per-chunk `eb` next to the codec tag in the
//! trailer index — shown by `rqm info`). Quiet chunks get loose bounds,
//! turbulent chunks tight ones, so the archive is smaller than any single
//! global bound meeting the same target.
//!
//! `--threads`/`--chunk-size` switch to the **streaming** chunk-parallel
//! pipeline (container format v2.2): the input file is read in axis-0
//! slabs of `--chunk-size` rows (default: auto-sized to the thread
//! count), each slab is compressed concurrently through the
//! `rq_compress::ArchiveWriter` session, and blobs go straight to the
//! output file with the chunk index in a trailer — peak memory stays at a
//! few slabs no matter how large the field is. Plain `compress` without
//! either flag keeps the serial in-memory v1 format.
//!
//! `decompress` streams for every thread count: rows flow from the
//! archive to the output through `rq_compress::ArchiveReader`'s bounded
//! read-ahead window, so peak memory is a few chunks no matter how large
//! the field is. With `--threads N` chunk *decoding* fans out to N
//! workers while extents are still read sequentially — the output bytes
//! are identical at every thread count, only the wall time changes.
//!
//! `--codec` selects the per-chunk backend: `sz` (default, the prediction
//! path), `zfp` (the transform path), `rolz` (the prediction front end
//! with a reduced-offset-LZ back end over the quantization codes,
//! container v2.4) or `auto`, which estimates all three per chunk and
//! picks the cheapest. The chunk index tags every chunk with the codec
//! that produced it (shown by `rqm info`); non-`sz` codecs imply chunking
//! even without `--chunk-size`.
//!
//! `rqm info --json` emits the header and the per-chunk table
//! (offset/bytes/codec/ratio per chunk) as machine-readable JSON.
//!
//! `rqm serve` exposes an archive to remote readers over the
//! `docs/PROTOCOL.md` TCP protocol: thread-per-connection, with a
//! `--cache-bytes`-budgeted LRU of decoded chunks and single-flight
//! coalescing so a hot chunk is decoded once no matter how many clients
//! ask for it (`--threads` caps concurrent connections;
//! `--metrics-every` logs a stats line). `rqm read` is the matching
//! client: fetch a row range or a single chunk into a raw
//! little-endian file, and `--stats` prints the server's counters.
//!
//! **Temporal catalogs** (`pack` / `unpack` / `catalog`): a whole
//! simulation — N named datasets, each a sequence of time steps — goes
//! into one `RQCAT` container. Steps are stored as embedded single-field
//! archives; every `--keyframe-every`-th step is self-contained and the
//! steps between code *residuals* against the reconstruction of the
//! previous step (the temporal-delta predictor), so slowly-evolving
//! fields cost a fraction of independent archives while every step still
//! honors the dataset's absolute bound. Without `--input`, `pack` pulls
//! its steps from the seeded RTM wavefield generator (one independent
//! physics perturbation per dataset name); with `--input` it packs a raw
//! little-endian f32 file holding `--steps` concatenated fields. `rqm
//! info`, `rqm serve` and `rqm read` all recognize catalogs: `info`
//! summarizes the index, `serve` answers the protocol-v2
//! `LIST_DATASETS`/`READ_STEP_ROWS` requests over it, and `read --list`
//! / `--dataset NAME --step T` are the matching client sides.
//!
//! Raw inputs are little-endian `f32` streams in row-major order.

mod args;
mod io;

use args::Args;
use rq_catalog::{is_catalog_magic, CatalogIndex, CatalogReader, CatalogWriter};
use rq_compress::{
    compress_with_report, generation_name, json_f64, ArchiveReader, ArchiveWriter, ChunkCodecKind,
    CodecChoice, CompressionReport, CompressorConfig, Header,
};
use rq_core::RqModel;
use rq_grid::{NdArray, Shape, MAX_DIMS};
use rq_quant::ErrorBoundMode;
use rq_serve::{Client, DatasetInfo, ServeConfig, Server};
use std::io::{Read, Write};
use std::process::ExitCode;

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    match run(raw) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("rqm: {e}");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage:
  rqm compress   <in.f32> <out.rqc> --shape NxNxN --abs EB [--rel R]
                 [--target-psnr DB] [--target-size BYTES]
                 [--predictor interpolation|lorenzo|lorenzo2|regression]
                 [--huffman-only] [--codec sz|zfp|rolz|auto]
                 [--threads N] [--chunk-size ROWS]
  rqm decompress <in.rqc> <out.f32> [--threads N]
  rqm estimate   <in.f32> --shape NxNxN [--abs EB] [--rate 0.01] [--predictor P]
  rqm info       <in.rqc> [--json]
  rqm pack       <out.rqc> --steps N --shape D0xD1xD2 --abs EB
                 [--datasets a,b,c] [--keyframe-every K] [--seed S]
                 [--predictor P] [--chunk-size ROWS]
                 [--input raw.f32 [--dataset NAME]]
  rqm unpack     <in.rqc> <outdir> [--dataset NAME] [--step T]
  rqm catalog    <in.rqc> [--json]
  rqm serve      <in.rqc> --addr HOST:PORT [--cache-bytes N] [--threads N]
                 [--metrics-every SECS]
  rqm read       --addr HOST:PORT [--rows A..B | --chunk I] [--out FILE]
                 [--stats] [--list] [--dataset NAME [--step T]]";

fn run(raw: Vec<String>) -> Result<(), String> {
    let args = Args::parse(raw)?;
    let cmd = args.positional.first().map(String::as_str).unwrap_or("");
    match cmd {
        "compress" => cmd_compress(&args),
        "decompress" => cmd_decompress(&args),
        "estimate" => cmd_estimate(&args),
        "info" => cmd_info(&args),
        "pack" => cmd_pack(&args),
        "unpack" => cmd_unpack(&args),
        "catalog" => cmd_catalog(&args),
        "serve" => cmd_serve(&args),
        "read" => cmd_read(&args),
        "" => Err("no command given".into()),
        other => Err(format!("unknown command '{other}'")),
    }
}

/// What the user asked the compressor to honor: a hand-picked bound, or a
/// quality/size target the ratio-quality model turns into per-chunk
/// bounds.
enum Goal {
    /// A fixed error bound (`--abs` / `--rel`).
    Fixed(ErrorBoundMode),
    /// A measured-quality floor in dB (`--target-psnr`).
    Psnr(f64),
    /// An archive-size ceiling in bytes (`--target-size`).
    Size(usize),
}

fn goal_from(args: &Args) -> Result<Goal, String> {
    let abs = args.float("abs")?;
    let rel = args.float("rel")?;
    let psnr = args.float("target-psnr")?;
    let size = args.unsigned("target-size")?;
    let given =
        [abs.is_some(), rel.is_some(), psnr.is_some(), size.is_some()].iter().filter(|&&g| g).count();
    if given > 1 {
        return Err(
            "--abs, --rel, --target-psnr and --target-size are mutually exclusive".into()
        );
    }
    if let Some(eb) = abs {
        return Ok(Goal::Fixed(ErrorBoundMode::Abs(eb)));
    }
    if let Some(r) = rel {
        return Ok(Goal::Fixed(ErrorBoundMode::ValueRangeRelative(r)));
    }
    if let Some(t) = psnr {
        if !t.is_finite() {
            return Err(format!("--target-psnr: {t} is not a finite dB value"));
        }
        return Ok(Goal::Psnr(t));
    }
    if let Some(b) = size {
        if b == 0 {
            return Err("--target-size must be positive".into());
        }
        return Ok(Goal::Size(b));
    }
    Err("need an error bound (--abs EB | --rel R) or a target (--target-psnr DB | --target-size BYTES)".into())
}

/// Shape of an axis-0 slab of `rows` rows cut from a field of `shape`.
fn slab_shape(shape: Shape, rows: usize) -> Shape {
    let mut dims = [0usize; MAX_DIMS];
    dims[..shape.ndim()].copy_from_slice(shape.dims());
    dims[0] = rows;
    Shape::new(&dims[..shape.ndim()])
}

/// One bounded-memory pass over a raw `f32` file: the value range
/// (max − min, NaNs ignored), for resolving `--rel` without loading the
/// field.
fn stream_value_range(input: &str, shape: Shape) -> Result<f64, String> {
    let mut src = std::io::BufReader::new(io::open_raw_f32(input, shape)?);
    let mut remaining = shape.len();
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    let mut buf = vec![0u8; 4 << 20];
    while remaining > 0 {
        let take = remaining.min(buf.len() / 4);
        let chunk = &mut buf[..take * 4];
        src.read_exact(chunk).map_err(|e| format!("{input}: {e}"))?;
        for quad in chunk.chunks_exact(4) {
            let v = f32::from_le_bytes(quad.try_into().unwrap()) as f64;
            if v.is_nan() {
                continue;
            }
            lo = lo.min(v);
            hi = hi.max(v);
        }
        remaining -= take;
    }
    if lo > hi {
        return Err(format!("{input}: all values are NaN"));
    }
    Ok(hi - lo)
}

/// Error-sample budget per chunk for the quality-targeted pre-pass
/// (deterministic strided sampling — a few % of typical chunk sizes, in
/// the spirit of the paper's 1 % pass).
const PLAN_SAMPLES_PER_CHUNK: usize = 4096;

/// Candidate error bounds per chunk for the planners' grids.
const PLAN_GRID_POINTS: usize = 32;

/// Safety margin (dB) added to a `--target-psnr` floor before planning:
/// a floor must be met by the *measured* quality, not the model estimate,
/// so the plan aims above the floor by the model's known PSNR-error band.
/// The interpolation predictor's multi-level reconstruction feedback is
/// the hardest part of the quality model (its cascade correction is
/// calibrated, not derived), so it gets the widest band.
fn psnr_plan_margin(predictor: rq_predict::PredictorKind) -> f64 {
    match predictor {
        rq_predict::PredictorKind::Interpolation => 2.5,
        _ => 1.5,
    }
}

/// Safety margin for `--target-size`: plan for 80 % of the budget (the
/// paper's §IV-B rule), so estimate error cannot overflow the ceiling.
const SIZE_PLAN_MARGIN: f64 = 0.2;

/// When the round-1 archive overshoots a `--target-psnr` floor by more
/// than this, a measured-feedback round hands the surplus quality back.
const PSNR_LOOSEN_THRESHOLD_DB: f64 = 0.75;

/// Where the feedback round aims: just above the user's floor, so model
/// noise cannot drop the delivered quality below it.
const PSNR_AIM_GUARD_DB: f64 = 0.35;

/// The outcome of the quality-targeted pre-pass: one bound per chunk plus
/// the planner's own expectations (echoed so the user can compare the
/// prediction against the actual archive).
struct ChunkPlan {
    ebs: Vec<f64>,
    est_psnr: f64,
    est_bytes: f64,
}

/// Measured feedback from one verification pass over a written archive:
/// the aggregate PSNR plus the per-chunk `measured / modeled` scales that
/// anchor the second planning round.
struct MeasuredRound {
    psnr: f64,
    correction: rq_core::usecases::PlanCorrection,
}

/// Streaming verification pass: decode the archive chunk by chunk,
/// compare against the raw input, and return the measured aggregate PSNR
/// plus per-chunk model corrections at the plan's bounds. Peak memory is
/// one chunk of each.
fn measure_planned_archive(
    input: &str,
    output: &str,
    shape: Shape,
    models: &[RqModel],
    ebs: &[f64],
    range: f64,
) -> Result<MeasuredRound, String> {
    let mut src = std::io::BufReader::new(io::open_raw_f32(input, shape)?);
    let archive = std::fs::File::open(output).map_err(|e| format!("{output}: {e}"))?;
    let mut reader =
        ArchiveReader::open(archive).map_err(|e| format!("verification failed: {e}"))?;
    let entries = reader.entries().to_vec();
    let mut measured_sigma2 = Vec::with_capacity(entries.len());
    let mut measured_bits = Vec::with_capacity(entries.len());
    let mut sq_total = 0.0f64;
    let mut n_total = 0usize;
    for (chunk, entry) in entries.iter().enumerate() {
        let cshape = slab_shape(shape, entry.rows);
        let orig = io::read_f32_slab(&mut src, cshape).map_err(|e| format!("{input}: {e}"))?;
        let (_, recon) = reader
            .read_chunk::<f32>(chunk)
            .map_err(|e| format!("verification failed: {e}"))?;
        let mut sq = 0.0f64;
        for (&a, &b) in orig.as_slice().iter().zip(recon.as_slice()) {
            sq += ((a - b) as f64).powi(2);
        }
        measured_sigma2.push(sq / orig.len() as f64);
        measured_bits.push(entry.len as f64 * 8.0 / orig.len() as f64);
        sq_total += sq;
        n_total += orig.len();
    }
    let mse = sq_total / n_total.max(1) as f64;
    let psnr = if mse > 0.0 { 20.0 * range.log10() - 10.0 * mse.log10() } else { f64::INFINITY };
    Ok(MeasuredRound {
        psnr,
        correction: rq_core::usecases::PlanCorrection::from_measured(
            models,
            ebs,
            &measured_sigma2,
            &measured_bits,
        ),
    })
}

/// Per-chunk models from one streaming pre-pass over the raw input: walk
/// the file chunk by chunk (the exact partition the writer will encode),
/// fit one deterministic ratio-quality model per chunk, and track the
/// global value range. Returns `(models, sizes, range)`.
fn chunk_models(
    input: &str,
    shape: Shape,
    cfg: &CompressorConfig,
) -> Result<(Vec<RqModel>, Vec<usize>, f64), String> {
    let chunk_rows = rq_compress::resolved_chunk_rows(cfg, shape);
    let d0 = shape.dim(0);
    let mut src = std::io::BufReader::new(io::open_raw_f32(input, shape)?);
    let mut models: Vec<RqModel> = Vec::with_capacity(d0.div_ceil(chunk_rows));
    let mut sizes: Vec<usize> = Vec::with_capacity(models.capacity());
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    let mut row = 0usize;
    while row < d0 {
        let rows = chunk_rows.min(d0 - row);
        let cshape = slab_shape(shape, rows);
        let slab = io::read_f32_slab(&mut src, cshape).map_err(|e| format!("{input}: {e}"))?;
        for &v in slab.as_slice() {
            let v = v as f64;
            if !v.is_nan() {
                lo = lo.min(v);
                hi = hi.max(v);
            }
        }
        models.push(RqModel::build_strided(
            slab.as_slice(),
            cshape,
            cfg.predictor,
            PLAN_SAMPLES_PER_CHUNK,
        ));
        sizes.push(slab.len());
        row += rows;
    }
    if lo > hi {
        return Err(format!("{input}: all values are NaN"));
    }
    Ok((models, sizes, hi - lo))
}

/// Run the §IV planner matching the goal over per-chunk models. Planner
/// failures surface as [`rq_compress::CompressError::InvalidConfig`].
/// PSNR-goal planning with an explicit model-space target and optional
/// measured-feedback correction (the second-round path).
fn plan_psnr_corrected(
    models: &[RqModel],
    sizes: &[usize],
    range: f64,
    target_est: f64,
    correction: Option<&rq_core::usecases::PlanCorrection>,
) -> Result<ChunkPlan, String> {
    let n_elements: usize = sizes.iter().sum();
    rq_core::usecases::optimize_partitions_corrected(
        models,
        sizes,
        range,
        target_est,
        PLAN_GRID_POINTS,
        correction,
    )
    .map(|plan| ChunkPlan {
        est_psnr: plan.est_psnr,
        est_bytes: plan.est_bit_rate * n_elements as f64 / 8.0,
        ebs: plan.ebs,
    })
    .map_err(|e| {
        format!(
            "compression failed: {}",
            rq_compress::CompressError::InvalidConfig(e.to_string())
        )
    })
}

fn plan_for(
    models: &[RqModel],
    sizes: &[usize],
    range: f64,
    goal: &Goal,
    predictor: rq_predict::PredictorKind,
) -> Result<ChunkPlan, String> {
    let n_elements: usize = sizes.iter().sum();
    let plan = match *goal {
        Goal::Psnr(t) => {
            return plan_psnr_corrected(models, sizes, range, t + psnr_plan_margin(predictor), None)
        }
        Goal::Size(bytes) => rq_core::usecases::plan_budget(
            models,
            sizes,
            range,
            bytes,
            SIZE_PLAN_MARGIN,
            PLAN_GRID_POINTS,
        ),
        Goal::Fixed(_) => unreachable!("fixed bounds are not planned"),
    }
    .map_err(|e| {
        // A planner failure is a configuration problem (target unreachable,
        // budget too small, …): surface it exactly as the compressor's
        // typed InvalidConfig error.
        format!(
            "compression failed: {}",
            rq_compress::CompressError::InvalidConfig(e.to_string())
        )
    })?;
    Ok(ChunkPlan {
        ebs: plan.ebs,
        est_psnr: plan.est_psnr,
        est_bytes: plan.est_bit_rate * n_elements as f64 / 8.0,
    })
}

/// Streaming compression: read the input in slabs, feed the archive
/// writer, never hold more than a few slabs in memory. With `plan`, the
/// session runs in quality-targeted mode (one bound per chunk, container
/// v2.3).
fn stream_compress(
    input: &str,
    output: &str,
    shape: Shape,
    mut cfg: CompressorConfig,
    plan: Option<Vec<f64>>,
) -> Result<CompressionReport, String> {
    // A value-range-relative bound needs the global range before the
    // first slab; one cheap streaming pass resolves it to an absolute
    // bound (identical to what the in-memory pipeline would compute).
    // Planned sessions carry explicit absolute bounds instead.
    if plan.is_none() {
        if let ErrorBoundMode::ValueRangeRelative(r) = cfg.bound {
            cfg = cfg.with_bound(ErrorBoundMode::Abs(r * stream_value_range(input, shape)?));
        }
    }
    let mut src = std::io::BufReader::new(io::open_raw_f32(input, shape)?);
    // Blobs stream into a temp file renamed into place at the end, so a
    // failed run cannot clobber an existing archive with a trailer-less
    // (unreadable) partial one.
    let tmp = format!("{output}.rqm-partial");
    let result = (|| -> Result<CompressionReport, String> {
        let sink = std::io::BufWriter::new(
            std::fs::File::create(&tmp).map_err(|e| format!("{tmp}: {e}"))?,
        );
        let mut writer = match plan {
            Some(ebs) => ArchiveWriter::<f32, _>::create_planned(sink, shape, &cfg, ebs),
            None => ArchiveWriter::<f32, _>::create(sink, shape, &cfg),
        }
        .map_err(|e| format!("compression failed: {e}"))?;
        // Feed one batch of chunks per read: enough rows to occupy every
        // worker thread, and the upper bound on resident input data.
        let d0 = shape.dim(0);
        let batch_rows = writer
            .chunk_rows()
            .saturating_mul(cfg.resolved_threads())
            .clamp(writer.chunk_rows(), d0);
        let mut row = 0usize;
        while row < d0 {
            let rows = batch_rows.min(d0 - row);
            let slab = io::read_f32_slab(&mut src, slab_shape(shape, rows))
                .map_err(|e| format!("{input}: {e}"))?;
            writer.write_slab(&slab).map_err(|e| format!("compression failed: {e}"))?;
            row += rows;
        }
        let finished = writer.finalize().map_err(|e| format!("compression failed: {e}"))?;
        finished
            .sink
            .into_inner()
            .map_err(|e| format!("{tmp}: {e}"))?
            .sync_all()
            .map_err(|e| format!("{tmp}: {e}"))?;
        Ok(finished.report)
    })();
    match result {
        Ok(report) => {
            std::fs::rename(&tmp, output).map_err(|e| format!("{output}: {e}"))?;
            Ok(report)
        }
        Err(e) => {
            std::fs::remove_file(&tmp).ok();
            Err(e)
        }
    }
}

fn cmd_compress(args: &Args) -> Result<(), String> {
    let [_, input, output] = positional::<3>(args)?;
    let shape = args.shape()?;
    let goal = goal_from(args)?;

    let codec = match args.get("codec").unwrap_or("sz") {
        "sz" => CodecChoice::Sz,
        "zfp" => CodecChoice::Zfp,
        "rolz" => CodecChoice::Rolz,
        "auto" => CodecChoice::Auto,
        other => return Err(format!("unknown codec '{other}' (sz|zfp|rolz|auto)")),
    };
    // Quality-targeted goals plan absolute per-chunk bounds; the config
    // bound is a placeholder the planned session never reads.
    let bound = match goal {
        Goal::Fixed(b) => b,
        Goal::Psnr(_) | Goal::Size(_) => ErrorBoundMode::Abs(1.0),
    };
    let targeted = !matches!(goal, Goal::Fixed(_));
    let mut cfg = CompressorConfig::new(args.predictor()?, bound).with_codec(codec);
    if args.flag("huffman-only") {
        cfg = cfg.huffman_only();
    }
    let threads = args.unsigned("threads")?;
    let chunk_rows = args.unsigned("chunk-size")?;
    let chunked =
        threads.is_some() || chunk_rows.is_some() || codec != CodecChoice::Sz || targeted;
    if threads.is_some() || chunk_rows.is_some() {
        cfg = match chunk_rows {
            Some(0) => return Err("--chunk-size must be positive".into()),
            Some(rows) => cfg.chunked(rows),
            None => cfg.auto_chunked(),
        };
        cfg = cfg.with_threads(threads.unwrap_or(0));
    } else if chunked {
        // The adaptive codecs and the quality planners decide per chunk;
        // give them chunks to decide over even when no explicit chunking
        // was requested. A fixed chunk-count target (not thread-derived
        // auto sizing) keeps the output bytes machine-independent.
        cfg = cfg.chunked(rq_grid::auto_chunk_rows(shape, 16, 1 << 15));
    }
    if targeted && cfg.chunking == rq_compress::Chunking::Auto {
        // The planner needs the chunk partition before the writer exists;
        // Auto sizing depends on the thread count, which would make the
        // plan (and the bytes) machine-dependent.
        cfg = cfg.chunked(rq_grid::auto_chunk_rows(shape, 16, 1 << 15));
    }

    let mut plan_note = String::new();
    let rep = if targeted {
        // Pre-pass: per-chunk models → per-chunk bounds (container v2.3).
        let (models, sizes, range) = chunk_models(&input, shape, &cfg)?;
        let mut plan = plan_for(&models, &sizes, range, &goal, cfg.predictor)?;
        let mut rep = stream_compress(&input, &output, shape, cfg, Some(plan.ebs.clone()))?;
        let mut rounds = 1usize;
        let mut measured_note = String::new();
        if let Goal::Size(budget) = goal {
            if rep.container_bytes > budget {
                // §IV-B second round: re-plan with a proportionally
                // lowered target and recompress once (the models are
                // already built — only the second write pass repeats).
                let overshoot = rep.container_bytes as f64 / budget as f64;
                let lowered = ((budget as f64 / overshoot).floor() as usize).max(1);
                plan = plan_for(&models, &sizes, range, &Goal::Size(lowered), cfg.predictor)?;
                rep = stream_compress(&input, &output, shape, cfg, Some(plan.ebs.clone()))?;
                rounds = 2;
            }
            if rep.container_bytes > budget {
                // Even the lowered second round overflowed: a ceiling the
                // model cannot honor is a hard failure, not a quietly
                // oversized archive (the output is removed so a failed
                // run leaves no artifact, matching every other error
                // path).
                std::fs::remove_file(&output).ok();
                return Err(format!(
                    "compression failed: {}",
                    rq_compress::CompressError::InvalidConfig(format!(
                        "archive is {} B after {rounds} round(s), over the --target-size \
                         ceiling of {budget} B",
                        rep.container_bytes
                    ))
                ));
            }
        }
        if let Goal::Psnr(t) = goal {
            // §IV-A verification round: measure the delivered quality
            // (streaming, one chunk resident at a time) and re-plan once
            // with the per-chunk measured/modeled corrections — either to
            // rescue a missed floor (rare; the planning margin covers the
            // model's error band) or to hand back quality the margin
            // overshot (smaller archive at the same guarantee).
            let r1 = measure_planned_archive(&input, &output, shape, &models, &plan.ebs, range)?;
            let mut measured = r1.psnr;
            if r1.psnr < t {
                // Tighten: margin + observed deficit + a guard.
                let target2 =
                    t + psnr_plan_margin(cfg.predictor) + (t - r1.psnr) + 0.25;
                plan = plan_psnr_corrected(&models, &sizes, range, target2, Some(&r1.correction))?;
                rep = stream_compress(&input, &output, shape, cfg, Some(plan.ebs.clone()))?;
                measured =
                    measure_planned_archive(&input, &output, shape, &models, &plan.ebs, range)?
                        .psnr;
                rounds = 2;
            } else if r1.psnr > t + PSNR_LOOSEN_THRESHOLD_DB {
                // Loosen toward the target, keeping a small guard above
                // it. The attempt goes to a trial file so an undershoot
                // keeps the round-1 archive without a third encode pass.
                let plan2 = plan_psnr_corrected(
                    &models,
                    &sizes,
                    range,
                    t + PSNR_AIM_GUARD_DB,
                    Some(&r1.correction),
                )?;
                let trial = format!("{output}.rqm-round2");
                let rep2 = stream_compress(&input, &trial, shape, cfg, Some(plan2.ebs.clone()))?;
                let r2 =
                    measure_planned_archive(&input, &trial, shape, &models, &plan2.ebs, range)?;
                if r2.psnr >= t {
                    std::fs::rename(&trial, &output).map_err(|e| format!("{output}: {e}"))?;
                    plan = plan2;
                    rep = rep2;
                    measured = r2.psnr;
                } else {
                    // The corrected loosening undershot: keep round 1.
                    std::fs::remove_file(&trial).ok();
                }
                rounds = 2;
            }
            measured_note = format!(", measured {measured:.1} dB");
        }
        let (eb_lo, eb_hi) = plan
            .ebs
            .iter()
            .fold((f64::INFINITY, 0.0f64), |(lo, hi), &e| (lo.min(e), hi.max(e)));
        let rounds_note = if rounds > 1 { ", 2 rounds" } else { "" };
        let goal_note = match goal {
            Goal::Psnr(t) => format!(
                "target {t:.1} dB, planned est {:.1} dB{measured_note}{rounds_note}",
                plan.est_psnr
            ),
            Goal::Size(b) => format!(
                "target {b} B, planned est {} B ({:.1} dB{rounds_note})",
                plan.est_bytes.round(),
                plan.est_psnr
            ),
            Goal::Fixed(_) => unreachable!(),
        };
        plan_note = format!("{goal_note}, per-chunk eb {eb_lo:.2e}..{eb_hi:.2e}, ");
        rep
    } else if chunked {
        // Chunked: stream slabs through the writer session (container
        // v2.2) — peak RSS is a few slabs, not the field.
        stream_compress(&input, &output, shape, cfg, None)?
    } else {
        // Serial v1: the single causal traversal needs the whole field.
        let field = io::read_raw_f32(&input, shape)?;
        let (out, rep) =
            compress_with_report(&field, &cfg).map_err(|e| format!("compression failed: {e}"))?;
        io::write_bytes(&output, &out.bytes)?;
        rep
    };

    let n_zfp =
        rep.chunk_codecs.iter().filter(|&&c| c == ChunkCodecKind::Zfp).count();
    let n_rolz =
        rep.chunk_codecs.iter().filter(|&&c| c == ChunkCodecKind::Rolz).count();
    let codec_note = match codec {
        CodecChoice::Sz => String::new(),
        CodecChoice::Zfp => "codec zfp, ".into(),
        CodecChoice::Rolz => "codec rolz, ".into(),
        CodecChoice::Auto => {
            format!(
                "codec auto ({} sz / {n_zfp} zfp / {n_rolz} rolz), ",
                rep.n_chunks - n_zfp - n_rolz
            )
        }
    };
    // Predictor/p0 describe the prediction path; omit them when every
    // chunk went through the transform codec and they never ran.
    let predictor_note = if n_zfp < rep.n_chunks {
        format!("predictor {}, p0 {:.3}, ", cfg.predictor.name(), rep.p0())
    } else {
        String::new()
    };
    let summary = format!(
        "{plan_note}{codec_note}{predictor_note}ratio {:.2}, {:.3} bits/value{}",
        rep.overall_ratio(),
        rep.overall_bit_rate(),
        if rep.n_chunks > 1 {
            format!(", {} chunks × {} threads", rep.n_chunks, cfg.resolved_threads())
        } else {
            String::new()
        }
    );
    println!(
        "{input} -> {output}: {} -> {} bytes ({summary})",
        shape.len() * 4,
        rep.container_bytes
    );
    Ok(())
}

fn cmd_decompress(args: &Args) -> Result<(), String> {
    let [_, input, output] = positional::<3>(args)?;
    let mut src = std::fs::File::open(&input).map_err(|e| format!("{input}: {e}"))?;
    let mut magic = [0u8; 6];
    let sniffed = src.read(&mut magic).map_err(|e| format!("{input}: {e}"))?;
    if sniffed >= 6 && is_catalog_magic(&magic) {
        return Err(format!(
            "{input} is an RQCAT temporal catalog, not a single-field archive; \
             use `rqm unpack`"
        ));
    }
    if sniffed >= 4 && &magic[..4] == b"RQZF" {
        // Standalone transform-codec stream: whole-buffer decode.
        let bytes = io::read_bytes(&input)?;
        let field: NdArray<f32> = rq_zfp::zfp_decompress(&bytes)
            .map_err(|e| format!("zfp decompression failed: {e}"))?;
        io::write_raw_f32(&output, &field)?;
        println!("{input} -> {output}: {:?}, {} values", field.shape(), field.len());
        return Ok(());
    }
    // Streaming decode at every thread count: chunk extents are read
    // sequentially (zero-copy off a memory-mapped source where the
    // platform allows), decoding fans out to `--threads` workers behind
    // the reader's bounded read-ahead window, and rows are delivered in
    // order — peak memory is a window of chunks, never the field. Rows
    // stream into a temp file that is renamed into place only after
    // every chunk decoded, so a corrupt archive can neither clobber an
    // existing output nor leave a silently truncated one.
    let threads = args.unsigned("threads")?.unwrap_or(1);
    drop(src);
    let mut reader = ArchiveReader::open_path(&input)
        .map_err(|e| format!("decompression failed: {e}"))?
        .with_threads(threads);
    let shape = reader.header().shape;
    let tmp = format!("{output}.rqm-partial");
    let result = (|| -> Result<u64, String> {
        let mut sink = std::io::BufWriter::new(
            std::fs::File::create(&tmp).map_err(|e| format!("{tmp}: {e}"))?,
        );
        let values = reader
            .decompress_to_writer::<f32, _>(&mut sink)
            .map_err(|e| format!("decompression failed: {e}"))?;
        sink.flush().map_err(|e| format!("{tmp}: {e}"))?;
        Ok(values)
    })();
    match result {
        Ok(values) => {
            std::fs::rename(&tmp, &output).map_err(|e| format!("{output}: {e}"))?;
            let par = if reader.threads() > 1 {
                format!(", {} decode threads", reader.threads())
            } else {
                String::new()
            };
            println!("{input} -> {output}: {shape:?}, {values} values{par}");
            Ok(())
        }
        Err(e) => {
            std::fs::remove_file(&tmp).ok();
            Err(e)
        }
    }
}

fn cmd_estimate(args: &Args) -> Result<(), String> {
    let [_, input] = positional::<2>(args)?;
    let shape = args.shape()?;
    let field = io::read_raw_f32(&input, shape)?;
    let rate = args.float("rate")?.unwrap_or(0.01);
    let predictor = args.predictor()?;
    let model = RqModel::build(&field, predictor, rate, 42);
    println!(
        "model: {} predictor, {} samples in {:?}",
        predictor.name(),
        model.sample().len(),
        model.build_time()
    );
    let range = field.value_range();
    let ebs: Vec<f64> = match args.float("abs")? {
        Some(eb) => vec![eb],
        None => (0..6).map(|i| range * 1e-6 * 10f64.powi(i)).collect(),
    };
    println!(
        "{:>12} {:>10} {:>8} {:>9} {:>9} {:>9}",
        "error bound", "bits/val", "ratio", "PSNR(dB)", "SSIM", "p0"
    );
    for eb in ebs {
        let est = model.estimate(eb);
        println!(
            "{eb:>12.3e} {:>10.3} {:>8.2} {:>9.2} {:>9.5} {:>9.4}",
            est.bit_rate, est.ratio, est.psnr, est.ssim, est.p0
        );
    }
    Ok(())
}

/// Escape a string for a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Emit the header + chunk table as machine-readable JSON (hand-rolled,
/// no dependencies — the structure is flat enough that a serializer
/// would be overkill).
fn print_info_json(input: &str, total_bytes: u64, h: &Header, table: &rq_compress::ChunkTable) {
    println!("{}", info_json_string(input, total_bytes, h, table));
}

/// Build the `rqm info --json` document. Split from the printing so the
/// unit tests can parse the exact bytes a user would see — every float
/// goes through [`json_f64`], so the document stays valid JSON even when
/// a ratio or bound is non-finite.
fn info_json_string(
    input: &str,
    total_bytes: u64,
    h: &Header,
    table: &rq_compress::ChunkTable,
) -> String {
    let scalar_bytes = if h.scalar_tag == 0x04 { 4 } else { 8 };
    let row_elems: usize = h.shape.dims()[1..].iter().product::<usize>().max(1);
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"file\": \"{}\",\n", json_escape(input)));
    out.push_str("  \"format\": \"rqmc\",\n");
    out.push_str(&format!("  \"generation\": \"{}\",\n", generation_name(h.version)));
    out.push_str(&format!("  \"version_byte\": {},\n", h.version));
    out.push_str(&format!("  \"bytes\": {total_bytes},\n"));
    let dims: Vec<String> = h.shape.dims().iter().map(|d| d.to_string()).collect();
    out.push_str(&format!("  \"shape\": [{}],\n", dims.join(", ")));
    out.push_str(&format!(
        "  \"scalar\": \"{}\",\n",
        if h.scalar_tag == 0x04 { "f32" } else { "f64" }
    ));
    out.push_str(&format!("  \"predictor\": \"{}\",\n", h.predictor.name()));
    out.push_str(&format!("  \"abs_bound\": {},\n", json_f64(h.abs_eb)));
    out.push_str(&format!("  \"radius\": {},\n", h.radius));
    out.push_str(&format!(
        "  \"lossless\": {},\n",
        h.lossless != rq_compress::LosslessStage::None
    ));
    out.push_str(&format!("  \"log_transform\": {},\n", h.log_transform));
    let ratio = (h.shape.len() * scalar_bytes) as f64 / (total_bytes as f64).max(1.0);
    out.push_str(&format!("  \"ratio\": {},\n", json_f64(ratio)));
    out.push_str(&format!("  \"chunk_rows\": {},\n", table.chunk_rows));
    out.push_str("  \"chunks\": [\n");
    for (i, e) in table.entries.iter().enumerate() {
        let chunk_ratio = (e.rows * row_elems * scalar_bytes) as f64 / e.len.max(1) as f64;
        out.push_str(&format!(
            "    {{\"index\": {i}, \"start_row\": {}, \"rows\": {}, \"offset\": {}, \
             \"bytes\": {}, \"codec\": \"{}\", \"eb\": {}, \"ratio\": {}}}{}\n",
            e.start_row,
            e.rows,
            e.offset,
            e.len,
            e.codec.name(),
            json_f64(e.eb),
            json_f64(chunk_ratio),
            if i + 1 < table.entries.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}");
    out
}

fn cmd_info(args: &Args) -> Result<(), String> {
    let [_, input] = positional::<2>(args)?;
    let json = args.flag("json");
    let mut src = std::fs::File::open(&input).map_err(|e| format!("{input}: {e}"))?;
    let total_bytes = src.metadata().map_err(|e| format!("{input}: {e}"))?.len();
    let mut magic = [0u8; 6];
    let sniffed = src.read(&mut magic).map_err(|e| format!("{input}: {e}"))?;
    if sniffed >= 6 && is_catalog_magic(&magic) {
        drop(src);
        let reader = CatalogReader::open_path(&input)
            .map_err(|e| format!("not a readable catalog: {e}"))?;
        print_catalog(&input, total_bytes, reader.index(), json);
        return Ok(());
    }
    if sniffed >= 4 && &magic[..4] == b"RQZF" {
        if json {
            println!(
                "{{\n  \"file\": \"{}\",\n  \"format\": \"rqzf\",\n  \"bytes\": {total_bytes}\n}}",
                json_escape(&input)
            );
        } else {
            println!("{input}: RQZF transform-codec stream, {total_bytes} bytes");
        }
        return Ok(());
    }
    // The reader parses only the header and chunk index — `info` never
    // loads the payload, however large the archive.
    drop(src);
    let reader =
        ArchiveReader::open_path(&input).map_err(|e| format!("not a compressed container: {e}"))?;
    let h = reader.header().clone();
    let table = reader.chunk_table();
    if json {
        print_info_json(&input, total_bytes, &h, &table);
        return Ok(());
    }
    println!("{input}: RQMC container v{} ({}), {total_bytes} bytes",
        generation_name(h.version), h.version);
    println!("  shape:      {:?}", h.shape);
    println!("  scalar:     {}", if h.scalar_tag == 0x04 { "f32" } else { "f64" });
    println!("  predictor:  {}", h.predictor.name());
    println!("  abs bound:  {:.6e}", h.abs_eb);
    println!("  radius:     {}", h.radius);
    println!("  lossless:   {:?}", h.lossless);
    println!("  log xform:  {}", h.log_transform);
    let scalar_bytes = if h.scalar_tag == 0x04 { 4 } else { 8 };
    if h.version >= 2 {
        println!("  chunks:     {} × {} rows", table.entries.len(), table.chunk_rows);
        let row_elems: usize = h.shape.dims()[1..].iter().product::<usize>().max(1);
        // Per-chunk bounds only exist in v2.3+ archives (v2.4 keeps the
        // same trailer layout); elsewhere the column would repeat the
        // header bound on every line.
        let planned = h.version >= 5;
        for e in &table.entries {
            // Per-chunk ratio from the chunk index: slab raw size over the
            // blob's compressed size.
            let chunk_ratio = (e.rows * row_elems * scalar_bytes) as f64 / e.len.max(1) as f64;
            let eb_col = if planned { format!(" eb {:>9.3e}", e.eb) } else { String::new() };
            println!(
                "    rows {:>6}..{:<6} {:>10} bytes at {:<10} {:>5}{eb_col} ratio {:>8.2}",
                e.start_row,
                e.start_row + e.rows,
                e.len,
                e.offset,
                e.codec.name(),
                chunk_ratio,
            );
        }
    }
    let ratio = (h.shape.len() * scalar_bytes) as f64 / (total_bytes as f64).max(1.0);
    println!("  ratio:      {ratio:.2}");
    Ok(())
}

/// Summarize a catalog index: one block per dataset, with the per-step
/// segment table and the dataset's overall ratio (raw bytes over segment
/// bytes — the trailer itself is excluded, it is shared bookkeeping).
fn print_catalog(input: &str, total_bytes: u64, index: &CatalogIndex, json: bool) {
    let scalar_name = |tag: u8| if tag == 0x04 { "f32" } else { "f64" };
    let scalar_bytes = |tag: u8| if tag == 0x04 { 4usize } else { 8 };
    if json {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"file\": \"{}\",\n", json_escape(input)));
        out.push_str("  \"format\": \"rqcat\",\n");
        out.push_str(&format!("  \"version_byte\": {},\n", rq_catalog::CATALOG_VERSION));
        out.push_str(&format!("  \"bytes\": {total_bytes},\n"));
        out.push_str("  \"datasets\": [\n");
        for (i, d) in index.datasets.iter().enumerate() {
            let raw = d.steps.len() * d.shape.len() * scalar_bytes(d.scalar_tag);
            let seg: u64 = d.steps.iter().map(|s| s.len).sum();
            let dims: Vec<String> = d.shape.dims().iter().map(|x| x.to_string()).collect();
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"scalar\": \"{}\", \"shape\": [{}], \
                 \"steps\": {}, \"keyframe_every\": {}, \"abs_bound\": {}, \
                 \"segment_bytes\": {seg}, \"ratio\": {}, \"steps_detail\": [\n",
                json_escape(&d.name),
                scalar_name(d.scalar_tag),
                dims.join(", "),
                d.steps.len(),
                d.keyframe_every,
                json_f64(d.steps[0].eb),
                json_f64(raw as f64 / seg.max(1) as f64),
            ));
            for (t, s) in d.steps.iter().enumerate() {
                out.push_str(&format!(
                    "      {{\"step\": {t}, \"keyframe\": {}, \"offset\": {}, \
                     \"bytes\": {}, \"codec\": \"{}\", \"eb\": {}}}{}\n",
                    s.keyframe,
                    s.offset,
                    s.len,
                    s.codec.name(),
                    json_f64(s.eb),
                    if t + 1 < d.steps.len() { "," } else { "" }
                ));
            }
            out.push_str(&format!(
                "    ]}}{}\n",
                if i + 1 < index.datasets.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}");
        println!("{out}");
        return;
    }
    println!(
        "{input}: RQCAT catalog v{}, {total_bytes} bytes, {} dataset(s), {} steps",
        rq_catalog::CATALOG_VERSION,
        index.datasets.len(),
        index.total_steps()
    );
    for d in &index.datasets {
        let raw = d.steps.len() * d.shape.len() * scalar_bytes(d.scalar_tag);
        let seg: u64 = d.steps.iter().map(|s| s.len).sum();
        println!(
            "  {}: {} {:?}, {} steps (keyframe every {}), abs bound {:.3e}",
            d.name,
            scalar_name(d.scalar_tag),
            d.shape,
            d.steps.len(),
            d.keyframe_every,
            d.steps[0].eb,
        );
        for (t, s) in d.steps.iter().enumerate() {
            println!(
                "    step {t:>4} {} {:>10} bytes at {:<10} {}",
                if s.keyframe { "key  " } else { "delta" },
                s.len,
                s.offset,
                s.codec.name(),
            );
        }
        println!(
            "    {raw} -> {seg} segment bytes (ratio {:.2})",
            raw as f64 / seg.max(1) as f64
        );
    }
}

/// Large odd stride between per-dataset seeds, so `pack --datasets a,b,c`
/// gets three decorrelated RTM perturbations from one `--seed`.
const PACK_SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

fn cmd_pack(args: &Args) -> Result<(), String> {
    let [_, output] = positional::<2>(args)?;
    let shape = args.shape()?;
    let n_steps = args.unsigned("steps")?.ok_or("pack requires --steps N")?;
    if n_steps == 0 {
        return Err("--steps must be positive".into());
    }
    let eb = args
        .float("abs")?
        .ok_or("pack requires an absolute error bound (--abs EB)")?;
    let keyframe_every = args.unsigned("keyframe-every")?.unwrap_or(4);
    if keyframe_every == 0 {
        return Err("--keyframe-every must be positive".into());
    }
    let mut cfg = CompressorConfig::new(args.predictor()?, ErrorBoundMode::Abs(eb));
    match args.unsigned("chunk-size")? {
        Some(0) => return Err("--chunk-size must be positive".into()),
        Some(rows) => cfg = cfg.chunked(rows),
        None => {}
    }
    let input = args.get("input");
    if input.is_none() {
        // RTM datagen mode: the wave simulator needs a 3-D grid of at
        // least 8 points per axis.
        if shape.ndim() != 3 {
            return Err("pack without --input simulates an RTM wavefield and needs a \
                        3-D --shape (use --input for raw data)"
                .into());
        }
        if shape.dims().iter().any(|&d| d < 8) {
            return Err(format!(
                "RTM datagen needs every extent >= 8, got {:?}",
                shape.dims()
            ));
        }
    }

    let tmp = format!("{output}.rqm-partial");
    let result = (|| -> Result<(u64, usize), String> {
        let sink = std::io::BufWriter::new(
            std::fs::File::create(&tmp).map_err(|e| format!("{tmp}: {e}"))?,
        );
        let mut w = CatalogWriter::create(sink).map_err(|e| format!("{tmp}: {e}"))?;
        let mut n_datasets = 0usize;
        if let Some(inputf) = input {
            // Raw mode: `--steps` concatenated shape-sized f32 fields.
            let name = args.get("dataset").unwrap_or("field");
            let step_shape = shape;
            let stream_shape = {
                let mut dims = [0usize; MAX_DIMS];
                dims[..shape.ndim()].copy_from_slice(shape.dims());
                dims[0] *= n_steps;
                Shape::new(&dims[..shape.ndim()])
            };
            let mut src =
                std::io::BufReader::new(io::open_raw_f32(inputf, stream_shape)?);
            let mut dw = w
                .begin_dataset::<f32>(name, &cfg, keyframe_every, step_shape)
                .map_err(|e| format!("pack failed: {e}"))?;
            for _ in 0..n_steps {
                let slab = io::read_f32_slab(&mut src, step_shape)
                    .map_err(|e| format!("{inputf}: {e}"))?;
                dw.write_step(&slab).map_err(|e| format!("pack failed: {e}"))?;
            }
            dw.finish().map_err(|e| format!("pack failed: {e}"))?;
            n_datasets = 1;
        } else {
            let dims = [shape.dim(0), shape.dim(1), shape.dim(2)];
            let seed = args.unsigned("seed")?.unwrap_or(1) as u64;
            for (i, name) in args.get("datasets").unwrap_or("pressure").split(',').enumerate() {
                let name = name.trim();
                if name.is_empty() {
                    return Err("--datasets contains an empty name".into());
                }
                let steps = rq_datagen::rtm_steps(
                    seed.wrapping_add((i as u64).wrapping_mul(PACK_SEED_STRIDE)),
                    n_steps,
                    dims,
                );
                let mut dw = w
                    .begin_dataset::<f32>(name, &cfg, keyframe_every, shape)
                    .map_err(|e| format!("pack failed: {e}"))?;
                for s in &steps {
                    dw.write_step(s).map_err(|e| format!("pack failed: {e}"))?;
                }
                dw.finish().map_err(|e| format!("pack failed: {e}"))?;
                n_datasets += 1;
            }
        }
        let fin = w.finalize().map_err(|e| format!("pack failed: {e}"))?;
        fin.sink
            .into_inner()
            .map_err(|e| format!("{tmp}: {e}"))?
            .sync_all()
            .map_err(|e| format!("{tmp}: {e}"))?;
        Ok((fin.bytes_written, n_datasets))
    })();
    match result {
        Ok((bytes, n_datasets)) => {
            std::fs::rename(&tmp, &output).map_err(|e| format!("{output}: {e}"))?;
            let raw = n_datasets * n_steps * shape.len() * 4;
            println!(
                "{output}: {n_datasets} dataset(s) × {n_steps} steps (keyframe every \
                 {keyframe_every}), {raw} -> {bytes} bytes (ratio {:.2})",
                raw as f64 / bytes.max(1) as f64
            );
            Ok(())
        }
        Err(e) => {
            std::fs::remove_file(&tmp).ok();
            Err(e)
        }
    }
}

fn cmd_unpack(args: &Args) -> Result<(), String> {
    let [_, input, outdir] = positional::<3>(args)?;
    let only = args.get("dataset");
    let step_sel = args.unsigned("step")?;
    let mut reader =
        CatalogReader::open_path(&input).map_err(|e| format!("not a readable catalog: {e}"))?;
    let selected: Vec<(String, u8, usize, Shape)> = reader
        .datasets()
        .iter()
        .filter(|d| only.is_none_or(|n| n == d.name))
        .map(|d| (d.name.clone(), d.scalar_tag, d.steps.len(), d.shape))
        .collect();
    if selected.is_empty() {
        return Err(format!("{input}: no dataset named '{}'", only.unwrap_or("")));
    }
    std::fs::create_dir_all(&outdir).map_err(|e| format!("{outdir}: {e}"))?;
    for (name, tag, n_steps, shape) in selected {
        let steps: Vec<usize> = match step_sel {
            Some(t) if t >= n_steps => {
                return Err(format!("{name}: step {t} out of range (0..{n_steps})"))
            }
            Some(t) => vec![t],
            None => (0..n_steps).collect(),
        };
        let ext = if tag == 0x04 { "f32" } else { "f64" };
        let file = match step_sel {
            Some(t) => format!("{outdir}/{name}_t{t}.{ext}"),
            None => format!("{outdir}/{name}.{ext}"),
        };
        let scalar_bytes = if tag == 0x04 { 4 } else { 8 };
        let mut raw = Vec::with_capacity(steps.len() * shape.len() * scalar_bytes);
        for &t in &steps {
            match tag {
                0x04 => {
                    let f = reader
                        .read_step::<f32>(&name, t)
                        .map_err(|e| format!("{name} step {t}: {e}"))?;
                    for &v in f.as_slice() {
                        raw.extend_from_slice(&v.to_le_bytes());
                    }
                }
                _ => {
                    let f = reader
                        .read_step::<f64>(&name, t)
                        .map_err(|e| format!("{name} step {t}: {e}"))?;
                    for &v in f.as_slice() {
                        raw.extend_from_slice(&v.to_le_bytes());
                    }
                }
            }
        }
        io::write_bytes(&file, &raw)?;
        println!(
            "{name}: {} step(s) of {:?} -> {file} ({} bytes)",
            steps.len(),
            shape,
            raw.len()
        );
    }
    Ok(())
}

fn cmd_catalog(args: &Args) -> Result<(), String> {
    let [_, input] = positional::<2>(args)?;
    let total_bytes = std::fs::metadata(&input).map_err(|e| format!("{input}: {e}"))?.len();
    let reader =
        CatalogReader::open_path(&input).map_err(|e| format!("not a readable catalog: {e}"))?;
    print_catalog(&input, total_bytes, reader.index(), args.flag("json"));
    Ok(())
}

fn cmd_serve(args: &Args) -> Result<(), String> {
    let [_, input] = positional::<2>(args)?;
    let addr = args.get("addr").ok_or("serve requires --addr HOST:PORT")?.to_string();
    let cache_bytes = args.unsigned("cache-bytes")?.unwrap_or(256 << 20) as u64;
    let max_connections = args.unsigned("threads")?.unwrap_or(0);
    let metrics_every = args
        .float("metrics-every")?
        .map(std::time::Duration::from_secs_f64);
    let cfg = ServeConfig { cache_bytes, metrics_every, max_connections };
    let server = Server::bind_path(&addr, std::path::Path::new(&input), cfg)
        .map_err(|e| format!("{input}: {e}"))?;
    let conns = if max_connections == 0 {
        "unlimited connections".to_string()
    } else {
        format!("up to {max_connections} connections")
    };
    println!(
        "serving {input} on {} ({} MiB chunk cache, {conns})",
        server.local_addr(),
        cache_bytes >> 20,
    );
    // Daemon mode: serve until the process is killed. The handler
    // threads do all the work; this thread only keeps `server` alive.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

fn cmd_read(args: &Args) -> Result<(), String> {
    let [_] = positional::<1>(args)?;
    let addr = args.get("addr").ok_or("read requires --addr HOST:PORT")?.to_string();
    let rows = args.get("rows").map(parse_row_range).transpose()?;
    let chunk = args.unsigned("chunk")?;
    if rows.is_some() && chunk.is_some() {
        return Err("--rows and --chunk are mutually exclusive".into());
    }
    if args.flag("list") {
        // Protocol-v2 dataset listing: every server answers (plain
        // archives present themselves as one pseudo-dataset).
        let mut client = Client::connect(&addr).map_err(|e| format!("{addr}: {e}"))?;
        let datasets = client.list_datasets().map_err(|e| e.to_string())?;
        println!("{addr}: {} dataset(s)", datasets.len());
        for d in &datasets {
            println!(
                "  [{}] {}: {} {:?}, {} steps (keyframe every {}), {} chunks/step, \
                 abs bound {:.3e}",
                d.index,
                d.name,
                if d.scalar_tag == 0x04 { "f32" } else { "f64" },
                d.step_dims,
                d.n_steps,
                d.keyframe_every,
                d.chunks_per_step,
                d.abs_eb,
            );
        }
        if args.flag("stats") {
            print_server_stats(&mut client)?;
        }
        return Ok(());
    }
    if let Some(name) = args.get("dataset") {
        if chunk.is_some() {
            return Err("--dataset selects with --step/--rows, not --chunk".into());
        }
        let step = args.unsigned("step")?.unwrap_or(0) as u64;
        let mut client = Client::connect(&addr).map_err(|e| format!("{addr}: {e}"))?;
        let ds = client
            .list_datasets()
            .map_err(|e| e.to_string())?
            .into_iter()
            .find(|d| d.name == name)
            .ok_or_else(|| format!("{addr}: no dataset named '{name}'"))?;
        let (start, end) = rows.unwrap_or((0, ds.step_rows()));
        let raw = match ds.scalar_tag {
            0x04 => step_scalars::<f32>(&mut client, &ds, step, start..end)?,
            0x08 => step_scalars::<f64>(&mut client, &ds, step, start..end)?,
            t => return Err(format!("dataset holds unsupported scalar tag {t:#04x}")),
        };
        if let Some(out) = args.get("out") {
            io::write_bytes(out, &raw)?;
            println!(
                "{addr} {name} step {step} rows {start}..{end}: {} bytes -> {out}",
                raw.len()
            );
        } else {
            println!(
                "{addr} {name} step {step} rows {start}..{end}: {} bytes (step shape \
                 {:?}, {} steps)",
                raw.len(),
                ds.step_dims,
                ds.n_steps
            );
        }
        if args.flag("stats") {
            print_server_stats(&mut client)?;
        }
        return Ok(());
    }
    let mut client = Client::connect(&addr).map_err(|e| format!("{addr}: {e}"))?;
    let info = client.info().clone();
    // The server holds either f32 or f64; fetch with the matching type
    // and write raw little-endian scalars either way.
    let fetched: Result<(usize, usize, Vec<u8>), String> = match info.scalar_tag {
        0x04 => fetch_scalars::<f32>(&mut client, &info, &rows, chunk),
        0x08 => fetch_scalars::<f64>(&mut client, &info, &rows, chunk),
        t => Err(format!("archive holds unsupported scalar tag {t:#04x}")),
    };
    let (start, nrows, raw) = fetched?;
    if let Some(out) = args.get("out") {
        io::write_bytes(out, &raw)?;
        println!(
            "{addr} rows {start}..{}: {} bytes -> {out} (shape {:?}, {} chunks)",
            start + nrows,
            raw.len(),
            info.dims,
            info.n_chunks
        );
    } else {
        println!(
            "{addr} rows {start}..{}: {} bytes (shape {:?}, {} chunks of {} rows)",
            start + nrows,
            raw.len(),
            info.dims,
            info.n_chunks,
            info.chunk_rows
        );
    }
    if args.flag("stats") {
        print_server_stats(&mut client)?;
    }
    Ok(())
}

/// Print the server's counters (the `--stats` flag of `rqm read`).
fn print_server_stats(client: &mut Client) -> Result<(), String> {
    let s = client.stats().map_err(|e| e.to_string())?;
    let lookups = s.cache.hits + s.cache.misses;
    let hit_pct = if lookups == 0 { 0.0 } else { 100.0 * s.cache.hits as f64 / lookups as f64 };
    println!(
        "server: {} requests, {} errors, {} connections, {} bytes out",
        s.requests, s.errors, s.connections, s.bytes_out
    );
    println!(
        "cache:  {:.1}% hit ({} hits / {} misses), {} coalesced, {} evicted, {} bytes resident (peak {}), {} chunks decoded",
        hit_pct,
        s.cache.hits,
        s.cache.misses,
        s.cache.coalesced_waits,
        s.cache.evictions,
        s.cache.bytes_cached,
        s.cache.bytes_peak,
        s.chunks_decoded
    );
    Ok(())
}

/// Fetch a row range of one step of a served dataset as raw
/// little-endian bytes.
fn step_scalars<T: rq_grid::Scalar>(
    client: &mut Client,
    ds: &DatasetInfo,
    step: u64,
    rows: std::ops::Range<usize>,
) -> Result<Vec<u8>, String> {
    let slab = client.read_step_rows::<T>(ds, step, rows).map_err(|e| e.to_string())?;
    let mut raw = Vec::with_capacity(slab.len() * T::BYTES);
    for &v in slab.as_slice() {
        v.write_le(&mut raw);
    }
    Ok(raw)
}

/// Fetch the requested rows/chunk as raw little-endian bytes; returns
/// `(first_row, row_count, bytes)`.
fn fetch_scalars<T: rq_grid::Scalar>(
    client: &mut Client,
    info: &rq_serve::ArchiveInfo,
    rows: &Option<(usize, usize)>,
    chunk: Option<usize>,
) -> Result<(usize, usize, Vec<u8>), String> {
    let (start, slab) = if let Some(idx) = chunk {
        client.read_chunk::<T>(idx).map_err(|e| e.to_string())?
    } else {
        let (start, end) = rows.unwrap_or((0, info.rows()));
        (start, client.read_rows::<T>(start..end).map_err(|e| e.to_string())?)
    };
    let vals = slab.as_slice();
    let mut raw = Vec::with_capacity(vals.len() * T::BYTES);
    for &v in vals {
        v.write_le(&mut raw);
    }
    Ok((start, slab.shape().dim(0), raw))
}

/// Parse `A..B` into `(A, B)`.
fn parse_row_range(s: &str) -> Result<(usize, usize), String> {
    let (a, b) = s.split_once("..").ok_or_else(|| format!("--rows wants A..B, got '{s}'"))?;
    let a: usize = a.parse().map_err(|_| format!("bad row '{a}'"))?;
    let b: usize = b.parse().map_err(|_| format!("bad row '{b}'"))?;
    if a >= b {
        return Err(format!("--rows range {a}..{b} is empty"));
    }
    Ok((a, b))
}

/// Exactly `N` positional arguments (including the command) or an error.
fn positional<const N: usize>(args: &Args) -> Result<[String; N], String> {
    if args.positional.len() != N {
        return Err(format!(
            "expected {} positional arguments, got {}",
            N - 1,
            args.positional.len() - 1
        ));
    }
    Ok(std::array::from_fn(|i| args.positional[i].clone()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rq_compress::peek_header;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("rqm_cli_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn run_args(v: &[&str]) -> Result<(), String> {
        run(v.iter().map(|s| s.to_string()).collect())
    }

    fn write_field(path: &std::path::Path) -> NdArray<f32> {
        let f = NdArray::<f32>::from_fn(Shape::d2(20, 30), |ix| {
            ((ix[0] as f32) * 0.3).sin() + ix[1] as f32 * 0.05
        });
        io::write_raw_f32(path.to_str().unwrap(), &f).unwrap();
        f
    }

    #[test]
    fn compress_decompress_cycle() {
        let raw = tmp("a.f32");
        let rqc = tmp("a.rqc");
        let back = tmp("a.out.f32");
        let f = write_field(&raw);
        run_args(&[
            "compress",
            raw.to_str().unwrap(),
            rqc.to_str().unwrap(),
            "--shape",
            "20x30",
            "--abs",
            "1e-3",
        ])
        .unwrap();
        run_args(&["decompress", rqc.to_str().unwrap(), back.to_str().unwrap()]).unwrap();
        let g = io::read_raw_f32(back.to_str().unwrap(), Shape::d2(20, 30)).unwrap();
        for (&a, &b) in f.as_slice().iter().zip(g.as_slice()) {
            assert!((a - b).abs() <= 1e-3 * 1.001);
        }
    }

    #[test]
    fn parallel_compress_decompress_cycle() {
        let raw = tmp("p.f32");
        let rqc = tmp("p.rqc");
        let back = tmp("p.out.f32");
        let f = write_field(&raw);
        run_args(&[
            "compress",
            raw.to_str().unwrap(),
            rqc.to_str().unwrap(),
            "--shape",
            "20x30",
            "--abs",
            "1e-3",
            "--threads",
            "2",
            "--chunk-size",
            "6",
        ])
        .unwrap();
        // Chunked CLI compression streams through the writer session:
        // container v2.2 (version byte 4, trailer index).
        let h = peek_header(&io::read_bytes(rqc.to_str().unwrap()).unwrap()).unwrap();
        assert_eq!(h.version, 4);
        run_args(&["info", rqc.to_str().unwrap()]).unwrap();
        run_args(&["info", rqc.to_str().unwrap(), "--json"]).unwrap();
        run_args(&[
            "decompress",
            rqc.to_str().unwrap(),
            back.to_str().unwrap(),
            "--threads",
            "2",
        ])
        .unwrap();
        let g = io::read_raw_f32(back.to_str().unwrap(), Shape::d2(20, 30)).unwrap();
        for (&a, &b) in f.as_slice().iter().zip(g.as_slice()) {
            assert!((a - b).abs() <= 1e-3 * 1.001);
        }
        assert!(
            run_args(&[
                "compress",
                raw.to_str().unwrap(),
                rqc.to_str().unwrap(),
                "--shape",
                "20x30",
                "--abs",
                "1e-3",
                "--chunk-size",
                "0",
            ])
            .is_err(),
            "zero chunk size must be rejected"
        );
    }

    #[test]
    fn zfp_codec_cycle() {
        let raw = tmp("z.f32");
        let rqz = tmp("z.rqz");
        let back = tmp("z.out.f32");
        let f = write_field(&raw);
        run_args(&[
            "compress",
            raw.to_str().unwrap(),
            rqz.to_str().unwrap(),
            "--shape",
            "20x30",
            "--abs",
            "1e-2",
            "--codec",
            "zfp",
        ])
        .unwrap();
        run_args(&["decompress", rqz.to_str().unwrap(), back.to_str().unwrap()]).unwrap();
        let g = io::read_raw_f32(back.to_str().unwrap(), Shape::d2(20, 30)).unwrap();
        for (&a, &b) in f.as_slice().iter().zip(g.as_slice()) {
            assert!((a - b).abs() <= 1e-2 * 1.001);
        }
    }

    #[test]
    fn rolz_codec_cycle() {
        let raw = tmp("rz.f32");
        let rqc = tmp("rz.rqc");
        let back = tmp("rz.out.f32");
        let f = write_field(&raw);
        run_args(&[
            "compress",
            raw.to_str().unwrap(),
            rqc.to_str().unwrap(),
            "--shape",
            "20x30",
            "--abs",
            "1e-3",
            "--codec",
            "rolz",
        ])
        .unwrap();
        let bytes = io::read_bytes(rqc.to_str().unwrap()).unwrap();
        assert_eq!(peek_header(&bytes).unwrap().version, 6, "rolz codec writes v2.4");
        run_args(&["info", rqc.to_str().unwrap()]).unwrap();
        run_args(&["decompress", rqc.to_str().unwrap(), back.to_str().unwrap()]).unwrap();
        let g = io::read_raw_f32(back.to_str().unwrap(), Shape::d2(20, 30)).unwrap();
        for (&a, &b) in f.as_slice().iter().zip(g.as_slice()) {
            assert!((a - b).abs() <= 1e-3 * 1.001);
        }
    }

    #[test]
    fn auto_codec_cycle() {
        let raw = tmp("ac.f32");
        let rqc = tmp("ac.rqc");
        let back = tmp("ac.out.f32");
        let f = write_field(&raw);
        run_args(&[
            "compress",
            raw.to_str().unwrap(),
            rqc.to_str().unwrap(),
            "--shape",
            "20x30",
            "--abs",
            "1e-3",
            "--codec",
            "auto",
            "--chunk-size",
            "5",
        ])
        .unwrap();
        let bytes = io::read_bytes(rqc.to_str().unwrap()).unwrap();
        assert_eq!(peek_header(&bytes).unwrap().version, 6, "auto codec writes v2.4");
        run_args(&["info", rqc.to_str().unwrap()]).unwrap();
        run_args(&["decompress", rqc.to_str().unwrap(), back.to_str().unwrap()]).unwrap();
        let g = io::read_raw_f32(back.to_str().unwrap(), Shape::d2(20, 30)).unwrap();
        for (&a, &b) in f.as_slice().iter().zip(g.as_slice()) {
            assert!((a - b).abs() <= 1e-3 * 1.001);
        }
        assert!(
            run_args(&[
                "compress",
                raw.to_str().unwrap(),
                rqc.to_str().unwrap(),
                "--shape",
                "20x30",
                "--abs",
                "1e-3",
                "--codec",
                "dct",
            ])
            .is_err(),
            "unknown codec must be rejected"
        );
    }

    #[test]
    fn rel_bound_streams_with_prepass() {
        // --rel on the chunked (streaming) path: the CLI resolves the
        // bound with a min/max pre-pass; the result must match the
        // in-memory pipeline's resolution and hold element-wise.
        let raw = tmp("r.f32");
        let rqc = tmp("r.rqc");
        let back = tmp("r.out.f32");
        let f = write_field(&raw);
        run_args(&[
            "compress",
            raw.to_str().unwrap(),
            rqc.to_str().unwrap(),
            "--shape",
            "20x30",
            "--rel",
            "1e-3",
            "--chunk-size",
            "7",
        ])
        .unwrap();
        let bytes = io::read_bytes(rqc.to_str().unwrap()).unwrap();
        let h = peek_header(&bytes).unwrap();
        let range = f.value_range();
        assert!((h.abs_eb - 1e-3 * range).abs() <= 1e-12 * range);
        run_args(&["decompress", rqc.to_str().unwrap(), back.to_str().unwrap()]).unwrap();
        let g = io::read_raw_f32(back.to_str().unwrap(), Shape::d2(20, 30)).unwrap();
        for (&a, &b) in f.as_slice().iter().zip(g.as_slice()) {
            assert!((a - b).abs() as f64 <= h.abs_eb * 1.001);
        }
    }

    /// Measured PSNR between two equal-length f32 fields (range-based, as
    /// `rq-analysis` defines it; inlined so the CLI crate stays free of a
    /// dev-dependency on the analysis crate).
    fn measured_psnr(a: &NdArray<f32>, b: &NdArray<f32>) -> f64 {
        let range = a.value_range();
        let mse = a
            .as_slice()
            .iter()
            .zip(b.as_slice())
            .map(|(&x, &y)| ((x - y) as f64).powi(2))
            .sum::<f64>()
            / a.len() as f64;
        20.0 * range.log10() - 10.0 * mse.log10()
    }

    /// A field with quiet and loud axis-0 regions, so per-chunk planning
    /// has real heterogeneity to exploit.
    fn write_mixed_field(path: &std::path::Path) -> NdArray<f32> {
        let f = NdArray::<f32>::from_fn(Shape::d2(40, 30), |ix| {
            let base = ((ix[0] as f32) * 0.3).sin() + ix[1] as f32 * 0.05;
            if ix[0] < 20 {
                base * 0.01
            } else {
                let mut h = (ix[0] * 31 + ix[1]) as u64;
                h ^= h >> 33;
                h = h.wrapping_mul(0xff51afd7ed558ccd);
                h ^= h >> 33;
                base + ((h >> 40) as f64 / (1u64 << 24) as f64 - 0.5) as f32 * 4.0
            }
        });
        io::write_raw_f32(path.to_str().unwrap(), &f).unwrap();
        f
    }

    #[test]
    fn target_psnr_cycle_meets_floor() {
        let raw = tmp("tp.f32");
        let rqc = tmp("tp.rqc");
        let back = tmp("tp.out.f32");
        let f = write_mixed_field(&raw);
        let target = 55.0;
        run_args(&[
            "compress",
            raw.to_str().unwrap(),
            rqc.to_str().unwrap(),
            "--shape",
            "40x30",
            "--target-psnr",
            "55",
            "--chunk-size",
            "10",
        ])
        .unwrap();
        let bytes = io::read_bytes(rqc.to_str().unwrap()).unwrap();
        assert_eq!(peek_header(&bytes).unwrap().version, 5, "targeted CLI writes v2.3");
        // The plan must actually vary across the quiet/loud chunks.
        let table = rq_compress::chunk_table(&bytes).unwrap();
        let ebs: Vec<f64> = table.entries.iter().map(|e| e.eb).collect();
        assert!(ebs.iter().any(|&e| e != ebs[0]), "plan is uniform: {ebs:?}");
        run_args(&["info", rqc.to_str().unwrap()]).unwrap();
        run_args(&["info", rqc.to_str().unwrap(), "--json"]).unwrap();
        run_args(&["decompress", rqc.to_str().unwrap(), back.to_str().unwrap()]).unwrap();
        let g = io::read_raw_f32(back.to_str().unwrap(), Shape::d2(40, 30)).unwrap();
        let psnr = measured_psnr(&f, &g);
        assert!(psnr >= target - 0.5, "measured {psnr:.2} dB < floor {}", target - 0.5);
    }

    #[test]
    fn target_size_cycle_fits_budget() {
        let raw = tmp("ts.f32");
        let rqc = tmp("ts.rqc");
        let back = tmp("ts.out.f32");
        write_mixed_field(&raw);
        let budget = 40 * 30 * 4 / 8; // 4 bits/value
        run_args(&[
            "compress",
            raw.to_str().unwrap(),
            rqc.to_str().unwrap(),
            "--shape",
            "40x30",
            "--target-size",
            &budget.to_string(),
            "--chunk-size",
            "10",
        ])
        .unwrap();
        let bytes = io::read_bytes(rqc.to_str().unwrap()).unwrap();
        assert_eq!(peek_header(&bytes).unwrap().version, 5);
        assert!(
            bytes.len() <= budget,
            "archive {} B over the {budget} B ceiling",
            bytes.len()
        );
        run_args(&["decompress", rqc.to_str().unwrap(), back.to_str().unwrap()]).unwrap();
    }

    #[test]
    fn target_flags_are_mutually_exclusive_and_validated() {
        let raw = tmp("tx.f32");
        write_mixed_field(&raw);
        let r = raw.to_str().unwrap();
        for conflict in [
            vec!["--abs", "1e-3", "--target-psnr", "60"],
            vec!["--rel", "1e-3", "--target-size", "100"],
            vec!["--target-psnr", "60", "--target-size", "100"],
        ] {
            let mut v = vec!["compress", r, "/tmp/never.rqc", "--shape", "40x30"];
            v.extend(conflict.iter());
            assert!(run_args(&v).is_err(), "{conflict:?} must be rejected");
        }
        assert!(
            run_args(&[
                "compress", r, "/tmp/never.rqc", "--shape", "40x30", "--target-size", "0"
            ])
            .is_err(),
            "zero budget must be rejected"
        );
        // An unreachable target surfaces the planner's typed error as
        // InvalidConfig, not a panic or a silently lossier archive.
        let err = run_args(&[
            "compress",
            r,
            "/tmp/never.rqc",
            "--shape",
            "40x30",
            "--target-size",
            "30",
        ])
        .unwrap_err();
        assert!(err.contains("invalid configuration"), "got: {err}");
    }

    #[test]
    fn estimate_and_info_run() {
        let raw = tmp("e.f32");
        let rqc = tmp("e.rqc");
        write_field(&raw);
        run_args(&["estimate", raw.to_str().unwrap(), "--shape", "20x30"]).unwrap();
        run_args(&[
            "compress",
            raw.to_str().unwrap(),
            rqc.to_str().unwrap(),
            "--shape",
            "20x30",
            "--abs",
            "1e-3",
            "--predictor",
            "lorenzo",
        ])
        .unwrap();
        run_args(&["info", rqc.to_str().unwrap()]).unwrap();
    }

    #[test]
    fn failed_decompress_leaves_existing_output_intact() {
        // A corrupt archive must neither clobber an existing output file
        // nor leave a partial one behind.
        let raw = tmp("nc.f32");
        let rqc = tmp("nc.rqc");
        let out = tmp("nc.out.f32");
        write_field(&raw);
        run_args(&[
            "compress",
            raw.to_str().unwrap(),
            rqc.to_str().unwrap(),
            "--shape",
            "20x30",
            "--abs",
            "1e-3",
            "--chunk-size",
            "6",
        ])
        .unwrap();
        // Corrupt a blob byte (keep header + trailer parseable so the
        // failure happens mid-decode, after some chunks succeeded).
        let mut bytes = io::read_bytes(rqc.to_str().unwrap()).unwrap();
        let table = rq_compress::chunk_table(&bytes).unwrap();
        let last = table.entries.last().unwrap();
        bytes[last.offset + last.len / 2] ^= 0xff;
        bytes[last.offset + last.len / 2 + 1] ^= 0xff;
        io::write_bytes(rqc.to_str().unwrap(), &bytes).unwrap();
        std::fs::write(&out, b"precious").unwrap();
        let r = run_args(&["decompress", rqc.to_str().unwrap(), out.to_str().unwrap()]);
        if r.is_err() {
            assert_eq!(std::fs::read(&out).unwrap(), b"precious", "output clobbered");
            assert!(
                !std::path::Path::new(&format!("{}.rqm-partial", out.display())).exists(),
                "partial temp file left behind"
            );
        }
        // (A flip inside an entropy payload can decode "successfully" to
        // wrong data — that case is allowed; the guarantee under test is
        // only about the failure path.)
    }

    #[test]
    fn error_cases() {
        assert!(run_args(&[]).is_err());
        assert!(run_args(&["frobnicate"]).is_err());
        assert!(run_args(&["compress", "a", "b", "--shape", "4x4"]).is_err(), "no bound");
        assert!(
            run_args(&["compress", "a", "b", "--shape", "4x4", "--abs", "1", "--rel", "1"])
                .is_err(),
            "conflicting bounds"
        );
        assert!(run_args(&["decompress", "/nonexistent/x", "/tmp/y"]).is_err());
        assert!(run_args(&["serve", "/nonexistent/x", "--addr", "127.0.0.1:0"]).is_err());
        assert!(run_args(&["read"]).is_err(), "read requires --addr");
        assert!(
            run_args(&["read", "--addr", "x", "--rows", "5..3"]).is_err(),
            "empty row range"
        );
    }

    #[test]
    fn read_fetches_rows_from_a_served_archive() {
        let raw = tmp("srv.f32");
        let rqc = tmp("srv.rqc");
        let fetched = tmp("srv.rows.f32");
        let f = write_field(&raw);
        run_args(&[
            "compress",
            raw.to_str().unwrap(),
            rqc.to_str().unwrap(),
            "--shape",
            "20x30",
            "--abs",
            "1e-3",
            "--chunk-size",
            "6",
        ])
        .unwrap();
        // `cmd_serve` blocks forever by design; drive `rqm read` against
        // a server owned by the test instead.
        let server =
            Server::bind_path("127.0.0.1:0", &rqc, ServeConfig::default()).unwrap();
        let addr = server.local_addr().to_string();
        run_args(&[
            "read",
            "--addr",
            &addr,
            "--rows",
            "3..17",
            "--out",
            fetched.to_str().unwrap(),
            "--stats",
        ])
        .unwrap();
        let got = io::read_raw_f32(fetched.to_str().unwrap(), Shape::d2(14, 30)).unwrap();
        for (a, b) in got.as_slice().iter().zip(&f.as_slice()[3 * 30..17 * 30]) {
            assert!((a - b).abs() <= 1e-3 * 1.0001);
        }
        // Whole-field fetch (no --rows/--chunk) and single-chunk fetch.
        run_args(&["read", "--addr", &addr, "--chunk", "1"]).unwrap();
        run_args(&["read", "--addr", &addr]).unwrap();
        assert!(run_args(&["read", "--addr", &addr, "--rows", "0..99"]).is_err());
        server.shutdown();
    }

    /// The acceptance path end to end: `pack` an RTM catalog of 3
    /// datasets × 8 steps, `unpack` it, and check every step of every
    /// dataset against a fresh run of the same seeded simulation.
    #[test]
    fn pack_unpack_roundtrip_meets_bound_on_every_step() {
        let cat = tmp("cat.rqc");
        let outdir = tmp("cat_unpacked");
        let eb = 1e-3f32;
        run_args(&[
            "pack",
            cat.to_str().unwrap(),
            "--steps",
            "8",
            "--shape",
            "12x10x8",
            "--abs",
            "1e-3",
            "--datasets",
            "pressure,vx,vz",
            "--keyframe-every",
            "3",
            "--seed",
            "7",
        ])
        .unwrap();
        run_args(&["catalog", cat.to_str().unwrap()]).unwrap();
        run_args(&["catalog", cat.to_str().unwrap(), "--json"]).unwrap();
        // `info` sniffs the RQCAT magic and prints the same summary.
        run_args(&["info", cat.to_str().unwrap()]).unwrap();
        run_args(&["info", cat.to_str().unwrap(), "--json"]).unwrap();
        run_args(&["unpack", cat.to_str().unwrap(), outdir.to_str().unwrap()]).unwrap();
        for (i, name) in ["pressure", "vx", "vz"].iter().enumerate() {
            let truth = rq_datagen::rtm_steps(
                7u64.wrapping_add((i as u64).wrapping_mul(PACK_SEED_STRIDE)),
                8,
                [12, 10, 8],
            );
            let path = outdir.join(format!("{name}.f32"));
            let got =
                io::read_raw_f32(path.to_str().unwrap(), Shape::d2(8, 12 * 10 * 8)).unwrap();
            for (t, step) in truth.iter().enumerate() {
                let rows = &got.as_slice()[t * step.len()..(t + 1) * step.len()];
                for (&a, &b) in step.as_slice().iter().zip(rows) {
                    assert!(
                        (a - b).abs() <= eb * 1.001,
                        "{name} step {t}: |{a} - {b}| > {eb}"
                    );
                }
            }
        }
        // Single-step single-dataset extraction.
        run_args(&[
            "unpack",
            cat.to_str().unwrap(),
            outdir.to_str().unwrap(),
            "--dataset",
            "vx",
            "--step",
            "5",
        ])
        .unwrap();
        assert!(outdir.join("vx_t5.f32").exists());
        // A catalog is not a single-field archive.
        assert!(
            run_args(&["decompress", cat.to_str().unwrap(), "/tmp/never.f32"]).is_err(),
            "decompress must redirect catalogs to unpack"
        );
    }

    #[test]
    fn pack_from_raw_input_roundtrips() {
        let raw = tmp("pk.f32");
        let cat = tmp("pk.rqc");
        let outdir = tmp("pk_unpacked");
        // 5 steps of a smooth drifting 2-D field, concatenated raw.
        let steps: Vec<NdArray<f32>> = (0..5)
            .map(|t| {
                NdArray::from_fn(Shape::d2(10, 12), |ix| {
                    ((ix[0] as f32) * 0.4 + t as f32 * 0.07).sin() + ix[1] as f32 * 0.03
                })
            })
            .collect();
        let mut bytes = Vec::new();
        for s in &steps {
            for &v in s.as_slice() {
                bytes.extend_from_slice(&v.to_le_bytes());
            }
        }
        io::write_bytes(raw.to_str().unwrap(), &bytes).unwrap();
        run_args(&[
            "pack",
            cat.to_str().unwrap(),
            "--input",
            raw.to_str().unwrap(),
            "--dataset",
            "wave",
            "--steps",
            "5",
            "--shape",
            "10x12",
            "--abs",
            "1e-4",
            "--keyframe-every",
            "2",
        ])
        .unwrap();
        run_args(&["unpack", cat.to_str().unwrap(), outdir.to_str().unwrap()]).unwrap();
        let got = io::read_raw_f32(
            outdir.join("wave.f32").to_str().unwrap(),
            Shape::d2(5, 120),
        )
        .unwrap();
        for (t, s) in steps.iter().enumerate() {
            for (&a, &b) in s.as_slice().iter().zip(&got.as_slice()[t * 120..(t + 1) * 120]) {
                assert!((a - b).abs() <= 1e-4 * 1.001, "step {t}");
            }
        }
    }

    #[test]
    fn read_list_and_dataset_from_a_served_catalog() {
        let cat = tmp("rsc.rqc");
        let fetched = tmp("rsc.step.f32");
        run_args(&[
            "pack",
            cat.to_str().unwrap(),
            "--steps",
            "4",
            "--shape",
            "10x8x8",
            "--abs",
            "1e-3",
            "--datasets",
            "p,q",
            "--keyframe-every",
            "2",
            "--seed",
            "3",
        ])
        .unwrap();
        let server = Server::bind_path("127.0.0.1:0", &cat, ServeConfig::default()).unwrap();
        let addr = server.local_addr().to_string();
        run_args(&["read", "--addr", &addr, "--list", "--stats"]).unwrap();
        run_args(&[
            "read",
            "--addr",
            &addr,
            "--dataset",
            "q",
            "--step",
            "3",
            "--rows",
            "2..7",
            "--out",
            fetched.to_str().unwrap(),
        ])
        .unwrap();
        // The served rows must match the local decode of the same step.
        let mut local = CatalogReader::open_path(cat.to_str().unwrap()).unwrap();
        let step = local.read_step::<f32>("q", 3).unwrap();
        let got = io::read_raw_f32(fetched.to_str().unwrap(), Shape::d2(5, 64)).unwrap();
        for (&a, &b) in got.as_slice().iter().zip(&step.as_slice()[2 * 64..7 * 64]) {
            assert_eq!(a, b, "served bytes differ from the local decode");
        }
        assert!(
            run_args(&["read", "--addr", &addr, "--dataset", "nosuch"]).is_err(),
            "unknown dataset must error"
        );
        assert!(
            run_args(&["read", "--addr", &addr, "--dataset", "q", "--step", "9"]).is_err(),
            "out-of-range step must error"
        );
        server.shutdown();
    }

    #[test]
    fn pack_error_cases() {
        let cat = "/tmp/never_pack.rqc";
        // Zero steps, zero cadence, non-3D RTM shape, sub-8 RTM extents,
        // missing bound.
        assert!(run_args(&["pack", cat, "--steps", "0", "--shape", "8x8x8", "--abs", "1e-3"])
            .is_err());
        assert!(run_args(&[
            "pack", cat, "--steps", "4", "--shape", "8x8x8", "--abs", "1e-3",
            "--keyframe-every", "0"
        ])
        .is_err());
        assert!(
            run_args(&["pack", cat, "--steps", "4", "--shape", "8x8", "--abs", "1e-3"]).is_err(),
            "RTM needs 3-D"
        );
        assert!(
            run_args(&["pack", cat, "--steps", "4", "--shape", "8x8x4", "--abs", "1e-3"])
                .is_err(),
            "RTM needs extents >= 8"
        );
        assert!(run_args(&["pack", cat, "--steps", "4", "--shape", "8x8x8"]).is_err());
        assert!(
            !std::path::Path::new(cat).exists() && !std::path::Path::new(&format!("{cat}.rqm-partial")).exists(),
            "failed pack left files behind"
        );
        assert!(run_args(&["unpack", "/nonexistent/x.rqc", "/tmp/never_out"]).is_err());
        assert!(run_args(&["catalog", "/nonexistent/x.rqc"]).is_err());
    }

    /// Strict minimal JSON value parser: returns the rest of the input on
    /// success. Rejects `NaN`/`inf` tokens (JSON has no such literals),
    /// which is the whole point — the hand-rolled writers must never emit
    /// them.
    fn json_value(s: &str) -> Result<&str, String> {
        let s = s.trim_start();
        let mut c = s.chars();
        match c.next().ok_or("unexpected end of input")? {
            '{' => {
                let mut s = s[1..].trim_start();
                if let Some(rest) = s.strip_prefix('}') {
                    return Ok(rest);
                }
                loop {
                    s = s.trim_start();
                    if !s.starts_with('"') {
                        return Err(format!("expected object key at {:?}", &s[..s.len().min(20)]));
                    }
                    s = json_value(s)?.trim_start();
                    s = s.strip_prefix(':').ok_or("expected ':'")?;
                    s = json_value(s)?.trim_start();
                    if let Some(rest) = s.strip_prefix(',') {
                        s = rest;
                    } else {
                        return s.strip_prefix('}').ok_or_else(|| "expected '}'".into());
                    }
                }
            }
            '[' => {
                let mut s = s[1..].trim_start();
                if let Some(rest) = s.strip_prefix(']') {
                    return Ok(rest);
                }
                loop {
                    s = json_value(s)?.trim_start();
                    if let Some(rest) = s.strip_prefix(',') {
                        s = rest;
                    } else {
                        return s.strip_prefix(']').ok_or_else(|| "expected ']'".into());
                    }
                }
            }
            '"' => {
                let mut rest = &s[1..];
                loop {
                    let i = rest.find('"').ok_or("unterminated string")?;
                    // Count the backslashes immediately before the quote.
                    let esc = rest[..i].chars().rev().take_while(|&c| c == '\\').count();
                    if esc % 2 == 0 {
                        return Ok(&rest[i + 1..]);
                    }
                    rest = &rest[i + 1..];
                }
            }
            't' => s.strip_prefix("true").ok_or_else(|| "bad literal".into()),
            'f' => s.strip_prefix("false").ok_or_else(|| "bad literal".into()),
            'n' => s.strip_prefix("null").ok_or_else(|| "bad literal".into()),
            '-' | '0'..='9' => {
                let end = s
                    .find(|c: char| !matches!(c, '0'..='9' | '-' | '+' | '.' | 'e' | 'E'))
                    .unwrap_or(s.len());
                s[..end]
                    .parse::<f64>()
                    .map_err(|e| format!("bad number {:?}: {e}", &s[..end]))?;
                Ok(&s[end..])
            }
            other => Err(format!("unexpected character {other:?}")),
        }
    }

    /// Parse a complete JSON document; panic with context on failure.
    fn assert_valid_json(doc: &str) {
        let rest = json_value(doc).unwrap_or_else(|e| panic!("invalid JSON ({e}):\n{doc}"));
        assert!(rest.trim().is_empty(), "trailing garbage after JSON value: {rest:?}");
    }

    #[test]
    fn info_json_is_valid_for_real_archives() {
        let raw = tmp("ij.f32");
        let rqc = tmp("ij.rqc");
        write_field(&raw);
        for codec in ["sz", "zfp", "rolz", "auto"] {
            run_args(&[
                "compress",
                raw.to_str().unwrap(),
                rqc.to_str().unwrap(),
                "--shape",
                "20x30",
                "--abs",
                "1e-3",
                "--codec",
                codec,
                "--chunk-size",
                "7",
            ])
            .unwrap();
            let reader = ArchiveReader::open_path(rqc.to_str().unwrap()).unwrap();
            let total = std::fs::metadata(&rqc).unwrap().len();
            let doc =
                info_json_string(rqc.to_str().unwrap(), total, reader.header(), &reader.chunk_table());
            assert_valid_json(&doc);
            if codec == "rolz" {
                assert!(doc.contains("\"codec\": \"rolz\""), "rolz tag missing:\n{doc}");
                assert!(doc.contains("\"generation\": \"2.4\""), "v2.4 generation missing:\n{doc}");
            }
        }
    }

    #[test]
    fn info_json_maps_non_finite_floats_to_null() {
        // A hand-built header/table with poisoned floats: the document
        // must still parse, with `null` standing in for every bad value.
        let h = Header {
            version: 6,
            scalar_tag: 0x04,
            predictor: rq_predict::PredictorKind::Lorenzo,
            lossless: rq_compress::LosslessStage::None,
            log_transform: false,
            shape: Shape::d2(4, 4),
            abs_eb: f64::NAN,
            radius: 512,
        };
        let table = rq_compress::ChunkTable {
            chunk_rows: 4,
            entries: vec![rq_compress::ChunkEntry {
                start_row: 0,
                rows: 4,
                offset: 32,
                len: 10,
                codec: ChunkCodecKind::Rolz,
                eb: f64::INFINITY,
            }],
        };
        let doc = info_json_string("x\"y.rqc", 42, &h, &table);
        assert_valid_json(&doc);
        assert!(doc.contains("\"abs_bound\": null"), "NaN bound not null:\n{doc}");
        assert!(doc.contains("\"eb\": null"), "infinite eb not null:\n{doc}");
    }
}
