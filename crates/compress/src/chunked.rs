//! Chunk-parallel compression and decompression (container format v2).
//!
//! The field is split into axis-0 slabs ([`rq_grid::slab_chunks`]); each
//! slab runs the same causal kernel as the serial pipeline
//! (`encode_stream` in [`crate::pipeline`]) but as an independent stream:
//! predictor stencils reset at slab boundaries, every slab gets its own
//! Huffman codebook, payload, verbatim section and side channel. Because
//! slabs of a row-major array are contiguous, chunking costs no copies on
//! either side — workers read disjoint input slices and decode into
//! disjoint output slices.
//!
//! The error-bound guarantee is unaffected: the absolute bound is resolved
//! once against the *whole* field (so value-range-relative bounds match
//! the serial pipeline bit for bit) and every point is quantized against
//! that bound inside exactly one chunk.
//!
//! Work is distributed round-robin over `threads` scoped workers
//! (`std::thread::scope` — no dependency, no pool reuse; chunk workloads
//! are large enough that spawn cost is noise). Round-robin keeps the
//! assignment deterministic, and chunk sizes are uniform except for the
//! tail slab, so balance is good without a shared queue.
//!
//! Random access: [`decompress_chunk`] decodes a single slab via the v2
//! chunk index without touching the rest of the container.

use crate::codec::{ChunkCodec, ChunkStats, ZfpChunkCodec};
use crate::config::{Chunking, CodecChoice, CompressorConfig};
use crate::container::{
    container_version, read_chunk_blob, read_container_v2_index, write_container_v2,
    write_container_v2_1, write_container_v2_4, ChunkCodecKind, ChunkEntry, CompressError,
    DecompressError, Header, VERSION_V1, VERSION_V2, VERSION_V2_1, VERSION_V2_4,
};
use crate::pipeline::{decode_stream, resolve_bound, transform_from_header};
use crate::report::{CompressedOutput, CompressionReport};
use crate::stream::SlabEncoder;
use rq_grid::{auto_chunk_rows, slab_chunks, NdArray, Scalar, Shape};
use rq_quant::LinearQuantizer;

/// Minimum elements per auto-sized chunk, so per-chunk codebook/section
/// overhead stays well under a percent of typical chunk payloads.
const AUTO_MIN_CHUNK_ELEMS: usize = 1 << 15;

/// Auto mode aims for this many chunks per worker thread, which keeps the
/// tail of the schedule short without shrinking chunks too far.
const AUTO_CHUNKS_PER_THREAD: usize = 4;

/// The axis-0 rows per chunk that `cfg`'s chunking resolves to for
/// `shape` — i.e. the chunk partition every pipeline (one-shot, streaming,
/// planned) will use. Public so quality-targeted callers can run their
/// per-chunk pre-pass over exactly the partition the writer will encode.
pub fn resolved_chunk_rows(cfg: &CompressorConfig, shape: Shape) -> usize {
    resolve_chunk_rows(cfg, shape)
}

/// Resolve the configured chunking to a concrete row count per slab.
pub(crate) fn resolve_chunk_rows(cfg: &CompressorConfig, shape: Shape) -> usize {
    match cfg.chunking {
        Chunking::Serial => shape.dim(0),
        Chunking::Rows(rows) => rows.clamp(1, shape.dim(0)),
        Chunking::Auto => auto_chunk_rows(
            shape,
            cfg.resolved_threads() * AUTO_CHUNKS_PER_THREAD,
            AUTO_MIN_CHUNK_ELEMS,
        ),
    }
}

/// Run `f` over `items` on up to `threads` scoped workers, round-robin.
/// Results come back in input order. Errors are propagated (first one in
/// input order wins).
pub(crate) fn run_on_workers<I, R, E, F>(items: Vec<I>, threads: usize, f: F) -> Result<Vec<R>, E>
where
    I: Send,
    R: Send,
    E: Send,
    F: Fn(I) -> Result<R, E> + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads <= 1 {
        return items.into_iter().map(&f).collect();
    }
    let n = items.len();
    // Hand worker w items w, w+threads, w+2·threads, …
    let mut per_worker: Vec<Vec<(usize, I)>> = (0..threads).map(|_| Vec::new()).collect();
    for (i, item) in items.into_iter().enumerate() {
        per_worker[i % threads].push((i, item));
    }
    let f = &f;
    let mut slots: Vec<Option<Result<R, E>>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for batch in per_worker {
            handles.push(scope.spawn(move || {
                batch
                    .into_iter()
                    .map(|(i, item)| (i, f(item)))
                    .collect::<Vec<(usize, Result<R, E>)>>()
            }));
        }
        for h in handles {
            for (i, r) in h.join().expect("compression worker panicked") {
                slots[i] = Some(r);
            }
        }
    });
    slots.into_iter().map(|s| s.expect("worker covered every item")).collect()
}

/// Compress `field` into a v2 chunk-indexed container.
///
/// Invoked by [`crate::compress`] for any non-serial [`Chunking`]; callable
/// directly when the caller wants chunked output regardless of `cfg`'s
/// chunking mode (a `Serial` config is treated as one big chunk).
pub fn compress_chunked<T: Scalar>(
    field: &NdArray<T>,
    cfg: &CompressorConfig,
) -> Result<CompressedOutput, CompressError> {
    compress_chunked_with_report(field, cfg).map(|(out, _)| out)
}

/// [`compress_chunked`], also returning aggregated per-stage measurements.
///
/// A thin wrapper over the streaming session's encode core
/// ([`crate::stream`]): the field is cut into chunks, encoded on the
/// worker pool by the shared `SlabEncoder`, and assembled into an
/// index-first v2 (fixed-SZ configs, byte-identical to earlier releases)
/// or v2.1 (adaptive codecs) container.
pub fn compress_chunked_with_report<T: Scalar>(
    field: &NdArray<T>,
    cfg: &CompressorConfig,
) -> Result<(CompressedOutput, CompressionReport), CompressError> {
    cfg.validate().map_err(CompressError::InvalidConfig)?;
    let shape = field.shape();
    let n = shape.len();
    let (abs_eb, transform) = resolve_bound(cfg, field.value_range())?;
    let enc = SlabEncoder::from_cfg(cfg, abs_eb, transform)?;

    let chunk_rows = resolve_chunk_rows(cfg, shape);
    let chunks = slab_chunks(shape, chunk_rows);
    let encoded = enc.encode_chunks(field.as_slice(), chunks)?;

    // Fixed-SZ and fixed-ZFP configs keep their historical generations
    // byte for byte; only rolz-capable policies move to v2.4.
    let version = match cfg.codec {
        CodecChoice::Sz => VERSION_V2,
        CodecChoice::Zfp => VERSION_V2_1,
        CodecChoice::Rolz | CodecChoice::Auto => VERSION_V2_4,
    };
    let header = Header {
        version,
        scalar_tag: T::TAG,
        predictor: cfg.predictor,
        lossless: cfg.lossless,
        log_transform: enc.transform != crate::pipeline::Transform::Identity,
        shape,
        abs_eb,
        radius: cfg.radius,
    };

    let mut per_chunk = Vec::with_capacity(encoded.len());
    let bytes = match version {
        VERSION_V2 => {
            let mut blobs = Vec::with_capacity(encoded.len());
            for ec in encoded {
                blobs.push((ec.rows, ec.blob));
                per_chunk.push((ChunkCodecKind::Sz, ec.stats));
            }
            write_container_v2::<T>(&header, chunk_rows, &blobs)
        }
        VERSION_V2_1 => {
            let mut blobs = Vec::with_capacity(encoded.len());
            for ec in encoded {
                blobs.push((ec.rows, ec.codec, ec.blob));
                per_chunk.push((ec.codec, ec.stats));
            }
            write_container_v2_1::<T>(&header, chunk_rows, &blobs)
        }
        _ => {
            let mut blobs = Vec::with_capacity(encoded.len());
            for ec in encoded {
                blobs.push((ec.rows, ec.codec, ec.eb, ec.blob));
                per_chunk.push((ec.codec, ec.stats));
            }
            write_container_v2_4::<T>(&header, chunk_rows, &blobs)
        }
    };
    let report = aggregate_report(&enc.quantizer, per_chunk, n, T::BITS, bytes.len());
    Ok((CompressedOutput { bytes, n_elements: n, original_bits: T::BITS }, report))
}

/// Fold per-chunk encoding statistics into one [`CompressionReport`]
/// (shared by the one-shot chunked pipeline and the streaming writer).
pub(crate) fn aggregate_report(
    quantizer: &LinearQuantizer,
    per_chunk: Vec<(ChunkCodecKind, ChunkStats)>,
    n_elements: usize,
    original_bits: u32,
    container_bytes: usize,
) -> CompressionReport {
    let mut histogram = vec![0u64; quantizer.alphabet_size() + 1];
    let mut n_symbols = 0usize;
    let mut n_escapes = 0usize;
    let mut n_anchors = 0usize;
    let mut huffman_bytes = 0usize;
    let mut encoded_bytes = 0usize;
    let mut codebook_bytes = 0usize;
    let mut side_bytes = 0usize;
    let mut chunk_codecs = Vec::with_capacity(per_chunk.len());
    let n_chunks = per_chunk.len();
    for (codec, stats) in per_chunk {
        for (acc, add) in histogram.iter_mut().zip(&stats.histogram) {
            *acc += add;
        }
        n_symbols += stats.n_symbols;
        n_escapes += stats.n_escapes;
        n_anchors += stats.n_anchors;
        huffman_bytes += stats.huffman_bytes;
        encoded_bytes += stats.encoded_bytes;
        codebook_bytes += stats.codebook_bytes;
        side_bytes += stats.side_bytes;
        chunk_codecs.push(codec);
    }
    CompressionReport {
        // ZFP chunks have no symbol stream: the histogram and element
        // accounting cover the SZ-coded chunks only.
        n_quantized: n_symbols - n_escapes,
        symbol_histogram: {
            histogram.truncate(quantizer.alphabet_size()); // drop the escape bin
            histogram
        },
        n_unpredictable: n_escapes,
        n_anchors,
        huffman_bytes,
        encoded_bytes,
        codebook_bytes,
        side_bytes,
        container_bytes,
        n_elements,
        original_bits,
        n_chunks,
        chunk_codecs,
    }
}

/// Decode one chunk blob into its output slab, dispatching on the chunk's
/// codec tag. `eb` is the chunk's authoritative absolute bound (the
/// header's bound for pre-v2.3 archives, the per-chunk index entry for
/// v2.3). Shared by the in-memory decompressors and the streaming
/// [`crate::ArchiveReader`].
pub(crate) fn decode_chunk_blob<T: Scalar>(
    blob: &[u8],
    header: &Header,
    codec: ChunkCodecKind,
    eb: f64,
    chunk_shape: Shape,
    out: &mut [T],
) -> Result<(), DecompressError> {
    match codec {
        ChunkCodecKind::Sz => {
            let (lossless, body) = read_chunk_blob::<T>(blob)?;
            decode_stream(
                &body,
                lossless,
                chunk_shape,
                header.predictor,
                LinearQuantizer::new(eb, header.radius),
                transform_from_header(header),
                crate::pipeline::KernelPath::Fast,
                out,
            )
        }
        ChunkCodecKind::Zfp => {
            ChunkCodec::<T>::decode(&ZfpChunkCodec::new(eb), blob, chunk_shape, out)
        }
        ChunkCodecKind::Rolz => {
            let codec = crate::rolz::RolzChunkCodec::new(
                header.predictor,
                LinearQuantizer::new(eb, header.radius),
            )
            .with_transform(transform_from_header(header));
            ChunkCodec::<T>::decode(&codec, blob, chunk_shape, out)
        }
    }
}

/// Decode one chunk blob into its output slab, handling the v1 special
/// case (the v1 "chunk" is the whole container body: four sections with no
/// per-chunk flag byte, the header's lossless flag authoritative). This is
/// the blob decoder every random-access reader — streaming, concurrent,
/// parallel — dispatches through.
pub(crate) fn decode_entry_blob<T: Scalar>(
    blob: &[u8],
    header: &Header,
    entry: ChunkEntry,
    chunk_shape: Shape,
    out: &mut [T],
) -> Result<(), DecompressError> {
    if header.version == VERSION_V1 {
        let mut pos = 0usize;
        let body = crate::container::read_sections_body::<T>(blob, &mut pos)?;
        decode_stream(
            &body,
            header.lossless,
            chunk_shape,
            header.predictor,
            LinearQuantizer::new(header.abs_eb, header.radius),
            transform_from_header(header),
            crate::pipeline::KernelPath::Fast,
            out,
        )
    } else {
        decode_chunk_blob(blob, header, entry.codec, entry.eb, chunk_shape, out)
    }
}

/// Decode one located chunk of an in-memory container into its output
/// slab.
fn decode_entry<T: Scalar>(
    bytes: &[u8],
    header: &Header,
    entry: ChunkEntry,
    chunk_shape: Shape,
    out: &mut [T],
) -> Result<(), DecompressError> {
    decode_chunk_blob(
        &bytes[entry.offset..entry.offset + entry.len],
        header,
        entry.codec,
        entry.eb,
        chunk_shape,
        out,
    )
}

/// Shape of the slab covered by `entry` within a field of shape `shape`.
pub(crate) fn entry_shape(shape: Shape, entry: ChunkEntry) -> Shape {
    let mut dims = [0usize; rq_grid::MAX_DIMS];
    dims[..shape.ndim()].copy_from_slice(shape.dims());
    dims[0] = entry.rows;
    Shape::new(&dims[..shape.ndim()])
}

/// Decompress any container version with an explicit worker-thread count
/// (`0` = one per available CPU). v1 containers ignore the thread count
/// (their single stream is inherently sequential).
///
/// The count is clamped to `available_parallelism` — the same policy as
/// [`crate::ArchiveReader::with_threads`]: extra workers beyond the core
/// count only add dispatch and context-switch overhead (measurably
/// *slower* than serial decode on a 1-CPU host) without any more decode
/// bandwidth to use. Use [`decompress_with_threads_exact`] to
/// oversubscribe deliberately.
pub fn decompress_with_threads<T: Scalar>(
    bytes: &[u8],
    threads: usize,
) -> Result<NdArray<T>, DecompressError> {
    let cpus = std::thread::available_parallelism().map(|t| t.get()).unwrap_or(1);
    decompress_with_threads_exact(bytes, if threads == 0 { cpus } else { threads.min(cpus) })
}

/// [`decompress_with_threads`] without the `available_parallelism`
/// clamp: exactly `threads` workers (`0` is treated as `1`), even beyond
/// the core count. Decoded bytes are identical either way; this exists
/// so tests can exercise the worker pool's dispatch machinery on
/// machines with few cores.
pub fn decompress_with_threads_exact<T: Scalar>(
    bytes: &[u8],
    threads: usize,
) -> Result<NdArray<T>, DecompressError> {
    if container_version(bytes)? == VERSION_V1 {
        return crate::pipeline::decompress(bytes);
    }
    let idx = read_container_v2_index::<T>(bytes)?;
    let header = idx.header;
    let shape = header.shape;
    let threads = threads.max(1);

    let mut out = vec![T::zero(); shape.len()];
    // Slabs are contiguous and ordered: split the output buffer into one
    // disjoint mutable slice per chunk.
    let mut slabs: Vec<(ChunkEntry, Shape, &mut [T])> = Vec::with_capacity(idx.entries.len());
    let mut rest: &mut [T] = &mut out;
    for &entry in &idx.entries {
        let cshape = entry_shape(shape, entry);
        let (slab, tail) = rest.split_at_mut(cshape.len());
        slabs.push((entry, cshape, slab));
        rest = tail;
    }
    debug_assert!(rest.is_empty());

    run_on_workers(slabs, threads, |(entry, cshape, slab)| {
        decode_entry::<T>(bytes, &header, entry, cshape, slab)
    })?;

    Ok(NdArray::from_vec(shape, out))
}

/// Decode a single chunk of a v2 container (random access).
///
/// Returns the slab's first axis-0 row and the decoded slab as a
/// standalone array. For a v1 container only chunk 0 exists (the whole
/// field).
pub fn decompress_chunk<T: Scalar>(
    bytes: &[u8],
    chunk: usize,
) -> Result<(usize, NdArray<T>), DecompressError> {
    if container_version(bytes)? == VERSION_V1 {
        if chunk != 0 {
            return Err(DecompressError::ChunkOutOfRange { requested: chunk, available: 1 });
        }
        return crate::pipeline::decompress(bytes).map(|a| (0, a));
    }
    let idx = read_container_v2_index::<T>(bytes)?;
    let Some(&entry) = idx.entries.get(chunk) else {
        return Err(DecompressError::ChunkOutOfRange {
            requested: chunk,
            available: idx.entries.len(),
        });
    };
    let cshape = entry_shape(idx.header.shape, entry);
    let mut out = vec![T::zero(); cshape.len()];
    decode_entry::<T>(bytes, &idx.header, entry, cshape, &mut out)?;
    Ok((entry.start_row, NdArray::from_vec(cshape, out)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{compress, compress_with_report, decompress};
    use crate::container::chunk_count;
    use rq_predict::PredictorKind;
    use rq_quant::ErrorBoundMode;

    fn wavy(shape: Shape) -> NdArray<f32> {
        let mut lin = 0u64;
        NdArray::from_fn(shape, |ix| {
            let mut v = 0.0f64;
            for (a, &c) in ix.iter().enumerate() {
                v += ((c as f64) * 0.11 * (a + 1) as f64).sin() * (10.0 / (a + 1) as f64);
            }
            lin += 1;
            let mut h = lin;
            h ^= h >> 33;
            h = h.wrapping_mul(0xff51afd7ed558ccd);
            h ^= h >> 33;
            h = h.wrapping_mul(0xc4ceb9fe1a85ec53);
            h ^= h >> 33;
            v += ((h >> 40) as f64 / (1u64 << 24) as f64 - 0.5) * 0.04;
            v as f32
        })
    }

    fn assert_bounded(orig: &NdArray<f32>, recon: &NdArray<f32>, eb: f64) {
        for (i, (&a, &b)) in orig.as_slice().iter().zip(recon.as_slice()).enumerate() {
            let err = (a as f64 - b as f64).abs();
            assert!(err <= eb * (1.0 + 1e-6), "element {i}: |{a} - {b}| = {err} > {eb}");
        }
    }

    #[test]
    fn single_chunk_matches_serial_reconstruction() {
        // One chunk covering the whole field runs the identical kernel on
        // identical input: the reconstruction must match the serial
        // pipeline element for element.
        let field = wavy(Shape::d3(16, 20, 24));
        for pred in PredictorKind::all() {
            let eb = 1e-3;
            let serial_cfg = CompressorConfig::new(pred, ErrorBoundMode::Abs(eb));
            let chunked_cfg = serial_cfg.chunked(16).with_threads(2);
            let serial = decompress::<f32>(&compress(&field, &serial_cfg).unwrap().bytes).unwrap();
            let out = compress(&field, &chunked_cfg).unwrap();
            assert_eq!(chunk_count(&out.bytes).unwrap(), 1);
            let chunked = decompress::<f32>(&out.bytes).unwrap();
            assert_eq!(
                serial.as_slice(),
                chunked.as_slice(),
                "{}: 1-chunk reconstruction diverged from serial",
                pred.name()
            );
        }
    }

    #[test]
    fn multi_chunk_roundtrip_all_predictors() {
        let field = wavy(Shape::d3(24, 12, 10));
        for pred in PredictorKind::all() {
            for rows in [1, 5, 7, 24] {
                let eb = 1e-2;
                let cfg = CompressorConfig::new(pred, ErrorBoundMode::Abs(eb))
                    .chunked(rows)
                    .with_threads(4);
                let (out, rep) = compress_with_report(&field, &cfg).unwrap();
                assert_eq!(rep.n_chunks, 24usize.div_ceil(rows), "{}", pred.name());
                assert_eq!(chunk_count(&out.bytes).unwrap(), rep.n_chunks);
                let back = decompress::<f32>(&out.bytes).unwrap();
                assert_bounded(&field, &back, eb);
            }
        }
    }

    #[test]
    fn thread_counts_do_not_change_bytes() {
        // The container must be a pure function of (field, cfg modulo
        // threads): parallelism is an implementation detail.
        let field = wavy(Shape::d3(32, 16, 16));
        let base = CompressorConfig::new(PredictorKind::Interpolation, ErrorBoundMode::Abs(1e-3))
            .chunked(8);
        let reference = compress(&field, &base.with_threads(1)).unwrap().bytes;
        for threads in [2, 3, 8] {
            let bytes = compress(&field, &base.with_threads(threads)).unwrap().bytes;
            assert_eq!(reference, bytes, "threads={threads}");
        }
        // Parallel decode agrees with single-threaded decode (`_exact`
        // so the pool really runs 8-wide even on a small host).
        let a = decompress_with_threads::<f32>(&reference, 1).unwrap();
        let b = decompress_with_threads_exact::<f32>(&reference, 8).unwrap();
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn auto_chunking_roundtrips() {
        let field = wavy(Shape::d3(64, 16, 16));
        let cfg = CompressorConfig::new(PredictorKind::Lorenzo, ErrorBoundMode::Abs(1e-3))
            .auto_chunked()
            .with_threads(4);
        let (out, rep) = compress_with_report(&field, &cfg).unwrap();
        assert!(rep.n_chunks >= 1);
        let back = decompress::<f32>(&out.bytes).unwrap();
        assert_bounded(&field, &back, 1e-3);
    }

    #[test]
    fn random_access_chunk_decode() {
        let field = wavy(Shape::d3(20, 10, 8));
        let cfg = CompressorConfig::new(PredictorKind::Lorenzo, ErrorBoundMode::Abs(1e-3))
            .chunked(6)
            .with_threads(2);
        let out = compress(&field, &cfg).unwrap();
        let n_chunks = chunk_count(&out.bytes).unwrap();
        assert_eq!(n_chunks, 4); // 6+6+6+2 rows

        let full = decompress::<f32>(&out.bytes).unwrap();
        let row_elems = 10 * 8;
        for i in 0..n_chunks {
            let (start_row, slab) = decompress_chunk::<f32>(&out.bytes, i).unwrap();
            assert_eq!(start_row, i * 6);
            let expect_rows = if i == 3 { 2 } else { 6 };
            assert_eq!(slab.shape().dims(), &[expect_rows, 10, 8]);
            let lo = start_row * row_elems;
            assert_eq!(slab.as_slice(), &full.as_slice()[lo..lo + slab.len()]);
        }
        assert!(matches!(
            decompress_chunk::<f32>(&out.bytes, n_chunks),
            Err(DecompressError::ChunkOutOfRange { .. })
        ));
    }

    #[test]
    fn random_access_on_v1_container() {
        let field = wavy(Shape::d2(12, 12));
        let cfg = CompressorConfig::new(PredictorKind::Lorenzo, ErrorBoundMode::Abs(1e-3));
        let out = compress(&field, &cfg).unwrap();
        let (start, slab) = decompress_chunk::<f32>(&out.bytes, 0).unwrap();
        assert_eq!(start, 0);
        assert_eq!(slab.shape().dims(), field.shape().dims());
        assert!(decompress_chunk::<f32>(&out.bytes, 1).is_err());
    }

    #[test]
    fn value_range_relative_bound_is_global() {
        // The bound must resolve against the whole field's range, not a
        // chunk's: a chunk that only sees a flat region must still use the
        // global range.
        let field = NdArray::<f32>::from_fn(Shape::d2(16, 32), |ix| {
            if ix[0] < 8 {
                0.0
            } else {
                (ix[0] * 32 + ix[1]) as f32
            }
        });
        let rel = 1e-3;
        let cfg = CompressorConfig::new(PredictorKind::Lorenzo, ErrorBoundMode::ValueRangeRelative(rel))
            .chunked(4);
        let out = compress(&field, &cfg).unwrap();
        let back = decompress::<f32>(&out.bytes).unwrap();
        let abs = rel * field.value_range();
        assert_bounded(&field, &back, abs);
        // And the recorded bound matches the serial pipeline's.
        let serial = compress(&field, &CompressorConfig::new(PredictorKind::Lorenzo, ErrorBoundMode::ValueRangeRelative(rel))).unwrap();
        let hc = crate::container::peek_header(&out.bytes).unwrap();
        let hs = crate::container::peek_header(&serial.bytes).unwrap();
        assert_eq!(hc.abs_eb, hs.abs_eb);
    }

    #[test]
    fn pointwise_relative_bound_chunked() {
        let field = NdArray::<f32>::from_fn(Shape::d2(24, 20), |ix| {
            (1.0 + (ix[0] as f64 * 0.2).sin().abs() * 100.0 + ix[1] as f64) as f32
        });
        let ratio = 1e-3;
        let cfg = CompressorConfig::new(
            PredictorKind::Lorenzo,
            ErrorBoundMode::PointwiseRelative(ratio),
        )
        .chunked(5);
        let out = compress(&field, &cfg).unwrap();
        let back = decompress::<f32>(&out.bytes).unwrap();
        for (&a, &b) in field.as_slice().iter().zip(back.as_slice()) {
            let rel = ((a - b).abs() as f64) / (a.abs() as f64);
            assert!(rel <= ratio * (1.0 + 1e-5), "rel err {rel}");
        }
    }

    #[test]
    fn chunked_report_is_self_consistent() {
        let field = wavy(Shape::d2(60, 60));
        let cfg = CompressorConfig::new(PredictorKind::Lorenzo, ErrorBoundMode::Abs(2e-2))
            .chunked(16);
        let (out, rep) = compress_with_report(&field, &cfg).unwrap();
        assert_eq!(rep.n_elements, 60 * 60);
        assert_eq!(rep.container_bytes, out.bytes.len());
        assert_eq!(rep.n_quantized + rep.n_unpredictable, rep.n_elements);
        let hist_total: u64 = rep.symbol_histogram.iter().sum();
        assert_eq!(hist_total as usize, rep.n_quantized);
        assert_eq!(rep.n_chunks, 4);
    }

    #[test]
    fn chunked_tiny_and_awkward_shapes() {
        for pred in PredictorKind::all() {
            for shape in [Shape::d1(1), Shape::d1(7), Shape::d2(1, 3), Shape::d3(3, 1, 2)] {
                let field = wavy(shape);
                let cfg = CompressorConfig::new(pred, ErrorBoundMode::Abs(1e-3))
                    .chunked(2)
                    .with_threads(3);
                let out = compress(&field, &cfg).unwrap();
                let back = decompress::<f32>(&out.bytes).unwrap();
                assert_eq!(back.shape().dims(), shape.dims());
                assert_bounded(&field, &back, 1e-3);
            }
        }
    }

    #[test]
    fn zero_chunk_rows_is_error_not_panic() {
        // `chunked(0)` panics in the builder, but a literal
        // `Chunking::Rows(0)` bypasses it — the pipeline must return
        // InvalidConfig instead of panicking inside the chunker.
        let field = wavy(Shape::d2(8, 8));
        let mut cfg = CompressorConfig::new(PredictorKind::Lorenzo, ErrorBoundMode::Abs(1e-3));
        cfg.chunking = Chunking::Rows(0);
        assert!(matches!(
            compress(&field, &cfg),
            Err(CompressError::InvalidConfig(_))
        ));
        cfg.codec = CodecChoice::Auto;
        assert!(matches!(
            compress(&field, &cfg),
            Err(CompressError::InvalidConfig(_))
        ));
    }

    #[test]
    fn corrupt_v2_is_error_not_panic() {
        let field = wavy(Shape::d2(30, 30));
        let cfg =
            CompressorConfig::new(PredictorKind::Lorenzo, ErrorBoundMode::Abs(1e-3)).chunked(8);
        let out = compress(&field, &cfg).unwrap();
        for cut in [10, out.bytes.len() / 2, out.bytes.len() - 3] {
            let _ = decompress::<f32>(&out.bytes[..cut]); // must not panic
        }
        let mut mangled = out.bytes.clone();
        let mid = mangled.len() / 2;
        mangled[mid] ^= 0xff;
        let _ = decompress::<f32>(&mangled); // must not panic
        assert!(matches!(
            decompress_with_threads::<f64>(&out.bytes, 2),
            Err(DecompressError::ScalarMismatch { .. })
        ));
    }

    /// Axis-0 rows `0..mid` are a smooth low-amplitude wave (SZ's home
    /// turf); rows `mid..` are high-amplitude hash noise whose prediction
    /// errors blow past the quantizer's code range at tight bounds, the
    /// regime where the bit-plane coder wins.
    fn mixed_field(d0: usize, mid: usize) -> NdArray<f32> {
        rq_datagen::fields::mixed_smooth_turbulent(Shape::d3(d0, 12, 12), mid, 40.0)
    }

    #[test]
    fn auto_codec_splits_mixed_field() {
        // The acceptance scenario: on a mixed smooth/turbulent field the
        // scheduler must give at least two chunks different codecs, and
        // the round-trip must stay inside the bound everywhere.
        let field = mixed_field(32, 16);
        let eb = 1e-4;
        let cfg = CompressorConfig::new(PredictorKind::Lorenzo, ErrorBoundMode::Abs(eb))
            .chunked(8)
            .with_codec(CodecChoice::Auto)
            .with_threads(2);
        let (out, rep) = compress_with_report(&field, &cfg).unwrap();
        assert_eq!(rep.n_chunks, 4);
        let sz = rep.chunk_codecs.iter().filter(|&&c| c == ChunkCodecKind::Sz).count();
        let zfp = rep.chunk_codecs.iter().filter(|&&c| c == ChunkCodecKind::Zfp).count();
        assert!(
            sz >= 1 && zfp >= 1,
            "expected a codec split, got {:?}",
            rep.chunk_codecs
        );
        // Smooth slabs to sz, turbulent slabs to zfp, specifically.
        assert_eq!(rep.chunk_codecs[0], ChunkCodecKind::Sz);
        assert_eq!(rep.chunk_codecs[3], ChunkCodecKind::Zfp);
        // The v2.1 chunk table agrees with the report.
        let table = crate::container::chunk_table(&out.bytes).unwrap();
        let tags: Vec<ChunkCodecKind> = table.entries.iter().map(|e| e.codec).collect();
        assert_eq!(tags, rep.chunk_codecs);
        let back = decompress::<f32>(&out.bytes).unwrap();
        assert_bounded(&field, &back, eb);
    }

    #[test]
    fn auto_codec_beats_or_matches_both_fixed_choices() {
        // The point of the scheduler: on the mixed field, adaptive output
        // should be no larger than either fixed codec (within the index
        // overhead of a few bytes per chunk).
        let field = mixed_field(32, 16);
        let eb = 1e-4;
        let base = CompressorConfig::new(PredictorKind::Lorenzo, ErrorBoundMode::Abs(eb))
            .chunked(8);
        let auto =
            compress(&field, &base.with_codec(CodecChoice::Auto)).unwrap().bytes.len();
        let sz = compress(&field, &base).unwrap().bytes.len();
        let zfp = compress(&field, &base.with_codec(CodecChoice::Zfp)).unwrap().bytes.len();
        let slack = 8 * 4; // tag + rounding per chunk
        assert!(auto <= sz + slack, "auto {auto} vs sz {sz}");
        assert!(auto <= zfp + slack, "auto {auto} vs zfp {zfp}");
    }

    #[test]
    fn fixed_zfp_codec_roundtrips_v2_1() {
        let field = wavy(Shape::d3(20, 10, 8));
        let eb = 1e-3;
        let cfg = CompressorConfig::new(PredictorKind::Lorenzo, ErrorBoundMode::Abs(eb))
            .chunked(6)
            .with_codec(CodecChoice::Zfp)
            .with_threads(3);
        let (out, rep) = compress_with_report(&field, &cfg).unwrap();
        assert!(rep.chunk_codecs.iter().all(|&c| c == ChunkCodecKind::Zfp));
        assert_eq!(crate::container::peek_header(&out.bytes).unwrap().version, 3);
        let back = decompress::<f32>(&out.bytes).unwrap();
        assert_bounded(&field, &back, eb);
        // Random access decodes zfp chunks too.
        let full = decompress::<f32>(&out.bytes).unwrap();
        let (start_row, slab) = decompress_chunk::<f32>(&out.bytes, 1).unwrap();
        assert_eq!(start_row, 6);
        let lo = 6 * 10 * 8;
        assert_eq!(slab.as_slice(), &full.as_slice()[lo..lo + slab.len()]);
    }

    #[test]
    fn serial_chunking_with_non_sz_codec_is_one_tagged_chunk() {
        let field = wavy(Shape::d2(30, 30));
        let cfg = CompressorConfig::new(PredictorKind::Lorenzo, ErrorBoundMode::Abs(1e-3))
            .with_codec(CodecChoice::Auto);
        let (out, rep) = compress_with_report(&field, &cfg).unwrap();
        assert_eq!(rep.n_chunks, 1);
        assert_eq!(chunk_count(&out.bytes).unwrap(), 1);
        let back = decompress::<f32>(&out.bytes).unwrap();
        assert_bounded(&field, &back, 1e-3);
    }

    #[test]
    fn auto_codec_bytes_independent_of_threads() {
        let field = mixed_field(24, 12);
        let base = CompressorConfig::new(PredictorKind::Lorenzo, ErrorBoundMode::Abs(1e-4))
            .chunked(6)
            .with_codec(CodecChoice::Auto);
        let reference = compress(&field, &base.with_threads(1)).unwrap().bytes;
        for threads in [2, 4, 8] {
            let bytes = compress(&field, &base.with_threads(threads)).unwrap().bytes;
            assert_eq!(reference, bytes, "threads={threads}");
        }
    }

    #[test]
    fn zfp_codec_rejects_pointwise_relative_bound() {
        let field = NdArray::<f32>::from_fn(Shape::d2(16, 16), |ix| 1.0 + ix[0] as f32);
        let cfg = CompressorConfig::new(
            PredictorKind::Lorenzo,
            ErrorBoundMode::PointwiseRelative(1e-3),
        )
        .chunked(4)
        .with_codec(CodecChoice::Zfp);
        assert!(matches!(
            compress(&field, &cfg),
            Err(CompressError::Unsupported(_))
        ));
    }

    #[test]
    fn auto_codec_falls_back_to_sz_for_pointwise_relative() {
        let field = NdArray::<f32>::from_fn(Shape::d2(24, 16), |ix| {
            (1.0 + (ix[0] as f64 * 0.2).sin().abs() * 100.0 + ix[1] as f64) as f32
        });
        let ratio = 1e-3;
        let cfg = CompressorConfig::new(
            PredictorKind::Lorenzo,
            ErrorBoundMode::PointwiseRelative(ratio),
        )
        .chunked(6)
        .with_codec(CodecChoice::Auto);
        let (out, rep) = compress_with_report(&field, &cfg).unwrap();
        assert!(rep.chunk_codecs.iter().all(|&c| c == ChunkCodecKind::Sz));
        let back = decompress::<f32>(&out.bytes).unwrap();
        for (&a, &b) in field.as_slice().iter().zip(back.as_slice()) {
            let rel = ((a - b).abs() as f64) / (a.abs() as f64);
            assert!(rel <= ratio * (1.0 + 1e-5), "rel err {rel}");
        }
    }

    #[test]
    fn f64_chunked_roundtrip() {
        let field = NdArray::<f64>::from_fn(Shape::d2(30, 30), |ix| {
            (ix[0] as f64 * 0.3).cos() * 5.0 + ix[1] as f64 * 0.01
        });
        let cfg = CompressorConfig::new(PredictorKind::Interpolation, ErrorBoundMode::Abs(1e-6))
            .chunked(9)
            .with_threads(2);
        let out = compress(&field, &cfg).unwrap();
        let back = decompress::<f64>(&out.bytes).unwrap();
        for (&a, &b) in field.as_slice().iter().zip(back.as_slice()) {
            assert!((a - b).abs() <= 1e-6 * (1.0 + 1e-9));
        }
    }
}
