//! The per-chunk codec abstraction.
//!
//! Container v2.1 lets every axis-0 slab be compressed by a different
//! backend. This module unifies the two backends behind one trait:
//!
//! * [`SzChunkCodec`] — the SZ prediction path assembled from
//!   `rq-predict` + `rq-quant` + `rq-encoding` (the chunk kernel of
//!   [`crate::pipeline`], serialized as a v2 chunk blob);
//! * [`ZfpChunkCodec`] — the `rq-zfp` transform path (block transform +
//!   embedded bitplane coder, serialized as a self-describing `RQZF`
//!   stream).
//!
//! Both honor the same resolved absolute error bound, which is what makes
//! them interchangeable per chunk: whichever backend the scheduler picks,
//! `max|x − x′| ≤ eb` holds for the slab.

use crate::config::LosslessStage;
use crate::container::{
    read_chunk_blob, write_chunk_blob, ChunkCodecKind, CompressError, DecompressError,
};
use crate::pipeline::{decode_stream, encode_stream, KernelPath, Transform};
use rq_grid::{Scalar, Shape};
use rq_predict::PredictorKind;
use rq_quant::LinearQuantizer;

/// Per-chunk encoding statistics, aggregated into the
/// [`crate::CompressionReport`].
///
/// The SZ path fills every field; the ZFP path has no symbol stream, so
/// its stats are all zero (its cost shows up only in the blob length).
#[derive(Clone, Debug, Default)]
pub struct ChunkStats {
    /// Symbol histogram including the escape bin (empty for ZFP chunks).
    pub histogram: Vec<u64>,
    /// Number of quantization symbols emitted.
    pub n_symbols: usize,
    /// Number of escape (verbatim) values among the symbols.
    pub n_escapes: usize,
    /// Number of interpolation anchors stored verbatim.
    pub n_anchors: usize,
    /// Payload bytes before the optional lossless stage.
    pub huffman_bytes: usize,
    /// Payload bytes after the optional lossless stage.
    pub encoded_bytes: usize,
    /// Serialized codebook bytes.
    pub codebook_bytes: usize,
    /// Side-channel bytes (regression coefficients).
    pub side_bytes: usize,
}

/// One error-bounded chunk codec: encodes an axis-0 slab to a
/// self-contained blob and decodes it back into a caller-provided slice.
///
/// Implementations must be pure functions of `(data, shape)` plus their
/// own configuration — the chunk-parallel pipeline relies on that to keep
/// container bytes independent of the worker-thread count.
pub trait ChunkCodec<T: Scalar>: Sync {
    /// The container tag recorded for blobs this codec produces.
    fn kind(&self) -> ChunkCodecKind;

    /// Encode one slab (`data.len() == shape.len()`).
    fn encode(&self, data: &[T], shape: Shape) -> Result<(Vec<u8>, ChunkStats), CompressError>;

    /// Decode one blob into `out` (`out.len() == shape.len()`).
    fn decode(&self, blob: &[u8], shape: Shape, out: &mut [T])
        -> Result<(), DecompressError>;
}

/// The SZ prediction path as a [`ChunkCodec`].
#[derive(Clone, Copy, Debug)]
pub struct SzChunkCodec {
    /// Predictor family for the causal traversal.
    pub predictor: PredictorKind,
    /// Quantizer (absolute bound + radius).
    pub quantizer: LinearQuantizer,
    /// Value-domain transform (identity, or log for point-wise relative
    /// bounds).
    pub(crate) transform: Transform,
    /// Optional lossless stage configuration.
    pub lossless: LosslessStage,
    /// Which kernel implementations to run (production is always
    /// [`KernelPath::Fast`]; the reference path exists for the
    /// differential harness and the `codec_kernels` bench).
    pub(crate) path: KernelPath,
}

impl SzChunkCodec {
    /// Codec for a resolved absolute bound with the identity transform.
    pub fn new(predictor: PredictorKind, quantizer: LinearQuantizer, lossless: LosslessStage) -> Self {
        SzChunkCodec {
            predictor,
            quantizer,
            transform: Transform::Identity,
            lossless,
            path: KernelPath::Fast,
        }
    }

    /// Same, with an explicit transform (crate-internal: the transform
    /// enum is not public API).
    pub(crate) fn with_transform(mut self, transform: Transform) -> Self {
        self.transform = transform;
        self
    }

    /// Same, forcing a kernel path (crate-internal: used by the
    /// `kernels` test/bench surface; the container bytes are identical
    /// either way, which is exactly what the differential tests assert).
    pub(crate) fn with_kernel_path(mut self, path: KernelPath) -> Self {
        self.path = path;
        self
    }
}

impl<T: Scalar> ChunkCodec<T> for SzChunkCodec {
    fn kind(&self) -> ChunkCodecKind {
        ChunkCodecKind::Sz
    }

    fn encode(&self, data: &[T], shape: Shape) -> Result<(Vec<u8>, ChunkStats), CompressError> {
        let stream = encode_stream(
            data,
            shape,
            self.predictor,
            self.quantizer,
            self.transform,
            self.lossless,
            self.path,
        )?;
        let blob = write_chunk_blob::<T>(
            stream.lossless_applied,
            &stream.codebook,
            &stream.payload,
            &stream.verbatim,
            &stream.side,
        );
        let stats = ChunkStats {
            n_symbols: stream.n_symbols,
            n_escapes: stream.n_escapes,
            n_anchors: stream.n_anchors,
            huffman_bytes: stream.huffman_bytes,
            encoded_bytes: stream.payload.len(),
            codebook_bytes: stream.codebook.len(),
            side_bytes: stream.side.len(),
            histogram: stream.histogram,
        };
        Ok((blob, stats))
    }

    fn decode(
        &self,
        blob: &[u8],
        shape: Shape,
        out: &mut [T],
    ) -> Result<(), DecompressError> {
        let (lossless, body) = read_chunk_blob::<T>(blob)?;
        decode_stream(
            &body,
            lossless,
            shape,
            self.predictor,
            self.quantizer,
            self.transform,
            self.path,
            out,
        )
    }
}

/// The ZFP transform path as a [`ChunkCodec`].
///
/// Only valid for identity-transform (absolute / value-range-relative)
/// bounds: the bitplane coder has no escape mechanism for the log-domain
/// trick that realizes point-wise relative bounds.
#[derive(Clone, Copy, Debug)]
pub struct ZfpChunkCodec {
    /// Absolute error bound the bitplane truncation guarantees.
    pub tolerance: f64,
}

impl ZfpChunkCodec {
    /// Codec for a resolved absolute bound.
    pub fn new(tolerance: f64) -> Self {
        ZfpChunkCodec { tolerance }
    }
}

impl<T: Scalar> ChunkCodec<T> for ZfpChunkCodec {
    fn kind(&self) -> ChunkCodecKind {
        ChunkCodecKind::Zfp
    }

    fn encode(&self, data: &[T], shape: Shape) -> Result<(Vec<u8>, ChunkStats), CompressError> {
        // The tolerance was validated upstream by resolve_bound, so any
        // failure here is a codec problem, not a bound problem.
        let blob = rq_zfp::zfp_compress_slice(data, shape, self.tolerance)
            .map_err(|e| CompressError::Unsupported(format!("zfp chunk encoding: {e}")))?;
        Ok((blob, ChunkStats::default()))
    }

    fn decode(
        &self,
        blob: &[u8],
        shape: Shape,
        out: &mut [T],
    ) -> Result<(), DecompressError> {
        rq_zfp::zfp_decompress_into(blob, shape, out).map_err(|e| match e {
            rq_zfp::ZfpError::ScalarMismatch => {
                DecompressError::Corrupt("zfp chunk scalar tag")
            }
            rq_zfp::ZfpError::Corrupt(what) => DecompressError::Corrupt(what),
            rq_zfp::ZfpError::BadTolerance(_) => DecompressError::Corrupt("zfp tolerance"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rq_quant::DEFAULT_RADIUS;

    fn slab() -> (Vec<f32>, Shape) {
        let shape = Shape::d2(12, 20);
        let mut data = Vec::with_capacity(shape.len());
        for ix in shape.indices() {
            data.push(((ix[0] as f32) * 0.4).sin() * 3.0 + (ix[1] as f32) * 0.05);
        }
        (data, shape)
    }

    fn roundtrip_codec(codec: &dyn ChunkCodec<f32>, eb: f64) {
        let (data, shape) = slab();
        let (blob, _stats) = codec.encode(&data, shape).unwrap();
        let mut out = vec![0f32; shape.len()];
        codec.decode(&blob, shape, &mut out).unwrap();
        for (i, (&a, &b)) in data.iter().zip(&out).enumerate() {
            assert!(
                ((a - b).abs() as f64) <= eb * (1.0 + 1e-6),
                "element {i}: |{a} - {b}| > {eb}"
            );
        }
    }

    #[test]
    fn sz_codec_roundtrips_within_bound() {
        let eb = 1e-3;
        let codec = SzChunkCodec::new(
            PredictorKind::Lorenzo,
            LinearQuantizer::new(eb, DEFAULT_RADIUS),
            LosslessStage::RleLzss,
        );
        roundtrip_codec(&codec, eb);
    }

    #[test]
    fn zfp_codec_roundtrips_within_bound() {
        let eb = 1e-3;
        roundtrip_codec(&ZfpChunkCodec::new(eb), eb);
    }

    #[test]
    fn codecs_reject_each_others_blobs() {
        let (data, shape) = slab();
        let eb = 1e-3;
        let sz = SzChunkCodec::new(
            PredictorKind::Lorenzo,
            LinearQuantizer::new(eb, DEFAULT_RADIUS),
            LosslessStage::RleLzss,
        );
        let zfp = ZfpChunkCodec::new(eb);
        let (sz_blob, _) = ChunkCodec::<f32>::encode(&sz, &data, shape).unwrap();
        let (zfp_blob, _) = ChunkCodec::<f32>::encode(&zfp, &data, shape).unwrap();
        let mut out = vec![0f32; shape.len()];
        assert!(ChunkCodec::<f32>::decode(&sz, &zfp_blob, shape, &mut out).is_err());
        assert!(ChunkCodec::<f32>::decode(&zfp, &sz_blob, shape, &mut out).is_err());
    }

    #[test]
    fn zfp_codec_checks_shape() {
        let (data, shape) = slab();
        let zfp = ZfpChunkCodec::new(1e-3);
        let (blob, _) = ChunkCodec::<f32>::encode(&zfp, &data, shape).unwrap();
        let wrong = Shape::d2(20, 12);
        let mut out = vec![0f32; wrong.len()];
        assert!(matches!(
            ChunkCodec::<f32>::decode(&zfp, &blob, wrong, &mut out),
            Err(DecompressError::Corrupt("shape mismatch"))
        ));
    }
}
