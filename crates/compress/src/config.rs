//! Compressor configuration.

use rq_predict::PredictorKind;
use rq_quant::{ErrorBoundMode, DEFAULT_RADIUS};

/// Whether the optional lossless stage runs after Huffman coding.
///
/// The paper's Fig. 3 separates "Huffman only" from "Huffman + lossless";
/// both configurations are first-class here so the model's two accuracy
/// columns (Table II "Huff Err" vs "Huff+LL Err") can each be measured.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LosslessStage {
    /// Huffman output stored as-is.
    None,
    /// Huffman output further compressed with zero-RLE + LZSS
    /// (the Zstandard stand-in).
    RleLzss,
}

/// Full configuration of one compression run.
#[derive(Clone, Copy, Debug)]
pub struct CompressorConfig {
    /// Prediction method.
    pub predictor: PredictorKind,
    /// User error-bound mode.
    pub bound: ErrorBoundMode,
    /// Quantization code radius.
    pub radius: u32,
    /// Optional lossless stage.
    pub lossless: LosslessStage,
}

impl CompressorConfig {
    /// Config with the default radius and the lossless stage enabled.
    pub fn new(predictor: PredictorKind, bound: ErrorBoundMode) -> Self {
        CompressorConfig { predictor, bound, radius: DEFAULT_RADIUS, lossless: LosslessStage::RleLzss }
    }

    /// Disable the optional lossless stage (Huffman only).
    pub fn huffman_only(mut self) -> Self {
        self.lossless = LosslessStage::None;
        self
    }

    /// Override the quantization radius.
    pub fn with_radius(mut self, radius: u32) -> Self {
        self.radius = radius;
        self
    }

    /// Replace the error bound, keeping everything else.
    pub fn with_bound(mut self, bound: ErrorBoundMode) -> Self {
        self.bound = bound;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let cfg = CompressorConfig::new(PredictorKind::Interpolation, ErrorBoundMode::Abs(0.5))
            .huffman_only()
            .with_radius(128);
        assert_eq!(cfg.lossless, LosslessStage::None);
        assert_eq!(cfg.radius, 128);
        assert_eq!(cfg.predictor, PredictorKind::Interpolation);
    }

    #[test]
    fn with_bound_swaps_only_bound() {
        let cfg = CompressorConfig::new(PredictorKind::Lorenzo, ErrorBoundMode::Abs(1.0))
            .with_bound(ErrorBoundMode::Abs(2.0));
        assert!(matches!(cfg.bound, ErrorBoundMode::Abs(e) if e == 2.0));
        assert_eq!(cfg.predictor, PredictorKind::Lorenzo);
    }
}
