//! Compressor configuration.

use rq_predict::PredictorKind;
use rq_quant::{ErrorBoundMode, DEFAULT_RADIUS};

/// Whether the optional lossless stage runs after Huffman coding.
///
/// The paper's Fig. 3 separates "Huffman only" from "Huffman + lossless";
/// both configurations are first-class here so the model's two accuracy
/// columns (Table II "Huff Err" vs "Huff+LL Err") can each be measured.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LosslessStage {
    /// Huffman output stored as-is.
    None,
    /// Huffman output further compressed with zero-RLE + LZSS
    /// (the Zstandard stand-in).
    RleLzss,
}

/// How the field is partitioned for compression.
///
/// Chunked modes split the field into axis-0 slabs, each compressed as an
/// independent stream (predictor stencils reset at slab boundaries), which
/// enables multi-threaded compression/decompression and random access to
/// individual slabs. Chunked output uses container format v2; `Serial`
/// keeps the original single-stream v1 format.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Chunking {
    /// One causal traversal over the whole field (container v1).
    Serial,
    /// Fixed number of axis-0 rows per chunk (container v2).
    Rows(usize),
    /// Pick a row count that feeds the worker threads well while keeping
    /// per-chunk overhead amortized (container v2).
    Auto,
}

/// Which codec(s) the pipeline may use per chunk.
///
/// All backends honor the same resolved absolute error bound, so they can
/// be mixed freely within one container. `Auto` evaluates a sampled ratio
/// estimate per chunk (the paper's ratio-quality model acting as the
/// compressor's control loop) and picks the cheapest of the three; the
/// winner is recorded in the chunk's codec tag.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CodecChoice {
    /// Always the SZ prediction path (containers v1/v2, as before).
    Sz,
    /// Always the ZFP transform path (container v2.1).
    ///
    /// Incompatible with point-wise relative bounds: the transform path
    /// has no escape mechanism for the log-domain trick, so such configs
    /// fail with an error.
    Zfp,
    /// Always the ROLZ residual path (container v2.4): the SZ quantization
    /// front end with a reduced-offset-LZ + symbol-ranking + Huffman back
    /// end ([`crate::RolzChunkCodec`]). Supports the log transform, like
    /// SZ.
    Rolz,
    /// Per-chunk ratio-driven selection among the three (container v2.4).
    ///
    /// Under a point-wise relative bound every chunk falls back to SZ
    /// (the probe-driven estimates are calibrated for the identity
    /// transform).
    Auto,
}

/// Full configuration of one compression run.
#[derive(Clone, Copy, Debug)]
pub struct CompressorConfig {
    /// Prediction method.
    pub predictor: PredictorKind,
    /// User error-bound mode.
    pub bound: ErrorBoundMode,
    /// Quantization code radius.
    pub radius: u32,
    /// Optional lossless stage.
    pub lossless: LosslessStage,
    /// Field partitioning for (parallel) compression.
    pub chunking: Chunking,
    /// Worker threads for chunked compression; `0` means one per
    /// available CPU.
    pub threads: usize,
    /// Per-chunk codec policy.
    pub codec: CodecChoice,
}

impl CompressorConfig {
    /// Config with the default radius and the lossless stage enabled.
    pub fn new(predictor: PredictorKind, bound: ErrorBoundMode) -> Self {
        CompressorConfig {
            predictor,
            bound,
            radius: DEFAULT_RADIUS,
            lossless: LosslessStage::RleLzss,
            chunking: Chunking::Serial,
            threads: 0,
            codec: CodecChoice::Sz,
        }
    }

    /// Disable the optional lossless stage (Huffman only).
    pub fn huffman_only(mut self) -> Self {
        self.lossless = LosslessStage::None;
        self
    }

    /// Override the quantization radius.
    pub fn with_radius(mut self, radius: u32) -> Self {
        self.radius = radius;
        self
    }

    /// Replace the error bound, keeping everything else.
    pub fn with_bound(mut self, bound: ErrorBoundMode) -> Self {
        self.bound = bound;
        self
    }

    /// Compress in axis-0 slabs of `rows` rows each (container v2).
    ///
    /// # Panics
    /// Panics if `rows == 0`.
    pub fn chunked(mut self, rows: usize) -> Self {
        assert!(rows > 0, "chunk rows must be positive");
        self.chunking = Chunking::Rows(rows);
        self
    }

    /// Let the pipeline pick a chunk size suited to the thread count
    /// (container v2).
    pub fn auto_chunked(mut self) -> Self {
        self.chunking = Chunking::Auto;
        self
    }

    /// Select the per-chunk codec policy (default [`CodecChoice::Sz`]).
    ///
    /// Non-SZ policies produce a tagged-chunk container (v2.1 for ZFP,
    /// v2.4 for rolz-capable policies); with [`Chunking::Serial`] the
    /// whole field is one tagged chunk.
    pub fn with_codec(mut self, codec: CodecChoice) -> Self {
        self.codec = codec;
        self
    }

    /// Set the worker thread count (`0` = one per available CPU). Only
    /// chunked configurations use more than one thread.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The worker thread count after resolving `0` to the machine's
    /// available parallelism.
    pub fn resolved_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        }
    }

    /// Check for structurally invalid states the builders normally
    /// prevent but a literal construction can smuggle in (most notably
    /// `Chunking::Rows(0)`, which bypasses the [`Self::chunked`] assert).
    ///
    /// Compression entry points call this and surface failures as
    /// [`CompressError::InvalidConfig`](crate::CompressError::InvalidConfig)
    /// instead of panicking deep inside the chunker.
    pub fn validate(&self) -> Result<(), String> {
        if self.chunking == Chunking::Rows(0) {
            return Err("chunk rows must be positive (got Chunking::Rows(0))".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let cfg = CompressorConfig::new(PredictorKind::Interpolation, ErrorBoundMode::Abs(0.5))
            .huffman_only()
            .with_radius(128);
        assert_eq!(cfg.lossless, LosslessStage::None);
        assert_eq!(cfg.radius, 128);
        assert_eq!(cfg.predictor, PredictorKind::Interpolation);
    }

    #[test]
    fn with_bound_swaps_only_bound() {
        let cfg = CompressorConfig::new(PredictorKind::Lorenzo, ErrorBoundMode::Abs(1.0))
            .with_bound(ErrorBoundMode::Abs(2.0));
        assert!(matches!(cfg.bound, ErrorBoundMode::Abs(e) if e == 2.0));
        assert_eq!(cfg.predictor, PredictorKind::Lorenzo);
    }

    #[test]
    fn chunking_defaults_to_serial() {
        let cfg = CompressorConfig::new(PredictorKind::Lorenzo, ErrorBoundMode::Abs(1.0));
        assert_eq!(cfg.chunking, Chunking::Serial);
        assert_eq!(cfg.threads, 0);
        assert!(cfg.resolved_threads() >= 1);
        assert_eq!(cfg.codec, CodecChoice::Sz);
    }

    #[test]
    fn codec_builder() {
        let cfg = CompressorConfig::new(PredictorKind::Lorenzo, ErrorBoundMode::Abs(1.0))
            .with_codec(CodecChoice::Auto);
        assert_eq!(cfg.codec, CodecChoice::Auto);
        assert_eq!(cfg.chunking, Chunking::Serial, "codec choice leaves chunking alone");
    }

    #[test]
    fn chunking_builders() {
        let cfg = CompressorConfig::new(PredictorKind::Lorenzo, ErrorBoundMode::Abs(1.0))
            .chunked(16)
            .with_threads(4);
        assert_eq!(cfg.chunking, Chunking::Rows(16));
        assert_eq!(cfg.resolved_threads(), 4);
        let auto = cfg.auto_chunked();
        assert_eq!(auto.chunking, Chunking::Auto);
    }

    #[test]
    #[should_panic]
    fn zero_chunk_rows_rejected() {
        let _ = CompressorConfig::new(PredictorKind::Lorenzo, ErrorBoundMode::Abs(1.0)).chunked(0);
    }
}
