//! On-disk container format for compressed fields.
//!
//! Layout (all integers little-endian or LEB128 varints):
//!
//! ```text
//! magic    "RQMC" (4 bytes)
//! version  u8
//! scalar   u8   (Scalar::TAG)
//! pred     u8   (PredictorKind::tag)
//! flags    u8   bit0 = lossless stage applied, bit1 = log transform
//! ndim     u8
//! dims     varint × ndim
//! eb       f64  absolute error bound actually used (post-resolution)
//! radius   varint
//! sections, each varint-length-prefixed:
//!   codebook | payload | verbatim values | side channel
//! ```
//!
//! "Verbatim values" holds unpredictable escapes and interpolation anchors
//! in traversal order, stored as raw scalars so they round-trip exactly.

use crate::config::LosslessStage;
use rq_encoding::varint::{get_uvarint, put_uvarint};
use rq_grid::{Scalar, Shape, MAX_DIMS};
use rq_predict::PredictorKind;

pub(crate) const MAGIC: &[u8; 4] = b"RQMC";
pub(crate) const VERSION: u8 = 1;
pub(crate) const FLAG_LOSSLESS: u8 = 0b01;
pub(crate) const FLAG_LOG: u8 = 0b10;

/// Errors produced while compressing.
#[derive(Debug)]
pub enum CompressError {
    /// The resolved error bound was invalid (e.g. relative bound on a
    /// constant field).
    InvalidBound(String),
    /// Entropy-coding failure (internal invariant violation).
    Encoding(rq_encoding::HuffmanError),
}

impl std::fmt::Display for CompressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompressError::InvalidBound(m) => write!(f, "invalid error bound: {m}"),
            CompressError::Encoding(e) => write!(f, "encoding failed: {e}"),
        }
    }
}

impl std::error::Error for CompressError {}

impl From<rq_encoding::HuffmanError> for CompressError {
    fn from(e: rq_encoding::HuffmanError) -> Self {
        CompressError::Encoding(e)
    }
}

/// Errors produced while decompressing.
#[derive(Debug)]
pub enum DecompressError {
    /// The buffer does not start with the container magic/version.
    NotAContainer,
    /// Scalar type mismatch between the container and the requested type.
    ScalarMismatch { expected: u8, found: u8 },
    /// Structural corruption.
    Corrupt(&'static str),
    /// Huffman decode failure.
    Encoding(rq_encoding::HuffmanError),
}

impl std::fmt::Display for DecompressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecompressError::NotAContainer => write!(f, "not an RQMC container"),
            DecompressError::ScalarMismatch { expected, found } => {
                write!(f, "scalar tag mismatch: expected {expected:#x}, found {found:#x}")
            }
            DecompressError::Corrupt(what) => write!(f, "corrupt container: {what}"),
            DecompressError::Encoding(e) => write!(f, "huffman decode failed: {e}"),
        }
    }
}

impl std::error::Error for DecompressError {}

impl From<rq_encoding::HuffmanError> for DecompressError {
    fn from(e: rq_encoding::HuffmanError) -> Self {
        DecompressError::Encoding(e)
    }
}

/// Parsed container header.
#[derive(Debug, Clone)]
pub struct Header {
    /// Scalar tag of the stored field.
    pub scalar_tag: u8,
    /// Predictor the stream was produced with.
    pub predictor: PredictorKind,
    /// Whether the payload went through the optional lossless stage.
    pub lossless: LosslessStage,
    /// Whether data was log-transformed (point-wise relative mode).
    pub log_transform: bool,
    /// Field shape.
    pub shape: Shape,
    /// Absolute error bound used by the quantizer.
    pub abs_eb: f64,
    /// Quantizer radius.
    pub radius: u32,
}

/// Serialize a header followed by the four sections.
#[allow(clippy::too_many_arguments)]
pub(crate) fn write_container<T: Scalar>(
    header: &Header,
    codebook: &[u8],
    payload: &[u8],
    verbatim: &[T],
    side: &[u8],
) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + codebook.len() + verbatim.len() * T::BYTES + side.len() + 64);
    out.extend_from_slice(MAGIC);
    out.push(VERSION);
    out.push(T::TAG);
    out.push(header.predictor.tag());
    let mut flags = 0u8;
    if header.lossless == LosslessStage::RleLzss {
        flags |= FLAG_LOSSLESS;
    }
    if header.log_transform {
        flags |= FLAG_LOG;
    }
    out.push(flags);
    out.push(header.shape.ndim() as u8);
    for &d in header.shape.dims() {
        put_uvarint(&mut out, d as u64);
    }
    out.extend_from_slice(&header.abs_eb.to_le_bytes());
    put_uvarint(&mut out, header.radius as u64);

    put_uvarint(&mut out, codebook.len() as u64);
    out.extend_from_slice(codebook);
    put_uvarint(&mut out, payload.len() as u64);
    out.extend_from_slice(payload);
    put_uvarint(&mut out, verbatim.len() as u64);
    for &v in verbatim {
        v.write_le(&mut out);
    }
    put_uvarint(&mut out, side.len() as u64);
    out.extend_from_slice(side);
    out
}

/// Parsed sections of a container.
pub(crate) struct Sections<T> {
    pub header: Header,
    pub codebook: Vec<u8>,
    pub payload: Vec<u8>,
    pub verbatim: Vec<T>,
    pub side: Vec<u8>,
}

/// Parse a container produced by [`write_container`].
pub(crate) fn read_container<T: Scalar>(bytes: &[u8]) -> Result<Sections<T>, DecompressError> {
    if bytes.len() < 9 || &bytes[..4] != MAGIC || bytes[4] != VERSION {
        return Err(DecompressError::NotAContainer);
    }
    let scalar_tag = bytes[5];
    if scalar_tag != T::TAG {
        return Err(DecompressError::ScalarMismatch { expected: T::TAG, found: scalar_tag });
    }
    let predictor = PredictorKind::from_tag(bytes[6])
        .ok_or(DecompressError::Corrupt("unknown predictor tag"))?;
    let flags = bytes[7];
    let ndim = bytes[8] as usize;
    if ndim == 0 || ndim > MAX_DIMS {
        return Err(DecompressError::Corrupt("bad ndim"));
    }
    let mut pos = 9;
    let mut dims = [0usize; MAX_DIMS];
    for d in dims.iter_mut().take(ndim) {
        *d = get_uvarint(bytes, &mut pos).ok_or(DecompressError::Corrupt("dims"))? as usize;
        if *d == 0 || *d > (1 << 32) {
            return Err(DecompressError::Corrupt("bad dim extent"));
        }
    }
    let shape = Shape::new(&dims[..ndim]);
    if pos + 8 > bytes.len() {
        return Err(DecompressError::Corrupt("eb"));
    }
    let abs_eb = f64::from_le_bytes(bytes[pos..pos + 8].try_into().unwrap());
    pos += 8;
    if !(abs_eb.is_finite() && abs_eb > 0.0) {
        return Err(DecompressError::Corrupt("non-positive eb"));
    }
    let radius = get_uvarint(bytes, &mut pos).ok_or(DecompressError::Corrupt("radius"))? as u32;
    if radius == 0 {
        return Err(DecompressError::Corrupt("zero radius"));
    }

    let take_section = |pos: &mut usize| -> Result<Vec<u8>, DecompressError> {
        let len =
            get_uvarint(bytes, pos).ok_or(DecompressError::Corrupt("section len"))? as usize;
        if *pos + len > bytes.len() {
            return Err(DecompressError::Corrupt("section overruns buffer"));
        }
        let s = bytes[*pos..*pos + len].to_vec();
        *pos += len;
        Ok(s)
    };

    let codebook = take_section(&mut pos)?;
    let payload = take_section(&mut pos)?;
    let n_verbatim =
        get_uvarint(bytes, &mut pos).ok_or(DecompressError::Corrupt("verbatim count"))? as usize;
    if pos + n_verbatim * T::BYTES > bytes.len() {
        return Err(DecompressError::Corrupt("verbatim overruns buffer"));
    }
    let mut verbatim = Vec::with_capacity(n_verbatim);
    for _ in 0..n_verbatim {
        verbatim.push(T::read_le(&bytes[pos..]));
        pos += T::BYTES;
    }
    let side = take_section(&mut pos)?;

    let lossless =
        if flags & FLAG_LOSSLESS != 0 { LosslessStage::RleLzss } else { LosslessStage::None };
    Ok(Sections {
        header: Header {
            scalar_tag,
            predictor,
            lossless,
            log_transform: flags & FLAG_LOG != 0,
            shape,
            abs_eb,
            radius,
        },
        codebook,
        payload,
        verbatim,
        side,
    })
}

/// Parse only the header of a container (cheap inspection).
pub fn peek_header(bytes: &[u8]) -> Result<Header, DecompressError> {
    // Scalar type does not matter for header fields; parse manually.
    if bytes.len() < 9 || &bytes[..4] != MAGIC || bytes[4] != VERSION {
        return Err(DecompressError::NotAContainer);
    }
    let scalar_tag = bytes[5];
    let predictor = PredictorKind::from_tag(bytes[6])
        .ok_or(DecompressError::Corrupt("unknown predictor tag"))?;
    let flags = bytes[7];
    let ndim = bytes[8] as usize;
    if ndim == 0 || ndim > MAX_DIMS {
        return Err(DecompressError::Corrupt("bad ndim"));
    }
    let mut pos = 9;
    let mut dims = [0usize; MAX_DIMS];
    for d in dims.iter_mut().take(ndim) {
        *d = get_uvarint(bytes, &mut pos).ok_or(DecompressError::Corrupt("dims"))? as usize;
        if *d == 0 {
            return Err(DecompressError::Corrupt("bad dim extent"));
        }
    }
    if pos + 8 > bytes.len() {
        return Err(DecompressError::Corrupt("eb"));
    }
    let abs_eb = f64::from_le_bytes(bytes[pos..pos + 8].try_into().unwrap());
    pos += 8;
    let radius = get_uvarint(bytes, &mut pos).ok_or(DecompressError::Corrupt("radius"))? as u32;
    Ok(Header {
        scalar_tag,
        predictor,
        lossless: if flags & FLAG_LOSSLESS != 0 {
            LosslessStage::RleLzss
        } else {
            LosslessStage::None
        },
        log_transform: flags & FLAG_LOG != 0,
        shape: Shape::new(&dims[..ndim]),
        abs_eb,
        radius,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_header() -> Header {
        Header {
            scalar_tag: <f32 as Scalar>::TAG,
            predictor: PredictorKind::Lorenzo,
            lossless: LosslessStage::RleLzss,
            log_transform: false,
            shape: Shape::d3(10, 20, 30),
            abs_eb: 1e-4,
            radius: 1 << 15,
        }
    }

    #[test]
    fn container_roundtrip() {
        let h = sample_header();
        let bytes =
            write_container::<f32>(&h, &[1, 2, 3], &[9, 8, 7, 6], &[1.5f32, -2.5], &[0xAB]);
        let s = read_container::<f32>(&bytes).unwrap();
        assert_eq!(s.codebook, vec![1, 2, 3]);
        assert_eq!(s.payload, vec![9, 8, 7, 6]);
        assert_eq!(s.verbatim, vec![1.5f32, -2.5]);
        assert_eq!(s.side, vec![0xAB]);
        assert_eq!(s.header.shape.dims(), &[10, 20, 30]);
        assert_eq!(s.header.abs_eb, 1e-4);
        assert_eq!(s.header.predictor, PredictorKind::Lorenzo);
        assert_eq!(s.header.lossless, LosslessStage::RleLzss);
    }

    #[test]
    fn scalar_mismatch_detected() {
        let h = sample_header();
        let bytes = write_container::<f32>(&h, &[], &[], &[], &[]);
        assert!(matches!(
            read_container::<f64>(&bytes),
            Err(DecompressError::ScalarMismatch { .. })
        ));
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(matches!(read_container::<f32>(b"NOPE....."), Err(DecompressError::NotAContainer)));
        assert!(matches!(read_container::<f32>(&[]), Err(DecompressError::NotAContainer)));
    }

    #[test]
    fn truncated_section_rejected() {
        let h = sample_header();
        let bytes = write_container::<f32>(&h, &[1, 2, 3], &[9; 100], &[], &[]);
        let r = read_container::<f32>(&bytes[..bytes.len() - 50]);
        assert!(matches!(r, Err(DecompressError::Corrupt(_))));
    }

    #[test]
    fn peek_header_matches() {
        let h = sample_header();
        let bytes = write_container::<f32>(&h, &[], &[], &[], &[]);
        let p = peek_header(&bytes).unwrap();
        assert_eq!(p.shape.dims(), h.shape.dims());
        assert_eq!(p.predictor, h.predictor);
        assert_eq!(p.abs_eb, h.abs_eb);
    }
}
