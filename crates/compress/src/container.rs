//! On-disk container formats for compressed fields.
//!
//! Three versions share one header prefix (all integers little-endian or
//! LEB128 varints):
//!
//! ```text
//! magic    "RQMC" (4 bytes)
//! version  u8   (1 = single-stream, 2 = chunked, 3 = chunked + codec
//!               tags, 4 = streaming trailer index)
//! scalar   u8   (Scalar::TAG)
//! pred     u8   (PredictorKind::tag)
//! flags    u8   bit0 = lossless stage applied*, bit1 = log transform
//! ndim     u8
//! dims     varint × ndim
//! eb       f64  absolute error bound actually used (post-resolution)
//! radius   varint
//! ```
//!
//! **Version 1** (serial pipeline) continues with four varint-length-
//! prefixed sections: `codebook | payload | verbatim values | side
//! channel`. "Verbatim values" holds unpredictable escapes and
//! interpolation anchors in traversal order, stored as raw scalars so they
//! round-trip exactly.
//!
//! **Version 2** (chunk-parallel pipeline) continues with a chunk index
//! and then the per-chunk streams back to back:
//!
//! ```text
//! chunk_rows  varint            nominal axis-0 rows per chunk
//! n_chunks    varint
//! index       (rows varint, byte_len varint) × n_chunks
//! blobs       n_chunks × chunk blob
//! ```
//!
//! Each chunk blob is a self-contained v1-style body with its own flag
//! byte (bit0 = lossless stage applied to *this* chunk's payload):
//! `chunk_flags u8 | codebook | payload | verbatim | side`. Chunks are
//! axis-0 slabs in row order; byte offsets follow from the index, so any
//! chunk can be decoded without touching the others (random access) and
//! all chunks can be decoded concurrently.
//!
//! **Version 2.1** (version byte 3, adaptive-codec pipeline) is v2 with a
//! one-byte codec tag appended to every index entry:
//!
//! ```text
//! index       (rows varint, byte_len varint, codec u8) × n_chunks
//! ```
//!
//! The tag records which codec produced the chunk's blob
//! ([`ChunkCodecKind`]): `0` = the SZ prediction path (blob is the v2
//! chunk-blob layout above) and `1` = the ZFP transform path (blob is a
//! complete self-describing `RQZF` stream for the slab's shape). Untagged
//! v2 containers and v1 containers remain readable — their chunks are all
//! implicitly SZ.
//!
//! **Version 2.2** (version byte 4, streaming sessions) moves the chunk
//! index *behind* the blobs so a writer never has to buffer the archive:
//!
//! ```text
//! blobs        n_chunks × chunk blob (immediately after the header)
//! trailer      chunk_rows varint
//!              n_chunks   varint
//!              (rows varint, byte_len varint, codec u8) × n_chunks
//! trailer_len  u64 LE — byte length of the trailer above
//! magic        "RQIX" (4 bytes)
//! ```
//!
//! A reader seeks to the last 12 bytes, validates the `RQIX` magic, jumps
//! back `trailer_len` bytes to parse the index, and then has exactly the
//! same random-access chunk table as v2.1 — blob offsets accumulate
//! forward from the end of the header. Chunk blobs themselves are
//! byte-identical to their v2/v2.1 counterparts.
//!
//! **Version 2.3** (version byte 5, quality-targeted compression) is v2.2
//! with a per-chunk **absolute error bound** recorded next to the codec
//! tag in every trailer index entry:
//!
//! ```text
//! trailer      chunk_rows varint
//!              n_chunks   varint
//!              (rows varint, byte_len varint, codec u8, eb f64 LE) × n_chunks
//! ```
//!
//! The per-chunk `eb` is authoritative for decoding that chunk (both the
//! SZ quantizer and the ZFP tolerance); the header's `abs_eb` records the
//! **maximum** planned bound, i.e. the archive-wide worst-case pointwise
//! guarantee. Planned archives are produced by the quality/size-targeted
//! streaming writer (`ArchiveWriter::create_planned`); fixed-bound
//! configurations keep writing v2.2 byte-identically. Readers must reject
//! non-finite or non-positive per-chunk bounds as corruption.
//!
//! **Version 2.4** (version byte 6, three-way adaptive codec) has exactly
//! the v2.3 byte layout — trailer index with a per-chunk codec tag *and*
//! per-chunk error bound — and additionally allows codec tag `2`, the
//! ROLZ residual path (reduced-offset LZ + symbol ranking + static
//! Huffman over the quantization-code byte stream). Any configuration
//! that can emit a ROLZ chunk (`--codec rolz` or `--codec auto`) writes
//! v2.4; fixed sz/zfp configurations keep their earlier generations
//! byte-identically. Tag `2` inside any pre-v2.4 container is corruption.
//! See `docs/FORMAT.md` for the full byte-layout specification of all six
//! generations.
//!
//! (*) In v2/v2.1/v2.2 the header's lossless flag records the
//! *configuration*; the authoritative per-chunk decision is each SZ blob's
//! flag byte, since the stage is only kept where it actually shrank that
//! chunk's payload.

use crate::config::LosslessStage;
use rq_encoding::varint::{get_uvarint, put_uvarint};
use rq_grid::{Scalar, Shape, MAX_DIMS};
use rq_predict::PredictorKind;

pub(crate) const MAGIC: &[u8; 4] = b"RQMC";
/// Single-stream container (the original format).
pub(crate) const VERSION_V1: u8 = 1;
/// Chunk-indexed container (parallel pipeline).
pub(crate) const VERSION_V2: u8 = 2;
/// Chunk-indexed container with per-chunk codec tags ("v2.1").
pub(crate) const VERSION_V2_1: u8 = 3;
/// Streaming container with a trailer chunk index ("v2.2").
pub(crate) const VERSION_V2_2: u8 = 4;
/// Streaming container with per-chunk error bounds in the trailer index
/// ("v2.3", quality-targeted compression).
pub(crate) const VERSION_V2_3: u8 = 5;
/// v2.3 layout with the ROLZ codec tag allowed ("v2.4", three-way
/// adaptive codec).
pub(crate) const VERSION_V2_4: u8 = 6;
/// Magic closing a v2.2 trailer (the last four bytes of the archive).
pub(crate) const TRAILER_MAGIC: &[u8; 4] = b"RQIX";
/// Fixed bytes after a v2.2 trailer body: u64 LE trailer length + magic.
pub(crate) const TRAILER_SUFFIX_LEN: usize = 8 + 4;
pub(crate) const FLAG_LOSSLESS: u8 = 0b01;
pub(crate) const FLAG_LOG: u8 = 0b10;

/// Errors produced while compressing.
#[derive(Debug)]
pub enum CompressError {
    /// The resolved error bound was invalid (e.g. relative bound on a
    /// constant field).
    InvalidBound(String),
    /// The configuration combines features that cannot work together
    /// (e.g. the zfp codec with a point-wise relative bound).
    Unsupported(String),
    /// The configuration itself is malformed (e.g. zero chunk rows
    /// constructed without the builder, or a slab that does not tile the
    /// declared shape).
    InvalidConfig(String),
    /// Entropy-coding failure (internal invariant violation).
    Encoding(rq_encoding::HuffmanError),
    /// The output stream failed (streaming writer only).
    Io(std::io::Error),
}

impl std::fmt::Display for CompressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompressError::InvalidBound(m) => write!(f, "invalid error bound: {m}"),
            CompressError::Unsupported(m) => write!(f, "unsupported configuration: {m}"),
            CompressError::InvalidConfig(m) => write!(f, "invalid configuration: {m}"),
            CompressError::Encoding(e) => write!(f, "encoding failed: {e}"),
            CompressError::Io(e) => write!(f, "output stream failed: {e}"),
        }
    }
}

impl std::error::Error for CompressError {}

impl From<rq_encoding::HuffmanError> for CompressError {
    fn from(e: rq_encoding::HuffmanError) -> Self {
        CompressError::Encoding(e)
    }
}

impl From<std::io::Error> for CompressError {
    fn from(e: std::io::Error) -> Self {
        CompressError::Io(e)
    }
}

/// Errors produced while decompressing.
#[derive(Debug)]
pub enum DecompressError {
    /// The buffer does not start with the container magic or a known
    /// version.
    NotAContainer,
    /// Scalar type mismatch between the container and the requested type.
    ScalarMismatch { expected: u8, found: u8 },
    /// Structural corruption.
    Corrupt(&'static str),
    /// A chunk index outside the container's chunk table.
    ChunkOutOfRange { requested: usize, available: usize },
    /// A row range outside the field's axis-0 extent.
    RowsOutOfRange { requested_end: usize, rows: usize },
    /// Huffman decode failure.
    Encoding(rq_encoding::HuffmanError),
    /// The input stream failed (streaming reader only).
    Io(std::io::Error),
}

impl std::fmt::Display for DecompressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecompressError::NotAContainer => write!(f, "not an RQMC container"),
            DecompressError::ScalarMismatch { expected, found } => {
                write!(f, "scalar tag mismatch: expected {expected:#x}, found {found:#x}")
            }
            DecompressError::Corrupt(what) => write!(f, "corrupt container: {what}"),
            DecompressError::ChunkOutOfRange { requested, available } => {
                write!(f, "chunk {requested} out of range (container has {available})")
            }
            DecompressError::RowsOutOfRange { requested_end, rows } => {
                write!(f, "row range ends at {requested_end} but the field has {rows} rows")
            }
            DecompressError::Encoding(e) => write!(f, "huffman decode failed: {e}"),
            DecompressError::Io(e) => write!(f, "input stream failed: {e}"),
        }
    }
}

impl std::error::Error for DecompressError {}

impl From<std::io::Error> for DecompressError {
    fn from(e: std::io::Error) -> Self {
        DecompressError::Io(e)
    }
}

impl From<rq_encoding::HuffmanError> for DecompressError {
    fn from(e: rq_encoding::HuffmanError) -> Self {
        DecompressError::Encoding(e)
    }
}

/// Parsed container header (common to both versions).
#[derive(Debug, Clone)]
pub struct Header {
    /// Container format version (1 = serial, 2 = chunked, 3 = chunked
    /// with per-chunk codec tags, aka "v2.1").
    pub version: u8,
    /// Scalar tag of the stored field.
    pub scalar_tag: u8,
    /// Predictor the stream was produced with.
    pub predictor: PredictorKind,
    /// Whether the payload went through the optional lossless stage (in
    /// v2: whether the stage was enabled; per-chunk flags decide).
    pub lossless: LosslessStage,
    /// Whether data was log-transformed (point-wise relative mode).
    pub log_transform: bool,
    /// Field shape.
    pub shape: Shape,
    /// Absolute error bound used by the quantizer.
    pub abs_eb: f64,
    /// Quantizer radius.
    pub radius: u32,
}

/// The format version of a container, or an error if it is not one.
pub(crate) fn container_version(bytes: &[u8]) -> Result<u8, DecompressError> {
    if bytes.len() < 9 || &bytes[..4] != MAGIC {
        return Err(DecompressError::NotAContainer);
    }
    match bytes[4] {
        v @ (VERSION_V1 | VERSION_V2 | VERSION_V2_1 | VERSION_V2_2 | VERSION_V2_3
        | VERSION_V2_4) => Ok(v),
        _ => Err(DecompressError::NotAContainer),
    }
}

/// Which codec produced one chunk's blob (the per-chunk tag of container
/// v2.1; every chunk of a v1/v2 container is implicitly [`Self::Sz`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ChunkCodecKind {
    /// The SZ prediction path: predictor + linear-scaling quantizer +
    /// Huffman (+ optional lossless stage).
    Sz,
    /// The ZFP transform path: block transform + embedded bitplane coder
    /// (the blob is a self-describing `RQZF` stream).
    Zfp,
    /// The ROLZ residual path: the SZ quantization-code stream re-coded
    /// through reduced-offset LZ + symbol ranking + static Huffman.
    /// Only valid inside v2.4 containers.
    Rolz,
}

impl ChunkCodecKind {
    /// Stable one-byte tag stored in v2.1 chunk-index entries.
    pub fn tag(self) -> u8 {
        match self {
            ChunkCodecKind::Sz => 0,
            ChunkCodecKind::Zfp => 1,
            ChunkCodecKind::Rolz => 2,
        }
    }

    /// Inverse of [`Self::tag`].
    pub fn from_tag(tag: u8) -> Option<Self> {
        Some(match tag {
            0 => ChunkCodecKind::Sz,
            1 => ChunkCodecKind::Zfp,
            2 => ChunkCodecKind::Rolz,
            _ => return None,
        })
    }

    /// Short name used by `rqm info` and benchmark tables.
    pub fn name(self) -> &'static str {
        match self {
            ChunkCodecKind::Sz => "sz",
            ChunkCodecKind::Zfp => "zfp",
            ChunkCodecKind::Rolz => "rolz",
        }
    }
}

/// Serialize the shared header prefix.
pub(crate) fn write_header_prefix(out: &mut Vec<u8>, header: &Header, scalar_tag: u8) {
    out.extend_from_slice(MAGIC);
    out.push(header.version);
    out.push(scalar_tag);
    out.push(header.predictor.tag());
    let mut flags = 0u8;
    if header.lossless == LosslessStage::RleLzss {
        flags |= FLAG_LOSSLESS;
    }
    if header.log_transform {
        flags |= FLAG_LOG;
    }
    out.push(flags);
    out.push(header.shape.ndim() as u8);
    for &d in header.shape.dims() {
        put_uvarint(out, d as u64);
    }
    out.extend_from_slice(&header.abs_eb.to_le_bytes());
    put_uvarint(out, header.radius as u64);
}

/// Parse the shared header prefix; returns the header and the position of
/// the first byte after it. Does not check the scalar tag.
pub(crate) fn read_header_prefix(bytes: &[u8]) -> Result<(Header, usize), DecompressError> {
    let version = container_version(bytes)?;
    let scalar_tag = bytes[5];
    let predictor = PredictorKind::from_tag(bytes[6])
        .ok_or(DecompressError::Corrupt("unknown predictor tag"))?;
    let flags = bytes[7];
    let ndim = bytes[8] as usize;
    if ndim == 0 || ndim > MAX_DIMS {
        return Err(DecompressError::Corrupt("bad ndim"));
    }
    let mut pos = 9;
    let mut dims = [0usize; MAX_DIMS];
    let mut n_elements = 1usize;
    for d in dims.iter_mut().take(ndim) {
        *d = get_uvarint(bytes, &mut pos).ok_or(DecompressError::Corrupt("dims"))? as usize;
        if *d == 0 || *d > (1 << 32) {
            return Err(DecompressError::Corrupt("bad dim extent"));
        }
        // Corrupt varints can encode extents whose *product* overflows
        // usize even though each extent passes the per-dim bound; that
        // would panic inside Shape::len instead of returning an error.
        n_elements = n_elements
            .checked_mul(*d)
            .ok_or(DecompressError::Corrupt("element count overflow"))?;
    }
    let shape = Shape::new(&dims[..ndim]);
    if pos + 8 > bytes.len() {
        return Err(DecompressError::Corrupt("eb"));
    }
    let abs_eb = f64::from_le_bytes(bytes[pos..pos + 8].try_into().unwrap());
    pos += 8;
    if !(abs_eb.is_finite() && abs_eb > 0.0) {
        return Err(DecompressError::Corrupt("non-positive eb"));
    }
    let radius = get_uvarint(bytes, &mut pos).ok_or(DecompressError::Corrupt("radius"))? as u32;
    if radius == 0 {
        return Err(DecompressError::Corrupt("zero radius"));
    }
    let lossless =
        if flags & FLAG_LOSSLESS != 0 { LosslessStage::RleLzss } else { LosslessStage::None };
    Ok((
        Header {
            version,
            scalar_tag,
            predictor,
            lossless,
            log_transform: flags & FLAG_LOG != 0,
            shape,
            abs_eb,
            radius,
        },
        pos,
    ))
}

/// Append one varint-length-prefixed byte section.
fn write_byte_section(out: &mut Vec<u8>, section: &[u8]) {
    put_uvarint(out, section.len() as u64);
    out.extend_from_slice(section);
}

/// Read one varint-length-prefixed byte section.
fn read_byte_section(bytes: &[u8], pos: &mut usize) -> Result<Vec<u8>, DecompressError> {
    let len = get_uvarint(bytes, pos).ok_or(DecompressError::Corrupt("section len"))? as usize;
    // Checked: a corrupt varint can decode to a length that overflows the
    // addition, not just one that overruns the buffer.
    let end = pos
        .checked_add(len)
        .filter(|&end| end <= bytes.len())
        .ok_or(DecompressError::Corrupt("section overruns buffer"))?;
    let s = bytes[*pos..end].to_vec();
    *pos = end;
    Ok(s)
}

/// The four data sections of one compressed stream (a whole v1 container
/// body, or one v2 chunk).
pub(crate) struct SectionsBody<T> {
    pub codebook: Vec<u8>,
    pub payload: Vec<u8>,
    pub verbatim: Vec<T>,
    pub side: Vec<u8>,
}

/// Serialize the four sections: `codebook | payload | verbatim | side`.
fn write_sections_body<T: Scalar>(
    out: &mut Vec<u8>,
    codebook: &[u8],
    payload: &[u8],
    verbatim: &[T],
    side: &[u8],
) {
    write_byte_section(out, codebook);
    write_byte_section(out, payload);
    put_uvarint(out, verbatim.len() as u64);
    for &v in verbatim {
        v.write_le(out);
    }
    write_byte_section(out, side);
}

/// Parse the four sections written by [`write_sections_body`].
pub(crate) fn read_sections_body<T: Scalar>(
    bytes: &[u8],
    pos: &mut usize,
) -> Result<SectionsBody<T>, DecompressError> {
    let codebook = read_byte_section(bytes, pos)?;
    let payload = read_byte_section(bytes, pos)?;
    let n_verbatim =
        get_uvarint(bytes, pos).ok_or(DecompressError::Corrupt("verbatim count"))? as usize;
    if n_verbatim
        .checked_mul(T::BYTES)
        .and_then(|b| b.checked_add(*pos))
        .is_none_or(|end| end > bytes.len())
    {
        return Err(DecompressError::Corrupt("verbatim overruns buffer"));
    }
    let mut verbatim = Vec::with_capacity(n_verbatim);
    for _ in 0..n_verbatim {
        verbatim.push(T::read_le(&bytes[*pos..]));
        *pos += T::BYTES;
    }
    let side = read_byte_section(bytes, pos)?;
    Ok(SectionsBody { codebook, payload, verbatim, side })
}

// ---------------------------------------------------------------------------
// Version 1 (single stream)
// ---------------------------------------------------------------------------

/// Serialize a v1 header followed by the four sections.
pub(crate) fn write_container<T: Scalar>(
    header: &Header,
    codebook: &[u8],
    payload: &[u8],
    verbatim: &[T],
    side: &[u8],
) -> Vec<u8> {
    let mut out = Vec::with_capacity(
        payload.len() + codebook.len() + verbatim.len() * T::BYTES + side.len() + 64,
    );
    write_header_prefix(&mut out, header, T::TAG);
    write_sections_body(&mut out, codebook, payload, verbatim, side);
    out
}

/// Parsed sections of a v1 container.
pub(crate) struct Sections<T> {
    pub header: Header,
    pub body: SectionsBody<T>,
}

/// Parse a v1 container produced by [`write_container`].
pub(crate) fn read_container<T: Scalar>(bytes: &[u8]) -> Result<Sections<T>, DecompressError> {
    let (header, mut pos) = read_header_prefix(bytes)?;
    if header.version != VERSION_V1 {
        return Err(DecompressError::Corrupt("not a v1 container"));
    }
    if header.scalar_tag != T::TAG {
        return Err(DecompressError::ScalarMismatch { expected: T::TAG, found: header.scalar_tag });
    }
    let body = read_sections_body::<T>(bytes, &mut pos)?;
    Ok(Sections { header, body })
}

// ---------------------------------------------------------------------------
// Version 2 (chunk index + per-chunk streams)
// ---------------------------------------------------------------------------

/// Per-chunk flag: the optional lossless stage was applied to this chunk's
/// payload.
pub(crate) const CHUNK_FLAG_LOSSLESS: u8 = 0b01;

/// One entry of a v2/v2.1/v2.2/v2.3 chunk index, with its blob located in
/// the container.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChunkEntry {
    /// First axis-0 row of the slab.
    pub start_row: usize,
    /// Axis-0 rows in the slab.
    pub rows: usize,
    /// Byte offset of the chunk blob within the container.
    pub offset: usize,
    /// Byte length of the chunk blob.
    pub len: usize,
    /// Codec that produced the blob (always [`ChunkCodecKind::Sz`] for
    /// v1/v2 containers).
    pub codec: ChunkCodecKind,
    /// Absolute error bound this chunk was quantized with. Equal to the
    /// header's `abs_eb` for every generation before v2.3; read from the
    /// per-chunk index entry (and authoritative for decoding) in v2.3.
    pub eb: f64,
}

/// Serialize one chunk's streams as a self-contained blob.
pub(crate) fn write_chunk_blob<T: Scalar>(
    lossless_applied: LosslessStage,
    codebook: &[u8],
    payload: &[u8],
    verbatim: &[T],
    side: &[u8],
) -> Vec<u8> {
    let mut out = Vec::with_capacity(
        payload.len() + codebook.len() + verbatim.len() * T::BYTES + side.len() + 16,
    );
    out.push(if lossless_applied == LosslessStage::RleLzss { CHUNK_FLAG_LOSSLESS } else { 0 });
    write_sections_body(&mut out, codebook, payload, verbatim, side);
    out
}

/// Parse a chunk blob written by [`write_chunk_blob`].
pub(crate) fn read_chunk_blob<T: Scalar>(
    blob: &[u8],
) -> Result<(LosslessStage, SectionsBody<T>), DecompressError> {
    if blob.is_empty() {
        return Err(DecompressError::Corrupt("empty chunk blob"));
    }
    let lossless = if blob[0] & CHUNK_FLAG_LOSSLESS != 0 {
        LosslessStage::RleLzss
    } else {
        LosslessStage::None
    };
    let mut pos = 1;
    let body = read_sections_body::<T>(blob, &mut pos)?;
    if pos != blob.len() {
        return Err(DecompressError::Corrupt("trailing bytes in chunk blob"));
    }
    Ok((lossless, body))
}

/// Serialize a v2 container: header, chunk index, then the blobs.
pub(crate) fn write_container_v2<T: Scalar>(
    header: &Header,
    chunk_rows: usize,
    chunks: &[(usize, Vec<u8>)], // (rows, blob) in slab order
) -> Vec<u8> {
    let body: usize = chunks.iter().map(|(_, b)| b.len()).sum();
    let mut out = Vec::with_capacity(body + 16 * chunks.len() + 64);
    write_header_prefix(&mut out, header, T::TAG);
    put_uvarint(&mut out, chunk_rows as u64);
    put_uvarint(&mut out, chunks.len() as u64);
    for &(rows, ref blob) in chunks {
        put_uvarint(&mut out, rows as u64);
        put_uvarint(&mut out, blob.len() as u64);
    }
    for (_, blob) in chunks {
        out.extend_from_slice(blob);
    }
    out
}

/// Serialize a v2.1 container: like v2 but every index entry carries the
/// codec tag of its blob. `header.version` must be [`VERSION_V2_1`].
pub(crate) fn write_container_v2_1<T: Scalar>(
    header: &Header,
    chunk_rows: usize,
    chunks: &[(usize, ChunkCodecKind, Vec<u8>)], // (rows, codec, blob) in slab order
) -> Vec<u8> {
    let body: usize = chunks.iter().map(|(_, _, b)| b.len()).sum();
    let mut out = Vec::with_capacity(body + 16 * chunks.len() + 64);
    write_header_prefix(&mut out, header, T::TAG);
    put_uvarint(&mut out, chunk_rows as u64);
    put_uvarint(&mut out, chunks.len() as u64);
    for &(rows, codec, ref blob) in chunks {
        put_uvarint(&mut out, rows as u64);
        put_uvarint(&mut out, blob.len() as u64);
        out.push(codec.tag());
    }
    for (_, _, blob) in chunks {
        out.extend_from_slice(blob);
    }
    out
}

/// Serialize a whole v2.2 container in memory: header, blobs, trailer.
/// The streaming writer produces the identical byte sequence
/// incrementally; this convenience exists for container-level tests.
/// `header.version` must be [`VERSION_V2_2`].
#[cfg(test)]
pub(crate) fn write_container_v2_2<T: Scalar>(
    header: &Header,
    chunk_rows: usize,
    chunks: &[(usize, ChunkCodecKind, Vec<u8>)], // (rows, codec, blob) in slab order
) -> Vec<u8> {
    let body: usize = chunks.iter().map(|(_, _, b)| b.len()).sum();
    let mut out = Vec::with_capacity(body + 16 * chunks.len() + 64);
    write_header_prefix(&mut out, header, T::TAG);
    for (_, _, blob) in chunks {
        out.extend_from_slice(blob);
    }
    let entries: Vec<(usize, ChunkCodecKind, usize, f64)> = chunks
        .iter()
        .map(|&(rows, codec, ref blob)| (rows, codec, blob.len(), header.abs_eb))
        .collect();
    write_trailer(&mut out, chunk_rows, &entries, false);
    out
}

/// Serialize a whole v2.3 container in memory: like
/// [`write_container_v2_2`] but with a per-chunk error bound in every
/// trailer entry. `header.version` must be [`VERSION_V2_3`].
#[cfg(test)]
pub(crate) fn write_container_v2_3<T: Scalar>(
    header: &Header,
    chunk_rows: usize,
    chunks: &[(usize, ChunkCodecKind, f64, Vec<u8>)], // (rows, codec, eb, blob)
) -> Vec<u8> {
    let body: usize = chunks.iter().map(|(_, _, _, b)| b.len()).sum();
    let mut out = Vec::with_capacity(body + 24 * chunks.len() + 64);
    write_header_prefix(&mut out, header, T::TAG);
    for (_, _, _, blob) in chunks {
        out.extend_from_slice(blob);
    }
    let entries: Vec<(usize, ChunkCodecKind, usize, f64)> = chunks
        .iter()
        .map(|&(rows, codec, eb, ref blob)| (rows, codec, blob.len(), eb))
        .collect();
    write_trailer(&mut out, chunk_rows, &entries, true);
    out
}

/// Serialize a whole v2.4 container in memory: identical byte layout to
/// [`write_container_v2_3`] (trailer index, per-chunk codec tag and
/// bound) but chunks may carry the [`ChunkCodecKind::Rolz`] tag. The
/// in-memory chunked pipeline writes rolz-capable configurations through
/// this. `header.version` must be [`VERSION_V2_4`].
pub(crate) fn write_container_v2_4<T: Scalar>(
    header: &Header,
    chunk_rows: usize,
    chunks: &[(usize, ChunkCodecKind, f64, Vec<u8>)], // (rows, codec, eb, blob)
) -> Vec<u8> {
    let body: usize = chunks.iter().map(|(_, _, _, b)| b.len()).sum();
    let mut out = Vec::with_capacity(body + 24 * chunks.len() + 64);
    write_header_prefix(&mut out, header, T::TAG);
    for (_, _, _, blob) in chunks {
        out.extend_from_slice(blob);
    }
    let entries: Vec<(usize, ChunkCodecKind, usize, f64)> = chunks
        .iter()
        .map(|&(rows, codec, eb, ref blob)| (rows, codec, blob.len(), eb))
        .collect();
    write_trailer(&mut out, chunk_rows, &entries, true);
    out
}

/// Parsed header + chunk index of a v2/v2.1/v2.2 container (blobs stay in
/// place — random access slices them out by entry offsets).
pub(crate) struct V2Index {
    pub header: Header,
    /// Nominal axis-0 rows per chunk (last chunk may hold fewer).
    pub chunk_rows: usize,
    pub entries: Vec<ChunkEntry>,
}

/// Parse the header and chunk index of a v2/v2.1 container.
pub(crate) fn read_container_v2_index<T: Scalar>(
    bytes: &[u8],
) -> Result<V2Index, DecompressError> {
    let idx = read_v2_index_untyped(bytes)?;
    if idx.header.scalar_tag != T::TAG {
        return Err(DecompressError::ScalarMismatch {
            expected: T::TAG,
            found: idx.header.scalar_tag,
        });
    }
    Ok(idx)
}

/// Raw `(rows, byte_len, codec, per-chunk eb)` entries of a chunk index,
/// before validation against the header. The bound is `None` for every
/// generation before v2.3 (those chunks inherit the header bound).
pub(crate) type RawIndexEntries = Vec<(usize, usize, ChunkCodecKind, Option<f64>)>;

/// Parse `chunk_rows`, `n_chunks` and the raw `(rows, len, codec, eb)`
/// entries of a chunk index out of `bytes` starting at `*pos`. Shared by
/// the inline v2/v2.1 index, the v2.2–v2.4 trailer and the streaming
/// reader. `with_eb` selects the v2.3+ entry layout (an f64 bound after
/// the codec tag); non-finite or non-positive bounds are corruption.
/// `rolz_allowed` gates codec tag 2 (legal from v2.4 on only).
pub(crate) fn parse_index_body(
    bytes: &[u8],
    pos: &mut usize,
    tagged: bool,
    with_eb: bool,
    rolz_allowed: bool,
    max_chunks: usize,
) -> Result<(usize, RawIndexEntries), DecompressError> {
    let chunk_rows =
        get_uvarint(bytes, pos).ok_or(DecompressError::Corrupt("chunk rows"))? as usize;
    if chunk_rows == 0 {
        return Err(DecompressError::Corrupt("zero chunk rows"));
    }
    let n_chunks =
        get_uvarint(bytes, pos).ok_or(DecompressError::Corrupt("chunk count"))? as usize;
    if n_chunks == 0 || n_chunks > max_chunks {
        return Err(DecompressError::Corrupt("bad chunk count"));
    }
    // Capacity only up to what the buffer could physically hold (≥ 2
    // bytes per entry): a crafted count must not drive a huge upfront
    // allocation — the parse loop below fails on truncation regardless.
    let mut raw =
        Vec::with_capacity(n_chunks.min(bytes.len().saturating_sub(*pos) / 2));
    for _ in 0..n_chunks {
        let rows =
            get_uvarint(bytes, pos).ok_or(DecompressError::Corrupt("chunk index"))? as usize;
        let len =
            get_uvarint(bytes, pos).ok_or(DecompressError::Corrupt("chunk index"))? as usize;
        let codec = if tagged {
            let tag = *bytes.get(*pos).ok_or(DecompressError::Corrupt("chunk codec tag"))?;
            *pos += 1;
            let codec = ChunkCodecKind::from_tag(tag)
                .ok_or(DecompressError::Corrupt("unknown chunk codec tag"))?;
            if codec == ChunkCodecKind::Rolz && !rolz_allowed {
                return Err(DecompressError::Corrupt("rolz codec tag in pre-v2.4 container"));
            }
            codec
        } else {
            ChunkCodecKind::Sz
        };
        let eb = if with_eb {
            let end = pos
                .checked_add(8)
                .filter(|&e| e <= bytes.len())
                .ok_or(DecompressError::Corrupt("truncated per-chunk error bound"))?;
            let eb = f64::from_le_bytes(bytes[*pos..end].try_into().unwrap());
            *pos = end;
            if !(eb.is_finite() && eb > 0.0) {
                return Err(DecompressError::Corrupt("bad per-chunk error bound"));
            }
            Some(eb)
        } else {
            None
        };
        raw.push((rows, len, codec, eb));
    }
    Ok((chunk_rows, raw))
}

/// Validate raw index triples against the header and the byte region the
/// blobs live in (`offset..region_end`), producing located entries.
pub(crate) fn entries_from_raw(
    header: &Header,
    mut offset: usize,
    raw: RawIndexEntries,
    region_end: usize,
) -> Result<Vec<ChunkEntry>, DecompressError> {
    let mut entries = Vec::with_capacity(raw.len());
    let mut start_row = 0usize;
    for (rows, len, codec, eb) in raw {
        // Corrupt varints can hold anything: every entry must fit inside
        // what remains of axis 0 (checked subtraction — an unchecked
        // running sum would overflow before the tiling check below).
        if rows == 0 || rows > header.shape.dim(0) - start_row {
            return Err(DecompressError::Corrupt("chunk rows do not tile axis 0"));
        }
        let end = offset.checked_add(len).ok_or(DecompressError::Corrupt("chunk index"))?;
        if end > region_end {
            return Err(DecompressError::Corrupt("chunk overruns buffer"));
        }
        entries.push(ChunkEntry {
            start_row,
            rows,
            offset,
            len,
            codec,
            eb: eb.unwrap_or(header.abs_eb),
        });
        start_row += rows;
        offset = end;
    }
    if start_row != header.shape.dim(0) {
        return Err(DecompressError::Corrupt("chunk rows do not tile axis 0"));
    }
    Ok(entries)
}

/// Locate a v2.2 trailer from the archive's last 12 bytes. `suffix` is
/// those bytes; returns `(trailer_start, trailer_len)` measured in the
/// whole archive. Shared by the slice parser and the streaming reader.
pub(crate) fn trailer_bounds(
    total_len: u64,
    header_end: u64,
    suffix: &[u8],
) -> Result<(u64, u64), DecompressError> {
    if suffix.len() != TRAILER_SUFFIX_LEN || total_len < header_end + TRAILER_SUFFIX_LEN as u64 {
        return Err(DecompressError::Corrupt("truncated v2.2 trailer"));
    }
    if &suffix[8..] != TRAILER_MAGIC {
        return Err(DecompressError::Corrupt("missing v2.2 trailer magic"));
    }
    let trailer_len = u64::from_le_bytes(suffix[..8].try_into().unwrap());
    let suffix_start = total_len - TRAILER_SUFFIX_LEN as u64;
    let trailer_start = suffix_start
        .checked_sub(trailer_len)
        .filter(|&s| s >= header_end)
        .ok_or(DecompressError::Corrupt("v2.2 trailer length overruns archive"))?;
    Ok((trailer_start, trailer_len))
}

/// Parse and validate a located v2.2/v2.3 trailer body (`trailer` is the
/// region `trailer_start..trailer_start+len`, suffix excluded): the
/// index body must fill it exactly, and the resulting blob extents must
/// tile `header_end..trailer_start` exactly. The entry layout (with or
/// without the per-chunk bound) follows `header.version`. Returns
/// `(chunk_rows, entries)`. The single implementation behind both the
/// slice parser and the streaming [`crate::ArchiveReader`], so the two
/// can never drift apart on what counts as a valid trailer.
pub(crate) fn parse_v2_2_trailer(
    header: &Header,
    header_end: usize,
    trailer: &[u8],
    trailer_start: usize,
) -> Result<(usize, Vec<ChunkEntry>), DecompressError> {
    let mut tpos = 0usize;
    let with_eb = matches!(header.version, VERSION_V2_3 | VERSION_V2_4);
    let rolz_allowed = header.version == VERSION_V2_4;
    let (chunk_rows, raw) =
        parse_index_body(trailer, &mut tpos, true, with_eb, rolz_allowed, header.shape.dim(0))?;
    if tpos != trailer.len() {
        return Err(DecompressError::Corrupt("trailing bytes in v2.2 trailer"));
    }
    let entries = entries_from_raw(header, header_end, raw, trailer_start)?;
    // v2.2 blobs must tile the header→trailer region exactly; a gap
    // means the index lengths disagree with what was written.
    let blob_end = entries.last().map(|e| e.offset + e.len).unwrap_or(header_end);
    if blob_end != trailer_start {
        return Err(DecompressError::Corrupt("v2.2 blobs do not reach the trailer"));
    }
    Ok((chunk_rows, entries))
}

/// Serialize a v2.2/v2.3 trailer (index body + length suffix + magic) for
/// the given `(rows, codec, blob_len, eb)` entries in slab order. The
/// per-chunk bound is written only when `with_eb` is set (v2.3).
pub(crate) fn write_trailer(
    out: &mut Vec<u8>,
    chunk_rows: usize,
    chunks: &[(usize, ChunkCodecKind, usize, f64)],
    with_eb: bool,
) {
    let body_start = out.len();
    put_uvarint(out, chunk_rows as u64);
    put_uvarint(out, chunks.len() as u64);
    for &(rows, codec, len, eb) in chunks {
        put_uvarint(out, rows as u64);
        put_uvarint(out, len as u64);
        out.push(codec.tag());
        if with_eb {
            out.extend_from_slice(&eb.to_le_bytes());
        }
    }
    let body_len = (out.len() - body_start) as u64;
    out.extend_from_slice(&body_len.to_le_bytes());
    out.extend_from_slice(TRAILER_MAGIC);
}

/// Parse the header and chunk index of a v2/v2.1/v2.2 container without
/// checking the scalar type (inspection use).
fn read_v2_index_untyped(bytes: &[u8]) -> Result<V2Index, DecompressError> {
    let (header, mut pos) = read_header_prefix(bytes)?;
    match header.version {
        VERSION_V2 | VERSION_V2_1 => {
            let tagged = header.version == VERSION_V2_1;
            let (chunk_rows, raw) =
                parse_index_body(bytes, &mut pos, tagged, false, false, header.shape.dim(0))?;
            let entries = entries_from_raw(&header, pos, raw, bytes.len())?;
            Ok(V2Index { header, chunk_rows, entries })
        }
        VERSION_V2_2 | VERSION_V2_3 | VERSION_V2_4 => {
            let suffix_at = bytes
                .len()
                .checked_sub(TRAILER_SUFFIX_LEN)
                .filter(|&s| s >= pos)
                .ok_or(DecompressError::Corrupt("truncated v2.2 trailer"))?;
            let (tstart, tlen) =
                trailer_bounds(bytes.len() as u64, pos as u64, &bytes[suffix_at..])?;
            let (tstart, tlen) = (tstart as usize, tlen as usize);
            let (chunk_rows, entries) =
                parse_v2_2_trailer(&header, pos, &bytes[tstart..tstart + tlen], tstart)?;
            Ok(V2Index { header, chunk_rows, entries })
        }
        _ => Err(DecompressError::Corrupt("not a chunked container")),
    }
}

/// Parse only the header of a container (cheap inspection; v1 and v2).
pub fn peek_header(bytes: &[u8]) -> Result<Header, DecompressError> {
    read_header_prefix(bytes).map(|(h, _)| h)
}

/// Human name of a container generation, from its version byte ("2.1"
/// for byte 3, …). Unknown bytes — which the parsers reject anyway —
/// report as "unknown".
pub fn generation_name(version: u8) -> &'static str {
    match version {
        VERSION_V1 => "1",
        VERSION_V2 => "2",
        VERSION_V2_1 => "2.1",
        VERSION_V2_2 => "2.2",
        VERSION_V2_3 => "2.3",
        VERSION_V2_4 => "2.4",
        _ => "unknown",
    }
}

/// Number of independently-decodable chunks in a container (1 for v1).
///
/// Works for both container versions without decoding any payload.
pub fn chunk_count(bytes: &[u8]) -> Result<usize, DecompressError> {
    let (header, mut pos) = read_header_prefix(bytes)?;
    match header.version {
        VERSION_V1 => Ok(1),
        // The v2.2+ index lives in the trailer; the full parse is
        // still cheap (no payload is decoded).
        VERSION_V2_2 | VERSION_V2_3 | VERSION_V2_4 => {
            read_v2_index_untyped(bytes).map(|i| i.entries.len())
        }
        _ => {
            let _chunk_rows =
                get_uvarint(bytes, &mut pos).ok_or(DecompressError::Corrupt("chunk rows"))?;
            let n = get_uvarint(bytes, &mut pos)
                .ok_or(DecompressError::Corrupt("chunk count"))? as usize;
            if n == 0 {
                return Err(DecompressError::Corrupt("bad chunk count"));
            }
            Ok(n)
        }
    }
}

/// A container's chunk partition, for inspection tools.
#[derive(Clone, Debug)]
pub struct ChunkTable {
    /// Nominal axis-0 rows per chunk (v1: the whole axis).
    pub chunk_rows: usize,
    /// One entry per independently-decodable chunk, in slab order. For a
    /// v1 container this is a single whole-field entry whose `len` spans
    /// the container body.
    pub entries: Vec<ChunkEntry>,
}

/// Seek to `at` and read exactly `len` bytes.
pub(crate) fn read_span<R: std::io::Read + std::io::Seek>(
    src: &mut R,
    at: u64,
    len: usize,
) -> Result<Vec<u8>, DecompressError> {
    src.seek(std::io::SeekFrom::Start(at))?;
    let mut buf = vec![0u8; len];
    src.read_exact(&mut buf)?;
    Ok(buf)
}

/// [`read_span`] into a caller-provided buffer (typically a recycled pool
/// buffer): seek to `at` and fill `buf` exactly, with no allocation.
pub(crate) fn read_span_into<R: std::io::Read + std::io::Seek>(
    src: &mut R,
    at: u64,
    buf: &mut [u8],
) -> Result<(), DecompressError> {
    src.seek(std::io::SeekFrom::Start(at))?;
    src.read_exact(buf)?;
    Ok(())
}

/// Upper bound on the serialized header prefix: fixed bytes + 4 dims of
/// ≤ 10 varint bytes + the f64 bound + the radius varint, with slack.
const HEADER_READ_BYTES: usize = 96;

/// The parsed structural layout of an archive on a seekable source: the
/// header plus every chunk's location, with no payload read.
pub(crate) struct ArchiveLayout {
    pub header: Header,
    pub chunk_rows: usize,
    pub entries: Vec<ChunkEntry>,
}

/// Parse the header and chunk index of any container generation from a
/// seekable source, reading only the header bytes and the index (inline
/// for v2/v2.1, trailer for v2.2/v2.3). Shared by the streaming
/// [`crate::ArchiveReader`] and the shareable [`crate::ConcurrentReader`].
pub(crate) fn read_archive_layout<R: std::io::Read + std::io::Seek>(
    src: &mut R,
) -> Result<ArchiveLayout, DecompressError> {
    let total_len = src.seek(std::io::SeekFrom::End(0))?;
    let head = read_span(src, 0, HEADER_READ_BYTES.min(total_len as usize))?;
    let (header, header_end) = read_header_prefix(&head)?;
    let d0 = header.shape.dim(0);
    let (chunk_rows, entries) = match header.version {
        VERSION_V1 => (
            d0,
            vec![ChunkEntry {
                start_row: 0,
                rows: d0,
                offset: header_end,
                len: (total_len as usize)
                    .checked_sub(header_end)
                    .ok_or(DecompressError::Corrupt("container shorter than header"))?,
                codec: ChunkCodecKind::Sz,
                eb: header.abs_eb,
            }],
        ),
        VERSION_V2_2 | VERSION_V2_3 | VERSION_V2_4 => {
            if total_len < (header_end + TRAILER_SUFFIX_LEN) as u64 {
                return Err(DecompressError::Corrupt("truncated v2.2 trailer"));
            }
            let suffix =
                read_span(src, total_len - TRAILER_SUFFIX_LEN as u64, TRAILER_SUFFIX_LEN)?;
            let (tstart, tlen) = trailer_bounds(total_len, header_end as u64, &suffix)?;
            let trailer = read_span(src, tstart, tlen as usize)?;
            parse_v2_2_trailer(&header, header_end, &trailer, tstart as usize)?
        }
        // v2 / v2.1: the index sits between header and blobs. Its byte
        // length is only known after parsing, so size the read from the
        // chunk count: first the two leading varints, then at most 21
        // bytes per entry.
        _ => {
            let tagged = header.version != VERSION_V2;
            let after = (total_len as usize).saturating_sub(header_end);
            let lead = read_span(src, header_end as u64, after.min(20))?;
            let mut p = 0usize;
            let _chunk_rows =
                get_uvarint(&lead, &mut p).ok_or(DecompressError::Corrupt("chunk rows"))?;
            let n =
                get_uvarint(&lead, &mut p).ok_or(DecompressError::Corrupt("chunk count"))? as usize;
            if n == 0 || n > d0 {
                return Err(DecompressError::Corrupt("bad chunk count"));
            }
            let index_max = 20 + n * 21;
            let buf = read_span(src, header_end as u64, after.min(index_max))?;
            let mut p = 0usize;
            let (chunk_rows, raw) = parse_index_body(&buf, &mut p, tagged, false, false, d0)?;
            let entries = entries_from_raw(&header, header_end + p, raw, total_len as usize)?;
            (chunk_rows, entries)
        }
    };
    Ok(ArchiveLayout { header, chunk_rows, entries })
}

/// Read a container's chunk partition (either version, any scalar type).
pub fn chunk_table(bytes: &[u8]) -> Result<ChunkTable, DecompressError> {
    let (header, pos) = read_header_prefix(bytes)?;
    if header.version == VERSION_V1 {
        return Ok(ChunkTable {
            chunk_rows: header.shape.dim(0),
            entries: vec![ChunkEntry {
                start_row: 0,
                rows: header.shape.dim(0),
                offset: pos,
                len: bytes.len() - pos,
                codec: ChunkCodecKind::Sz,
                eb: header.abs_eb,
            }],
        });
    }
    let idx = read_v2_index_untyped(bytes)?;
    Ok(ChunkTable { chunk_rows: idx.chunk_rows, entries: idx.entries })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_header(version: u8) -> Header {
        Header {
            version,
            scalar_tag: <f32 as Scalar>::TAG,
            predictor: PredictorKind::Lorenzo,
            lossless: LosslessStage::RleLzss,
            log_transform: false,
            shape: Shape::d3(10, 20, 30),
            abs_eb: 1e-4,
            radius: 1 << 15,
        }
    }

    #[test]
    fn container_roundtrip() {
        let h = sample_header(VERSION_V1);
        let bytes =
            write_container::<f32>(&h, &[1, 2, 3], &[9, 8, 7, 6], &[1.5f32, -2.5], &[0xAB]);
        let s = read_container::<f32>(&bytes).unwrap();
        assert_eq!(s.body.codebook, vec![1, 2, 3]);
        assert_eq!(s.body.payload, vec![9, 8, 7, 6]);
        assert_eq!(s.body.verbatim, vec![1.5f32, -2.5]);
        assert_eq!(s.body.side, vec![0xAB]);
        assert_eq!(s.header.shape.dims(), &[10, 20, 30]);
        assert_eq!(s.header.abs_eb, 1e-4);
        assert_eq!(s.header.predictor, PredictorKind::Lorenzo);
        assert_eq!(s.header.lossless, LosslessStage::RleLzss);
        assert_eq!(chunk_count(&bytes).unwrap(), 1);
    }

    #[test]
    fn scalar_mismatch_detected() {
        let h = sample_header(VERSION_V1);
        let bytes = write_container::<f32>(&h, &[], &[], &[], &[]);
        assert!(matches!(
            read_container::<f64>(&bytes),
            Err(DecompressError::ScalarMismatch { .. })
        ));
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(matches!(read_container::<f32>(b"NOPE....."), Err(DecompressError::NotAContainer)));
        assert!(matches!(read_container::<f32>(&[]), Err(DecompressError::NotAContainer)));
        assert!(matches!(peek_header(b"RQMC\x07xxxxxx"), Err(DecompressError::NotAContainer)));
    }

    #[test]
    fn truncated_section_rejected() {
        let h = sample_header(VERSION_V1);
        let bytes = write_container::<f32>(&h, &[1, 2, 3], &[9; 100], &[], &[]);
        let r = read_container::<f32>(&bytes[..bytes.len() - 50]);
        assert!(matches!(r, Err(DecompressError::Corrupt(_))));
    }

    #[test]
    fn overflowing_section_length_rejected() {
        // A section-length varint decoding to ~u64::MAX must not overflow
        // the bounds arithmetic (it used to panic on `pos + len`).
        let h = sample_header(VERSION_V1);
        let good = write_container::<f32>(&h, &[1, 2, 3], &[], &[], &[]);
        // The codebook section starts right after the fixed header; find
        // its length varint (value 3, single byte) and replace it with the
        // 10-byte LEB128 encoding of u64::MAX.
        let codebook_pos = good.len() - (1 + 3 + 1 + 1 + 1); // len+data, payload len, verbatim count, side len
        assert_eq!(good[codebook_pos], 3);
        let mut evil = good[..codebook_pos].to_vec();
        evil.extend([0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01]);
        evil.extend(&good[codebook_pos + 1..]);
        assert!(matches!(
            read_container::<f32>(&evil),
            Err(DecompressError::Corrupt(_))
        ));
    }

    #[test]
    fn peek_header_matches() {
        let h = sample_header(VERSION_V1);
        let bytes = write_container::<f32>(&h, &[], &[], &[], &[]);
        let p = peek_header(&bytes).unwrap();
        assert_eq!(p.version, VERSION_V1);
        assert_eq!(p.shape.dims(), h.shape.dims());
        assert_eq!(p.predictor, h.predictor);
        assert_eq!(p.abs_eb, h.abs_eb);
    }

    #[test]
    fn v2_roundtrip_index_and_blobs() {
        let mut h = sample_header(VERSION_V2);
        h.shape = Shape::d2(10, 4);
        let blob_a =
            write_chunk_blob::<f32>(LosslessStage::RleLzss, &[1], &[2, 2], &[0.5f32], &[]);
        let blob_b = write_chunk_blob::<f32>(LosslessStage::None, &[3], &[4], &[], &[9]);
        let bytes =
            write_container_v2::<f32>(&h, 6, &[(6, blob_a.clone()), (4, blob_b.clone())]);

        assert_eq!(peek_header(&bytes).unwrap().version, VERSION_V2);
        assert_eq!(chunk_count(&bytes).unwrap(), 2);

        let idx = read_container_v2_index::<f32>(&bytes).unwrap();
        assert_eq!(idx.chunk_rows, 6);
        assert_eq!(idx.entries.len(), 2);
        assert_eq!(idx.entries[0].start_row, 0);
        assert_eq!(idx.entries[0].rows, 6);
        assert_eq!(idx.entries[1].start_row, 6);
        assert_eq!(idx.entries[1].rows, 4);

        let e = idx.entries[0];
        let (ll, body) = read_chunk_blob::<f32>(&bytes[e.offset..e.offset + e.len]).unwrap();
        assert_eq!(ll, LosslessStage::RleLzss);
        assert_eq!(body.codebook, vec![1]);
        assert_eq!(body.payload, vec![2, 2]);
        assert_eq!(body.verbatim, vec![0.5f32]);
        let e = idx.entries[1];
        let (ll, body) = read_chunk_blob::<f32>(&bytes[e.offset..e.offset + e.len]).unwrap();
        assert_eq!(ll, LosslessStage::None);
        assert_eq!(body.side, vec![9]);
    }

    #[test]
    fn v2_1_roundtrip_with_codec_tags() {
        let mut h = sample_header(VERSION_V2_1);
        h.shape = Shape::d2(10, 4);
        let sz_blob =
            write_chunk_blob::<f32>(LosslessStage::None, &[1], &[2, 2], &[0.5f32], &[]);
        let zfp_blob = vec![9u8, 9, 9]; // opaque to the index layer
        let bytes = write_container_v2_1::<f32>(
            &h,
            6,
            &[
                (6, ChunkCodecKind::Sz, sz_blob.clone()),
                (4, ChunkCodecKind::Zfp, zfp_blob.clone()),
            ],
        );
        assert_eq!(container_version(&bytes).unwrap(), VERSION_V2_1);
        assert_eq!(chunk_count(&bytes).unwrap(), 2);
        let idx = read_container_v2_index::<f32>(&bytes).unwrap();
        assert_eq!(idx.entries[0].codec, ChunkCodecKind::Sz);
        assert_eq!(idx.entries[1].codec, ChunkCodecKind::Zfp);
        let e = idx.entries[1];
        assert_eq!(&bytes[e.offset..e.offset + e.len], &zfp_blob[..]);
        // The untyped inspection path reports the tags too.
        let table = chunk_table(&bytes).unwrap();
        assert_eq!(table.entries[0].codec, ChunkCodecKind::Sz);
        assert_eq!(table.entries[1].codec, ChunkCodecKind::Zfp);
    }

    #[test]
    fn v2_1_unknown_codec_tag_rejected() {
        let mut h = sample_header(VERSION_V2_1);
        h.shape = Shape::d1(4);
        let blob = write_chunk_blob::<f32>(LosslessStage::None, &[], &[], &[], &[]);
        let mut bytes = write_container_v2_1::<f32>(&h, 4, &[(4, ChunkCodecKind::Sz, blob)]);
        // The codec tag is the last index byte before the blob; find it by
        // re-parsing and poisoning the byte just before the blob offset.
        let idx = read_container_v2_index::<f32>(&bytes).unwrap();
        bytes[idx.entries[0].offset - 1] = 0x7F;
        assert!(matches!(
            read_container_v2_index::<f32>(&bytes),
            Err(DecompressError::Corrupt("unknown chunk codec tag"))
        ));
    }

    #[test]
    fn codec_kind_tag_roundtrip() {
        for k in [ChunkCodecKind::Sz, ChunkCodecKind::Zfp, ChunkCodecKind::Rolz] {
            assert_eq!(ChunkCodecKind::from_tag(k.tag()), Some(k));
        }
        assert_eq!(ChunkCodecKind::from_tag(3), None);
    }

    #[test]
    fn v2_4_roundtrip_rolz_tag() {
        let mut h = sample_header(VERSION_V2_4);
        h.shape = Shape::d2(10, 4);
        let sz_blob =
            write_chunk_blob::<f32>(LosslessStage::None, &[1], &[2, 2], &[0.5f32], &[]);
        let rolz_blob = vec![5u8, 5, 5, 5, 5]; // opaque to the index layer
        let bytes = write_container_v2_4::<f32>(
            &h,
            6,
            &[
                (6, ChunkCodecKind::Sz, 1e-4, sz_blob.clone()),
                (4, ChunkCodecKind::Rolz, 3e-5, rolz_blob.clone()),
            ],
        );
        assert_eq!(container_version(&bytes).unwrap(), VERSION_V2_4);
        assert_eq!(generation_name(bytes[4]), "2.4");
        assert_eq!(&bytes[bytes.len() - 4..], TRAILER_MAGIC);
        assert_eq!(chunk_count(&bytes).unwrap(), 2);
        let idx = read_container_v2_index::<f32>(&bytes).unwrap();
        assert_eq!(idx.entries[0].codec, ChunkCodecKind::Sz);
        assert_eq!(idx.entries[1].codec, ChunkCodecKind::Rolz);
        assert_eq!(idx.entries[0].eb, 1e-4);
        assert_eq!(idx.entries[1].eb, 3e-5);
        let e = idx.entries[1];
        assert_eq!(&bytes[e.offset..e.offset + e.len], &rolz_blob[..]);
        let table = chunk_table(&bytes).unwrap();
        assert_eq!(table.entries[1].codec, ChunkCodecKind::Rolz);
    }

    #[test]
    fn rolz_tag_rejected_in_pre_v2_4_containers() {
        // A v2.3 trailer entry tagged rolz is corruption even though the
        // tag itself is known — the generation predates the codec.
        let mut h = sample_header(VERSION_V2_3);
        h.shape = Shape::d1(4);
        let blob = write_chunk_blob::<f32>(LosslessStage::None, &[], &[], &[], &[]);
        let v23 =
            write_container_v2_3::<f32>(&h, 4, &[(4, ChunkCodecKind::Rolz, 1e-4, blob)]);
        assert!(matches!(
            read_container_v2_index::<f32>(&v23),
            Err(DecompressError::Corrupt("rolz codec tag in pre-v2.4 container"))
        ));
        // Same for an inline v2.1 index.
        let mut h21 = sample_header(VERSION_V2_1);
        h21.shape = Shape::d1(4);
        let blob = write_chunk_blob::<f32>(LosslessStage::None, &[], &[], &[], &[]);
        let v21 =
            write_container_v2_1::<f32>(&h21, 4, &[(4, ChunkCodecKind::Rolz, blob)]);
        assert!(matches!(
            read_container_v2_index::<f32>(&v21),
            Err(DecompressError::Corrupt("rolz codec tag in pre-v2.4 container"))
        ));
    }

    #[test]
    fn v2_bad_tiling_rejected() {
        let mut h = sample_header(VERSION_V2);
        h.shape = Shape::d2(10, 4);
        let blob = write_chunk_blob::<f32>(LosslessStage::None, &[], &[], &[], &[]);
        // Rows sum to 8 ≠ 10.
        let bytes = write_container_v2::<f32>(&h, 6, &[(6, blob.clone()), (2, blob)]);
        assert!(matches!(
            read_container_v2_index::<f32>(&bytes),
            Err(DecompressError::Corrupt("chunk rows do not tile axis 0"))
        ));
    }

    #[test]
    fn v2_overflowing_row_counts_rejected() {
        // Two rows varints of 2^63 and 2^63+8: an unchecked running sum
        // would overflow in debug and wrap to exactly dim(0) in release,
        // smuggling a 2^63-row slab past the tiling check.
        let mut h = sample_header(VERSION_V2);
        h.shape = Shape::d2(8, 4);
        let blob = write_chunk_blob::<f32>(LosslessStage::None, &[], &[], &[], &[]);
        let bytes = write_container_v2::<f32>(
            &h,
            8,
            &[(1usize << 63, blob.clone()), ((1usize << 63) + 8, blob)],
        );
        assert!(matches!(
            read_container_v2_index::<f32>(&bytes),
            Err(DecompressError::Corrupt("chunk rows do not tile axis 0"))
        ));
    }

    #[test]
    fn v2_truncated_blob_rejected() {
        let mut h = sample_header(VERSION_V2);
        h.shape = Shape::d2(10, 4);
        let blob = write_chunk_blob::<f32>(LosslessStage::None, &[1, 2], &[3], &[], &[]);
        let bytes = write_container_v2::<f32>(&h, 10, &[(10, blob)]);
        assert!(matches!(
            read_container_v2_index::<f32>(&bytes[..bytes.len() - 2]),
            Err(DecompressError::Corrupt(_))
        ));
    }

    #[test]
    fn v2_2_roundtrip_trailer_index() {
        let mut h = sample_header(VERSION_V2_2);
        h.shape = Shape::d2(10, 4);
        let sz_blob =
            write_chunk_blob::<f32>(LosslessStage::None, &[1], &[2, 2], &[0.5f32], &[]);
        let zfp_blob = vec![7u8, 7, 7, 7];
        let bytes = write_container_v2_2::<f32>(
            &h,
            6,
            &[
                (6, ChunkCodecKind::Sz, sz_blob.clone()),
                (4, ChunkCodecKind::Zfp, zfp_blob.clone()),
            ],
        );
        assert_eq!(container_version(&bytes).unwrap(), VERSION_V2_2);
        assert_eq!(&bytes[bytes.len() - 4..], TRAILER_MAGIC);
        assert_eq!(chunk_count(&bytes).unwrap(), 2);
        let idx = read_container_v2_index::<f32>(&bytes).unwrap();
        assert_eq!(idx.chunk_rows, 6);
        assert_eq!(idx.entries.len(), 2);
        assert_eq!(idx.entries[0].codec, ChunkCodecKind::Sz);
        assert_eq!(idx.entries[1].codec, ChunkCodecKind::Zfp);
        assert_eq!(idx.entries[1].start_row, 6);
        let e = idx.entries[1];
        assert_eq!(&bytes[e.offset..e.offset + e.len], &zfp_blob[..]);
        // Blobs start immediately after the header (no inline index).
        let (_, header_end) = read_header_prefix(&bytes).unwrap();
        assert_eq!(idx.entries[0].offset, header_end);
        // The untyped inspection path sees the same table.
        let table = chunk_table(&bytes).unwrap();
        assert_eq!(table.entries.len(), 2);
        assert_eq!(table.entries[1].codec, ChunkCodecKind::Zfp);
    }

    #[test]
    fn v2_2_truncated_trailer_rejected() {
        let mut h = sample_header(VERSION_V2_2);
        h.shape = Shape::d1(4);
        let blob = write_chunk_blob::<f32>(LosslessStage::None, &[], &[], &[], &[]);
        let bytes = write_container_v2_2::<f32>(&h, 4, &[(4, ChunkCodecKind::Sz, blob)]);
        for cut in 1..TRAILER_SUFFIX_LEN + 3 {
            assert!(
                read_container_v2_index::<f32>(&bytes[..bytes.len() - cut]).is_err(),
                "cut {cut} bytes off the trailer must fail"
            );
        }
    }

    #[test]
    fn v2_2_bad_trailer_length_rejected() {
        let mut h = sample_header(VERSION_V2_2);
        h.shape = Shape::d1(4);
        let blob = write_chunk_blob::<f32>(LosslessStage::None, &[], &[], &[], &[]);
        let good = write_container_v2_2::<f32>(&h, 4, &[(4, ChunkCodecKind::Sz, blob)]);
        // Trailer length pointing past the start of the archive.
        let mut evil = good.clone();
        let at = evil.len() - TRAILER_SUFFIX_LEN;
        evil[at..at + 8].copy_from_slice(&(u64::MAX).to_le_bytes());
        assert!(matches!(
            read_container_v2_index::<f32>(&evil),
            Err(DecompressError::Corrupt("v2.2 trailer length overruns archive"))
        ));
        // Wrong closing magic.
        let mut evil = good.clone();
        let n = evil.len();
        evil[n - 1] ^= 0xff;
        assert!(matches!(
            read_container_v2_index::<f32>(&evil),
            Err(DecompressError::Corrupt("missing v2.2 trailer magic"))
        ));
        // Trailer length one byte short: the index body no longer parses
        // cleanly or the blobs no longer reach the trailer.
        let mut evil = good;
        let at = evil.len() - TRAILER_SUFFIX_LEN;
        let tlen = u64::from_le_bytes(evil[at..at + 8].try_into().unwrap());
        evil[at..at + 8].copy_from_slice(&(tlen - 1).to_le_bytes());
        assert!(read_container_v2_index::<f32>(&evil).is_err());
    }

    #[test]
    fn v2_2_overrunning_blob_length_rejected() {
        // An index length that would put a blob on top of the trailer.
        let mut h = sample_header(VERSION_V2_2);
        h.shape = Shape::d2(10, 4);
        let blob = write_chunk_blob::<f32>(LosslessStage::None, &[1], &[2], &[], &[]);
        let short = write_chunk_blob::<f32>(LosslessStage::None, &[], &[], &[], &[]);
        // Claim the first blob is longer than it is: entries overlap the
        // second blob and the total no longer reaches the trailer cleanly.
        let mut out = Vec::new();
        write_header_prefix(&mut out, &h, <f32 as Scalar>::TAG);
        out.extend_from_slice(&blob);
        out.extend_from_slice(&short);
        write_trailer(
            &mut out,
            6,
            &[
                (6, ChunkCodecKind::Sz, blob.len() + short.len() + 50, h.abs_eb),
                (4, ChunkCodecKind::Sz, short.len(), h.abs_eb),
            ],
            false,
        );
        assert!(read_container_v2_index::<f32>(&out).is_err());
    }

    #[test]
    fn v2_3_roundtrip_per_chunk_bounds() {
        let mut h = sample_header(VERSION_V2_3);
        h.shape = Shape::d2(10, 4);
        h.abs_eb = 1e-2; // the max of the planned bounds
        let sz_blob =
            write_chunk_blob::<f32>(LosslessStage::None, &[1], &[2, 2], &[0.5f32], &[]);
        let zfp_blob = vec![7u8, 7, 7, 7];
        let bytes = write_container_v2_3::<f32>(
            &h,
            6,
            &[
                (6, ChunkCodecKind::Sz, 1e-2, sz_blob.clone()),
                (4, ChunkCodecKind::Zfp, 3e-4, zfp_blob.clone()),
            ],
        );
        assert_eq!(container_version(&bytes).unwrap(), VERSION_V2_3);
        assert_eq!(&bytes[bytes.len() - 4..], TRAILER_MAGIC);
        assert_eq!(chunk_count(&bytes).unwrap(), 2);
        let idx = read_container_v2_index::<f32>(&bytes).unwrap();
        assert_eq!(idx.entries.len(), 2);
        assert_eq!(idx.entries[0].eb, 1e-2);
        assert_eq!(idx.entries[1].eb, 3e-4);
        assert_eq!(idx.entries[1].codec, ChunkCodecKind::Zfp);
        let e = idx.entries[1];
        assert_eq!(&bytes[e.offset..e.offset + e.len], &zfp_blob[..]);
        // The untyped inspection path reports per-chunk bounds too.
        let table = chunk_table(&bytes).unwrap();
        assert_eq!(table.entries[0].eb, 1e-2);
        assert_eq!(table.entries[1].eb, 3e-4);
        // Pre-v2.3 generations report the header bound for every chunk.
        let mut h22 = sample_header(VERSION_V2_2);
        h22.shape = Shape::d1(4);
        let blob = write_chunk_blob::<f32>(LosslessStage::None, &[], &[], &[], &[]);
        let v22 = write_container_v2_2::<f32>(&h22, 4, &[(4, ChunkCodecKind::Sz, blob)]);
        let t22 = chunk_table(&v22).unwrap();
        assert_eq!(t22.entries[0].eb, h22.abs_eb);
    }

    #[test]
    fn v2_3_bad_per_chunk_bounds_rejected() {
        let mut h = sample_header(VERSION_V2_3);
        h.shape = Shape::d1(4);
        let blob = write_chunk_blob::<f32>(LosslessStage::None, &[], &[], &[], &[]);
        let good =
            write_container_v2_3::<f32>(&h, 4, &[(4, ChunkCodecKind::Sz, 1e-4, blob)]);
        let idx = read_container_v2_index::<f32>(&good).unwrap();
        assert_eq!(idx.entries[0].eb, 1e-4);
        // The eb lives in the trailer: last entry field before the
        // 12-byte suffix.
        let eb_at = good.len() - TRAILER_SUFFIX_LEN - 8;
        for evil in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 0.0, -1e-4] {
            let mut m = good.clone();
            m[eb_at..eb_at + 8].copy_from_slice(&evil.to_le_bytes());
            assert!(
                matches!(
                    read_container_v2_index::<f32>(&m),
                    Err(DecompressError::Corrupt(_))
                ),
                "eb {evil} must be rejected"
            );
        }
        // A v2.3 trailer truncated mid-bound (v2.2-sized entries under a
        // v2.3 version byte) must be corruption, not a silent fallback.
        let mut short = Vec::new();
        write_header_prefix(&mut short, &h, <f32 as Scalar>::TAG);
        let blob2 = write_chunk_blob::<f32>(LosslessStage::None, &[], &[], &[], &[]);
        short.extend_from_slice(&blob2);
        write_trailer(&mut short, 4, &[(4, ChunkCodecKind::Sz, blob2.len(), 1e-4)], false);
        assert!(read_container_v2_index::<f32>(&short).is_err());
    }

    #[test]
    fn version_dispatch() {
        let v1 = write_container::<f32>(&sample_header(VERSION_V1), &[], &[], &[], &[]);
        assert_eq!(container_version(&v1).unwrap(), VERSION_V1);
        let mut h2 = sample_header(VERSION_V2);
        h2.shape = Shape::d1(4);
        let blob = write_chunk_blob::<f32>(LosslessStage::None, &[], &[], &[], &[]);
        let v2 = write_container_v2::<f32>(&h2, 4, &[(4, blob)]);
        assert_eq!(container_version(&v2).unwrap(), VERSION_V2);
        // v1 reader refuses v2 bytes (and vice versa) without panicking.
        assert!(read_container::<f32>(&v2).is_err());
        assert!(read_container_v2_index::<f32>(&v1).is_err());
    }
}
