//! On-disk container formats for compressed fields.
//!
//! Two versions share one header prefix (all integers little-endian or
//! LEB128 varints):
//!
//! ```text
//! magic    "RQMC" (4 bytes)
//! version  u8   (1 = single-stream, 2 = chunked)
//! scalar   u8   (Scalar::TAG)
//! pred     u8   (PredictorKind::tag)
//! flags    u8   bit0 = lossless stage applied*, bit1 = log transform
//! ndim     u8
//! dims     varint × ndim
//! eb       f64  absolute error bound actually used (post-resolution)
//! radius   varint
//! ```
//!
//! **Version 1** (serial pipeline) continues with four varint-length-
//! prefixed sections: `codebook | payload | verbatim values | side
//! channel`. "Verbatim values" holds unpredictable escapes and
//! interpolation anchors in traversal order, stored as raw scalars so they
//! round-trip exactly.
//!
//! **Version 2** (chunk-parallel pipeline) continues with a chunk index
//! and then the per-chunk streams back to back:
//!
//! ```text
//! chunk_rows  varint            nominal axis-0 rows per chunk
//! n_chunks    varint
//! index       (rows varint, byte_len varint) × n_chunks
//! blobs       n_chunks × chunk blob
//! ```
//!
//! Each chunk blob is a self-contained v1-style body with its own flag
//! byte (bit0 = lossless stage applied to *this* chunk's payload):
//! `chunk_flags u8 | codebook | payload | verbatim | side`. Chunks are
//! axis-0 slabs in row order; byte offsets follow from the index, so any
//! chunk can be decoded without touching the others (random access) and
//! all chunks can be decoded concurrently.
//!
//! (*) In v2 the header's lossless flag records the *configuration*; the
//! authoritative per-chunk decision is each blob's flag byte, since the
//! stage is only kept where it actually shrank that chunk's payload.

use crate::config::LosslessStage;
use rq_encoding::varint::{get_uvarint, put_uvarint};
use rq_grid::{Scalar, Shape, MAX_DIMS};
use rq_predict::PredictorKind;

pub(crate) const MAGIC: &[u8; 4] = b"RQMC";
/// Single-stream container (the original format).
pub(crate) const VERSION_V1: u8 = 1;
/// Chunk-indexed container (parallel pipeline).
pub(crate) const VERSION_V2: u8 = 2;
pub(crate) const FLAG_LOSSLESS: u8 = 0b01;
pub(crate) const FLAG_LOG: u8 = 0b10;

/// Errors produced while compressing.
#[derive(Debug)]
pub enum CompressError {
    /// The resolved error bound was invalid (e.g. relative bound on a
    /// constant field).
    InvalidBound(String),
    /// Entropy-coding failure (internal invariant violation).
    Encoding(rq_encoding::HuffmanError),
}

impl std::fmt::Display for CompressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompressError::InvalidBound(m) => write!(f, "invalid error bound: {m}"),
            CompressError::Encoding(e) => write!(f, "encoding failed: {e}"),
        }
    }
}

impl std::error::Error for CompressError {}

impl From<rq_encoding::HuffmanError> for CompressError {
    fn from(e: rq_encoding::HuffmanError) -> Self {
        CompressError::Encoding(e)
    }
}

/// Errors produced while decompressing.
#[derive(Debug)]
pub enum DecompressError {
    /// The buffer does not start with the container magic or a known
    /// version.
    NotAContainer,
    /// Scalar type mismatch between the container and the requested type.
    ScalarMismatch { expected: u8, found: u8 },
    /// Structural corruption.
    Corrupt(&'static str),
    /// A chunk index outside the container's chunk table.
    ChunkOutOfRange { requested: usize, available: usize },
    /// Huffman decode failure.
    Encoding(rq_encoding::HuffmanError),
}

impl std::fmt::Display for DecompressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecompressError::NotAContainer => write!(f, "not an RQMC container"),
            DecompressError::ScalarMismatch { expected, found } => {
                write!(f, "scalar tag mismatch: expected {expected:#x}, found {found:#x}")
            }
            DecompressError::Corrupt(what) => write!(f, "corrupt container: {what}"),
            DecompressError::ChunkOutOfRange { requested, available } => {
                write!(f, "chunk {requested} out of range (container has {available})")
            }
            DecompressError::Encoding(e) => write!(f, "huffman decode failed: {e}"),
        }
    }
}

impl std::error::Error for DecompressError {}

impl From<rq_encoding::HuffmanError> for DecompressError {
    fn from(e: rq_encoding::HuffmanError) -> Self {
        DecompressError::Encoding(e)
    }
}

/// Parsed container header (common to both versions).
#[derive(Debug, Clone)]
pub struct Header {
    /// Container format version (1 = serial, 2 = chunked).
    pub version: u8,
    /// Scalar tag of the stored field.
    pub scalar_tag: u8,
    /// Predictor the stream was produced with.
    pub predictor: PredictorKind,
    /// Whether the payload went through the optional lossless stage (in
    /// v2: whether the stage was enabled; per-chunk flags decide).
    pub lossless: LosslessStage,
    /// Whether data was log-transformed (point-wise relative mode).
    pub log_transform: bool,
    /// Field shape.
    pub shape: Shape,
    /// Absolute error bound used by the quantizer.
    pub abs_eb: f64,
    /// Quantizer radius.
    pub radius: u32,
}

/// The format version of a container, or an error if it is not one.
pub(crate) fn container_version(bytes: &[u8]) -> Result<u8, DecompressError> {
    if bytes.len() < 9 || &bytes[..4] != MAGIC {
        return Err(DecompressError::NotAContainer);
    }
    match bytes[4] {
        v @ (VERSION_V1 | VERSION_V2) => Ok(v),
        _ => Err(DecompressError::NotAContainer),
    }
}

/// Serialize the shared header prefix.
fn write_header_prefix(out: &mut Vec<u8>, header: &Header, scalar_tag: u8) {
    out.extend_from_slice(MAGIC);
    out.push(header.version);
    out.push(scalar_tag);
    out.push(header.predictor.tag());
    let mut flags = 0u8;
    if header.lossless == LosslessStage::RleLzss {
        flags |= FLAG_LOSSLESS;
    }
    if header.log_transform {
        flags |= FLAG_LOG;
    }
    out.push(flags);
    out.push(header.shape.ndim() as u8);
    for &d in header.shape.dims() {
        put_uvarint(out, d as u64);
    }
    out.extend_from_slice(&header.abs_eb.to_le_bytes());
    put_uvarint(out, header.radius as u64);
}

/// Parse the shared header prefix; returns the header and the position of
/// the first byte after it. Does not check the scalar tag.
fn read_header_prefix(bytes: &[u8]) -> Result<(Header, usize), DecompressError> {
    let version = container_version(bytes)?;
    let scalar_tag = bytes[5];
    let predictor = PredictorKind::from_tag(bytes[6])
        .ok_or(DecompressError::Corrupt("unknown predictor tag"))?;
    let flags = bytes[7];
    let ndim = bytes[8] as usize;
    if ndim == 0 || ndim > MAX_DIMS {
        return Err(DecompressError::Corrupt("bad ndim"));
    }
    let mut pos = 9;
    let mut dims = [0usize; MAX_DIMS];
    for d in dims.iter_mut().take(ndim) {
        *d = get_uvarint(bytes, &mut pos).ok_or(DecompressError::Corrupt("dims"))? as usize;
        if *d == 0 || *d > (1 << 32) {
            return Err(DecompressError::Corrupt("bad dim extent"));
        }
    }
    let shape = Shape::new(&dims[..ndim]);
    if pos + 8 > bytes.len() {
        return Err(DecompressError::Corrupt("eb"));
    }
    let abs_eb = f64::from_le_bytes(bytes[pos..pos + 8].try_into().unwrap());
    pos += 8;
    if !(abs_eb.is_finite() && abs_eb > 0.0) {
        return Err(DecompressError::Corrupt("non-positive eb"));
    }
    let radius = get_uvarint(bytes, &mut pos).ok_or(DecompressError::Corrupt("radius"))? as u32;
    if radius == 0 {
        return Err(DecompressError::Corrupt("zero radius"));
    }
    let lossless =
        if flags & FLAG_LOSSLESS != 0 { LosslessStage::RleLzss } else { LosslessStage::None };
    Ok((
        Header {
            version,
            scalar_tag,
            predictor,
            lossless,
            log_transform: flags & FLAG_LOG != 0,
            shape,
            abs_eb,
            radius,
        },
        pos,
    ))
}

/// Append one varint-length-prefixed byte section.
fn write_byte_section(out: &mut Vec<u8>, section: &[u8]) {
    put_uvarint(out, section.len() as u64);
    out.extend_from_slice(section);
}

/// Read one varint-length-prefixed byte section.
fn read_byte_section(bytes: &[u8], pos: &mut usize) -> Result<Vec<u8>, DecompressError> {
    let len = get_uvarint(bytes, pos).ok_or(DecompressError::Corrupt("section len"))? as usize;
    // Checked: a corrupt varint can decode to a length that overflows the
    // addition, not just one that overruns the buffer.
    let end = pos
        .checked_add(len)
        .filter(|&end| end <= bytes.len())
        .ok_or(DecompressError::Corrupt("section overruns buffer"))?;
    let s = bytes[*pos..end].to_vec();
    *pos = end;
    Ok(s)
}

/// The four data sections of one compressed stream (a whole v1 container
/// body, or one v2 chunk).
pub(crate) struct SectionsBody<T> {
    pub codebook: Vec<u8>,
    pub payload: Vec<u8>,
    pub verbatim: Vec<T>,
    pub side: Vec<u8>,
}

/// Serialize the four sections: `codebook | payload | verbatim | side`.
fn write_sections_body<T: Scalar>(
    out: &mut Vec<u8>,
    codebook: &[u8],
    payload: &[u8],
    verbatim: &[T],
    side: &[u8],
) {
    write_byte_section(out, codebook);
    write_byte_section(out, payload);
    put_uvarint(out, verbatim.len() as u64);
    for &v in verbatim {
        v.write_le(out);
    }
    write_byte_section(out, side);
}

/// Parse the four sections written by [`write_sections_body`].
fn read_sections_body<T: Scalar>(
    bytes: &[u8],
    pos: &mut usize,
) -> Result<SectionsBody<T>, DecompressError> {
    let codebook = read_byte_section(bytes, pos)?;
    let payload = read_byte_section(bytes, pos)?;
    let n_verbatim =
        get_uvarint(bytes, pos).ok_or(DecompressError::Corrupt("verbatim count"))? as usize;
    if n_verbatim
        .checked_mul(T::BYTES)
        .and_then(|b| b.checked_add(*pos))
        .is_none_or(|end| end > bytes.len())
    {
        return Err(DecompressError::Corrupt("verbatim overruns buffer"));
    }
    let mut verbatim = Vec::with_capacity(n_verbatim);
    for _ in 0..n_verbatim {
        verbatim.push(T::read_le(&bytes[*pos..]));
        *pos += T::BYTES;
    }
    let side = read_byte_section(bytes, pos)?;
    Ok(SectionsBody { codebook, payload, verbatim, side })
}

// ---------------------------------------------------------------------------
// Version 1 (single stream)
// ---------------------------------------------------------------------------

/// Serialize a v1 header followed by the four sections.
pub(crate) fn write_container<T: Scalar>(
    header: &Header,
    codebook: &[u8],
    payload: &[u8],
    verbatim: &[T],
    side: &[u8],
) -> Vec<u8> {
    let mut out = Vec::with_capacity(
        payload.len() + codebook.len() + verbatim.len() * T::BYTES + side.len() + 64,
    );
    write_header_prefix(&mut out, header, T::TAG);
    write_sections_body(&mut out, codebook, payload, verbatim, side);
    out
}

/// Parsed sections of a v1 container.
pub(crate) struct Sections<T> {
    pub header: Header,
    pub body: SectionsBody<T>,
}

/// Parse a v1 container produced by [`write_container`].
pub(crate) fn read_container<T: Scalar>(bytes: &[u8]) -> Result<Sections<T>, DecompressError> {
    let (header, mut pos) = read_header_prefix(bytes)?;
    if header.version != VERSION_V1 {
        return Err(DecompressError::Corrupt("not a v1 container"));
    }
    if header.scalar_tag != T::TAG {
        return Err(DecompressError::ScalarMismatch { expected: T::TAG, found: header.scalar_tag });
    }
    let body = read_sections_body::<T>(bytes, &mut pos)?;
    Ok(Sections { header, body })
}

// ---------------------------------------------------------------------------
// Version 2 (chunk index + per-chunk streams)
// ---------------------------------------------------------------------------

/// Per-chunk flag: the optional lossless stage was applied to this chunk's
/// payload.
pub(crate) const CHUNK_FLAG_LOSSLESS: u8 = 0b01;

/// One entry of a v2 chunk index, with its blob located in the container.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChunkEntry {
    /// First axis-0 row of the slab.
    pub start_row: usize,
    /// Axis-0 rows in the slab.
    pub rows: usize,
    /// Byte offset of the chunk blob within the container.
    pub offset: usize,
    /// Byte length of the chunk blob.
    pub len: usize,
}

/// Serialize one chunk's streams as a self-contained blob.
pub(crate) fn write_chunk_blob<T: Scalar>(
    lossless_applied: LosslessStage,
    codebook: &[u8],
    payload: &[u8],
    verbatim: &[T],
    side: &[u8],
) -> Vec<u8> {
    let mut out = Vec::with_capacity(
        payload.len() + codebook.len() + verbatim.len() * T::BYTES + side.len() + 16,
    );
    out.push(if lossless_applied == LosslessStage::RleLzss { CHUNK_FLAG_LOSSLESS } else { 0 });
    write_sections_body(&mut out, codebook, payload, verbatim, side);
    out
}

/// Parse a chunk blob written by [`write_chunk_blob`].
pub(crate) fn read_chunk_blob<T: Scalar>(
    blob: &[u8],
) -> Result<(LosslessStage, SectionsBody<T>), DecompressError> {
    if blob.is_empty() {
        return Err(DecompressError::Corrupt("empty chunk blob"));
    }
    let lossless = if blob[0] & CHUNK_FLAG_LOSSLESS != 0 {
        LosslessStage::RleLzss
    } else {
        LosslessStage::None
    };
    let mut pos = 1;
    let body = read_sections_body::<T>(blob, &mut pos)?;
    if pos != blob.len() {
        return Err(DecompressError::Corrupt("trailing bytes in chunk blob"));
    }
    Ok((lossless, body))
}

/// Serialize a v2 container: header, chunk index, then the blobs.
pub(crate) fn write_container_v2<T: Scalar>(
    header: &Header,
    chunk_rows: usize,
    chunks: &[(usize, Vec<u8>)], // (rows, blob) in slab order
) -> Vec<u8> {
    let body: usize = chunks.iter().map(|(_, b)| b.len()).sum();
    let mut out = Vec::with_capacity(body + 16 * chunks.len() + 64);
    write_header_prefix(&mut out, header, T::TAG);
    put_uvarint(&mut out, chunk_rows as u64);
    put_uvarint(&mut out, chunks.len() as u64);
    for &(rows, ref blob) in chunks {
        put_uvarint(&mut out, rows as u64);
        put_uvarint(&mut out, blob.len() as u64);
    }
    for (_, blob) in chunks {
        out.extend_from_slice(blob);
    }
    out
}

/// Parsed header + chunk index of a v2 container (blobs stay in place —
/// random access slices them out by entry offsets).
pub(crate) struct V2Index {
    pub header: Header,
    /// Nominal axis-0 rows per chunk (last chunk may hold fewer).
    pub chunk_rows: usize,
    pub entries: Vec<ChunkEntry>,
}

/// Parse the header and chunk index of a v2 container.
pub(crate) fn read_container_v2_index<T: Scalar>(
    bytes: &[u8],
) -> Result<V2Index, DecompressError> {
    let idx = read_v2_index_untyped(bytes)?;
    if idx.header.scalar_tag != T::TAG {
        return Err(DecompressError::ScalarMismatch {
            expected: T::TAG,
            found: idx.header.scalar_tag,
        });
    }
    Ok(idx)
}

/// Parse the header and chunk index of a v2 container without checking
/// the scalar type (inspection use).
fn read_v2_index_untyped(bytes: &[u8]) -> Result<V2Index, DecompressError> {
    let (header, mut pos) = read_header_prefix(bytes)?;
    if header.version != VERSION_V2 {
        return Err(DecompressError::Corrupt("not a v2 container"));
    }
    let chunk_rows =
        get_uvarint(bytes, &mut pos).ok_or(DecompressError::Corrupt("chunk rows"))? as usize;
    if chunk_rows == 0 {
        return Err(DecompressError::Corrupt("zero chunk rows"));
    }
    let n_chunks =
        get_uvarint(bytes, &mut pos).ok_or(DecompressError::Corrupt("chunk count"))? as usize;
    if n_chunks == 0 || n_chunks > header.shape.dim(0) {
        return Err(DecompressError::Corrupt("bad chunk count"));
    }
    let mut raw = Vec::with_capacity(n_chunks);
    for _ in 0..n_chunks {
        let rows =
            get_uvarint(bytes, &mut pos).ok_or(DecompressError::Corrupt("chunk index"))? as usize;
        let len =
            get_uvarint(bytes, &mut pos).ok_or(DecompressError::Corrupt("chunk index"))? as usize;
        raw.push((rows, len));
    }
    let mut entries = Vec::with_capacity(n_chunks);
    let mut start_row = 0usize;
    let mut offset = pos;
    for (rows, len) in raw {
        if rows == 0 {
            return Err(DecompressError::Corrupt("zero-row chunk"));
        }
        let end = offset.checked_add(len).ok_or(DecompressError::Corrupt("chunk index"))?;
        if end > bytes.len() {
            return Err(DecompressError::Corrupt("chunk overruns buffer"));
        }
        entries.push(ChunkEntry { start_row, rows, offset, len });
        start_row += rows;
        offset = end;
    }
    if start_row != header.shape.dim(0) {
        return Err(DecompressError::Corrupt("chunk rows do not tile axis 0"));
    }
    Ok(V2Index { header, chunk_rows, entries })
}

/// Parse only the header of a container (cheap inspection; v1 and v2).
pub fn peek_header(bytes: &[u8]) -> Result<Header, DecompressError> {
    read_header_prefix(bytes).map(|(h, _)| h)
}

/// Number of independently-decodable chunks in a container (1 for v1).
///
/// Works for both container versions without decoding any payload.
pub fn chunk_count(bytes: &[u8]) -> Result<usize, DecompressError> {
    let (header, mut pos) = read_header_prefix(bytes)?;
    if header.version == VERSION_V1 {
        return Ok(1);
    }
    let _chunk_rows =
        get_uvarint(bytes, &mut pos).ok_or(DecompressError::Corrupt("chunk rows"))?;
    let n = get_uvarint(bytes, &mut pos).ok_or(DecompressError::Corrupt("chunk count"))? as usize;
    if n == 0 {
        return Err(DecompressError::Corrupt("bad chunk count"));
    }
    Ok(n)
}

/// A container's chunk partition, for inspection tools.
#[derive(Clone, Debug)]
pub struct ChunkTable {
    /// Nominal axis-0 rows per chunk (v1: the whole axis).
    pub chunk_rows: usize,
    /// One entry per independently-decodable chunk, in slab order. For a
    /// v1 container this is a single whole-field entry whose `len` spans
    /// the container body.
    pub entries: Vec<ChunkEntry>,
}

/// Read a container's chunk partition (either version, any scalar type).
pub fn chunk_table(bytes: &[u8]) -> Result<ChunkTable, DecompressError> {
    let (header, pos) = read_header_prefix(bytes)?;
    if header.version == VERSION_V1 {
        return Ok(ChunkTable {
            chunk_rows: header.shape.dim(0),
            entries: vec![ChunkEntry {
                start_row: 0,
                rows: header.shape.dim(0),
                offset: pos,
                len: bytes.len() - pos,
            }],
        });
    }
    let idx = read_v2_index_untyped(bytes)?;
    Ok(ChunkTable { chunk_rows: idx.chunk_rows, entries: idx.entries })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_header(version: u8) -> Header {
        Header {
            version,
            scalar_tag: <f32 as Scalar>::TAG,
            predictor: PredictorKind::Lorenzo,
            lossless: LosslessStage::RleLzss,
            log_transform: false,
            shape: Shape::d3(10, 20, 30),
            abs_eb: 1e-4,
            radius: 1 << 15,
        }
    }

    #[test]
    fn container_roundtrip() {
        let h = sample_header(VERSION_V1);
        let bytes =
            write_container::<f32>(&h, &[1, 2, 3], &[9, 8, 7, 6], &[1.5f32, -2.5], &[0xAB]);
        let s = read_container::<f32>(&bytes).unwrap();
        assert_eq!(s.body.codebook, vec![1, 2, 3]);
        assert_eq!(s.body.payload, vec![9, 8, 7, 6]);
        assert_eq!(s.body.verbatim, vec![1.5f32, -2.5]);
        assert_eq!(s.body.side, vec![0xAB]);
        assert_eq!(s.header.shape.dims(), &[10, 20, 30]);
        assert_eq!(s.header.abs_eb, 1e-4);
        assert_eq!(s.header.predictor, PredictorKind::Lorenzo);
        assert_eq!(s.header.lossless, LosslessStage::RleLzss);
        assert_eq!(chunk_count(&bytes).unwrap(), 1);
    }

    #[test]
    fn scalar_mismatch_detected() {
        let h = sample_header(VERSION_V1);
        let bytes = write_container::<f32>(&h, &[], &[], &[], &[]);
        assert!(matches!(
            read_container::<f64>(&bytes),
            Err(DecompressError::ScalarMismatch { .. })
        ));
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(matches!(read_container::<f32>(b"NOPE....."), Err(DecompressError::NotAContainer)));
        assert!(matches!(read_container::<f32>(&[]), Err(DecompressError::NotAContainer)));
        assert!(matches!(peek_header(b"RQMC\x07xxxxxx"), Err(DecompressError::NotAContainer)));
    }

    #[test]
    fn truncated_section_rejected() {
        let h = sample_header(VERSION_V1);
        let bytes = write_container::<f32>(&h, &[1, 2, 3], &[9; 100], &[], &[]);
        let r = read_container::<f32>(&bytes[..bytes.len() - 50]);
        assert!(matches!(r, Err(DecompressError::Corrupt(_))));
    }

    #[test]
    fn overflowing_section_length_rejected() {
        // A section-length varint decoding to ~u64::MAX must not overflow
        // the bounds arithmetic (it used to panic on `pos + len`).
        let h = sample_header(VERSION_V1);
        let good = write_container::<f32>(&h, &[1, 2, 3], &[], &[], &[]);
        // The codebook section starts right after the fixed header; find
        // its length varint (value 3, single byte) and replace it with the
        // 10-byte LEB128 encoding of u64::MAX.
        let codebook_pos = good.len() - (1 + 3 + 1 + 1 + 1); // len+data, payload len, verbatim count, side len
        assert_eq!(good[codebook_pos], 3);
        let mut evil = good[..codebook_pos].to_vec();
        evil.extend([0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01]);
        evil.extend(&good[codebook_pos + 1..]);
        assert!(matches!(
            read_container::<f32>(&evil),
            Err(DecompressError::Corrupt(_))
        ));
    }

    #[test]
    fn peek_header_matches() {
        let h = sample_header(VERSION_V1);
        let bytes = write_container::<f32>(&h, &[], &[], &[], &[]);
        let p = peek_header(&bytes).unwrap();
        assert_eq!(p.version, VERSION_V1);
        assert_eq!(p.shape.dims(), h.shape.dims());
        assert_eq!(p.predictor, h.predictor);
        assert_eq!(p.abs_eb, h.abs_eb);
    }

    #[test]
    fn v2_roundtrip_index_and_blobs() {
        let mut h = sample_header(VERSION_V2);
        h.shape = Shape::d2(10, 4);
        let blob_a =
            write_chunk_blob::<f32>(LosslessStage::RleLzss, &[1], &[2, 2], &[0.5f32], &[]);
        let blob_b = write_chunk_blob::<f32>(LosslessStage::None, &[3], &[4], &[], &[9]);
        let bytes =
            write_container_v2::<f32>(&h, 6, &[(6, blob_a.clone()), (4, blob_b.clone())]);

        assert_eq!(peek_header(&bytes).unwrap().version, VERSION_V2);
        assert_eq!(chunk_count(&bytes).unwrap(), 2);

        let idx = read_container_v2_index::<f32>(&bytes).unwrap();
        assert_eq!(idx.chunk_rows, 6);
        assert_eq!(idx.entries.len(), 2);
        assert_eq!(idx.entries[0].start_row, 0);
        assert_eq!(idx.entries[0].rows, 6);
        assert_eq!(idx.entries[1].start_row, 6);
        assert_eq!(idx.entries[1].rows, 4);

        let e = idx.entries[0];
        let (ll, body) = read_chunk_blob::<f32>(&bytes[e.offset..e.offset + e.len]).unwrap();
        assert_eq!(ll, LosslessStage::RleLzss);
        assert_eq!(body.codebook, vec![1]);
        assert_eq!(body.payload, vec![2, 2]);
        assert_eq!(body.verbatim, vec![0.5f32]);
        let e = idx.entries[1];
        let (ll, body) = read_chunk_blob::<f32>(&bytes[e.offset..e.offset + e.len]).unwrap();
        assert_eq!(ll, LosslessStage::None);
        assert_eq!(body.side, vec![9]);
    }

    #[test]
    fn v2_bad_tiling_rejected() {
        let mut h = sample_header(VERSION_V2);
        h.shape = Shape::d2(10, 4);
        let blob = write_chunk_blob::<f32>(LosslessStage::None, &[], &[], &[], &[]);
        // Rows sum to 8 ≠ 10.
        let bytes = write_container_v2::<f32>(&h, 6, &[(6, blob.clone()), (2, blob)]);
        assert!(matches!(
            read_container_v2_index::<f32>(&bytes),
            Err(DecompressError::Corrupt("chunk rows do not tile axis 0"))
        ));
    }

    #[test]
    fn v2_truncated_blob_rejected() {
        let mut h = sample_header(VERSION_V2);
        h.shape = Shape::d2(10, 4);
        let blob = write_chunk_blob::<f32>(LosslessStage::None, &[1, 2], &[3], &[], &[]);
        let bytes = write_container_v2::<f32>(&h, 10, &[(10, blob)]);
        assert!(matches!(
            read_container_v2_index::<f32>(&bytes[..bytes.len() - 2]),
            Err(DecompressError::Corrupt(_))
        ));
    }

    #[test]
    fn version_dispatch() {
        let v1 = write_container::<f32>(&sample_header(VERSION_V1), &[], &[], &[], &[]);
        assert_eq!(container_version(&v1).unwrap(), VERSION_V1);
        let mut h2 = sample_header(VERSION_V2);
        h2.shape = Shape::d1(4);
        let blob = write_chunk_blob::<f32>(LosslessStage::None, &[], &[], &[], &[]);
        let v2 = write_container_v2::<f32>(&h2, 4, &[(4, blob)]);
        assert_eq!(container_version(&v2).unwrap(), VERSION_V2);
        // v1 reader refuses v2 bytes (and vice versa) without panicking.
        assert!(read_container::<f32>(&v2).is_err());
        assert!(read_container_v2_index::<f32>(&v1).is_err());
    }
}
