//! Test/bench access to the chunk kernels.
//!
//! Hidden from the public docs on purpose: this surface exists so
//! `tests/kernel_differential.rs` and the `codec_kernels` bench can drive
//! the fast and reference kernel paths against each other at the
//! chunk-blob level, without widening the real API. The container format
//! is identical on both paths — that identity is the whole point.

use crate::codec::{ChunkCodec, SzChunkCodec};
use crate::config::LosslessStage;
use crate::container::{CompressError, DecompressError};
pub use crate::pipeline::KernelPath;
use rq_grid::{Scalar, Shape};
use rq_predict::PredictorKind;
use rq_quant::LinearQuantizer;

/// Encode one slab to a v2 chunk blob on the chosen kernel path.
///
/// Identical inputs must produce byte-identical blobs on both paths.
pub fn encode_chunk<T: Scalar>(
    data: &[T],
    shape: Shape,
    predictor: PredictorKind,
    eb: f64,
    radius: u32,
    lossless: LosslessStage,
    path: KernelPath,
) -> Result<Vec<u8>, CompressError> {
    let codec = SzChunkCodec::new(predictor, LinearQuantizer::new(eb, radius), lossless)
        .with_kernel_path(path);
    Ok(codec.encode(data, shape)?.0)
}

/// Decode a v2 chunk blob produced by [`encode_chunk`] on the chosen
/// kernel path. Both paths must reconstruct bit-identical values and
/// accept/reject exactly the same blobs.
pub fn decode_chunk<T: Scalar>(
    blob: &[u8],
    shape: Shape,
    predictor: PredictorKind,
    eb: f64,
    radius: u32,
    path: KernelPath,
    out: &mut [T],
) -> Result<(), DecompressError> {
    let codec = SzChunkCodec::new(
        predictor,
        LinearQuantizer::new(eb, radius),
        LosslessStage::RleLzss, // per-blob flag byte is authoritative
    )
    .with_kernel_path(path);
    codec.decode(blob, shape, out)
}

/// Encode one slab to a ROLZ chunk blob on the chosen kernel path.
///
/// Identical inputs must produce byte-identical blobs on both paths (the
/// paths differ in match extension — SWAR vs byte loop — and in the
/// Huffman coder, all proven output-equal).
pub fn encode_chunk_rolz<T: Scalar>(
    data: &[T],
    shape: Shape,
    predictor: PredictorKind,
    eb: f64,
    radius: u32,
    path: KernelPath,
) -> Result<Vec<u8>, CompressError> {
    let codec = crate::rolz::RolzChunkCodec::new(predictor, LinearQuantizer::new(eb, radius))
        .with_kernel_path(path);
    Ok(codec.encode(data, shape)?.0)
}

/// Decode a ROLZ chunk blob produced by [`encode_chunk_rolz`] on the
/// chosen kernel path. Both paths must reconstruct bit-identical values
/// and accept/reject exactly the same blobs.
pub fn decode_chunk_rolz<T: Scalar>(
    blob: &[u8],
    shape: Shape,
    predictor: PredictorKind,
    eb: f64,
    radius: u32,
    path: KernelPath,
    out: &mut [T],
) -> Result<(), DecompressError> {
    let codec = crate::rolz::RolzChunkCodec::new(predictor, LinearQuantizer::new(eb, radius))
        .with_kernel_path(path);
    codec.decode(blob, shape, out)
}

/// Run one Lorenzo traversal with the caller's visit closure — exposes
/// the predictor hot loop alone (the fast row-specialized walk vs the
/// generic stencil walk) to the differential tests and the bench.
pub fn traverse_lorenzo(
    shape: Shape,
    order: usize,
    path: KernelPath,
    visit: impl FnMut(usize, f64) -> Result<f64, DecompressError>,
) -> Result<Vec<f64>, DecompressError> {
    crate::pipeline::traverse_lorenzo(shape, order, path, visit)
}
