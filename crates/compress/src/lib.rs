//! SZ3-style prediction-based error-bounded lossy compressor.
//!
//! The pipeline matches the three-stage structure the paper models
//! (§II-B): **prediction** (Lorenzo / multi-level interpolation / block
//! regression, from [`rq_predict`]), **linear-scaling quantization**
//! ([`rq_quant`]) and **encoding** (canonical Huffman plus an optional
//! lossless stage, from [`rq_encoding`]).
//!
//! ```
//! use rq_compress::{compress, decompress, CompressorConfig};
//! use rq_grid::{NdArray, Shape};
//! use rq_predict::PredictorKind;
//! use rq_quant::ErrorBoundMode;
//!
//! let field = NdArray::<f32>::from_fn(Shape::d2(64, 64), |ix| {
//!     ((ix[0] as f32) * 0.1).sin() + (ix[1] as f32) * 0.01
//! });
//! let cfg = CompressorConfig::new(PredictorKind::Lorenzo, ErrorBoundMode::Abs(1e-3));
//! let compressed = compress(&field, &cfg).unwrap();
//! let restored = decompress::<f32>(&compressed.bytes).unwrap();
//! for (a, b) in field.as_slice().iter().zip(restored.as_slice()) {
//!     assert!((a - b).abs() <= 1e-3 * 1.0001);
//! }
//! ```

pub mod chunked;
pub mod codec;
pub mod config;
pub mod container;
#[doc(hidden)]
pub mod kernels;
mod mmap;
mod pool;
pub mod pipeline;
pub mod report;
pub mod rolz;
pub mod scheduler;
pub mod stream;

pub use chunked::{
    compress_chunked, compress_chunked_with_report, decompress_chunk, decompress_with_threads,
    decompress_with_threads_exact, resolved_chunk_rows,
};
pub use codec::{ChunkCodec, ChunkStats, SzChunkCodec, ZfpChunkCodec};
pub use config::{Chunking, CodecChoice, CompressorConfig, LosslessStage};
pub use container::{
    chunk_count, chunk_table, generation_name, peek_header, ChunkCodecKind, ChunkEntry, ChunkTable,
    CompressError, DecompressError, Header,
};
pub use pipeline::{compress, compress_with_report, decompress};
pub use report::{json_f64, CompressedOutput, CompressionReport};
pub use rolz::RolzChunkCodec;
pub use scheduler::pick_codec;
pub use scheduler::{choose_codec, CodecDecision};
pub use stream::{
    assemble_rows, ArchiveReader, ArchiveWriter, ChunkSource, ConcurrentReader, FinishedArchive,
    ReadStats,
};
