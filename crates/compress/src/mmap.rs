//! Read-only memory mapping of archive files, with no libc dependency.
//!
//! The streaming decode engines fetch one compressed extent per chunk.
//! Over a plain `File` that is a `seek` + `read` syscall pair and a copy
//! into a (pooled) buffer per chunk; over a mapped source it is a bounds
//! check and a pointer offset — the decoder reads the blob bytes straight
//! out of the page cache, zero-copy, and the kernel's readahead overlaps
//! faulting the next extents with decoding the current one.
//!
//! The workspace builds offline with no external crates, so the mapping
//! is made with raw `mmap`/`munmap` syscalls (inline asm) on the
//! platforms this project actually targets — Linux x86_64 and aarch64 —
//! and [`SourceMap::map`] simply returns `None` elsewhere, dropping the
//! readers back to their seek+read fallback. Callers must treat a `None`
//! as routine, not exceptional.
//!
//! Caveat shared with every file mapping: if the file is truncated while
//! mapped, touching the vanished pages raises `SIGBUS`. Archives are
//! written via temp-file + rename and never truncated in place, so the
//! readers accept that (identical to the exposure `mmap`-based tools
//! like `ripgrep` accept).

use std::fs::File;

/// A read-only, privately-mapped view of an entire file.
///
/// `Send + Sync`: the mapping is immutable for its whole lifetime and
/// the pages are shared freely across decode workers.
pub(crate) struct SourceMap {
    ptr: *const u8,
    len: usize,
}

// SAFETY: the region is PROT_READ and never remapped until Drop, so
// concurrent reads from any thread are data-race free.
unsafe impl Send for SourceMap {}
unsafe impl Sync for SourceMap {}

impl SourceMap {
    /// Map `file` read-only. Returns `None` when the platform has no
    /// mmap path, the file is empty, or the kernel refuses the mapping —
    /// all of which callers treat as "use seek+read".
    pub fn map(file: &File) -> Option<SourceMap> {
        let len = file.metadata().ok()?.len();
        if len == 0 || len > usize::MAX as u64 {
            return None;
        }
        sys::mmap_readonly(file, len as usize).map(|ptr| SourceMap { ptr, len: len as usize })
    }

    /// The mapped bytes.
    pub fn as_slice(&self) -> &[u8] {
        // SAFETY: ptr/len describe one live PROT_READ mapping (see map).
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

impl Drop for SourceMap {
    fn drop(&mut self) {
        sys::munmap(self.ptr, self.len);
    }
}

#[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
mod sys {
    use std::fs::File;
    use std::os::fd::AsRawFd;

    const PROT_READ: usize = 1;
    const MAP_PRIVATE: usize = 2;

    /// `mmap(NULL, len, PROT_READ, MAP_PRIVATE, fd, 0)` via a raw
    /// syscall; `None` on any kernel error.
    pub fn mmap_readonly(file: &File, len: usize) -> Option<*const u8> {
        let fd = file.as_raw_fd();
        let ret = unsafe { mmap_syscall(len, fd) } as isize;
        // Errors come back as -errno in the usual -4095..0 window.
        if (-4095..0).contains(&ret) {
            None
        } else {
            Some(ret as *const u8)
        }
    }

    pub fn munmap(ptr: *const u8, len: usize) {
        unsafe { munmap_syscall(ptr, len) };
    }

    #[cfg(target_arch = "x86_64")]
    unsafe fn mmap_syscall(len: usize, fd: i32) -> usize {
        let ret: usize;
        std::arch::asm!(
            "syscall",
            inlateout("rax") 9usize => ret, // __NR_mmap
            in("rdi") 0usize,
            in("rsi") len,
            in("rdx") PROT_READ,
            in("r10") MAP_PRIVATE,
            in("r8") fd as isize,
            in("r9") 0usize,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack)
        );
        ret
    }

    #[cfg(target_arch = "x86_64")]
    unsafe fn munmap_syscall(ptr: *const u8, len: usize) {
        std::arch::asm!(
            "syscall",
            inlateout("rax") 11usize => _, // __NR_munmap
            in("rdi") ptr,
            in("rsi") len,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack)
        );
    }

    #[cfg(target_arch = "aarch64")]
    unsafe fn mmap_syscall(len: usize, fd: i32) -> usize {
        let ret: usize;
        std::arch::asm!(
            "svc #0",
            inlateout("x0") 0usize => ret,
            in("x1") len,
            in("x2") PROT_READ,
            in("x3") MAP_PRIVATE,
            in("x4") fd as isize,
            in("x5") 0usize,
            in("x8") 222usize, // __NR_mmap
            options(nostack)
        );
        ret
    }

    #[cfg(target_arch = "aarch64")]
    unsafe fn munmap_syscall(ptr: *const u8, len: usize) {
        std::arch::asm!(
            "svc #0",
            inlateout("x0") ptr => _,
            in("x1") len,
            in("x8") 215usize, // __NR_munmap
            options(nostack)
        );
    }
}

#[cfg(not(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64"))))]
mod sys {
    use std::fs::File;

    pub fn mmap_readonly(_file: &File, _len: usize) -> Option<*const u8> {
        None
    }

    pub fn munmap(_ptr: *const u8, _len: usize) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn maps_a_real_file_or_falls_back() {
        let dir = std::env::temp_dir().join("rqm_mmap_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("probe_{}.bin", std::process::id()));
        let payload: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        std::fs::File::create(&path).unwrap().write_all(&payload).unwrap();
        let f = File::open(&path).unwrap();
        match SourceMap::map(&f) {
            Some(m) => {
                assert_eq!(m.as_slice(), &payload[..]);
                // Two maps of the same file coexist.
                let m2 = SourceMap::map(&File::open(&path).unwrap()).unwrap();
                assert_eq!(m2.as_slice(), &payload[..]);
                drop(m);
                assert_eq!(m2.as_slice().len(), payload.len());
            }
            None => {
                // Non-Linux fallback: must be a clean None, not a panic.
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_is_not_mapped() {
        let dir = std::env::temp_dir().join("rqm_mmap_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("empty_{}.bin", std::process::id()));
        std::fs::File::create(&path).unwrap();
        assert!(SourceMap::map(&File::open(&path).unwrap()).is_none());
        std::fs::remove_file(&path).ok();
    }
}
