//! The compression/decompression pipeline.
//!
//! Compression walks the field in the predictor's causal traversal order,
//! quantizing each prediction error (paper §II-B). The *reconstructed*
//! value — exactly what the decompressor will later see, including the
//! rounding to the target scalar type — is written back into the traversal
//! buffer so compressor and decompressor predictions never diverge.
//!
//! The causal walk over one stream is factored into `encode_stream` /
//! `decode_stream`: the **chunk kernel**. The serial pipeline runs the
//! kernel once over the whole field and writes a v1 container; the
//! chunk-parallel pipeline (see [`crate::chunked`]) runs it once per
//! axis-0 slab on worker threads and writes a v2 container with a chunk
//! index. Because the kernel starts every stream with an empty history,
//! predictor stencils reset at slab boundaries and each chunk round-trips
//! independently.
//!
//! Point-wise relative bounds are realized by a log transform
//! (Liang et al. \[35\]): values are compressed as `ln(v)` under an absolute
//! bound of `ln(1 + ratio)`; non-positive values take the verbatim escape
//! path since the transform is undefined there.

use crate::config::{Chunking, CodecChoice, CompressorConfig, LosslessStage};
use crate::container::{
    container_version, read_container, write_container, CompressError, DecompressError, Header,
    SectionsBody, VERSION_V1,
};
use crate::report::{CompressedOutput, CompressionReport};
use rq_encoding::reference::{lossless_compress_ref, lossless_decompress_bounded_ref};
use rq_encoding::{lossless_compress, lossless_decompress_bounded, HuffmanCodec};
use rq_grid::{BlockIter, NdArray, Scalar, Shape, MAX_DIMS};
use rq_predict::interp::{anchors, for_each_stencil};
use rq_predict::lorenzo::LorenzoStencil;
use rq_predict::regression::{fit_block, BlockCoeffs, REGRESSION_BLOCK_SIDE};
use rq_predict::PredictorKind;
use rq_quant::LinearQuantizer;

/// Stand-in reconstruction value (log domain) for non-positive values in
/// point-wise relative mode; only used for predicting neighbors.
const LOG_FLOOR: f64 = -745.0; // ≈ ln(f64::MIN_POSITIVE)

/// Value-domain transform applied before quantization.
#[derive(Clone, Copy, Debug, PartialEq)]
pub(crate) enum Transform {
    Identity,
    /// `ln(v)`; `ratio` retained for the final bound check.
    Log { ratio: f64 },
}

impl Transform {
    #[inline]
    fn forward(self, v: f64) -> f64 {
        match self {
            Transform::Identity => v,
            Transform::Log { .. } => {
                if v > 0.0 {
                    v.ln()
                } else {
                    LOG_FLOOR
                }
            }
        }
    }
}

/// Resolve the user bound against the field's value range: the absolute
/// quantizer bound plus the value-domain transform.
pub(crate) fn resolve_bound(
    cfg: &CompressorConfig,
    value_range: f64,
) -> Result<(f64, Transform), CompressError> {
    let abs_eb = std::panic::catch_unwind(|| cfg.bound.absolute(value_range))
        .map_err(|_| CompressError::InvalidBound(format!("{:?} on range {value_range}", cfg.bound)))?;
    let transform = if cfg.bound.needs_log_transform() {
        let ratio = match cfg.bound {
            rq_quant::ErrorBoundMode::PointwiseRelative(r) => r,
            _ => unreachable!(),
        };
        Transform::Log { ratio }
    } else {
        Transform::Identity
    };
    Ok((abs_eb, transform))
}

/// Shared quantize-and-collect state for the compression passes.
struct QuantEncoder<T: Scalar> {
    quantizer: LinearQuantizer,
    transform: Transform,
    escape_symbol: u32,
    symbols: Vec<u32>,
    verbatim: Vec<T>,
    histogram: Vec<u64>,
    n_escapes: usize,
    /// Which quantize kernel drives [`Self::encode_point`]: the fast
    /// inlined rounder or the pre-rework libm twin. Identical results
    /// (held by rq-quant's `quantize_matches_reference_kernel`), so only
    /// the measured cost differs.
    path: KernelPath,
}

impl<T: Scalar> QuantEncoder<T> {
    fn new(quantizer: LinearQuantizer, transform: Transform, n_hint: usize, path: KernelPath) -> Self {
        let alphabet = quantizer.alphabet_size() + 1;
        QuantEncoder {
            quantizer,
            transform,
            escape_symbol: quantizer.alphabet_size() as u32,
            symbols: Vec::with_capacity(n_hint),
            verbatim: Vec::new(),
            histogram: vec![0u64; alphabet],
            n_escapes: 0,
            path,
        }
    }

    /// Store `original` verbatim (anchor or forced escape) and return the
    /// working-domain reconstruction.
    fn store_verbatim(&mut self, original: T) -> f64 {
        self.verbatim.push(original);
        self.transform.forward(original.to_f64())
    }

    /// Escape through the symbol stream (records the escape symbol too).
    fn escape(&mut self, original: T) -> f64 {
        self.symbols.push(self.escape_symbol);
        self.histogram[self.escape_symbol as usize] += 1;
        self.n_escapes += 1;
        self.store_verbatim(original)
    }

    /// Quantize one point. Returns the working-domain reconstruction that
    /// the decompressor will reproduce bit-for-bit.
    ///
    /// The working-domain value is derived here (`transform.forward` is a
    /// pure function of `original`) rather than read from a precomputed
    /// slab — the encode hot loop used to stream an extra 8 bytes/point
    /// through memory for it. The reference kernel path keeps that slab
    /// (see [`Self::encode_point_with_work`]) so it stays a faithful
    /// pre-rework cost model.
    #[inline]
    fn encode_point(&mut self, original: T, predicted: f64) -> f64 {
        let work = self.transform.forward(original.to_f64());
        self.encode_point_with_work(original, work, predicted)
    }

    /// [`Self::encode_point`] with the working-domain value supplied by
    /// the caller — the pre-rework loop shape, where every point's
    /// transform was precomputed into a `Vec<f64>` slab.
    #[inline]
    fn encode_point_with_work(&mut self, original: T, work: f64, predicted: f64) -> f64 {
        // Non-positive values cannot live in the log domain.
        if matches!(self.transform, Transform::Log { .. }) && original.to_f64() <= 0.0 {
            return self.escape(original);
        }
        let quantized = match self.path {
            KernelPath::Fast => self.quantizer.quantize_value(work, predicted),
            KernelPath::Reference => self.quantizer.quantize_value_ref(work, predicted),
        };
        let Some((code, recon_work)) = quantized else {
            return self.escape(original);
        };
        let (ok, recon_stored) = match self.transform {
            Transform::Identity => {
                // The decompressor rounds through T; verify with that value.
                let stored = T::from_f64(recon_work).to_f64();
                ((work - stored).abs() <= self.quantizer.error_bound() * (1.0 + 1e-9), stored)
            }
            Transform::Log { ratio } => {
                let out = T::from_f64(recon_work.exp()).to_f64();
                let orig = original.to_f64();
                ((out - orig).abs() <= ratio * orig.abs() * (1.0 + 1e-6), recon_work)
            }
        };
        if !ok {
            return self.escape(original);
        }
        let sym = self.quantizer.code_to_symbol(code);
        self.symbols.push(sym);
        self.histogram[sym as usize] += 1;
        recon_stored
    }
}

/// Where [`QuantDecoder`] pulls its symbol stream from.
///
/// The fast kernel path streams symbols straight out of the Huffman
/// payload as the traversal consumes them, so the entropy decode's
/// integer work overlaps the reconstruction's serial floating-point
/// chain (and the whole-stream `Vec<u32>` never exists). The reference
/// path keeps the pre-rework shape: all symbols decoded upfront, then
/// drained from the slab. Both yield the same symbols; on corrupt blobs
/// both reject (the surfaced error may differ — upfront decoding hits a
/// payload error before the traversal can hit a stream-exhaustion one).
enum SymbolSource<'a> {
    Upfront(std::slice::Iter<'a, u32>),
    Streaming(rq_encoding::huffman::StreamingDecoder<'a>),
}

impl SymbolSource<'_> {
    #[inline]
    fn next(&mut self) -> Result<u32, DecompressError> {
        match self {
            SymbolSource::Upfront(it) => {
                it.next().copied().ok_or(DecompressError::Corrupt("symbol stream exhausted"))
            }
            SymbolSource::Streaming(s) => s.next_symbol().map_err(Into::into),
        }
    }
}

/// Decode-side mirror of [`QuantEncoder`], writing into a caller-provided
/// output slab (so chunked decompression can decode straight into disjoint
/// slices of the final buffer).
struct QuantDecoder<'a, T: Scalar> {
    quantizer: LinearQuantizer,
    transform: Transform,
    escape_symbol: u32,
    symbols: SymbolSource<'a>,
    verbatim: std::slice::Iter<'a, T>,
    /// Output values in the original domain.
    out: &'a mut [T],
}

impl<'a, T: Scalar> QuantDecoder<'a, T> {
    /// Store into the output slab. `lin` comes from a traversal over
    /// `shape`, and `decode_stream` asserts `out.len() == shape.len()`.
    #[inline]
    fn put(&mut self, lin: usize, v: T) {
        // SAFETY: `lin < shape.len() == self.out.len()` (hard-asserted at
        // decode_stream entry; every traversal visits only in-shape
        // points). Audited, covered by tests/kernel_differential.rs.
        unsafe { *self.out.get_unchecked_mut(lin) = v };
    }

    fn take_verbatim(&mut self, lin: usize) -> Result<f64, DecompressError> {
        let v = *self
            .verbatim
            .next()
            .ok_or(DecompressError::Corrupt("verbatim stream exhausted"))?;
        self.put(lin, v);
        Ok(self.transform.forward(v.to_f64()))
    }

    /// Replay one point: consume a symbol, produce the output value and
    /// the working-domain reconstruction for future predictions.
    #[inline]
    fn decode_point(&mut self, lin: usize, predicted: f64) -> Result<f64, DecompressError> {
        let sym = self.symbols.next()?;
        if sym >= self.escape_symbol {
            if sym == self.escape_symbol {
                return self.take_verbatim(lin);
            }
            return Err(DecompressError::Corrupt("symbol out of alphabet"));
        }
        let code = self.quantizer.symbol_to_code(sym);
        let recon_work = predicted + self.quantizer.reconstruct(code);
        Ok(match self.transform {
            Transform::Identity => {
                let t = T::from_f64(recon_work);
                self.put(lin, t);
                t.to_f64()
            }
            Transform::Log { .. } => {
                self.put(lin, T::from_f64(recon_work.exp()));
                recon_work
            }
        })
    }
}

/// Which implementations drive the per-point hot loops and the entropy
/// stages. Production code always runs [`KernelPath::Fast`];
/// [`KernelPath::Reference`] keeps the pre-rework scalar kernels
/// reachable so `tests/kernel_differential.rs` can hold the two
/// byte-identical and the `codec_kernels` bench can measure the speedup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelPath {
    /// Table-driven / word-at-a-time / row-specialized kernels.
    Fast,
    /// The original scalar kernels.
    Reference,
}

/// Row-major Lorenzo traversal shared by the compressor and decompressor.
/// `visit(lin, predicted)` returns the reconstruction to store.
///
/// The fast path covers order 1 (every production Lorenzo/TemporalDelta
/// stream); order 2 always takes the generic stencil walk. Both paths
/// produce **bit-identical** reconstructions — the fast path reorders no
/// floating-point additions (see [`traverse_lorenzo1_fast`]).
pub(crate) fn traverse_lorenzo(
    shape: Shape,
    order: usize,
    path: KernelPath,
    visit: impl FnMut(usize, f64) -> Result<f64, DecompressError>,
) -> Result<Vec<f64>, DecompressError> {
    if order == 1 && path == KernelPath::Fast {
        traverse_lorenzo1_fast(shape, visit)
    } else {
        traverse_lorenzo_generic(shape, order, visit)
    }
}

/// The generic (reference) traversal: per-point stencil evaluation with
/// checked neighbor subtraction.
fn traverse_lorenzo_generic(
    shape: Shape,
    order: usize,
    mut visit: impl FnMut(usize, f64) -> Result<f64, DecompressError>,
) -> Result<Vec<f64>, DecompressError> {
    let stencil = LorenzoStencil::new(shape.ndim(), order);
    let mut recon = vec![0f64; shape.len()];
    let nd = shape.ndim();
    let mut idx = [0usize; MAX_DIMS];
    let mut lin = 0usize;
    loop {
        let pred = stencil.predict(&recon, shape, &idx[..nd]);
        recon[lin] = visit(lin, pred)?;
        lin += 1;
        // Odometer advance, last axis fastest (matches linear order).
        let mut axis = nd;
        loop {
            if axis == 0 {
                return Ok(recon);
            }
            axis -= 1;
            idx[axis] += 1;
            if idx[axis] < shape.dim(axis) {
                break;
            }
            idx[axis] = 0;
        }
    }
}

/// Row-specialized order-1 Lorenzo traversal.
///
/// The order-1 stencil's taps, in the exact enumeration order of
/// [`LorenzoStencil::new`] (axis 0 fastest), are the non-empty subsets of
/// axes read as binary: first every tap with offset 0 along the
/// contiguous axis (ascending leading-axis subset mask `m`, weight
/// `(-1)^(popcount(m)+1)`), then the same subsets with contiguous offset
/// 1 (pure-x first, each weight negated). That split is what this
/// function exploits:
///
/// * the `dx=0` taps only read *previous rows*, so their partial sums are
///   hoisted into a per-row `scratch` pass with no feedback dependence —
///   plain slice loops the compiler unrolls and vectorizes;
/// * the `dx=1` taps and the serial `visit` feedback run per point.
///
/// Floating-point addition order is preserved exactly: `scratch[j]`
/// accumulates per-subset in ascending mask order (the generic per-point
/// order), and the per-point tail adds the pure-x and `dx=1` terms in the
/// same sequence the generic walk would. Weights are ±1, so `w * r`
/// equals `r`/`-r` exactly and the specialized add/sub loops round
/// identically. Boundary rows simply drop the subsets whose axes sit at
/// coordinate 0 — the same taps the generic walk's `checked_sub` skips.
fn traverse_lorenzo1_fast(
    shape: Shape,
    mut visit: impl FnMut(usize, f64) -> Result<f64, DecompressError>,
) -> Result<Vec<f64>, DecompressError> {
    let nd = shape.ndim();
    let n = shape.len();
    let mut recon = vec![0f64; n];
    if n == 0 {
        return Ok(recon);
    }
    let w = shape.dim(nd - 1);
    let strides = shape.strides();
    let nlead = nd - 1;
    let nmask = 1usize << nlead;
    debug_assert!(nmask <= 8, "MAX_DIMS grew past 4: widen the subset tables");
    // Per leading-axis subset: linear offset and tap weight.
    let mut off = [0usize; 8];
    let mut wgt = [0f64; 8];
    for m in 1..nmask {
        for (a, &stride) in strides[..nlead].iter().enumerate() {
            if m & (1 << a) != 0 {
                off[m] += stride;
            }
        }
        wgt[m] = if m.count_ones() & 1 == 1 { 1.0 } else { -1.0 };
    }
    let mut scratch = vec![0f64; w];
    let mut coord = [0usize; MAX_DIMS];
    let mut row = 0usize;
    loop {
        // Subsets valid on this row: every member axis at coordinate >= 1.
        // Ascending mask order = the generic tap enumeration order.
        let mut avail = 0usize;
        for (a, &c) in coord[..nlead].iter().enumerate() {
            if c >= 1 {
                avail |= 1 << a;
            }
        }
        let mut taps = [(0usize, 0f64); 7];
        let mut ntaps = 0;
        for m in 1..nmask {
            if m & !avail == 0 {
                taps[ntaps] = (off[m], wgt[m]);
                ntaps += 1;
            }
        }
        let taps = &taps[..ntaps];

        // dx=0 prefix sums for the whole row, one subset at a time (the
        // per-element addition order this produces is exactly the generic
        // per-point order). No feedback: these loops vectorize.
        scratch.fill(0.0);
        for &(o, wg) in taps {
            let src = &recon[row - o..row - o + w];
            if wg == 1.0 {
                for (d, &s) in scratch.iter_mut().zip(src) {
                    *d += s;
                }
            } else {
                for (d, &s) in scratch.iter_mut().zip(src) {
                    *d -= s;
                }
            }
        }

        // Column 0: the dx=1 taps (including pure-x) are all invalid.
        recon[row] = visit(row, scratch[0])?;
        // The tap count per row is `2^popcount(avail) - 1` — dispatch to a
        // monomorphized tail so the per-point tap loop fully unrolls.
        match ntaps {
            0 => lorenzo1_row_tail::<0>(&mut recon, row, w, taps, &scratch, &mut visit)?,
            1 => lorenzo1_row_tail::<1>(&mut recon, row, w, taps, &scratch, &mut visit)?,
            3 => lorenzo1_row_tail::<3>(&mut recon, row, w, taps, &scratch, &mut visit)?,
            _ => {
                debug_assert_eq!(ntaps, 7);
                lorenzo1_row_tail::<7>(&mut recon, row, w, taps, &scratch, &mut visit)?
            }
        }

        row += w;
        // Odometer over the leading axes, last fastest (row-major order).
        let mut axis = nlead;
        loop {
            if axis == 0 {
                return Ok(recon);
            }
            axis -= 1;
            coord[axis] += 1;
            if coord[axis] < shape.dim(axis) {
                break;
            }
            coord[axis] = 0;
        }
    }
}

/// Serial tail of one [`traverse_lorenzo1_fast`] row: the pure-x tap
/// (weight +1) then the `NT` dx=1 subset taps (each the negated dx=0
/// weight), in subset order — the feedback part that cannot be hoisted.
/// `NT` is a compile-time tap count so the loop unrolls with the offsets
/// held in registers; floating-point order is identical to the dynamic
/// loop it replaces.
#[inline(always)]
fn lorenzo1_row_tail<const NT: usize>(
    recon: &mut [f64],
    row: usize,
    w: usize,
    taps: &[(usize, f64)],
    scratch: &[f64],
    visit: &mut impl FnMut(usize, f64) -> Result<f64, DecompressError>,
) -> Result<(), DecompressError> {
    debug_assert_eq!(taps.len(), NT);
    debug_assert!(scratch.len() >= w);
    for j in 1..w {
        let lin = row + j;
        // SAFETY (audited, covered by tests/kernel_differential.rs):
        // `j < w <= scratch.len()`; `lin < recon.len()` because the caller
        // guarantees `row + w <= recon.len()`; every `o` satisfies
        // `o <= row` (its axes all have coordinate >= 1), so `1 + o <= lin`
        // and the subtractions cannot wrap; `taps.len() == NT` is asserted.
        let acc = unsafe {
            let mut acc = *scratch.get_unchecked(j) + *recon.get_unchecked(lin - 1);
            for k in 0..NT {
                let (o, wg) = *taps.get_unchecked(k);
                acc += -wg * *recon.get_unchecked(lin - 1 - o);
            }
            acc
        };
        let v = visit(lin, acc)?;
        // SAFETY: `lin < recon.len()` as above.
        unsafe { *recon.get_unchecked_mut(lin) = v };
    }
    Ok(())
}

/// Interpolation traversal over non-anchor points. The caller must have
/// already written the anchor reconstructions into `recon`.
fn traverse_interp_points(
    shape: Shape,
    recon: &mut [f64],
    mut visit: impl FnMut(usize, f64) -> Result<f64, DecompressError>,
) -> Result<(), DecompressError> {
    let mut err = None;
    for_each_stencil(shape, |t| {
        if err.is_some() {
            return;
        }
        let pred = t.predict(recon);
        match visit(t.target, pred) {
            Ok(v) => recon[t.target] = v,
            Err(e) => err = Some(e),
        }
    });
    match err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Iterate the elements of one block in row-major (block-local) order.
fn for_each_in_block(
    shape: Shape,
    block: &rq_grid::BlockSpec,
    mut f: impl FnMut(usize, &[usize]),
) {
    let strides = shape.strides();
    let nd = block.ndim;
    let mut local = [0usize; MAX_DIMS];
    loop {
        let mut lin = 0usize;
        for a in 0..nd {
            lin += (block.origin[a] + local[a]) * strides[a];
        }
        f(lin, &local[..nd]);
        let mut axis = nd;
        loop {
            if axis == 0 {
                return;
            }
            axis -= 1;
            local[axis] += 1;
            if local[axis] < block.size[axis] {
                break;
            }
            local[axis] = 0;
        }
    }
}

/// One fully-encoded stream (a whole field, or one chunk of it).
pub(crate) struct EncodedStream<T> {
    pub codebook: Vec<u8>,
    /// Entropy-coded payload, after the optional lossless stage.
    pub payload: Vec<u8>,
    /// Whether the lossless stage was kept (only when it shrank the
    /// payload).
    pub lossless_applied: LosslessStage,
    pub verbatim: Vec<T>,
    pub side: Vec<u8>,
    /// Symbol histogram including the escape bin (last slot).
    pub histogram: Vec<u64>,
    pub n_symbols: usize,
    pub n_escapes: usize,
    pub n_anchors: usize,
    /// Payload size before the optional lossless stage.
    pub huffman_bytes: usize,
}

/// The traversal half of the encode kernel: symbols, verbatim values,
/// side channel and histogram, before any entropy stage. Shared by the
/// SZ path (which Huffman-codes the symbols directly) and the ROLZ codec
/// (which re-codes the symbol bytes through reduced-offset LZ first).
pub(crate) struct QuantizedStream<T> {
    /// Quantization symbols in traversal order (escape bin included).
    pub symbols: Vec<u32>,
    pub verbatim: Vec<T>,
    pub side: Vec<u8>,
    /// Symbol histogram including the escape bin (last slot).
    pub histogram: Vec<u64>,
    pub n_escapes: usize,
    pub n_anchors: usize,
}

/// Run the predictor's causal traversal over `orig`, quantizing every
/// prediction error — the encode kernel minus entropy coding.
///
/// `orig.len()` must equal `shape.len()`. The stream starts with empty
/// history, so running the kernel on an axis-0 slab yields exactly the
/// symbols a standalone field of that slab's shape would produce.
pub(crate) fn quantize_stream<T: Scalar>(
    orig: &[T],
    shape: Shape,
    predictor: PredictorKind,
    quantizer: LinearQuantizer,
    transform: Transform,
    path: KernelPath,
) -> QuantizedStream<T> {
    debug_assert_eq!(orig.len(), shape.len());
    let n = shape.len();

    let mut enc = QuantEncoder::<T>::new(quantizer, transform, n, path);
    let mut side = Vec::new();
    let mut n_anchors = 0usize;

    match predictor {
        // TemporalDelta streams hold residuals against the previous time
        // step (the catalog layer does the subtraction); within the field
        // they traverse exactly like order-1 Lorenzo.
        PredictorKind::Lorenzo | PredictorKind::Lorenzo2 | PredictorKind::TemporalDelta => {
            let order = if predictor == PredictorKind::Lorenzo2 { 2 } else { 1 };
            match path {
                KernelPath::Fast => traverse_lorenzo(shape, order, path, |lin, pred| {
                    // SAFETY: the traversal visits each `lin < shape.len()`
                    // exactly once, and `orig.len() == shape.len()`
                    // (asserted above); audited, covered by
                    // tests/kernel_differential.rs.
                    let o = unsafe { *orig.get_unchecked(lin) };
                    Ok(enc.encode_point(o, pred))
                }),
                KernelPath::Reference => {
                    // Pre-rework loop shape: the working-domain slab is
                    // precomputed and streamed back through memory.
                    let work: Vec<f64> =
                        orig.iter().map(|&v| transform.forward(v.to_f64())).collect();
                    traverse_lorenzo(shape, order, path, |lin, pred| {
                        Ok(enc.encode_point_with_work(orig[lin], work[lin], pred))
                    })
                }
            }
            .expect("compression traversal cannot fail");
        }
        PredictorKind::Interpolation => {
            let mut recon = vec![0f64; n];
            for a in anchors(shape) {
                n_anchors += 1;
                recon[a] = enc.store_verbatim(orig[a]);
            }
            traverse_interp_points(shape, &mut recon, |lin, pred| {
                Ok(enc.encode_point(orig[lin], pred))
            })
            .expect("compression traversal cannot fail");
        }
        PredictorKind::Regression => {
            // The regression fitter is the one consumer that needs the
            // working-domain originals as a whole slab.
            let work: Vec<f64> = orig.iter().map(|&v| transform.forward(v.to_f64())).collect();
            for block in BlockIter::new(shape, REGRESSION_BLOCK_SIDE) {
                let coeffs = fit_block(&work, shape, &block);
                coeffs.write(&mut side);
                for_each_in_block(shape, &block, |lin, local| {
                    let pred = coeffs.predict(local);
                    enc.encode_point(orig[lin], pred);
                });
            }
        }
    }

    QuantizedStream {
        symbols: enc.symbols,
        verbatim: enc.verbatim,
        side,
        histogram: enc.histogram,
        n_escapes: enc.n_escapes,
        n_anchors,
    }
}

/// The chunk kernel, encode side: one causal traversal over `orig`
/// (row-major, laid out as `shape`), producing a self-contained stream.
pub(crate) fn encode_stream<T: Scalar>(
    orig: &[T],
    shape: Shape,
    predictor: PredictorKind,
    quantizer: LinearQuantizer,
    transform: Transform,
    lossless: LosslessStage,
    path: KernelPath,
) -> Result<EncodedStream<T>, CompressError> {
    let q = quantize_stream(orig, shape, predictor, quantizer, transform, path);

    // Entropy coding.
    let (codebook, huffman_payload) = if q.symbols.is_empty() {
        (Vec::new(), Vec::new())
    } else {
        let codec = HuffmanCodec::from_counts(&q.histogram)?;
        let payload = match path {
            KernelPath::Fast => codec.encode(&q.symbols)?,
            KernelPath::Reference => codec.encode_reference(&q.symbols)?,
        };
        (codec.serialize_codebook(), payload)
    };
    let huffman_bytes = huffman_payload.len();
    let (payload, lossless_applied) = match lossless {
        LosslessStage::None => (huffman_payload, LosslessStage::None),
        LosslessStage::RleLzss => {
            let ll = match path {
                KernelPath::Fast => lossless_compress(&huffman_payload),
                KernelPath::Reference => lossless_compress_ref(&huffman_payload),
            };
            if ll.len() < huffman_bytes {
                (ll, LosslessStage::RleLzss)
            } else {
                (huffman_payload, LosslessStage::None)
            }
        }
    };

    Ok(EncodedStream {
        codebook,
        payload,
        lossless_applied,
        verbatim: q.verbatim,
        side: q.side,
        histogram: q.histogram,
        n_symbols: q.symbols.len(),
        n_escapes: q.n_escapes,
        n_anchors: q.n_anchors,
        huffman_bytes,
    })
}

/// The chunk kernel, decode side: replay one stream into `out`
/// (`out.len() == shape.len()`).
#[allow(clippy::too_many_arguments)]
pub(crate) fn decode_stream<T: Scalar>(
    body: &SectionsBody<T>,
    lossless: LosslessStage,
    shape: Shape,
    predictor: PredictorKind,
    quantizer: LinearQuantizer,
    transform: Transform,
    path: KernelPath,
    out: &mut [T],
) -> Result<(), DecompressError> {
    // Hard assert (not debug): QuantDecoder's unchecked stores rely on
    // `lin < shape.len() == out.len()` for every traversal-visited `lin`.
    assert_eq!(out.len(), shape.len(), "decode_stream output slab size mismatch");
    let n = shape.len();

    let n_anchors =
        if predictor == PredictorKind::Interpolation { anchors(shape).len() } else { 0 };
    let n_symbols = n - n_anchors;

    // Owned storage the symbol source borrows from; each is initialized
    // only on the paths that read it.
    let payload: std::borrow::Cow<'_, [u8]>;
    let codec: HuffmanCodec;
    let symbols: Vec<u32>;
    let source = if n_symbols == 0 {
        symbols = Vec::new();
        SymbolSource::Upfront(symbols.iter())
    } else {
        payload = if lossless == LosslessStage::RleLzss {
            // A Huffman code is at most 64 bits, so the decoded payload
            // can never legitimately exceed 8 bytes/symbol — bounding the
            // lossless stage here keeps corrupt run lengths from forcing
            // huge allocations.
            let max_payload = n_symbols.saturating_mul(8).saturating_add(16);
            match path {
                KernelPath::Fast => lossless_decompress_bounded(&body.payload, max_payload),
                KernelPath::Reference => {
                    lossless_decompress_bounded_ref(&body.payload, max_payload)
                }
            }
            .ok_or(DecompressError::Corrupt("lossless stage"))?
            .into()
        } else {
            (&body.payload[..]).into()
        };
        // Every Huffman code is at least one bit, so a corrupt header
        // cannot demand more symbols than the payload can hold; checking
        // here keeps a hostile symbol count from driving a huge upfront
        // allocation in the decoder.
        if n_symbols > payload.len().saturating_mul(8) {
            return Err(DecompressError::Corrupt("symbol count exceeds payload"));
        }
        codec = HuffmanCodec::deserialize_codebook(&body.codebook)?.0;
        match path {
            KernelPath::Fast => {
                SymbolSource::Streaming(codec.streaming_decoder(&payload, n_symbols))
            }
            KernelPath::Reference => {
                symbols = codec.decode_reference(&payload, n_symbols)?;
                SymbolSource::Upfront(symbols.iter())
            }
        }
    };

    let dec = QuantDecoder::<T> {
        quantizer,
        transform,
        escape_symbol: quantizer.alphabet_size() as u32,
        symbols: source,
        verbatim: body.verbatim.iter(),
        out,
    };
    decode_traversal(dec, shape, predictor, &body.side, path)
}

/// The traversal half of the decode kernel: replay `dec`'s symbol source
/// through the predictor walk into its output slab. Shared by
/// [`decode_stream`] and the ROLZ codec (which decodes its symbols
/// upfront from the ROLZ token stream).
fn decode_traversal<T: Scalar>(
    mut dec: QuantDecoder<'_, T>,
    shape: Shape,
    predictor: PredictorKind,
    side: &[u8],
    path: KernelPath,
) -> Result<(), DecompressError> {
    match predictor {
        PredictorKind::Lorenzo | PredictorKind::Lorenzo2 | PredictorKind::TemporalDelta => {
            let order = if predictor == PredictorKind::Lorenzo2 { 2 } else { 1 };
            traverse_lorenzo(shape, order, path, |lin, pred| dec.decode_point(lin, pred))?;
        }
        PredictorKind::Interpolation => {
            let mut recon = vec![0f64; shape.len()];
            for a in anchors(shape) {
                recon[a] = dec.take_verbatim(a)?;
            }
            traverse_interp_points(shape, &mut recon, |lin, pred| dec.decode_point(lin, pred))?;
        }
        PredictorKind::Regression => {
            let nd = shape.ndim();
            let mut side_pos = 0usize;
            for block in BlockIter::new(shape, REGRESSION_BLOCK_SIDE) {
                let (coeffs, used) = BlockCoeffs::read(&side[side_pos..], nd)
                    .ok_or(DecompressError::Corrupt("regression side channel"))?;
                side_pos += used;
                let mut err = None;
                for_each_in_block(shape, &block, |lin, local| {
                    if err.is_some() {
                        return;
                    }
                    let pred = coeffs.predict(local);
                    if let Err(e) = dec.decode_point(lin, pred) {
                        err = Some(e);
                    }
                });
                if let Some(e) = err {
                    return Err(e);
                }
            }
        }
    }
    Ok(())
}

/// Replay an upfront symbol slab through the predictor walk into `out` —
/// the decode kernel minus the entropy stage ([`quantize_stream`]'s
/// inverse). The ROLZ codec feeds its recovered symbols through this.
#[allow(clippy::too_many_arguments)]
pub(crate) fn dequantize_stream<T: Scalar>(
    symbols: &[u32],
    verbatim: &[T],
    side: &[u8],
    shape: Shape,
    predictor: PredictorKind,
    quantizer: LinearQuantizer,
    transform: Transform,
    path: KernelPath,
    out: &mut [T],
) -> Result<(), DecompressError> {
    // Hard assert (not debug): QuantDecoder's unchecked stores rely on
    // `lin < shape.len() == out.len()` for every traversal-visited `lin`.
    assert_eq!(out.len(), shape.len(), "dequantize_stream output slab size mismatch");
    let dec = QuantDecoder::<T> {
        quantizer,
        transform,
        escape_symbol: quantizer.alphabet_size() as u32,
        symbols: SymbolSource::Upfront(symbols.iter()),
        verbatim: verbatim.iter(),
        out,
    };
    decode_traversal(dec, shape, predictor, side, path)
}

/// Build the decode-side transform from header flags.
pub(crate) fn transform_from_header(header: &Header) -> Transform {
    if header.log_transform {
        Transform::Log { ratio: f64::NAN } // ratio only needed when encoding
    } else {
        Transform::Identity
    }
}

/// Compress `field` under `cfg`.
///
/// With the default [`Chunking::Serial`] this produces a v1 container via
/// one causal traversal. Chunked configurations delegate to the parallel
/// pipeline and produce a v2 container (see [`crate::chunked`]).
pub fn compress<T: Scalar>(
    field: &NdArray<T>,
    cfg: &CompressorConfig,
) -> Result<CompressedOutput, CompressError> {
    compress_with_report(field, cfg).map(|(out, _)| out)
}

/// Compress and return the per-stage measurements alongside the output.
pub fn compress_with_report<T: Scalar>(
    field: &NdArray<T>,
    cfg: &CompressorConfig,
) -> Result<(CompressedOutput, CompressionReport), CompressError> {
    // Non-SZ codec policies need the chunk-indexed container (the codec
    // tag lives in the v2.1 chunk index), so they always take the chunked
    // pipeline — a `Serial` chunking then means one whole-field chunk.
    if cfg.chunking != Chunking::Serial || cfg.codec != CodecChoice::Sz {
        return crate::chunked::compress_chunked_with_report(field, cfg);
    }
    let shape = field.shape();
    let n = shape.len();
    let (abs_eb, transform) = resolve_bound(cfg, field.value_range())?;
    let quantizer = LinearQuantizer::new(abs_eb, cfg.radius);

    let stream = encode_stream(
        field.as_slice(),
        shape,
        cfg.predictor,
        quantizer,
        transform,
        cfg.lossless,
        KernelPath::Fast,
    )?;

    let header = Header {
        version: VERSION_V1,
        scalar_tag: T::TAG,
        predictor: cfg.predictor,
        lossless: stream.lossless_applied,
        log_transform: transform != Transform::Identity,
        shape,
        abs_eb,
        radius: cfg.radius,
    };
    let bytes = write_container::<T>(
        &header,
        &stream.codebook,
        &stream.payload,
        &stream.verbatim,
        &stream.side,
    );
    let container_bytes = bytes.len();

    let report = CompressionReport {
        n_quantized: stream.n_symbols - stream.n_escapes,
        symbol_histogram: {
            let mut h = stream.histogram;
            h.truncate(quantizer.alphabet_size()); // drop the escape bin
            h
        },
        n_unpredictable: stream.n_escapes,
        n_anchors: stream.n_anchors,
        huffman_bytes: stream.huffman_bytes,
        encoded_bytes: stream.payload.len(),
        codebook_bytes: stream.codebook.len(),
        side_bytes: stream.side.len(),
        container_bytes,
        n_elements: n,
        original_bits: T::BITS,
        n_chunks: 1,
        chunk_codecs: vec![crate::container::ChunkCodecKind::Sz],
    };
    Ok((CompressedOutput { bytes, n_elements: n, original_bits: T::BITS }, report))
}

/// Decompress a container produced by [`compress`] (either version).
///
/// v2 containers are decoded chunk-parallel with one worker per available
/// CPU; use [`crate::chunked::decompress_with_threads`] to control the
/// worker count, or [`crate::chunked::decompress_chunk`] for random access
/// to a single slab.
pub fn decompress<T: Scalar>(bytes: &[u8]) -> Result<NdArray<T>, DecompressError> {
    if container_version(bytes)? != VERSION_V1 {
        return crate::chunked::decompress_with_threads(bytes, 0);
    }
    let sections = read_container::<T>(bytes)?;
    let header = sections.header;
    let shape = header.shape;

    let transform = transform_from_header(&header);
    let quantizer = LinearQuantizer::new(header.abs_eb, header.radius);

    let mut out = vec![T::zero(); shape.len()];
    decode_stream(
        &sections.body,
        header.lossless,
        shape,
        header.predictor,
        quantizer,
        transform,
        KernelPath::Fast,
        &mut out,
    )?;
    Ok(NdArray::from_vec(shape, out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rq_quant::ErrorBoundMode;

    fn wavy(shape: Shape) -> NdArray<f32> {
        // Smooth multi-frequency base plus deterministic fine-scale
        // "turbulence" so prediction residuals are real signal, not just
        // quantization feedback.
        let mut lin = 0u64;
        NdArray::from_fn(shape, |ix| {
            let mut v = 0.0f64;
            for (a, &c) in ix.iter().enumerate() {
                v += ((c as f64) * 0.11 * (a + 1) as f64).sin() * (10.0 / (a + 1) as f64);
            }
            lin += 1;
            // murmur3 finalizer: proper avalanche, unlike a Weyl sequence
            // (which is locally linear and thus invisible to Lorenzo).
            let mut h = lin;
            h ^= h >> 33;
            h = h.wrapping_mul(0xff51afd7ed558ccd);
            h ^= h >> 33;
            h = h.wrapping_mul(0xc4ceb9fe1a85ec53);
            h ^= h >> 33;
            v += ((h >> 40) as f64 / (1u64 << 24) as f64 - 0.5) * 0.04;
            v as f32
        })
    }

    fn assert_bounded(orig: &NdArray<f32>, recon: &NdArray<f32>, eb: f64) {
        for (i, (&a, &b)) in orig.as_slice().iter().zip(recon.as_slice()).enumerate() {
            let err = (a as f64 - b as f64).abs();
            assert!(err <= eb * (1.0 + 1e-6), "element {i}: |{a} - {b}| = {err} > {eb}");
        }
    }

    fn roundtrip(pred: PredictorKind, shape: Shape, eb: f64) {
        let field = wavy(shape);
        let cfg = CompressorConfig::new(pred, ErrorBoundMode::Abs(eb));
        let out = compress(&field, &cfg).unwrap();
        let back = decompress::<f32>(&out.bytes).unwrap();
        assert_eq!(back.shape().dims(), shape.dims());
        assert_bounded(&field, &back, eb);
    }

    #[test]
    fn lorenzo_roundtrip_1d_2d_3d() {
        roundtrip(PredictorKind::Lorenzo, Shape::d1(1000), 1e-3);
        roundtrip(PredictorKind::Lorenzo, Shape::d2(37, 53), 1e-3);
        roundtrip(PredictorKind::Lorenzo, Shape::d3(20, 25, 30), 1e-2);
    }

    #[test]
    fn lorenzo2_roundtrip() {
        roundtrip(PredictorKind::Lorenzo2, Shape::d2(40, 40), 1e-3);
        roundtrip(PredictorKind::Lorenzo2, Shape::d3(16, 16, 16), 1e-2);
    }

    #[test]
    fn interpolation_roundtrip() {
        roundtrip(PredictorKind::Interpolation, Shape::d1(777), 1e-3);
        roundtrip(PredictorKind::Interpolation, Shape::d2(33, 65), 1e-3);
        roundtrip(PredictorKind::Interpolation, Shape::d3(17, 20, 23), 1e-2);
    }

    #[test]
    fn regression_roundtrip() {
        roundtrip(PredictorKind::Regression, Shape::d2(40, 41), 1e-2);
        roundtrip(PredictorKind::Regression, Shape::d3(13, 14, 15), 1e-2);
    }

    #[test]
    fn four_dimensional_field() {
        roundtrip(PredictorKind::Lorenzo, Shape::d4(6, 7, 8, 9), 1e-2);
        roundtrip(PredictorKind::Interpolation, Shape::d4(6, 7, 8, 9), 1e-2);
    }

    #[test]
    fn value_range_relative_bound() {
        let field = wavy(Shape::d2(50, 50));
        let cfg = CompressorConfig::new(
            PredictorKind::Lorenzo,
            ErrorBoundMode::ValueRangeRelative(1e-3),
        );
        let out = compress(&field, &cfg).unwrap();
        let back = decompress::<f32>(&out.bytes).unwrap();
        let abs = 1e-3 * field.value_range();
        assert_bounded(&field, &back, abs);
    }

    #[test]
    fn pointwise_relative_bound_positive_data() {
        let field = NdArray::<f32>::from_fn(Shape::d2(40, 40), |ix| {
            (1.0 + (ix[0] as f64 * 0.2).sin().abs() * 100.0 + ix[1] as f64) as f32
        });
        let ratio = 1e-3;
        let cfg =
            CompressorConfig::new(PredictorKind::Lorenzo, ErrorBoundMode::PointwiseRelative(ratio));
        let out = compress(&field, &cfg).unwrap();
        let back = decompress::<f32>(&out.bytes).unwrap();
        for (&a, &b) in field.as_slice().iter().zip(back.as_slice()) {
            let rel = ((a - b).abs() as f64) / (a.abs() as f64);
            assert!(rel <= ratio * (1.0 + 1e-5), "rel err {rel}");
        }
    }

    #[test]
    fn pointwise_relative_with_nonpositive_values() {
        // Zeros and negatives must round-trip exactly (escape path).
        let field = NdArray::<f32>::from_fn(Shape::d1(200), |ix| {
            let i = ix[0] as i64;
            if i % 7 == 0 {
                0.0
            } else if i % 5 == 0 {
                -(i as f32)
            } else {
                i as f32
            }
        });
        let cfg = CompressorConfig::new(
            PredictorKind::Lorenzo,
            ErrorBoundMode::PointwiseRelative(1e-2),
        );
        let out = compress(&field, &cfg).unwrap();
        let back = decompress::<f32>(&out.bytes).unwrap();
        for (&a, &b) in field.as_slice().iter().zip(back.as_slice()) {
            if a <= 0.0 {
                assert_eq!(a, b, "non-positive values must be exact");
            } else {
                assert!(((a - b).abs() / a.abs()) <= 1e-2 * 1.00001);
            }
        }
    }

    #[test]
    fn f64_roundtrip() {
        let field = NdArray::<f64>::from_fn(Shape::d2(30, 30), |ix| {
            (ix[0] as f64 * 0.3).cos() * 5.0 + ix[1] as f64 * 0.01
        });
        let cfg = CompressorConfig::new(PredictorKind::Interpolation, ErrorBoundMode::Abs(1e-6));
        let out = compress(&field, &cfg).unwrap();
        let back = decompress::<f64>(&out.bytes).unwrap();
        for (&a, &b) in field.as_slice().iter().zip(back.as_slice()) {
            assert!((a - b).abs() <= 1e-6 * (1.0 + 1e-9));
        }
    }

    #[test]
    fn smooth_fields_compress_well() {
        let field = wavy(Shape::d3(32, 32, 32));
        let cfg = CompressorConfig::new(PredictorKind::Lorenzo, ErrorBoundMode::Abs(1e-2));
        let out = compress(&field, &cfg).unwrap();
        assert!(out.ratio() > 8.0, "ratio {}", out.ratio());
    }

    #[test]
    fn higher_eb_gives_higher_ratio() {
        // On a small field the fixed container overhead caps the ratio at
        // very high bounds, so monotonicity is only asserted over the range
        // where the payload dominates.
        let field = wavy(Shape::d3(24, 24, 24));
        let ratio_at = |eb: f64| {
            let cfg = CompressorConfig::new(PredictorKind::Lorenzo, ErrorBoundMode::Abs(eb));
            compress(&field, &cfg).unwrap().ratio()
        };
        let mut prev_ratio = 0.0;
        for eb in [1e-5, 1e-4, 1e-3, 1e-2] {
            let r = ratio_at(eb);
            assert!(r >= prev_ratio * 0.95, "eb {eb}: ratio {r} < prev {prev_ratio}");
            prev_ratio = r;
        }
        assert!(ratio_at(1e-1) > ratio_at(1e-5));
    }

    #[test]
    fn report_is_self_consistent() {
        let field = wavy(Shape::d2(64, 64));
        let cfg = CompressorConfig::new(PredictorKind::Lorenzo, ErrorBoundMode::Abs(2e-2));
        let (out, rep) = compress_with_report(&field, &cfg).unwrap();
        assert_eq!(rep.n_elements, 64 * 64);
        assert_eq!(rep.container_bytes, out.bytes.len());
        assert_eq!(rep.n_quantized + rep.n_unpredictable, rep.n_elements);
        let hist_total: u64 = rep.symbol_histogram.iter().sum();
        assert_eq!(hist_total as usize, rep.n_quantized);
        assert!(rep.p0() > 0.1);
        assert!(rep.encoded_bytes <= rep.huffman_bytes);
        assert_eq!(rep.n_chunks, 1);
    }

    #[test]
    fn constant_field_compresses_extremely() {
        let field = NdArray::<f32>::from_fn(Shape::d2(100, 100), |_| 3.25);
        let cfg = CompressorConfig::new(PredictorKind::Lorenzo, ErrorBoundMode::Abs(1e-5));
        let (out, rep) = compress_with_report(&field, &cfg).unwrap();
        assert!(out.ratio() > 100.0, "ratio {}", out.ratio());
        assert!(rep.p0() > 0.99);
        let back = decompress::<f32>(&out.bytes).unwrap();
        assert_bounded(&field, &back, 1e-5);
    }

    #[test]
    fn random_noise_survives_roundtrip() {
        // Worst case: codes spread over many bins, many escapes possible.
        let mut state = 0x12345678u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64 - 1.0) * 1e4
        };
        let field = NdArray::<f32>::from_fn(Shape::d1(5000), |_| next() as f32);
        for pred in PredictorKind::all() {
            let cfg = CompressorConfig::new(pred, ErrorBoundMode::Abs(0.5));
            let out = compress(&field, &cfg).unwrap();
            let back = decompress::<f32>(&out.bytes).unwrap();
            assert_bounded(&field, &back, 0.5);
        }
    }

    #[test]
    fn tiny_fields() {
        for pred in PredictorKind::all() {
            roundtrip(pred, Shape::d1(1), 1e-3);
            roundtrip(pred, Shape::d1(2), 1e-3);
            roundtrip(pred, Shape::d2(1, 3), 1e-3);
            roundtrip(pred, Shape::d3(2, 1, 2), 1e-3);
        }
    }

    #[test]
    fn corrupt_stream_is_error_not_panic() {
        let field = wavy(Shape::d2(20, 20));
        let cfg = CompressorConfig::new(PredictorKind::Lorenzo, ErrorBoundMode::Abs(1e-3));
        let out = compress(&field, &cfg).unwrap();
        for cut in [10, out.bytes.len() / 2, out.bytes.len() - 3] {
            let _ = decompress::<f32>(&out.bytes[..cut]); // must not panic
        }
        let mut mangled = out.bytes.clone();
        let mid = mangled.len() / 2;
        mangled[mid] ^= 0xff;
        let _ = decompress::<f32>(&mangled); // must not panic
    }

    #[test]
    fn wrong_scalar_type_rejected() {
        let field = wavy(Shape::d2(10, 10));
        let cfg = CompressorConfig::new(PredictorKind::Lorenzo, ErrorBoundMode::Abs(1e-3));
        let out = compress(&field, &cfg).unwrap();
        assert!(matches!(
            decompress::<f64>(&out.bytes),
            Err(DecompressError::ScalarMismatch { .. })
        ));
    }

    #[test]
    fn huffman_only_mode_no_lossless_flag() {
        let field = wavy(Shape::d2(50, 50));
        let cfg =
            CompressorConfig::new(PredictorKind::Lorenzo, ErrorBoundMode::Abs(1e-1)).huffman_only();
        let (out, rep) = compress_with_report(&field, &cfg).unwrap();
        assert_eq!(rep.huffman_bytes, rep.encoded_bytes);
        let back = decompress::<f32>(&out.bytes).unwrap();
        assert_bounded(&field, &back, 1e-1);
    }
}
