//! Recycled buffer pools for the streaming decode hot path.
//!
//! Every chunk a reader decodes needs two transient buffers: the
//! compressed blob fetched off the source and (in ordered delivery or
//! boundary crops) a decoded scratch slab. Allocating both per chunk puts
//! one `malloc`/`free` pair *per chunk* on the critical path and, worse,
//! inside [`ConcurrentReader`](crate::ConcurrentReader)'s source lock.
//! These pools let the engines check a buffer out, use it, and check it
//! back in — steady-state decoding touches the allocator zero times.
//!
//! **Dirty-buffer contract.** Pooled buffers are handed back *without
//! being cleared*: a recycled blob buffer still holds the previous
//! chunk's compressed bytes, a recycled slab the previous chunk's decoded
//! values. That is deliberate — zeroing a window of megabyte slabs per
//! chunk would cost more than the allocations the pool removes — and it
//! is sound because every consumer fully overwrites what it reads:
//! `read_exact` fills the whole blob buffer or errors, and both chunk
//! codecs write every element of the output slab (the zfp decoder stores
//! explicit zeros for empty blocks rather than assuming a zeroed
//! destination). The poisoning tests in `stream.rs` seed the pools with
//! garbage and assert decode output is byte-identical anyway.
//!
//! Pools retain at most [`MAX_POOLED`] buffers; anything beyond that is
//! dropped, so an idle reader does not pin a high-water mark of slabs.
//! In-flight memory is still bounded by the engines' read-ahead window —
//! the pool only recycles buffers the window already paid for.

use rq_grid::Scalar;
use std::sync::Mutex;

/// Most buffers a pool will hold on to while idle. The decode window is
/// `threads + read_ahead` (couple dozen at most in practice); retaining
/// more than this would only serve pathological churn.
const MAX_POOLED: usize = 32;

/// A recycler of `Vec<u8>` blob buffers. `get` returns a buffer of
/// exactly the requested length whose *contents are unspecified* (see
/// the module docs); `put` returns it for reuse.
#[derive(Default)]
pub(crate) struct BytePool {
    bufs: Mutex<Vec<Vec<u8>>>,
}

impl BytePool {
    pub fn new() -> Self {
        BytePool::default()
    }

    /// Check out a buffer of length `len` (dirty; callers must fully
    /// overwrite it before reading).
    pub fn get(&self, len: usize) -> Vec<u8> {
        let mut buf = {
            let mut bufs = self.bufs.lock().unwrap_or_else(|p| p.into_inner());
            bufs.pop().unwrap_or_default()
        };
        if len <= buf.len() {
            buf.truncate(len);
        } else {
            buf.resize(len, 0);
        }
        buf
    }

    /// Return a buffer to the pool (its capacity is kept, its contents
    /// left as-is).
    pub fn put(&self, buf: Vec<u8>) {
        if buf.capacity() == 0 {
            return;
        }
        let mut bufs = self.bufs.lock().unwrap_or_else(|p| p.into_inner());
        if bufs.len() < MAX_POOLED {
            bufs.push(buf);
        }
    }

    /// Number of buffers currently idle in the pool (test observability).
    #[cfg(test)]
    pub fn idle(&self) -> usize {
        self.bufs.lock().unwrap_or_else(|p| p.into_inner()).len()
    }
}

/// A recycler of decoded-slab `Vec<T>` buffers, same contract as
/// [`BytePool`]: returned slabs are dirty and must be fully overwritten
/// by the decoder (growing a slab zero-fills only the grown tail).
pub(crate) struct SlabPool<T> {
    bufs: Mutex<Vec<Vec<T>>>,
}

impl<T: Scalar> Default for SlabPool<T> {
    fn default() -> Self {
        SlabPool { bufs: Mutex::new(Vec::new()) }
    }
}

impl<T: Scalar> SlabPool<T> {
    pub fn new() -> Self {
        SlabPool::default()
    }

    /// Check out a slab of `len` elements (dirty where recycled).
    pub fn get(&self, len: usize) -> Vec<T> {
        let mut buf = {
            let mut bufs = self.bufs.lock().unwrap_or_else(|p| p.into_inner());
            bufs.pop().unwrap_or_default()
        };
        if len <= buf.len() {
            buf.truncate(len);
        } else {
            buf.resize(len, T::zero());
        }
        buf
    }

    /// Return a slab for reuse.
    pub fn put(&self, buf: Vec<T>) {
        if buf.capacity() == 0 {
            return;
        }
        let mut bufs = self.bufs.lock().unwrap_or_else(|p| p.into_inner());
        if bufs.len() < MAX_POOLED {
            bufs.push(buf);
        }
    }

    /// Pre-seed the pool with `bufs` (poisoning tests hand in
    /// garbage-filled slabs to prove decode overwrites everything).
    #[cfg(test)]
    pub fn seed(&self, seeded: Vec<Vec<T>>) {
        let mut bufs = self.bufs.lock().unwrap_or_else(|p| p.into_inner());
        bufs.extend(seeded);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_pool_recycles_and_resizes_dirty() {
        let pool = BytePool::new();
        let mut a = pool.get(8);
        a.copy_from_slice(&[0xAB; 8]);
        pool.put(a);
        assert_eq!(pool.idle(), 1);
        // Shrinking reuse keeps the dirty prefix.
        let b = pool.get(4);
        assert_eq!(pool.idle(), 0);
        assert_eq!(&b[..], &[0xAB; 4]);
        pool.put(b);
        // Growing reuse keeps the dirty prefix, zero-fills the tail.
        let c = pool.get(6);
        assert_eq!(&c[..4], &[0xAB; 4]);
        assert_eq!(&c[4..], &[0, 0]);
    }

    #[test]
    fn pools_cap_retained_buffers() {
        let pool = BytePool::new();
        for _ in 0..MAX_POOLED + 10 {
            pool.put(vec![0u8; 16]);
        }
        assert_eq!(pool.idle(), MAX_POOLED);
        // Zero-capacity buffers are not worth keeping.
        pool.put(Vec::new());
        assert_eq!(pool.idle(), MAX_POOLED);
    }

    #[test]
    fn slab_pool_recycles() {
        let pool: SlabPool<f32> = SlabPool::new();
        pool.put(vec![7.0f32; 10]);
        let s = pool.get(10);
        assert_eq!(s, vec![7.0f32; 10], "same-size reuse must stay dirty");
        pool.put(s);
        let s = pool.get(12);
        assert_eq!(&s[..10], &[7.0f32; 10][..]);
        assert_eq!(&s[10..], &[0.0f32; 2][..]);
    }
}
