//! Compression outcome descriptors.

/// Format a float for a hand-rolled JSON document.
///
/// JSON has no NaN/Infinity literals — Rust's `{}` formatting of
/// non-finite floats (`NaN`, `inf`) silently produces invalid JSON that
/// strict parsers reject. Every float written by the CLI's `--json`
/// modes and the bench JSON reports must go through here: non-finite
/// values become `null`, finite values keep their shortest roundtrip
/// form.
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

#[cfg(test)]
mod json_tests {
    use super::json_f64;

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(json_f64(1.5), "1.5");
        assert_eq!(json_f64(-0.25), "-0.25");
        assert_eq!(json_f64(1e300).parse::<f64>().unwrap(), 1e300);
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(f64::NEG_INFINITY), "null");
    }
}

/// The compressed bytes plus summary metrics.
#[derive(Clone, Debug)]
pub struct CompressedOutput {
    /// The self-describing container.
    pub bytes: Vec<u8>,
    /// Number of elements in the original field.
    pub n_elements: usize,
    /// Bits of the original scalar type.
    pub original_bits: u32,
}

impl CompressedOutput {
    /// Compression ratio = original size / compressed size.
    pub fn ratio(&self) -> f64 {
        (self.n_elements as f64 * self.original_bits as f64 / 8.0) / self.bytes.len() as f64
    }

    /// Bit-rate = average compressed bits per element — the x-axis of the
    /// paper's rate-distortion plots.
    pub fn bit_rate(&self) -> f64 {
        self.bytes.len() as f64 * 8.0 / self.n_elements as f64
    }
}

/// Detailed per-stage measurements used to validate the analytical model.
///
/// The paper's model predicts each of these quantities *without* running
/// compression; this struct is the ground truth it is scored against
/// (Table II).
#[derive(Clone, Debug)]
pub struct CompressionReport {
    /// Histogram of quantization symbols (index = shifted code).
    pub symbol_histogram: Vec<u64>,
    /// Number of quantized elements (excludes verbatim escapes/anchors).
    pub n_quantized: usize,
    /// Number of unpredictable (escape) values.
    pub n_unpredictable: usize,
    /// Number of verbatim anchors (interpolation only).
    pub n_anchors: usize,
    /// Huffman payload size in bytes (before the optional lossless stage).
    pub huffman_bytes: usize,
    /// Payload size after the optional lossless stage (equals
    /// `huffman_bytes` when the stage is disabled or not profitable).
    pub encoded_bytes: usize,
    /// Serialized codebook size in bytes.
    pub codebook_bytes: usize,
    /// Side-channel size in bytes (regression coefficients).
    pub side_bytes: usize,
    /// Total container size in bytes.
    pub container_bytes: usize,
    /// Number of elements in the field.
    pub n_elements: usize,
    /// Bits of the original scalar type.
    pub original_bits: u32,
    /// Number of independently-coded chunks (1 for the serial pipeline).
    pub n_chunks: usize,
    /// Codec that coded each chunk, in slab order (all
    /// [`ChunkCodecKind::Sz`](crate::container::ChunkCodecKind::Sz)
    /// outside the adaptive pipeline). The symbol
    /// histogram and element accounting above cover SZ-coded chunks only;
    /// ZFP chunks contribute only container bytes.
    pub chunk_codecs: Vec<crate::container::ChunkCodecKind>,
}

impl CompressionReport {
    /// Bit-rate after Huffman only (excluding the lossless stage but
    /// including codebook, verbatim and side-channel overheads) — the
    /// quantity of the paper's Fig. 5 "Huffman" series.
    pub fn huffman_bit_rate(&self) -> f64 {
        let verbatim = (self.n_unpredictable + self.n_anchors) * self.original_bits as usize / 8;
        let total = self.huffman_bytes + self.codebook_bytes + self.side_bytes + verbatim;
        total as f64 * 8.0 / self.n_elements as f64
    }

    /// Overall container bit-rate (lossless stage included).
    pub fn overall_bit_rate(&self) -> f64 {
        self.container_bytes as f64 * 8.0 / self.n_elements as f64
    }

    /// Overall compression ratio.
    pub fn overall_ratio(&self) -> f64 {
        (self.n_elements as f64 * self.original_bits as f64 / 8.0) / self.container_bytes as f64
    }

    /// Fraction of quantized elements that landed in the zero bin — the
    /// model's `p0`.
    pub fn p0(&self) -> f64 {
        if self.n_quantized == 0 {
            return 0.0;
        }
        let zero_idx = (self.symbol_histogram.len() - 1) / 2;
        self.symbol_histogram[zero_idx] as f64 / self.n_quantized as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_and_bit_rate_consistent() {
        let out = CompressedOutput { bytes: vec![0; 1000], n_elements: 4000, original_bits: 32 };
        assert!((out.ratio() - 16.0).abs() < 1e-12);
        assert!((out.bit_rate() - 2.0).abs() < 1e-12);
        assert!((out.ratio() * out.bit_rate() - 32.0).abs() < 1e-9);
    }

    #[test]
    fn p0_reads_central_bin() {
        let mut hist = vec![0u64; 5];
        hist[2] = 75;
        hist[1] = 15;
        hist[3] = 10;
        let rep = CompressionReport {
            symbol_histogram: hist,
            n_quantized: 100,
            n_unpredictable: 0,
            n_anchors: 0,
            huffman_bytes: 10,
            encoded_bytes: 10,
            codebook_bytes: 2,
            side_bytes: 0,
            container_bytes: 20,
            n_elements: 100,
            original_bits: 32,
            n_chunks: 1,
            chunk_codecs: vec![crate::container::ChunkCodecKind::Sz],
        };
        assert!((rep.p0() - 0.75).abs() < 1e-12);
    }
}
