//! The ROLZ residual path as a [`ChunkCodec`]: reduced-offset LZ +
//! symbol ranking + static Huffman over the quantization-code byte
//! stream (container v2.4, codec tag 2).
//!
//! The SZ path Huffman-codes quantization symbols directly, which is
//! blind to *repeats*: residual streams from structured fields are full
//! of recurring short byte patterns (plateaus, periodic textures) that a
//! dictionary stage captures and an order-0 entropy coder cannot. This
//! backend, modeled on orz's pipeline, re-codes the symbol stream in
//! three stages:
//!
//! 1. **Byte serialization** — each quantization symbol is re-centered on
//!    the zero code and written as a zigzag LEB128 varint, so
//!    near-perfect predictions become single small bytes and the byte
//!    stream is dominated by a few values.
//! 2. **Reduced-offset LZ** — a match search over that byte stream where
//!    candidate positions come from a small per-context table (context =
//!    previous byte, `ROLZ_SLOTS` recent token-start positions per
//!    context). Matches are coded as `(slot, length)` — a 4-bit slot
//!    instead of a full offset — and literals fall through to stage 3.
//! 3. **Symbol ranking + static Huffman** — literal bytes pass through a
//!    64-entry per-context move-half-to-front rank table so hot bytes
//!    collapse onto low ranks, and the resulting token stream (ranks,
//!    rank escapes, match slots — `TOKEN_ALPHABET` symbols) goes
//!    through the same canonical static Huffman coder as the SZ path.
//!
//! Encoder and decoder run the identical context/rank state machine, so
//! the blob is a pure function of the input slab. Like the other codecs
//! the fast kernels (SWAR match extension, table-driven Huffman) have
//! scalar [`KernelPath::Reference`] twins held byte-identical by
//! `tests/kernel_differential.rs`.

use crate::codec::{ChunkCodec, ChunkStats};
use crate::config::LosslessStage;
use crate::container::{
    read_chunk_blob, write_chunk_blob, ChunkCodecKind, CompressError, DecompressError,
};
use crate::pipeline::{dequantize_stream, quantize_stream, KernelPath, Transform};
use rq_encoding::varint::{get_uvarint, put_uvarint};
use rq_encoding::{common_prefix, HuffmanCodec};
use rq_grid::{Scalar, Shape};
use rq_predict::interp::anchors;
use rq_predict::PredictorKind;
use rq_quant::LinearQuantizer;

/// Match-candidate positions remembered per context (a 4-bit "reduced
/// offset" replaces the full match offset of LZ77).
const ROLZ_SLOTS: usize = 16;
/// One context per possible previous byte.
const ROLZ_CONTEXTS: usize = 256;
/// Shortest match worth a `(slot, length)` token: below this a ranked
/// literal is cheaper than slot + length bytes.
const MIN_MATCH: usize = 4;
/// Longest match one token can carry (`length - MIN_MATCH` must fit the
/// one-byte raw length).
const MAX_MATCH: usize = MIN_MATCH + 255;
/// Entries in each context's literal rank table.
const SYMRANK_SIZE: usize = 64;
/// Token emitted for a literal byte absent from its rank table; the raw
/// byte rides in a side array.
const TOKEN_ESCAPE: u32 = SYMRANK_SIZE as u32;
/// First match token; token `TOKEN_MATCH0 + s` means "copy from slot s".
const TOKEN_MATCH0: u32 = TOKEN_ESCAPE + 1;
/// Ranked literals + escape + match slots.
const TOKEN_ALPHABET: usize = SYMRANK_SIZE + 1 + ROLZ_SLOTS;

/// Ring value marking a never-filled slot.
const EMPTY: u32 = u32::MAX;

/// The shared encoder/decoder model: per-context position rings and
/// literal rank tables. Both sides mutate it identically token by token,
/// which is what lets a 4-bit slot stand in for a byte offset.
struct RolzState {
    /// `ROLZ_CONTEXTS × ROLZ_SLOTS` ring of recent token-start positions.
    positions: Vec<u32>,
    /// Next ring slot to overwrite, per context.
    heads: [u8; ROLZ_CONTEXTS],
    /// `ROLZ_CONTEXTS × SYMRANK_SIZE` literal rank tables, identity-
    /// initialized (ranks 0..63 hold bytes 0..63 — exactly the low varint
    /// bytes that dominate residual streams).
    ranks: Vec<u8>,
}

impl RolzState {
    fn new() -> Self {
        let mut ranks = vec![0u8; ROLZ_CONTEXTS * SYMRANK_SIZE];
        for c in 0..ROLZ_CONTEXTS {
            for r in 0..SYMRANK_SIZE {
                ranks[c * SYMRANK_SIZE + r] = r as u8;
            }
        }
        RolzState {
            positions: vec![EMPTY; ROLZ_CONTEXTS * ROLZ_SLOTS],
            heads: [0; ROLZ_CONTEXTS],
            ranks,
        }
    }

    #[inline]
    fn slot(&self, ctx: usize, s: usize) -> u32 {
        self.positions[ctx * ROLZ_SLOTS + s]
    }

    /// Record a token-start position in the context's ring.
    #[inline]
    fn insert(&mut self, ctx: usize, pos: usize) {
        let h = self.heads[ctx] as usize;
        self.positions[ctx * ROLZ_SLOTS + h] = pos as u32;
        self.heads[ctx] = ((h + 1) % ROLZ_SLOTS) as u8;
    }

    /// Rank of `byte` in the context's table, if present.
    #[inline]
    fn rank_of(&self, ctx: usize, byte: u8) -> Option<usize> {
        self.ranks[ctx * SYMRANK_SIZE..(ctx + 1) * SYMRANK_SIZE]
            .iter()
            .position(|&b| b == byte)
    }

    /// Move the byte at rank `r` halfway to the front (orz-style gradual
    /// promotion — a straight move-to-front overreacts to one-off bytes).
    #[inline]
    fn promote(&mut self, ctx: usize, r: usize) {
        let t = &mut self.ranks[ctx * SYMRANK_SIZE..(ctx + 1) * SYMRANK_SIZE];
        let b = t[r];
        let to = r / 2;
        for k in (to + 1..=r).rev() {
            t[k] = t[k - 1];
        }
        t[to] = b;
    }

    /// Adopt an escaped byte at the lowest rank, evicting the current
    /// occupant (uniqueness holds: the byte was absent, one leaves).
    #[inline]
    fn adopt(&mut self, ctx: usize, byte: u8) {
        self.ranks[ctx * SYMRANK_SIZE + SYMRANK_SIZE - 1] = byte;
    }
}

/// Context of the byte at `pos`: the previous byte (0 at the start).
#[inline]
fn context(bytes: &[u8], pos: usize) -> usize {
    if pos == 0 {
        0
    } else {
        bytes[pos - 1] as usize
    }
}

/// Scalar twin of [`common_prefix`] for the reference kernel path.
#[inline]
fn common_prefix_ref(a: &[u8], b: &[u8], limit: usize) -> usize {
    let mut l = 0;
    while l < limit && a[l] == b[l] {
        l += 1;
    }
    l
}

/// Serialize quantization symbols as zigzag LEB128 varints re-centered on
/// the zero code, so perfect predictions become byte 0.
fn symbols_to_bytes(symbols: &[u32], zero: u32) -> Vec<u8> {
    let mut out = Vec::with_capacity(symbols.len() + symbols.len() / 2);
    for &s in symbols {
        let delta = s as i64 - zero as i64;
        put_uvarint(&mut out, ((delta << 1) ^ (delta >> 63)) as u64);
    }
    out
}

/// Inverse of [`symbols_to_bytes`]: must consume `bytes` exactly and
/// yield exactly `n_symbols` in-alphabet symbols.
fn bytes_to_symbols(
    bytes: &[u8],
    n_symbols: usize,
    zero: u32,
    escape: u32,
) -> Result<Vec<u32>, DecompressError> {
    let mut symbols = Vec::with_capacity(n_symbols);
    let mut pos = 0usize;
    for _ in 0..n_symbols {
        let z = get_uvarint(bytes, &mut pos)
            .ok_or(DecompressError::Corrupt("rolz symbol varint"))?;
        let delta = (z >> 1) as i64 ^ -((z & 1) as i64);
        let sym = zero as i64 + delta;
        if sym < 0 || sym > escape as i64 {
            return Err(DecompressError::Corrupt("rolz symbol out of alphabet"));
        }
        symbols.push(sym as u32);
    }
    if pos != bytes.len() {
        return Err(DecompressError::Corrupt("trailing bytes in rolz code stream"));
    }
    Ok(symbols)
}

/// The ROLZ token streams for one chunk, pre-entropy.
struct RolzTokens {
    /// Token per literal/match decision, in [`TOKEN_ALPHABET`].
    tokens: Vec<u32>,
    /// Token histogram for the Huffman stage.
    histogram: Vec<u64>,
    /// `match length - MIN_MATCH` per match token, in token order.
    lens: Vec<u8>,
    /// Raw byte per escape token, in token order.
    raws: Vec<u8>,
}

/// Run the ROLZ model forward over the code byte stream.
fn rolz_compress(bytes: &[u8], path: KernelPath) -> RolzTokens {
    let n = bytes.len();
    let mut state = RolzState::new();
    let mut t = RolzTokens {
        tokens: Vec::with_capacity(n / 2 + 16),
        histogram: vec![0u64; TOKEN_ALPHABET],
        lens: Vec::new(),
        raws: Vec::new(),
    };
    let emit = |tok: u32, t: &mut RolzTokens| {
        t.tokens.push(tok);
        t.histogram[tok as usize] += 1;
    };
    let mut i = 0usize;
    while i < n {
        let ctx = context(bytes, i);
        let limit = MAX_MATCH.min(n - i);
        let (mut best_len, mut best_slot) = (0usize, 0usize);
        if limit >= MIN_MATCH {
            for s in 0..ROLZ_SLOTS {
                let p = state.slot(ctx, s);
                if p == EMPTY {
                    continue;
                }
                let p = p as usize;
                // `p < i`, so both slices hold at least `limit` bytes.
                let l = match path {
                    KernelPath::Fast => common_prefix(&bytes[p..], &bytes[i..], limit),
                    KernelPath::Reference => common_prefix_ref(&bytes[p..], &bytes[i..], limit),
                };
                // Strict `>`: ties keep the lowest slot, deterministically.
                if l > best_len {
                    best_len = l;
                    best_slot = s;
                }
            }
        }
        // Every token start enters the ring — after the search, so a
        // match can never reference its own position. The decoder
        // mirrors this exactly.
        state.insert(ctx, i);
        if best_len >= MIN_MATCH {
            emit(TOKEN_MATCH0 + best_slot as u32, &mut t);
            t.lens.push((best_len - MIN_MATCH) as u8);
            i += best_len;
        } else {
            let b = bytes[i];
            match state.rank_of(ctx, b) {
                Some(r) => {
                    emit(r as u32, &mut t);
                    state.promote(ctx, r);
                }
                None => {
                    emit(TOKEN_ESCAPE, &mut t);
                    t.raws.push(b);
                    state.adopt(ctx, b);
                }
            }
            i += 1;
        }
    }
    t
}

/// Replay a token stream through the model, reproducing exactly
/// `n_bytes` code bytes or failing with a typed error.
fn rolz_decompress(
    tokens: impl Iterator<Item = Result<u32, DecompressError>>,
    lens: &[u8],
    raws: &[u8],
    n_bytes: usize,
) -> Result<Vec<u8>, DecompressError> {
    let mut state = RolzState::new();
    let mut out = Vec::with_capacity(n_bytes);
    let (mut next_len, mut next_raw) = (0usize, 0usize);
    for tok in tokens {
        let tok = tok?;
        if out.len() >= n_bytes {
            return Err(DecompressError::Corrupt("rolz tokens overrun code stream"));
        }
        let i = out.len();
        let ctx = context(&out, i);
        if tok < TOKEN_ESCAPE {
            // Ranked literal.
            let r = tok as usize;
            let b = state.ranks[ctx * SYMRANK_SIZE + r];
            state.insert(ctx, i);
            state.promote(ctx, r);
            out.push(b);
        } else if tok == TOKEN_ESCAPE {
            let b = *raws
                .get(next_raw)
                .ok_or(DecompressError::Corrupt("rolz raw literals exhausted"))?;
            next_raw += 1;
            state.insert(ctx, i);
            state.adopt(ctx, b);
            out.push(b);
        } else {
            let s = (tok - TOKEN_MATCH0) as usize;
            if s >= ROLZ_SLOTS {
                return Err(DecompressError::Corrupt("rolz token out of alphabet"));
            }
            let p = state.slot(ctx, s);
            if p == EMPTY {
                return Err(DecompressError::Corrupt("rolz match references empty slot"));
            }
            let p = p as usize;
            let len = MIN_MATCH
                + *lens
                    .get(next_len)
                    .ok_or(DecompressError::Corrupt("rolz match lengths exhausted"))?
                    as usize;
            next_len += 1;
            if out.len() + len > n_bytes {
                return Err(DecompressError::Corrupt("rolz match overruns code stream"));
            }
            state.insert(ctx, i);
            // Byte-by-byte: matches may self-overlap (p + len > i), the
            // standard LZ copy semantics.
            for k in 0..len {
                let b = out[p + k];
                out.push(b);
            }
        }
    }
    if out.len() != n_bytes {
        return Err(DecompressError::Corrupt("rolz tokens underrun code stream"));
    }
    if next_len != lens.len() || next_raw != raws.len() {
        return Err(DecompressError::Corrupt("unused rolz side arrays"));
    }
    Ok(out)
}

/// The ROLZ path as a [`ChunkCodec`]. Mirrors [`crate::SzChunkCodec`]'s
/// quantization front end (same predictor/quantizer/transform semantics,
/// including the log transform for point-wise relative bounds) but
/// replaces the entropy back end with the ROLZ pipeline.
#[derive(Clone, Copy, Debug)]
pub struct RolzChunkCodec {
    /// Predictor family for the causal traversal.
    pub predictor: PredictorKind,
    /// Quantizer (absolute bound + radius).
    pub quantizer: LinearQuantizer,
    /// Value-domain transform (identity, or log for point-wise relative
    /// bounds).
    pub(crate) transform: Transform,
    /// Which kernel implementations to run (production is always
    /// [`KernelPath::Fast`]).
    pub(crate) path: KernelPath,
}

impl RolzChunkCodec {
    /// Codec for a resolved absolute bound with the identity transform.
    pub fn new(predictor: PredictorKind, quantizer: LinearQuantizer) -> Self {
        RolzChunkCodec {
            predictor,
            quantizer,
            transform: Transform::Identity,
            path: KernelPath::Fast,
        }
    }

    /// Same, with an explicit transform (crate-internal: the transform
    /// enum is not public API).
    pub(crate) fn with_transform(mut self, transform: Transform) -> Self {
        self.transform = transform;
        self
    }

    /// Same, forcing a kernel path (crate-internal: the differential
    /// harness asserts both paths produce identical containers).
    pub(crate) fn with_kernel_path(mut self, path: KernelPath) -> Self {
        self.path = path;
        self
    }
}

impl<T: Scalar> ChunkCodec<T> for RolzChunkCodec {
    fn kind(&self) -> ChunkCodecKind {
        ChunkCodecKind::Rolz
    }

    fn encode(&self, data: &[T], shape: Shape) -> Result<(Vec<u8>, ChunkStats), CompressError> {
        let q = quantize_stream(data, shape, self.predictor, self.quantizer, self.transform, self.path);
        let code_bytes = symbols_to_bytes(&q.symbols, self.quantizer.zero_symbol());
        let t = rolz_compress(&code_bytes, self.path);

        let (codebook, token_payload) = if t.tokens.is_empty() {
            (Vec::new(), Vec::new())
        } else {
            let codec = HuffmanCodec::from_counts(&t.histogram)?;
            let payload = match self.path {
                KernelPath::Fast => codec.encode(&t.tokens)?,
                KernelPath::Reference => codec.encode_reference(&t.tokens)?,
            };
            (codec.serialize_codebook(), payload)
        };

        let mut payload = Vec::with_capacity(
            token_payload.len() + t.lens.len() + t.raws.len() + 24,
        );
        put_uvarint(&mut payload, code_bytes.len() as u64);
        put_uvarint(&mut payload, t.tokens.len() as u64);
        put_uvarint(&mut payload, t.lens.len() as u64);
        put_uvarint(&mut payload, t.raws.len() as u64);
        put_uvarint(&mut payload, token_payload.len() as u64);
        payload.extend_from_slice(&token_payload);
        payload.extend_from_slice(&t.lens);
        payload.extend_from_slice(&t.raws);

        let blob =
            write_chunk_blob::<T>(LosslessStage::None, &codebook, &payload, &q.verbatim, &q.side);
        let stats = ChunkStats {
            n_symbols: q.symbols.len(),
            n_escapes: q.n_escapes,
            n_anchors: q.n_anchors,
            huffman_bytes: token_payload.len(),
            encoded_bytes: payload.len(),
            codebook_bytes: codebook.len(),
            side_bytes: q.side.len(),
            histogram: q.histogram,
        };
        Ok((blob, stats))
    }

    fn decode(
        &self,
        blob: &[u8],
        shape: Shape,
        out: &mut [T],
    ) -> Result<(), DecompressError> {
        let (_lossless, body) = read_chunk_blob::<T>(blob)?;
        let n_anchors =
            if self.predictor == PredictorKind::Interpolation { anchors(shape).len() } else { 0 };
        let n_symbols = shape.len() - n_anchors;

        let p = &body.payload[..];
        let mut pos = 0usize;
        let n_bytes =
            get_uvarint(p, &mut pos).ok_or(DecompressError::Corrupt("rolz byte count"))? as usize;
        let n_tokens =
            get_uvarint(p, &mut pos).ok_or(DecompressError::Corrupt("rolz token count"))? as usize;
        let n_lens =
            get_uvarint(p, &mut pos).ok_or(DecompressError::Corrupt("rolz match count"))? as usize;
        let n_raws =
            get_uvarint(p, &mut pos).ok_or(DecompressError::Corrupt("rolz raw count"))? as usize;
        let token_bytes = get_uvarint(p, &mut pos)
            .ok_or(DecompressError::Corrupt("rolz token payload len"))? as usize;
        // A zigzag varint of an in-alphabet symbol takes at most 5 bytes,
        // and every token yields at least one byte: corrupt counts must
        // not drive huge upfront allocations.
        if n_bytes > n_symbols.saturating_mul(5) {
            return Err(DecompressError::Corrupt("rolz code stream exceeds symbol budget"));
        }
        if n_tokens > n_bytes || n_lens > n_tokens || n_raws > n_tokens {
            return Err(DecompressError::Corrupt("rolz stream counts inconsistent"));
        }
        let end = pos
            .checked_add(token_bytes)
            .and_then(|e| e.checked_add(n_lens))
            .and_then(|e| e.checked_add(n_raws))
            .filter(|&e| e <= p.len())
            .ok_or(DecompressError::Corrupt("rolz payload overruns buffer"))?;
        if end != p.len() {
            return Err(DecompressError::Corrupt("trailing bytes in rolz payload"));
        }
        let token_payload = &p[pos..pos + token_bytes];
        let lens = &p[pos + token_bytes..pos + token_bytes + n_lens];
        let raws = &p[pos + token_bytes + n_lens..end];

        let code_bytes = if n_tokens == 0 {
            if n_bytes != 0 {
                return Err(DecompressError::Corrupt("rolz tokens underrun code stream"));
            }
            Vec::new()
        } else {
            // Every Huffman code is at least one bit.
            if n_tokens > token_payload.len().saturating_mul(8) {
                return Err(DecompressError::Corrupt("rolz token count exceeds payload"));
            }
            let codec = HuffmanCodec::deserialize_codebook(&body.codebook)?.0;
            match self.path {
                KernelPath::Fast => {
                    let mut dec = codec.streaming_decoder(token_payload, n_tokens);
                    rolz_decompress(
                        std::iter::from_fn(|| Some(dec.next_symbol().map_err(Into::into)))
                            .take(n_tokens),
                        lens,
                        raws,
                        n_bytes,
                    )?
                }
                KernelPath::Reference => {
                    let tokens = codec.decode_reference(token_payload, n_tokens)?;
                    rolz_decompress(tokens.into_iter().map(Ok), lens, raws, n_bytes)?
                }
            }
        };

        let symbols = bytes_to_symbols(
            &code_bytes,
            n_symbols,
            self.quantizer.zero_symbol(),
            self.quantizer.alphabet_size() as u32,
        )?;
        dequantize_stream(
            &symbols,
            &body.verbatim,
            &body.side,
            shape,
            self.predictor,
            self.quantizer,
            self.transform,
            self.path,
            out,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rq_quant::DEFAULT_RADIUS;

    fn xorshift(seed: u64) -> impl FnMut() -> u64 {
        let mut s = seed;
        move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        }
    }

    #[test]
    fn rolz_bytes_roundtrip() {
        let mut rng = xorshift(0xC0FF_EE00_D15E_A5E5);
        for trial in 0..40 {
            let n = (trial * 37) % 3000;
            // Skewed bytes with planted repeats, like a residual stream.
            let mut bytes: Vec<u8> = (0..n).map(|_| (rng() % 7) as u8).collect();
            if n > 64 {
                for k in 0..32 {
                    bytes[n / 2 + k] = bytes[k];
                }
            }
            for path in [KernelPath::Fast, KernelPath::Reference] {
                let t = rolz_compress(&bytes, path);
                let back = rolz_decompress(
                    t.tokens.iter().map(|&x| Ok(x)),
                    &t.lens,
                    &t.raws,
                    bytes.len(),
                )
                .unwrap();
                assert_eq!(back, bytes, "trial {trial} path {path:?}");
            }
        }
    }

    #[test]
    fn fast_and_reference_tokens_identical() {
        let mut rng = xorshift(0xDEAD_10CC);
        let bytes: Vec<u8> = (0..4096).map(|_| (rng() % 9) as u8).collect();
        let f = rolz_compress(&bytes, KernelPath::Fast);
        let r = rolz_compress(&bytes, KernelPath::Reference);
        assert_eq!(f.tokens, r.tokens);
        assert_eq!(f.lens, r.lens);
        assert_eq!(f.raws, r.raws);
    }

    #[test]
    fn symbol_varints_roundtrip() {
        let q = LinearQuantizer::new(1e-3, DEFAULT_RADIUS);
        let zero = q.zero_symbol();
        let escape = q.alphabet_size() as u32;
        let symbols: Vec<u32> =
            vec![zero, zero + 1, zero - 1, 0, escape - 1, escape, zero, zero];
        let bytes = symbols_to_bytes(&symbols, zero);
        let back = bytes_to_symbols(&bytes, symbols.len(), zero, escape).unwrap();
        assert_eq!(back, symbols);
        // Out-of-alphabet and trailing-bytes corruption is typed.
        assert!(bytes_to_symbols(&bytes, symbols.len() - 1, zero, escape).is_err());
        let mut long = bytes.clone();
        long.push(0);
        assert!(bytes_to_symbols(&long, symbols.len(), zero, escape).is_err());
    }

    #[test]
    fn rolz_codec_roundtrips_within_bound() {
        let eb = 1e-3;
        let shape = Shape::d2(24, 40);
        let mut data = Vec::with_capacity(shape.len());
        for ix in shape.indices() {
            data.push(((ix[0] as f32) * 0.4).sin() * 3.0 + (ix[1] as f32) * 0.05);
        }
        for pred in PredictorKind::all() {
            let codec = RolzChunkCodec::new(pred, LinearQuantizer::new(eb, DEFAULT_RADIUS));
            let (blob, stats) = ChunkCodec::<f32>::encode(&codec, &data, shape).unwrap();
            assert_eq!(stats.n_symbols + stats.n_anchors, shape.len());
            let mut out = vec![0f32; shape.len()];
            ChunkCodec::<f32>::decode(&codec, &blob, shape, &mut out).unwrap();
            for (i, (&a, &b)) in data.iter().zip(&out).enumerate() {
                assert!(
                    ((a - b).abs() as f64) <= eb * (1.0 + 1e-6),
                    "pred {pred:?} element {i}: |{a} - {b}| > {eb}"
                );
            }
        }
    }

    #[test]
    fn repetitive_field_beats_sz_ratio() {
        // A strict period-8 texture: the residual stream repeats exactly
        // row over row, which ROLZ folds into matches while the SZ path's
        // order-0 Huffman (and its byte-aligned LZSS stage, blind to the
        // bit-packed symbol boundaries) cannot.
        let shape = Shape::d2(48, 64);
        let mut data = Vec::with_capacity(shape.len());
        for ix in shape.indices() {
            data.push(((ix[0] + 3 * ix[1]) % 8) as f32 * 0.37);
        }
        let q = LinearQuantizer::new(1e-4, DEFAULT_RADIUS);
        let rolz = RolzChunkCodec::new(PredictorKind::Lorenzo, q);
        let sz = crate::SzChunkCodec::new(
            PredictorKind::Lorenzo,
            q,
            LosslessStage::RleLzss,
        );
        let (rolz_blob, _) = ChunkCodec::<f32>::encode(&rolz, &data, shape).unwrap();
        let (sz_blob, _) = ChunkCodec::<f32>::encode(&sz, &data, shape).unwrap();
        assert!(
            rolz_blob.len() < sz_blob.len(),
            "rolz {} >= sz {}",
            rolz_blob.len(),
            sz_blob.len()
        );
        let mut out = vec![0f32; shape.len()];
        ChunkCodec::<f32>::decode(&rolz, &rolz_blob, shape, &mut out).unwrap();
        for (&a, &b) in data.iter().zip(&out) {
            assert!(((a - b).abs() as f64) <= 1e-4 * (1.0 + 1e-6));
        }
    }

    #[test]
    fn corrupt_rolz_blobs_error_not_panic() {
        let shape = Shape::d2(16, 16);
        let mut data = Vec::with_capacity(shape.len());
        for ix in shape.indices() {
            data.push((ix[0] as f32 * 0.7).sin() + ix[1] as f32 * 0.01);
        }
        let codec =
            RolzChunkCodec::new(PredictorKind::Lorenzo, LinearQuantizer::new(1e-3, DEFAULT_RADIUS));
        let (blob, _) = ChunkCodec::<f32>::encode(&codec, &data, shape).unwrap();
        let mut out = vec![0f32; shape.len()];
        for cut in 1..blob.len().min(40) {
            let _ = ChunkCodec::<f32>::decode(&codec, &blob[..blob.len() - cut], shape, &mut out);
        }
        let mut rng = xorshift(0x0DD5_EED5);
        for _ in 0..200 {
            let mut m = blob.clone();
            let at = (rng() as usize) % m.len();
            m[at] ^= (rng() % 255 + 1) as u8;
            let _ = ChunkCodec::<f32>::decode(&codec, &m, shape, &mut out); // must not panic
        }
    }
}
