//! Ratio-driven per-chunk codec selection.
//!
//! The paper's thesis is that a cheap sampled model can predict the
//! compression ratio *before* compressing, precisely so the system can
//! choose the best configuration. This module turns that from a passive
//! report into the compressor's control loop: for every axis-0 slab the
//! scheduler estimates, from small samples, what the SZ prediction path
//! and the ZFP transform path would each spend, and hands the slab to the
//! cheaper codec.
//!
//! Two estimators, both deterministic (container bytes must be a pure
//! function of field and configuration, so no RNG is allowed here):
//!
//! * **SZ** — [`rq_predict::sample_prediction_errors`] draws a strided
//!   sample of original-value prediction errors from the slab, and
//!   [`rq_predict::PredictionSample::estimate`] converts it to a bit-rate
//!   via the Eq. 1 entropy of the quantized sample plus escape / anchor /
//!   side-channel overheads. This is where SZ's weakness is visible ahead
//!   of time: errors beyond the quantizer's code range escape to verbatim
//!   scalars, so rough high-amplitude data at tight bounds costs ≈ 32
//!   bits/value.
//! * **ZFP** — the transform path has no comparably simple closed form,
//!   so the scheduler compresses small probe blocks of the slab *for
//!   real* (the origin corner and the opposite corner, averaged — or the
//!   whole slab when it fits the budget, in which case the stream is
//!   reused as the final encoding) and measures bits/value. A few
//!   thousand elements through the block transform cost microseconds, in
//!   the same spirit as the paper's 1 % sampling pass.
//!
//! The decision rule is simply `min(estimated bits)`, with ties going to
//! SZ (the configured predictor path).

use crate::container::ChunkCodecKind;
use rq_grid::{Scalar, Shape, MAX_DIMS};
use rq_predict::{sample_prediction_errors, PredictorKind};

/// Sample budget for the SZ prediction-error estimate, per chunk.
const SZ_SAMPLE_POINTS: usize = 2048;

/// Element budget for the ZFP probe block, per chunk.
const ZFP_SAMPLE_ELEMS: usize = 4096;

/// One chunk's scheduling outcome (also surfaced by the ablation bench).
#[derive(Clone, Copy, Debug)]
pub struct CodecDecision {
    /// The chosen codec.
    pub codec: ChunkCodecKind,
    /// Estimated SZ bits/value for the slab.
    pub sz_bits: f64,
    /// Estimated ZFP bits/value for the slab.
    pub zfp_bits: f64,
}

/// Estimate both codecs on a slab and pick the cheaper one.
///
/// `data`/`shape` describe one axis-0 slab; `abs_eb` is the resolved
/// absolute bound (identity transform — the caller must not invoke the
/// scheduler for log-transform configs, where ZFP is not a candidate).
pub fn choose_codec<T: Scalar>(
    data: &[T],
    shape: Shape,
    predictor: PredictorKind,
    abs_eb: f64,
    radius: u32,
) -> CodecDecision {
    choose_codec_with_blob(data, shape, predictor, abs_eb, radius).0
}

/// [`choose_codec`], additionally handing back the ZFP stream when the
/// probe already compressed the *whole* slab (small chunks) and ZFP won —
/// the pipeline can then reuse it instead of encoding the slab twice.
pub(crate) fn choose_codec_with_blob<T: Scalar>(
    data: &[T],
    shape: Shape,
    predictor: PredictorKind,
    abs_eb: f64,
    radius: u32,
) -> (CodecDecision, Option<Vec<u8>>) {
    let sz_bits = estimate_sz_bits(data, shape, predictor, abs_eb, radius);
    let (zfp_bits, full_blob) = zfp_probe(data, shape, abs_eb);
    let codec = if zfp_bits < sz_bits { ChunkCodecKind::Zfp } else { ChunkCodecKind::Sz };
    let blob = if codec == ChunkCodecKind::Zfp { full_blob } else { None };
    (CodecDecision { codec, sz_bits, zfp_bits }, blob)
}

/// Sampled Eq. 1 estimate of the SZ path's bits/value on a slab.
pub fn estimate_sz_bits<T: Scalar>(
    data: &[T],
    shape: Shape,
    predictor: PredictorKind,
    abs_eb: f64,
    radius: u32,
) -> f64 {
    // The sampler predicts from original values (exactly like the model's
    // §III-C pass) and promotes scalars to f64 only at the sampled
    // stencil accesses, so cost is O(sample), not O(slab).
    let sample = sample_prediction_errors(data, shape, predictor, SZ_SAMPLE_POINTS);
    sample.estimate(abs_eb, radius, T::BITS).bits_per_value
}

/// Measured bits/value of the ZFP path on a corner probe block of a slab.
pub fn estimate_zfp_bits<T: Scalar>(data: &[T], shape: Shape, abs_eb: f64) -> f64 {
    zfp_probe(data, shape, abs_eb).0
}

/// Compress probe block(s) and measure bits/value. When the probe covers
/// the whole slab (no sub-block was cut), the stream is the slab's final
/// ZFP encoding and is returned for reuse; otherwise two blocks — the
/// origin corner and the opposite corner — are probed and averaged, so a
/// slab that is smooth at one end and turbulent at the other is not
/// judged by its smooth corner alone.
fn zfp_probe<T: Scalar>(data: &[T], shape: Shape, abs_eb: f64) -> (f64, Option<Vec<u8>>) {
    let Some(caps) = probe_caps(shape, ZFP_SAMPLE_ELEMS) else {
        // Whole slab fits the budget: the probe IS the encoding.
        return match rq_zfp::zfp_compress_slice(data, shape, abs_eb) {
            Ok(bytes) => (bytes.len() as f64 * 8.0 / shape.len() as f64, Some(bytes)),
            // An invalid tolerance cannot reach here (resolve_bound
            // validated it); treat a failure as "never pick zfp".
            Err(_) => (f64::INFINITY, None),
        };
    };
    let nd = shape.ndim();
    let mut dims = [0usize; MAX_DIMS];
    dims[..nd].copy_from_slice(&caps[..nd]);
    let probe_shape = Shape::new(&dims[..nd]);
    let mut far = [0usize; MAX_DIMS];
    for a in 0..nd {
        far[a] = shape.dim(a) - caps[a];
    }
    let mut total_bits = 0.0f64;
    for origin in [[0usize; MAX_DIMS], far] {
        let probe = copy_block(data, shape, &origin, &caps);
        match rq_zfp::zfp_compress_slice(&probe, probe_shape, abs_eb) {
            Ok(bytes) => total_bits += bytes.len() as f64 * 8.0 / probe_shape.len() as f64,
            Err(_) => return (f64::INFINITY, None),
        }
    }
    (total_bits / 2.0, None)
}

/// Per-axis extents of a probe block holding at most ~`budget` elements.
/// Extents are halved largest-first (never below the ZFP block side of 4)
/// so the probe keeps the slab's dimensionality and local structure.
/// Returns `None` when the whole slab already fits the budget.
fn probe_caps(shape: Shape, budget: usize) -> Option<[usize; MAX_DIMS]> {
    let nd = shape.ndim();
    let mut caps = [0usize; MAX_DIMS];
    caps[..nd].copy_from_slice(shape.dims());
    loop {
        let len: usize = caps[..nd].iter().product();
        if len <= budget {
            break;
        }
        let Some(axis) = (0..nd).filter(|&a| caps[a] > 4).max_by_key(|&a| caps[a]) else {
            break;
        };
        caps[axis] = (caps[axis] / 2).max(4);
    }
    if caps[..nd] == shape.dims()[..nd] {
        None
    } else {
        Some(caps)
    }
}

/// Copy the rectangular block at `origin` with extents `caps` out of a
/// row-major slab.
fn copy_block<T: Scalar>(
    data: &[T],
    shape: Shape,
    origin: &[usize; MAX_DIMS],
    caps: &[usize; MAX_DIMS],
) -> Vec<T> {
    let nd = shape.ndim();
    let strides = shape.strides();
    let len: usize = caps[..nd].iter().product();
    let mut out = Vec::with_capacity(len);
    let mut idx = [0usize; MAX_DIMS];
    loop {
        let mut lin = 0usize;
        for a in 0..nd {
            lin += (origin[a] + idx[a]) * strides[a];
        }
        // Innermost axis is contiguous: copy a whole run at once.
        out.extend_from_slice(&data[lin..lin + caps[nd - 1]]);
        let mut axis = nd - 1;
        loop {
            if axis == 0 {
                return out;
            }
            axis -= 1;
            idx[axis] += 1;
            if idx[axis] < caps[axis] {
                break;
            }
            idx[axis] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rq_quant::DEFAULT_RADIUS;

    fn smooth(shape: Shape) -> Vec<f32> {
        let mut out = Vec::with_capacity(shape.len());
        for ix in shape.indices() {
            out.push((((ix[0] as f64) * 0.1).sin() * 2.0 + (ix[1] as f64) * 0.01) as f32);
        }
        out
    }

    fn rough(shape: Shape, amp: f32) -> Vec<f32> {
        let mut s = 0xDEAD_BEEFu64;
        (0..shape.len())
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                ((s >> 11) as f64 / (1u64 << 53) as f64 - 0.5) as f32 * amp
            })
            .collect()
    }

    #[test]
    fn smooth_slab_prefers_sz() {
        let shape = Shape::d2(32, 48);
        let d = choose_codec(&smooth(shape), shape, PredictorKind::Lorenzo, 1e-3, DEFAULT_RADIUS);
        assert_eq!(d.codec, ChunkCodecKind::Sz, "sz {} zfp {}", d.sz_bits, d.zfp_bits);
        assert!(d.sz_bits < 8.0);
    }

    #[test]
    fn escaping_slab_prefers_zfp() {
        // Noise amplitude far beyond the quantizer range at this bound:
        // nearly every SZ symbol escapes (~32 bits/value), while the
        // bitplane coder stays near log2(range / eb).
        let shape = Shape::d2(32, 48);
        let data = rough(shape, 50.0);
        let d = choose_codec(&data, shape, PredictorKind::Lorenzo, 1e-4, 256);
        assert_eq!(d.codec, ChunkCodecKind::Zfp, "sz {} zfp {}", d.sz_bits, d.zfp_bits);
        assert!(d.sz_bits > 30.0, "sz estimate should be near verbatim cost");
    }

    #[test]
    fn decisions_are_deterministic() {
        let shape = Shape::d3(16, 12, 10);
        let data = rough(shape, 3.0);
        let a = choose_codec(&data, shape, PredictorKind::Interpolation, 1e-3, DEFAULT_RADIUS);
        let b = choose_codec(&data, shape, PredictorKind::Interpolation, 1e-3, DEFAULT_RADIUS);
        assert_eq!(a.codec, b.codec);
        assert_eq!(a.sz_bits, b.sz_bits);
        assert_eq!(a.zfp_bits, b.zfp_bits);
    }

    #[test]
    fn probe_caps_budget_and_block_copy() {
        let shape = Shape::d3(64, 64, 64);
        let data: Vec<f32> = (0..shape.len()).map(|i| i as f32).collect();
        let caps = probe_caps(shape, 4096).expect("large slab must be cut");
        assert!(caps[..3].iter().product::<usize>() <= 4096);
        // Origin-corner copy preserves row-major order.
        let probe = copy_block(&data, shape, &[0; MAX_DIMS], &caps);
        assert_eq!(probe[0], 0.0);
        assert_eq!(probe[1], 1.0);
        // Far-corner copy starts at the opposite corner's origin.
        let mut far = [0usize; MAX_DIMS];
        for a in 0..3 {
            far[a] = shape.dim(a) - caps[a];
        }
        let probe = copy_block(&data, shape, &far, &caps);
        let strides = shape.strides();
        let lin0 = far[0] * strides[0] + far[1] * strides[1] + far[2];
        assert_eq!(probe[0], lin0 as f32);
        // Small slabs are taken whole (no copy, reusable stream).
        assert!(probe_caps(Shape::d2(8, 8), 4096).is_none());
    }

    #[test]
    fn whole_slab_probe_returns_reusable_blob() {
        // Chunks at or under the probe budget: the scheduler's zfp probe
        // IS the final encoding; it must be handed back for reuse and
        // match a direct compression exactly.
        let shape = Shape::d2(16, 16);
        let data = rough(shape, 50.0);
        let (d, blob) = choose_codec_with_blob(&data, shape, PredictorKind::Lorenzo, 1e-4, 256);
        assert_eq!(d.codec, ChunkCodecKind::Zfp);
        let blob = blob.expect("whole-slab probe must be reusable");
        assert_eq!(blob, rq_zfp::zfp_compress_slice(&data, shape, 1e-4).unwrap());
    }
}
