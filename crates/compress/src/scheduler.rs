//! Ratio-driven per-chunk codec selection.
//!
//! The paper's thesis is that a cheap sampled model can predict the
//! compression ratio *before* compressing, precisely so the system can
//! choose the best configuration. This module turns that from a passive
//! report into the compressor's control loop: for every axis-0 slab the
//! scheduler estimates, from small samples, what the SZ prediction path,
//! the ZFP transform path and the ROLZ residual path would each spend,
//! and hands the slab to the cheapest codec.
//!
//! Three estimators, all deterministic (container bytes must be a pure
//! function of field and configuration, so no RNG is allowed here):
//!
//! * **SZ** — [`rq_predict::sample_prediction_errors`] draws a strided
//!   sample of original-value prediction errors from the slab, and
//!   [`rq_predict::PredictionSample::estimate`] converts it to a bit-rate
//!   via the Eq. 1 entropy of the quantized sample plus escape / anchor /
//!   side-channel overheads. This is where SZ's weakness is visible ahead
//!   of time: errors beyond the quantizer's code range escape to verbatim
//!   scalars, so rough high-amplitude data at tight bounds costs ≈ 32
//!   bits/value.
//! * **ZFP** — the transform path has no comparably simple closed form,
//!   so the scheduler compresses small probe blocks of the slab *for
//!   real* and measures bits/value: the origin corner, the slab center
//!   and the far corner, averaged (corner-only probing judged a slab by
//!   its edges and missed interior regimes) — or the whole slab when it
//!   fits the budget, in which case the stream is reused as the final
//!   encoding. A few thousand elements through the block transform cost
//!   microseconds, in the same spirit as the paper's 1 % sampling pass.
//! * **ROLZ** — the dictionary stage's gain depends on repeat structure
//!   the entropy model cannot see, so the same probe blocks are pushed
//!   through [`RolzChunkCodec`] for real and measured.
//!
//! The decision rule is [`pick_codec`]: the finite minimum of the three
//! estimates, ties preferring SZ then ZFP then ROLZ, and SZ when every
//! estimate is non-finite. Non-finite estimates lose *explicitly* — the
//! historical rule compared `zfp_bits < sz_bits`, which silently picked
//! SZ whenever the SZ estimate was NaN.

use crate::codec::ChunkCodec;
use crate::container::ChunkCodecKind;
use crate::rolz::RolzChunkCodec;
use rq_grid::{Scalar, Shape, MAX_DIMS};
use rq_predict::{sample_prediction_errors, PredictorKind};
use rq_quant::LinearQuantizer;

/// Sample budget for the SZ prediction-error estimate, per chunk.
const SZ_SAMPLE_POINTS: usize = 2048;

/// Element budget for one codec's probe of a chunk. Slabs at or under
/// the budget are probed whole; larger slabs are probed by
/// [`PROBE_BLOCKS`] blocks sharing the budget.
const ZFP_SAMPLE_ELEMS: usize = 4096;

/// Probe blocks cut from an over-budget slab: origin corner, center, far
/// corner.
const PROBE_BLOCKS: usize = 3;

/// One chunk's scheduling outcome (also surfaced by the ablation bench).
#[derive(Clone, Copy, Debug)]
pub struct CodecDecision {
    /// The chosen codec.
    pub codec: ChunkCodecKind,
    /// Estimated SZ bits/value for the slab.
    pub sz_bits: f64,
    /// Estimated ZFP bits/value for the slab.
    pub zfp_bits: f64,
    /// Estimated ROLZ bits/value for the slab.
    pub rolz_bits: f64,
}

/// Estimate all three codecs on a slab and pick the cheapest.
///
/// `data`/`shape` describe one axis-0 slab; `abs_eb` is the resolved
/// absolute bound (identity transform — the caller must not invoke the
/// scheduler for log-transform configs, where the estimates are not
/// calibrated).
pub fn choose_codec<T: Scalar>(
    data: &[T],
    shape: Shape,
    predictor: PredictorKind,
    abs_eb: f64,
    radius: u32,
) -> CodecDecision {
    choose_codec_with_blob(data, shape, predictor, abs_eb, radius).0
}

/// [`choose_codec`], additionally handing back the ZFP stream when the
/// probe already compressed the *whole* slab (small chunks) and ZFP won —
/// the pipeline can then reuse it instead of encoding the slab twice.
/// (A winning whole-slab ROLZ probe is *not* reused: re-encoding small
/// slabs is cheap and keeps the chunk's statistics populated.)
pub(crate) fn choose_codec_with_blob<T: Scalar>(
    data: &[T],
    shape: Shape,
    predictor: PredictorKind,
    abs_eb: f64,
    radius: u32,
) -> (CodecDecision, Option<Vec<u8>>) {
    let sz_bits = estimate_sz_bits(data, shape, predictor, abs_eb, radius);
    let (zfp_bits, full_blob) = zfp_probe(data, shape, abs_eb);
    let rolz_bits = estimate_rolz_bits(data, shape, predictor, abs_eb, radius);
    let codec = pick_codec(sz_bits, zfp_bits, rolz_bits);
    let blob = if codec == ChunkCodecKind::Zfp { full_blob } else { None };
    (CodecDecision { codec, sz_bits, zfp_bits, rolz_bits }, blob)
}

/// Three-way `min(estimated bits)`, safe against non-finite estimates: a
/// NaN or infinite estimate can never win (it marks a failed or
/// inapplicable probe), ties keep the earlier codec in (SZ, ZFP, ROLZ)
/// order, and SZ — the configured predictor path — is the fallback when
/// every estimate is non-finite.
pub fn pick_codec(sz_bits: f64, zfp_bits: f64, rolz_bits: f64) -> ChunkCodecKind {
    let mut best = ChunkCodecKind::Sz;
    let mut best_bits = f64::INFINITY;
    for (codec, bits) in [
        (ChunkCodecKind::Sz, sz_bits),
        (ChunkCodecKind::Zfp, zfp_bits),
        (ChunkCodecKind::Rolz, rolz_bits),
    ] {
        if bits.is_finite() && bits < best_bits {
            best = codec;
            best_bits = bits;
        }
    }
    best
}

/// Sampled Eq. 1 estimate of the SZ path's bits/value on a slab.
pub fn estimate_sz_bits<T: Scalar>(
    data: &[T],
    shape: Shape,
    predictor: PredictorKind,
    abs_eb: f64,
    radius: u32,
) -> f64 {
    // The sampler predicts from original values (exactly like the model's
    // §III-C pass) and promotes scalars to f64 only at the sampled
    // stencil accesses, so cost is O(sample), not O(slab).
    let sample = sample_prediction_errors(data, shape, predictor, SZ_SAMPLE_POINTS);
    sample.estimate(abs_eb, radius, T::BITS).bits_per_value
}

/// Measured bits/value of the ZFP path on probe blocks of a slab.
pub fn estimate_zfp_bits<T: Scalar>(data: &[T], shape: Shape, abs_eb: f64) -> f64 {
    zfp_probe(data, shape, abs_eb).0
}

/// Measured bits/value of the ROLZ path on probe blocks of a slab
/// (each block quantized, ROLZ-coded and entropy-coded for real — the
/// dictionary stage's gain has no useful closed form).
pub fn estimate_rolz_bits<T: Scalar>(
    data: &[T],
    shape: Shape,
    predictor: PredictorKind,
    abs_eb: f64,
    radius: u32,
) -> f64 {
    let codec = RolzChunkCodec::new(predictor, LinearQuantizer::new(abs_eb, radius));
    let bits_of = |block: &[T], block_shape: Shape| -> f64 {
        match ChunkCodec::<T>::encode(&codec, block, block_shape) {
            Ok((blob, _)) => blob.len() as f64 * 8.0 / block_shape.len() as f64,
            Err(_) => f64::INFINITY,
        }
    };
    let Some(caps) = block_probe_caps(shape) else {
        return bits_of(data, shape);
    };
    let probe_shape = caps_shape(shape, &caps);
    let mut total_bits = 0.0f64;
    for origin in probe_origins(shape, &caps) {
        let probe = copy_block(data, shape, &origin, &caps);
        total_bits += bits_of(&probe, probe_shape);
    }
    total_bits / PROBE_BLOCKS as f64
}

/// Compress ZFP probe block(s) and measure bits/value. When the probe
/// covers the whole slab (no sub-block was cut), the stream is the slab's
/// final ZFP encoding and is returned for reuse; otherwise the
/// origin / center / far blocks are probed and averaged.
fn zfp_probe<T: Scalar>(data: &[T], shape: Shape, abs_eb: f64) -> (f64, Option<Vec<u8>>) {
    let Some(caps) = block_probe_caps(shape) else {
        // Whole slab fits the budget: the probe IS the encoding.
        return match rq_zfp::zfp_compress_slice(data, shape, abs_eb) {
            Ok(bytes) => (bytes.len() as f64 * 8.0 / shape.len() as f64, Some(bytes)),
            // An invalid tolerance cannot reach here (resolve_bound
            // validated it); treat a failure as "never pick zfp".
            Err(_) => (f64::INFINITY, None),
        };
    };
    let probe_shape = caps_shape(shape, &caps);
    let mut total_bits = 0.0f64;
    for origin in probe_origins(shape, &caps) {
        let probe = copy_block(data, shape, &origin, &caps);
        match rq_zfp::zfp_compress_slice(&probe, probe_shape, abs_eb) {
            Ok(bytes) => total_bits += bytes.len() as f64 * 8.0 / probe_shape.len() as f64,
            Err(_) => return (f64::INFINITY, None),
        }
    }
    (total_bits / PROBE_BLOCKS as f64, None)
}

/// The block extents a probe of `shape` uses, or `None` when the whole
/// slab fits the probe budget (probe it whole). Each of the
/// [`PROBE_BLOCKS`] blocks gets an equal share of [`ZFP_SAMPLE_ELEMS`].
fn block_probe_caps(shape: Shape) -> Option<[usize; MAX_DIMS]> {
    probe_caps(shape, ZFP_SAMPLE_ELEMS)?;
    // The slab exceeds the full budget, so cutting to a third of it must
    // succeed too; fall back to whole-slab probing if it somehow cannot
    // (every axis already at the minimum block side).
    probe_caps(shape, ZFP_SAMPLE_ELEMS / PROBE_BLOCKS)
}

/// `caps` as a [`Shape`] with `shape`'s dimensionality.
fn caps_shape(shape: Shape, caps: &[usize; MAX_DIMS]) -> Shape {
    let nd = shape.ndim();
    let mut dims = [0usize; MAX_DIMS];
    dims[..nd].copy_from_slice(&caps[..nd]);
    Shape::new(&dims[..nd])
}

/// Origins of the three probe blocks: origin corner, slab center
/// (`(dim - cap) / 2` per axis) and far corner. Deterministic, so the
/// scheduler's decision stays a pure function of the slab.
fn probe_origins(shape: Shape, caps: &[usize; MAX_DIMS]) -> [[usize; MAX_DIMS]; PROBE_BLOCKS] {
    let nd = shape.ndim();
    let mut center = [0usize; MAX_DIMS];
    let mut far = [0usize; MAX_DIMS];
    for a in 0..nd {
        far[a] = shape.dim(a) - caps[a];
        center[a] = far[a] / 2;
    }
    [[0usize; MAX_DIMS], center, far]
}

/// Per-axis extents of a probe block holding at most ~`budget` elements.
/// Extents are halved largest-first (never below the ZFP block side of 4)
/// so the probe keeps the slab's dimensionality and local structure.
/// Returns `None` when the whole slab already fits the budget.
fn probe_caps(shape: Shape, budget: usize) -> Option<[usize; MAX_DIMS]> {
    let nd = shape.ndim();
    let mut caps = [0usize; MAX_DIMS];
    caps[..nd].copy_from_slice(shape.dims());
    loop {
        let len: usize = caps[..nd].iter().product();
        if len <= budget {
            break;
        }
        let Some(axis) = (0..nd).filter(|&a| caps[a] > 4).max_by_key(|&a| caps[a]) else {
            break;
        };
        caps[axis] = (caps[axis] / 2).max(4);
    }
    if caps[..nd] == shape.dims()[..nd] {
        None
    } else {
        Some(caps)
    }
}

/// Copy the rectangular block at `origin` with extents `caps` out of a
/// row-major slab.
fn copy_block<T: Scalar>(
    data: &[T],
    shape: Shape,
    origin: &[usize; MAX_DIMS],
    caps: &[usize; MAX_DIMS],
) -> Vec<T> {
    let nd = shape.ndim();
    let strides = shape.strides();
    let len: usize = caps[..nd].iter().product();
    let mut out = Vec::with_capacity(len);
    let mut idx = [0usize; MAX_DIMS];
    loop {
        let mut lin = 0usize;
        for a in 0..nd {
            lin += (origin[a] + idx[a]) * strides[a];
        }
        // Innermost axis is contiguous: copy a whole run at once.
        out.extend_from_slice(&data[lin..lin + caps[nd - 1]]);
        let mut axis = nd - 1;
        loop {
            if axis == 0 {
                return out;
            }
            axis -= 1;
            idx[axis] += 1;
            if idx[axis] < caps[axis] {
                break;
            }
            idx[axis] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rq_predict::PredictionSample;
    use rq_quant::DEFAULT_RADIUS;

    fn smooth(shape: Shape) -> Vec<f32> {
        let mut out = Vec::with_capacity(shape.len());
        for ix in shape.indices() {
            out.push((((ix[0] as f64) * 0.1).sin() * 2.0 + (ix[1] as f64) * 0.01) as f32);
        }
        out
    }

    fn rough(shape: Shape, amp: f32) -> Vec<f32> {
        let mut s = 0xDEAD_BEEFu64;
        (0..shape.len())
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                ((s >> 11) as f64 / (1u64 << 53) as f64 - 0.5) as f32 * amp
            })
            .collect()
    }

    #[test]
    fn smooth_slab_prefers_prediction_path() {
        let shape = Shape::d2(32, 48);
        let d = choose_codec(&smooth(shape), shape, PredictorKind::Lorenzo, 1e-3, DEFAULT_RADIUS);
        // SZ and ROLZ share the prediction front end; either may win on
        // smooth data, but the transform path must not.
        assert_ne!(d.codec, ChunkCodecKind::Zfp, "sz {} zfp {} rolz {}", d.sz_bits, d.zfp_bits, d.rolz_bits);
        assert!(d.sz_bits < 8.0);
    }

    #[test]
    fn escaping_slab_prefers_zfp() {
        // Noise amplitude far beyond the quantizer range at this bound:
        // nearly every SZ/ROLZ symbol escapes (~32 bits/value), while the
        // bitplane coder stays near log2(range / eb).
        let shape = Shape::d2(32, 48);
        let data = rough(shape, 50.0);
        let d = choose_codec(&data, shape, PredictorKind::Lorenzo, 1e-4, 256);
        assert_eq!(d.codec, ChunkCodecKind::Zfp, "sz {} zfp {} rolz {}", d.sz_bits, d.zfp_bits, d.rolz_bits);
        assert!(d.sz_bits > 30.0, "sz estimate should be near verbatim cost");
        assert!(d.rolz_bits > d.zfp_bits, "escaping data must not flatter rolz");
    }

    #[test]
    fn repetitive_slab_prefers_rolz() {
        // A strict period-8 texture: prediction residuals repeat exactly,
        // which the dictionary stage folds into matches while the order-0
        // entropy model (the SZ estimate) cannot.
        let shape = Shape::d2(48, 64);
        let mut data = Vec::with_capacity(shape.len());
        for ix in shape.indices() {
            data.push(((ix[0] + 3 * ix[1]) % 8) as f32 * 0.37);
        }
        let d = choose_codec(&data, shape, PredictorKind::Lorenzo, 1e-4, DEFAULT_RADIUS);
        assert_eq!(d.codec, ChunkCodecKind::Rolz, "sz {} zfp {} rolz {}", d.sz_bits, d.zfp_bits, d.rolz_bits);
    }

    #[test]
    fn decisions_are_deterministic() {
        let shape = Shape::d3(16, 12, 10);
        let data = rough(shape, 3.0);
        let a = choose_codec(&data, shape, PredictorKind::Interpolation, 1e-3, DEFAULT_RADIUS);
        let b = choose_codec(&data, shape, PredictorKind::Interpolation, 1e-3, DEFAULT_RADIUS);
        assert_eq!(a.codec, b.codec);
        assert_eq!(a.sz_bits, b.sz_bits);
        assert_eq!(a.zfp_bits, b.zfp_bits);
        assert_eq!(a.rolz_bits, b.rolz_bits);
    }

    #[test]
    fn non_finite_estimates_lose_explicitly() {
        use ChunkCodecKind::*;
        // The historical rule `zfp_bits < sz_bits` evaluated false when
        // the SZ estimate was NaN and silently picked SZ; a non-finite
        // estimate must lose to any finite one.
        assert_eq!(pick_codec(f64::NAN, 1.0, f64::INFINITY), Zfp);
        assert_eq!(pick_codec(f64::NAN, 10.0, 2.0), Rolz);
        assert_eq!(pick_codec(f64::INFINITY, f64::NAN, 2.0), Rolz);
        assert_eq!(pick_codec(5.0, f64::NAN, f64::NAN), Sz);
        // All-non-finite falls back to the configured predictor path.
        assert_eq!(pick_codec(f64::NAN, f64::INFINITY, f64::NAN), Sz);
        // Ties keep the earlier codec in (sz, zfp, rolz) order.
        assert_eq!(pick_codec(7.0, 7.0, 7.0), Sz);
        assert_eq!(pick_codec(8.0, 7.0, 7.0), Zfp);
        assert_eq!(pick_codec(8.0, 7.5, 7.5), Zfp);
    }

    #[test]
    fn degenerate_sample_estimate_is_non_finite_and_loses() {
        // A hand-built empty sample drives `estimate` through its n == 0
        // branch, where NaN side-channel bookkeeping poisons the result —
        // the decision seam must shrug it off rather than pick SZ.
        let sample = PredictionSample {
            errors: Vec::new(),
            predictor: PredictorKind::Regression,
            ndim: 2,
            n_elements: 0,
            verbatim_fraction: 0.0,
            side_bits_per_element: f64::NAN,
            sparse_count: 0,
        };
        let sz_bits = sample.estimate(1e-3, DEFAULT_RADIUS, 32).bits_per_value;
        assert!(sz_bits.is_nan());
        assert_eq!(pick_codec(sz_bits, 4.0, 6.0), ChunkCodecKind::Zfp);
    }

    #[test]
    fn all_nan_slab_decides_deterministically() {
        let shape = Shape::d2(20, 30);
        let data = vec![f32::NAN; shape.len()];
        let a = choose_codec(&data, shape, PredictorKind::Lorenzo, 1e-3, DEFAULT_RADIUS);
        let b = choose_codec(&data, shape, PredictorKind::Lorenzo, 1e-3, DEFAULT_RADIUS);
        assert_eq!(a.codec, b.codec, "non-finite data must not destabilize the pick");
    }

    #[test]
    fn probe_caps_budget_and_block_copy() {
        let shape = Shape::d3(64, 64, 64);
        let data: Vec<f32> = (0..shape.len()).map(|i| i as f32).collect();
        let caps = probe_caps(shape, 4096).expect("large slab must be cut");
        assert!(caps[..3].iter().product::<usize>() <= 4096);
        // Origin-corner copy preserves row-major order.
        let probe = copy_block(&data, shape, &[0; MAX_DIMS], &caps);
        assert_eq!(probe[0], 0.0);
        assert_eq!(probe[1], 1.0);
        // Far-corner copy starts at the opposite corner's origin.
        let mut far = [0usize; MAX_DIMS];
        for a in 0..3 {
            far[a] = shape.dim(a) - caps[a];
        }
        let probe = copy_block(&data, shape, &far, &caps);
        let strides = shape.strides();
        let lin0 = far[0] * strides[0] + far[1] * strides[1] + far[2];
        assert_eq!(probe[0], lin0 as f32);
        // Small slabs are taken whole (no copy, reusable stream).
        assert!(probe_caps(Shape::d2(8, 8), 4096).is_none());
    }

    #[test]
    fn probe_origins_include_the_center() {
        let shape = Shape::d2(96, 96);
        let caps = block_probe_caps(shape).expect("slab exceeds the probe budget");
        let [origin, center, far] = probe_origins(shape, &caps);
        assert_eq!(origin, [0; MAX_DIMS]);
        for a in 0..2 {
            assert_eq!(far[a], shape.dim(a) - caps[a]);
            assert_eq!(center[a], far[a] / 2);
            assert!(center[a] > 0 && center[a] < far[a], "center block must be interior");
        }
    }

    #[test]
    fn center_probe_flips_corner_blind_decision() {
        // Noise confined to two column bands covering both corner probe
        // blocks, smooth interior covering the center block. A
        // corner-only ZFP probe (the pre-center rule) prices the whole
        // slab like its noisy edges, loses to the SZ estimate, and hands
        // the slab to SZ — even though the smooth interior makes ZFP the
        // cheapest codec overall. The center block reveals it and the
        // decision flips.
        let shape = Shape::d2(96, 96);
        let caps = block_probe_caps(shape).expect("slab exceeds the probe budget");
        let [origin, center, far] = probe_origins(shape, &caps);
        // Smooth interior band wide enough to hold the center block with
        // margin; everything outside it is high-amplitude noise.
        let (smooth_lo, smooth_hi) = (30usize, 66usize);
        assert!(smooth_lo <= center[1] && center[1] + caps[1] <= smooth_hi);
        assert!(origin[1] + caps[1] <= smooth_lo && far[1] >= smooth_hi);
        let noise = rough(shape, 60.0);
        let sm = smooth(shape);
        let data: Vec<f32> = (0..shape.len())
            .map(|i| {
                let c = i % shape.dim(1);
                if (smooth_lo..smooth_hi).contains(&c) { sm[i] } else { noise[i] }
            })
            .collect();
        let d = choose_codec(&data, shape, PredictorKind::Lorenzo, 1e-4, 256);
        assert_eq!(
            d.codec,
            ChunkCodecKind::Zfp,
            "sz {} zfp {} rolz {}",
            d.sz_bits,
            d.zfp_bits,
            d.rolz_bits
        );
        // Reconstruct the corner-blind estimate: both corner blocks,
        // averaged — it overshoots the SZ estimate, i.e. the old rule
        // would have rejected ZFP for this slab.
        let probe_shape = caps_shape(shape, &caps);
        let mut corner_bits = 0.0;
        for o in [origin, far] {
            let probe = copy_block(&data, shape, &o, &caps);
            let bytes = rq_zfp::zfp_compress_slice(&probe, probe_shape, 1e-4).unwrap();
            corner_bits += bytes.len() as f64 * 8.0 / probe_shape.len() as f64;
        }
        corner_bits /= 2.0;
        assert!(
            corner_bits > d.sz_bits,
            "corner-blind zfp {} must lose to sz {}",
            corner_bits,
            d.sz_bits
        );
        assert!(d.zfp_bits < corner_bits, "center block must lower the zfp estimate");
    }

    #[test]
    fn whole_slab_probe_returns_reusable_blob() {
        // Chunks at or under the probe budget: the scheduler's zfp probe
        // IS the final encoding; it must be handed back for reuse and
        // match a direct compression exactly.
        let shape = Shape::d2(16, 16);
        let data = rough(shape, 50.0);
        let (d, blob) = choose_codec_with_blob(&data, shape, PredictorKind::Lorenzo, 1e-4, 256);
        assert_eq!(d.codec, ChunkCodecKind::Zfp);
        let blob = blob.expect("whole-slab probe must be reusable");
        assert_eq!(blob, rq_zfp::zfp_compress_slice(&data, shape, 1e-4).unwrap());
    }
}
