//! Streaming archive sessions over `std::io` streams.
//!
//! The one-shot API ([`crate::compress`] / [`crate::decompress`]) is
//! buffer-in/buffer-out: peak memory is on the order of the uncompressed
//! field *plus* the archive. This module provides the session form of the
//! same pipeline, designed for fields larger than RAM:
//!
//! * [`ArchiveWriter`] accepts axis-0 slabs incrementally, runs the
//!   per-chunk codec scheduler (including [`CodecChoice::Auto`]) on each
//!   slab as it arrives using the worker pool, and writes container
//!   **v2.2** — chunk blobs first, chunk index in a trailer — so nothing
//!   but the small index and at most a slab's worth of carry-over rows is
//!   ever buffered. The sink only needs [`Write`]; archives can stream
//!   into a pipe.
//! * [`ArchiveReader`] parses the header and chunk index lazily from any
//!   [`Read`]` + `[`Seek`] source (all four container generations) and
//!   decodes on demand: [`ArchiveReader::read_all`],
//!   [`ArchiveReader::read_chunk`], and [`ArchiveReader::read_rows`],
//!   which touches only the chunks intersecting the requested row range
//!   (verifiable through [`ArchiveReader::stats`]).
//!
//! The per-chunk encode core (`SlabEncoder`, crate-internal) is shared
//! with the one-shot chunked pipeline, so a v2.2 archive's chunk blobs
//! are byte-identical to the blobs a v2/v2.1 container would hold for the
//! same chunk partition, and the one-shot functions are thin wrappers
//! over the same machinery.
//!
//! ```
//! use rq_compress::{ArchiveReader, ArchiveWriter, CompressorConfig};
//! use rq_grid::{NdArray, Shape};
//! use rq_predict::PredictorKind;
//! use rq_quant::ErrorBoundMode;
//!
//! let cfg = CompressorConfig::new(PredictorKind::Lorenzo, ErrorBoundMode::Abs(1e-3))
//!     .chunked(8);
//! // Write four 8-row slabs of a 32×16 field into an in-memory sink
//! // (any `Write` works the same way — a `File`, a socket, a pipe).
//! let mut writer = ArchiveWriter::<f32, _>::create(Vec::new(), Shape::d2(32, 16), &cfg).unwrap();
//! for slab_idx in 0..4 {
//!     let slab = NdArray::<f32>::from_fn(Shape::d2(8, 16), |ix| {
//!         (((slab_idx * 8 + ix[0]) as f32) * 0.2).sin() + ix[1] as f32 * 0.01
//!     });
//!     writer.write_slab(&slab).unwrap();
//! }
//! let finished = writer.finalize().unwrap();
//!
//! // Random-access region read: only intersecting chunks are decoded.
//! let mut reader = ArchiveReader::open(std::io::Cursor::new(finished.sink)).unwrap();
//! let rows = reader.read_rows::<f32>(10..22).unwrap();
//! assert_eq!(rows.shape().dims(), &[12, 16]);
//! assert_eq!(reader.stats().chunks_decoded, 2); // rows 10..22 span chunks 1 and 2
//! ```

use crate::chunked::{aggregate_report, decode_chunk_blob, entry_shape, run_on_workers};
use crate::codec::{ChunkCodec, ChunkStats, SzChunkCodec, ZfpChunkCodec};
use crate::config::{CodecChoice, CompressorConfig, LosslessStage};
use crate::container::{
    entries_from_raw, parse_index_body, parse_v2_2_trailer, read_sections_body, trailer_bounds,
    write_header_prefix, write_trailer, ChunkCodecKind, ChunkEntry, ChunkTable, CompressError,
    DecompressError, Header, TRAILER_SUFFIX_LEN, VERSION_V1, VERSION_V2_2, VERSION_V2_3,
};
use crate::pipeline::{decode_stream, resolve_bound, transform_from_header, Transform};
use crate::report::CompressionReport;
use rq_encoding::varint::get_uvarint;
use rq_grid::{slab_chunks, ChunkSpec, NdArray, Scalar, Shape, MAX_DIMS};
use rq_predict::PredictorKind;
use rq_quant::{ErrorBoundMode, LinearQuantizer};
use std::io::{Read, Seek, SeekFrom, Write};
use std::ops::Range;

// ---------------------------------------------------------------------------
// Shared per-chunk encode core
// ---------------------------------------------------------------------------

/// One encoded chunk produced by [`SlabEncoder::encode_chunks`].
pub(crate) struct EncodedChunk {
    pub rows: usize,
    pub codec: ChunkCodecKind,
    pub blob: Vec<u8>,
    pub stats: ChunkStats,
    /// Absolute bound this chunk was quantized with (the shared bound, or
    /// the chunk's planned bound in quality-targeted mode).
    pub eb: f64,
}

/// The per-chunk encode core shared by the one-shot chunked pipeline and
/// the streaming [`ArchiveWriter`]: codec policy resolution (fixed sz,
/// fixed zfp, or the ratio-driven scheduler) plus the worker pool.
///
/// Encoding is a pure function of `(chunk data, chunk shape)` and this
/// struct's configuration, so container bytes are independent of both the
/// worker-thread count and of how rows were batched into `write_slab`
/// calls.
pub(crate) struct SlabEncoder {
    pub predictor: PredictorKind,
    pub quantizer: LinearQuantizer,
    pub abs_eb: f64,
    pub transform: Transform,
    pub lossless: LosslessStage,
    pub codec: CodecChoice,
    pub radius: u32,
    pub threads: usize,
}

impl SlabEncoder {
    /// Build the encoder from a config and the resolved bound/transform.
    pub fn from_cfg(
        cfg: &CompressorConfig,
        abs_eb: f64,
        transform: Transform,
    ) -> Result<SlabEncoder, CompressError> {
        if cfg.codec == CodecChoice::Zfp && transform != Transform::Identity {
            return Err(CompressError::Unsupported(
                "point-wise relative bounds need the sz codec (zfp has no log-domain escape \
                 path); use codec sz or auto"
                    .into(),
            ));
        }
        Ok(SlabEncoder {
            predictor: cfg.predictor,
            quantizer: LinearQuantizer::new(abs_eb, cfg.radius),
            abs_eb,
            transform,
            lossless: cfg.lossless,
            codec: cfg.codec,
            radius: cfg.radius,
            threads: cfg.resolved_threads(),
        })
    }

    /// Encode a batch of chunks of `data` concurrently on the worker
    /// pool, every chunk under the encoder's shared bound. Results come
    /// back in chunk order.
    pub fn encode_chunks<T: Scalar>(
        &self,
        data: &[T],
        chunks: Vec<ChunkSpec>,
    ) -> Result<Vec<EncodedChunk>, CompressError> {
        let ebs = vec![self.abs_eb; chunks.len()];
        self.encode_chunks_planned(data, chunks, &ebs)
    }

    /// [`Self::encode_chunks`] with one absolute bound per chunk (the
    /// quality-targeted v2.3 path; `ebs.len()` must equal `chunks.len()`).
    /// Each chunk's quantizer/tolerance — and, under
    /// [`CodecChoice::Auto`], the scheduler's decision — uses that chunk's
    /// bound, so blob bytes for a uniform plan equal the fixed-bound path
    /// exactly.
    pub fn encode_chunks_planned<T: Scalar>(
        &self,
        data: &[T],
        chunks: Vec<ChunkSpec>,
        ebs: &[f64],
    ) -> Result<Vec<EncodedChunk>, CompressError> {
        debug_assert_eq!(chunks.len(), ebs.len());
        let items: Vec<(ChunkSpec, f64)> =
            chunks.into_iter().zip(ebs.iter().copied()).collect();
        run_on_workers(items, self.threads, |(c, eb)| -> Result<EncodedChunk, CompressError> {
            let sz = SzChunkCodec::new(
                self.predictor,
                LinearQuantizer::new(eb, self.radius),
                self.lossless,
            )
            .with_transform(self.transform);
            let zfp = ZfpChunkCodec::new(eb);
            let slab = &data[c.offset..c.offset + c.len];
            // `ready` carries the scheduler's probe stream when it already
            // compressed the whole (small) slab — no second zfp pass then.
            let (kind, ready) = match self.codec {
                CodecChoice::Sz => (ChunkCodecKind::Sz, None),
                CodecChoice::Zfp => (ChunkCodecKind::Zfp, None),
                CodecChoice::Auto => {
                    if self.transform != Transform::Identity {
                        // Log-domain configs: zfp is not a candidate.
                        (ChunkCodecKind::Sz, None)
                    } else {
                        let (decision, blob) = crate::scheduler::choose_codec_with_blob(
                            slab,
                            c.shape,
                            self.predictor,
                            eb,
                            self.radius,
                        );
                        (decision.codec, blob)
                    }
                }
            };
            let (blob, stats) = match (kind, ready) {
                (ChunkCodecKind::Zfp, Some(blob)) => (blob, ChunkStats::default()),
                (ChunkCodecKind::Sz, _) => ChunkCodec::<T>::encode(&sz, slab, c.shape)?,
                (ChunkCodecKind::Zfp, None) => ChunkCodec::<T>::encode(&zfp, slab, c.shape)?,
            };
            Ok(EncodedChunk { rows: c.rows, codec: kind, blob, stats, eb })
        })
    }
}

// ---------------------------------------------------------------------------
// ArchiveWriter
// ---------------------------------------------------------------------------

/// A finalized streaming archive: the sink handed back, plus the final
/// compression report and total archive size.
pub struct FinishedArchive<W> {
    /// The sink passed to [`ArchiveWriter::create`], flushed, positioned
    /// after the last trailer byte.
    pub sink: W,
    /// Aggregated per-stage measurements, as the one-shot
    /// [`crate::compress_with_report`] would return them.
    pub report: CompressionReport,
    /// Total archive bytes written (header + blobs + trailer).
    pub bytes_written: u64,
}

/// Incremental compression session writing container v2.2 to any
/// [`Write`] sink with bounded memory.
///
/// Created with the full field [`Shape`] up front (the header is written
/// immediately); axis-0 slabs then arrive through
/// [`ArchiveWriter::write_slab`] in row order, are cut into
/// `cfg.chunking` chunks, compressed on the worker pool, and their blobs
/// appended to the sink right away. [`ArchiveWriter::finalize`] flushes
/// the final partial chunk and appends the trailer chunk index.
///
/// Peak memory is `O(slab + chunk_rows)` elements of carry-over plus the
/// per-thread encoder state — independent of the field and archive sizes.
///
/// Two configuration limits follow from single-pass operation:
///
/// * [`ErrorBoundMode::ValueRangeRelative`] needs the whole field's value
///   range before the first slab can be quantized, so `create` rejects it
///   with [`CompressError::InvalidConfig`]; resolve it to an absolute
///   bound first (one streaming min/max pass) or use the one-shot API.
/// * [`Chunking::Serial`](crate::Chunking::Serial) degenerates to one
///   whole-field chunk, which forces the writer to buffer every row until
///   `finalize` — legal, but it defeats the point; chunk the config.
///
/// See the [module docs](self) for a complete write/read example.
pub struct ArchiveWriter<T: Scalar, W: Write> {
    sink: W,
    shape: Shape,
    row_elems: usize,
    chunk_rows: usize,
    enc: SlabEncoder,
    /// Per-chunk planned bounds (quality-targeted mode ⇒ container v2.3);
    /// `None` writes v2.2 with the shared bound.
    plan: Option<Vec<f64>>,
    /// Carry-over rows not yet forming a complete chunk.
    buf: Vec<T>,
    /// Rows already encoded and written.
    rows_done: usize,
    /// Chunk index accumulated for the trailer: (rows, codec, blob len,
    /// eb).
    index: Vec<(usize, ChunkCodecKind, usize, f64)>,
    per_chunk: Vec<(ChunkCodecKind, ChunkStats)>,
    bytes_written: u64,
}

impl<T: Scalar, W: Write> ArchiveWriter<T, W> {
    /// Open a session: validate `cfg`, resolve the bound, and write the
    /// container header to `sink`.
    ///
    /// Fails with [`CompressError::InvalidConfig`] for configurations a
    /// single pass cannot honor (see the type docs) and for structurally
    /// invalid configs such as a literal `Chunking::Rows(0)`.
    pub fn create(sink: W, shape: Shape, cfg: &CompressorConfig) -> Result<Self, CompressError> {
        cfg.validate().map_err(CompressError::InvalidConfig)?;
        if matches!(cfg.bound, ErrorBoundMode::ValueRangeRelative(_)) {
            return Err(CompressError::InvalidConfig(
                "a value-range-relative bound needs the whole field's range before the first \
                 slab; resolve it to ErrorBoundMode::Abs first or use the one-shot compress"
                    .into(),
            ));
        }
        // The bound is range-independent here (checked above), so the
        // range argument is never read.
        let (abs_eb, transform) = resolve_bound(cfg, f64::NAN)?;
        Self::create_resolved(sink, shape, cfg, abs_eb, transform)
    }

    /// Open a **quality-targeted** session: one absolute error bound per
    /// axis-0 chunk, producing container v2.3 (the per-chunk bounds are
    /// recorded next to the codec tags in the trailer index and are
    /// authoritative for decoding).
    ///
    /// `ebs` must hold exactly one finite positive bound per chunk of the
    /// partition `cfg`'s chunking resolves to for `shape` (see
    /// [`crate::chunked::resolved_chunk_rows`]); the header's `abs_eb`
    /// records `max(ebs)` — the archive-wide worst-case pointwise
    /// guarantee. `cfg.bound` is ignored: planned bounds are always
    /// absolute, so point-wise relative configs are rejected with
    /// [`CompressError::InvalidConfig`].
    pub fn create_planned(
        sink: W,
        shape: Shape,
        cfg: &CompressorConfig,
        ebs: Vec<f64>,
    ) -> Result<Self, CompressError> {
        cfg.validate().map_err(CompressError::InvalidConfig)?;
        if matches!(cfg.bound, ErrorBoundMode::PointwiseRelative(_)) {
            return Err(CompressError::InvalidConfig(
                "per-chunk planned bounds are absolute; a point-wise relative config cannot \
                 be planned"
                    .into(),
            ));
        }
        let chunk_rows = crate::chunked::resolve_chunk_rows(cfg, shape);
        let n_chunks = shape.dim(0).div_ceil(chunk_rows);
        if ebs.len() != n_chunks {
            return Err(CompressError::InvalidConfig(format!(
                "plan has {} bounds but the chunking yields {} chunks ({} rows each over {} \
                 rows)",
                ebs.len(),
                n_chunks,
                chunk_rows,
                shape.dim(0)
            )));
        }
        let mut max_eb = 0.0f64;
        for (i, &eb) in ebs.iter().enumerate() {
            if !(eb.is_finite() && eb > 0.0) {
                return Err(CompressError::InvalidBound(format!(
                    "planned bound for chunk {i} is {eb}"
                )));
            }
            max_eb = max_eb.max(eb);
        }
        Self::create_inner(sink, shape, cfg, max_eb, Transform::Identity, Some(ebs))
    }

    /// `create` with the bound already resolved (crate-internal: lets the
    /// CLI resolve a value-range-relative bound via its own streaming
    /// min/max pass and still use the session).
    pub(crate) fn create_resolved(
        sink: W,
        shape: Shape,
        cfg: &CompressorConfig,
        abs_eb: f64,
        transform: Transform,
    ) -> Result<Self, CompressError> {
        Self::create_inner(sink, shape, cfg, abs_eb, transform, None)
    }

    /// Shared constructor: the presence of a per-chunk plan selects the
    /// container generation (v2.3 vs v2.2) baked into the header.
    fn create_inner(
        mut sink: W,
        shape: Shape,
        cfg: &CompressorConfig,
        abs_eb: f64,
        transform: Transform,
        plan: Option<Vec<f64>>,
    ) -> Result<Self, CompressError> {
        let enc = SlabEncoder::from_cfg(cfg, abs_eb, transform)?;
        let chunk_rows = crate::chunked::resolve_chunk_rows(cfg, shape);
        let header = Header {
            version: if plan.is_some() { VERSION_V2_3 } else { VERSION_V2_2 },
            scalar_tag: T::TAG,
            predictor: cfg.predictor,
            lossless: cfg.lossless,
            log_transform: transform != Transform::Identity,
            shape,
            abs_eb,
            radius: cfg.radius,
        };
        let mut head = Vec::with_capacity(96);
        write_header_prefix(&mut head, &header, T::TAG);
        sink.write_all(&head)?;
        Ok(ArchiveWriter {
            sink,
            shape,
            row_elems: shape.dims()[1..].iter().product::<usize>().max(1),
            chunk_rows,
            enc,
            plan,
            buf: Vec::new(),
            rows_done: 0,
            index: Vec::new(),
            per_chunk: Vec::new(),
            bytes_written: head.len() as u64,
        })
    }

    /// Rows buffered but not yet encoded.
    fn buffered_rows(&self) -> usize {
        self.buf.len() / self.row_elems
    }

    /// Nominal axis-0 rows per chunk this session resolved to.
    pub fn chunk_rows(&self) -> usize {
        self.chunk_rows
    }

    /// Archive bytes written so far (header + finished chunk blobs).
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Append the next axis-0 slab (rows `rows_so_far..rows_so_far+k`).
    ///
    /// The slab's trailing dimensions must match the field shape given to
    /// [`Self::create`]; its axis-0 extent is free — slab boundaries need
    /// not align with chunk boundaries, the writer carries partial chunks
    /// over. Feeding slabs of several `chunk_rows` at once keeps the
    /// worker pool busy.
    pub fn write_slab(&mut self, slab: &NdArray<T>) -> Result<(), CompressError> {
        let s = slab.shape();
        if s.ndim() != self.shape.ndim() || s.dims()[1..] != self.shape.dims()[1..] {
            return Err(CompressError::InvalidConfig(format!(
                "slab shape {:?} does not match the field's trailing dims {:?}",
                s.dims(),
                self.shape.dims()
            )));
        }
        let total = self.rows_done + self.buffered_rows() + s.dim(0);
        if total > self.shape.dim(0) {
            return Err(CompressError::InvalidConfig(format!(
                "slabs cover {total} rows but the field has {}",
                self.shape.dim(0)
            )));
        }
        self.buf.extend_from_slice(slab.as_slice());
        let complete = self.buffered_rows() / self.chunk_rows * self.chunk_rows;
        if complete > 0 {
            self.encode_rows(complete)?;
        }
        Ok(())
    }

    /// Encode the first `rows` buffered rows as chunks and write them.
    fn encode_rows(&mut self, rows: usize) -> Result<(), CompressError> {
        let elems = rows * self.row_elems;
        let mut dims = [0usize; MAX_DIMS];
        dims[..self.shape.ndim()].copy_from_slice(self.shape.dims());
        dims[0] = rows;
        let batch_shape = Shape::new(&dims[..self.shape.ndim()]);
        let chunks = slab_chunks(batch_shape, self.chunk_rows);
        let encoded = match &self.plan {
            Some(plan) => {
                // Slabs arrive in row order, so the batch's chunks are the
                // next `chunks.len()` entries of the whole-field plan.
                let base = self.index.len();
                let n = chunks.len();
                self.enc.encode_chunks_planned(
                    &self.buf[..elems],
                    chunks,
                    &plan[base..base + n],
                )?
            }
            None => self.enc.encode_chunks(&self.buf[..elems], chunks)?,
        };
        for ec in encoded {
            self.sink.write_all(&ec.blob)?;
            self.bytes_written += ec.blob.len() as u64;
            self.rows_done += ec.rows;
            self.index.push((ec.rows, ec.codec, ec.blob.len(), ec.eb));
            self.per_chunk.push((ec.codec, ec.stats));
        }
        self.buf.drain(..elems);
        Ok(())
    }

    /// Flush the final partial chunk, write the trailer index, flush the
    /// sink, and hand it back with the aggregated report.
    ///
    /// Fails with [`CompressError::InvalidConfig`] if the slabs written
    /// do not cover the field's axis-0 extent exactly. Dropping the
    /// writer without calling `finalize` leaves the sink without a
    /// trailer — an unreadable archive.
    pub fn finalize(mut self) -> Result<FinishedArchive<W>, CompressError> {
        let rem = self.buffered_rows();
        if rem > 0 {
            self.encode_rows(rem)?;
        }
        if self.rows_done != self.shape.dim(0) {
            return Err(CompressError::InvalidConfig(format!(
                "slabs cover {} of the field's {} rows",
                self.rows_done,
                self.shape.dim(0)
            )));
        }
        let mut trailer = Vec::new();
        write_trailer(&mut trailer, self.chunk_rows, &self.index, self.plan.is_some());
        self.sink.write_all(&trailer)?;
        self.sink.flush()?;
        self.bytes_written += trailer.len() as u64;
        let report = aggregate_report(
            &self.enc.quantizer,
            self.per_chunk,
            self.shape.len(),
            T::BITS,
            self.bytes_written as usize,
        );
        Ok(FinishedArchive { sink: self.sink, report, bytes_written: self.bytes_written })
    }
}

// ---------------------------------------------------------------------------
// ArchiveReader
// ---------------------------------------------------------------------------

/// Decode-side counters of one [`ArchiveReader`] session, for verifying
/// that region reads touch only the chunks they must.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReadStats {
    /// Chunks in the archive's index.
    pub chunks_total: usize,
    /// Chunk blobs decoded so far (a chunk decoded twice counts twice).
    pub chunks_decoded: u64,
    /// Compressed blob bytes fetched from the source so far.
    pub blob_bytes_read: u64,
}

/// Upper bound on the serialized header prefix: fixed bytes + 4 dims of
/// ≤ 10 varint bytes + the f64 bound + the radius varint, with slack.
const HEADER_READ_BYTES: usize = 96;

/// Random-access decompression session over any [`Read`]` + `[`Seek`]
/// source, for all container generations (v1, v2, v2.1, v2.2).
///
/// [`Self::open`] reads only the header and chunk index (for v2.2, via
/// the trailer at the end of the source); payload bytes are fetched and
/// decoded on demand by [`Self::read_all`], [`Self::read_chunk`] and
/// [`Self::read_rows`] — the latter decodes exactly the chunks whose row
/// ranges intersect the request, which [`Self::stats`] makes observable.
///
/// See the [module docs](self) for a complete write/read example.
pub struct ArchiveReader<R: Read + Seek> {
    src: R,
    header: Header,
    chunk_rows: usize,
    entries: Vec<ChunkEntry>,
    stats: ReadStats,
}

/// Seek to `at` and read exactly `len` bytes.
fn read_span<R: Read + Seek>(src: &mut R, at: u64, len: usize) -> Result<Vec<u8>, DecompressError> {
    src.seek(SeekFrom::Start(at))?;
    let mut buf = vec![0u8; len];
    src.read_exact(&mut buf)?;
    Ok(buf)
}

impl<R: Read + Seek> ArchiveReader<R> {
    /// Open an archive: parse the header and locate every chunk, without
    /// reading any payload.
    pub fn open(mut src: R) -> Result<Self, DecompressError> {
        let total_len = src.seek(SeekFrom::End(0))?;
        let head = read_span(&mut src, 0, HEADER_READ_BYTES.min(total_len as usize))?;
        let (header, header_end) = crate::container::read_header_prefix(&head)?;
        let d0 = header.shape.dim(0);
        let (chunk_rows, entries) = match header.version {
            VERSION_V1 => (
                d0,
                vec![ChunkEntry {
                    start_row: 0,
                    rows: d0,
                    offset: header_end,
                    len: (total_len as usize)
                        .checked_sub(header_end)
                        .ok_or(DecompressError::Corrupt("container shorter than header"))?,
                    codec: ChunkCodecKind::Sz,
                    eb: header.abs_eb,
                }],
            ),
            VERSION_V2_2 | VERSION_V2_3 => {
                if total_len < (header_end + TRAILER_SUFFIX_LEN) as u64 {
                    return Err(DecompressError::Corrupt("truncated v2.2 trailer"));
                }
                let suffix = read_span(
                    &mut src,
                    total_len - TRAILER_SUFFIX_LEN as u64,
                    TRAILER_SUFFIX_LEN,
                )?;
                let (tstart, tlen) = trailer_bounds(total_len, header_end as u64, &suffix)?;
                let trailer = read_span(&mut src, tstart, tlen as usize)?;
                parse_v2_2_trailer(&header, header_end, &trailer, tstart as usize)?
            }
            // v2 / v2.1: the index sits between header and blobs. Its
            // byte length is only known after parsing, so size the read
            // from the chunk count: first the two leading varints, then
            // at most 21 bytes per entry.
            _ => {
                let tagged = header.version != crate::container::VERSION_V2;
                let after = (total_len as usize).saturating_sub(header_end);
                let lead = read_span(&mut src, header_end as u64, after.min(20))?;
                let mut p = 0usize;
                let _chunk_rows =
                    get_uvarint(&lead, &mut p).ok_or(DecompressError::Corrupt("chunk rows"))?;
                let n = get_uvarint(&lead, &mut p)
                    .ok_or(DecompressError::Corrupt("chunk count"))? as usize;
                if n == 0 || n > d0 {
                    return Err(DecompressError::Corrupt("bad chunk count"));
                }
                let index_max = 20 + n * 21;
                let buf = read_span(&mut src, header_end as u64, after.min(index_max))?;
                let mut p = 0usize;
                let (chunk_rows, raw) = parse_index_body(&buf, &mut p, tagged, false, d0)?;
                let entries =
                    entries_from_raw(&header, header_end + p, raw, total_len as usize)?;
                (chunk_rows, entries)
            }
        };
        let chunks_total = entries.len();
        Ok(ArchiveReader {
            src,
            header,
            chunk_rows,
            entries,
            stats: ReadStats { chunks_total, ..ReadStats::default() },
        })
    }

    /// The archive's parsed header.
    pub fn header(&self) -> &Header {
        &self.header
    }

    /// Nominal axis-0 rows per chunk (the last chunk may hold fewer).
    pub fn chunk_rows(&self) -> usize {
        self.chunk_rows
    }

    /// Number of independently-decodable chunks.
    pub fn n_chunks(&self) -> usize {
        self.entries.len()
    }

    /// The located chunk entries, in slab order.
    pub fn entries(&self) -> &[ChunkEntry] {
        &self.entries
    }

    /// The chunk partition in [`ChunkTable`] form (as
    /// [`crate::chunk_table`] returns for in-memory archives).
    pub fn chunk_table(&self) -> ChunkTable {
        ChunkTable { chunk_rows: self.chunk_rows, entries: self.entries.clone() }
    }

    /// Decode counters accumulated since [`Self::open`].
    pub fn stats(&self) -> ReadStats {
        self.stats
    }

    fn check_scalar<T: Scalar>(&self) -> Result<(), DecompressError> {
        if self.header.scalar_tag != T::TAG {
            return Err(DecompressError::ScalarMismatch {
                expected: T::TAG,
                found: self.header.scalar_tag,
            });
        }
        Ok(())
    }

    /// Fetch and decode one chunk blob into `out` (`out.len()` must equal
    /// the chunk's element count).
    fn decode_entry_into<T: Scalar>(
        &mut self,
        entry: ChunkEntry,
        cshape: Shape,
        out: &mut [T],
    ) -> Result<(), DecompressError> {
        let blob = read_span(&mut self.src, entry.offset as u64, entry.len)?;
        if self.header.version == VERSION_V1 {
            // The v1 "chunk" is the whole container body: four sections
            // with no per-chunk flag byte; the header's lossless flag is
            // authoritative.
            let mut pos = 0usize;
            let body = read_sections_body::<T>(&blob, &mut pos)?;
            decode_stream(
                &body,
                self.header.lossless,
                cshape,
                self.header.predictor,
                LinearQuantizer::new(self.header.abs_eb, self.header.radius),
                transform_from_header(&self.header),
                out,
            )?;
        } else {
            decode_chunk_blob(&blob, &self.header, entry.codec, entry.eb, cshape, out)?;
        }
        self.stats.chunks_decoded += 1;
        self.stats.blob_bytes_read += entry.len as u64;
        Ok(())
    }

    /// Decode a single chunk (random access). Returns the slab's first
    /// axis-0 row and the decoded slab as a standalone array.
    pub fn read_chunk<T: Scalar>(
        &mut self,
        chunk: usize,
    ) -> Result<(usize, NdArray<T>), DecompressError> {
        self.check_scalar::<T>()?;
        let Some(&entry) = self.entries.get(chunk) else {
            return Err(DecompressError::ChunkOutOfRange {
                requested: chunk,
                available: self.entries.len(),
            });
        };
        let cshape = entry_shape(self.header.shape, entry);
        let mut out = vec![T::zero(); cshape.len()];
        self.decode_entry_into(entry, cshape, &mut out)?;
        Ok((entry.start_row, NdArray::from_vec(cshape, out)))
    }

    /// Decode the axis-0 row range `rows` (non-empty, within the field),
    /// touching only the chunks that intersect it.
    ///
    /// Returns an array of shape `[rows.len(), dims[1..]]` whose elements
    /// equal the corresponding rows of a full decompression exactly.
    pub fn read_rows<T: Scalar>(
        &mut self,
        rows: Range<usize>,
    ) -> Result<NdArray<T>, DecompressError> {
        self.check_scalar::<T>()?;
        let d0 = self.header.shape.dim(0);
        if rows.start >= rows.end || rows.end > d0 {
            return Err(DecompressError::RowsOutOfRange { requested_end: rows.end, rows: d0 });
        }
        let shape = self.header.shape;
        let row_elems: usize = shape.dims()[1..].iter().product::<usize>().max(1);
        let out_rows = rows.end - rows.start;
        let mut out = vec![T::zero(); out_rows * row_elems];
        for i in 0..self.entries.len() {
            let entry = self.entries[i];
            let e_start = entry.start_row;
            let e_end = e_start + entry.rows;
            if e_end <= rows.start || e_start >= rows.end {
                continue;
            }
            let cshape = entry_shape(shape, entry);
            if e_start >= rows.start && e_end <= rows.end {
                // Chunk fully inside the range: decode straight into the
                // output, no intermediate slab.
                let dst = &mut out
                    [(e_start - rows.start) * row_elems..(e_end - rows.start) * row_elems];
                self.decode_entry_into(entry, cshape, dst)?;
            } else {
                // Boundary chunk: decode to a scratch slab, copy the
                // intersecting rows.
                let lo = rows.start.max(e_start);
                let hi = rows.end.min(e_end);
                let mut tmp = vec![T::zero(); cshape.len()];
                self.decode_entry_into(entry, cshape, &mut tmp)?;
                out[(lo - rows.start) * row_elems..(hi - rows.start) * row_elems]
                    .copy_from_slice(&tmp[(lo - e_start) * row_elems..(hi - e_start) * row_elems]);
            }
        }
        let mut dims = [0usize; MAX_DIMS];
        dims[..shape.ndim()].copy_from_slice(shape.dims());
        dims[0] = out_rows;
        Ok(NdArray::from_vec(Shape::new(&dims[..shape.ndim()]), out))
    }

    /// Decode the whole field, chunk by chunk (memory: the output plus
    /// one compressed blob at a time).
    pub fn read_all<T: Scalar>(&mut self) -> Result<NdArray<T>, DecompressError> {
        self.check_scalar::<T>()?;
        let shape = self.header.shape;
        let row_elems: usize = shape.dims()[1..].iter().product::<usize>().max(1);
        let mut out = vec![T::zero(); shape.len()];
        for i in 0..self.entries.len() {
            let entry = self.entries[i];
            let cshape = entry_shape(shape, entry);
            let dst = &mut out
                [entry.start_row * row_elems..(entry.start_row + entry.rows) * row_elems];
            self.decode_entry_into(entry, cshape, dst)?;
        }
        Ok(NdArray::from_vec(shape, out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunked::decompress_with_threads;
    use crate::container::{chunk_table, peek_header};
    use crate::pipeline::{compress, decompress};
    use std::io::Cursor;

    fn wavy(shape: Shape) -> NdArray<f32> {
        let mut lin = 0u64;
        NdArray::from_fn(shape, |ix| {
            let mut v = 0.0f64;
            for (a, &c) in ix.iter().enumerate() {
                v += ((c as f64) * 0.13 * (a + 1) as f64).sin() * (8.0 / (a + 1) as f64);
            }
            lin += 1;
            let mut h = lin;
            h ^= h >> 33;
            h = h.wrapping_mul(0xff51afd7ed558ccd);
            h ^= h >> 33;
            v += ((h >> 40) as f64 / (1u64 << 24) as f64 - 0.5) * 0.05;
            v as f32
        })
    }

    fn cfg() -> CompressorConfig {
        CompressorConfig::new(PredictorKind::Lorenzo, ErrorBoundMode::Abs(1e-3))
            .chunked(6)
            .with_threads(2)
    }

    /// Stream `field` through a writer in `slab_rows`-row slabs.
    fn stream_archive(field: &NdArray<f32>, cfg: &CompressorConfig, slab_rows: usize) -> Vec<u8> {
        let shape = field.shape();
        let row_elems: usize = shape.dims()[1..].iter().product::<usize>().max(1);
        let mut w = ArchiveWriter::<f32, Vec<u8>>::create(Vec::new(), shape, cfg).unwrap();
        let mut row = 0;
        while row < shape.dim(0) {
            let rows = slab_rows.min(shape.dim(0) - row);
            let mut dims = [0usize; MAX_DIMS];
            dims[..shape.ndim()].copy_from_slice(shape.dims());
            dims[0] = rows;
            let slab = NdArray::from_vec(
                Shape::new(&dims[..shape.ndim()]),
                field.as_slice()[row * row_elems..(row + rows) * row_elems].to_vec(),
            );
            w.write_slab(&slab).unwrap();
            row += rows;
        }
        w.finalize().unwrap().sink
    }

    #[test]
    fn writer_bytes_independent_of_slab_batching() {
        // The archive must be a pure function of (field, cfg): feeding
        // rows in different slab sizes — aligned or not with chunk
        // boundaries — must produce identical bytes.
        let field = wavy(Shape::d3(25, 8, 6));
        let reference = stream_archive(&field, &cfg(), 25);
        for slab_rows in [1, 4, 6, 7, 13] {
            let bytes = stream_archive(&field, &cfg(), slab_rows);
            assert_eq!(bytes, reference, "slab_rows={slab_rows}");
        }
        assert_eq!(peek_header(&reference).unwrap().version, 4);
    }

    #[test]
    fn v2_2_decodes_via_in_memory_paths() {
        // The buffer-based decompressor and chunk inspection handle v2.2.
        let field = wavy(Shape::d3(20, 10, 8));
        let bytes = stream_archive(&field, &cfg(), 20);
        let back = decompress::<f32>(&bytes).unwrap();
        for (&a, &b) in field.as_slice().iter().zip(back.as_slice()) {
            assert!((a - b).abs() <= 1e-3 * 1.001);
        }
        let back2 = decompress_with_threads::<f32>(&bytes, 3).unwrap();
        assert_eq!(back.as_slice(), back2.as_slice());
        assert_eq!(chunk_table(&bytes).unwrap().entries.len(), 4);
    }

    #[test]
    fn v2_2_chunks_byte_identical_to_v2() {
        // Same field, same chunking: each v2.2 blob must equal its v2
        // counterpart — the formats differ only in where the index lives.
        let field = wavy(Shape::d3(20, 10, 8));
        let streamed = stream_archive(&field, &cfg(), 5);
        let one_shot = compress(&field, &cfg()).unwrap().bytes;
        assert_eq!(peek_header(&one_shot).unwrap().version, 2);
        let t_stream = chunk_table(&streamed).unwrap();
        let t_one = chunk_table(&one_shot).unwrap();
        assert_eq!(t_stream.entries.len(), t_one.entries.len());
        for (a, b) in t_stream.entries.iter().zip(&t_one.entries) {
            assert_eq!(a.rows, b.rows);
            assert_eq!(
                &streamed[a.offset..a.offset + a.len],
                &one_shot[b.offset..b.offset + b.len],
                "chunk at row {} diverged",
                a.start_row
            );
        }
    }

    #[test]
    fn reader_reads_all_chunks_and_rows() {
        let field = wavy(Shape::d3(23, 6, 5));
        let bytes = stream_archive(&field, &cfg(), 9);
        let full = decompress::<f32>(&bytes).unwrap();
        let mut r = ArchiveReader::open(Cursor::new(&bytes[..])).unwrap();
        assert_eq!(r.n_chunks(), 4); // 6+6+6+5
        let all = r.read_all::<f32>().unwrap();
        assert_eq!(all.as_slice(), full.as_slice());
        let (start, slab) = r.read_chunk::<f32>(2).unwrap();
        assert_eq!(start, 12);
        assert_eq!(slab.as_slice(), &full.as_slice()[12 * 30..18 * 30]);
        assert!(matches!(
            r.read_chunk::<f32>(4),
            Err(DecompressError::ChunkOutOfRange { .. })
        ));
    }

    #[test]
    fn read_rows_decodes_only_intersecting_chunks() {
        let field = wavy(Shape::d2(30, 12));
        let bytes = stream_archive(&field, &cfg(), 30); // chunks of 6 rows
        let full = decompress::<f32>(&bytes).unwrap();
        let mut r = ArchiveReader::open(Cursor::new(&bytes[..])).unwrap();
        // Rows 7..11 live entirely inside chunk 1 (rows 6..12).
        let part = r.read_rows::<f32>(7..11).unwrap();
        assert_eq!(part.shape().dims(), &[4, 12]);
        assert_eq!(part.as_slice(), &full.as_slice()[7 * 12..11 * 12]);
        assert_eq!(r.stats().chunks_decoded, 1, "one intersecting chunk");
        // Rows 5..19 intersect chunks 0, 1, 2, 3.
        let part = r.read_rows::<f32>(5..19).unwrap();
        assert_eq!(part.as_slice(), &full.as_slice()[5 * 12..19 * 12]);
        assert_eq!(r.stats().chunks_decoded, 1 + 4);
        // Out-of-range and empty requests are errors.
        assert!(matches!(
            r.read_rows::<f32>(0..31),
            Err(DecompressError::RowsOutOfRange { .. })
        ));
        assert!(matches!(
            r.read_rows::<f32>(3..3),
            Err(DecompressError::RowsOutOfRange { .. })
        ));
    }

    #[test]
    fn reader_handles_all_container_generations() {
        let field = wavy(Shape::d2(24, 10));
        let archives = [
            ("v1", compress(&field, &CompressorConfig::new(PredictorKind::Lorenzo, ErrorBoundMode::Abs(1e-3))).unwrap().bytes),
            ("v2", compress(&field, &cfg()).unwrap().bytes),
            (
                "v2.1",
                compress(&field, &cfg().with_codec(CodecChoice::Auto)).unwrap().bytes,
            ),
            ("v2.2", stream_archive(&field, &cfg(), 7)),
        ];
        for (name, bytes) in archives {
            let full = decompress::<f32>(&bytes).unwrap();
            let mut r = ArchiveReader::open(Cursor::new(&bytes[..])).unwrap();
            let all = r.read_all::<f32>().unwrap();
            assert_eq!(all.as_slice(), full.as_slice(), "{name}: read_all");
            let part = r.read_rows::<f32>(9..17).unwrap();
            assert_eq!(
                part.as_slice(),
                &full.as_slice()[9 * 10..17 * 10],
                "{name}: read_rows"
            );
        }
    }

    #[test]
    fn writer_rejects_unresolvable_and_invalid_configs() {
        let shape = Shape::d2(16, 4);
        let rel = CompressorConfig::new(
            PredictorKind::Lorenzo,
            ErrorBoundMode::ValueRangeRelative(1e-3),
        )
        .chunked(4);
        assert!(matches!(
            ArchiveWriter::<f32, Vec<u8>>::create(Vec::new(), shape, &rel),
            Err(CompressError::InvalidConfig(_))
        ));
        let mut zero_rows = cfg();
        zero_rows.chunking = crate::Chunking::Rows(0);
        assert!(matches!(
            ArchiveWriter::<f32, Vec<u8>>::create(Vec::new(), shape, &zero_rows),
            Err(CompressError::InvalidConfig(_))
        ));
    }

    #[test]
    fn writer_rejects_mismatched_and_excess_slabs() {
        let mut w =
            ArchiveWriter::<f32, Vec<u8>>::create(Vec::new(), Shape::d2(8, 4), &cfg()).unwrap();
        // Wrong trailing dims.
        assert!(matches!(
            w.write_slab(&NdArray::<f32>::zeros(Shape::d2(2, 5))),
            Err(CompressError::InvalidConfig(_))
        ));
        // Too many rows.
        assert!(matches!(
            w.write_slab(&NdArray::<f32>::zeros(Shape::d2(9, 4))),
            Err(CompressError::InvalidConfig(_))
        ));
        // Short coverage fails at finalize.
        w.write_slab(&NdArray::<f32>::zeros(Shape::d2(4, 4))).unwrap();
        assert!(matches!(w.finalize(), Err(CompressError::InvalidConfig(_))));
    }

    #[test]
    fn auto_codec_streaming_roundtrip() {
        // The scheduler runs per chunk inside the writer exactly as in
        // the one-shot adaptive pipeline.
        let field = rq_datagen::fields::mixed_smooth_turbulent(Shape::d3(24, 10, 10), 12, 40.0);
        let c = CompressorConfig::new(PredictorKind::Lorenzo, ErrorBoundMode::Abs(1e-4))
            .chunked(6)
            .with_codec(CodecChoice::Auto)
            .with_threads(2);
        let bytes = stream_archive(&field, &c, 8);
        let table = chunk_table(&bytes).unwrap();
        let kinds: Vec<ChunkCodecKind> = table.entries.iter().map(|e| e.codec).collect();
        assert!(kinds.contains(&ChunkCodecKind::Sz) && kinds.contains(&ChunkCodecKind::Zfp));
        // Identical chunk bytes to the one-shot v2.1 container.
        let one_shot = compress(&field, &c).unwrap().bytes;
        let t_one = chunk_table(&one_shot).unwrap();
        for (a, b) in table.entries.iter().zip(&t_one.entries) {
            assert_eq!(a.codec, b.codec);
            assert_eq!(
                &bytes[a.offset..a.offset + a.len],
                &one_shot[b.offset..b.offset + b.len]
            );
        }
        let mut r = ArchiveReader::open(Cursor::new(&bytes[..])).unwrap();
        let all = r.read_all::<f32>().unwrap();
        for (&x, &y) in field.as_slice().iter().zip(all.as_slice()) {
            assert!((x - y).abs() <= 1e-4 * 1.001);
        }
    }

    #[test]
    fn planned_writer_roundtrips_per_chunk_bounds() {
        // Heterogeneous plan: every chunk must honor *its own* bound, the
        // container must be v2.3, and the index must echo the plan.
        let field = wavy(Shape::d3(24, 8, 6));
        let plan = vec![1e-2, 1e-4, 2e-3, 5e-5];
        let mut w = ArchiveWriter::<f32, Vec<u8>>::create_planned(
            Vec::new(),
            field.shape(),
            &cfg(),
            plan.clone(),
        )
        .unwrap();
        w.write_slab(&field).unwrap();
        let bytes = w.finalize().unwrap().sink;
        assert_eq!(peek_header(&bytes).unwrap().version, 5);
        assert_eq!(peek_header(&bytes).unwrap().abs_eb, 1e-2, "header bound = max(plan)");
        let table = chunk_table(&bytes).unwrap();
        let ebs: Vec<f64> = table.entries.iter().map(|e| e.eb).collect();
        assert_eq!(ebs, plan);
        // Per-chunk bound conformance through every decode path.
        let full = decompress::<f32>(&bytes).unwrap();
        let mut r = ArchiveReader::open(Cursor::new(&bytes[..])).unwrap();
        let streamed = r.read_all::<f32>().unwrap();
        assert_eq!(full.as_slice(), streamed.as_slice());
        let row_elems = 8 * 6;
        for (entry, &eb) in table.entries.iter().zip(&plan) {
            let lo = entry.start_row * row_elems;
            let hi = (entry.start_row + entry.rows) * row_elems;
            for (a, b) in field.as_slice()[lo..hi].iter().zip(&full.as_slice()[lo..hi]) {
                assert!(((a - b).abs() as f64) <= eb * (1.0 + 1e-6), "chunk bound {eb}");
            }
        }
        // A tighter chunk really is reconstructed more accurately than a
        // loose one (the plan is not a no-op).
        let err_of = |i: usize| -> f64 {
            let e = table.entries[i];
            field.as_slice()[e.start_row * row_elems..(e.start_row + e.rows) * row_elems]
                .iter()
                .zip(&full.as_slice()[e.start_row * row_elems..(e.start_row + e.rows) * row_elems])
                .map(|(a, b)| ((a - b).abs()) as f64)
                .fold(0.0, f64::max)
        };
        assert!(err_of(3) <= 5e-5 * 1.000001);
        assert!(err_of(0) > 5e-5, "loose chunk should actually use its budget");
    }

    #[test]
    fn uniform_plan_blobs_match_fixed_bound_v2_2() {
        // A plan with one bound everywhere must produce chunk blobs
        // byte-identical to the fixed-bound v2.2 session; only the index
        // generation differs.
        let field = wavy(Shape::d3(20, 6, 5));
        let c = cfg();
        let fixed = stream_archive(&field, &c, 20);
        let mut w = ArchiveWriter::<f32, Vec<u8>>::create_planned(
            Vec::new(),
            field.shape(),
            &c,
            vec![1e-3; 4],
        )
        .unwrap();
        w.write_slab(&field).unwrap();
        let planned = w.finalize().unwrap().sink;
        assert_eq!(peek_header(&fixed).unwrap().version, 4);
        assert_eq!(peek_header(&planned).unwrap().version, 5);
        let tf = chunk_table(&fixed).unwrap();
        let tp = chunk_table(&planned).unwrap();
        assert_eq!(tf.entries.len(), tp.entries.len());
        for (a, b) in tf.entries.iter().zip(&tp.entries) {
            assert_eq!(a.codec, b.codec);
            assert_eq!(
                &fixed[a.offset..a.offset + a.len],
                &planned[b.offset..b.offset + b.len]
            );
        }
    }

    #[test]
    fn planned_writer_rejects_bad_plans() {
        let shape = Shape::d2(16, 4);
        // Wrong plan length.
        assert!(matches!(
            ArchiveWriter::<f32, Vec<u8>>::create_planned(
                Vec::new(),
                shape,
                &cfg(),
                vec![1e-3; 2]
            ),
            Err(CompressError::InvalidConfig(_))
        ));
        // Non-finite / non-positive bounds.
        for bad in [f64::NAN, 0.0, -1.0, f64::INFINITY] {
            assert!(matches!(
                ArchiveWriter::<f32, Vec<u8>>::create_planned(
                    Vec::new(),
                    shape,
                    &cfg(),
                    vec![1e-3, bad, 1e-3]
                ),
                Err(CompressError::InvalidBound(_))
            ));
        }
        // Point-wise relative configs cannot be planned.
        let rel = CompressorConfig::new(
            PredictorKind::Lorenzo,
            ErrorBoundMode::PointwiseRelative(1e-3),
        )
        .chunked(6);
        assert!(matches!(
            ArchiveWriter::<f32, Vec<u8>>::create_planned(Vec::new(), shape, &rel, vec![1e-3; 3]),
            Err(CompressError::InvalidConfig(_))
        ));
    }

    #[test]
    fn planned_auto_codec_schedules_per_chunk_bound() {
        // Under Auto, the scheduler sees each chunk's own bound: the same
        // turbulent slab flips from zfp (tight bound, everything escapes)
        // to sz (loose bound) purely by plan.
        let field = rq_datagen::fields::mixed_smooth_turbulent(Shape::d3(12, 10, 10), 0, 40.0);
        let c = CompressorConfig::new(PredictorKind::Lorenzo, ErrorBoundMode::Abs(1e-4))
            .chunked(6)
            .with_codec(CodecChoice::Auto);
        let archive = |plan: Vec<f64>| {
            let mut w = ArchiveWriter::<f32, Vec<u8>>::create_planned(
                Vec::new(),
                field.shape(),
                &c,
                plan,
            )
            .unwrap();
            w.write_slab(&field).unwrap();
            w.finalize().unwrap().sink
        };
        let tight = archive(vec![1e-4, 1e-4]);
        let loose = archive(vec![30.0, 30.0]);
        let kinds = |b: &[u8]| -> Vec<ChunkCodecKind> {
            chunk_table(b).unwrap().entries.iter().map(|e| e.codec).collect()
        };
        assert!(kinds(&tight).iter().all(|&k| k == ChunkCodecKind::Zfp), "{:?}", kinds(&tight));
        assert!(kinds(&loose).iter().all(|&k| k == ChunkCodecKind::Sz), "{:?}", kinds(&loose));
    }

    #[test]
    fn reader_scalar_mismatch_detected() {
        let field = wavy(Shape::d2(12, 6));
        let bytes = stream_archive(&field, &cfg(), 12);
        let mut r = ArchiveReader::open(Cursor::new(&bytes[..])).unwrap();
        assert!(matches!(
            r.read_all::<f64>(),
            Err(DecompressError::ScalarMismatch { .. })
        ));
    }

    #[test]
    fn finished_archive_report_matches_one_shot() {
        let field = wavy(Shape::d3(20, 8, 8));
        let shape = field.shape();
        let mut w = ArchiveWriter::<f32, Vec<u8>>::create(Vec::new(), shape, &cfg()).unwrap();
        w.write_slab(&field).unwrap();
        let fin = w.finalize().unwrap();
        assert_eq!(fin.bytes_written as usize, fin.sink.len());
        let (_, rep) = crate::pipeline::compress_with_report(&field, &cfg()).unwrap();
        assert_eq!(fin.report.n_chunks, rep.n_chunks);
        assert_eq!(fin.report.n_quantized, rep.n_quantized);
        assert_eq!(fin.report.n_unpredictable, rep.n_unpredictable);
        assert_eq!(fin.report.huffman_bytes, rep.huffman_bytes);
        assert_eq!(fin.report.symbol_histogram, rep.symbol_histogram);
        // Container size differs only by index placement/encoding.
        assert_eq!(fin.report.n_elements, rep.n_elements);
    }
}
