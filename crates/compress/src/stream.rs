//! Streaming archive sessions over `std::io` streams.
//!
//! The one-shot API ([`crate::compress`] / [`crate::decompress`]) is
//! buffer-in/buffer-out: peak memory is on the order of the uncompressed
//! field *plus* the archive. This module provides the session form of the
//! same pipeline, designed for fields larger than RAM:
//!
//! * [`ArchiveWriter`] accepts axis-0 slabs incrementally, runs the
//!   per-chunk codec scheduler (including [`CodecChoice::Auto`]) on each
//!   slab as it arrives using the worker pool, and writes container
//!   **v2.2** — chunk blobs first, chunk index in a trailer — so nothing
//!   but the small index and at most a slab's worth of carry-over rows is
//!   ever buffered. The sink only needs [`Write`]; archives can stream
//!   into a pipe.
//! * [`ArchiveReader`] parses the header and chunk index lazily from any
//!   [`Read`]` + `[`Seek`] source (all five container generations) and
//!   decodes on demand: [`ArchiveReader::read_all`],
//!   [`ArchiveReader::read_chunk`], and [`ArchiveReader::read_rows`],
//!   which touches only the chunks intersecting the requested row range
//!   (verifiable through [`ArchiveReader::stats`]). With
//!   [`ArchiveReader::with_threads`] decoding fans out to a worker pool
//!   behind a bounded read-ahead window, and
//!   [`ArchiveReader::decompress_rows`] /
//!   [`ArchiveReader::decompress_to_writer`] stream the field out in row
//!   order without ever holding it resident.
//! * [`ConcurrentReader`] is the shareable form of the reader: one open
//!   archive handle, cloneable across threads, serving overlapping
//!   `read_rows`/`read_chunk` requests with per-request [`ReadStats`].
//!
//! The per-chunk encode core (`SlabEncoder`, crate-internal) is shared
//! with the one-shot chunked pipeline, so a v2.2 archive's chunk blobs
//! are byte-identical to the blobs a v2/v2.1 container would hold for the
//! same chunk partition, and the one-shot functions are thin wrappers
//! over the same machinery.
//!
//! ```
//! use rq_compress::{ArchiveReader, ArchiveWriter, CompressorConfig};
//! use rq_grid::{NdArray, Shape};
//! use rq_predict::PredictorKind;
//! use rq_quant::ErrorBoundMode;
//!
//! let cfg = CompressorConfig::new(PredictorKind::Lorenzo, ErrorBoundMode::Abs(1e-3))
//!     .chunked(8);
//! // Write four 8-row slabs of a 32×16 field into an in-memory sink
//! // (any `Write` works the same way — a `File`, a socket, a pipe).
//! let mut writer = ArchiveWriter::<f32, _>::create(Vec::new(), Shape::d2(32, 16), &cfg).unwrap();
//! for slab_idx in 0..4 {
//!     let slab = NdArray::<f32>::from_fn(Shape::d2(8, 16), |ix| {
//!         (((slab_idx * 8 + ix[0]) as f32) * 0.2).sin() + ix[1] as f32 * 0.01
//!     });
//!     writer.write_slab(&slab).unwrap();
//! }
//! let finished = writer.finalize().unwrap();
//!
//! // Random-access region read: only intersecting chunks are decoded.
//! let mut reader = ArchiveReader::open(std::io::Cursor::new(finished.sink)).unwrap();
//! let rows = reader.read_rows::<f32>(10..22).unwrap();
//! assert_eq!(rows.shape().dims(), &[12, 16]);
//! assert_eq!(reader.stats().chunks_decoded, 2); // rows 10..22 span chunks 1 and 2
//! ```

use crate::chunked::{aggregate_report, decode_entry_blob, entry_shape, run_on_workers};
use crate::codec::{ChunkCodec, ChunkStats, SzChunkCodec, ZfpChunkCodec};
use crate::config::{CodecChoice, CompressorConfig, LosslessStage};
use crate::container::{
    read_archive_layout, read_span_into, write_header_prefix, write_trailer, ChunkCodecKind,
    ChunkEntry, ChunkTable, CompressError, DecompressError, Header, VERSION_V2_2, VERSION_V2_3,
    VERSION_V2_4,
};
use crate::mmap::SourceMap;
use crate::pipeline::{resolve_bound, Transform};
use crate::pool::{BytePool, SlabPool};
use crate::report::CompressionReport;
use rq_grid::{slab_chunks, ChunkSpec, NdArray, Scalar, Shape, MAX_DIMS};
use rq_predict::PredictorKind;
use rq_quant::{ErrorBoundMode, LinearQuantizer};
use std::collections::BTreeMap;
use std::io::{Read, Seek, Write};
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};

// ---------------------------------------------------------------------------
// Shared per-chunk encode core
// ---------------------------------------------------------------------------

/// One encoded chunk produced by [`SlabEncoder::encode_chunks`].
pub(crate) struct EncodedChunk {
    pub rows: usize,
    pub codec: ChunkCodecKind,
    pub blob: Vec<u8>,
    pub stats: ChunkStats,
    /// Absolute bound this chunk was quantized with (the shared bound, or
    /// the chunk's planned bound in quality-targeted mode).
    pub eb: f64,
}

/// The per-chunk encode core shared by the one-shot chunked pipeline and
/// the streaming [`ArchiveWriter`]: codec policy resolution (fixed sz,
/// fixed zfp, or the ratio-driven scheduler) plus the worker pool.
///
/// Encoding is a pure function of `(chunk data, chunk shape)` and this
/// struct's configuration, so container bytes are independent of both the
/// worker-thread count and of how rows were batched into `write_slab`
/// calls.
pub(crate) struct SlabEncoder {
    pub predictor: PredictorKind,
    pub quantizer: LinearQuantizer,
    pub abs_eb: f64,
    pub transform: Transform,
    pub lossless: LosslessStage,
    pub codec: CodecChoice,
    pub radius: u32,
    pub threads: usize,
}

impl SlabEncoder {
    /// Build the encoder from a config and the resolved bound/transform.
    pub fn from_cfg(
        cfg: &CompressorConfig,
        abs_eb: f64,
        transform: Transform,
    ) -> Result<SlabEncoder, CompressError> {
        if cfg.codec == CodecChoice::Zfp && transform != Transform::Identity {
            return Err(CompressError::Unsupported(
                "point-wise relative bounds need the sz codec (zfp has no log-domain escape \
                 path); use codec sz or auto"
                    .into(),
            ));
        }
        Ok(SlabEncoder {
            predictor: cfg.predictor,
            quantizer: LinearQuantizer::new(abs_eb, cfg.radius),
            abs_eb,
            transform,
            lossless: cfg.lossless,
            codec: cfg.codec,
            radius: cfg.radius,
            threads: cfg.resolved_threads(),
        })
    }

    /// Encode a batch of chunks of `data` concurrently on the worker
    /// pool, every chunk under the encoder's shared bound. Results come
    /// back in chunk order.
    pub fn encode_chunks<T: Scalar>(
        &self,
        data: &[T],
        chunks: Vec<ChunkSpec>,
    ) -> Result<Vec<EncodedChunk>, CompressError> {
        let ebs = vec![self.abs_eb; chunks.len()];
        self.encode_chunks_planned(data, chunks, &ebs)
    }

    /// [`Self::encode_chunks`] with one absolute bound per chunk (the
    /// quality-targeted v2.3 path; `ebs.len()` must equal `chunks.len()`).
    /// Each chunk's quantizer/tolerance — and, under
    /// [`CodecChoice::Auto`], the scheduler's decision — uses that chunk's
    /// bound, so blob bytes for a uniform plan equal the fixed-bound path
    /// exactly.
    pub fn encode_chunks_planned<T: Scalar>(
        &self,
        data: &[T],
        chunks: Vec<ChunkSpec>,
        ebs: &[f64],
    ) -> Result<Vec<EncodedChunk>, CompressError> {
        debug_assert_eq!(chunks.len(), ebs.len());
        let items: Vec<(ChunkSpec, f64)> =
            chunks.into_iter().zip(ebs.iter().copied()).collect();
        run_on_workers(items, self.threads, |(c, eb)| -> Result<EncodedChunk, CompressError> {
            let sz = SzChunkCodec::new(
                self.predictor,
                LinearQuantizer::new(eb, self.radius),
                self.lossless,
            )
            .with_transform(self.transform);
            let zfp = ZfpChunkCodec::new(eb);
            let rolz = crate::rolz::RolzChunkCodec::new(
                self.predictor,
                LinearQuantizer::new(eb, self.radius),
            )
            .with_transform(self.transform);
            let slab = &data[c.offset..c.offset + c.len];
            // `ready` carries the scheduler's probe stream when it already
            // compressed the whole (small) slab — no second zfp pass then.
            let (kind, ready) = match self.codec {
                CodecChoice::Sz => (ChunkCodecKind::Sz, None),
                CodecChoice::Zfp => (ChunkCodecKind::Zfp, None),
                CodecChoice::Rolz => (ChunkCodecKind::Rolz, None),
                CodecChoice::Auto => {
                    if self.transform != Transform::Identity {
                        // Log-domain configs: the probes are not
                        // calibrated, every chunk stays on SZ.
                        (ChunkCodecKind::Sz, None)
                    } else {
                        let (decision, blob) = crate::scheduler::choose_codec_with_blob(
                            slab,
                            c.shape,
                            self.predictor,
                            eb,
                            self.radius,
                        );
                        (decision.codec, blob)
                    }
                }
            };
            let (blob, stats) = match (kind, ready) {
                (ChunkCodecKind::Zfp, Some(blob)) => (blob, ChunkStats::default()),
                (ChunkCodecKind::Sz, _) => ChunkCodec::<T>::encode(&sz, slab, c.shape)?,
                (ChunkCodecKind::Zfp, None) => ChunkCodec::<T>::encode(&zfp, slab, c.shape)?,
                (ChunkCodecKind::Rolz, _) => ChunkCodec::<T>::encode(&rolz, slab, c.shape)?,
            };
            Ok(EncodedChunk { rows: c.rows, codec: kind, blob, stats, eb })
        })
    }
}

// ---------------------------------------------------------------------------
// ArchiveWriter
// ---------------------------------------------------------------------------

/// A finalized streaming archive: the sink handed back, plus the final
/// compression report and total archive size.
pub struct FinishedArchive<W> {
    /// The sink passed to [`ArchiveWriter::create`], flushed, positioned
    /// after the last trailer byte.
    pub sink: W,
    /// Aggregated per-stage measurements, as the one-shot
    /// [`crate::compress_with_report`] would return them.
    pub report: CompressionReport,
    /// Total archive bytes written (header + blobs + trailer).
    pub bytes_written: u64,
}

/// Incremental compression session writing container v2.2 to any
/// [`Write`] sink with bounded memory.
///
/// Created with the full field [`Shape`] up front (the header is written
/// immediately); axis-0 slabs then arrive through
/// [`ArchiveWriter::write_slab`] in row order, are cut into
/// `cfg.chunking` chunks, compressed on the worker pool, and their blobs
/// appended to the sink right away. [`ArchiveWriter::finalize`] flushes
/// the final partial chunk and appends the trailer chunk index.
///
/// Peak memory is `O(slab + chunk_rows)` elements of carry-over plus the
/// per-thread encoder state — independent of the field and archive sizes.
///
/// Two configuration limits follow from single-pass operation:
///
/// * [`ErrorBoundMode::ValueRangeRelative`] needs the whole field's value
///   range before the first slab can be quantized, so `create` rejects it
///   with [`CompressError::InvalidConfig`]; resolve it to an absolute
///   bound first (one streaming min/max pass) or use the one-shot API.
/// * [`Chunking::Serial`](crate::Chunking::Serial) degenerates to one
///   whole-field chunk, which forces the writer to buffer every row until
///   `finalize` — legal, but it defeats the point; chunk the config.
///
/// See the [module docs](self) for a complete write/read example.
pub struct ArchiveWriter<T: Scalar, W: Write> {
    sink: W,
    shape: Shape,
    row_elems: usize,
    chunk_rows: usize,
    enc: SlabEncoder,
    /// Container generation this session writes (see `create_inner`);
    /// decides whether the trailer index carries the per-chunk eb column.
    version: u8,
    /// Per-chunk planned bounds (quality-targeted mode ⇒ container v2.3+);
    /// `None` writes the shared bound into every chunk.
    plan: Option<Vec<f64>>,
    /// Carry-over rows not yet forming a complete chunk.
    buf: Vec<T>,
    /// Rows already encoded and written.
    rows_done: usize,
    /// Chunk index accumulated for the trailer: (rows, codec, blob len,
    /// eb).
    index: Vec<(usize, ChunkCodecKind, usize, f64)>,
    per_chunk: Vec<(ChunkCodecKind, ChunkStats)>,
    bytes_written: u64,
}

impl<T: Scalar, W: Write> ArchiveWriter<T, W> {
    /// Open a session: validate `cfg`, resolve the bound, and write the
    /// container header to `sink`.
    ///
    /// Fails with [`CompressError::InvalidConfig`] for configurations a
    /// single pass cannot honor (see the type docs) and for structurally
    /// invalid configs such as a literal `Chunking::Rows(0)`.
    pub fn create(sink: W, shape: Shape, cfg: &CompressorConfig) -> Result<Self, CompressError> {
        cfg.validate().map_err(CompressError::InvalidConfig)?;
        if matches!(cfg.bound, ErrorBoundMode::ValueRangeRelative(_)) {
            return Err(CompressError::InvalidConfig(
                "a value-range-relative bound needs the whole field's range before the first \
                 slab; resolve it to ErrorBoundMode::Abs first or use the one-shot compress"
                    .into(),
            ));
        }
        // The bound is range-independent here (checked above), so the
        // range argument is never read.
        let (abs_eb, transform) = resolve_bound(cfg, f64::NAN)?;
        Self::create_resolved(sink, shape, cfg, abs_eb, transform)
    }

    /// Open a **quality-targeted** session: one absolute error bound per
    /// axis-0 chunk, producing container v2.3 (the per-chunk bounds are
    /// recorded next to the codec tags in the trailer index and are
    /// authoritative for decoding).
    ///
    /// `ebs` must hold exactly one finite positive bound per chunk of the
    /// partition `cfg`'s chunking resolves to for `shape` (see
    /// [`crate::chunked::resolved_chunk_rows`]); the header's `abs_eb`
    /// records `max(ebs)` — the archive-wide worst-case pointwise
    /// guarantee. `cfg.bound` is ignored: planned bounds are always
    /// absolute, so point-wise relative configs are rejected with
    /// [`CompressError::InvalidConfig`].
    pub fn create_planned(
        sink: W,
        shape: Shape,
        cfg: &CompressorConfig,
        ebs: Vec<f64>,
    ) -> Result<Self, CompressError> {
        cfg.validate().map_err(CompressError::InvalidConfig)?;
        if matches!(cfg.bound, ErrorBoundMode::PointwiseRelative(_)) {
            return Err(CompressError::InvalidConfig(
                "per-chunk planned bounds are absolute; a point-wise relative config cannot \
                 be planned"
                    .into(),
            ));
        }
        let chunk_rows = crate::chunked::resolve_chunk_rows(cfg, shape);
        let n_chunks = shape.dim(0).div_ceil(chunk_rows);
        if ebs.len() != n_chunks {
            return Err(CompressError::InvalidConfig(format!(
                "plan has {} bounds but the chunking yields {} chunks ({} rows each over {} \
                 rows)",
                ebs.len(),
                n_chunks,
                chunk_rows,
                shape.dim(0)
            )));
        }
        let mut max_eb = 0.0f64;
        for (i, &eb) in ebs.iter().enumerate() {
            if !(eb.is_finite() && eb > 0.0) {
                return Err(CompressError::InvalidBound(format!(
                    "planned bound for chunk {i} is {eb}"
                )));
            }
            max_eb = max_eb.max(eb);
        }
        Self::create_inner(sink, shape, cfg, max_eb, Transform::Identity, Some(ebs))
    }

    /// `create` with the bound already resolved (crate-internal: lets the
    /// CLI resolve a value-range-relative bound via its own streaming
    /// min/max pass and still use the session).
    pub(crate) fn create_resolved(
        sink: W,
        shape: Shape,
        cfg: &CompressorConfig,
        abs_eb: f64,
        transform: Transform,
    ) -> Result<Self, CompressError> {
        Self::create_inner(sink, shape, cfg, abs_eb, transform, None)
    }

    /// Shared constructor: the codec policy and the presence of a
    /// per-chunk plan select the container generation baked into the
    /// header — rolz-capable policies need v2.4 (tag 2 is illegal in the
    /// earlier generations), a plan needs at least v2.3 (per-chunk
    /// bounds), and everything else stays on v2.2 byte for byte.
    fn create_inner(
        mut sink: W,
        shape: Shape,
        cfg: &CompressorConfig,
        abs_eb: f64,
        transform: Transform,
        plan: Option<Vec<f64>>,
    ) -> Result<Self, CompressError> {
        let enc = SlabEncoder::from_cfg(cfg, abs_eb, transform)?;
        let chunk_rows = crate::chunked::resolve_chunk_rows(cfg, shape);
        let version = match cfg.codec {
            CodecChoice::Rolz | CodecChoice::Auto => VERSION_V2_4,
            _ if plan.is_some() => VERSION_V2_3,
            _ => VERSION_V2_2,
        };
        let header = Header {
            version,
            scalar_tag: T::TAG,
            predictor: cfg.predictor,
            lossless: cfg.lossless,
            log_transform: transform != Transform::Identity,
            shape,
            abs_eb,
            radius: cfg.radius,
        };
        let mut head = Vec::with_capacity(96);
        write_header_prefix(&mut head, &header, T::TAG);
        sink.write_all(&head)?;
        Ok(ArchiveWriter {
            sink,
            shape,
            row_elems: shape.dims()[1..].iter().product::<usize>().max(1),
            chunk_rows,
            enc,
            version,
            plan,
            buf: Vec::new(),
            rows_done: 0,
            index: Vec::new(),
            per_chunk: Vec::new(),
            bytes_written: head.len() as u64,
        })
    }

    /// Rows buffered but not yet encoded.
    fn buffered_rows(&self) -> usize {
        self.buf.len() / self.row_elems
    }

    /// Nominal axis-0 rows per chunk this session resolved to.
    pub fn chunk_rows(&self) -> usize {
        self.chunk_rows
    }

    /// Archive bytes written so far (header + finished chunk blobs).
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Append the next axis-0 slab (rows `rows_so_far..rows_so_far+k`).
    ///
    /// The slab's trailing dimensions must match the field shape given to
    /// [`Self::create`]; its axis-0 extent is free — slab boundaries need
    /// not align with chunk boundaries, the writer carries partial chunks
    /// over. Feeding slabs of several `chunk_rows` at once keeps the
    /// worker pool busy.
    pub fn write_slab(&mut self, slab: &NdArray<T>) -> Result<(), CompressError> {
        let s = slab.shape();
        if s.ndim() != self.shape.ndim() || s.dims()[1..] != self.shape.dims()[1..] {
            return Err(CompressError::InvalidConfig(format!(
                "slab shape {:?} does not match the field's trailing dims {:?}",
                s.dims(),
                self.shape.dims()
            )));
        }
        let total = self.rows_done + self.buffered_rows() + s.dim(0);
        if total > self.shape.dim(0) {
            return Err(CompressError::InvalidConfig(format!(
                "slabs cover {total} rows but the field has {}",
                self.shape.dim(0)
            )));
        }
        self.buf.extend_from_slice(slab.as_slice());
        let complete = self.buffered_rows() / self.chunk_rows * self.chunk_rows;
        if complete > 0 {
            self.encode_rows(complete)?;
        }
        Ok(())
    }

    /// Encode the first `rows` buffered rows as chunks and write them.
    fn encode_rows(&mut self, rows: usize) -> Result<(), CompressError> {
        let elems = rows * self.row_elems;
        let mut dims = [0usize; MAX_DIMS];
        dims[..self.shape.ndim()].copy_from_slice(self.shape.dims());
        dims[0] = rows;
        let batch_shape = Shape::new(&dims[..self.shape.ndim()]);
        let chunks = slab_chunks(batch_shape, self.chunk_rows);
        let encoded = match &self.plan {
            Some(plan) => {
                // Slabs arrive in row order, so the batch's chunks are the
                // next `chunks.len()` entries of the whole-field plan.
                let base = self.index.len();
                let n = chunks.len();
                self.enc.encode_chunks_planned(
                    &self.buf[..elems],
                    chunks,
                    &plan[base..base + n],
                )?
            }
            None => self.enc.encode_chunks(&self.buf[..elems], chunks)?,
        };
        for ec in encoded {
            self.sink.write_all(&ec.blob)?;
            self.bytes_written += ec.blob.len() as u64;
            self.rows_done += ec.rows;
            self.index.push((ec.rows, ec.codec, ec.blob.len(), ec.eb));
            self.per_chunk.push((ec.codec, ec.stats));
        }
        self.buf.drain(..elems);
        Ok(())
    }

    /// Flush the final partial chunk, write the trailer index, flush the
    /// sink, and hand it back with the aggregated report.
    ///
    /// Fails with [`CompressError::InvalidConfig`] if the slabs written
    /// do not cover the field's axis-0 extent exactly. Dropping the
    /// writer without calling `finalize` leaves the sink without a
    /// trailer — an unreadable archive.
    pub fn finalize(mut self) -> Result<FinishedArchive<W>, CompressError> {
        let rem = self.buffered_rows();
        if rem > 0 {
            self.encode_rows(rem)?;
        }
        if self.rows_done != self.shape.dim(0) {
            return Err(CompressError::InvalidConfig(format!(
                "slabs cover {} of the field's {} rows",
                self.rows_done,
                self.shape.dim(0)
            )));
        }
        let mut trailer = Vec::new();
        let with_eb = matches!(self.version, VERSION_V2_3 | VERSION_V2_4);
        write_trailer(&mut trailer, self.chunk_rows, &self.index, with_eb);
        self.sink.write_all(&trailer)?;
        self.sink.flush()?;
        self.bytes_written += trailer.len() as u64;
        let report = aggregate_report(
            &self.enc.quantizer,
            self.per_chunk,
            self.shape.len(),
            T::BITS,
            self.bytes_written as usize,
        );
        Ok(FinishedArchive { sink: self.sink, report, bytes_written: self.bytes_written })
    }
}

// ---------------------------------------------------------------------------
// ArchiveReader
// ---------------------------------------------------------------------------

/// Decode-side counters of one [`ArchiveReader`] session, for verifying
/// that region reads touch only the chunks they must.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReadStats {
    /// Chunks in the archive's index.
    pub chunks_total: usize,
    /// Chunk blobs decoded so far (a chunk decoded twice counts twice).
    pub chunks_decoded: u64,
    /// Compressed blob bytes fetched from the source so far.
    pub blob_bytes_read: u64,
    /// Chunks decoded into a scratch slab and then copied into place —
    /// only boundary chunks of a row range that crops them mid-chunk.
    /// Chunk-aligned reads decode straight into the destination, so this
    /// stays `0` for them (asserted in the differential tests).
    pub reorder_copies: u64,
}

/// Random-access decompression session over any [`Read`]` + `[`Seek`]
/// source, for all container generations (v1, v2, v2.1, v2.2, v2.3).
///
/// [`Self::open`] reads only the header and chunk index (for v2.2, via
/// the trailer at the end of the source); payload bytes are fetched and
/// decoded on demand by [`Self::read_all`], [`Self::read_chunk`] and
/// [`Self::read_rows`] — the latter decodes exactly the chunks whose row
/// ranges intersect the request, which [`Self::stats`] makes observable.
///
/// # Parallel decode
///
/// [`Self::with_threads`] turns on the streaming decode worker pool:
/// chunk extents are still read **sequentially** off the source (one
/// seek+read per blob, in offset order), but decoding fans out to scoped
/// workers behind a bounded read-ahead window
/// ([`Self::with_read_ahead`]). At most `threads + read_ahead` chunks are
/// in flight at once, so peak memory stays `O(window × chunk)` no matter
/// how large the archive is. All decode paths — [`Self::read_all`],
/// [`Self::read_rows`], [`Self::decompress_rows`] and
/// [`Self::decompress_to_writer`] — use the pool; results are delivered
/// in row order and are byte-identical to the single-threaded decode.
///
/// See the [module docs](self) for a complete write/read example.
pub struct ArchiveReader<R: Read + Seek> {
    src: R,
    /// Memory-mapped view of the source where available (file-backed
    /// readers opened via [`ArchiveReader::open_path`] on platforms with
    /// mmap). Chunk fetches become zero-copy windows of the page cache.
    map: Option<SourceMap>,
    /// Recycled compressed-blob buffers for unmapped fetches.
    blob_pool: BytePool,
    header: Header,
    chunk_rows: usize,
    entries: Vec<ChunkEntry>,
    stats: ReadStats,
    /// Decode worker threads (1 = decode on the calling thread).
    threads: usize,
    /// Extra chunks fetched ahead of the decoders (`None` = `threads`).
    read_ahead: Option<usize>,
}

impl ArchiveReader<std::fs::File> {
    /// Open an archive file directly, memory-mapping it when the
    /// platform allows (Linux): chunk extents are then fetched as
    /// zero-copy windows of the page cache instead of per-chunk
    /// seek+read copies, and the kernel's readahead overlaps faulting
    /// the next extents with decoding the current one. Where no mapping
    /// is available this silently falls back to the seek+read path —
    /// decoded bytes are identical either way.
    pub fn open_path(path: impl AsRef<std::path::Path>) -> Result<Self, DecompressError> {
        let file = std::fs::File::open(path)?;
        let map = SourceMap::map(&file);
        let mut reader = Self::open(file)?;
        reader.map = map;
        Ok(reader)
    }
}

impl<R: Read + Seek> ArchiveReader<R> {
    /// Open an archive: parse the header and locate every chunk, without
    /// reading any payload.
    pub fn open(mut src: R) -> Result<Self, DecompressError> {
        let layout = read_archive_layout(&mut src)?;
        let chunks_total = layout.entries.len();
        Ok(ArchiveReader {
            src,
            map: None,
            blob_pool: BytePool::new(),
            header: layout.header,
            chunk_rows: layout.chunk_rows,
            entries: layout.entries,
            stats: ReadStats { chunks_total, ..ReadStats::default() },
            threads: 1,
            read_ahead: None,
        })
    }

    /// Whether chunk fetches are served zero-copy from a memory-mapped
    /// source (see [`ArchiveReader::open_path`]).
    pub fn is_mapped(&self) -> bool {
        self.map.is_some()
    }

    /// Set the decode worker-thread count (`0` = one per available CPU,
    /// `1` = decode serially on the calling thread). Chunk extents are
    /// always read sequentially; only decoding is parallel, so decoded
    /// output is byte-identical at every thread count.
    ///
    /// The pool is clamped to `available_parallelism`: on a machine with
    /// fewer cores than `threads`, extra workers only add dispatch and
    /// context-switch overhead (measurably *slower* than serial decode on
    /// a 1-CPU host) without any more decode bandwidth to use. Pass the
    /// count through [`Self::with_threads_exact`] to oversubscribe
    /// deliberately.
    pub fn with_threads(self, threads: usize) -> Self {
        let cpus = std::thread::available_parallelism().map(|t| t.get()).unwrap_or(1);
        self.with_threads_exact(if threads == 0 { cpus } else { threads.min(cpus) })
    }

    /// [`Self::with_threads`] without the `available_parallelism` clamp:
    /// exactly `threads` workers (`0` is treated as `1`), even beyond the
    /// core count. Decoded bytes are identical either way; this exists so
    /// tests and benchmarks can exercise the pool's reorder/backpressure
    /// machinery on machines with few cores.
    pub fn with_threads_exact(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Bound the read-ahead window: at most `threads + read_ahead` chunks
    /// (compressed blob + decoded slab) are in flight at once. Defaults
    /// to `threads`, i.e. a window of `2 × threads` chunks.
    pub fn with_read_ahead(mut self, read_ahead: usize) -> Self {
        self.read_ahead = Some(read_ahead);
        self
    }

    /// The decode worker-thread count in effect.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Chunks allowed in flight at once (fetch → decode → deliver).
    fn window(&self) -> usize {
        self.threads + self.read_ahead.unwrap_or(self.threads)
    }

    /// The archive's parsed header.
    pub fn header(&self) -> &Header {
        &self.header
    }

    /// Nominal axis-0 rows per chunk (the last chunk may hold fewer).
    pub fn chunk_rows(&self) -> usize {
        self.chunk_rows
    }

    /// Number of independently-decodable chunks.
    pub fn n_chunks(&self) -> usize {
        self.entries.len()
    }

    /// The located chunk entries, in slab order.
    pub fn entries(&self) -> &[ChunkEntry] {
        &self.entries
    }

    /// The chunk partition in [`ChunkTable`] form (as
    /// [`crate::chunk_table`] returns for in-memory archives).
    pub fn chunk_table(&self) -> ChunkTable {
        ChunkTable { chunk_rows: self.chunk_rows, entries: self.entries.clone() }
    }

    /// Decode counters accumulated since [`Self::open`].
    pub fn stats(&self) -> ReadStats {
        self.stats
    }

    fn check_scalar<T: Scalar>(&self) -> Result<(), DecompressError> {
        check_scalar_tag::<T>(&self.header)
    }

    /// Fetch and decode one chunk blob into `out` (`out.len()` must equal
    /// the chunk's element count).
    fn decode_entry_into<T: Scalar>(
        &mut self,
        entry: ChunkEntry,
        cshape: Shape,
        out: &mut [T],
    ) -> Result<(), DecompressError> {
        let Self { ref mut src, ref map, ref blob_pool, ref header, ref mut stats, .. } = *self;
        let mut fetcher =
            Fetcher { src, map: map.as_ref().map(SourceMap::as_slice), pool: blob_pool };
        let blob = fetcher.fetch(entry)?;
        stats.blob_bytes_read += entry.len as u64;
        decode_entry_blob(&blob, header, entry, cshape, out)?;
        stats.chunks_decoded += 1;
        Ok(())
    }

    /// Decode a single chunk (random access). Returns the slab's first
    /// axis-0 row and the decoded slab as a standalone array.
    pub fn read_chunk<T: Scalar>(
        &mut self,
        chunk: usize,
    ) -> Result<(usize, NdArray<T>), DecompressError> {
        self.check_scalar::<T>()?;
        let Some(&entry) = self.entries.get(chunk) else {
            return Err(DecompressError::ChunkOutOfRange {
                requested: chunk,
                available: self.entries.len(),
            });
        };
        let cshape = entry_shape(self.header.shape, entry);
        let mut out = vec![T::zero(); cshape.len()];
        self.decode_entry_into(entry, cshape, &mut out)?;
        Ok((entry.start_row, NdArray::from_vec(cshape, out)))
    }

    /// Decode the axis-0 row range `rows` (non-empty, within the field),
    /// touching only the chunks that intersect it, on the decode pool.
    ///
    /// Returns an array of shape `[rows.len(), dims[1..]]` whose elements
    /// equal the corresponding rows of a full decompression exactly.
    pub fn read_rows<T: Scalar>(
        &mut self,
        rows: Range<usize>,
    ) -> Result<NdArray<T>, DecompressError>
    where
        R: Send,
    {
        self.check_scalar::<T>()?;
        let d0 = self.header.shape.dim(0);
        if rows.start >= rows.end || rows.end > d0 {
            return Err(DecompressError::RowsOutOfRange { requested_end: rows.end, rows: d0 });
        }
        let shape = self.header.shape;
        let (threads, window) = (self.threads, self.window());
        let row_elems: usize = shape.dims()[1..].iter().product::<usize>().max(1);
        let out_rows = rows.end - rows.start;
        let mut out = vec![T::zero(); out_rows * row_elems];
        // Chunks tile axis 0 in order, so the intersecting chunks cover
        // `out` contiguously: hand each one its disjoint output slice.
        let mut jobs = Vec::new();
        let mut rest: &mut [T] = &mut out;
        for &entry in &self.entries {
            let e_start = entry.start_row;
            let e_end = e_start + entry.rows;
            if e_end <= rows.start || e_start >= rows.end {
                continue;
            }
            let lo = rows.start.max(e_start);
            let hi = rows.end.min(e_end);
            let (dst, tail) = rest.split_at_mut((hi - lo) * row_elems);
            rest = tail;
            jobs.push(SliceJob {
                entry,
                cshape: entry_shape(shape, entry),
                take: (lo - e_start) * row_elems..(hi - e_start) * row_elems,
                dst,
            });
        }
        run_slice_jobs(
            &mut self.src,
            self.map.as_ref().map(SourceMap::as_slice),
            &self.blob_pool,
            &self.header,
            jobs,
            threads,
            window,
            &mut self.stats,
        )?;
        let mut dims = [0usize; MAX_DIMS];
        dims[..shape.ndim()].copy_from_slice(shape.dims());
        dims[0] = out_rows;
        Ok(NdArray::from_vec(Shape::new(&dims[..shape.ndim()]), out))
    }

    /// Decode the whole field on the decode pool (memory: the output plus
    /// at most a window of compressed blobs).
    pub fn read_all<T: Scalar>(&mut self) -> Result<NdArray<T>, DecompressError>
    where
        R: Send,
    {
        self.check_scalar::<T>()?;
        let shape = self.header.shape;
        self.read_rows(0..shape.dim(0)).map(|a| {
            // Same element count and order; restore the full-field shape.
            NdArray::from_vec(shape, a.into_vec())
        })
    }

    /// Stream the whole field through `emit` as axis-0 slabs in row
    /// order, decoding chunks on the worker pool behind the bounded
    /// read-ahead window. Unlike [`Self::read_all`] the field is never
    /// resident: peak memory is `O(window × chunk)`.
    ///
    /// `emit` receives each chunk's decoded elements exactly once, in row
    /// order; an error from `emit` aborts the decode.
    pub fn decompress_rows<T: Scalar>(
        &mut self,
        mut emit: impl FnMut(&[T]) -> std::io::Result<()>,
    ) -> Result<(), DecompressError>
    where
        R: Send,
    {
        self.check_scalar::<T>()?;
        let shape = self.header.shape;
        let (threads, window) = (self.threads, self.window());
        let jobs: Vec<(ChunkEntry, Shape)> =
            self.entries.iter().map(|&e| (e, entry_shape(shape, e))).collect();
        run_ordered_jobs::<T, R>(
            &mut self.src,
            self.map.as_ref().map(SourceMap::as_slice),
            &self.blob_pool,
            &self.header,
            jobs,
            threads,
            window,
            &mut self.stats,
            &mut |slab| emit(slab).map_err(DecompressError::Io),
        )
    }

    /// Decode the whole field into `sink` as little-endian scalars in row
    /// order, chunk-parallel with bounded memory (the streaming backend
    /// of `rqm decompress --threads`). Returns the number of values
    /// written.
    pub fn decompress_to_writer<T: Scalar, W: Write>(
        &mut self,
        sink: &mut W,
    ) -> Result<u64, DecompressError>
    where
        R: Send,
    {
        let mut values = 0u64;
        let mut buf: Vec<u8> = Vec::new();
        self.decompress_rows::<T>(|slab| {
            buf.clear();
            buf.reserve(slab.len() * T::BYTES);
            for &v in slab {
                v.write_le(&mut buf);
            }
            values += slab.len() as u64;
            sink.write_all(&buf)
        })?;
        Ok(values)
    }

    /// Convert this session into a shareable [`ConcurrentReader`] over
    /// the same source, keeping the already-parsed layout. Accumulated
    /// [`ReadStats`] carry over as the aggregate baseline.
    pub fn into_concurrent(self) -> ConcurrentReader<R> {
        ConcurrentReader {
            shared: Arc::new(ReaderShared {
                src: Mutex::new(self.src),
                map: self.map,
                blob_pool: self.blob_pool,
                header: self.header,
                chunk_rows: self.chunk_rows,
                entries: self.entries,
                chunks_decoded: AtomicU64::new(self.stats.chunks_decoded),
                blob_bytes_read: AtomicU64::new(self.stats.blob_bytes_read),
                reorder_copies: AtomicU64::new(self.stats.reorder_copies),
            }),
        }
    }
}

/// Scalar-tag check shared by the streaming and concurrent readers.
fn check_scalar_tag<T: Scalar>(header: &Header) -> Result<(), DecompressError> {
    if header.scalar_tag != T::TAG {
        return Err(DecompressError::ScalarMismatch {
            expected: T::TAG,
            found: header.scalar_tag,
        });
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Parallel streaming decode engine
// ---------------------------------------------------------------------------

/// One chunk's decode destination in a slice-mode parallel run: the
/// element range `take` of the decoded chunk lands in `dst` (disjoint
/// across jobs, so workers write concurrently without coordination).
struct SliceJob<'o, T> {
    entry: ChunkEntry,
    cshape: Shape,
    take: Range<usize>,
    dst: &'o mut [T],
}

/// One fetched chunk extent: either a recycled pool buffer (returned to
/// its pool on drop) or a zero-copy window of the memory-mapped source.
/// Either way the decode stage sees plain `&[u8]` via `Deref`.
enum Blob<'e> {
    Pooled(Vec<u8>, &'e BytePool),
    Mapped(&'e [u8]),
}

impl std::ops::Deref for Blob<'_> {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        match self {
            Blob::Pooled(buf, _) => buf,
            Blob::Mapped(bytes) => bytes,
        }
    }
}

impl Drop for Blob<'_> {
    fn drop(&mut self) {
        if let Blob::Pooled(buf, pool) = self {
            pool.put(std::mem::take(buf));
        }
    }
}

/// The fetch stage of one decode run: the seekable source, the optional
/// mapped view of it, and the pool backing unmapped reads.
struct Fetcher<'e, R> {
    src: &'e mut R,
    map: Option<&'e [u8]>,
    pool: &'e BytePool,
}

impl<'e, R: Read + Seek> Fetcher<'e, R> {
    /// One chunk's compressed bytes: a bounds-checked window of the map
    /// (zero-copy, no syscall) or a pooled buffer filled by seek+read.
    fn fetch(&mut self, entry: ChunkEntry) -> Result<Blob<'e>, DecompressError> {
        if let Some(mapped) = self.map {
            return entry
                .offset
                .checked_add(entry.len)
                .and_then(|end| mapped.get(entry.offset..end))
                .map(Blob::Mapped)
                .ok_or(DecompressError::Corrupt("chunk extent beyond mapped source"));
        }
        let mut buf = self.pool.get(entry.len);
        match read_span_into(self.src, entry.offset as u64, &mut buf) {
            Ok(()) => Ok(Blob::Pooled(buf, self.pool)),
            Err(e) => {
                self.pool.put(buf);
                Err(e)
            }
        }
    }
}

/// Decode one fetched blob into its job's destination slice. Decodes
/// in place when the job takes the whole chunk; only a partial take
/// (boundary rows of a region read) goes through a scratch slab and a
/// copy. Returns whether the scratch copy happened, so callers can count
/// [`ReadStats::reorder_copies`].
fn decode_slice_job<T: Scalar>(
    header: &Header,
    blob: &[u8],
    job: SliceJob<'_, T>,
    scratch: &SlabPool<T>,
) -> Result<bool, DecompressError> {
    let SliceJob { entry, cshape, take, dst } = job;
    if take.start == 0 && take.end == cshape.len() {
        decode_entry_blob(blob, header, entry, cshape, dst)?;
        Ok(false)
    } else {
        let mut tmp = scratch.get(cshape.len());
        let decoded = decode_entry_blob(blob, header, entry, cshape, &mut tmp);
        if decoded.is_ok() {
            dst.copy_from_slice(&tmp[take]);
        }
        scratch.put(tmp);
        decoded.map(|()| true)
    }
}

/// Run slice jobs through the decode pool. The calling thread fetches
/// blobs sequentially (in offset order) — zero-copy off the map when one
/// exists, else into recycled pool buffers — and hands them to `threads`
/// scoped workers over a bounded channel, so at most `window` fetched
/// blobs queue ahead of the decoders (plus one in each worker's hands).
/// With one thread and no map, a dedicated prefetch thread reads ahead
/// instead, overlapping I/O with the caller's decoding. Workers write
/// into their jobs' disjoint output slices, so no reorder buffer is
/// needed. The first error (in completion order) aborts the run;
/// remaining queued jobs are drained, never left hanging.
#[allow(clippy::too_many_arguments)]
fn run_slice_jobs<T: Scalar, R: Read + Seek + Send>(
    src: &mut R,
    map: Option<&[u8]>,
    pool: &BytePool,
    header: &Header,
    jobs: Vec<SliceJob<'_, T>>,
    threads: usize,
    window: usize,
    stats: &mut ReadStats,
) -> Result<(), DecompressError> {
    if jobs.is_empty() {
        return Ok(());
    }
    let scratch = SlabPool::<T>::new();
    let mut fetcher = Fetcher { src, map, pool };
    // Serial inline decode: a single job never benefits from staging, and
    // a mapped source needs no prefetch thread at 1 thread — the kernel's
    // readahead already faults upcoming extents while this one decodes.
    if jobs.len() <= 1 || (threads <= 1 && map.is_some()) {
        for job in jobs {
            let entry = job.entry;
            let blob = fetcher.fetch(entry)?;
            stats.blob_bytes_read += entry.len as u64;
            let copied = decode_slice_job(header, &blob, job, &scratch)?;
            stats.chunks_decoded += 1;
            stats.reorder_copies += copied as u64;
        }
        return Ok(());
    }
    let window = window.max(2);
    if threads <= 1 {
        // Unmapped single-threaded decode of several chunks: a dedicated
        // fetch thread reads extents ahead (bounded by the window) while
        // the calling thread decodes, overlapping I/O with decode.
        return std::thread::scope(|scope| {
            let (tx, rx) = mpsc::sync_channel::<(SliceJob<'_, T>, Blob<'_>)>(window);
            let fetch = scope.spawn(move || -> Result<(), DecompressError> {
                for job in jobs {
                    let blob = fetcher.fetch(job.entry)?;
                    if tx.send((job, blob)).is_err() {
                        break; // the decoder bailed out early
                    }
                }
                Ok(())
            });
            let mut result = Ok(());
            for (job, blob) in rx.iter() {
                stats.blob_bytes_read += job.entry.len as u64;
                match decode_slice_job(header, &blob, job, &scratch) {
                    Ok(copied) => {
                        stats.chunks_decoded += 1;
                        stats.reorder_copies += copied as u64;
                    }
                    Err(e) => {
                        result = Err(e);
                        break;
                    }
                }
            }
            drop(rx); // unblocks the fetch thread if it sits mid-send
            let fetched = fetch.join().expect("prefetch thread panicked");
            if result.is_ok() {
                result = fetched;
            }
            result
        });
    }
    let (work_tx, work_rx) = mpsc::sync_channel::<(SliceJob<'_, T>, Blob<'_>)>(window);
    let work_rx = Mutex::new(work_rx);
    let (done_tx, done_rx) = mpsc::channel::<Result<bool, DecompressError>>();
    let abort = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for _ in 0..threads.min(jobs.len()) {
            let done_tx = done_tx.clone();
            let (work_rx, scratch, abort) = (&work_rx, &scratch, &abort);
            scope.spawn(move || loop {
                // Hold the lock only for the dequeue; decode unlocked.
                let next = {
                    let rx = work_rx.lock().unwrap_or_else(|p| p.into_inner());
                    rx.recv()
                };
                let Ok((job, blob)) = next else { break };
                let r = decode_slice_job(header, &blob, job, scratch);
                drop(blob); // recycle the buffer before signaling
                if r.is_err() {
                    abort.store(true, Ordering::Relaxed);
                }
                if done_tx.send(r).is_err() {
                    break; // the driver bailed out early
                }
            });
        }
        drop(done_tx);
        // The bounded work channel is the backpressure: `send` blocks
        // once `window` fetched blobs queue undecoded, so the driver
        // keeps fetching (overlapping workers' decode) only while the
        // window has room.
        let mut err: Option<DecompressError> = None;
        let mut sent = 0usize;
        for job in jobs {
            if abort.load(Ordering::Relaxed) {
                break; // a worker failed; its error is collected below
            }
            match fetcher.fetch(job.entry) {
                Ok(blob) => {
                    stats.blob_bytes_read += job.entry.len as u64;
                    if work_tx.send((job, blob)).is_err() {
                        break;
                    }
                    sent += 1;
                }
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        drop(work_tx);
        for _ in 0..sent {
            match done_rx.recv() {
                Ok(Ok(copied)) => {
                    stats.chunks_decoded += 1;
                    stats.reorder_copies += copied as u64;
                }
                Ok(Err(e)) => {
                    if err.is_none() {
                        err = Some(e);
                    }
                }
                Err(_) => break, // all workers exited; nothing more to count
            }
        }
        match err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    })
}

/// Run whole-chunk decode jobs through the pool with **in-order
/// delivery**: workers decode into recycled slabs, the calling thread
/// reorders completions by sequence number and hands each slab to `emit`
/// in row order (slabs return to the pool right after `emit`, so the
/// common in-order arrival recycles the same couple of slabs for the
/// whole run). A chunk counts against the `window` from fetch until its
/// slab is emitted, so out-of-order completions can never pile up more
/// than a window of decoded slabs. With one thread and no map, a
/// dedicated prefetch thread overlaps extent reads with the caller's
/// decode+emit instead.
#[allow(clippy::too_many_arguments)]
fn run_ordered_jobs<T: Scalar, R: Read + Seek + Send>(
    src: &mut R,
    map: Option<&[u8]>,
    pool: &BytePool,
    header: &Header,
    jobs: Vec<(ChunkEntry, Shape)>,
    threads: usize,
    window: usize,
    stats: &mut ReadStats,
    emit: &mut dyn FnMut(&[T]) -> Result<(), DecompressError>,
) -> Result<(), DecompressError> {
    if jobs.is_empty() {
        return Ok(());
    }
    let slabs = SlabPool::<T>::new();
    let mut fetcher = Fetcher { src, map, pool };
    // Serial inline decode; see run_slice_jobs for the map rationale.
    if jobs.len() <= 1 || (threads <= 1 && map.is_some()) {
        for (entry, cshape) in jobs {
            let blob = fetcher.fetch(entry)?;
            stats.blob_bytes_read += entry.len as u64;
            let mut slab = slabs.get(cshape.len());
            let decoded = decode_entry_blob(&blob, header, entry, cshape, &mut slab);
            drop(blob);
            let delivered = decoded.and_then(|()| {
                stats.chunks_decoded += 1;
                emit(&slab)
            });
            slabs.put(slab);
            delivered?;
        }
        return Ok(());
    }
    let window = window.max(2);
    if threads <= 1 {
        // Unmapped single-threaded streaming: prefetch thread reads
        // ahead, the caller decodes and emits in arrival order (which is
        // row order — one fetcher, one decoder).
        return std::thread::scope(|scope| {
            let (tx, rx) = mpsc::sync_channel::<(ChunkEntry, Shape, Blob<'_>)>(window);
            let fetch = scope.spawn(move || -> Result<(), DecompressError> {
                for (entry, cshape) in jobs {
                    let blob = fetcher.fetch(entry)?;
                    if tx.send((entry, cshape, blob)).is_err() {
                        break; // the decoder bailed out early
                    }
                }
                Ok(())
            });
            let mut result = Ok(());
            for (entry, cshape, blob) in rx.iter() {
                stats.blob_bytes_read += entry.len as u64;
                let mut slab = slabs.get(cshape.len());
                let decoded = decode_entry_blob(&blob, header, entry, cshape, &mut slab);
                drop(blob);
                let delivered = decoded.and_then(|()| {
                    stats.chunks_decoded += 1;
                    emit(&slab)
                });
                slabs.put(slab);
                if let Err(e) = delivered {
                    result = Err(e);
                    break;
                }
            }
            drop(rx); // unblocks the fetch thread if it sits mid-send
            let fetched = fetch.join().expect("prefetch thread panicked");
            if result.is_ok() {
                result = fetched;
            }
            result
        });
    }
    let (work_tx, work_rx) = mpsc::sync_channel::<(usize, ChunkEntry, Shape, Blob<'_>)>(window);
    let work_rx = Mutex::new(work_rx);
    let (done_tx, done_rx) = mpsc::channel::<(usize, Result<Vec<T>, DecompressError>)>();
    let abort = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for _ in 0..threads.min(jobs.len()) {
            let done_tx = done_tx.clone();
            let (work_rx, slabs, abort) = (&work_rx, &slabs, &abort);
            scope.spawn(move || loop {
                let next = {
                    let rx = work_rx.lock().unwrap_or_else(|p| p.into_inner());
                    rx.recv()
                };
                let Ok((seq, entry, cshape, blob)) = next else { break };
                let mut slab = slabs.get(cshape.len());
                let decoded = decode_entry_blob(&blob, header, entry, cshape, &mut slab);
                drop(blob); // recycle the buffer before signaling
                let r = decoded.map(|()| slab);
                if r.is_err() {
                    abort.store(true, Ordering::Relaxed);
                }
                if done_tx.send((seq, r)).is_err() {
                    break;
                }
            });
        }
        drop(done_tx);
        // `sent` jobs dispatched, `done` completions received, `retired`
        // slabs emitted/recycled/failed. `sent - retired` is the
        // fetch→emit credit the window bounds; because `retired ≤ done`,
        // the work channel can never block the driver mid-send.
        let (mut sent, mut done, mut retired) = (0usize, 0usize, 0usize);
        let mut next_emit = 0usize;
        let mut pending: BTreeMap<usize, Vec<T>> = BTreeMap::new();
        let mut err: Option<DecompressError> = None;
        // Receive one completion; emit (and recycle) every slab that
        // became consecutive. Returns false if the pool disconnected.
        let receive_one = |err: &mut Option<DecompressError>,
                               pending: &mut BTreeMap<usize, Vec<T>>,
                               next_emit: &mut usize,
                               done: &mut usize,
                               retired: &mut usize,
                               stats: &mut ReadStats,
                               emit: &mut dyn FnMut(&[T]) -> Result<(), DecompressError>|
         -> bool {
            match done_rx.recv() {
                Ok((seq, Ok(slab))) => {
                    *done += 1;
                    stats.chunks_decoded += 1;
                    if err.is_some() {
                        // Already failing: recycle without delivering.
                        slabs.put(slab);
                        *retired += 1;
                        return true;
                    }
                    pending.insert(seq, slab);
                    loop {
                        let key = *next_emit;
                        let Some(slab) = pending.remove(&key) else { break };
                        let delivered = emit(&slab);
                        slabs.put(slab);
                        *retired += 1;
                        *next_emit += 1;
                        if let Err(e) = delivered {
                            *err = Some(e);
                            break;
                        }
                    }
                    true
                }
                Ok((_, Err(e))) => {
                    *done += 1;
                    *retired += 1;
                    if err.is_none() {
                        *err = Some(e);
                    }
                    true
                }
                // All workers exited; only reachable once every
                // dispatched job's completion was already received.
                Err(_) => false,
            }
        };
        'dispatch: for (seq, (entry, cshape)) in jobs.into_iter().enumerate() {
            while err.is_none() && sent - retired >= window {
                if !receive_one(
                    &mut err,
                    &mut pending,
                    &mut next_emit,
                    &mut done,
                    &mut retired,
                    stats,
                    emit,
                ) {
                    break 'dispatch;
                }
            }
            if err.is_some() || abort.load(Ordering::Relaxed) {
                break;
            }
            match fetcher.fetch(entry) {
                Ok(blob) => {
                    stats.blob_bytes_read += entry.len as u64;
                    if work_tx.send((seq, entry, cshape, blob)).is_err() {
                        break;
                    }
                    sent += 1;
                }
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        // Closing the work channel lets every worker drain and exit;
        // their remaining completions are collected (and recycled or
        // emitted) here.
        drop(work_tx);
        while done < sent {
            if !receive_one(
                &mut err,
                &mut pending,
                &mut next_emit,
                &mut done,
                &mut retired,
                stats,
                emit,
            ) {
                break;
            }
        }
        match err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    })
}

// ---------------------------------------------------------------------------
// ConcurrentReader
// ---------------------------------------------------------------------------

/// The archive state shared by every [`ConcurrentReader`] handle: the
/// source behind a mutex (held only while fetching blob bytes — decoding
/// runs unlocked), the immutable layout, and the aggregate counters.
struct ReaderShared<R> {
    src: Mutex<R>,
    /// Mapped view of the source where available: fetches through it
    /// take **no lock at all** — concurrent requests don't serialize
    /// even on the fetch stage.
    map: Option<SourceMap>,
    /// Recycled blob buffers; checked out *before* taking the source
    /// lock so the critical section is exactly one seek+read.
    blob_pool: BytePool,
    header: Header,
    chunk_rows: usize,
    entries: Vec<ChunkEntry>,
    chunks_decoded: AtomicU64,
    blob_bytes_read: AtomicU64,
    reorder_copies: AtomicU64,
}

/// A shareable, cloneable decompression handle over **one** open archive
/// source, for serving many overlapping region reads concurrently.
///
/// Cloning is cheap (an [`Arc`] bump) and every clone reads the same
/// underlying `R`. Requests lock the source only to fetch a chunk's
/// compressed bytes; decoding happens outside the lock, so readers on
/// different threads genuinely overlap. Each request reports its own
/// [`ReadStats`] (via [`Self::read_rows_with_stats`]), and
/// [`Self::stats`] aggregates across all clones and requests.
///
/// ```
/// use rq_compress::{ArchiveWriter, CompressorConfig, ConcurrentReader};
/// use rq_grid::{NdArray, Shape};
/// use rq_predict::PredictorKind;
/// use rq_quant::ErrorBoundMode;
///
/// let cfg = CompressorConfig::new(PredictorKind::Lorenzo, ErrorBoundMode::Abs(1e-3)).chunked(8);
/// let field = NdArray::<f32>::from_fn(Shape::d2(32, 16), |ix| (ix[0] as f32 * 0.2).sin());
/// let mut w = ArchiveWriter::<f32, _>::create(Vec::new(), field.shape(), &cfg).unwrap();
/// w.write_slab(&field).unwrap();
/// let bytes = w.finalize().unwrap().sink;
///
/// let reader = ConcurrentReader::open(std::io::Cursor::new(bytes)).unwrap();
/// std::thread::scope(|s| {
///     for t in 0..4 {
///         let r = reader.clone();
///         // Rows t*6..t*6+10 always straddle a chunk boundary.
///         s.spawn(move || r.read_rows::<f32>(t * 6..t * 6 + 10).unwrap());
///     }
/// });
/// assert_eq!(reader.stats().chunks_decoded, 4 * 2); // every request decoded 2 chunks
/// ```
pub struct ConcurrentReader<R: Read + Seek> {
    shared: Arc<ReaderShared<R>>,
}

impl<R: Read + Seek> Clone for ConcurrentReader<R> {
    fn clone(&self) -> Self {
        ConcurrentReader { shared: Arc::clone(&self.shared) }
    }
}

impl ConcurrentReader<std::fs::File> {
    /// Open an archive file for shared reading, memory-mapping it when
    /// the platform allows (Linux). Mapped fetches take **no lock at
    /// all** — concurrent requests stop serializing even on the fetch
    /// stage — and fall back to the pooled seek+read path (identical
    /// results) where no mapping is available.
    pub fn open_path(path: impl AsRef<std::path::Path>) -> Result<Self, DecompressError> {
        ArchiveReader::open_path(path).map(ArchiveReader::into_concurrent)
    }
}

impl<R: Read + Seek> ConcurrentReader<R> {
    /// Open an archive for shared concurrent reading: parse the header
    /// and chunk index, without reading any payload.
    pub fn open(mut src: R) -> Result<Self, DecompressError> {
        let layout = read_archive_layout(&mut src)?;
        Ok(ConcurrentReader {
            shared: Arc::new(ReaderShared {
                src: Mutex::new(src),
                map: None,
                blob_pool: BytePool::new(),
                header: layout.header,
                chunk_rows: layout.chunk_rows,
                entries: layout.entries,
                chunks_decoded: AtomicU64::new(0),
                blob_bytes_read: AtomicU64::new(0),
                reorder_copies: AtomicU64::new(0),
            }),
        })
    }

    /// Whether chunk fetches are served zero-copy (and lock-free) from a
    /// memory-mapped source (see [`ConcurrentReader::open_path`]).
    pub fn is_mapped(&self) -> bool {
        self.shared.map.is_some()
    }

    /// The archive's parsed header.
    pub fn header(&self) -> &Header {
        &self.shared.header
    }

    /// Nominal axis-0 rows per chunk (the last chunk may hold fewer).
    pub fn chunk_rows(&self) -> usize {
        self.shared.chunk_rows
    }

    /// Number of independently-decodable chunks.
    pub fn n_chunks(&self) -> usize {
        self.shared.entries.len()
    }

    /// The located chunk entries, in slab order.
    pub fn entries(&self) -> &[ChunkEntry] {
        &self.shared.entries
    }

    /// Aggregate decode counters across every clone and request so far.
    pub fn stats(&self) -> ReadStats {
        ReadStats {
            chunks_total: self.shared.entries.len(),
            chunks_decoded: self.shared.chunks_decoded.load(Ordering::Relaxed),
            blob_bytes_read: self.shared.blob_bytes_read.load(Ordering::Relaxed),
            reorder_copies: self.shared.reorder_copies.load(Ordering::Relaxed),
        }
    }

    /// The **fetch** stage alone: one chunk's compressed bytes. Over a
    /// mapped source this takes no lock — it is a bounds-checked window
    /// of the shared mapping. Otherwise a recycled buffer is checked out
    /// of the pool *before* locking, so the critical section is exactly
    /// one seek+read; decoding always happens outside the lock either
    /// way, so concurrent readers overlap on everything but that read.
    fn fetch_blob(&self, entry: ChunkEntry) -> Result<Blob<'_>, DecompressError> {
        if let Some(map) = &self.shared.map {
            return entry
                .offset
                .checked_add(entry.len)
                .and_then(|end| map.as_slice().get(entry.offset..end))
                .map(Blob::Mapped)
                .ok_or(DecompressError::Corrupt("chunk extent beyond mapped source"));
        }
        let mut buf = self.shared.blob_pool.get(entry.len);
        let read = {
            let mut src = self.shared.src.lock().unwrap_or_else(|p| p.into_inner());
            read_span_into(&mut *src, entry.offset as u64, &mut buf)
        };
        match read {
            Ok(()) => Ok(Blob::Pooled(buf, &self.shared.blob_pool)),
            Err(e) => {
                self.shared.blob_pool.put(buf);
                Err(e)
            }
        }
    }

    /// Bump the aggregate counters for one decoded chunk.
    fn count_decoded(&self, entry: ChunkEntry, reordered: bool) {
        self.shared.chunks_decoded.fetch_add(1, Ordering::Relaxed);
        self.shared.blob_bytes_read.fetch_add(entry.len as u64, Ordering::Relaxed);
        self.shared.reorder_copies.fetch_add(reordered as u64, Ordering::Relaxed);
    }

    /// Fetch one chunk's compressed bytes (see [`Self::fetch_blob`]),
    /// decode its job outside the lock (full chunk or boundary crop, via
    /// the same [`decode_slice_job`] the parallel engine uses), and
    /// update this request's and the aggregate counters.
    fn fetch_and_decode<T: Scalar>(
        &self,
        job: SliceJob<'_, T>,
        scratch: &SlabPool<T>,
        req: &mut ReadStats,
    ) -> Result<(), DecompressError> {
        let entry = job.entry;
        let blob = self.fetch_blob(entry)?;
        let copied = decode_slice_job(&self.shared.header, &blob, job, scratch)?;
        req.chunks_decoded += 1;
        req.blob_bytes_read += entry.len as u64;
        req.reorder_copies += copied as u64;
        self.count_decoded(entry, copied);
        Ok(())
    }

    /// Decode a single chunk (random access). Returns the slab's first
    /// axis-0 row, the decoded slab, and this request's [`ReadStats`].
    pub fn read_chunk<T: Scalar>(
        &self,
        chunk: usize,
    ) -> Result<(usize, NdArray<T>, ReadStats), DecompressError> {
        check_scalar_tag::<T>(&self.shared.header)?;
        let Some(&entry) = self.shared.entries.get(chunk) else {
            return Err(DecompressError::ChunkOutOfRange {
                requested: chunk,
                available: self.shared.entries.len(),
            });
        };
        let cshape = entry_shape(self.shared.header.shape, entry);
        let mut out = vec![T::zero(); cshape.len()];
        let mut req = ReadStats { chunks_total: self.shared.entries.len(), ..Default::default() };
        let take = 0..cshape.len();
        let scratch = SlabPool::new();
        self.fetch_and_decode(SliceJob { entry, cshape, take, dst: &mut out }, &scratch, &mut req)?;
        Ok((entry.start_row, NdArray::from_vec(cshape, out), req))
    }

    /// Decode the axis-0 row range `rows`, touching only intersecting
    /// chunks; see [`Self::read_rows_with_stats`] for the per-request
    /// counters.
    pub fn read_rows<T: Scalar>(&self, rows: Range<usize>) -> Result<NdArray<T>, DecompressError> {
        self.read_rows_with_stats(rows).map(|(a, _)| a)
    }

    /// [`Self::read_rows`], also returning this request's own
    /// [`ReadStats`] (chunks decoded and blob bytes fetched by this call
    /// alone — the aggregate view stays available via [`Self::stats`]).
    pub fn read_rows_with_stats<T: Scalar>(
        &self,
        rows: Range<usize>,
    ) -> Result<(NdArray<T>, ReadStats), DecompressError> {
        check_scalar_tag::<T>(&self.shared.header)?;
        let shape = self.shared.header.shape;
        let d0 = shape.dim(0);
        if rows.start >= rows.end || rows.end > d0 {
            return Err(DecompressError::RowsOutOfRange { requested_end: rows.end, rows: d0 });
        }
        let row_elems: usize = shape.dims()[1..].iter().product::<usize>().max(1);
        let out_rows = rows.end - rows.start;
        let mut out = vec![T::zero(); out_rows * row_elems];
        let mut req = ReadStats { chunks_total: self.shared.entries.len(), ..Default::default() };
        // One scratch pool per request: a range crops at most its two
        // boundary chunks, and they share the same recycled slab.
        let scratch = SlabPool::new();
        for &entry in &self.shared.entries {
            let e_start = entry.start_row;
            let e_end = e_start + entry.rows;
            if e_end <= rows.start || e_start >= rows.end {
                continue;
            }
            let lo = rows.start.max(e_start);
            let hi = rows.end.min(e_end);
            let job = SliceJob {
                entry,
                cshape: entry_shape(shape, entry),
                take: (lo - e_start) * row_elems..(hi - e_start) * row_elems,
                dst: &mut out[(lo - rows.start) * row_elems..(hi - rows.start) * row_elems],
            };
            self.fetch_and_decode(job, &scratch, &mut req)?;
        }
        let mut dims = [0usize; MAX_DIMS];
        dims[..shape.ndim()].copy_from_slice(shape.dims());
        dims[0] = out_rows;
        Ok((NdArray::from_vec(Shape::new(&dims[..shape.ndim()]), out), req))
    }

    /// Decode the whole field (one request).
    pub fn read_all<T: Scalar>(&self) -> Result<NdArray<T>, DecompressError> {
        let shape = self.shared.header.shape;
        self.read_rows::<T>(0..shape.dim(0))
            .map(|a| NdArray::from_vec(shape, a.into_vec()))
    }
}

// ---------------------------------------------------------------------------
// ChunkSource: the separable fetch+decode stage
// ---------------------------------------------------------------------------

/// A source of whole decoded chunks of one archive — the **fetch +
/// decode** stages of serving a read, separated from **delivery** so
/// middleware can slot between them. A decoded-chunk cache wraps a
/// `ChunkSource`, is itself one, and everything downstream (row assembly,
/// a network daemon) is oblivious to whether a chunk came from the codec
/// or from the cache; see the `rq-serve` crate.
///
/// [`ConcurrentReader`] is the canonical implementation: fetch takes the
/// source lock, decode runs unlocked, and every fetched chunk counts in
/// the aggregate [`ReadStats`]. [`assemble_rows`] is the matching
/// delivery stage.
///
/// Unlike [`ConcurrentReader::read_rows`] — which decodes boundary chunks
/// straight into a cropped output slice — a `ChunkSource` always
/// materializes whole chunks, because whole chunks are the unit a cache
/// can share between overlapping requests. The [`Arc`] return lets a
/// caching layer hand the same decoded slab to many concurrent readers
/// without copying it per request.
pub trait ChunkSource<T: Scalar>: Send + Sync {
    /// The archive's parsed header.
    fn header(&self) -> &Header;

    /// Nominal axis-0 rows per chunk (the last chunk may hold fewer).
    fn chunk_rows(&self) -> usize;

    /// The located chunk entries, in slab order.
    fn entries(&self) -> &[ChunkEntry];

    /// Chunk `idx`, fully decoded, in shared ownership.
    fn fetch_chunk(&self, idx: usize) -> Result<Arc<[T]>, DecompressError>;
}

impl<T: Scalar, R: Read + Seek + Send> ChunkSource<T> for ConcurrentReader<R> {
    fn header(&self) -> &Header {
        &self.shared.header
    }

    fn chunk_rows(&self) -> usize {
        self.shared.chunk_rows
    }

    fn entries(&self) -> &[ChunkEntry] {
        &self.shared.entries
    }

    fn fetch_chunk(&self, idx: usize) -> Result<Arc<[T]>, DecompressError> {
        check_scalar_tag::<T>(&self.shared.header)?;
        let Some(&entry) = self.shared.entries.get(idx) else {
            return Err(DecompressError::ChunkOutOfRange {
                requested: idx,
                available: self.shared.entries.len(),
            });
        };
        let cshape = entry_shape(self.shared.header.shape, entry);
        let blob = self.fetch_blob(entry)?;
        // The decoded slab's ownership leaves through the `Arc`, so it
        // cannot come from a pool — only the blob buffer recycles here.
        let mut out = vec![T::zero(); cshape.len()];
        decode_entry_blob(&blob, &self.shared.header, entry, cshape, &mut out)?;
        self.count_decoded(entry, false);
        Ok(out.into())
    }
}

/// The **delivery** stage over any [`ChunkSource`]: decode the axis-0 row
/// range `rows` by fetching every intersecting chunk whole — through
/// whatever caching or request coalescing the source provides — and
/// copying the requested rows out.
///
/// Returns an array of shape `[rows.len(), dims[1..]]` whose elements
/// equal the corresponding rows of a full decompression exactly, as
/// [`ConcurrentReader::read_rows`] does; the two differ only in that this
/// path materializes whole chunks (the cacheable unit) where `read_rows`
/// crops boundary chunks during decode.
pub fn assemble_rows<T: Scalar, S: ChunkSource<T> + ?Sized>(
    src: &S,
    rows: Range<usize>,
) -> Result<NdArray<T>, DecompressError> {
    check_scalar_tag::<T>(src.header())?;
    let shape = src.header().shape;
    let d0 = shape.dim(0);
    if rows.start >= rows.end || rows.end > d0 {
        return Err(DecompressError::RowsOutOfRange { requested_end: rows.end, rows: d0 });
    }
    let row_elems: usize = shape.dims()[1..].iter().product::<usize>().max(1);
    let out_rows = rows.end - rows.start;
    let mut out = vec![T::zero(); out_rows * row_elems];
    for (idx, &entry) in src.entries().iter().enumerate() {
        let e_start = entry.start_row;
        let e_end = e_start + entry.rows;
        if e_end <= rows.start || e_start >= rows.end {
            continue;
        }
        let lo = rows.start.max(e_start);
        let hi = rows.end.min(e_end);
        let chunk = src.fetch_chunk(idx)?;
        out[(lo - rows.start) * row_elems..(hi - rows.start) * row_elems]
            .copy_from_slice(&chunk[(lo - e_start) * row_elems..(hi - e_start) * row_elems]);
    }
    let mut dims = [0usize; MAX_DIMS];
    dims[..shape.ndim()].copy_from_slice(shape.dims());
    dims[0] = out_rows;
    Ok(NdArray::from_vec(Shape::new(&dims[..shape.ndim()]), out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunked::decompress_with_threads_exact;
    use crate::container::{chunk_table, peek_header};
    use crate::pipeline::{compress, decompress};
    use std::io::Cursor;

    fn wavy(shape: Shape) -> NdArray<f32> {
        let mut lin = 0u64;
        NdArray::from_fn(shape, |ix| {
            let mut v = 0.0f64;
            for (a, &c) in ix.iter().enumerate() {
                v += ((c as f64) * 0.13 * (a + 1) as f64).sin() * (8.0 / (a + 1) as f64);
            }
            lin += 1;
            let mut h = lin;
            h ^= h >> 33;
            h = h.wrapping_mul(0xff51afd7ed558ccd);
            h ^= h >> 33;
            v += ((h >> 40) as f64 / (1u64 << 24) as f64 - 0.5) * 0.05;
            v as f32
        })
    }

    fn cfg() -> CompressorConfig {
        CompressorConfig::new(PredictorKind::Lorenzo, ErrorBoundMode::Abs(1e-3))
            .chunked(6)
            .with_threads(2)
    }

    /// Stream `field` through a writer in `slab_rows`-row slabs.
    fn stream_archive(field: &NdArray<f32>, cfg: &CompressorConfig, slab_rows: usize) -> Vec<u8> {
        let shape = field.shape();
        let row_elems: usize = shape.dims()[1..].iter().product::<usize>().max(1);
        let mut w = ArchiveWriter::<f32, Vec<u8>>::create(Vec::new(), shape, cfg).unwrap();
        let mut row = 0;
        while row < shape.dim(0) {
            let rows = slab_rows.min(shape.dim(0) - row);
            let mut dims = [0usize; MAX_DIMS];
            dims[..shape.ndim()].copy_from_slice(shape.dims());
            dims[0] = rows;
            let slab = NdArray::from_vec(
                Shape::new(&dims[..shape.ndim()]),
                field.as_slice()[row * row_elems..(row + rows) * row_elems].to_vec(),
            );
            w.write_slab(&slab).unwrap();
            row += rows;
        }
        w.finalize().unwrap().sink
    }

    #[test]
    fn writer_bytes_independent_of_slab_batching() {
        // The archive must be a pure function of (field, cfg): feeding
        // rows in different slab sizes — aligned or not with chunk
        // boundaries — must produce identical bytes.
        let field = wavy(Shape::d3(25, 8, 6));
        let reference = stream_archive(&field, &cfg(), 25);
        for slab_rows in [1, 4, 6, 7, 13] {
            let bytes = stream_archive(&field, &cfg(), slab_rows);
            assert_eq!(bytes, reference, "slab_rows={slab_rows}");
        }
        assert_eq!(peek_header(&reference).unwrap().version, 4);
    }

    #[test]
    fn v2_2_decodes_via_in_memory_paths() {
        // The buffer-based decompressor and chunk inspection handle v2.2.
        let field = wavy(Shape::d3(20, 10, 8));
        let bytes = stream_archive(&field, &cfg(), 20);
        let back = decompress::<f32>(&bytes).unwrap();
        for (&a, &b) in field.as_slice().iter().zip(back.as_slice()) {
            assert!((a - b).abs() <= 1e-3 * 1.001);
        }
        let back2 = decompress_with_threads_exact::<f32>(&bytes, 3).unwrap();
        assert_eq!(back.as_slice(), back2.as_slice());
        assert_eq!(chunk_table(&bytes).unwrap().entries.len(), 4);
    }

    #[test]
    fn v2_2_chunks_byte_identical_to_v2() {
        // Same field, same chunking: each v2.2 blob must equal its v2
        // counterpart — the formats differ only in where the index lives.
        let field = wavy(Shape::d3(20, 10, 8));
        let streamed = stream_archive(&field, &cfg(), 5);
        let one_shot = compress(&field, &cfg()).unwrap().bytes;
        assert_eq!(peek_header(&one_shot).unwrap().version, 2);
        let t_stream = chunk_table(&streamed).unwrap();
        let t_one = chunk_table(&one_shot).unwrap();
        assert_eq!(t_stream.entries.len(), t_one.entries.len());
        for (a, b) in t_stream.entries.iter().zip(&t_one.entries) {
            assert_eq!(a.rows, b.rows);
            assert_eq!(
                &streamed[a.offset..a.offset + a.len],
                &one_shot[b.offset..b.offset + b.len],
                "chunk at row {} diverged",
                a.start_row
            );
        }
    }

    #[test]
    fn reader_reads_all_chunks_and_rows() {
        let field = wavy(Shape::d3(23, 6, 5));
        let bytes = stream_archive(&field, &cfg(), 9);
        let full = decompress::<f32>(&bytes).unwrap();
        let mut r = ArchiveReader::open(Cursor::new(&bytes[..])).unwrap();
        assert_eq!(r.n_chunks(), 4); // 6+6+6+5
        let all = r.read_all::<f32>().unwrap();
        assert_eq!(all.as_slice(), full.as_slice());
        let (start, slab) = r.read_chunk::<f32>(2).unwrap();
        assert_eq!(start, 12);
        assert_eq!(slab.as_slice(), &full.as_slice()[12 * 30..18 * 30]);
        assert!(matches!(
            r.read_chunk::<f32>(4),
            Err(DecompressError::ChunkOutOfRange { .. })
        ));
    }

    #[test]
    fn read_rows_decodes_only_intersecting_chunks() {
        let field = wavy(Shape::d2(30, 12));
        let bytes = stream_archive(&field, &cfg(), 30); // chunks of 6 rows
        let full = decompress::<f32>(&bytes).unwrap();
        let mut r = ArchiveReader::open(Cursor::new(&bytes[..])).unwrap();
        // Rows 7..11 live entirely inside chunk 1 (rows 6..12).
        let part = r.read_rows::<f32>(7..11).unwrap();
        assert_eq!(part.shape().dims(), &[4, 12]);
        assert_eq!(part.as_slice(), &full.as_slice()[7 * 12..11 * 12]);
        assert_eq!(r.stats().chunks_decoded, 1, "one intersecting chunk");
        // Rows 5..19 intersect chunks 0, 1, 2, 3.
        let part = r.read_rows::<f32>(5..19).unwrap();
        assert_eq!(part.as_slice(), &full.as_slice()[5 * 12..19 * 12]);
        assert_eq!(r.stats().chunks_decoded, 1 + 4);
        // Out-of-range and empty requests are errors.
        assert!(matches!(
            r.read_rows::<f32>(0..31),
            Err(DecompressError::RowsOutOfRange { .. })
        ));
        assert!(matches!(
            r.read_rows::<f32>(3..3),
            Err(DecompressError::RowsOutOfRange { .. })
        ));
    }

    #[test]
    fn reader_handles_all_container_generations() {
        let field = wavy(Shape::d2(24, 10));
        let archives = [
            ("v1", compress(&field, &CompressorConfig::new(PredictorKind::Lorenzo, ErrorBoundMode::Abs(1e-3))).unwrap().bytes),
            ("v2", compress(&field, &cfg()).unwrap().bytes),
            (
                "v2.1",
                compress(&field, &cfg().with_codec(CodecChoice::Auto)).unwrap().bytes,
            ),
            ("v2.2", stream_archive(&field, &cfg(), 7)),
        ];
        for (name, bytes) in archives {
            let full = decompress::<f32>(&bytes).unwrap();
            let mut r = ArchiveReader::open(Cursor::new(&bytes[..])).unwrap();
            let all = r.read_all::<f32>().unwrap();
            assert_eq!(all.as_slice(), full.as_slice(), "{name}: read_all");
            let part = r.read_rows::<f32>(9..17).unwrap();
            assert_eq!(
                part.as_slice(),
                &full.as_slice()[9 * 10..17 * 10],
                "{name}: read_rows"
            );
        }
    }

    #[test]
    fn writer_rejects_unresolvable_and_invalid_configs() {
        let shape = Shape::d2(16, 4);
        let rel = CompressorConfig::new(
            PredictorKind::Lorenzo,
            ErrorBoundMode::ValueRangeRelative(1e-3),
        )
        .chunked(4);
        assert!(matches!(
            ArchiveWriter::<f32, Vec<u8>>::create(Vec::new(), shape, &rel),
            Err(CompressError::InvalidConfig(_))
        ));
        let mut zero_rows = cfg();
        zero_rows.chunking = crate::Chunking::Rows(0);
        assert!(matches!(
            ArchiveWriter::<f32, Vec<u8>>::create(Vec::new(), shape, &zero_rows),
            Err(CompressError::InvalidConfig(_))
        ));
    }

    #[test]
    fn writer_rejects_mismatched_and_excess_slabs() {
        let mut w =
            ArchiveWriter::<f32, Vec<u8>>::create(Vec::new(), Shape::d2(8, 4), &cfg()).unwrap();
        // Wrong trailing dims.
        assert!(matches!(
            w.write_slab(&NdArray::<f32>::zeros(Shape::d2(2, 5))),
            Err(CompressError::InvalidConfig(_))
        ));
        // Too many rows.
        assert!(matches!(
            w.write_slab(&NdArray::<f32>::zeros(Shape::d2(9, 4))),
            Err(CompressError::InvalidConfig(_))
        ));
        // Short coverage fails at finalize.
        w.write_slab(&NdArray::<f32>::zeros(Shape::d2(4, 4))).unwrap();
        assert!(matches!(w.finalize(), Err(CompressError::InvalidConfig(_))));
    }

    #[test]
    fn auto_codec_streaming_roundtrip() {
        // The scheduler runs per chunk inside the writer exactly as in
        // the one-shot adaptive pipeline.
        let field = rq_datagen::fields::mixed_smooth_turbulent(Shape::d3(24, 10, 10), 12, 40.0);
        let c = CompressorConfig::new(PredictorKind::Lorenzo, ErrorBoundMode::Abs(1e-4))
            .chunked(6)
            .with_codec(CodecChoice::Auto)
            .with_threads(2);
        let bytes = stream_archive(&field, &c, 8);
        assert_eq!(peek_header(&bytes).unwrap().version, 6, "adaptive archives are v2.4");
        let table = chunk_table(&bytes).unwrap();
        let kinds: Vec<ChunkCodecKind> = table.entries.iter().map(|e| e.codec).collect();
        // The smooth and turbulent halves land on different codecs (which
        // ones is the scheduler's call — the per-regime winners are pinned
        // down in the scheduler's own tests).
        assert!(kinds[..2] != kinds[2..], "mixed regimes should split: {kinds:?}");
        // Identical chunk bytes to the one-shot v2.4 container.
        let one_shot = compress(&field, &c).unwrap().bytes;
        let t_one = chunk_table(&one_shot).unwrap();
        for (a, b) in table.entries.iter().zip(&t_one.entries) {
            assert_eq!(a.codec, b.codec);
            assert_eq!(
                &bytes[a.offset..a.offset + a.len],
                &one_shot[b.offset..b.offset + b.len]
            );
        }
        let mut r = ArchiveReader::open(Cursor::new(&bytes[..])).unwrap();
        let all = r.read_all::<f32>().unwrap();
        for (&x, &y) in field.as_slice().iter().zip(all.as_slice()) {
            assert!((x - y).abs() <= 1e-4 * 1.001);
        }
    }

    #[test]
    fn planned_writer_roundtrips_per_chunk_bounds() {
        // Heterogeneous plan: every chunk must honor *its own* bound, the
        // container must be v2.3, and the index must echo the plan.
        let field = wavy(Shape::d3(24, 8, 6));
        let plan = vec![1e-2, 1e-4, 2e-3, 5e-5];
        let mut w = ArchiveWriter::<f32, Vec<u8>>::create_planned(
            Vec::new(),
            field.shape(),
            &cfg(),
            plan.clone(),
        )
        .unwrap();
        w.write_slab(&field).unwrap();
        let bytes = w.finalize().unwrap().sink;
        assert_eq!(peek_header(&bytes).unwrap().version, 5);
        assert_eq!(peek_header(&bytes).unwrap().abs_eb, 1e-2, "header bound = max(plan)");
        let table = chunk_table(&bytes).unwrap();
        let ebs: Vec<f64> = table.entries.iter().map(|e| e.eb).collect();
        assert_eq!(ebs, plan);
        // Per-chunk bound conformance through every decode path.
        let full = decompress::<f32>(&bytes).unwrap();
        let mut r = ArchiveReader::open(Cursor::new(&bytes[..])).unwrap();
        let streamed = r.read_all::<f32>().unwrap();
        assert_eq!(full.as_slice(), streamed.as_slice());
        let row_elems = 8 * 6;
        for (entry, &eb) in table.entries.iter().zip(&plan) {
            let lo = entry.start_row * row_elems;
            let hi = (entry.start_row + entry.rows) * row_elems;
            for (a, b) in field.as_slice()[lo..hi].iter().zip(&full.as_slice()[lo..hi]) {
                assert!(((a - b).abs() as f64) <= eb * (1.0 + 1e-6), "chunk bound {eb}");
            }
        }
        // A tighter chunk really is reconstructed more accurately than a
        // loose one (the plan is not a no-op).
        let err_of = |i: usize| -> f64 {
            let e = table.entries[i];
            field.as_slice()[e.start_row * row_elems..(e.start_row + e.rows) * row_elems]
                .iter()
                .zip(&full.as_slice()[e.start_row * row_elems..(e.start_row + e.rows) * row_elems])
                .map(|(a, b)| ((a - b).abs()) as f64)
                .fold(0.0, f64::max)
        };
        assert!(err_of(3) <= 5e-5 * 1.000001);
        assert!(err_of(0) > 5e-5, "loose chunk should actually use its budget");
    }

    #[test]
    fn uniform_plan_blobs_match_fixed_bound_v2_2() {
        // A plan with one bound everywhere must produce chunk blobs
        // byte-identical to the fixed-bound v2.2 session; only the index
        // generation differs.
        let field = wavy(Shape::d3(20, 6, 5));
        let c = cfg();
        let fixed = stream_archive(&field, &c, 20);
        let mut w = ArchiveWriter::<f32, Vec<u8>>::create_planned(
            Vec::new(),
            field.shape(),
            &c,
            vec![1e-3; 4],
        )
        .unwrap();
        w.write_slab(&field).unwrap();
        let planned = w.finalize().unwrap().sink;
        assert_eq!(peek_header(&fixed).unwrap().version, 4);
        assert_eq!(peek_header(&planned).unwrap().version, 5);
        let tf = chunk_table(&fixed).unwrap();
        let tp = chunk_table(&planned).unwrap();
        assert_eq!(tf.entries.len(), tp.entries.len());
        for (a, b) in tf.entries.iter().zip(&tp.entries) {
            assert_eq!(a.codec, b.codec);
            assert_eq!(
                &fixed[a.offset..a.offset + a.len],
                &planned[b.offset..b.offset + b.len]
            );
        }
    }

    #[test]
    fn planned_writer_rejects_bad_plans() {
        let shape = Shape::d2(16, 4);
        // Wrong plan length.
        assert!(matches!(
            ArchiveWriter::<f32, Vec<u8>>::create_planned(
                Vec::new(),
                shape,
                &cfg(),
                vec![1e-3; 2]
            ),
            Err(CompressError::InvalidConfig(_))
        ));
        // Non-finite / non-positive bounds.
        for bad in [f64::NAN, 0.0, -1.0, f64::INFINITY] {
            assert!(matches!(
                ArchiveWriter::<f32, Vec<u8>>::create_planned(
                    Vec::new(),
                    shape,
                    &cfg(),
                    vec![1e-3, bad, 1e-3]
                ),
                Err(CompressError::InvalidBound(_))
            ));
        }
        // Point-wise relative configs cannot be planned.
        let rel = CompressorConfig::new(
            PredictorKind::Lorenzo,
            ErrorBoundMode::PointwiseRelative(1e-3),
        )
        .chunked(6);
        assert!(matches!(
            ArchiveWriter::<f32, Vec<u8>>::create_planned(Vec::new(), shape, &rel, vec![1e-3; 3]),
            Err(CompressError::InvalidConfig(_))
        ));
    }

    #[test]
    fn planned_auto_codec_schedules_per_chunk_bound() {
        // Under Auto, the scheduler sees each chunk's own bound: the same
        // turbulent slab flips from rolz (tight bound, everything escapes
        // to verbatim — which the residual coder carries cheapest) to sz
        // (moderate bound, in-range high-entropy symbols where plain
        // Huffman beats rolz's token overhead) purely by plan.
        let field = rq_datagen::fields::mixed_smooth_turbulent(Shape::d3(12, 10, 10), 0, 40.0);
        let c = CompressorConfig::new(PredictorKind::Lorenzo, ErrorBoundMode::Abs(1e-4))
            .chunked(6)
            .with_codec(CodecChoice::Auto);
        let archive = |plan: Vec<f64>| {
            let mut w = ArchiveWriter::<f32, Vec<u8>>::create_planned(
                Vec::new(),
                field.shape(),
                &c,
                plan,
            )
            .unwrap();
            w.write_slab(&field).unwrap();
            w.finalize().unwrap().sink
        };
        let kinds = |b: &[u8]| -> Vec<ChunkCodecKind> {
            chunk_table(b).unwrap().entries.iter().map(|e| e.codec).collect()
        };
        // One archive, one slab repeated, two bounds: the codec follows
        // the chunk's planned bound, not the archive-wide one.
        let mixed = archive(vec![1e-4, 1.0]);
        assert_eq!(kinds(&mixed), vec![ChunkCodecKind::Rolz, ChunkCodecKind::Sz]);
        let tight = archive(vec![1e-4, 1e-4]);
        assert_eq!(kinds(&tight), vec![ChunkCodecKind::Rolz, ChunkCodecKind::Rolz]);
    }

    #[test]
    fn chunk_source_matches_read_paths() {
        // The trait view of a ConcurrentReader must deliver the same
        // bytes as its direct read paths, count decodes in the aggregate
        // stats, and type out-of-range / scalar errors.
        let field = wavy(Shape::d2(30, 12));
        let bytes = stream_archive(&field, &cfg(), 30); // chunks of 6 rows
        let full = decompress::<f32>(&bytes).unwrap();
        let reader = ConcurrentReader::open(Cursor::new(bytes)).unwrap();
        let src: &dyn ChunkSource<f32> = &reader;
        assert_eq!(src.entries().len(), 5);
        assert_eq!(src.chunk_rows(), 6);
        let chunk = src.fetch_chunk(2).unwrap();
        assert_eq!(&chunk[..], &full.as_slice()[12 * 12..18 * 12]);
        assert_eq!(reader.stats().chunks_decoded, 1);
        assert!(matches!(
            src.fetch_chunk(5),
            Err(DecompressError::ChunkOutOfRange { requested: 5, available: 5 })
        ));
        // Delivery over the trait == the reader's own read_rows, for
        // interior, boundary-straddling and full-field ranges.
        for range in [7..11, 3..25, 0..30] {
            let a = assemble_rows(src, range.clone()).unwrap();
            let b = reader.read_rows::<f32>(range).unwrap();
            assert_eq!(a.shape().dims(), b.shape().dims());
            assert_eq!(a.as_slice(), b.as_slice());
        }
        assert!(matches!(
            assemble_rows::<f32, _>(src, 0..31),
            Err(DecompressError::RowsOutOfRange { .. })
        ));
        assert!(matches!(
            assemble_rows::<f32, _>(src, 4..4),
            Err(DecompressError::RowsOutOfRange { .. })
        ));
        assert!(matches!(
            assemble_rows::<f64, _>(&reader, 0..4),
            Err(DecompressError::ScalarMismatch { .. })
        ));
    }

    #[test]
    fn with_threads_clamps_to_cores_and_exact_does_not() {
        let field = wavy(Shape::d2(12, 6));
        let bytes = stream_archive(&field, &cfg(), 12);
        let cpus = std::thread::available_parallelism().map(|t| t.get()).unwrap_or(1);
        let r = ArchiveReader::open(Cursor::new(&bytes[..])).unwrap().with_threads(cpus + 7);
        assert_eq!(r.threads(), cpus, "with_threads must clamp to the core count");
        let r = ArchiveReader::open(Cursor::new(&bytes[..])).unwrap().with_threads_exact(cpus + 7);
        assert_eq!(r.threads(), cpus + 7, "with_threads_exact must not clamp");
        let r = ArchiveReader::open(Cursor::new(&bytes[..])).unwrap().with_threads(0);
        assert_eq!(r.threads(), cpus, "0 = one per core");
    }

    #[test]
    fn reader_scalar_mismatch_detected() {
        let field = wavy(Shape::d2(12, 6));
        let bytes = stream_archive(&field, &cfg(), 12);
        let mut r = ArchiveReader::open(Cursor::new(&bytes[..])).unwrap();
        assert!(matches!(
            r.read_all::<f64>(),
            Err(DecompressError::ScalarMismatch { .. })
        ));
    }

    #[test]
    fn poisoned_scratch_slab_is_fully_overwritten() {
        // The pools hand back dirty buffers by contract; a partial-take
        // decode through a garbage-seeded scratch pool must still yield
        // exactly the reference rows.
        let field = wavy(Shape::d3(18, 10, 8));
        let bytes = stream_archive(&field, &cfg(), 18);
        let mut r = ArchiveReader::open(Cursor::new(&bytes[..])).unwrap();
        let header = r.header().clone();
        let entry = r.entries()[1];
        let cshape = entry_shape(header.shape, entry);
        let row_elems: usize = header.shape.dims()[1..].iter().product();
        // Reference: rows 1.. of chunk 1 via the normal read path.
        let want =
            r.read_rows::<f32>(entry.start_row + 1..entry.start_row + entry.rows).unwrap();

        let scratch = SlabPool::<f32>::new();
        scratch.seed(vec![vec![f32::NAN; cshape.len()], vec![7.5e30; 3]]);
        let take = row_elems..cshape.len();
        let mut dst = vec![f32::NAN; take.end - take.start];
        let blob = &bytes[entry.offset..entry.offset + entry.len];
        let copied =
            decode_slice_job(&header, blob, SliceJob { entry, cshape, take, dst: &mut dst }, &scratch)
                .unwrap();
        assert!(copied, "a partial take must go through scratch");
        assert_eq!(&dst[..], want.as_slice());
        assert!(dst.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn zfp_zero_blocks_overwrite_dirty_slabs() {
        // An all-zero field makes the zfp encoder emit empty blocks; the
        // decoder must store explicit zeros rather than assume a zeroed
        // destination, or recycled slabs would leak garbage.
        let field = NdArray::<f32>::from_fn(Shape::d3(12, 8, 8), |_| 0.0);
        let zcfg = CompressorConfig::new(PredictorKind::Lorenzo, ErrorBoundMode::Abs(1e-3))
            .chunked(6)
            .with_codec(CodecChoice::Zfp);
        let bytes = stream_archive(&field, &zcfg, 12);
        let r = ArchiveReader::open(Cursor::new(&bytes[..])).unwrap();
        let header = r.header().clone();
        let entry = r.entries()[0];
        let cshape = entry_shape(header.shape, entry);
        let row_elems: usize = header.shape.dims()[1..].iter().product();
        let scratch = SlabPool::<f32>::new();
        scratch.seed(vec![vec![123.0f32; cshape.len()]]);
        let take = row_elems..cshape.len();
        let mut dst = vec![123.0f32; take.end - take.start];
        let blob = &bytes[entry.offset..entry.offset + entry.len];
        decode_slice_job(&header, blob, SliceJob { entry, cshape, take, dst: &mut dst }, &scratch)
            .unwrap();
        assert!(dst.iter().all(|&v| v == 0.0), "dirty slab leaked through zfp zero blocks");
    }

    #[test]
    fn repeated_reads_recycle_buffers_byte_identically() {
        // Later reads run on recycled (dirty) blob buffers and scratch
        // slabs — natural poisoning across calls — and must match the
        // first read exactly; aligned reads must never reorder-copy.
        let field = wavy(Shape::d3(24, 10, 8));
        let bytes = stream_archive(&field, &cfg(), 24);
        for threads in [1usize, 2] {
            let mut r = ArchiveReader::open(Cursor::new(&bytes[..]))
                .unwrap()
                .with_threads_exact(threads);
            let first = r.read_rows::<f32>(0..24).unwrap();
            for _ in 0..3 {
                let again = r.read_rows::<f32>(0..24).unwrap();
                assert_eq!(first.as_slice(), again.as_slice(), "threads={threads}");
            }
            assert_eq!(r.stats().reorder_copies, 0, "aligned reads must decode in place");
            // Cropping rows 3..15 cuts chunks 0 and 2 mid-chunk.
            let _ = r.read_rows::<f32>(3..15).unwrap();
            assert_eq!(r.stats().reorder_copies, 2, "threads={threads}");
        }
    }

    #[test]
    fn open_path_mapped_reader_matches_in_memory() {
        let field = wavy(Shape::d3(24, 10, 8));
        let bytes = stream_archive(&field, &cfg(), 24);
        let dir = std::env::temp_dir().join("rqm_stream_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("mapped_{}.rqm", std::process::id()));
        std::fs::write(&path, &bytes).unwrap();

        let mut want_r = ArchiveReader::open(Cursor::new(&bytes[..])).unwrap();
        let want = want_r.read_all::<f32>().unwrap();

        for threads in [1usize, 2, 4] {
            let mut r = ArchiveReader::open_path(&path).unwrap().with_threads_exact(threads);
            if cfg!(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))
            {
                assert!(r.is_mapped(), "expected an mmap-backed reader on Linux");
            }
            assert_eq!(want.as_slice(), r.read_all::<f32>().unwrap().as_slice());
            // Ordered streaming over the same mapped source.
            let mut streamed: Vec<f32> = Vec::new();
            let mut r = ArchiveReader::open_path(&path).unwrap().with_threads_exact(threads);
            r.decompress_rows::<f32>(|slab| {
                streamed.extend_from_slice(slab);
                Ok(())
            })
            .unwrap();
            assert_eq!(want.as_slice(), &streamed[..], "ordered threads={threads}");
        }

        // Concurrent mapped reader: fetches take no lock, bytes agree.
        let cr = ConcurrentReader::open_path(&path).unwrap();
        assert_eq!(want.as_slice(), cr.read_all::<f32>().unwrap().as_slice());
        assert_eq!(cr.stats().reorder_copies, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn finished_archive_report_matches_one_shot() {
        let field = wavy(Shape::d3(20, 8, 8));
        let shape = field.shape();
        let mut w = ArchiveWriter::<f32, Vec<u8>>::create(Vec::new(), shape, &cfg()).unwrap();
        w.write_slab(&field).unwrap();
        let fin = w.finalize().unwrap();
        assert_eq!(fin.bytes_written as usize, fin.sink.len());
        let (_, rep) = crate::pipeline::compress_with_report(&field, &cfg()).unwrap();
        assert_eq!(fin.report.n_chunks, rep.n_chunks);
        assert_eq!(fin.report.n_quantized, rep.n_quantized);
        assert_eq!(fin.report.n_unpredictable, rep.n_unpredictable);
        assert_eq!(fin.report.huffman_bytes, rep.huffman_bytes);
        assert_eq!(fin.report.symbol_histogram, rep.symbol_histogram);
        // Container size differs only by index placement/encoding.
        assert_eq!(fin.report.n_elements, rep.n_elements);
    }
}
