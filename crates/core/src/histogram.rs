//! Estimated quantization-code histograms (paper §III-C4).
//!
//! Given the sampled prediction errors and a candidate error bound, the
//! model quantizes the *samples* (bin width `2·eb`) to estimate the
//! quantization-code histogram the compressor would produce. Because the
//! samples were predicted from original values while the compressor
//! predicts from reconstructed ones, the estimate is corrected by the
//! bin-transfer of Eq. 9: once the zero bin exceeds θ₂ = 80 %, a fraction
//! `C₂·(1−p₀)` of every bin leaks to its two neighbors, emulating the extra
//! dispersion caused by reconstruction feedback.

use crate::sampling::ErrorSample;
use std::collections::BTreeMap;

/// Bin-transfer activation threshold θ₂ of Eq. 9.
pub const BIN_TRANSFER_THRESHOLD: f64 = 0.8;

/// A (weighted, sparse) estimated quantization-code histogram.
#[derive(Clone, Debug)]
pub struct EstimatedHistogram {
    /// Weighted mass per quantization code.
    bins: BTreeMap<i32, f64>,
    /// Total in-range mass.
    total: f64,
    /// Mass quantized beyond the code radius (escape path).
    pub escape_mass: f64,
    /// Weighted variance of the errors that landed in the central bin —
    /// the `σ(B[0])` of Eq. 11.
    pub central_bin_variance: f64,
}

impl EstimatedHistogram {
    /// Quantize the error sample at `eb` with the given code radius and
    /// apply the correction layer of §III-C4: the Eq. 9 bin transfer plus
    /// the reconstruction-feedback noise `κ·eb` (see
    /// [`ErrorSample::feedback_kappa`]) that emulates predicting from
    /// reconstructed instead of original values.
    pub fn build(sample: &ErrorSample, eb: f64, radius: u32) -> Self {
        assert!(eb > 0.0 && eb.is_finite(), "invalid error bound {eb}");
        let mut bins: BTreeMap<i32, f64> = BTreeMap::new();
        let mut escape_mass = 0.0;
        let mut total = 0.0;
        let mut central_sum = 0.0;
        let mut central_sq = 0.0;
        let mut central_w = 0.0;
        let bin_width = 2.0 * eb;
        // Deterministic ≈N(0,1) stream for the feedback perturbation
        // (Irwin–Hall sum of four uniforms, standardized). The feedback
        // scale grows with eb but saturates at a few signal scales: once
        // the bin dwarfs the data's own variation, reconstruction drift is
        // governed by the signal, not the bound.
        let kappa = sample.feedback_kappa;
        let fb_scale = if kappa > 0.0 {
            (kappa * eb).min(8.0 * sample.weighted_std().max(f64::MIN_POSITIVE))
        } else {
            0.0
        };
        let mut fb_state = 0x9E37_79B9_7F4A_7C15u64;
        let mut fb_noise = move || -> f64 {
            let mut acc = 0.0;
            for _ in 0..4 {
                fb_state ^= fb_state << 13;
                fb_state ^= fb_state >> 7;
                fb_state ^= fb_state << 17;
                acc += (fb_state >> 11) as f64 / (1u64 << 53) as f64;
            }
            // Sum of 4 uniforms: mean 2, std √(1/3).
            (acc - 2.0) / (1.0f64 / 3.0).sqrt()
        };
        for (&err, &w) in sample.errors.iter().zip(&sample.weights) {
            if !err.is_finite() {
                escape_mass += w;
                continue;
            }
            // Feedback noise at a point originates from its neighbors'
            // reconstruction errors. In code-0-dominated neighborhoods the
            // residual a neighbor passes on is its own (small) prediction
            // error, not ±eb, so the dispersion saturates *per point* at a
            // few times the point's own error magnitude — the local error
            // scale's cheapest proxy. Without this, quiet sub-threshold
            // chunks are smeared across bins and the model overestimates
            // both their rate and their variance by an order of magnitude
            // (visible in per-chunk quality-targeted planning).
            let err = if fb_scale > 0.0 {
                err + fb_scale.min(8.0 * err.abs()) * fb_noise()
            } else {
                err
            };
            let code = (err / bin_width).round();
            if code.abs() > radius as f64 {
                escape_mass += w;
                continue;
            }
            let code = code as i32;
            *bins.entry(code).or_insert(0.0) += w;
            total += w;
            if code == 0 {
                central_sum += w * err;
                central_sq += w * err * err;
                central_w += w;
            }
        }
        let central_bin_variance = if central_w > 0.0 {
            let mean = central_sum / central_w;
            // The sampled central variance; the model applies the cascade
            // inflation (ErrorSample::quality_kappa) on top, since it
            // needs the sparse fraction which lives outside the histogram.
            (central_sq / central_w - mean * mean).max(0.0)
        } else {
            0.0
        };
        let mut h = EstimatedHistogram { bins, total, escape_mass, central_bin_variance };
        h.apply_bin_transfer(sample.predictor.bin_transfer_c2());
        h
    }

    /// Eq. 9: when `p0 ≥ θ₂`, transfer `C₂·(1−p₀)` of each bin's mass
    /// evenly to its two neighbors.
    fn apply_bin_transfer(&mut self, c2: f64) {
        if c2 == 0.0 || self.total == 0.0 || self.p0() < BIN_TRANSFER_THRESHOLD {
            return;
        }
        let p0 = self.p0();
        let frac = c2 * (1.0 - p0);
        if frac <= 0.0 {
            return;
        }
        let mut deltas: Vec<(i32, f64)> = Vec::with_capacity(self.bins.len() * 3);
        for (&code, &mass) in &self.bins {
            let moved = mass * frac;
            deltas.push((code, -moved));
            deltas.push((code - 1, moved / 2.0));
            deltas.push((code + 1, moved / 2.0));
        }
        for (code, d) in deltas {
            *self.bins.entry(code).or_insert(0.0) += d;
        }
        self.bins.retain(|_, m| *m > 1e-12);
    }

    /// Fraction of (in-range) mass in the zero bin — the model's `p0`.
    pub fn p0(&self) -> f64 {
        if self.total == 0.0 {
            return 0.0;
        }
        self.bins.get(&0).copied().unwrap_or(0.0) / self.total
    }

    /// Fraction of all sampled mass that escapes the code range.
    pub fn escape_fraction(&self) -> f64 {
        let all = self.total + self.escape_mass;
        if all == 0.0 {
            0.0
        } else {
            self.escape_mass / all
        }
    }

    /// Normalized (probability) view of the code bins.
    pub fn probabilities(&self) -> impl Iterator<Item = (i32, f64)> + '_ {
        let t = self.total.max(f64::MIN_POSITIVE);
        self.bins.iter().map(move |(&c, &m)| (c, m / t))
    }

    /// Number of occupied bins.
    pub fn occupied_bins(&self) -> usize {
        self.bins.len()
    }

    /// Shannon entropy of the code distribution in bits.
    pub fn entropy(&self) -> f64 {
        self.probabilities()
            .filter(|&(_, p)| p > 0.0)
            .map(|(_, p)| -p * p.log2())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rq_predict::PredictorKind;

    fn sample_of(errors: Vec<f64>, predictor: PredictorKind) -> ErrorSample {
        let weights = vec![1.0; errors.len()];
        ErrorSample {
            errors,
            weights,
            predictor,
            n_elements: 1000,
            verbatim_fraction: 0.0,
            side_bits_per_element: 0.0,
            feedback_kappa: 0.0,
            quality_kappa: 0.0,
            sparse_fraction: 0.0,
        }
    }

    #[test]
    fn quantizes_to_expected_bins() {
        let s = sample_of(vec![0.0, 0.4, 0.6, -0.6, 2.1, -50.0], PredictorKind::Regression);
        let h = EstimatedHistogram::build(&s, 0.5, 10);
        // bin width 1.0: codes 0, 0, 1, -1, 2, escape(-50).
        let bins: BTreeMap<i32, f64> = h.probabilities().collect();
        assert!((h.p0() - 2.0 / 5.0).abs() < 1e-12);
        assert!(bins.contains_key(&1) && bins.contains_key(&-1) && bins.contains_key(&2));
        assert!((h.escape_fraction() - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn p0_grows_with_eb() {
        let errors: Vec<f64> = (0..1000).map(|i| ((i as f64) * 0.377).sin()).collect();
        let s = sample_of(errors, PredictorKind::Regression);
        let p_small = EstimatedHistogram::build(&s, 0.01, 1 << 15).p0();
        let p_big = EstimatedHistogram::build(&s, 1.0, 1 << 15).p0();
        assert!(p_small < p_big);
        assert!((p_big - 1.0).abs() < 1e-12, "eb 1.0 covers sin range");
    }

    #[test]
    fn bin_transfer_only_above_threshold() {
        // 85% zeros: Lorenzo triggers the Eq. 9 correction.
        let mut errors = vec![0.0; 850];
        errors.extend(vec![1.0; 150]);
        let s = sample_of(errors.clone(), PredictorKind::Lorenzo);
        let h = EstimatedHistogram::build(&s, 0.4, 1 << 15);
        // Without transfer p0 would be exactly 0.85; with C2=0.2 mass moved
        // out of the zero bin.
        assert!(h.p0() < 0.85, "p0 {} should shrink", h.p0());
        // Regression (C2 = 0) must not move anything.
        let s2 = sample_of(errors, PredictorKind::Regression);
        let h2 = EstimatedHistogram::build(&s2, 0.4, 1 << 15);
        assert!((h2.p0() - 0.85).abs() < 1e-12);
    }

    #[test]
    fn below_threshold_no_transfer() {
        let mut errors = vec![0.0; 700];
        errors.extend((0..300).map(|i| 1.0 + (i % 5) as f64));
        let s = sample_of(errors, PredictorKind::Lorenzo);
        let h = EstimatedHistogram::build(&s, 0.4, 1 << 15);
        assert!((h.p0() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn mass_conserved_by_transfer() {
        let mut errors = vec![0.0; 9500];
        errors.extend(vec![0.9; 500]);
        let s = sample_of(errors, PredictorKind::Lorenzo);
        let h = EstimatedHistogram::build(&s, 0.4, 1 << 15);
        let total: f64 = h.probabilities().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn central_bin_variance_reflects_concentration() {
        // Tight errors: central variance << eb²/3.
        let errors: Vec<f64> = (0..1000).map(|i| (i as f64 / 1000.0 - 0.5) * 0.02).collect();
        let s = sample_of(errors, PredictorKind::Regression);
        let eb = 0.5;
        let h = EstimatedHistogram::build(&s, eb, 1 << 15);
        assert!(h.central_bin_variance < eb * eb / 3.0 / 100.0);
    }

    #[test]
    fn entropy_of_uniform_codes() {
        let errors: Vec<f64> = (0..4096).map(|i| (i % 16) as f64 - 7.5).collect();
        let s = sample_of(errors, PredictorKind::Regression);
        let h = EstimatedHistogram::build(&s, 0.5, 1 << 15);
        assert!((h.entropy() - 4.0).abs() < 0.01, "entropy {}", h.entropy());
    }

    #[test]
    fn nan_errors_escape() {
        let s = sample_of(vec![f64::NAN, 0.0, f64::INFINITY], PredictorKind::Regression);
        let h = EstimatedHistogram::build(&s, 1.0, 10);
        assert!((h.escape_fraction() - 2.0 / 3.0).abs() < 1e-12);
    }
}
