//! Analytical ratio-quality model for prediction-based lossy compression.
//!
//! This crate is the paper's primary contribution (§III): given **one**
//! cheap sampling pass over a field (default 1 % of points), it predicts —
//! for *any* error bound, without compressing —
//!
//! * the Huffman bit-rate (Eq. 1) and the optional-lossless ratio via the
//!   RLE model (Eq. 4), hence the overall compression ratio,
//! * the inverse mappings error-bound ← target bit-rate (Eq. 2, with
//!   anchor-point interpolation once `p0 > 0.5`) and ← target ratio (Eq. 8),
//! * the reconstruction-error distribution (Eq. 10 uniform, Eq. 11
//!   refined), and from it PSNR (Eq. 12), SSIM (Eq. 15) and FFT
//!   power-spectrum degradation (§III-D4).
//!
//! ```
//! use rq_core::RqModel;
//! use rq_datagen::fields;
//! use rq_predict::PredictorKind;
//!
//! let field = fields::qmcpack_einspline();
//! let model = RqModel::build(&field, PredictorKind::Lorenzo, 0.01, 42);
//! let est = model.estimate(1e-3);
//! println!("predicted bit-rate {:.2}, PSNR {:.1} dB", est.bit_rate, est.psnr);
//! // Invert: which error bound hits 2 bits/value?
//! let eb = model.error_bound_for_bit_rate(2.0);
//! assert!((model.estimate(eb).bit_rate - 2.0).abs() < 0.5);
//! ```
//!
//! The three use-cases of §IV live in [`usecases`]: best-predictor
//! selection, fixed-footprint memory compression and in-situ per-partition
//! error-bound optimization.
//!
//! ## Paper-section map
//!
//! | Module        | Paper section | Implements                               |
//! |---------------|---------------|------------------------------------------|
//! | [`sampling`]  | §III-C1       | 1 % prediction-error sampling pass       |
//! | [`histogram`] | §III-C2–C4    | quantization-bin histogram estimation    |
//! | [`ratio`]     | §III-B, Eq. 1–8 | bit-rate / lossless-ratio model        |
//! | [`quality`]   | §III-D, Eq. 10–15 | PSNR / SSIM / FFT quality model      |
//! | [`model`]     | §III          | the assembled [`RqModel`]                |
//! | [`usecases`]  | §IV           | the three model-driven use-cases         |

#![warn(missing_docs)]

pub mod histogram;
pub mod model;
pub mod quality;
pub mod ratio;
pub mod sampling;
pub mod usecases;

pub use histogram::EstimatedHistogram;
pub use model::{Estimate, RqModel};
pub use sampling::{sample_errors, ErrorSample};
