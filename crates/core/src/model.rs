//! The top-level ratio-quality model facade.

use crate::histogram::EstimatedHistogram;
use crate::quality;
use crate::ratio::{huffman_bit_rate, rle_ratio};
use crate::sampling::{sample_errors, ErrorSample};
use rq_grid::stats::Moments;
use rq_grid::{NdArray, Scalar};
use rq_predict::PredictorKind;
use rq_quant::DEFAULT_RADIUS;
use std::time::{Duration, Instant};

/// Residual cost (bits/symbol) of quiescent exact-zero regions after the
/// lossless stage: contiguous zero runs collapse to sporadic run tokens.
/// Calibrated against the RLE coder on wavefield snapshots.
const SPARSE_RESIDUAL_BITS: f64 = 0.05;

/// Everything the model predicts for one error bound — the full
/// ratio-quality picture of the paper, obtained without compressing.
#[derive(Clone, Copy, Debug)]
pub struct Estimate {
    /// The absolute error bound the estimate is for.
    pub eb: f64,
    /// Predicted zero-code probability.
    pub p0: f64,
    /// Predicted fraction of unpredictable (escape) values.
    pub escape_fraction: f64,
    /// Predicted bit-rate with Huffman coding only (bits/value, including
    /// codebook, verbatim and side-channel overheads) — Fig. 5 "Huffman".
    pub bit_rate_huffman: f64,
    /// Predicted overall bit-rate with the optional lossless stage —
    /// Fig. 5 "overall".
    pub bit_rate: f64,
    /// Predicted overall compression ratio.
    pub ratio: f64,
    /// Error variance under the uniform assumption (Eq. 10).
    pub sigma2_uniform: f64,
    /// Refined error variance (Eq. 11).
    pub sigma2: f64,
    /// Predicted PSNR from the refined variance (Eq. 12).
    pub psnr: f64,
    /// Predicted PSNR from the uniform variance (the dashed line of
    /// Fig. 6).
    pub psnr_uniform: f64,
    /// Predicted global SSIM (Eq. 15).
    pub ssim: f64,
}

/// A built ratio-quality model for one (field, predictor) pair.
///
/// Construction performs the single sampling pass (§III-C); every
/// subsequent [`RqModel::estimate`] call is a pure computation on the
/// sampled histogram and costs microseconds — this asymmetry is the entire
/// point of the paper (Fig. 9).
#[derive(Clone, Debug)]
pub struct RqModel {
    sample: ErrorSample,
    radius: u32,
    scalar_bits: u32,
    value_range: f64,
    data_variance: f64,
    build_time: Duration,
}

impl RqModel {
    /// Sample `field` for `predictor` at `rate` (paper default 0.01) and
    /// build the model.
    pub fn build<T: Scalar>(
        field: &NdArray<T>,
        predictor: PredictorKind,
        rate: f64,
        seed: u64,
    ) -> Self {
        let start = Instant::now();
        let sample = sample_errors(field, predictor, rate, seed);
        // Range and variance from the same sampling budget (cheap single
        // pass; the range must be global so we take the exact one — an
        // O(n) scan, still trivially cheaper than compression).
        let value_range = field.value_range();
        let data_variance = Moments::from_slice(field.as_slice()).variance();
        RqModel {
            sample,
            radius: DEFAULT_RADIUS,
            scalar_bits: T::BITS,
            value_range,
            data_variance,
            build_time: start.elapsed(),
        }
    }

    /// Deterministic per-chunk model build for quality-targeted
    /// compression: a strided, RNG-free prediction-error sample
    /// ([`rq_predict::sample_prediction_errors`]) promoted to a full
    /// model, plus one exact pass over the slab for its value range and
    /// variance. Unlike [`Self::build`] the result depends only on
    /// `(data, shape, predictor, target_samples)` — per-chunk plans (and
    /// therefore container bytes) must be reproducible.
    pub fn build_strided<T: Scalar>(
        data: &[T],
        shape: rq_grid::Shape,
        predictor: PredictorKind,
        target_samples: usize,
    ) -> Self {
        let start = Instant::now();
        let ps = rq_predict::sample_prediction_errors(data, shape, predictor, target_samples);
        let sample = crate::sampling::ErrorSample::from_prediction_sample(&ps);
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for v in data {
            let v = v.to_f64();
            if v.is_nan() {
                continue;
            }
            lo = lo.min(v);
            hi = hi.max(v);
        }
        let value_range = if lo <= hi { hi - lo } else { 0.0 };
        let data_variance = Moments::from_slice(data).variance();
        RqModel {
            sample,
            radius: DEFAULT_RADIUS,
            scalar_bits: T::BITS,
            value_range,
            data_variance,
            build_time: start.elapsed(),
        }
    }

    /// Build from an existing error sample (for custom sampling setups).
    pub fn from_sample(
        sample: ErrorSample,
        scalar_bits: u32,
        value_range: f64,
        data_variance: f64,
    ) -> Self {
        RqModel {
            sample,
            radius: DEFAULT_RADIUS,
            scalar_bits,
            value_range,
            data_variance,
            build_time: Duration::ZERO,
        }
    }

    /// Time spent building (sampling + field statistics).
    pub fn build_time(&self) -> Duration {
        self.build_time
    }

    /// The predictor this model was sampled for.
    pub fn predictor(&self) -> PredictorKind {
        self.sample.predictor
    }

    /// The underlying error sample.
    pub fn sample(&self) -> &ErrorSample {
        &self.sample
    }

    /// Value range of the modelled field.
    pub fn value_range(&self) -> f64 {
        self.value_range
    }

    /// Variance of the modelled field.
    pub fn data_variance(&self) -> f64 {
        self.data_variance
    }

    /// Predict ratio and quality for an absolute error bound (the core
    /// operation, Fig. 2).
    pub fn estimate(&self, eb: f64) -> Estimate {
        // The histogram covers the *dense* (non-sparse) symbols; quiescent
        // exact-zero regions were removed at sampling time (§III-C) and are
        // folded back in below.
        let hist = EstimatedHistogram::build(&self.sample, eb, self.radius);
        let sf = self.sample.sparse_fraction;
        let p0_dense = hist.p0();
        let p0 = sf + (1.0 - sf) * p0_dense;
        let b_dense = huffman_bit_rate(&hist);
        let b_comb = crate::ratio::huffman_bit_rate_sparse(&hist, sf);
        let bits = self.scalar_bits as f64;

        let symbol_frac = 1.0 - self.sample.verbatim_fraction;
        let escape_frac = symbol_frac * (1.0 - sf) * hist.escape_fraction();
        let verbatim_bits = (self.sample.verbatim_fraction + escape_frac) * bits;
        // Serialized codebook ≈ 1 byte per occupied bin (zero-RLE lengths).
        let codebook_bits = hist.occupied_bins() as f64 * 8.0 / self.sample.n_elements as f64;
        let overhead_bits =
            verbatim_bits + self.sample.side_bits_per_element + codebook_bits;

        // Huffman-only: every symbol (dense or sparse) pays its code.
        let bit_rate_huffman = symbol_frac * b_comb + overhead_bits;
        // With the lossless stage: dense symbols follow the Eq. 4 RLE model;
        // sparse zeros come in contiguous runs and are nearly free.
        let rle = rle_ratio(p0_dense, b_dense.max(1e-9));
        let dense_overall = b_dense / rle;
        let payload_overall =
            symbol_frac * ((1.0 - sf) * dense_overall + sf * SPARSE_RESIDUAL_BITS);
        let bit_rate = payload_overall + overhead_bits;
        let ratio = bits / bit_rate.max(1e-12);

        let sigma2_uniform = quality::sigma2_uniform(eb);
        // Cascade inflation of the central-bin variance (multi-level
        // interpolation feedback; see ErrorSample::quality_kappa), capped
        // at the uniform in-bin variance.
        let g = self.sample.quality_kappa;
        let central = if g > 0.0 {
            let gain = 1.0 / (1.0 - g * p0_dense).max(0.05);
            (hist.central_bin_variance * gain).min(eb * eb / 3.0)
        } else {
            hist.central_bin_variance
        };
        // Sparse points reconstruct exactly: scale the dense variance.
        let sigma2 = (1.0 - sf) * quality::sigma2_refined(eb, p0_dense, central);
        let c3 = (0.03 * self.value_range).powi(2);
        Estimate {
            eb,
            p0,
            escape_fraction: escape_frac,
            bit_rate_huffman,
            bit_rate,
            ratio,
            sigma2_uniform,
            sigma2,
            psnr: quality::psnr_model(self.value_range, sigma2),
            psnr_uniform: quality::psnr_model(self.value_range, sigma2_uniform),
            ssim: quality::ssim_model(self.data_variance, c3, sigma2),
        }
    }

    /// Weighted quantile of |prediction error|: the error bound at which
    /// the zero bin captures probability `p` (the anchor-point machinery of
    /// §III-B1).
    pub fn error_quantile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "quantile {p} outside [0,1]");
        let mut pairs: Vec<(f64, f64)> = self
            .sample
            .errors
            .iter()
            .zip(&self.sample.weights)
            .map(|(&e, &w)| (e.abs(), w))
            .filter(|(e, _)| e.is_finite())
            .collect();
        if pairs.is_empty() {
            return 0.0;
        }
        pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
        let total: f64 = pairs.iter().map(|(_, w)| w).sum();
        let target = p * total;
        let mut acc = 0.0;
        for &(e, w) in &pairs {
            acc += w;
            if acc >= target {
                return e.max(f64::MIN_POSITIVE);
            }
        }
        pairs.last().unwrap().0.max(f64::MIN_POSITIVE)
    }

    fn eb_search_range(&self) -> (f64, f64) {
        let scale = self
            .error_quantile(0.9)
            .max(self.value_range * 1e-12)
            .max(f64::MIN_POSITIVE);
        (scale * 1e-9, (self.value_range.max(scale)) * 10.0)
    }

    /// Error bound achieving a target overall bit-rate (fix-rate mode).
    ///
    /// Monotone bisection over the model — still a pure computation on the
    /// one-time sample, never a recompression.
    pub fn error_bound_for_bit_rate(&self, target_bit_rate: f64) -> f64 {
        let (mut lo, mut hi) = self.eb_search_range();
        // bit_rate decreases as eb grows.
        for _ in 0..100 {
            let mid = (lo.ln() + hi.ln()).mul_add(0.5, 0.0).exp();
            if self.estimate(mid).bit_rate > target_bit_rate {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        (lo.ln() * 0.5 + hi.ln() * 0.5).exp()
    }

    /// Paper-faithful Eq. 2 inversion: `e* = 2^(B−B*)·e`, switching to
    /// anchor-point interpolation at `p0 ∈ {0.5, 0.8, 0.95}` once the
    /// doubling argument breaks down (§III-B1).
    pub fn error_bound_for_bit_rate_eq2(&self, target_bit_rate: f64) -> f64 {
        // Profile in the valid region: pick e with p0 ≈ 0.3.
        let e_profile = self.error_quantile(0.3).max(f64::MIN_POSITIVE);
        let b_profile = self.estimate(e_profile).bit_rate_huffman;
        let e_star = 2f64.powf(b_profile - target_bit_rate) * e_profile;
        if self.estimate(e_star).p0 < 0.5 {
            return e_star;
        }
        // Anchor interpolation: (B, ln e) at p0 anchors, linear in between.
        let anchors: Vec<(f64, f64)> = [0.5, 0.8, 0.95]
            .iter()
            .map(|&p| {
                let e = self.error_quantile(p);
                (self.estimate(e).bit_rate_huffman, e.ln())
            })
            .collect();
        // Bit rates decrease along the anchor list.
        if target_bit_rate >= anchors[0].0 {
            // Still in (or before) the first anchor: fall back to Eq. 2
            // against the first anchor point.
            return (2f64.powf(anchors[0].0 - target_bit_rate) * anchors[0].1.exp())
                .min(self.eb_search_range().1);
        }
        for w in anchors.windows(2) {
            let (b_hi, ln_lo) = w[0];
            let (b_lo, ln_hi) = w[1];
            if target_bit_rate <= b_hi && target_bit_rate >= b_lo {
                let t = if (b_hi - b_lo).abs() < 1e-12 {
                    0.5
                } else {
                    (b_hi - target_bit_rate) / (b_hi - b_lo)
                };
                return (ln_lo + t * (ln_hi - ln_lo)).exp();
            }
        }
        // Beyond the last anchor: extrapolate along the last segment.
        let (b_hi, ln_lo) = anchors[1];
        let (b_lo, ln_hi) = anchors[2];
        let slope = (ln_hi - ln_lo) / (b_lo - b_hi).min(-1e-9);
        (ln_hi + slope * (target_bit_rate - b_lo)).exp()
    }

    /// Error bound achieving a target overall compression ratio.
    pub fn error_bound_for_ratio(&self, target_ratio: f64) -> f64 {
        assert!(target_ratio > 0.0, "ratio must be positive");
        self.error_bound_for_bit_rate(self.scalar_bits as f64 / target_ratio)
    }

    /// Error bound achieving a target PSNR (quality floor).
    pub fn error_bound_for_psnr(&self, target_db: f64) -> f64 {
        let (mut lo, mut hi) = self.eb_search_range();
        // psnr decreases as eb grows.
        for _ in 0..100 {
            let mid = ((lo.ln() + hi.ln()) * 0.5).exp();
            if self.estimate(mid).psnr > target_db {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        ((lo.ln() + hi.ln()) * 0.5).exp()
    }

    /// Estimated rate-distortion curve over a grid of error bounds —
    /// the Fig. 10 series.
    pub fn rate_distortion_curve(&self, ebs: &[f64]) -> Vec<Estimate> {
        ebs.iter().map(|&e| self.estimate(e)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rq_grid::Shape;

    /// A field with genuine fine-scale randomness so rate varies with eb.
    fn noisy_field() -> NdArray<f32> {
        let mut state = 0xABCDu64;
        NdArray::from_fn(Shape::d2(128, 128), |ix| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let noise = (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
            ((ix[0] as f64 * 0.07).sin() * 5.0 + (ix[1] as f64 * 0.05).cos() * 3.0 + noise * 0.3)
                as f32
        })
    }

    #[test]
    fn estimates_are_monotone_in_eb() {
        let f = noisy_field();
        let m = RqModel::build(&f, PredictorKind::Lorenzo, 0.1, 1);
        let es: Vec<Estimate> =
            [1e-4, 1e-3, 1e-2, 1e-1].iter().map(|&e| m.estimate(e)).collect();
        for w in es.windows(2) {
            assert!(w[1].bit_rate <= w[0].bit_rate + 1e-9, "bit rate must fall");
            assert!(w[1].p0 >= w[0].p0 - 1e-9, "p0 must rise");
            assert!(w[1].psnr <= w[0].psnr + 1e-9, "psnr must fall");
            assert!(w[1].ssim <= w[0].ssim + 1e-9, "ssim must fall");
        }
    }

    #[test]
    fn bit_rate_inversion_roundtrip() {
        let f = noisy_field();
        // Lorenzo: reconstruction feedback floors its rate near ~1.4 bits,
        // so test it above that; interpolation reaches far lower rates.
        let m = RqModel::build(&f, PredictorKind::Lorenzo, 0.1, 2);
        for target in [2.0, 4.0, 8.0] {
            let eb = m.error_bound_for_bit_rate(target);
            let got = m.estimate(eb).bit_rate;
            assert!((got - target).abs() < 0.25, "target {target} got {got} (eb {eb})");
        }
        let mi = RqModel::build(&f, PredictorKind::Interpolation, 0.1, 2);
        for target in [0.5, 1.0, 4.0] {
            let eb = mi.error_bound_for_bit_rate(target);
            let got = mi.estimate(eb).bit_rate;
            assert!((got - target).abs() < 0.3, "interp target {target} got {got} (eb {eb})");
        }
    }

    #[test]
    fn eq2_inversion_close_in_valid_region() {
        let f = noisy_field();
        let m = RqModel::build(&f, PredictorKind::Lorenzo, 0.1, 3);
        // Moderate bit-rates: p0 < 0.5 regime where Eq. 2 applies.
        for target in [4.0, 6.0] {
            let eb = m.error_bound_for_bit_rate_eq2(target);
            let got = m.estimate(eb).bit_rate_huffman;
            assert!((got - target).abs() < 1.0, "target {target} got {got}");
        }
    }

    #[test]
    fn psnr_inversion_roundtrip() {
        let f = noisy_field();
        let m = RqModel::build(&f, PredictorKind::Interpolation, 0.1, 4);
        for target in [40.0, 60.0, 80.0] {
            let eb = m.error_bound_for_psnr(target);
            let got = m.estimate(eb).psnr;
            assert!((got - target).abs() < 1.0, "target {target} got {got}");
        }
    }

    #[test]
    fn ratio_inversion_consistent_with_bit_rate() {
        let f = noisy_field();
        let m = RqModel::build(&f, PredictorKind::Lorenzo, 0.1, 5);
        let eb = m.error_bound_for_ratio(16.0); // 2 bits/value for f32
        let est = m.estimate(eb);
        assert!((est.ratio - 16.0).abs() / 16.0 < 0.2, "ratio {}", est.ratio);
    }

    #[test]
    fn error_quantile_monotone() {
        let f = noisy_field();
        let m = RqModel::build(&f, PredictorKind::Lorenzo, 0.2, 6);
        let q25 = m.error_quantile(0.25);
        let q50 = m.error_quantile(0.5);
        let q95 = m.error_quantile(0.95);
        assert!(q25 <= q50 && q50 <= q95);
        assert!(q95 > 0.0);
    }

    #[test]
    fn refined_sigma_within_physical_limits() {
        // The refined variance (Eq. 11) can exceed the uniform eb²/3 when
        // central-bin errors pile near the bin edges, but never eb² (the
        // maximum variance of any distribution supported on [-eb, eb]).
        let f = noisy_field();
        let m = RqModel::build(&f, PredictorKind::Lorenzo, 0.1, 7);
        for eb in [1e-3, 1e-2, 1e-1, 1.0] {
            let e = m.estimate(eb);
            assert!(e.sigma2 <= eb * eb * (1.0 + 1e-9), "eb {eb}: sigma2 {}", e.sigma2);
            assert!(e.sigma2 > 0.0);
        }
        // At very large bounds p0 → 1 and the refined variance collapses to
        // the (small) central-bin variance, far below uniform.
        let big = m.estimate(10.0);
        assert!(big.sigma2 < big.sigma2_uniform, "refined must win at high eb");
    }

    #[test]
    fn strided_build_is_deterministic_and_tracks_randomized_model() {
        let f = noisy_field();
        let a = RqModel::build_strided(f.as_slice(), f.shape(), PredictorKind::Lorenzo, 2048);
        let b = RqModel::build_strided(f.as_slice(), f.shape(), PredictorKind::Lorenzo, 2048);
        assert_eq!(a.sample().errors, b.sample().errors, "no RNG anywhere");
        assert_eq!(a.value_range(), f.value_range());
        // Same field, same predictor: the strided model must agree with
        // the randomized one to well within the paper's accuracy band.
        let r = RqModel::build(&f, PredictorKind::Lorenzo, 0.1, 11);
        for eb in [1e-3, 1e-2, 1e-1] {
            let (sa, sr) = (a.estimate(eb), r.estimate(eb));
            let rel = (sa.bit_rate - sr.bit_rate).abs() / sr.bit_rate.max(1e-9);
            assert!(rel < 0.25, "eb {eb}: strided {} vs random {}", sa.bit_rate, sr.bit_rate);
            assert!((sa.psnr - sr.psnr).abs() < 3.0, "eb {eb}: {} vs {}", sa.psnr, sr.psnr);
        }
    }

    #[test]
    fn build_time_recorded() {
        let f = noisy_field();
        let m = RqModel::build(&f, PredictorKind::Lorenzo, 0.05, 8);
        assert!(m.build_time() > Duration::ZERO);
    }

    #[test]
    fn estimate_much_faster_than_build() {
        // The asymmetry that makes the model useful: estimates are cheap.
        let f = noisy_field();
        let m = RqModel::build(&f, PredictorKind::Interpolation, 0.05, 9);
        let t0 = Instant::now();
        for eb in [1e-4, 1e-3, 1e-2, 1e-1, 1.0, 2.0, 4.0] {
            let _ = m.estimate(eb);
        }
        let est_time = t0.elapsed();
        assert!(
            est_time < m.build_time() * 50,
            "7 estimates {est_time:?} vs build {:?}",
            m.build_time()
        );
    }
}
