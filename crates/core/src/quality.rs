//! Post-hoc analysis quality models (paper §III-D).
//!
//! All quality estimates flow from a single quantity: the variance of the
//! compression-error distribution. The paper provides two versions —
//! uniform (Eq. 10) and the refined mixture (Eq. 11) that splits out the
//! concentrated central quantization bin, which dominates under high error
//! bounds — and propagates it through each analysis metric.

/// Eq. 10: error variance assuming a uniform error distribution on
/// `[-eb, eb]`.
pub fn sigma2_uniform(eb: f64) -> f64 {
    eb * eb / 3.0
}

/// Eq. 11: refined error variance — a mixture of the uniform non-central
/// bins and the concentrated central bin.
///
/// * `p0` — probability of the central (zero) quantization bin,
/// * `central_bin_variance` — variance of prediction errors inside it
///   (`σ(B[0])`, measured from the sampled errors).
pub fn sigma2_refined(eb: f64, p0: f64, central_bin_variance: f64) -> f64 {
    (1.0 - p0) * sigma2_uniform(eb) + p0 * central_bin_variance
}

/// Eq. 12: predicted PSNR in dB from the value range and error variance.
///
/// Returns `f64::INFINITY` when `sigma2` is zero.
pub fn psnr_model(value_range: f64, sigma2: f64) -> f64 {
    if sigma2 <= 0.0 {
        return f64::INFINITY;
    }
    20.0 * value_range.log10() - 10.0 * sigma2.log10()
}

/// Inverse of Eq. 12: the error variance implied by a target PSNR.
pub fn sigma2_for_psnr(value_range: f64, psnr_db: f64) -> f64 {
    let range2 = value_range * value_range;
    range2 / 10f64.powf(psnr_db / 10.0)
}

/// Eq. 15: predicted (global) SSIM from the data variance, the SSIM
/// variance stabilizer `c3 = (0.03·range)²` and the error variance.
pub fn ssim_model(data_variance: f64, c3: f64, sigma2: f64) -> f64 {
    (2.0 * data_variance + c3) / (2.0 * data_variance + c3 + sigma2)
}

/// §III-D4: predicted power-spectrum ratio `P'(k)/P(k) = 1 + σ_E²/P(k)`
/// for each reference-spectrum bin. Compression error behaves as white
/// noise, adding a flat floor of `σ_E²` per mode.
pub fn spectrum_ratio_model(reference_power: &[(f64, f64)], sigma2: f64) -> Vec<(f64, f64)> {
    reference_power
        .iter()
        .filter(|&&(_, p)| p > 1e-300)
        .map(|&(k, p)| (k, 1.0 + sigma2 / p))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_variance() {
        assert!((sigma2_uniform(3.0) - 3.0).abs() < 1e-12);
        assert_eq!(sigma2_uniform(0.0), 0.0);
    }

    #[test]
    fn refined_interpolates_between_concentrated_and_uniform() {
        let eb = 1.0;
        // p0 = 0: pure uniform.
        assert!((sigma2_refined(eb, 0.0, 0.0) - sigma2_uniform(eb)).abs() < 1e-12);
        // p0 = 1 with tiny central variance: tiny overall.
        assert!(sigma2_refined(eb, 1.0, 1e-6) < 1e-5);
        // Refined ≤ uniform when the central bin is concentrated.
        assert!(sigma2_refined(eb, 0.7, 0.01) < sigma2_uniform(eb));
    }

    #[test]
    fn psnr_roundtrip() {
        let range = 123.0;
        for target in [30.0, 56.0, 90.0] {
            let s2 = sigma2_for_psnr(range, target);
            assert!((psnr_model(range, s2) - target).abs() < 1e-9);
        }
    }

    #[test]
    fn psnr_6db_per_halving() {
        // Halving the error std adds ~6.02 dB.
        let a = psnr_model(1.0, 0.01);
        let b = psnr_model(1.0, 0.0025);
        assert!((b - a - 6.0206).abs() < 1e-3);
    }

    #[test]
    fn ssim_limits() {
        assert!((ssim_model(1.0, 0.01, 0.0) - 1.0).abs() < 1e-12);
        assert!(ssim_model(1.0, 0.01, 1e9) < 1e-6);
        // Monotone decreasing in error variance.
        assert!(ssim_model(1.0, 0.01, 0.1) > ssim_model(1.0, 0.01, 0.2));
    }

    #[test]
    fn spectrum_ratio_unit_without_noise() {
        let pk = vec![(1.0, 10.0), (2.0, 5.0), (3.0, 0.5)];
        for (_, r) in spectrum_ratio_model(&pk, 0.0) {
            assert!((r - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn spectrum_ratio_worst_at_weak_bins() {
        let pk = vec![(1.0, 10.0), (10.0, 0.1)];
        let m = spectrum_ratio_model(&pk, 0.05);
        assert!(m[1].1 > m[0].1, "weak bins inflate more");
        assert!((m[1].1 - 1.5).abs() < 1e-12);
    }
}
