//! Encoder-efficiency models (paper §III-B).
//!
//! * [`huffman_bit_rate`] — Eq. 1: the Huffman payload bit-rate is the
//!   Shannon entropy of the code histogram, with the most frequent code's
//!   length clamped to the 1-bit minimum a prefix code can assign.
//! * [`rle_ratio`] — Eq. 4: the optional lossless stage is modelled as
//!   run-length coding of the dominant zero code; `C₁` is the (calibrated)
//!   cost in bits of one run token.
//! * [`p0_for_rle_ratio`] — Eq. 8: the zero-code share required to reach a
//!   target lossless ratio, used when optimizing an error bound for a
//!   target overall ratio.

use crate::histogram::EstimatedHistogram;

/// Calibrated run-token cost `C₁` in bits (varint run length ≈ 2 bytes on
/// average in our RLE format, see `rq-encoding::rle`).
pub const RLE_TOKEN_BITS: f64 = 16.0;

/// Eq. 1: estimated Huffman bit-rate (bits per quantized symbol).
///
/// Returns 0 for an empty histogram.
pub fn huffman_bit_rate(hist: &EstimatedHistogram) -> f64 {
    let mut best_p = 0.0f64;
    let mut entropy_rest = 0.0f64;
    for (_, p) in hist.probabilities() {
        if p <= 0.0 {
            continue;
        }
        if p > best_p {
            if best_p > 0.0 {
                entropy_rest += -best_p * best_p.log2();
            }
            best_p = p;
        } else {
            entropy_rest += -p * p.log2();
        }
    }
    if best_p == 0.0 {
        return 0.0;
    }
    // The most frequent code cannot be shorter than 1 bit.
    entropy_rest + best_p * (-best_p.log2()).max(1.0)
}

/// Eq. 1 extended for sparse data: the combined Huffman bit-rate when a
/// `sparse_fraction` of symbols are additional zero codes (the quiescent
/// regions removed from the histogram per §III-C).
pub fn huffman_bit_rate_sparse(hist: &EstimatedHistogram, sparse_fraction: f64) -> f64 {
    let sf = sparse_fraction.clamp(0.0, 1.0);
    if sf == 0.0 {
        return huffman_bit_rate(hist);
    }
    // Combined probabilities: bin 0 gains the sparse mass.
    let mut probs: Vec<f64> = Vec::with_capacity(hist.occupied_bins() + 1);
    let mut zero_p = sf;
    for (code, p) in hist.probabilities() {
        if code == 0 {
            zero_p += p * (1.0 - sf);
        } else if p > 0.0 {
            probs.push(p * (1.0 - sf));
        }
    }
    probs.push(zero_p);
    let best_p = probs.iter().cloned().fold(0.0f64, f64::max);
    let mut bits = 0.0;
    let mut clamped = false;
    for &p in &probs {
        if p <= 0.0 {
            continue;
        }
        let len = if p == best_p && !clamped {
            clamped = true;
            (-p.log2()).max(1.0)
        } else {
            -p.log2()
        };
        bits += p * len;
    }
    bits
}

/// Eq. 4: compression ratio of zero-RLE over the Huffman payload.
///
/// `p0` is the zero-code probability; `huffman_bits` the per-symbol payload
/// bit-rate (Eq. 1), used to convert the *count* share `p0` into the
/// *footprint* share `P0 = p0·l0/B` with `l0 = 1` bit for the dominant
/// code. Returns 1.0 (no gain) whenever the model predicts expansion.
pub fn rle_ratio(p0: f64, huffman_bits: f64) -> f64 {
    if p0 <= 0.0 || huffman_bits <= 0.0 {
        return 1.0;
    }
    // Footprint share of zero-code bits in the Huffman stream. p0 is
    // capped at 99%: reconstruction feedback keeps ~1% of real codes
    // non-zero even when the sampled histogram says otherwise, and Eq. 4
    // is hypersensitive to (1-p0) in that regime (measured lossless gains
    // saturate near 5x where the unclamped model would predict 90x).
    let cap_p0 = p0.min(0.99);
    let big_p0 = (cap_p0 * 1.0 / huffman_bits).min(1.0);
    // E0 = C1/(n0·l0) with n0 = 1/(1-p0): Eq. 5–7.
    let e0 = RLE_TOKEN_BITS * (1.0 - cap_p0);
    let r = 1.0 / (e0 * big_p0 + (1.0 - big_p0));
    r.max(1.0)
}

/// Eq. 8: the zero-code probability needed for a target RLE ratio
/// (`P0 ≈ p0` approximation, valid in the zero-dominated regime).
///
/// Returns `None` when the target exceeds what RLE can deliver
/// (`target < 1` or the discriminant goes negative).
pub fn p0_for_rle_ratio(target: f64) -> Option<f64> {
    if target < 1.0 {
        return None;
    }
    let c1 = RLE_TOKEN_BITS;
    let half = (c1 - 1.0) / 2.0;
    let disc = 1.0 - 1.0 / target - half * half;
    // Paper Eq. 8: p0 = sqrt(1 - R⁻¹ - ((C1-1)/2)²) + (C1-1)/2 — with the
    // large C1 the discriminant is negative and the usable root comes from
    // the quadratic E0·p0² − (E0+1)p0 + 1 − 1/R = 0 solved directly:
    let _ = disc;
    // E0 p0² - (E0 + 1) p0 + (1 - 1/target) = 0 where E0 = C1(1-p0) makes
    // it cubic; solve numerically by bisection on the monotone branch.
    let f = |p0: f64| rle_ratio(p0, 1.0) - target;
    let (mut lo, mut hi) = (0.0, 1.0 - 1e-9);
    if f(hi) < 0.0 {
        return None; // unreachable ratio
    }
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if f(mid) < 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(0.5 * (lo + hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampling::ErrorSample;
    use rq_predict::PredictorKind;

    fn hist_from(errors: Vec<f64>, eb: f64) -> EstimatedHistogram {
        let weights = vec![1.0; errors.len()];
        let s = ErrorSample {
            errors,
            weights,
            predictor: PredictorKind::Regression,
            n_elements: 1000,
            verbatim_fraction: 0.0,
            side_bits_per_element: 0.0,
            feedback_kappa: 0.0,
            quality_kappa: 0.0,
            sparse_fraction: 0.0,
        };
        EstimatedHistogram::build(&s, eb, 1 << 15)
    }

    #[test]
    fn bit_rate_matches_entropy_for_flat_histograms() {
        // 16 equi-probable codes => exactly 4 bits.
        let errors: Vec<f64> = (0..1600).map(|i| (i % 16) as f64 - 7.5).collect();
        let h = hist_from(errors, 0.5);
        assert!((huffman_bit_rate(&h) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn dominant_code_clamped_to_one_bit() {
        // 99.9% zeros: entropy says 0.011 bits/symbol for the zero code but
        // Huffman must spend ≥ 1 bit on it.
        let mut errors = vec![0.0; 9990];
        errors.extend((0..10).map(|i| 2.0 + i as f64));
        let h = hist_from(errors, 0.5);
        let b = huffman_bit_rate(&h);
        assert!(b >= 0.999, "bit rate {b} must be ≥ ~1");
    }

    #[test]
    fn empty_histogram_zero_rate() {
        let h = hist_from(vec![], 0.5);
        assert_eq!(huffman_bit_rate(&h), 0.0);
    }

    #[test]
    fn rle_gains_only_when_zeros_dominate() {
        // Low p0: no gain (clamped to 1).
        assert_eq!(rle_ratio(0.3, 4.0), 1.0);
        // Very high p0 at ~1 bit/symbol: strong gain (saturating at the
        // 99% feedback clamp, ~6x with C1 = 16).
        let high = rle_ratio(0.999, 1.0);
        assert!(high > 4.0, "ratio {high}");
        // Monotone in p0 below the clamp.
        assert!(rle_ratio(0.98, 1.0) > rle_ratio(0.9, 1.0));
    }

    #[test]
    fn rle_never_expands() {
        for p0 in [0.0, 0.2, 0.5, 0.9, 0.9999] {
            for b in [0.5, 1.0, 4.0, 16.0] {
                assert!(rle_ratio(p0, b) >= 1.0);
            }
        }
    }

    #[test]
    fn p0_inversion_roundtrip() {
        for p0 in [0.95, 0.98] {
            let r = rle_ratio(p0, 1.0);
            if r > 1.001 {
                let back = p0_for_rle_ratio(r).unwrap();
                assert!((back - p0).abs() < 1e-6, "p0 {p0} -> ratio {r} -> {back}");
            }
        }
        // Above the 99% feedback clamp the ratio saturates, so inversion
        // returns the clamp point.
        let r_sat = rle_ratio(0.999, 1.0);
        assert!((r_sat - rle_ratio(0.99, 1.0)).abs() < 1e-9);
    }

    #[test]
    fn unreachable_ratio_is_none() {
        assert!(p0_for_rle_ratio(1e9).is_none());
        assert!(p0_for_rle_ratio(0.5).is_none());
    }
}
