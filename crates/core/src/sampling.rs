//! Predictor-aware prediction-error sampling (paper §III-C).
//!
//! The model's only data-dependent input is a sampled distribution of
//! prediction errors. Crucially, sampling predicts from **original** values
//! (§III-C4) — unlike actual compression, which predicts from reconstructed
//! values — which is what makes a *single* sampling pass reusable across
//! every candidate error bound. The residual discrepancy is corrected later
//! by the histogram bin-transfer of Eq. 9.
//!
//! Each predictor gets the sampling strategy the paper prescribes:
//!
//! * **Lorenzo** — uniform random points, stencil applied to originals;
//! * **Interpolation** — level-aware sampling: coarse levels have
//!   exponentially fewer points (2⁻ⁿ per level, §III-C2) and are sampled
//!   exhaustively, the fine levels at the residual budget; every sample
//!   carries an inverse-probability weight so the weighted histogram is
//!   unbiased;
//! * **Regression** — whole blocks are sampled (the fit needs the full
//!   block), residuals against the block's own least-squares plane.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rq_grid::{BlockIter, NdArray, Scalar, Shape};
use rq_predict::interp::{for_each_stencil, StencilKind};
use rq_predict::lorenzo::LorenzoStencil;
use rq_predict::regression::{fit_block, BlockCoeffs, REGRESSION_BLOCK_SIDE};
use rq_predict::PredictorKind;

/// A weighted sample of prediction errors.
#[derive(Clone, Debug)]
pub struct ErrorSample {
    /// Sampled prediction errors (original-value predictions).
    pub errors: Vec<f64>,
    /// Inverse-probability weight of each sample (1.0 when sampling was
    /// uniform). The weighted histogram estimates the full-field histogram.
    pub weights: Vec<f64>,
    /// Predictor the sample was drawn for.
    pub predictor: PredictorKind,
    /// Number of elements in the sampled field.
    pub n_elements: usize,
    /// Fraction of elements the traversal stores verbatim regardless of
    /// error bound (interpolation anchors).
    pub verbatim_fraction: f64,
    /// Side-channel bits per element (regression coefficients).
    pub side_bits_per_element: f64,
    /// Reconstruction-feedback noise coefficient κ: during actual
    /// compression each Lorenzo neighbor carries quantization noise of
    /// order the error bound, so real prediction errors are the sampled
    /// (original-value) errors plus ≈ κ·eb of extra dispersion. This
    /// extends the paper's Eq. 9 correction layer to the p0 → 1 regime
    /// where the bin-transfer alone vanishes (see DESIGN.md §5). Zero for
    /// predictors without feedback (regression) or with empirically
    /// negligible feedback (interpolation).
    pub feedback_kappa: f64,
    /// Quality-side cascade gain `g` for the multi-level feedback of the
    /// interpolation predictor: the effective central-bin variance is the
    /// sampled one inflated by `1/(1 − g·p0_dense)` — every centrally-
    /// quantized point passes its parents' reconstruction error straight
    /// through, so the level cascade amplifies until a non-central code
    /// resets the residual (the `p0` factor). Calibrated g ≈ 0.85 against
    /// measured reconstruction-error variances on wavefield and noise
    /// fields; zero where `feedback_kappa` already injects the dispersion
    /// (Lorenzo) or no feedback exists (regression).
    pub quality_kappa: f64,
    /// Fraction of sampled points in exactly-zero (quiescent) regions:
    /// value and prediction error both exactly 0. The paper's §III-C notes
    /// that for sparse scientific data these zeros must be removed from
    /// the prediction-error distribution; they are excluded from `errors`
    /// and modelled separately (contiguous zero runs are nearly free under
    /// RLE, unlike the independent-code assumption of Eq. 7).
    pub sparse_fraction: f64,
}

impl ErrorSample {
    /// Build from a deterministic strided sample
    /// ([`rq_predict::sample_prediction_errors`]), filling in the same
    /// calibrated feedback coefficients [`sample_errors`] would assign.
    ///
    /// This is the quality-targeted compression path: the streaming
    /// pre-pass samples each axis-0 chunk with the RNG-free predictor-layer
    /// sampler (per-chunk plans must be pure functions of field and
    /// configuration), then promotes the sample into a full ratio-quality
    /// model via [`crate::RqModel::from_sample`]. Quiescent exact-zero
    /// points are moved out of the error list into `sparse_fraction`,
    /// mirroring the §III-C sparse treatment of the randomized sampler.
    pub fn from_prediction_sample(ps: &rq_predict::PredictionSample) -> ErrorSample {
        let n_sampled = ps.errors.len();
        // The strided sampler keeps sparse zeros inline and only counts
        // them; drop that many exact zeros from the modelled distribution.
        let mut to_drop = ps.sparse_count;
        let errors: Vec<f64> = ps
            .errors
            .iter()
            .copied()
            .filter(|&e| {
                if e == 0.0 && to_drop > 0 {
                    to_drop -= 1;
                    false
                } else {
                    true
                }
            })
            .collect();
        let sparse_fraction =
            if n_sampled > 0 { ps.sparse_count as f64 / n_sampled as f64 } else { 0.0 };
        let (feedback_kappa, quality_kappa) = match ps.predictor {
            PredictorKind::Lorenzo | PredictorKind::TemporalDelta => {
                (lorenzo_feedback_kappa(ps.ndim, 1), 0.0)
            }
            PredictorKind::Lorenzo2 => (lorenzo_feedback_kappa(ps.ndim, 2), 0.0),
            PredictorKind::Interpolation => (0.0, INTERP_QUALITY_KAPPA),
            PredictorKind::Regression => (0.0, 0.0),
        };
        let weights = vec![1.0; errors.len()];
        ErrorSample {
            errors,
            weights,
            predictor: ps.predictor,
            n_elements: ps.n_elements,
            verbatim_fraction: ps.verbatim_fraction,
            side_bits_per_element: ps.side_bits_per_element,
            feedback_kappa,
            quality_kappa,
            sparse_fraction,
        }
    }

    /// Number of drawn samples.
    pub fn len(&self) -> usize {
        self.errors.len()
    }

    /// Whether the sample is empty.
    pub fn is_empty(&self) -> bool {
        self.errors.is_empty()
    }

    /// Weighted standard deviation of the sampled errors.
    pub fn weighted_std(&self) -> f64 {
        let wsum: f64 = self.weights.iter().sum();
        if wsum == 0.0 {
            return 0.0;
        }
        let mean: f64 =
            self.errors.iter().zip(&self.weights).map(|(e, w)| e * w).sum::<f64>() / wsum;
        let var: f64 = self
            .errors
            .iter()
            .zip(&self.weights)
            .map(|(e, w)| w * (e - mean).powi(2))
            .sum::<f64>()
            / wsum;
        var.sqrt()
    }
}

/// Quality-side cascade gain of the interpolation predictor's multi-level
/// feedback (see [`ErrorSample::quality_kappa`]); calibrated against
/// measured reconstruction-error variances.
const INTERP_QUALITY_KAPPA: f64 = 0.85;

/// Calibrated against measured Lorenzo histograms: the feedback noise of
/// a `t`-tap stencil behaves like κ·eb with κ ≈ 0.577·t^¼ (uniform
/// single-neighbor noise is eb/√3, correlations damp the multi-tap sum
/// far below the independent √t growth).
fn lorenzo_feedback_kappa(ndim: usize, order: usize) -> f64 {
    0.577 * (LorenzoStencil::new(ndim, order).tap_count() as f64).powf(0.25)
}

/// Draw a prediction-error sample at `rate` (e.g. 0.01 for the paper's 1 %).
///
/// # Panics
/// Panics if `rate` is not in `(0, 1]`.
pub fn sample_errors<T: Scalar>(
    field: &NdArray<T>,
    predictor: PredictorKind,
    rate: f64,
    seed: u64,
) -> ErrorSample {
    assert!(rate > 0.0 && rate <= 1.0, "sampling rate {rate} outside (0, 1]");
    let mut rng = StdRng::seed_from_u64(seed);
    let work: Vec<f64> = field.as_slice().iter().map(|v| v.to_f64()).collect();
    match predictor {
        PredictorKind::Lorenzo | PredictorKind::TemporalDelta => {
            sample_lorenzo(&work, field.shape(), 1, rate, &mut rng)
        }
        PredictorKind::Lorenzo2 => sample_lorenzo(&work, field.shape(), 2, rate, &mut rng),
        PredictorKind::Interpolation => sample_interp(&work, field.shape(), rate, &mut rng),
        PredictorKind::Regression => sample_regression(&work, field.shape(), rate, &mut rng),
    }
}

fn sample_lorenzo(
    work: &[f64],
    shape: Shape,
    order: usize,
    rate: f64,
    rng: &mut StdRng,
) -> ErrorSample {
    let stencil = LorenzoStencil::new(shape.ndim(), order);
    let n = shape.len();
    let target = ((n as f64 * rate).round() as usize).clamp(1, n);
    let mut errors = Vec::with_capacity(target);
    let mut sparse = 0usize;
    for _ in 0..target {
        let lin = rng.gen_range(0..n);
        let idx = shape.unoffset(lin);
        let pred = stencil.predict(work, shape, &idx[..shape.ndim()]);
        let err = work[lin] - pred;
        if err == 0.0 && work[lin] == 0.0 {
            sparse += 1;
        } else {
            errors.push(err);
        }
    }
    let sparse_fraction = sparse as f64 / target as f64;
    let weights = vec![1.0; errors.len()];
    let kappa = lorenzo_feedback_kappa(shape.ndim(), order);
    ErrorSample {
        errors,
        weights,
        predictor: if order == 1 { PredictorKind::Lorenzo } else { PredictorKind::Lorenzo2 },
        n_elements: n,
        verbatim_fraction: 0.0,
        side_bits_per_element: 0.0,
        feedback_kappa: kappa,
        quality_kappa: 0.0,
        sparse_fraction,
    }
}

fn sample_interp(work: &[f64], shape: Shape, rate: f64, rng: &mut StdRng) -> ErrorSample {
    let n = shape.len();
    let budget = ((n as f64 * rate).round() as usize).max(16);
    // Pass 1: count points per level stride.
    let mut level_counts: Vec<(usize, usize)> = Vec::new();
    for_each_stencil(shape, |t| {
        match level_counts.last_mut() {
            Some((s, c)) if *s == t.stride => *c += 1,
            _ => level_counts.push((t.stride, 1)),
        }
    });
    // Allocate budget: coarse levels exhaustively (they are 2^-n smaller per
    // level), finest level gets whatever budget remains.
    let mut alloc: Vec<(usize, f64)> = Vec::new(); // (stride, sample prob)
    let mut remaining = budget as f64;
    let mut remaining_points: f64 = level_counts.iter().map(|&(_, c)| c as f64).sum();
    for &(stride, count) in &level_counts {
        let count = count as f64;
        // Proportional share, but never below full coverage of tiny levels.
        let share = (remaining * count / remaining_points).max(1.0);
        let p = (share / count).min(1.0);
        alloc.push((stride, p));
        remaining = (remaining - p * count).max(0.0);
        remaining_points -= count;
    }
    let prob_of = |stride: usize| -> f64 {
        alloc
            .iter()
            .find(|&&(s, _)| s == stride)
            .map(|&(_, p)| p)
            .unwrap_or(1.0)
    };

    let mut errors = Vec::with_capacity(budget + alloc.len() * 4);
    let mut weights = Vec::with_capacity(budget + alloc.len() * 4);
    let mut sparse_w = 0.0f64;
    let mut total_w = 0.0f64;
    for_each_stencil(shape, |t| {
        let p = prob_of(t.stride);
        if p >= 1.0 || rng.gen::<f64>() < p {
            let pred = match t.kind {
                StencilKind::Cubic([a, b, c, d]) => {
                    (-work[a] + 9.0 * work[b] + 9.0 * work[c] - work[d]) / 16.0
                }
                StencilKind::Linear([a, b]) => 0.5 * (work[a] + work[b]),
                StencilKind::CopyLeft(a) => work[a],
            };
            let err = work[t.target] - pred;
            total_w += 1.0 / p;
            if err == 0.0 && work[t.target] == 0.0 {
                sparse_w += 1.0 / p;
            } else {
                errors.push(err);
                weights.push(1.0 / p);
            }
        }
    });
    let sparse_fraction = if total_w > 0.0 { sparse_w / total_w } else { 0.0 };
    let n_anchors = rq_predict::interp::anchors(shape).len();
    ErrorSample {
        errors,
        weights,
        predictor: PredictorKind::Interpolation,
        n_elements: n,
        verbatim_fraction: n_anchors as f64 / n as f64,
        side_bits_per_element: 0.0,
        feedback_kappa: 0.0,
        quality_kappa: INTERP_QUALITY_KAPPA,
        sparse_fraction,
    }
}

fn sample_regression(work: &[f64], shape: Shape, rate: f64, rng: &mut StdRng) -> ErrorSample {
    let blocks: Vec<_> = BlockIter::new(shape, REGRESSION_BLOCK_SIDE).collect();
    let n_blocks = blocks.len();
    let target_blocks = ((n_blocks as f64 * rate).round() as usize).clamp(1, n_blocks);
    let mut errors = Vec::with_capacity(target_blocks * 216);
    let mut sparse = 0usize;
    let mut n_sampled = 0usize;
    let strides = shape.strides();
    let nd = shape.ndim();
    for _ in 0..target_blocks {
        let block = &blocks[rng.gen_range(0..n_blocks)];
        let coeffs = fit_block(work, shape, block);
        // Residuals over the block.
        let mut local = [0usize; rq_grid::MAX_DIMS];
        loop {
            let mut lin = 0usize;
            for a in 0..nd {
                lin += (block.origin[a] + local[a]) * strides[a];
            }
            let err = work[lin] - coeffs.predict(&local[..nd]);
            if err == 0.0 && work[lin] == 0.0 {
                sparse += 1;
            } else {
                errors.push(err);
            }
            n_sampled += 1;
            let mut axis = nd;
            let mut done = false;
            loop {
                if axis == 0 {
                    done = true;
                    break;
                }
                axis -= 1;
                local[axis] += 1;
                if local[axis] < block.size[axis] {
                    break;
                }
                local[axis] = 0;
            }
            if done {
                break;
            }
        }
    }
    let weights = vec![1.0; errors.len()];
    let side_bits = BlockCoeffs::byte_len(nd) as f64 * 8.0;
    let block_elems = REGRESSION_BLOCK_SIDE.pow(nd as u32) as f64;
    ErrorSample {
        errors,
        weights,
        predictor: PredictorKind::Regression,
        n_elements: shape.len(),
        verbatim_fraction: 0.0,
        side_bits_per_element: side_bits / block_elems,
        feedback_kappa: 0.0,
        quality_kappa: 0.0,
        sparse_fraction: if n_sampled > 0 { sparse as f64 / n_sampled as f64 } else { 0.0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smooth(shape: Shape) -> NdArray<f64> {
        NdArray::from_fn(shape, |ix| {
            ix.iter().enumerate().map(|(a, &c)| ((c as f64) * 0.2 * (a + 1) as f64).sin()).sum()
        })
    }

    #[test]
    fn sample_size_tracks_rate() {
        let f = smooth(Shape::d2(100, 100));
        for rate in [0.01, 0.05, 0.2] {
            let s = sample_errors(&f, PredictorKind::Lorenzo, rate, 1);
            let expect = (10_000.0 * rate) as usize;
            assert!(
                (s.len() as i64 - expect as i64).unsigned_abs() as usize <= expect / 5 + 8,
                "rate {rate}: {} vs {expect}",
                s.len()
            );
        }
    }

    #[test]
    fn smooth_field_errors_small() {
        let f = smooth(Shape::d2(64, 64));
        for kind in PredictorKind::all() {
            let s = sample_errors(&f, kind, 0.05, 7);
            assert!(!s.is_empty());
            let sd = s.weighted_std();
            // Field range ~4; smooth field predicts well for every family.
            assert!(sd < 0.5, "{kind:?} sd {sd}");
        }
    }

    #[test]
    fn sampled_std_matches_full_std_lorenzo() {
        // The Fig. 4 criterion: sampled error std vs exhaustive std.
        let mut state = 9u64;
        let f = NdArray::<f64>::from_fn(Shape::d2(128, 128), |ix| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let noise = (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
            (ix[0] as f64 * 0.1).sin() * 3.0 + noise * 0.2
        });
        let full = sample_errors(&f, PredictorKind::Lorenzo, 1.0, 3);
        let sampled = sample_errors(&f, PredictorKind::Lorenzo, 0.01, 3);
        let (a, b) = (full.weighted_std(), sampled.weighted_std());
        assert!((a - b).abs() / a < 0.15, "full {a} sampled {b}");
    }

    #[test]
    fn interp_weights_are_inverse_probabilities() {
        let f = smooth(Shape::d3(32, 32, 32));
        let s = sample_errors(&f, PredictorKind::Interpolation, 0.01, 5);
        // Total weighted mass ≈ number of non-anchor points.
        let mass: f64 = s.weights.iter().sum();
        let non_anchor = 32 * 32 * 32 - rq_predict::interp::anchors(f.shape()).len();
        let rel = (mass - non_anchor as f64).abs() / non_anchor as f64;
        assert!(rel < 0.25, "mass {mass} vs {non_anchor}");
        assert!(s.verbatim_fraction > 0.0);
    }

    #[test]
    fn regression_reports_side_channel_cost() {
        let f = smooth(Shape::d3(18, 18, 18));
        let s = sample_errors(&f, PredictorKind::Regression, 0.5, 2);
        // 4 f32 coefficients per 6³ block = 128 bits / 216 elements.
        assert!((s.side_bits_per_element - 128.0 / 216.0).abs() < 1e-12);
    }

    #[test]
    fn deterministic_given_seed() {
        let f = smooth(Shape::d2(50, 50));
        let a = sample_errors(&f, PredictorKind::Lorenzo, 0.1, 9);
        let b = sample_errors(&f, PredictorKind::Lorenzo, 0.1, 9);
        assert_eq!(a.errors, b.errors);
    }

    #[test]
    #[should_panic]
    fn zero_rate_rejected() {
        let f = smooth(Shape::d1(100));
        let _ = sample_errors(&f, PredictorKind::Lorenzo, 0.0, 1);
    }
}
