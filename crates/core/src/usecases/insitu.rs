//! Use-case 3 (§IV-C): in-situ per-partition error-bound optimization.
//!
//! A dataset analyzed as a whole (e.g. the stacked RTM image built from
//! many timestep snapshots) is compressed partition by partition. Because
//! partitions differ in content, one global error bound wastes bits: quiet
//! partitions could take much larger bounds at no aggregate-quality cost.
//!
//! With one model per partition the allocation becomes a classic
//! rate-distortion problem: minimize total bits subject to an aggregate
//! error-variance budget (equivalently, a PSNR floor on the combined
//! analysis). We solve it greedily on per-partition error-bound grids —
//! each step takes the move with the best Δbits/Δvariance trade — which is
//! the discrete water-filling the paper's "fine-grained tuning" performs.
//! Trial-and-error cannot do this at all: the configuration space is
//! exponential in the number of partitions (§IV-C).

use crate::model::RqModel;

/// Why a per-partition plan could not be produced.
///
/// Historically the planner asserted on malformed inputs and silently
/// fell back to its tightest grid rungs when the quality floor was
/// unreachable — inside a compression pipeline both must surface as
/// errors (`rqm` maps them to `CompressError::InvalidConfig`), never as a
/// panic or a quietly-missed target.
#[derive(Clone, Debug, PartialEq)]
pub enum PlanError {
    /// No partitions were given.
    NoPartitions,
    /// `models` and `sizes` have different lengths.
    MismatchedInputs {
        /// Number of models given.
        models: usize,
        /// Number of sizes given.
        sizes: usize,
    },
    /// Fewer than two candidate grid points per partition.
    GridTooSmall(usize),
    /// The target or the data statistics make planning meaningless
    /// (non-finite target, zero value range, …).
    InvalidTarget(String),
    /// The PSNR floor is unreachable even at the tightest candidate
    /// bounds of every partition.
    UnreachableTarget {
        /// The requested aggregate PSNR floor (dB).
        target_psnr: f64,
        /// The best aggregate PSNR the candidate grids can deliver (dB).
        achievable_psnr: f64,
    },
    /// The byte budget is below the smallest achievable archive
    /// (size-targeted planning only).
    BudgetTooSmall {
        /// The requested ceiling in bytes.
        budget_bytes: usize,
        /// The estimated minimum achievable size in bytes.
        min_bytes: usize,
    },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::NoPartitions => write!(f, "need at least one partition"),
            PlanError::MismatchedInputs { models, sizes } => {
                write!(f, "{models} models but {sizes} partition sizes")
            }
            PlanError::GridTooSmall(n) => {
                write!(f, "need at least 2 grid points per partition, got {n}")
            }
            PlanError::InvalidTarget(m) => write!(f, "invalid planning target: {m}"),
            PlanError::UnreachableTarget { target_psnr, achievable_psnr } => write!(
                f,
                "PSNR floor {target_psnr:.2} dB is unreachable: the tightest candidate \
                 bounds deliver only {achievable_psnr:.2} dB"
            ),
            PlanError::BudgetTooSmall { budget_bytes, min_bytes } => write!(
                f,
                "size budget {budget_bytes} B is below the estimated minimum archive size \
                 {min_bytes} B"
            ),
        }
    }
}

impl std::error::Error for PlanError {}

/// The optimized per-partition assignment.
#[derive(Clone, Debug)]
pub struct PartitionPlan {
    /// Chosen error bound per partition.
    pub ebs: Vec<f64>,
    /// Estimated overall bit-rate (size-weighted mean).
    pub est_bit_rate: f64,
    /// Estimated aggregate error variance (size-weighted mean).
    pub est_sigma2: f64,
    /// Estimated aggregate PSNR against `value_range` of the combined data.
    pub est_psnr: f64,
}

/// Optimize per-partition error bounds to meet `target_psnr` on the
/// aggregate (size-weighted) error variance while minimizing total bits.
///
/// * `models` — one [`RqModel`] per partition;
/// * `sizes` — element count per partition;
/// * `value_range` — range of the combined data (for the PSNR definition);
/// * `grid_points` — number of candidate bounds per partition (log-spaced).
///
/// Returns a typed [`PlanError`] on malformed inputs and when the floor
/// is unreachable even at every partition's tightest candidate bound.
pub fn optimize_partitions(
    models: &[RqModel],
    sizes: &[usize],
    value_range: f64,
    target_psnr: f64,
    grid_points: usize,
) -> Result<PartitionPlan, PlanError> {
    optimize_partitions_corrected(models, sizes, value_range, target_psnr, grid_points, None)
}

/// Per-partition measured-feedback corrections for
/// [`optimize_partitions_corrected`]: multiplicative factors that anchor
/// each partition's modeled rate-distortion curve to one real
/// compression pass (`measured / modeled`, both at the previous round's
/// bound for that partition).
#[derive(Clone, Debug)]
pub struct PlanCorrection {
    /// Per-partition factor on the modeled error variance.
    pub sigma_scale: Vec<f64>,
    /// Per-partition factor on the modeled bit-rate.
    pub bits_scale: Vec<f64>,
}

impl PlanCorrection {
    /// Build the correction from one measured round: per-partition mean
    /// squared error and compressed bits/value, both observed at the
    /// round's bounds `ebs`. Ratios are clamped to a sane band so a
    /// degenerate measurement (e.g. an exactly-zero chunk) cannot blow up
    /// the next round's optimization. The single definition shared by the
    /// CLI, the `target_psnr` bench and the model-accuracy suite.
    ///
    /// # Panics
    /// Panics if the slice lengths disagree.
    pub fn from_measured(
        models: &[RqModel],
        ebs: &[f64],
        measured_sigma2: &[f64],
        measured_bits: &[f64],
    ) -> PlanCorrection {
        assert!(
            models.len() == ebs.len()
                && models.len() == measured_sigma2.len()
                && models.len() == measured_bits.len(),
            "per-partition inputs must align"
        );
        let mut sigma_scale = Vec::with_capacity(models.len());
        let mut bits_scale = Vec::with_capacity(models.len());
        for (((m, &eb), &ms), &mb) in
            models.iter().zip(ebs).zip(measured_sigma2).zip(measured_bits)
        {
            let est = m.estimate(eb);
            sigma_scale.push((ms / est.sigma2.max(1e-300)).clamp(1e-3, 1e3));
            bits_scale.push((mb / est.bit_rate.max(1e-300)).clamp(1e-3, 1e3));
        }
        PlanCorrection { sigma_scale, bits_scale }
    }
}

/// [`optimize_partitions`] with an optional per-partition
/// [`PlanCorrection`] from a previous measured round.
///
/// This is the quality-targeted pipeline's second-round hook: after one
/// compression pass, each chunk's measured error variance and compressed
/// size are available; the ratios to the model's predictions (at the
/// round-1 bounds) correct both the aggregate bias and — more
/// importantly — the *allocation*: a chunk whose variance or rate the
/// model misestimates would otherwise be traded against the others on
/// phantom terms forever.
pub fn optimize_partitions_corrected(
    models: &[RqModel],
    sizes: &[usize],
    value_range: f64,
    target_psnr: f64,
    grid_points: usize,
    correction: Option<&PlanCorrection>,
) -> Result<PartitionPlan, PlanError> {
    validate_inputs(models, sizes, grid_points)?;
    if !target_psnr.is_finite() {
        return Err(PlanError::InvalidTarget(format!("target PSNR {target_psnr}")));
    }
    if !(value_range.is_finite() && value_range > 0.0) {
        return Err(PlanError::InvalidTarget(format!("value range {value_range}")));
    }
    if let Some(c) = correction {
        for scale in [&c.sigma_scale, &c.bits_scale] {
            if scale.len() != models.len() {
                return Err(PlanError::MismatchedInputs {
                    models: models.len(),
                    sizes: scale.len(),
                });
            }
            if let Some(&bad) = scale.iter().find(|s| !(s.is_finite() && **s > 0.0)) {
                return Err(PlanError::InvalidTarget(format!("correction scale {bad}")));
            }
        }
    }
    let scale_of = |i: usize| correction.map_or(1.0, |c| c.sigma_scale[i]);
    let bits_of_part = |i: usize| correction.map_or(1.0, |c| c.bits_scale[i]);
    let target_sigma2 = crate::quality::sigma2_for_psnr(value_range, target_psnr);
    let total: f64 = sizes.iter().map(|&s| s as f64).sum();

    // Candidate ladders per partition: log-spaced bounds from "tiny" to
    // "half the quality budget spent on this partition alone".
    #[derive(Clone, Copy)]
    struct Point {
        eb: f64,
        bits: f64,
        sigma2: f64,
    }
    let ladders: Vec<Vec<Point>> = models
        .iter()
        .enumerate()
        .map(|(pi, m)| {
            // Tightest rung: well below the quality budget even if this
            // partition behaved uniformly (eb²/3 ≈ target/30).
            let lo = (m.error_quantile(0.05))
                .min((target_sigma2 * 0.1).sqrt())
                .max(value_range * 1e-12)
                .max(f64::MIN_POSITIVE);
            // Loosest rung: where the *model's* variance (which accounts
            // for code concentration and sparsity) reaches 3x the whole
            // budget — not the uniform-distribution bound, which can be
            // far too conservative.
            let psnr_floor = crate::quality::psnr_model(value_range, target_sigma2 * 3.0);
            let hi = m.error_bound_for_psnr(psnr_floor).max(lo * 4.0);
            (0..grid_points)
                .map(|i| {
                    let t = i as f64 / (grid_points - 1) as f64;
                    let eb = (lo.ln() + t * (hi.ln() - lo.ln())).exp();
                    let est = m.estimate(eb);
                    Point {
                        eb,
                        bits: est.bit_rate * bits_of_part(pi),
                        sigma2: est.sigma2 * scale_of(pi),
                    }
                })
                .collect()
        })
        .collect();

    // Lagrangian rung selection: for a multiplier λ each partition
    // independently minimizes `bits + λ·σ²` over its ladder; bisecting λ
    // finds the cheapest allocation within the variance budget. This is
    // robust to the non-convex bits(σ²) curves the RLE and feedback models
    // produce (a pure greedy walk gets trapped on them).
    let weight: Vec<f64> = sizes.iter().map(|&s| s as f64 / total).collect();
    let pick = |lambda: f64| -> Vec<usize> {
        ladders
            .iter()
            .map(|ladder| {
                let mut best = 0usize;
                let mut best_cost = f64::INFINITY;
                for (j, p) in ladder.iter().enumerate() {
                    let cost = p.bits + lambda * p.sigma2;
                    if cost < best_cost {
                        best_cost = cost;
                        best = j;
                    }
                }
                best
            })
            .collect()
    };
    let agg_of = |level: &[usize]| -> f64 {
        level.iter().zip(&ladders).zip(&weight).map(|((&l, lad), w)| lad[l].sigma2 * w).sum()
    };
    // λ → ∞ forces the tightest rungs; λ = 0 the loosest.
    let (mut lam_lo, mut lam_hi) = (1e-18f64, 1e18f64);
    for _ in 0..80 {
        let mid = (lam_lo.ln() + lam_hi.ln()).mul_add(0.5, 0.0).exp();
        if agg_of(&pick(mid)) > target_sigma2 {
            lam_lo = mid; // too lossy: raise the penalty
        } else {
            lam_hi = mid;
        }
    }
    let mut level = pick(lam_hi);
    if agg_of(&level) > target_sigma2 {
        // Fall back to the tightest rungs if even λ_hi is insufficient —
        // and if those still miss the floor, the target is unreachable on
        // this grid: a typed error, not a silently lossier plan (the old
        // behavior) or a panic downstream.
        level = vec![0; models.len()];
        let best = agg_of(&level);
        if best > target_sigma2 {
            return Err(PlanError::UnreachableTarget {
                target_psnr,
                achievable_psnr: crate::quality::psnr_model(value_range, best),
            });
        }
    }
    let mut agg_sigma2 = agg_of(&level);

    // Polish: the discrete rungs leave budget slack; spend it by bisecting
    // each partition's bound continuously toward its next rung.
    let mut ebs: Vec<f64> = level.iter().zip(&ladders).map(|(&l, lad)| lad[l].eb).collect();
    let mut sigmas: Vec<f64> =
        level.iter().zip(&ladders).map(|(&l, lad)| lad[l].sigma2).collect();
    for _round in 0..2 {
        for (i, m) in models.iter().enumerate() {
            let next = ladders[i].get(level[i] + 1);
            let hi_eb = next.map_or(ebs[i] * 2.0, |p| p.eb);
            let budget_left = target_sigma2 - agg_sigma2;
            if budget_left <= 0.0 {
                break;
            }
            // Largest eb in [cur, hi] whose variance increase fits.
            let (mut lo_e, mut hi_e) = (ebs[i], hi_eb);
            for _ in 0..24 {
                let mid = ((lo_e.ln() + hi_e.ln()) * 0.5).exp();
                let s2 = m.estimate(mid).sigma2 * scale_of(i);
                if (s2 - sigmas[i]).max(0.0) * weight[i] <= budget_left {
                    lo_e = mid;
                } else {
                    hi_e = mid;
                }
            }
            let s2 = m.estimate(lo_e).sigma2 * scale_of(i);
            agg_sigma2 += (s2 - sigmas[i]).max(0.0) * weight[i];
            ebs[i] = lo_e;
            sigmas[i] = s2;
        }
    }

    let est_bit_rate: f64 = models
        .iter()
        .enumerate()
        .zip(&ebs)
        .zip(&weight)
        .map(|(((i, m), &eb), w)| m.estimate(eb).bit_rate * bits_of_part(i) * w)
        .sum();
    let est_sigma2: f64 = sigmas.iter().zip(&weight).map(|(s, w)| s * w).sum();
    Ok(PartitionPlan {
        ebs,
        est_bit_rate,
        est_sigma2,
        est_psnr: crate::quality::psnr_model(value_range, est_sigma2),
    })
}

/// Shared input validation for the partition planners.
pub(crate) fn validate_inputs(
    models: &[RqModel],
    sizes: &[usize],
    grid_points: usize,
) -> Result<(), PlanError> {
    if models.is_empty() {
        return Err(PlanError::NoPartitions);
    }
    if models.len() != sizes.len() {
        return Err(PlanError::MismatchedInputs { models: models.len(), sizes: sizes.len() });
    }
    if grid_points < 2 {
        return Err(PlanError::GridTooSmall(grid_points));
    }
    Ok(())
}

/// Baseline for comparison: the single global error bound meeting the same
/// aggregate target (what the traditional offline approach delivers).
pub fn uniform_eb_for_target(
    models: &[RqModel],
    sizes: &[usize],
    value_range: f64,
    target_psnr: f64,
) -> (f64, PartitionPlan) {
    assert!(!models.is_empty());
    let target_sigma2 = crate::quality::sigma2_for_psnr(value_range, target_psnr);
    let total: f64 = sizes.iter().map(|&s| s as f64).sum();
    let weight: Vec<f64> = sizes.iter().map(|&s| s as f64 / total).collect();

    let agg = |eb: f64| -> (f64, f64) {
        let mut s2 = 0.0;
        let mut bits = 0.0;
        for (m, w) in models.iter().zip(&weight) {
            let e = m.estimate(eb);
            s2 += e.sigma2 * w;
            bits += e.bit_rate * w;
        }
        (s2, bits)
    };
    let (mut lo, mut hi) = (value_range * 1e-12, value_range);
    for _ in 0..80 {
        let mid = ((lo.ln() + hi.ln()) * 0.5).exp();
        if agg(mid).0 < target_sigma2 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let eb = lo;
    let (s2, bits) = agg(eb);
    (
        eb,
        PartitionPlan {
            ebs: vec![eb; models.len()],
            est_bit_rate: bits,
            est_sigma2: s2,
            est_psnr: crate::quality::psnr_model(value_range, s2),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rq_grid::{NdArray, Shape};
    use rq_predict::PredictorKind;

    /// Partitions with very different noise levels — exactly the setting
    /// where per-partition tuning wins.
    fn partitions() -> (Vec<NdArray<f32>>, f64) {
        let mut out = Vec::new();
        let mut state = 0xF00Du64;
        for part in 0..4 {
            let amp = 0.02 * 4f64.powi(part); // 0.02 .. 1.28
            out.push(NdArray::<f32>::from_fn(Shape::d2(64, 64), |ix| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let noise = (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
                ((ix[0] as f64 * 0.1).sin() * 3.0 + noise * amp) as f32
            }));
        }
        let range = out
            .iter()
            .map(|f| f.value_range())
            .fold(0.0f64, f64::max);
        (out, range)
    }

    fn models(parts: &[NdArray<f32>]) -> Vec<RqModel> {
        parts
            .iter()
            .enumerate()
            .map(|(i, p)| RqModel::build(p, PredictorKind::Lorenzo, 0.1, 100 + i as u64))
            .collect()
    }

    #[test]
    fn plan_meets_quality_target() {
        let (parts, range) = partitions();
        let ms = models(&parts);
        let sizes: Vec<usize> = parts.iter().map(|p| p.len()).collect();
        let plan = optimize_partitions(&ms, &sizes, range, 60.0, 24).unwrap();
        assert!(plan.est_psnr >= 60.0 - 0.5, "psnr {}", plan.est_psnr);
        assert_eq!(plan.ebs.len(), 4);
    }

    #[test]
    fn malformed_inputs_are_typed_errors_not_panics() {
        let (parts, range) = partitions();
        let ms = models(&parts);
        let sizes: Vec<usize> = parts.iter().map(|p| p.len()).collect();
        assert_eq!(
            optimize_partitions(&[], &[], range, 60.0, 24).unwrap_err(),
            PlanError::NoPartitions
        );
        assert!(matches!(
            optimize_partitions(&ms, &sizes[..2], range, 60.0, 24),
            Err(PlanError::MismatchedInputs { models: 4, sizes: 2 })
        ));
        assert_eq!(
            optimize_partitions(&ms, &sizes, range, 60.0, 1).unwrap_err(),
            PlanError::GridTooSmall(1)
        );
        assert!(matches!(
            optimize_partitions(&ms, &sizes, range, f64::NAN, 24),
            Err(PlanError::InvalidTarget(_))
        ));
        assert!(matches!(
            optimize_partitions(&ms, &sizes, 0.0, 60.0, 24),
            Err(PlanError::InvalidTarget(_))
        ));
    }

    #[test]
    fn unreachable_floor_is_a_typed_error() {
        // An (effectively) infinite-quality floor: no grid point of any
        // partition can get there, which previously fell back to a
        // silently lossier plan.
        let (parts, range) = partitions();
        let ms = models(&parts);
        let sizes: Vec<usize> = parts.iter().map(|p| p.len()).collect();
        let err = optimize_partitions(&ms, &sizes, range, 100_000.0, 8).unwrap_err();
        match err {
            PlanError::UnreachableTarget { target_psnr, achievable_psnr } => {
                assert_eq!(target_psnr, 100_000.0);
                assert!(achievable_psnr.is_finite());
                assert!(achievable_psnr < 100_000.0);
            }
            other => panic!("expected UnreachableTarget, got {other:?}"),
        }
    }

    #[test]
    fn beats_uniform_bound_on_heterogeneous_partitions() {
        let (parts, range) = partitions();
        let ms = models(&parts);
        let sizes: Vec<usize> = parts.iter().map(|p| p.len()).collect();
        let plan = optimize_partitions(&ms, &sizes, range, 60.0, 32).unwrap();
        let (_, uniform) = uniform_eb_for_target(&ms, &sizes, range, 60.0);
        // Same quality target, fewer (or equal) estimated bits. The paper
        // reports +13% ratio; heterogeneous noise should show a clear gap.
        assert!(
            plan.est_bit_rate <= uniform.est_bit_rate * 1.01,
            "optimized {} vs uniform {}",
            plan.est_bit_rate,
            uniform.est_bit_rate
        );
    }

    #[test]
    fn noisy_partitions_get_larger_bounds() {
        let (parts, range) = partitions();
        let ms = models(&parts);
        let sizes: Vec<usize> = parts.iter().map(|p| p.len()).collect();
        let plan = optimize_partitions(&ms, &sizes, range, 55.0, 32).unwrap();
        // Partition 3 (noisiest) should not get a *tighter* bound than
        // partition 0 (quietest).
        assert!(
            plan.ebs[3] >= plan.ebs[0] * 0.5,
            "ebs {:?} — noisy partition starved",
            plan.ebs
        );
    }

    #[test]
    fn uniform_baseline_hits_target() {
        let (parts, range) = partitions();
        let ms = models(&parts);
        let sizes: Vec<usize> = parts.iter().map(|p| p.len()).collect();
        let (eb, plan) = uniform_eb_for_target(&ms, &sizes, range, 58.0);
        assert!(eb > 0.0);
        assert!((plan.est_psnr - 58.0).abs() < 1.0, "psnr {}", plan.est_psnr);
    }
}
