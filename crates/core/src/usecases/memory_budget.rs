//! Use-case 2 (§IV-B): memory compression with a target footprint.
//!
//! The model picks the error bound whose *estimated* size is a safety
//! margin below the assigned space (the paper targets 80 % of the budget),
//! compresses once, and only in the rare overflow case re-optimizes with a
//! proportionally lowered target and recompresses — the second-round
//! strategy of §IV-B.

use crate::model::RqModel;
use rq_compress::{compress, CompressError, CompressedOutput, CompressorConfig};
use rq_grid::{NdArray, Scalar};
use rq_quant::ErrorBoundMode;

/// What happened during budgeted compression.
#[derive(Clone, Debug)]
pub struct BudgetOutcome {
    /// The byte budget that had to be respected.
    pub budget_bytes: usize,
    /// Error bound chosen in each round (1 or 2 entries).
    pub rounds: Vec<f64>,
    /// Final compressed size.
    pub final_bytes: usize,
    /// Whether the final size fits the budget.
    pub fits: bool,
    /// Final size as a fraction of the budget (the y-axis of Fig. 11).
    pub utilization: f64,
}

/// Compress `field` so the output fits in `budget_bytes`, using the model
/// with the given safety `margin` (0.2 ⇒ aim at 80 % of the budget).
///
/// `strict` enables the second-round recompression guarantee: if the first
/// attempt overflows, the target is scaled down by the observed ratio and
/// compression retried once.
pub fn compress_with_budget<T: Scalar>(
    field: &NdArray<T>,
    model: &RqModel,
    base_cfg: CompressorConfig,
    budget_bytes: usize,
    margin: f64,
    strict: bool,
) -> Result<(CompressedOutput, BudgetOutcome), CompressError> {
    assert!(budget_bytes > 0, "budget must be positive");
    assert!((0.0..1.0).contains(&margin), "margin must be in [0, 1)");
    let n = field.len();
    let target_bits = budget_bytes as f64 * 8.0 / n as f64 * (1.0 - margin);

    let mut rounds = Vec::new();
    let eb = model.error_bound_for_bit_rate(target_bits);
    rounds.push(eb);
    let mut out = compress(field, &base_cfg.with_bound(ErrorBoundMode::Abs(eb)))?;

    if strict && out.bytes.len() > budget_bytes {
        // Second round: shrink the target by the observed overshoot plus
        // the same margin.
        let overshoot = out.bytes.len() as f64 / budget_bytes as f64;
        let eb2 = model.error_bound_for_bit_rate(target_bits / overshoot);
        // Never *raise* the bound in a corrective round.
        let eb2 = eb2.max(eb);
        rounds.push(eb2);
        out = compress(field, &base_cfg.with_bound(ErrorBoundMode::Abs(eb2)))?;
    }

    let final_bytes = out.bytes.len();
    let outcome = BudgetOutcome {
        budget_bytes,
        rounds,
        final_bytes,
        fits: final_bytes <= budget_bytes,
        utilization: final_bytes as f64 / budget_bytes as f64,
    };
    Ok((out, outcome))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rq_grid::Shape;
    use rq_predict::PredictorKind;

    fn field() -> NdArray<f32> {
        let mut state = 0x5EEDu64;
        NdArray::from_fn(Shape::d2(128, 128), |ix| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let noise = (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
            ((ix[0] as f64 * 0.15).sin() * 4.0 + noise * 0.5) as f32
        })
    }

    #[test]
    fn fits_generous_budget() {
        let f = field();
        let model = RqModel::build(&f, PredictorKind::Lorenzo, 0.1, 1);
        let cfg = CompressorConfig::new(PredictorKind::Lorenzo, ErrorBoundMode::Abs(1.0));
        // Budget = 4 bits/value, easily reachable.
        let budget = f.len() / 2;
        let (_, outcome) =
            compress_with_budget(&f, &model, cfg, budget, 0.2, true).unwrap();
        assert!(outcome.fits, "utilization {}", outcome.utilization);
        assert!(outcome.rounds.len() <= 2);
    }

    #[test]
    fn utilization_near_but_below_one_for_tight_budget() {
        let f = field();
        let model = RqModel::build(&f, PredictorKind::Lorenzo, 0.1, 2);
        let cfg = CompressorConfig::new(PredictorKind::Lorenzo, ErrorBoundMode::Abs(1.0));
        // 2.2 bits/value.
        let budget = (f.len() as f64 * 2.2 / 8.0) as usize;
        let (_, outcome) =
            compress_with_budget(&f, &model, cfg, budget, 0.2, true).unwrap();
        assert!(outcome.fits);
        assert!(outcome.utilization > 0.3, "wastes the budget: {}", outcome.utilization);
    }

    #[test]
    fn strict_mode_never_overflows_across_budgets() {
        let f = field();
        let model = RqModel::build(&f, PredictorKind::Interpolation, 0.1, 3);
        let cfg =
            CompressorConfig::new(PredictorKind::Interpolation, ErrorBoundMode::Abs(1.0));
        for bits in [1.5, 2.0, 3.0, 6.0] {
            let budget = (f.len() as f64 * bits / 8.0) as usize;
            let (_, outcome) =
                compress_with_budget(&f, &model, cfg, budget, 0.2, true).unwrap();
            assert!(outcome.fits, "{bits} bits/value: utilization {}", outcome.utilization);
        }
    }

    #[test]
    #[should_panic]
    fn zero_budget_rejected() {
        let f = field();
        let model = RqModel::build(&f, PredictorKind::Lorenzo, 0.1, 4);
        let cfg = CompressorConfig::new(PredictorKind::Lorenzo, ErrorBoundMode::Abs(1.0));
        let _ = compress_with_budget(&f, &model, cfg, 0, 0.2, true);
    }
}
