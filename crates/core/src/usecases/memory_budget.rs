//! Use-case 2 (§IV-B): memory compression with a target footprint.
//!
//! The model picks the error bound whose *estimated* size is a safety
//! margin below the assigned space (the paper targets 80 % of the budget),
//! compresses once, and only in the rare overflow case re-optimizes with a
//! proportionally lowered target and recompresses — the second-round
//! strategy of §IV-B.

use crate::model::RqModel;
use crate::usecases::insitu::{validate_inputs, PartitionPlan, PlanError};
use rq_compress::{compress, CompressError, CompressedOutput, CompressorConfig};
use rq_grid::{NdArray, Scalar};
use rq_quant::ErrorBoundMode;

/// Optimize per-partition error bounds so the *estimated* total size fits
/// `budget_bytes` with a safety `margin` (0.2 ⇒ aim at 80 % of the
/// budget) while minimizing the aggregate (size-weighted) error variance
/// — the §IV-B fixed-footprint use-case generalized to one bound per
/// partition, the dual of [`super::insitu::optimize_partitions`].
///
/// * `models` — one [`RqModel`] per partition (chunk);
/// * `sizes` — element count per partition;
/// * `value_range` — range of the combined data (for the reported PSNR);
/// * `grid_points` — candidate bounds per partition (log-spaced).
///
/// Returns [`PlanError::BudgetTooSmall`] when even the loosest candidate
/// bounds exceed the margin-adjusted budget.
pub fn plan_budget(
    models: &[RqModel],
    sizes: &[usize],
    value_range: f64,
    budget_bytes: usize,
    margin: f64,
    grid_points: usize,
) -> Result<PartitionPlan, PlanError> {
    validate_inputs(models, sizes, grid_points)?;
    if budget_bytes == 0 {
        return Err(PlanError::InvalidTarget("zero byte budget".into()));
    }
    if !(0.0..1.0).contains(&margin) {
        return Err(PlanError::InvalidTarget(format!("margin {margin} outside [0, 1)")));
    }
    if !(value_range.is_finite() && value_range > 0.0) {
        return Err(PlanError::InvalidTarget(format!("value range {value_range}")));
    }
    let total: f64 = sizes.iter().map(|&s| s as f64).sum();
    // The budget as an aggregate bits/value target.
    let target_bits = budget_bytes as f64 * 8.0 * (1.0 - margin) / total;

    #[derive(Clone, Copy)]
    struct Point {
        eb: f64,
        bits: f64,
        sigma2: f64,
    }
    let ladders: Vec<Vec<Point>> = models
        .iter()
        .map(|m| {
            // Tightest rung: the 5 % error quantile (any tighter and the
            // rate model saturates toward verbatim cost anyway); loosest:
            // where the model's rate becomes negligible.
            let lo = m
                .error_quantile(0.05)
                .max(value_range * 1e-12)
                .max(f64::MIN_POSITIVE);
            let hi = m.error_bound_for_bit_rate(0.05).max(lo * 4.0);
            (0..grid_points)
                .map(|i| {
                    let t = i as f64 / (grid_points - 1) as f64;
                    let eb = (lo.ln() + t * (hi.ln() - lo.ln())).exp();
                    let est = m.estimate(eb);
                    Point { eb, bits: est.bit_rate, sigma2: est.sigma2 }
                })
                .collect()
        })
        .collect();

    let weight: Vec<f64> = sizes.iter().map(|&s| s as f64 / total).collect();
    // Lagrangian rung selection, dual to the in-situ planner: each
    // partition minimizes `σ² + λ·bits`; bisecting λ finds the highest
    // quality within the bit budget.
    let pick = |lambda: f64| -> Vec<usize> {
        ladders
            .iter()
            .map(|ladder| {
                let mut best = 0usize;
                let mut best_cost = f64::INFINITY;
                for (j, p) in ladder.iter().enumerate() {
                    let cost = p.sigma2 + lambda * p.bits;
                    if cost < best_cost {
                        best_cost = cost;
                        best = j;
                    }
                }
                best
            })
            .collect()
    };
    let bits_of = |level: &[usize]| -> f64 {
        level.iter().zip(&ladders).zip(&weight).map(|((&l, lad), w)| lad[l].bits * w).sum()
    };
    let (mut lam_lo, mut lam_hi) = (1e-18f64, 1e18f64);
    for _ in 0..80 {
        let mid = ((lam_lo.ln() + lam_hi.ln()) * 0.5).exp();
        if bits_of(&pick(mid)) > target_bits {
            lam_lo = mid; // too expensive: raise the bit penalty
        } else {
            lam_hi = mid;
        }
    }
    let mut level = pick(lam_hi);
    if bits_of(&level) > target_bits {
        // Even λ_hi overspends: the loosest rungs are the floor.
        level = vec![grid_points - 1; models.len()];
        let min_bits = bits_of(&level);
        if min_bits > target_bits {
            return Err(PlanError::BudgetTooSmall {
                budget_bytes,
                min_bytes: (min_bits * total / 8.0 / (1.0 - margin)).ceil() as usize,
            });
        }
    }

    // Polish: spend leftover bit budget by tightening each partition's
    // bound continuously toward its previous (tighter) rung.
    let mut agg_bits = bits_of(&level);
    let mut ebs: Vec<f64> = level.iter().zip(&ladders).map(|(&l, lad)| lad[l].eb).collect();
    let mut bits: Vec<f64> = level.iter().zip(&ladders).map(|(&l, lad)| lad[l].bits).collect();
    for _round in 0..2 {
        for (i, m) in models.iter().enumerate() {
            let budget_left = target_bits - agg_bits;
            if budget_left <= 0.0 {
                break;
            }
            let lo_eb = if level[i] > 0 { ladders[i][level[i] - 1].eb } else { ebs[i] * 0.5 };
            // Smallest eb in [lo, cur] whose bit increase fits.
            let (mut lo_e, mut hi_e) = (lo_eb, ebs[i]);
            for _ in 0..24 {
                let mid = ((lo_e.ln() + hi_e.ln()) * 0.5).exp();
                let b = m.estimate(mid).bit_rate;
                if (b - bits[i]).max(0.0) * weight[i] <= budget_left {
                    hi_e = mid;
                } else {
                    lo_e = mid;
                }
            }
            let b = m.estimate(hi_e).bit_rate;
            agg_bits += (b - bits[i]).max(0.0) * weight[i];
            ebs[i] = hi_e;
            bits[i] = b;
        }
    }

    let est_sigma2: f64 = models
        .iter()
        .zip(&ebs)
        .zip(&weight)
        .map(|((m, &eb), w)| m.estimate(eb).sigma2 * w)
        .sum();
    let est_bit_rate: f64 =
        models.iter().zip(&ebs).zip(&weight).map(|((m, &eb), w)| m.estimate(eb).bit_rate * w).sum();
    Ok(PartitionPlan {
        ebs,
        est_bit_rate,
        est_sigma2,
        est_psnr: crate::quality::psnr_model(value_range, est_sigma2),
    })
}

/// What happened during budgeted compression.
#[derive(Clone, Debug)]
pub struct BudgetOutcome {
    /// The byte budget that had to be respected.
    pub budget_bytes: usize,
    /// Error bound chosen in each round (1 or 2 entries).
    pub rounds: Vec<f64>,
    /// Final compressed size.
    pub final_bytes: usize,
    /// Whether the final size fits the budget.
    pub fits: bool,
    /// Final size as a fraction of the budget (the y-axis of Fig. 11).
    pub utilization: f64,
}

/// Compress `field` so the output fits in `budget_bytes`, using the model
/// with the given safety `margin` (0.2 ⇒ aim at 80 % of the budget).
///
/// `strict` enables the second-round recompression guarantee: if the first
/// attempt overflows, the target is scaled down by the observed ratio and
/// compression retried once.
pub fn compress_with_budget<T: Scalar>(
    field: &NdArray<T>,
    model: &RqModel,
    base_cfg: CompressorConfig,
    budget_bytes: usize,
    margin: f64,
    strict: bool,
) -> Result<(CompressedOutput, BudgetOutcome), CompressError> {
    assert!(budget_bytes > 0, "budget must be positive");
    assert!((0.0..1.0).contains(&margin), "margin must be in [0, 1)");
    let n = field.len();
    let target_bits = budget_bytes as f64 * 8.0 / n as f64 * (1.0 - margin);

    let mut rounds = Vec::new();
    let eb = model.error_bound_for_bit_rate(target_bits);
    rounds.push(eb);
    let mut out = compress(field, &base_cfg.with_bound(ErrorBoundMode::Abs(eb)))?;

    if strict && out.bytes.len() > budget_bytes {
        // Second round: shrink the target by the observed overshoot plus
        // the same margin.
        let overshoot = out.bytes.len() as f64 / budget_bytes as f64;
        let eb2 = model.error_bound_for_bit_rate(target_bits / overshoot);
        // Never *raise* the bound in a corrective round.
        let eb2 = eb2.max(eb);
        rounds.push(eb2);
        out = compress(field, &base_cfg.with_bound(ErrorBoundMode::Abs(eb2)))?;
    }

    let final_bytes = out.bytes.len();
    let outcome = BudgetOutcome {
        budget_bytes,
        rounds,
        final_bytes,
        fits: final_bytes <= budget_bytes,
        utilization: final_bytes as f64 / budget_bytes as f64,
    };
    Ok((out, outcome))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rq_grid::Shape;
    use rq_predict::PredictorKind;

    fn field() -> NdArray<f32> {
        let mut state = 0x5EEDu64;
        NdArray::from_fn(Shape::d2(128, 128), |ix| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let noise = (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
            ((ix[0] as f64 * 0.15).sin() * 4.0 + noise * 0.5) as f32
        })
    }

    #[test]
    fn fits_generous_budget() {
        let f = field();
        let model = RqModel::build(&f, PredictorKind::Lorenzo, 0.1, 1);
        let cfg = CompressorConfig::new(PredictorKind::Lorenzo, ErrorBoundMode::Abs(1.0));
        // Budget = 4 bits/value, easily reachable.
        let budget = f.len() / 2;
        let (_, outcome) =
            compress_with_budget(&f, &model, cfg, budget, 0.2, true).unwrap();
        assert!(outcome.fits, "utilization {}", outcome.utilization);
        assert!(outcome.rounds.len() <= 2);
    }

    #[test]
    fn utilization_near_but_below_one_for_tight_budget() {
        let f = field();
        let model = RqModel::build(&f, PredictorKind::Lorenzo, 0.1, 2);
        let cfg = CompressorConfig::new(PredictorKind::Lorenzo, ErrorBoundMode::Abs(1.0));
        // 2.2 bits/value.
        let budget = (f.len() as f64 * 2.2 / 8.0) as usize;
        let (_, outcome) =
            compress_with_budget(&f, &model, cfg, budget, 0.2, true).unwrap();
        assert!(outcome.fits);
        assert!(outcome.utilization > 0.3, "wastes the budget: {}", outcome.utilization);
    }

    #[test]
    fn strict_mode_never_overflows_across_budgets() {
        let f = field();
        let model = RqModel::build(&f, PredictorKind::Interpolation, 0.1, 3);
        let cfg =
            CompressorConfig::new(PredictorKind::Interpolation, ErrorBoundMode::Abs(1.0));
        for bits in [1.5, 2.0, 3.0, 6.0] {
            let budget = (f.len() as f64 * bits / 8.0) as usize;
            let (_, outcome) =
                compress_with_budget(&f, &model, cfg, budget, 0.2, true).unwrap();
            assert!(outcome.fits, "{bits} bits/value: utilization {}", outcome.utilization);
        }
    }

    #[test]
    fn budget_plan_fits_and_prefers_quiet_partitions() {
        // Four partitions of increasing noise (as in the insitu tests):
        // the plan must fit the margin-adjusted budget estimate and give
        // the noisy partitions the looser bounds.
        let mut parts = Vec::new();
        let mut state = 0xBEEFu64;
        for p in 0..4 {
            let amp = 0.02 * 4f64.powi(p);
            parts.push(NdArray::<f32>::from_fn(Shape::d2(64, 64), |ix| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let noise = (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
                ((ix[0] as f64 * 0.1).sin() * 3.0 + noise * amp) as f32
            }));
        }
        let range = parts.iter().map(|f| f.value_range()).fold(0.0f64, f64::max);
        let models: Vec<RqModel> = parts
            .iter()
            .enumerate()
            .map(|(i, p)| RqModel::build(p, PredictorKind::Lorenzo, 0.1, 40 + i as u64))
            .collect();
        let sizes: Vec<usize> = parts.iter().map(|p| p.len()).collect();
        let n_total: usize = sizes.iter().sum();
        // 3 bits/value aggregate.
        let budget = n_total * 3 / 8;
        let plan = plan_budget(&models, &sizes, range, budget, 0.2, 32).unwrap();
        let est_bytes = plan.est_bit_rate * n_total as f64 / 8.0;
        assert!(
            est_bytes <= budget as f64 * 0.85,
            "est {est_bytes:.0} B vs budget {budget} B"
        );
        // Utilization: the plan should not waste the budget either.
        assert!(est_bytes >= budget as f64 * 0.25, "est {est_bytes:.0} B");
        assert!(
            plan.ebs[3] >= plan.ebs[0],
            "noisy partition must not get a tighter bound: {:?}",
            plan.ebs
        );
        // And the dual direction: an absurdly small budget is a typed
        // error, not a silent overflow.
        assert!(matches!(
            plan_budget(&models, &sizes, range, 16, 0.2, 32),
            Err(PlanError::BudgetTooSmall { .. })
        ));
        assert!(matches!(
            plan_budget(&models, &sizes, range, 0, 0.2, 32),
            Err(PlanError::InvalidTarget(_))
        ));
    }

    #[test]
    #[should_panic]
    fn zero_budget_rejected() {
        let f = field();
        let model = RqModel::build(&f, PredictorKind::Lorenzo, 0.1, 4);
        let cfg = CompressorConfig::new(PredictorKind::Lorenzo, ErrorBoundMode::Abs(1.0));
        let _ = compress_with_budget(&f, &model, cfg, 0, 0.2, true);
    }
}
