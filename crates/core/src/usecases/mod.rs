//! The paper's three use-cases of the ratio-quality model (§IV).

pub mod insitu;
pub mod memory_budget;
pub mod predictor_select;

pub use insitu::{
    optimize_partitions, optimize_partitions_corrected, uniform_eb_for_target, PartitionPlan,
    PlanCorrection, PlanError,
};
pub use memory_budget::{compress_with_budget, plan_budget, BudgetOutcome};
pub use predictor_select::PredictorSelector;
