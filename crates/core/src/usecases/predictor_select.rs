//! Use-case 1 (§IV-A): adaptive best-predictor selection.
//!
//! One model per candidate predictor is built from a single sampling pass
//! each; the selector then compares *estimated* rate-distortion curves and
//! picks the best-fit predictor for any error bound, target bit-rate or
//! target quality — replacing the trial-and-error pre-compression of
//! existing predictor-selection schemes (21.8× cheaper in the paper's
//! Fig. 10 experiment).

use crate::model::{Estimate, RqModel};
use rq_grid::{NdArray, Scalar};
use rq_predict::PredictorKind;

/// Rate-distortion based predictor selector.
#[derive(Debug)]
pub struct PredictorSelector {
    models: Vec<RqModel>,
}

impl PredictorSelector {
    /// Build one model per candidate predictor.
    pub fn build<T: Scalar>(
        field: &NdArray<T>,
        candidates: &[PredictorKind],
        rate: f64,
        seed: u64,
    ) -> Self {
        assert!(!candidates.is_empty(), "need at least one candidate");
        let models = candidates
            .iter()
            .enumerate()
            .map(|(i, &k)| RqModel::build(field, k, rate, seed.wrapping_add(i as u64)))
            .collect();
        PredictorSelector { models }
    }

    /// The candidate models.
    pub fn models(&self) -> &[RqModel] {
        &self.models
    }

    /// Estimated RD curve (one [`Estimate`] per error bound) per candidate.
    pub fn rate_distortion_curves(&self, ebs: &[f64]) -> Vec<(PredictorKind, Vec<Estimate>)> {
        self.models
            .iter()
            .map(|m| (m.predictor(), m.rate_distortion_curve(ebs)))
            .collect()
    }

    /// Best predictor for a fixed error bound: highest estimated ratio
    /// (quality is equal by construction — same bound).
    pub fn best_for_error_bound(&self, eb: f64) -> (PredictorKind, Estimate) {
        self.models
            .iter()
            .map(|m| (m.predictor(), m.estimate(eb)))
            .max_by(|a, b| a.1.ratio.total_cmp(&b.1.ratio))
            .expect("non-empty candidates")
    }

    /// Best predictor for a target bit-rate: highest estimated PSNR at the
    /// bound that meets the rate.
    pub fn best_for_bit_rate(&self, bit_rate: f64) -> (PredictorKind, f64, Estimate) {
        self.models
            .iter()
            .map(|m| {
                let eb = m.error_bound_for_bit_rate(bit_rate);
                (m.predictor(), eb, m.estimate(eb))
            })
            .max_by(|a, b| a.2.psnr.total_cmp(&b.2.psnr))
            .expect("non-empty candidates")
    }

    /// Scan a bit-rate grid and report where the winning predictor changes:
    /// `(bit_rate, winner)` transitions — the crossover the paper finds at
    /// ≈1.89 bits on RTM (Fig. 10).
    pub fn crossovers(&self, bit_rates: &[f64]) -> Vec<(f64, PredictorKind)> {
        let mut out = Vec::new();
        let mut prev: Option<PredictorKind> = None;
        for &b in bit_rates {
            let (winner, _, _) = self.best_for_bit_rate(b);
            if prev != Some(winner) {
                out.push((b, winner));
                prev = Some(winner);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rq_grid::Shape;

    fn field() -> NdArray<f32> {
        let mut state = 77u64;
        NdArray::from_fn(Shape::d2(96, 96), |ix| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let noise = (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
            ((ix[0] as f64 * 0.2).sin() * 2.0 + ix[1] as f64 * 0.01 + noise * 0.1) as f32
        })
    }

    fn selector() -> PredictorSelector {
        PredictorSelector::build(
            &field(),
            &[PredictorKind::Lorenzo, PredictorKind::Interpolation],
            0.1,
            11,
        )
    }

    #[test]
    fn curves_have_requested_grid() {
        let s = selector();
        let ebs = [1e-3, 1e-2, 1e-1];
        let curves = s.rate_distortion_curves(&ebs);
        assert_eq!(curves.len(), 2);
        for (_, c) in &curves {
            assert_eq!(c.len(), 3);
        }
    }

    #[test]
    fn best_for_eb_returns_max_ratio() {
        let s = selector();
        let (_, best) = s.best_for_error_bound(1e-2);
        for m in s.models() {
            assert!(best.ratio >= m.estimate(1e-2).ratio - 1e-12);
        }
    }

    #[test]
    fn best_for_bit_rate_meets_rate() {
        let s = selector();
        let (_, eb, est) = s.best_for_bit_rate(2.0);
        assert!(eb > 0.0);
        assert!((est.bit_rate - 2.0).abs() < 0.5, "bit rate {}", est.bit_rate);
    }

    #[test]
    fn crossovers_start_with_first_winner() {
        let s = selector();
        let grid: Vec<f64> = (1..=12).map(|i| i as f64 * 0.5).collect();
        let xs = s.crossovers(&grid);
        assert!(!xs.is_empty());
        assert_eq!(xs[0].0, 0.5);
    }
}
