//! The dataset registry mirroring the paper's Table I.

use crate::fields;
use rq_grid::NdArray;

/// One evaluated field of a dataset (a row of the paper's Table II).
#[derive(Clone, Copy, Debug)]
pub struct FieldSpec {
    /// Dataset name (Table I "Name").
    pub dataset: &'static str,
    /// Field name (Table II "Field").
    pub field: &'static str,
    /// Generator.
    gen: fn() -> NdArray<f32>,
}

impl FieldSpec {
    /// Generate the synthetic field (deterministic).
    pub fn generate(&self) -> NdArray<f32> {
        (self.gen)()
    }

    /// `dataset/field` label used in benchmark tables.
    pub fn label(&self) -> String {
        format!("{}/{}", self.dataset, self.field)
    }
}

/// One dataset of Table I.
#[derive(Clone, Debug)]
pub struct DatasetSpec {
    /// Dataset name.
    pub name: &'static str,
    /// Short description (Table I "Description").
    pub description: &'static str,
    /// Dimensionality label (Table I "Dim").
    pub dim: &'static str,
    /// Original on-disk format noted in Table I.
    pub format: &'static str,
    /// The evaluated fields.
    pub fields: Vec<FieldSpec>,
}

/// The three Table I RTM snapshots, taken from **one** simulator pass
/// (steps 150/300/450 of the same solve) instead of three ad-hoc
/// single-snapshot simulators — byte-identical output, a third of the
/// solver work when more than one field is generated.
fn rtm_series() -> &'static [NdArray<f32>; 3] {
    static SERIES: std::sync::OnceLock<[NdArray<f32>; 3]> = std::sync::OnceLock::new();
    SERIES.get_or_init(|| {
        let mut sim = crate::rtm::RtmSimulator::new([64, 64, 64]);
        [sim.snapshot_at(150), sim.snapshot_at(300), sim.snapshot_at(450)]
    })
}

fn rtm_1000() -> NdArray<f32> {
    rtm_series()[0].clone()
}
fn rtm_2000() -> NdArray<f32> {
    rtm_series()[1].clone()
}
fn rtm_3000() -> NdArray<f32> {
    rtm_series()[2].clone()
}

/// The full Table I registry: 10 datasets, 17 fields.
pub fn all_datasets() -> Vec<DatasetSpec> {
    vec![
        DatasetSpec {
            name: "RTM",
            description: "Reverse time migration wavefield",
            dim: "3D",
            format: "HDF5",
            fields: vec![
                FieldSpec { dataset: "RTM", field: "snapshot-1000", gen: rtm_1000 },
                FieldSpec { dataset: "RTM", field: "snapshot-2000", gen: rtm_2000 },
                FieldSpec { dataset: "RTM", field: "snapshot-3000", gen: rtm_3000 },
            ],
        },
        DatasetSpec {
            name: "CESM",
            description: "Climate simulation",
            dim: "2D",
            format: "NetCDF",
            fields: vec![
                FieldSpec { dataset: "CESM", field: "TS", gen: fields::cesm_ts },
                FieldSpec { dataset: "CESM", field: "TROP_Z", gen: fields::cesm_trop_z },
            ],
        },
        DatasetSpec {
            name: "Hurricane",
            description: "Weather simulation",
            dim: "3D",
            format: "Binary",
            fields: vec![
                FieldSpec { dataset: "Hurricane", field: "U", gen: fields::hurricane_u },
                FieldSpec { dataset: "Hurricane", field: "TC", gen: fields::hurricane_tc },
            ],
        },
        DatasetSpec {
            name: "Nyx",
            description: "Cosmology simulation",
            dim: "3D",
            format: "HDF5",
            fields: vec![
                FieldSpec { dataset: "Nyx", field: "dark-matter", gen: fields::nyx_dark_matter },
                FieldSpec { dataset: "Nyx", field: "temperature", gen: fields::nyx_temperature },
                FieldSpec { dataset: "Nyx", field: "velocity-z", gen: fields::nyx_velocity_z },
            ],
        },
        DatasetSpec {
            name: "HACC",
            description: "Cosmology particle simulation",
            dim: "1D",
            format: "GIO",
            fields: vec![
                FieldSpec { dataset: "HACC", field: "xx", gen: fields::hacc_xx },
                FieldSpec { dataset: "HACC", field: "vx", gen: fields::hacc_vx },
            ],
        },
        DatasetSpec {
            name: "Brown",
            description: "Synthetic Brownian data",
            dim: "1D",
            format: "Binary",
            fields: vec![FieldSpec {
                dataset: "Brown",
                field: "pressure",
                gen: fields::brown_pressure,
            }],
        },
        DatasetSpec {
            name: "Miranda",
            description: "Turbulence simulation",
            dim: "3D",
            format: "Binary",
            fields: vec![FieldSpec { dataset: "Miranda", field: "vx", gen: fields::miranda_vx }],
        },
        DatasetSpec {
            name: "QMCPACK",
            description: "Atomic structure (Quantum Monte Carlo)",
            dim: "3D",
            format: "HDF5",
            fields: vec![FieldSpec {
                dataset: "QMCPACK",
                field: "einspline",
                gen: fields::qmcpack_einspline,
            }],
        },
        DatasetSpec {
            name: "SCALE",
            description: "Climate simulation (SCALE-LETKF)",
            dim: "3D",
            format: "NetCDF",
            fields: vec![FieldSpec { dataset: "SCALE", field: "PRES", gen: fields::scale_pres }],
        },
        DatasetSpec {
            name: "EXAFEL",
            description: "Instrument imaging (LCLS-II)",
            dim: "4D",
            format: "HDF5",
            fields: vec![FieldSpec { dataset: "EXAFEL", field: "raw", gen: fields::exafel_raw }],
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seventeen_fields_across_ten_datasets() {
        let ds = all_datasets();
        assert_eq!(ds.len(), 10);
        let nfields: usize = ds.iter().map(|d| d.fields.len()).sum();
        assert_eq!(nfields, 17);
    }

    #[test]
    fn labels_unique() {
        let ds = all_datasets();
        let labels: std::collections::HashSet<String> =
            ds.iter().flat_map(|d| d.fields.iter().map(|f| f.label())).collect();
        assert_eq!(labels.len(), 17);
    }

    #[test]
    fn small_fields_generate() {
        // Only generate the cheap ones here; heavyweights have their own
        // tests in `fields`.
        let ds = all_datasets();
        let qmc =
            ds.iter().find(|d| d.name == "QMCPACK").unwrap().fields[0].generate();
        assert_eq!(qmc.shape().dims(), &[69, 69, 115]);
        let cesm = ds.iter().find(|d| d.name == "CESM").unwrap().fields[0].generate();
        assert!(cesm.value_range() > 0.0);
    }
}
