//! Per-dataset field generators (synthetic stand-ins, DESIGN.md §4).
//!
//! Every generator is deterministic given its built-in seed, so measured
//! numbers in EXPERIMENTS.md are exactly reproducible. Extents are scaled
//! down from Table I to laptop-friendly sizes while keeping the
//! dimensionality and statistical character.

use crate::grf::{grf_2d, grf_3d};
use crate::rng::{normal, seeded};
use crate::rtm::RtmSimulator;
use rand::Rng;
use rq_grid::{NdArray, Shape};

fn to_f32(a: NdArray<f64>) -> NdArray<f32> {
    let shape = a.shape();
    NdArray::from_vec(shape, a.into_vec().into_iter().map(|v| v as f32).collect())
}

/// Crop a field generated at power-of-two extents down to `dims`.
fn crop3(a: &NdArray<f64>, dims: [usize; 3]) -> NdArray<f64> {
    a.extract_block(&[0, 0, 0], &dims)
}

/// CESM-like `TS` (surface temperature, 2D): latitudinal gradient plus
/// weather-scale perturbations.
pub fn cesm_ts() -> NdArray<f32> {
    let (nlat, nlon) = (256, 512);
    let mut rng = seeded(0xCE50);
    let weather = grf_2d([nlat, nlon], 2.5, &mut rng);
    to_f32(NdArray::from_fn(Shape::d2(nlat, nlon), |ix| {
        let lat = (ix[0] as f64 / nlat as f64 - 0.5) * std::f64::consts::PI;
        285.0 + 25.0 * lat.cos() - 40.0 * lat.sin().powi(2) + 4.0 * weather.get(&ix[..2])
    }))
}

/// CESM-like `TROP_Z` (tropopause height, 2D): smooth, large dynamic range.
pub fn cesm_trop_z() -> NdArray<f32> {
    let (nlat, nlon) = (256, 512);
    let mut rng = seeded(0xCE51);
    let pert = grf_2d([nlat, nlon], 3.0, &mut rng);
    to_f32(NdArray::from_fn(Shape::d2(nlat, nlon), |ix| {
        let lat = (ix[0] as f64 / nlat as f64 - 0.5) * std::f64::consts::PI;
        8_000.0 + 8_500.0 * lat.cos().powi(2) + 350.0 * pert.get(&ix[..2])
    }))
}

/// Hurricane-like `U` (zonal wind, 3D): a vertical-axis vortex plus
/// turbulent perturbations.
pub fn hurricane_u() -> NdArray<f32> {
    let dims = [32, 128, 128];
    let mut rng = seeded(0x4055);
    let turb = grf_3d([32, 128, 128], 5.0 / 3.0, &mut rng);
    to_f32(NdArray::from_fn(Shape::d3(dims[0], dims[1], dims[2]), |ix| {
        let (z, y, x) = (ix[0] as f64, ix[1] as f64 - 64.0, ix[2] as f64 - 64.0);
        let r = (x * x + y * y).sqrt().max(1.0);
        // Rankine-like vortex: solid-body core, 1/r tail, decaying with z.
        let v_t = 45.0 * (r / 20.0).min(20.0 / r) * (-z / 40.0).exp();
        let u = -v_t * y / r;
        u + 3.0 * turb.get(&ix[..3])
    }))
}

/// Hurricane-like `TC` (cloud temperature, 3D): vertical lapse rate with a
/// warm core.
pub fn hurricane_tc() -> NdArray<f32> {
    let dims = [32, 128, 128];
    let mut rng = seeded(0x4056);
    let turb = grf_3d([32, 128, 128], 2.0, &mut rng);
    to_f32(NdArray::from_fn(Shape::d3(dims[0], dims[1], dims[2]), |ix| {
        let (z, y, x) = (ix[0] as f64, ix[1] as f64 - 64.0, ix[2] as f64 - 64.0);
        let r2 = x * x + y * y;
        let warm_core = 8.0 * (-r2 / 800.0).exp() * (-((z - 12.0) / 10.0).powi(2)).exp();
        25.0 - 2.2 * z + warm_core + 0.8 * turb.get(&ix[..3])
    }))
}

/// Nyx-like dark-matter density (3D): log-normal transform of a power-law
/// Gaussian random field — heavy-tailed, hard to compress at low bounds.
pub fn nyx_dark_matter() -> NdArray<f32> {
    let mut rng = seeded(0x9A11);
    let delta = grf_3d([64, 64, 64], 2.5, &mut rng);
    to_f32(NdArray::from_fn(delta.shape(), |ix| (1.8 * delta.get(&ix[..3])).exp() * 80.0))
}

/// Nyx-like baryon temperature (3D): log-normal around 10⁴ K.
pub fn nyx_temperature() -> NdArray<f32> {
    let mut rng = seeded(0x9A12);
    let delta = grf_3d([64, 64, 64], 2.8, &mut rng);
    to_f32(NdArray::from_fn(delta.shape(), |ix| {
        1.0e4 * (0.9 * delta.get(&ix[..3])).exp()
    }))
}

/// Nyx-like z-velocity (3D): large-scale coherent flows, ±10⁷ range.
pub fn nyx_velocity_z() -> NdArray<f32> {
    let mut rng = seeded(0x9A13);
    let v = grf_3d([64, 64, 64], 2.2, &mut rng);
    to_f32(NdArray::from_fn(v.shape(), |ix| 2.0e6 * v.get(&ix[..3])))
}

/// HACC-like particle position `xx` (1D): particles clustered in halos
/// inside a 256 Mpc box, in storage order — locally coherent with jumps.
pub fn hacc_xx() -> NdArray<f32> {
    let n = 1 << 21;
    let mut rng = seeded(0x4ACC);
    let mut out = Vec::with_capacity(n);
    let box_size = 256.0;
    while out.len() < n {
        // One halo: center uniform in the box, ~Plummer-ish radial jitter.
        let center: f64 = rng.gen::<f64>() * box_size;
        let members = 64 + (rng.gen::<f64>() * 960.0) as usize;
        let scale = 0.1 + rng.gen::<f64>() * 2.0;
        for _ in 0..members.min(n - out.len()) {
            let r = normal(&mut rng) * scale;
            out.push(((center + r).rem_euclid(box_size)) as f32);
        }
    }
    NdArray::from_vec(Shape::d1(n), out)
}

/// HACC-like particle velocity `vx` (1D): nearly iid Maxwellian components
/// with halo-scale correlation — the least compressible field in Table I.
pub fn hacc_vx() -> NdArray<f32> {
    let n = 1 << 21;
    let mut rng = seeded(0x4ACD);
    let mut out = Vec::with_capacity(n);
    let mut bulk = 0.0f64;
    for i in 0..n {
        if i % 512 == 0 {
            bulk = normal(&mut rng) * 300.0; // per-halo bulk flow
        }
        out.push((bulk + normal(&mut rng) * 250.0) as f32);
    }
    NdArray::from_vec(Shape::d1(n), out)
}

/// Brown (1D): exact Brownian motion, the paper's synthetic benchmark.
pub fn brown_pressure() -> NdArray<f32> {
    let n = 1 << 20;
    let mut rng = seeded(0xB077);
    let mut acc = 0.0f64;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        acc += normal(&mut rng);
        out.push(acc as f32);
    }
    NdArray::from_vec(Shape::d1(n), out)
}

/// Miranda-like `vx` (3D): Kolmogorov-spectrum turbulence with mild
/// intermittency shaping.
pub fn miranda_vx() -> NdArray<f32> {
    let mut rng = seeded(0x317A);
    let v = grf_3d([64, 128, 128], 5.0 / 3.0, &mut rng);
    let cropped = crop3(&v, [64, 96, 96]);
    to_f32(NdArray::from_fn(cropped.shape(), |ix| {
        let x = cropped.get(&ix[..3]);
        1.2 * x + 0.15 * x * x * x.signum()
    }))
}

/// QMCPACK-like `einspline` orbital (3D, 69×69×115): sum of oscillating
/// Gaussian lobes, exactly the paper's odd extents.
pub fn qmcpack_einspline() -> NdArray<f32> {
    let dims = [69usize, 69, 115];
    let mut rng = seeded(0x03C4);
    // Random orbital centers and wave-vectors.
    let lobes: Vec<([f64; 3], f64, [f64; 3])> = (0..24)
        .map(|_| {
            let c = [
                rng.gen::<f64>() * dims[0] as f64,
                rng.gen::<f64>() * dims[1] as f64,
                rng.gen::<f64>() * dims[2] as f64,
            ];
            let width = 6.0 + rng.gen::<f64>() * 10.0;
            let kvec = [normal(&mut rng) * 0.4, normal(&mut rng) * 0.4, normal(&mut rng) * 0.4];
            (c, width, kvec)
        })
        .collect();
    to_f32(NdArray::from_fn(Shape::d3(dims[0], dims[1], dims[2]), |ix| {
        let p = [ix[0] as f64, ix[1] as f64, ix[2] as f64];
        lobes
            .iter()
            .map(|(c, w, k)| {
                let r2: f64 = (0..3).map(|a| (p[a] - c[a]).powi(2)).sum();
                let phase: f64 = (0..3).map(|a| k[a] * p[a]).sum();
                (-r2 / (2.0 * w * w)).exp() * phase.cos()
            })
            .sum::<f64>()
    }))
}

/// SCALE-LETKF-like `PRES` (3D, 98×120×120): barometric decay with height
/// plus synoptic perturbations.
pub fn scale_pres() -> NdArray<f32> {
    let mut rng = seeded(0x5CA1);
    let pert = grf_3d([128, 128, 128], 2.5, &mut rng);
    let pert = crop3(&pert, [98, 120, 120]);
    to_f32(NdArray::from_fn(pert.shape(), |ix| {
        let z = ix[0] as f64;
        101_325.0 * (-z / 35.0).exp() + 300.0 * pert.get(&ix[..3])
    }))
}

/// EXAFEL-like `raw` (4D, events × panels × rows × cols): detector
/// background, shot noise and sparse Bragg-like peaks.
pub fn exafel_raw() -> NdArray<f32> {
    let dims = [8usize, 16, 64, 128];
    let mut rng = seeded(0xE8FE);
    let n = dims.iter().product::<usize>();
    let mut out = vec![0f32; n];
    for v in out.iter_mut() {
        // Pedestal + Gaussian readout noise.
        *v = (120.0 + normal(&mut rng) * 6.0) as f32;
    }
    // Sparse bright peaks, a few per panel.
    let shape = Shape::d4(dims[0], dims[1], dims[2], dims[3]);
    for ev in 0..dims[0] {
        for panel in 0..dims[1] {
            for _ in 0..6 {
                let r = rng.gen::<f64>() * (dims[2] - 3) as f64;
                let c = rng.gen::<f64>() * (dims[3] - 3) as f64;
                let amp = 2000.0 + rng.gen::<f64>() * 12_000.0;
                for dr in 0..3usize {
                    for dc in 0..3usize {
                        let idx =
                            shape.offset(&[ev, panel, r as usize + dr, c as usize + dc]);
                        let fall =
                            (-(((dr as f64 - 1.0).powi(2) + (dc as f64 - 1.0).powi(2)) / 0.8))
                                .exp();
                        out[idx] += (amp * fall) as f32;
                    }
                }
            }
        }
    }
    NdArray::from_vec(shape, out)
}

/// RTM-like wavefield snapshot at the given solver step (shared simulator
/// recommended for multiple snapshots; this is the one-shot form).
pub fn rtm_snapshot(step: usize) -> NdArray<f32> {
    RtmSimulator::new([64, 64, 64]).snapshot_at(step)
}

/// Mixed-regime field for adaptive-codec tests and benches: axis-0 rows
/// `0..smooth_rows` are a low-amplitude smooth wave (the prediction
/// path's home turf), the remaining rows are avalanche hash noise of
/// peak-to-peak amplitude `amp` — prediction errors there blow past the
/// quantizer's escape radius at tight bounds, which is the transform
/// path's regime. Deterministic, RNG-free (safe for byte-stability
/// tests).
pub fn mixed_smooth_turbulent(shape: Shape, smooth_rows: usize, amp: f64) -> NdArray<f32> {
    NdArray::from_fn(shape, |ix| {
        if ix[0] < smooth_rows {
            let smooth: f64 = ix
                .iter()
                .enumerate()
                .map(|(a, &c)| ((c as f64) * 0.2 / (a + 1) as f64).sin() / (a + 1) as f64)
                .sum();
            smooth as f32
        } else {
            // FNV-style fold of the index, then the murmur3 finalizer for
            // proper avalanche (locally linear hashes are invisible to
            // Lorenzo and would defeat the point of the turbulent half).
            let mut h = ix
                .iter()
                .fold(0xcbf2_9ce4_8422_2325u64, |acc, &c| {
                    acc.wrapping_mul(0x1000_0000_01b3).wrapping_add(c as u64 + 1)
                });
            h ^= h >> 33;
            h = h.wrapping_mul(0xff51afd7ed558ccd);
            h ^= h >> 33;
            h = h.wrapping_mul(0xc4ceb9fe1a85ec53);
            h ^= h >> 33;
            (((h >> 40) as f64 / (1u64 << 24) as f64 - 0.5) * amp) as f32
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rq_grid::stats::Moments;

    #[test]
    fn cesm_ts_is_earthlike() {
        let f = cesm_ts();
        assert_eq!(f.shape().dims(), &[256, 512]);
        let (lo, hi) = f.min_max();
        assert!(lo > 150.0 && hi < 350.0, "range [{lo}, {hi}]");
    }

    #[test]
    fn nyx_dark_matter_heavy_tailed() {
        let f = nyx_dark_matter();
        let m = Moments::from_slice(f.as_slice());
        let (lo, hi) = f.min_max();
        assert!(lo > 0.0, "density must be positive");
        // Log-normal: max far above the mean.
        assert!(hi > 10.0 * m.mean, "hi {hi} mean {}", m.mean);
    }

    #[test]
    fn hacc_fields_have_expected_sizes() {
        assert_eq!(hacc_xx().len(), 1 << 21);
        assert_eq!(hacc_vx().len(), 1 << 21);
        let (lo, hi) = hacc_xx().min_max();
        assert!(lo >= 0.0 && hi <= 256.0);
    }

    #[test]
    fn brown_is_brownian() {
        let f = brown_pressure();
        // Increment variance ≈ 1.
        let incs: Vec<f64> = f
            .as_slice()
            .windows(2)
            .take(100_000)
            .map(|w| (w[1] - w[0]) as f64)
            .collect();
        let m = Moments::from_slice(&incs);
        assert!((m.variance() - 1.0).abs() < 0.05, "inc var {}", m.variance());
    }

    #[test]
    fn qmcpack_has_paper_extents() {
        assert_eq!(qmcpack_einspline().shape().dims(), &[69, 69, 115]);
    }

    #[test]
    fn scale_pres_decays_with_height() {
        let f = scale_pres();
        assert_eq!(f.shape().dims(), &[98, 120, 120]);
        let top = f.get(&[90, 60, 60]);
        let bottom = f.get(&[2, 60, 60]);
        assert!(bottom > 5.0 * top, "bottom {bottom} top {top}");
    }

    #[test]
    fn exafel_peaks_are_sparse_and_bright() {
        let f = exafel_raw();
        assert_eq!(f.shape().ndim(), 4);
        let bright = f.as_slice().iter().filter(|&&v| v > 1000.0).count();
        let frac = bright as f64 / f.len() as f64;
        assert!(frac > 0.0 && frac < 0.02, "bright fraction {frac}");
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(cesm_ts().as_slice(), cesm_ts().as_slice());
        assert_eq!(nyx_velocity_z().as_slice(), nyx_velocity_z().as_slice());
    }

    #[test]
    fn mixed_field_halves_have_distinct_regimes() {
        let shape = Shape::d3(16, 12, 12);
        let f = mixed_smooth_turbulent(shape, 8, 40.0);
        assert_eq!(f.as_slice(), mixed_smooth_turbulent(shape, 8, 40.0).as_slice());
        let half = 8 * 12 * 12;
        let spread = |s: &[f32]| {
            let (lo, hi) = s
                .iter()
                .fold((f32::MAX, f32::MIN), |(lo, hi), &v| (lo.min(v), hi.max(v)));
            (hi - lo) as f64
        };
        let smooth = spread(&f.as_slice()[..half]);
        let rough = spread(&f.as_slice()[half..]);
        assert!(smooth < 4.0, "smooth spread {smooth}");
        assert!(rough > 30.0, "rough spread {rough}");
    }
}
