//! Gaussian random fields with power-law spectra.
//!
//! Cosmology and turbulence fields (Nyx, Miranda) are well approximated by
//! Gaussian random fields with `P(k) ∝ k^{−slope}` — the property that
//! determines how predictable they are for a given compressor. Fields are
//! synthesized by filtering white noise in Fourier space with our own FFT:
//! white noise → FFT → multiply by `k^{−slope/2}` → IFFT → real part, which
//! keeps the output exactly real and the target spectrum exact up to the
//! noise realization.

use crate::rng::fill_normal;
use rand::Rng;
use rq_analysis::fft::{fft3_in_place, fft_in_place, ifft_in_place, Complex};
use rq_grid::{NdArray, Shape};

fn ifft3_in_place(data: &mut [Complex], dims: [usize; 3]) {
    // Inverse = conjugate → forward → conjugate, /N.
    for c in data.iter_mut() {
        c.im = -c.im;
    }
    fft3_in_place(data, dims);
    let n = data.len() as f64;
    for c in data.iter_mut() {
        c.re /= n;
        c.im = -c.im / n;
    }
}

fn folded_k(i: usize, n: usize) -> f64 {
    if i <= n / 2 {
        i as f64
    } else {
        i as f64 - n as f64
    }
}

/// Generate a 3D Gaussian random field with spectrum `P(k) ∝ k^{−slope}`,
/// zero mean, unit variance. Extents must be powers of two.
pub fn grf_3d(dims: [usize; 3], slope: f64, rng: &mut impl Rng) -> NdArray<f64> {
    let n = dims[0] * dims[1] * dims[2];
    let mut noise = vec![0.0f64; n];
    fill_normal(rng, &mut noise);
    let mut buf: Vec<Complex> = noise.iter().map(|&v| Complex::new(v, 0.0)).collect();
    fft3_in_place(&mut buf, dims);
    for i0 in 0..dims[0] {
        for i1 in 0..dims[1] {
            for i2 in 0..dims[2] {
                let k0 = folded_k(i0, dims[0]);
                let k1 = folded_k(i1, dims[1]);
                let k2 = folded_k(i2, dims[2]);
                let k = (k0 * k0 + k1 * k1 + k2 * k2).sqrt();
                let idx = (i0 * dims[1] + i1) * dims[2] + i2;
                let g = if k == 0.0 { 0.0 } else { k.powf(-slope / 2.0) };
                buf[idx].re *= g;
                buf[idx].im *= g;
            }
        }
    }
    ifft3_in_place(&mut buf, dims);
    let mut out: Vec<f64> = buf.iter().map(|c| c.re).collect();
    normalize(&mut out);
    NdArray::from_vec(Shape::d3(dims[0], dims[1], dims[2]), out)
}

/// 1D power-law Gaussian process of length `n` (power of two).
pub fn grf_1d(n: usize, slope: f64, rng: &mut impl Rng) -> NdArray<f64> {
    let mut noise = vec![0.0f64; n];
    fill_normal(rng, &mut noise);
    let mut buf: Vec<Complex> = noise.iter().map(|&v| Complex::new(v, 0.0)).collect();
    fft_in_place(&mut buf);
    for (i, c) in buf.iter_mut().enumerate() {
        let k = folded_k(i, n).abs();
        let g = if k == 0.0 { 0.0 } else { k.powf(-slope / 2.0) };
        c.re *= g;
        c.im *= g;
    }
    ifft_in_place(&mut buf);
    let mut out: Vec<f64> = buf.iter().map(|c| c.re).collect();
    normalize(&mut out);
    NdArray::from_vec(Shape::d1(n), out)
}

/// 2D power-law field, built as a cube of depth 1 for simplicity.
pub fn grf_2d(dims: [usize; 2], slope: f64, rng: &mut impl Rng) -> NdArray<f64> {
    // Use the 3D path with a thin axis; spectra along the thin axis are
    // trivial so the 2D spectrum dominates.
    let cube = grf_3d([1, dims[0], dims[1]], slope, rng);
    NdArray::from_vec(Shape::d2(dims[0], dims[1]), cube.into_vec())
}

fn normalize(out: &mut [f64]) {
    let n = out.len() as f64;
    let mean = out.iter().sum::<f64>() / n;
    let var = out.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
    let sd = var.sqrt().max(1e-30);
    for v in out.iter_mut() {
        *v = (*v - mean) / sd;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;
    use rq_analysis::spectrum::power_spectrum_3d;
    use rq_grid::stats::Moments;

    #[test]
    fn unit_variance_zero_mean() {
        let mut rng = seeded(5);
        let f = grf_3d([16, 16, 16], 2.0, &mut rng);
        let m = Moments::from_slice(f.as_slice());
        assert!(m.mean.abs() < 1e-9);
        assert!((m.variance() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn spectrum_slope_approximately_honored() {
        let mut rng = seeded(17);
        let f = grf_3d([32, 32, 32], 2.0, &mut rng);
        let f32field = NdArray::from_vec(f.shape(), f.as_slice().to_vec());
        let spec = power_spectrum_3d(&f32field);
        // Fit log-log slope over mid-range k.
        let pts: Vec<(f64, f64)> = spec
            .iter()
            .filter(|b| b.k >= 2.0 && b.k <= 12.0 && b.power > 0.0)
            .map(|b| (b.k.ln(), b.power.ln()))
            .collect();
        let n = pts.len() as f64;
        let mx = pts.iter().map(|p| p.0).sum::<f64>() / n;
        let my = pts.iter().map(|p| p.1).sum::<f64>() / n;
        let slope = pts.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum::<f64>()
            / pts.iter().map(|p| (p.0 - mx).powi(2)).sum::<f64>();
        assert!((slope + 2.0).abs() < 0.5, "fitted slope {slope}, want ≈ -2");
    }

    #[test]
    fn steeper_slope_is_smoother() {
        // Mean |first difference| decreases with slope.
        let mut rng = seeded(23);
        let rough = grf_1d(4096, 0.5, &mut rng);
        let smooth = grf_1d(4096, 3.0, &mut rng);
        let tv = |f: &NdArray<f64>| {
            f.as_slice().windows(2).map(|w| (w[1] - w[0]).abs()).sum::<f64>()
        };
        assert!(tv(&smooth) < tv(&rough));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = grf_2d([16, 16], 1.5, &mut seeded(3));
        let b = grf_2d([16, 16], 1.5, &mut seeded(3));
        assert_eq!(a.as_slice(), b.as_slice());
    }
}
