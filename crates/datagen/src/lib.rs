//! Synthetic stand-ins for the SDRBench datasets of the paper's Table I.
//!
//! The real datasets are multi-gigabyte downloads that are unavailable
//! offline, so each generator here reproduces the *statistical properties
//! the ratio-quality model is sensitive to* — smoothness spectrum (which
//! shapes the prediction-error distribution), value range, dimensionality
//! and sparsity — at laptop-friendly extents (see DESIGN.md §4).
//!
//! The inventory matches Table I's 10 datasets and 17 evaluated fields:
//!
//! | Dataset   | Fields                              | Kind            |
//! |-----------|-------------------------------------|-----------------|
//! | RTM       | snapshot-1000/2000/3000             | 3D wavefield    |
//! | CESM      | TS, TROP_Z                          | 2D climate      |
//! | Hurricane | U, TC                               | 3D weather      |
//! | Nyx       | dark-matter, temperature, velocity-z| 3D cosmology    |
//! | HACC      | xx, vx                              | 1D particles    |
//! | Brown     | pressure                            | 1D Brownian     |
//! | Miranda   | vx                                  | 3D turbulence   |
//! | QMCPACK   | einspline                           | 3D orbitals     |
//! | SCALE     | PRES                                | 3D climate      |
//! | EXAFEL    | raw                                 | 4D imaging      |

pub mod catalog;
pub mod fields;
pub mod grf;
pub mod rng;
pub mod rtm;

pub use catalog::{all_datasets, DatasetSpec, FieldSpec};
pub use rtm::{rtm_steps, RtmSimulator, RTM_SNAPSHOT_STRIDE, RTM_WARMUP_STEPS};
