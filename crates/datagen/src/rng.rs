//! Seeded randomness helpers for the generators.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic RNG for dataset generation.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// One standard-normal sample via Box–Muller (no `rand_distr` dependency).
pub fn normal(rng: &mut impl Rng) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen::<f64>();
        return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    }
}

/// Fill a buffer with iid standard-normal samples.
pub fn fill_normal(rng: &mut impl Rng, out: &mut [f64]) {
    for v in out.iter_mut() {
        *v = normal(rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rq_grid::stats::Moments;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = seeded(42);
        let mut b = seeded(42);
        for _ in 0..100 {
            assert_eq!(normal(&mut a), normal(&mut b));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = seeded(1);
        let mut b = seeded(2);
        let same = (0..32).filter(|_| normal(&mut a) == normal(&mut b)).count();
        assert!(same < 2);
    }

    #[test]
    fn normal_moments() {
        let mut rng = seeded(7);
        let mut buf = vec![0.0; 100_000];
        fill_normal(&mut rng, &mut buf);
        let m = Moments::from_slice(&buf);
        assert!(m.mean.abs() < 0.02, "mean {}", m.mean);
        assert!((m.variance() - 1.0).abs() < 0.03, "var {}", m.variance());
    }
}
