//! Miniature 3D acoustic wave-propagation simulator.
//!
//! Reverse time migration (RTM) repeatedly stores and re-reads wavefield
//! snapshots — the workload of the paper's use-case studies (Figs. 10–14).
//! We do not have the Aramco seismic stack, so this second-order
//! finite-difference time-domain solver produces physically plausible
//! snapshots: a Ricker-wavelet point source over a layered velocity model
//! with a low-velocity lens, reflecting at the domain boundary. Early
//! snapshots are sparse (mostly quiescent cells), late ones are dense with
//! reflections — the property that makes per-timestep error-bound tuning
//! (Fig. 12) worthwhile.

use rq_grid::{NdArray, Shape};

/// Second-order acoustic FDTD simulator on a cubic grid.
pub struct RtmSimulator {
    dims: [usize; 3],
    /// Squared Courant number per cell: `(v·Δt/Δx)²`.
    courant_sq: Vec<f64>,
    p_prev: Vec<f64>,
    p_cur: Vec<f64>,
    step: usize,
    /// Source position (linear index).
    src: usize,
    /// Source peak frequency × Δt.
    freq_dt: f64,
}

impl RtmSimulator {
    /// Build a simulator with a depth-layered velocity model (1.5–4.5 km/s)
    /// plus a slow lens, source near the top-center.
    ///
    /// # Panics
    /// Panics if any extent is < 8.
    pub fn new(dims: [usize; 3]) -> Self {
        assert!(dims.iter().all(|&d| d >= 8), "grid too small: {dims:?}");
        let [n0, n1, n2] = dims;
        let n = n0 * n1 * n2;
        let dx = 10.0f64; // meters
        let v_max = 4500.0;
        let dt = 0.4 * dx / v_max; // CFL-safe
        let mut courant_sq = vec![0.0f64; n];
        for i0 in 0..n0 {
            // Velocity increases with depth in three layers.
            let depth_frac = i0 as f64 / n0 as f64;
            let v_layer = if depth_frac < 0.3 {
                1500.0
            } else if depth_frac < 0.65 {
                2800.0
            } else {
                4500.0
            };
            for i1 in 0..n1 {
                for i2 in 0..n2 {
                    // Low-velocity spherical lens in the middle layer.
                    let c = [(n0 / 2) as f64, (n1 / 3) as f64, (n2 / 2) as f64];
                    let r2 = (i0 as f64 - c[0]).powi(2)
                        + (i1 as f64 - c[1]).powi(2)
                        + (i2 as f64 - c[2]).powi(2);
                    let lens = if r2 < (n0 as f64 / 6.0).powi(2) { 0.7 } else { 1.0 };
                    let v = v_layer * lens;
                    courant_sq[(i0 * n1 + i1) * n2 + i2] = (v * dt / dx).powi(2);
                }
            }
        }
        let src = (2 * n1 + n1 / 2) * n2 + n2 / 2;
        RtmSimulator {
            dims,
            courant_sq,
            p_prev: vec![0.0; n],
            p_cur: vec![0.0; n],
            step: 0,
            src,
            freq_dt: 15.0 * dt, // 15 Hz Ricker
        }
    }

    /// Current simulation step.
    pub fn step_count(&self) -> usize {
        self.step
    }

    /// Grid dimensions.
    pub fn dims(&self) -> [usize; 3] {
        self.dims
    }

    /// Advance one time step.
    pub fn step(&mut self) {
        let [n0, n1, n2] = self.dims;
        let s12 = n1 * n2;
        let mut p_next = std::mem::take(&mut self.p_prev);
        // Interior update: p⁺ = 2p − p⁻ + C²·∇²p (Dirichlet boundary).
        for i0 in 1..n0 - 1 {
            for i1 in 1..n1 - 1 {
                let row = (i0 * n1 + i1) * n2;
                for i2 in 1..n2 - 1 {
                    let idx = row + i2;
                    let lap = self.p_cur[idx - 1]
                        + self.p_cur[idx + 1]
                        + self.p_cur[idx - n2]
                        + self.p_cur[idx + n2]
                        + self.p_cur[idx - s12]
                        + self.p_cur[idx + s12]
                        - 6.0 * self.p_cur[idx];
                    p_next[idx] =
                        2.0 * self.p_cur[idx] - p_next[idx] + self.courant_sq[idx] * lap;
                }
            }
        }
        // Ricker source (active for the first ~2 periods).
        let t = self.step as f64 * self.freq_dt - 1.0;
        let ricker = (1.0 - 2.0 * std::f64::consts::PI.powi(2) * t * t)
            * (-std::f64::consts::PI.powi(2) * t * t).exp();
        p_next[self.src] += ricker;

        // Rotate buffers without reallocating: p_cur ← new field,
        // p_prev ← old p_cur. (p_next reused the old p_prev allocation and
        // consumed it as p⁻ in the in-place update above.)
        self.p_prev = std::mem::replace(&mut self.p_cur, p_next);
        self.step += 1;
    }

    /// Advance to `target_step` (no-op if already there or past) and return
    /// the wavefield snapshot as `f32`.
    pub fn snapshot_at(&mut self, target_step: usize) -> NdArray<f32> {
        while self.step < target_step {
            self.step();
        }
        let [n0, n1, n2] = self.dims;
        NdArray::from_vec(
            Shape::d3(n0, n1, n2),
            self.p_cur.iter().map(|&v| v as f32).collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wave_propagates_outward() {
        let mut sim = RtmSimulator::new([24, 24, 24]);
        let early = sim.snapshot_at(10);
        let late = sim.snapshot_at(40);
        let energy = |f: &NdArray<f32>| -> f64 {
            f.as_slice().iter().map(|&v| (v as f64).powi(2)).sum()
        };
        assert!(energy(&early) > 0.0, "source must inject energy");
        // Count active cells: the wavefront expands.
        let active = |f: &NdArray<f32>| {
            f.as_slice().iter().filter(|&&v| v.abs() > 1e-8).count()
        };
        assert!(active(&late) > active(&early));
    }

    #[test]
    fn snapshots_are_deterministic() {
        let a = RtmSimulator::new([16, 16, 16]).snapshot_at(20);
        let b = RtmSimulator::new([16, 16, 16]).snapshot_at(20);
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn snapshot_at_is_monotone_noop_backwards() {
        let mut sim = RtmSimulator::new([16, 16, 16]);
        let s30 = sim.snapshot_at(30);
        let again = sim.snapshot_at(10); // already past: same state
        assert_eq!(s30.as_slice(), again.as_slice());
        assert_eq!(sim.step_count(), 30);
    }

    #[test]
    fn field_stays_bounded() {
        // CFL-safe scheme: no blow-up over a few hundred steps.
        let mut sim = RtmSimulator::new([16, 16, 16]);
        let snap = sim.snapshot_at(300);
        let max = snap.as_slice().iter().map(|v| v.abs()).fold(0.0f32, f32::max);
        assert!(max.is_finite() && max < 100.0, "max {max}");
    }

    #[test]
    #[should_panic]
    fn tiny_grid_rejected() {
        let _ = RtmSimulator::new([4, 16, 16]);
    }
}
