//! Miniature 3D acoustic wave-propagation simulator.
//!
//! Reverse time migration (RTM) repeatedly stores and re-reads wavefield
//! snapshots — the workload of the paper's use-case studies (Figs. 10–14).
//! We do not have the Aramco seismic stack, so this second-order
//! finite-difference time-domain solver produces physically plausible
//! snapshots: a Ricker-wavelet point source over a layered velocity model
//! with a low-velocity lens, reflecting at the domain boundary. Early
//! snapshots are sparse (mostly quiescent cells), late ones are dense with
//! reflections — the property that makes per-timestep error-bound tuning
//! (Fig. 12) worthwhile.

use rq_grid::{NdArray, Shape};

/// Second-order acoustic FDTD simulator on a cubic grid.
pub struct RtmSimulator {
    dims: [usize; 3],
    /// Squared Courant number per cell: `(v·Δt/Δx)²`.
    courant_sq: Vec<f64>,
    p_prev: Vec<f64>,
    p_cur: Vec<f64>,
    step: usize,
    /// Source position (linear index).
    src: usize,
    /// Source peak frequency × Δt.
    freq_dt: f64,
}

/// splitmix64: the seed scrambler behind the seeded simulator variants.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A uniform draw in `[lo, hi)` from the scrambler.
fn uniform(state: &mut u64, lo: f64, hi: f64) -> f64 {
    let u = splitmix64(state) as f64 / (u64::MAX as f64 + 1.0);
    lo + u * (hi - lo)
}

impl RtmSimulator {
    /// Build a simulator with a depth-layered velocity model (1.5–4.5 km/s)
    /// plus a slow lens, source near the top-center.
    ///
    /// Equivalent to [`Self::with_seed`] with seed 0 (golden fixtures and
    /// byte-stability tests depend on that equivalence).
    ///
    /// # Panics
    /// Panics if any extent is < 8.
    pub fn new(dims: [usize; 3]) -> Self {
        Self::with_seed(dims, 0)
    }

    /// Build a simulator whose physics are deterministically perturbed by
    /// `seed`: the lens center/strength, the overall velocity scale and
    /// the source frequency all vary, so different seeds yield genuinely
    /// different (but reproducible) wavefield sequences. Seed 0 is
    /// *exactly* the unperturbed [`Self::new`] model, bit for bit.
    ///
    /// # Panics
    /// Panics if any extent is < 8.
    pub fn with_seed(dims: [usize; 3], seed: u64) -> Self {
        assert!(dims.iter().all(|&d| d >= 8), "grid too small: {dims:?}");
        let [n0, n1, n2] = dims;
        let n = n0 * n1 * n2;
        let dx = 10.0f64; // meters
        let v_max = 4500.0;
        let dt = 0.4 * dx / v_max; // CFL-safe
        // Seed-derived perturbations. Seed 0 must reproduce the historic
        // model bit-exactly, so the neutral values are written literally
        // rather than trusting `x + 0.0`-style identities everywhere.
        let (vel_scale, lens_shift, lens_strength, freq_hz) = if seed == 0 {
            (1.0, [0.0, 0.0, 0.0], 0.7, 15.0)
        } else {
            let mut s = seed;
            let max_shift = n0 as f64 / 8.0;
            (
                uniform(&mut s, 0.92, 1.0), // only ever slower: stays CFL-safe
                [
                    uniform(&mut s, -max_shift, max_shift),
                    uniform(&mut s, -max_shift, max_shift),
                    uniform(&mut s, -max_shift, max_shift),
                ],
                uniform(&mut s, 0.55, 0.85),
                uniform(&mut s, 12.0, 18.0),
            )
        };
        let mut courant_sq = vec![0.0f64; n];
        for i0 in 0..n0 {
            // Velocity increases with depth in three layers.
            let depth_frac = i0 as f64 / n0 as f64;
            let v_layer = if depth_frac < 0.3 {
                1500.0
            } else if depth_frac < 0.65 {
                2800.0
            } else {
                4500.0
            };
            for i1 in 0..n1 {
                for i2 in 0..n2 {
                    // Low-velocity spherical lens in the middle layer.
                    let c = [
                        (n0 / 2) as f64 + lens_shift[0],
                        (n1 / 3) as f64 + lens_shift[1],
                        (n2 / 2) as f64 + lens_shift[2],
                    ];
                    let r2 = (i0 as f64 - c[0]).powi(2)
                        + (i1 as f64 - c[1]).powi(2)
                        + (i2 as f64 - c[2]).powi(2);
                    let lens = if r2 < (n0 as f64 / 6.0).powi(2) { lens_strength } else { 1.0 };
                    let v = v_layer * lens * vel_scale;
                    courant_sq[(i0 * n1 + i1) * n2 + i2] = (v * dt / dx).powi(2);
                }
            }
        }
        let src = (2 * n1 + n1 / 2) * n2 + n2 / 2;
        RtmSimulator {
            dims,
            courant_sq,
            p_prev: vec![0.0; n],
            p_cur: vec![0.0; n],
            step: 0,
            src,
            freq_dt: freq_hz * dt,
        }
    }

    /// Current simulation step.
    pub fn step_count(&self) -> usize {
        self.step
    }

    /// Grid dimensions.
    pub fn dims(&self) -> [usize; 3] {
        self.dims
    }

    /// Advance one time step.
    pub fn step(&mut self) {
        let [n0, n1, n2] = self.dims;
        let s12 = n1 * n2;
        let mut p_next = std::mem::take(&mut self.p_prev);
        // Interior update: p⁺ = 2p − p⁻ + C²·∇²p (Dirichlet boundary).
        for i0 in 1..n0 - 1 {
            for i1 in 1..n1 - 1 {
                let row = (i0 * n1 + i1) * n2;
                for i2 in 1..n2 - 1 {
                    let idx = row + i2;
                    let lap = self.p_cur[idx - 1]
                        + self.p_cur[idx + 1]
                        + self.p_cur[idx - n2]
                        + self.p_cur[idx + n2]
                        + self.p_cur[idx - s12]
                        + self.p_cur[idx + s12]
                        - 6.0 * self.p_cur[idx];
                    p_next[idx] =
                        2.0 * self.p_cur[idx] - p_next[idx] + self.courant_sq[idx] * lap;
                }
            }
        }
        // Ricker source (active for the first ~2 periods).
        let t = self.step as f64 * self.freq_dt - 1.0;
        let ricker = (1.0 - 2.0 * std::f64::consts::PI.powi(2) * t * t)
            * (-std::f64::consts::PI.powi(2) * t * t).exp();
        p_next[self.src] += ricker;

        // Rotate buffers without reallocating: p_cur ← new field,
        // p_prev ← old p_cur. (p_next reused the old p_prev allocation and
        // consumed it as p⁻ in the in-place update above.)
        self.p_prev = std::mem::replace(&mut self.p_cur, p_next);
        self.step += 1;
    }

    /// Advance to `target_step` (no-op if already there or past) and return
    /// the wavefield snapshot as `f32`.
    pub fn snapshot_at(&mut self, target_step: usize) -> NdArray<f32> {
        while self.step < target_step {
            self.step();
        }
        let [n0, n1, n2] = self.dims;
        NdArray::from_vec(
            Shape::d3(n0, n1, n2),
            self.p_cur.iter().map(|&v| v as f32).collect(),
        )
    }
}

/// Solver steps between consecutive snapshots of [`rtm_steps`]: one, so
/// adjacent snapshots stay strongly correlated (the temporal delta
/// predictor's regime — a real in-situ dump captures every solver step
/// or close to it).
pub const RTM_SNAPSHOT_STRIDE: usize = 1;

/// Solver steps run before the first snapshot of [`rtm_steps`]: long
/// enough that the wavefront has left the source cell, spread through
/// the volume and picked up reflections, so every snapshot carries
/// developed structure rather than a near-empty grid.
pub const RTM_WARMUP_STEPS: usize = 48;

/// Deterministic seeded multi-step RTM sequence: `n` wavefield snapshots
/// of extents `dims`, taken every [`RTM_SNAPSHOT_STRIDE`] solver steps
/// after [`RTM_WARMUP_STEPS`] warmup steps, all from **one** simulator
/// pass (one O(steps · cells) solve, however many snapshots are taken).
///
/// This is the canonical time-series source for catalog tests, benches
/// and `rqm pack --steps`; the sequence depends only on
/// `(seed, n, dims)`.
///
/// # Panics
/// Panics if any extent is < 8.
pub fn rtm_steps(seed: u64, n: usize, dims: [usize; 3]) -> Vec<NdArray<f32>> {
    let mut sim = RtmSimulator::with_seed(dims, seed);
    (0..n)
        .map(|i| sim.snapshot_at(RTM_WARMUP_STEPS + i * RTM_SNAPSHOT_STRIDE))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wave_propagates_outward() {
        let mut sim = RtmSimulator::new([24, 24, 24]);
        let early = sim.snapshot_at(10);
        let late = sim.snapshot_at(40);
        let energy = |f: &NdArray<f32>| -> f64 {
            f.as_slice().iter().map(|&v| (v as f64).powi(2)).sum()
        };
        assert!(energy(&early) > 0.0, "source must inject energy");
        // Count active cells: the wavefront expands.
        let active = |f: &NdArray<f32>| {
            f.as_slice().iter().filter(|&&v| v.abs() > 1e-8).count()
        };
        assert!(active(&late) > active(&early));
    }

    #[test]
    fn snapshots_are_deterministic() {
        let a = RtmSimulator::new([16, 16, 16]).snapshot_at(20);
        let b = RtmSimulator::new([16, 16, 16]).snapshot_at(20);
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn snapshot_at_is_monotone_noop_backwards() {
        let mut sim = RtmSimulator::new([16, 16, 16]);
        let s30 = sim.snapshot_at(30);
        let again = sim.snapshot_at(10); // already past: same state
        assert_eq!(s30.as_slice(), again.as_slice());
        assert_eq!(sim.step_count(), 30);
    }

    #[test]
    fn field_stays_bounded() {
        // CFL-safe scheme: no blow-up over a few hundred steps.
        let mut sim = RtmSimulator::new([16, 16, 16]);
        let snap = sim.snapshot_at(300);
        let max = snap.as_slice().iter().map(|v| v.abs()).fold(0.0f32, f32::max);
        assert!(max.is_finite() && max < 100.0, "max {max}");
    }

    #[test]
    #[should_panic]
    fn tiny_grid_rejected() {
        let _ = RtmSimulator::new([4, 16, 16]);
    }

    #[test]
    fn seed_zero_matches_unseeded_model() {
        // Golden fixtures and byte-stability tests ride on this identity.
        let a = RtmSimulator::new([16, 16, 16]).snapshot_at(25);
        let b = RtmSimulator::with_seed([16, 16, 16], 0).snapshot_at(25);
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn seeds_differ_and_reproduce() {
        let a = rtm_steps(1, 3, [16, 16, 16]);
        let b = rtm_steps(1, 3, [16, 16, 16]);
        let c = rtm_steps(2, 3, [16, 16, 16]);
        assert_eq!(a.len(), 3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.as_slice(), y.as_slice());
        }
        assert_ne!(a[2].as_slice(), c[2].as_slice());
    }

    #[test]
    fn steps_are_temporally_correlated() {
        // Consecutive snapshots must be far closer to each other than to
        // zero — the property the temporal-delta predictor exploits.
        let steps = rtm_steps(0, 4, [16, 16, 16]);
        for w in steps.windows(2) {
            let (mut diff2, mut mag2) = (0f64, 0f64);
            for (&a, &b) in w[0].as_slice().iter().zip(w[1].as_slice()) {
                diff2 += ((b - a) as f64).powi(2);
                mag2 += (b as f64).powi(2);
            }
            assert!(mag2 > 0.0);
            assert!(diff2 < 0.5 * mag2, "diff {diff2} vs mag {mag2}");
        }
    }
}
