//! MSB-first bit-level I/O over byte buffers.
//!
//! Both endpoints run on 64-bit accumulators (the `bit_queue` scheme from
//! fast entropy coders): the writer stages up to 64 bits and flushes whole
//! bytes at once; the reader keeps the next bits *left-aligned* in a 64-bit
//! look-ahead register so a decoder can [`BitReader::peek`] a whole code's
//! worth of bits with one shift and commit with [`BitReader::try_consume`].
//! The byte stream produced and consumed is **identical** to the original
//! byte-at-a-time implementation (kept in [`crate::reference`] and held
//! equal by `tests/kernel_differential.rs`).
//!
//! Invariants of the reader's look-ahead register:
//! * `acc`'s most-significant `bits` bits are the next unconsumed payload
//!   bits in stream order; everything below is zero.
//! * after [`BitReader::refill`], `bits >= 56` or every remaining byte of
//!   the buffer has been loaded — so any `peek(n)` with `n <= 56` sees all
//!   bits that exist, zero-padded past end-of-stream.
//! * `position() + bits` never exceeds `bit_len()`: peeking is free but
//!   consuming past the end is refused, which is what keeps truncation
//!   detection byte-for-byte equal to the old reader.

/// Accumulates bits MSB-first into a byte vector.
#[derive(Default)]
pub struct BitWriter {
    buf: Vec<u8>,
    /// Bits currently staged in the low end of `acc` (0..=64).
    nbits: u32,
    acc: u64,
}

impl BitWriter {
    /// New empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Move every whole staged byte from `acc` into the output buffer,
    /// leaving `nbits < 8`.
    #[inline]
    fn flush_whole_bytes(&mut self) {
        let whole = (self.nbits / 8) as usize;
        if whole > 0 {
            // Left-align the valid bits; stale bits above them shift out.
            let bytes = (self.acc << (64 - self.nbits)).to_be_bytes();
            self.buf.extend_from_slice(&bytes[..whole]);
            self.nbits -= whole as u32 * 8;
        }
    }

    /// Append the low `len` bits of `code`, most significant first.
    ///
    /// # Panics
    /// Panics (debug) if `len > 64`.
    #[inline]
    pub fn put_bits(&mut self, code: u64, len: u32) {
        debug_assert!(len <= 64);
        if len > 32 {
            // Two register-sized appends: the direct path below needs
            // `nbits + len <= 64` even right after a flush (nbits <= 7).
            self.put_bits(code >> 32, len - 32);
            self.put_bits(code & 0xFFFF_FFFF, 32);
            return;
        }
        if len == 0 {
            return;
        }
        if self.nbits + len > 64 {
            self.flush_whole_bytes();
        }
        self.acc = (self.acc << len) | (code & ((1u64 << len) - 1));
        self.nbits += len;
        if self.nbits >= 56 {
            self.flush_whole_bytes();
        }
    }

    /// Append a single bit.
    #[inline]
    pub fn put_bit(&mut self, bit: bool) {
        self.put_bits(bit as u64, 1);
    }

    /// Number of bits written so far.
    pub fn bit_len(&self) -> u64 {
        self.buf.len() as u64 * 8 + self.nbits as u64
    }

    /// Pad the final partial byte with zeros and return the buffer.
    pub fn finish(mut self) -> Vec<u8> {
        self.flush_whole_bytes();
        if self.nbits > 0 {
            self.buf.push((self.acc << (8 - self.nbits)) as u8);
        }
        self.buf
    }
}

/// Reads bits MSB-first from a byte slice through a 64-bit look-ahead
/// register.
pub struct BitReader<'a> {
    buf: &'a [u8],
    /// Absolute bit cursor (bits consumed so far).
    pos: u64,
    /// Next unconsumed bits, left-aligned; zero below the top `bits` bits.
    acc: u64,
    /// Valid bits in `acc`.
    bits: u32,
    /// Next byte of `buf` to load into `acc`.
    next: usize,
}

impl<'a> BitReader<'a> {
    /// Wrap a byte slice.
    pub fn new(buf: &'a [u8]) -> Self {
        BitReader { buf, pos: 0, acc: 0, bits: 0, next: 0 }
    }

    /// Total bits available.
    pub fn bit_len(&self) -> u64 {
        self.buf.len() as u64 * 8
    }

    /// Bits consumed so far.
    pub fn position(&self) -> u64 {
        self.pos
    }

    /// Bits not yet consumed.
    #[inline]
    pub fn remaining(&self) -> u64 {
        self.bit_len() - self.pos
    }

    /// Top up the look-ahead register. Afterwards `bits >= 56` or the
    /// whole buffer tail is loaded.
    #[inline]
    pub fn refill(&mut self) {
        if self.next + 8 <= self.buf.len() {
            // Branch-light path: OR in a full word, advance by the bytes
            // that actually fit (`bits | 56 == bits + 8 * ((63 - bits) / 8)`
            // for `bits <= 63`; `bits == 64` is unreachable here because it
            // can only arise from the tail loop, after which no whole word
            // remains).
            let w = u64::from_be_bytes(self.buf[self.next..self.next + 8].try_into().unwrap());
            self.acc |= w >> self.bits;
            self.next += ((63 - self.bits) >> 3) as usize;
            self.bits |= 56;
        } else {
            while self.bits <= 56 && self.next < self.buf.len() {
                self.acc |= (self.buf[self.next] as u64) << (56 - self.bits);
                self.bits += 8;
                self.next += 1;
            }
        }
    }

    /// The next `n` bits without consuming them, zero-padded past the end
    /// of the stream. Requires a preceding [`Self::refill`] and `n <= 56`
    /// (and `n >= 1`).
    #[inline]
    pub fn peek(&self, n: u32) -> u64 {
        debug_assert!((1..=56).contains(&n));
        self.acc >> (64 - n)
    }

    /// Consume `n` bits the caller has already proven in-bounds:
    /// `position() + n <= bit_len()` and `n` within the bits made visible
    /// by the last [`Self::refill`]. Burst decode loops hoist the
    /// end-of-stream check out of their safe region and commit with this;
    /// everything else should use [`Self::try_consume`].
    #[inline]
    pub fn consume(&mut self, n: u32) {
        debug_assert!(n <= self.bits);
        debug_assert!(self.pos + n as u64 <= self.bit_len());
        self.acc <<= n;
        self.bits -= n;
        self.pos += n as u64;
    }

    /// Consume `n` bits if at least that many remain; `false` (and no
    /// state change) otherwise. `n` must not exceed the bits made visible
    /// by the last [`Self::refill`].
    #[inline]
    pub fn try_consume(&mut self, n: u32) -> bool {
        if self.pos + n as u64 > self.bit_len() {
            return false;
        }
        debug_assert!(n <= self.bits);
        self.acc <<= n;
        self.bits -= n;
        self.pos += n as u64;
        true
    }

    /// Read `len` bits MSB-first; `None` if the buffer is exhausted.
    #[inline]
    pub fn get_bits(&mut self, len: u32) -> Option<u64> {
        debug_assert!(len <= 64);
        if len > 32 {
            // Check the whole length upfront so a failing read never
            // consumes the first half (the reference reader refuses
            // atomically), then two register-sized reads; each is
            // <= 32 <= the post-refill look-ahead guarantee.
            if self.pos + len as u64 > self.bit_len() {
                return None;
            }
            let hi = self.get_bits(len - 32)?;
            let lo = self.get_bits(32)?;
            return Some((hi << 32) | lo);
        }
        if self.pos + len as u64 > self.bit_len() {
            return None;
        }
        if len == 0 {
            return Some(0);
        }
        self.refill();
        // `remaining >= len` and refill loaded min(57+, everything left),
        // so `bits >= len` here.
        let v = self.acc >> (64 - len);
        self.acc <<= len;
        self.bits -= len;
        self.pos += len as u64;
        Some(v)
    }

    /// Read a single bit.
    #[inline]
    pub fn get_bit(&mut self) -> Option<bool> {
        self.get_bits(1).map(|b| b == 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_varied_widths() {
        let mut w = BitWriter::new();
        let items: Vec<(u64, u32)> =
            vec![(1, 1), (0b101, 3), (0xdead, 16), (0, 5), (u64::MAX >> 3, 61), (0b11, 2)];
        for &(v, l) in &items {
            w.put_bits(v, l);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &(v, l) in &items {
            assert_eq!(r.get_bits(l), Some(v), "width {l}");
        }
    }

    #[test]
    fn bit_len_tracks() {
        let mut w = BitWriter::new();
        w.put_bits(0b1, 1);
        w.put_bits(0b1010, 4);
        assert_eq!(w.bit_len(), 5);
        let bytes = w.finish();
        assert_eq!(bytes.len(), 1);
        // 1 1010 padded with three zeros => 0b11010000
        assert_eq!(bytes[0], 0b1101_0000);
    }

    #[test]
    fn reader_exhaustion() {
        let bytes = [0xffu8];
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.get_bits(8), Some(0xff));
        assert_eq!(r.get_bits(1), None);
    }

    #[test]
    fn single_bits() {
        let mut w = BitWriter::new();
        for i in 0..13 {
            w.put_bit(i % 3 == 0);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for i in 0..13 {
            assert_eq!(r.get_bit(), Some(i % 3 == 0));
        }
    }

    #[test]
    fn sixty_four_bit_value() {
        let mut w = BitWriter::new();
        w.put_bits(u64::MAX, 64);
        w.put_bits(0, 64);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.get_bits(64), Some(u64::MAX));
        assert_eq!(r.get_bits(64), Some(0));
    }

    #[test]
    fn peek_is_zero_padded_and_consume_checked() {
        let bytes = [0b1010_0000u8];
        let mut r = BitReader::new(&bytes);
        r.refill();
        assert_eq!(r.peek(3), 0b101);
        // Peeking further than the stream pads with zeros...
        assert_eq!(r.peek(16), 0b1010_0000_0000_0000);
        // ...but consuming past the end is refused.
        assert!(r.try_consume(8));
        assert!(!r.try_consume(1));
        assert_eq!(r.position(), 8);
    }

    #[test]
    fn writer_matches_reference_writer() {
        use crate::reference::RefBitWriter;
        let mut st = 0x243F_6A88_85A3_08D3u64;
        let mut xs = move || {
            st ^= st << 13;
            st ^= st >> 7;
            st ^= st << 17;
            st
        };
        let mut w = BitWriter::new();
        let mut rw = RefBitWriter::new();
        for _ in 0..10_000 {
            let v = xs();
            let l = (xs() % 65) as u32;
            w.put_bits(v, l);
            rw.put_bits(v, l);
            assert_eq!(w.bit_len(), rw.bit_len());
        }
        assert_eq!(w.finish(), rw.finish());
    }
}
