//! MSB-first bit-level I/O over byte buffers.

/// Accumulates bits MSB-first into a byte vector.
#[derive(Default)]
pub struct BitWriter {
    buf: Vec<u8>,
    /// Bits currently staged in `acc` (0..8).
    nbits: u32,
    acc: u8,
}

impl BitWriter {
    /// New empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append the low `len` bits of `code`, most significant first.
    ///
    /// # Panics
    /// Panics (debug) if `len > 64`.
    #[inline]
    pub fn put_bits(&mut self, code: u64, len: u32) {
        debug_assert!(len <= 64);
        // Feed from the top of the value down.
        let mut remaining = len;
        while remaining > 0 {
            let room = 8 - self.nbits;
            let take = room.min(remaining);
            let shift = remaining - take;
            let chunk = ((code >> shift) & ((1u64 << take) - 1)) as u8;
            self.acc = (((self.acc as u16) << take) as u8) | chunk;
            self.nbits += take;
            remaining -= take;
            if self.nbits == 8 {
                self.buf.push(self.acc);
                self.acc = 0;
                self.nbits = 0;
            }
        }
    }

    /// Append a single bit.
    #[inline]
    pub fn put_bit(&mut self, bit: bool) {
        self.put_bits(bit as u64, 1);
    }

    /// Number of bits written so far.
    pub fn bit_len(&self) -> u64 {
        self.buf.len() as u64 * 8 + self.nbits as u64
    }

    /// Pad the final partial byte with zeros and return the buffer.
    pub fn finish(mut self) -> Vec<u8> {
        if self.nbits > 0 {
            self.acc <<= 8 - self.nbits;
            self.buf.push(self.acc);
        }
        self.buf
    }
}

/// Reads bits MSB-first from a byte slice.
pub struct BitReader<'a> {
    buf: &'a [u8],
    /// Absolute bit cursor.
    pos: u64,
}

impl<'a> BitReader<'a> {
    /// Wrap a byte slice.
    pub fn new(buf: &'a [u8]) -> Self {
        BitReader { buf, pos: 0 }
    }

    /// Total bits available.
    pub fn bit_len(&self) -> u64 {
        self.buf.len() as u64 * 8
    }

    /// Bits consumed so far.
    pub fn position(&self) -> u64 {
        self.pos
    }

    /// Read `len` bits MSB-first; `None` if the buffer is exhausted.
    #[inline]
    pub fn get_bits(&mut self, len: u32) -> Option<u64> {
        debug_assert!(len <= 64);
        if self.pos + len as u64 > self.bit_len() {
            return None;
        }
        let mut out = 0u64;
        let mut remaining = len;
        while remaining > 0 {
            let byte = self.buf[(self.pos / 8) as usize];
            let bit_off = (self.pos % 8) as u32;
            let avail = 8 - bit_off;
            let take = avail.min(remaining);
            let chunk = (byte >> (avail - take)) & ((1u16 << take) - 1) as u8;
            out = (out << take) | chunk as u64;
            self.pos += take as u64;
            remaining -= take;
        }
        Some(out)
    }

    /// Read a single bit.
    #[inline]
    pub fn get_bit(&mut self) -> Option<bool> {
        self.get_bits(1).map(|b| b == 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_varied_widths() {
        let mut w = BitWriter::new();
        let items: Vec<(u64, u32)> =
            vec![(1, 1), (0b101, 3), (0xdead, 16), (0, 5), (u64::MAX >> 3, 61), (0b11, 2)];
        for &(v, l) in &items {
            w.put_bits(v, l);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &(v, l) in &items {
            assert_eq!(r.get_bits(l), Some(v), "width {l}");
        }
    }

    #[test]
    fn bit_len_tracks() {
        let mut w = BitWriter::new();
        w.put_bits(0b1, 1);
        w.put_bits(0b1010, 4);
        assert_eq!(w.bit_len(), 5);
        let bytes = w.finish();
        assert_eq!(bytes.len(), 1);
        // 1 1010 padded with three zeros => 0b11010000
        assert_eq!(bytes[0], 0b1101_0000);
    }

    #[test]
    fn reader_exhaustion() {
        let bytes = [0xffu8];
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.get_bits(8), Some(0xff));
        assert_eq!(r.get_bits(1), None);
    }

    #[test]
    fn single_bits() {
        let mut w = BitWriter::new();
        for i in 0..13 {
            w.put_bit(i % 3 == 0);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for i in 0..13 {
            assert_eq!(r.get_bit(), Some(i % 3 == 0));
        }
    }

    #[test]
    fn sixty_four_bit_value() {
        let mut w = BitWriter::new();
        w.put_bits(u64::MAX, 64);
        w.put_bits(0, 64);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.get_bits(64), Some(u64::MAX));
        assert_eq!(r.get_bits(64), Some(0));
    }
}
