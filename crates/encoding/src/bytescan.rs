//! Word-at-a-time byte scanning primitives for the RLE/LZSS inner loops.
//!
//! Every helper walks 8 bytes per iteration on the aligned middle of the
//! buffer and falls back to a byte loop for the tail, returning exactly
//! the index the equivalent byte loop would — the coders built on these
//! are held byte-identical to their scalar references by
//! `tests/kernel_differential.rs`.

const LO: u64 = 0x0101_0101_0101_0101;
const HI: u64 = 0x8080_8080_8080_8080;

/// SWAR zero-byte detector: the result's lowest set bit sits in the first
/// zero byte of `v` (bits in higher bytes may be false positives, which
/// is fine — only `trailing_zeros` is ever used).
#[inline]
fn has_zero_byte(v: u64) -> u64 {
    v.wrapping_sub(LO) & !v & HI
}

#[inline]
fn splat(b: u8) -> u64 {
    u64::from_ne_bytes([b; 8])
}

#[inline]
fn load(buf: &[u8], i: usize) -> u64 {
    u64::from_le_bytes(buf[i..i + 8].try_into().unwrap())
}

/// First index `>= i` where `buf` stops being `byte` (end of a run).
#[inline]
pub(crate) fn run_end(buf: &[u8], mut i: usize, byte: u8) -> usize {
    let s = splat(byte);
    while i + 8 <= buf.len() {
        let x = load(buf, i) ^ s;
        if x != 0 {
            return i + (x.trailing_zeros() / 8) as usize;
        }
        i += 8;
    }
    while i < buf.len() && buf[i] == byte {
        i += 1;
    }
    i
}

/// First index `>= i` holding `byte`, or `buf.len()`.
#[inline]
pub(crate) fn find_byte(buf: &[u8], mut i: usize, byte: u8) -> usize {
    let s = splat(byte);
    while i + 8 <= buf.len() {
        let m = has_zero_byte(load(buf, i) ^ s);
        if m != 0 {
            return i + (m.trailing_zeros() / 8) as usize;
        }
        i += 8;
    }
    while i < buf.len() && buf[i] != byte {
        i += 1;
    }
    i
}

/// First index `>= i` holding `a` or `b`, or `buf.len()`.
#[inline]
pub(crate) fn find_either(buf: &[u8], mut i: usize, a: u8, b: u8) -> usize {
    let (sa, sb) = (splat(a), splat(b));
    while i + 8 <= buf.len() {
        let w = load(buf, i);
        let m = has_zero_byte(w ^ sa) | has_zero_byte(w ^ sb);
        if m != 0 {
            return i + (m.trailing_zeros() / 8) as usize;
        }
        i += 8;
    }
    while i < buf.len() && buf[i] != a && buf[i] != b {
        i += 1;
    }
    i
}

/// Length of the common prefix of `a` and `b`, capped at `limit`.
/// Requires both slices to hold at least `limit` bytes.
#[inline]
pub fn common_prefix(a: &[u8], b: &[u8], limit: usize) -> usize {
    let mut l = 0;
    while l + 8 <= limit {
        let x = load(a, l) ^ load(b, l);
        if x != 0 {
            return l + (x.trailing_zeros() / 8) as usize;
        }
        l += 8;
    }
    while l < limit && a[l] == b[l] {
        l += 1;
    }
    l
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scans_agree_with_byte_loops() {
        let mut st = 0xA5A5_5A5A_1234_5678u64;
        let mut xs = move || {
            st ^= st << 13;
            st ^= st >> 7;
            st ^= st << 17;
            st
        };
        for trial in 0..200 {
            let n = (trial * 7) % 70;
            let buf: Vec<u8> = (0..n).map(|_| (xs() % 5) as u8).collect();
            for start in 0..=buf.len() {
                assert_eq!(
                    run_end(&buf, start, 2),
                    (start..buf.len()).find(|&k| buf[k] != 2).unwrap_or(buf.len())
                );
                assert_eq!(
                    find_byte(&buf, start, 3),
                    (start..buf.len()).find(|&k| buf[k] == 3).unwrap_or(buf.len())
                );
                assert_eq!(
                    find_either(&buf, start, 1, 4),
                    (start..buf.len())
                        .find(|&k| buf[k] == 1 || buf[k] == 4)
                        .unwrap_or(buf.len())
                );
            }
        }
        let a: Vec<u8> = (0..64).map(|_| (xs() % 3) as u8).collect();
        let b: Vec<u8> = (0..64).map(|_| (xs() % 3) as u8).collect();
        for limit in 0..=64 {
            let scalar = (0..limit).find(|&k| a[k] != b[k]).unwrap_or(limit);
            assert_eq!(common_prefix(&a, &b, limit), scalar, "limit {limit}");
        }
    }
}
